package ipg_test

import (
	"fmt"

	"ipg"
)

// ExampleBuild reproduces the worked IPG from Section 2 of the paper: the
// seed 123321 and three permutation generators yield a 36-node graph.
func ExampleBuild() {
	g := ipg.MustBuild(ipg.Spec{
		Name: "section-2",
		Seed: ipg.MustParseLabel("123321"),
		Gens: ipg.GenSet{
			ipg.Gen("pi1", ipg.FromImage(2, 1, 3, 4, 5, 6)),
			ipg.Gen("pi2", ipg.FromImage(3, 2, 1, 4, 5, 6)),
			ipg.Gen("pi3", ipg.FromImage(4, 5, 6, 1, 2, 3)),
		},
	})
	fmt.Println(g.N(), "nodes")
	for gi := 0; gi < g.NumGens(); gi++ {
		fmt.Println(g.Label(g.Neighbor(0, gi)))
	}
	// Output:
	// 36 nodes
	// 213321
	// 321321
	// 321123
}

// ExampleHSN builds the paper's flagship HSN(3,Q4) and reports the
// Section 4 intercluster metrics.
func ExampleHSN() {
	net := ipg.HSN(3, ipg.HypercubeNucleus(4))
	g, err := net.Build()
	if err != nil {
		panic(err)
	}
	t, _ := net.InterclusterT()
	fmt.Println("nodes:", g.N())
	fmt.Println("chips:", g.N()/net.M())
	fmt.Println("intercluster diameter:", t)
	fmt.Println("avg intercluster distance:", net.AvgInterclusterDistance(g))
	// Output:
	// nodes: 4096
	// chips: 256
	// intercluster diameter: 2
	// avg intercluster distance: 1.875
}

// ExampleBuildSchedule constructs and verifies the Figure 1b all-port
// emulation schedule.
func ExampleBuildSchedule() {
	s, err := ipg.BuildSchedule(ipg.HSN(5, ipg.HypercubeNucleus(3)))
	if err != nil {
		panic(err)
	}
	if err := s.Verify(); err != nil {
		panic(err)
	}
	_, avg := s.Utilization()
	fmt.Printf("steps: %d, average link utilization: %.1f%%\n", s.T, 100*avg)
	// Output:
	// steps: 6, average link utilization: 92.9%
}

// ExampleAllReduceSum runs a global sum on a cyclic network.
func ExampleAllReduceSum() {
	net := ipg.CompleteCN(2, ipg.HypercubeNucleus(2))
	g, err := net.Build()
	if err != nil {
		panic(err)
	}
	r, err := ipg.NewFloatRunner(net, g)
	if err != nil {
		panic(err)
	}
	vals := make([]float64, g.N())
	for i := range vals {
		vals[i] = 1
	}
	out, stats, err := ipg.AllReduceSum(r, vals)
	if err != nil {
		panic(err)
	}
	fmt.Println("sum at node 0:", out[0])
	fmt.Println("comm steps:", stats.CommSteps)
	// Output:
	// sum at node 0: 16
	// comm steps: 6
}

// ExampleRunExperiment reruns a paper experiment programmatically.
func ExampleRunExperiment() {
	res, err := ipg.RunExperiment("dim11", ipg.ScaleSmall)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ID, "passed:", res.Passed())
	// Output:
	// E3/dim11 passed: true
}
