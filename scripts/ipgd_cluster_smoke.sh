#!/usr/bin/env bash
# Smoke-test ipgd cluster mode: boot three replicas on a static peer
# list, hammer every golden family through all of them, assert the
# cluster performed exactly one build per key (peer-fill working), then
# SIGKILL one replica and assert the survivors rehash ownership and keep
# answering.  Used by CI; runnable locally from the repo root.
set -euo pipefail

workdir=$(mktemp -d)
bin="$workdir/ipgd"
pids=()

cleanup() {
  for p in "${pids[@]:-}"; do
    [[ -n "$p" ]] && kill -9 "$p" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "ipgd_cluster_smoke: FAIL: $*" >&2
  for i in 0 1 2; do
    echo "--- replica $i log ---" >&2
    cat "$workdir/r$i.log" >&2 2>/dev/null || true
  done
  exit 1
}

# json_field <field> — extract a top-level field from JSON on stdin.
json_field() {
  python3 -c 'import json,sys; print(json.load(sys.stdin)[sys.argv[1]])' "$1"
}

go build -o "$bin" ./cmd/ipgd

# Pre-allocate three free ports: the static -peers list must be known
# before any replica starts.
read -r p0 p1 p2 < <(python3 - <<'EOF'
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(*(s.getsockname()[1] for s in socks))
for s in socks:
    s.close()
EOF
)
ports=("$p0" "$p1" "$p2")
peers="http://127.0.0.1:$p0,http://127.0.0.1:$p1,http://127.0.0.1:$p2"

for i in 0 1 2; do
  "$bin" -addr "127.0.0.1:${ports[$i]}" \
    -peers "$peers" -advertise "http://127.0.0.1:${ports[$i]}" \
    -peer-breaker-threshold 1 -peer-breaker-cooldown 1h \
    >"$workdir/r$i.log" 2>&1 &
  pids[$i]=$!
done

for i in 0 1 2; do
  up=""
  for _ in $(seq 1 50); do
    grep -q 'cluster mode, 3 peers' "$workdir/r$i.log" 2>/dev/null && up=1 && break
    kill -0 "${pids[$i]}" 2>/dev/null || fail "replica $i exited at startup"
    sleep 0.1
  done
  [[ -n "$up" ]] || fail "replica $i never logged cluster mode"
done
echo "ipgd_cluster_smoke: 3 replicas at ${ports[*]}"

# Cluster flags must be validated: a bad peer list is a usage error (2).
"$bin" -peers 'not-a-url' -advertise 'http://x:1' 2>/dev/null && fail "bad -peers accepted"
rc=0; "$bin" -peers 'not-a-url' -advertise 'http://x:1' 2>/dev/null || rc=$?
[[ "$rc" == "2" ]] || fail "bad -peers exited $rc, want 2"

queries=(
  'net=hsn&l=2&nucleus=q2'
  'net=hsn&l=3&nucleus=q2'
  'net=ring-cn&l=3&nucleus=q2'
  'net=complete-cn&l=3&nucleus=q2'
  'net=sfn&l=3&nucleus=q2'
  'net=hypercube&dim=6&logm=2'
  'net=torus&k=8&side=2'
  'net=ccc&dim=4'
)

# Hammer: every key through every replica.  Non-owners must peer-fill,
# so each request answers 200 no matter which replica the client picked.
for q in "${queries[@]}"; do
  for i in 0 1 2; do
    code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 15 \
      "http://127.0.0.1:${ports[$i]}/v1/build?$q")
    [[ "$code" == "200" ]] || fail "/v1/build?$q on replica $i returned HTTP $code"
  done
done

# Exactly one build per key cluster-wide: the per-replica local_builds
# counters on /v1/cluster must sum to the number of distinct keys.
total=0
for i in 0 1 2; do
  n=$(curl -sS --max-time 10 "http://127.0.0.1:${ports[$i]}/v1/cluster" | json_field local_builds) \
    || fail "/v1/cluster on replica $i"
  total=$((total + n))
done
[[ "$total" == "${#queries[@]}" ]] \
  || fail "cluster performed $total builds for ${#queries[@]} keys, want exactly one each"
echo "ipgd_cluster_smoke: one build per key confirmed ($total/${#queries[@]})"

# Load-generator pass: drive the mixed workload through a replica with
# ipgload's open loop.  Every request must succeed — peer-fill plus the
# warm zero-allocation path have no excuse for errors at this gentle rate.
go build -o "$workdir/ipgload" ./cmd/ipgload
"$workdir/ipgload" -url "http://127.0.0.1:${ports[1]}" \
  -mode open -rps 100 -conns 4 -duration 3s -warmup 1s \
  -out "$workdir/load.json" >"$workdir/ipgload.log" 2>&1 \
  || { cat "$workdir/ipgload.log" >&2; fail "ipgload run failed"; }
loaderrs=$(python3 -c '
import json, sys
rep = json.load(open(sys.argv[1]))
print(sum(e["errors"] for e in rep["endpoints"].values()))
' "$workdir/load.json") || fail "ipgload report unreadable"
[[ "$loaderrs" == "0" ]] || { cat "$workdir/ipgload.log" >&2; fail "ipgload saw $loaderrs request errors, want 0"; }
echo "ipgd_cluster_smoke: ipgload mixed workload clean (0 errors)"

# Pick a victim that owns the first golden key, SIGKILL it (no drain,
# no goodbye), and assert the survivors keep answering and rehash its
# ownership.
key='hsn|l=2|nucleus=q2'
owner=$(curl -sG --max-time 10 --data-urlencode "key=$key" \
  "http://127.0.0.1:${ports[0]}/v1/cluster" | json_field owner) || fail "ownership lookup"
victim=-1
for i in 0 1 2; do
  [[ "$owner" == "http://127.0.0.1:${ports[$i]}" ]] && victim=$i
done
[[ "$victim" -ge 0 ]] || fail "owner $owner is not one of the replicas"
echo "ipgd_cluster_smoke: killing replica $victim ($owner)"
kill -9 "${pids[$victim]}"
wait "${pids[$victim]}" 2>/dev/null || true
pids[$victim]=""

survivors=()
for i in 0 1 2; do [[ "$i" != "$victim" ]] && survivors+=("$i"); done

for q in "${queries[@]}"; do
  for i in "${survivors[@]}"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 20 \
      "http://127.0.0.1:${ports[$i]}/v1/build?$q")
    [[ "$code" == "200" ]] || fail "post-kill /v1/build?$q on replica $i returned HTTP $code"
  done
done

for i in "${survivors[@]}"; do
  now=$(curl -sG --max-time 10 --data-urlencode "key=$key" \
    "http://127.0.0.1:${ports[$i]}/v1/cluster" | json_field owner) || fail "post-kill ownership lookup"
  [[ "$now" != "$owner" ]] || fail "replica $i still assigns $key to the dead replica"
  code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 "http://127.0.0.1:${ports[$i]}/healthz")
  [[ "$code" == "200" ]] || fail "survivor $i healthz returned HTTP $code"
done
echo "ipgd_cluster_smoke: ownership rehashed off the dead replica"

# Clean shutdown of the survivors.
for i in "${survivors[@]}"; do
  kill -TERM "${pids[$i]}"
done
for i in "${survivors[@]}"; do
  for _ in $(seq 1 50); do
    kill -0 "${pids[$i]}" 2>/dev/null || break
    sleep 0.1
  done
  kill -0 "${pids[$i]}" 2>/dev/null && fail "replica $i still running 5s after SIGTERM"
  wait "${pids[$i]}" 2>/dev/null || true
  pids[$i]=""
done

echo "ipgd_cluster_smoke: OK"
