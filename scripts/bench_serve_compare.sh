#!/usr/bin/env bash
# bench_serve_compare.sh: measure ipgd serving latency with ipgload and
# gate the tails against the checked-in baseline.
#
# Boots a fresh single-node ipgd, drives the mixed workload (healthz,
# metrics, route, simulate, faulted metrics; hot/cold key mix) through
# cmd/ipgload's coordinated-omission-safe open loop, writes the per-
# endpoint p50/p99/p999 report, and fails when any endpoint's p99
# regresses more than 15% against scripts/bench_serve_baseline.json on
# BOTH signals: raw p99 and p99 normalized by the same run's /healthz
# p99 (the ratio makes the gate meaningful on any machine, the raw
# check keeps a noisy calibration run from tripping it).
#
# Usage:
#   scripts/bench_serve_compare.sh                  # measure + gate (CI entry point)
#   BENCH_BASELINE= scripts/bench_serve_compare.sh  # measure only, no gate
#   FIND_MAX=1 scripts/bench_serve_compare.sh       # also ladder max-RPS-at-SLO (slow;
#                                                   # used to refresh BENCH_SERVE.json)
#   DURATION=10s RPS=600 scripts/bench_serve_compare.sh  # steadier samples
set -euo pipefail
cd "$(dirname "$0")/.."

# 8s at 400 RPS gives the healthz calibration class (weight 1/10) ~320
# samples, comfortably past the gate's 200-sample floor — below it the
# comparison falls back to raw p99s, which are machine-dependent.
DURATION="${DURATION:-8s}"
WARMUP="${WARMUP:-2s}"
RPS="${RPS:-400}"
CONNS="${CONNS:-16}"
SLO_P99="${SLO_P99:-50ms}"
MIX="${MIX:-healthz=1,metrics=5,route=2,simulate=1,fmetrics=1}"
OUT="${BENCH_OUT:-BENCH_SERVE.json}"
BASELINE="${BENCH_BASELINE-scripts/bench_serve_baseline.json}"
FIND_MAX="${FIND_MAX:-}"

workdir=$(mktemp -d)
pid=""
cleanup() {
  [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ipgd" ./cmd/ipgd
go build -o "$workdir/ipgload" ./cmd/ipgload

port=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')
"$workdir/ipgd" -addr "127.0.0.1:$port" >"$workdir/ipgd.log" 2>&1 &
pid=$!

up=""
for _ in $(seq 1 50); do
  curl -sf -o /dev/null --max-time 2 "http://127.0.0.1:$port/healthz" && up=1 && break
  kill -0 "$pid" 2>/dev/null || { cat "$workdir/ipgd.log" >&2; echo "bench_serve_compare: ipgd exited at startup" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$up" ]] || { echo "bench_serve_compare: ipgd never became healthy" >&2; exit 1; }

args=(-url "http://127.0.0.1:$port"
  -mode open -rps "$RPS" -conns "$CONNS"
  -duration "$DURATION" -warmup "$WARMUP"
  -mix "$MIX" -slo-p99 "$SLO_P99" -out "$OUT")
if [[ -n "$FIND_MAX" ]]; then
  args+=(-find-max-rps)
fi
if [[ -n "$BASELINE" ]]; then
  args+=(-baseline "$BASELINE" -tol 0.15)
fi

# A live-load measurement can be disturbed by host-level noise (CI
# neighbors, GC of the runner itself), so one failed gate attempt gets
# one fresh re-measurement before the script fails.  A real regression
# fails both; a one-off stall does not fail twice.
ATTEMPTS="${ATTEMPTS:-2}"
rc=1
for attempt in $(seq 1 "$ATTEMPTS"); do
  echo "bench_serve_compare: attempt $attempt/$ATTEMPTS: ipgload ${args[*]}" >&2
  if "$workdir/ipgload" "${args[@]}"; then
    rc=0
    break
  fi
  rc=$?
  [[ "$attempt" -lt "$ATTEMPTS" ]] && echo "bench_serve_compare: gate failed, re-measuring" >&2
done
echo "bench_serve_compare: wrote $OUT" >&2
exit "$rc"
