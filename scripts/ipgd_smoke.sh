#!/usr/bin/env bash
# Smoke-test the ipgd daemon: start it on an ephemeral port, hit the
# core endpoints, validate the JSON, and check it exits cleanly on
# SIGTERM.  Used by CI; runnable locally from the repo root.
set -euo pipefail

workdir=$(mktemp -d)
log="$workdir/ipgd.log"
bin="$workdir/ipgd"
pid=""

cleanup() {
  if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
    kill -9 "$pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "ipgd_smoke: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$log" >&2 || true
  exit 1
}

# JSON validation: jq if present, python3 fallback.
check_json() {
  if command -v jq >/dev/null 2>&1; then
    jq -e . >/dev/null
  else
    python3 -c 'import json,sys; json.load(sys.stdin)'
  fi
}

go build -o "$bin" ./cmd/ipgd

"$bin" -addr 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

# Wait for the listening line and parse the resolved address.
addr=""
for _ in $(seq 1 50); do
  addr=$(grep -oE 'listening on [0-9.:]+' "$log" 2>/dev/null | awk '{print $3}' || true)
  [[ -n "$addr" ]] && break
  kill -0 "$pid" 2>/dev/null || fail "daemon exited before listening"
  sleep 0.1
done
[[ -n "$addr" ]] && echo "ipgd_smoke: daemon at $addr" || fail "never saw the listening line"

curl_ok() { # curl_ok <path> -> body on stdout, fails on non-200
  local path=$1 body code
  body=$(curl -sS -w '\n%{http_code}' "http://$addr$path") || fail "curl $path"
  code=${body##*$'\n'}
  body=${body%$'\n'*}
  [[ "$code" == "200" ]] || fail "$path returned HTTP $code: $body"
  printf '%s' "$body"
}

curl_ok /healthz | check_json || fail "/healthz body is not JSON"

build=$(curl_ok '/v1/build?net=hsn&l=3&nucleus=q2')
printf '%s' "$build" | check_json || fail "/v1/build body is not JSON"
printf '%s' "$build" | grep -q '"network":"HSN(3,Q2)"' || fail "/v1/build missing network name: $build"

# A second request must be served from cache.
curl_ok '/v1/build?net=hsn&l=3&nucleus=q2' | grep -q '"cached":true' \
  || fail "second /v1/build was not a cache hit"

curl_ok '/v1/metrics?net=hsn&l=3&nucleus=q2' | check_json || fail "/v1/metrics body is not JSON"

metrics=$(curl_ok /metrics)
printf '%s\n' "$metrics" | grep -q '^ipgd_cache_hits_total 2$' || fail "expected 2 cache hits, got: $(printf '%s\n' "$metrics" | grep ipgd_cache_hits_total)"
printf '%s\n' "$metrics" | grep -q '^ipgd_cache_misses_total 1$' || fail "expected 1 cache miss"

# An invalid parameter combination must be a 400.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/build?net=hypercube&nucleus=q4")
[[ "$code" == "400" ]] || fail "invalid param combination returned HTTP $code, want 400"

# Clean SIGTERM shutdown.
kill -TERM "$pid"
for _ in $(seq 1 50); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  fail "daemon still running 5s after SIGTERM"
fi
wait "$pid" 2>/dev/null || true
pid=""
grep -q 'shutting down, draining' "$log" || fail "no graceful-drain log line"

echo "ipgd_smoke: OK"
