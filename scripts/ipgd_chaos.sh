#!/usr/bin/env bash
# Chaos-test the ipgd daemon: hammer it with malformed queries, oversized
# parameters, fault-injection requests, and mid-request disconnects, then
# assert the process is still up, /healthz is green, and a normal request
# still works.  Used by CI; runnable locally from the repo root.
set -euo pipefail

workdir=$(mktemp -d)
log="$workdir/ipgd.log"
bin="$workdir/ipgd"
pid=""
cluster_pids=()

cleanup() {
  if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
    kill -9 "$pid" 2>/dev/null || true
  fi
  for p in "${cluster_pids[@]:-}"; do
    if [[ -n "$p" ]]; then
      kill -CONT "$p" 2>/dev/null || true
      kill -9 "$p" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "ipgd_chaos: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$log" >&2 || true
  exit 1
}

go build -o "$bin" ./cmd/ipgd

# Small worker pool and queue so saturation paths get exercised too.
"$bin" -addr 127.0.0.1:0 -workers 2 -queue 2 -timeout 5s >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 50); do
  addr=$(grep -oE 'listening on [0-9.:]+' "$log" 2>/dev/null | awk '{print $3}' || true)
  [[ -n "$addr" ]] && break
  kill -0 "$pid" 2>/dev/null || fail "daemon exited before listening"
  sleep 0.1
done
[[ -n "$addr" ]] && echo "ipgd_chaos: daemon at $addr" || fail "never saw the listening line"

alive() {
  kill -0 "$pid" 2>/dev/null || fail "daemon died: $1"
  code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 "http://$addr/healthz" || true)
  [[ "$code" == "200" ]] || fail "healthz returned HTTP $code after $1"
}

# --- Malformed and hostile queries -----------------------------------
# Every one of these must produce an orderly HTTP response (any status),
# never a connection reset or a daemon crash.
hostile=(
  '/v1/build?net=bogus'
  '/v1/build?net=hsn&l=-999999999&nucleus=q2'
  '/v1/build?net=hsn&l=99999999999999999999&nucleus=q2'
  '/v1/build?net=hsn&l=3&nucleus=k1024'
  '/v1/build?net=hsn&l=3&nucleus=ghc:999999,2'
  '/v1/build?net=torus&k=2147483647&side=2'
  '/v1/metrics?net=hypercube&dim=6&logm=2&faults=-5'
  '/v1/metrics?net=hypercube&dim=6&logm=2&faults=4&fmode=psychic'
  '/v1/metrics?net=hypercube&dim=6&logm=2&faults=999999'
  '/v1/simulate?net=hypercube&dim=5&logm=1&workload=te&faults=2&fmode=adversarial'
  '/v1/simulate?net=hsn&l=2&nucleus=q2&workload=nope'
  '/v1/route?net=hsn&l=2&nucleus=q2&src=-1&dst=99999999'
  "/v1/build?net=hsn&nucleus=$(printf 'q%.0s' $(seq 1 2000))"
  '/v1/build?%zz&&&=&net'
  '/nosuchpath'
)
for path in "${hostile[@]}"; do
  curl -s -o /dev/null --max-time 10 "http://$addr$path" || true
done
alive "hostile query sweep"

# --- Mid-request disconnects -----------------------------------------
# Start expensive requests and kill the client almost immediately; the
# daemon must cancel the work and keep serving.
for i in $(seq 1 10); do
  curl -s -o /dev/null --max-time 0.05 \
    "http://$addr/v1/metrics?net=hsn&l=4&nucleus=q2&diameter=1&nocache=$i" || true
done
alive "mid-request disconnects"

# Raw half-open connection: send a partial request line and hang up.
exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}" || fail "raw connect"
printf 'GET /v1/build?net=hsn HTTP/1.1\r\n' >&3
exec 3<&- 3>&-
alive "half-open connection"

# --- Parallel hammer --------------------------------------------------
# Mixed valid, invalid, and fault-injection traffic well beyond the
# 2-worker pool: some requests will 503, none may kill the daemon.
mix=(
  '/v1/build?net=hsn&l=3&nucleus=q2'
  '/v1/metrics?net=hypercube&dim=6&logm=2&faults=4&fmode=node&fseed=7'
  '/v1/metrics?net=hypercube&dim=6&logm=2&faults=3&fmode=adversarial'
  '/v1/simulate?net=hypercube&dim=5&logm=1&workload=te&faults=3&fmode=link'
  '/v1/build?net=bogus'
  '/v1/metrics?net=torus&k=8&side=2'
)
hammer_pids=()
for round in $(seq 1 5); do
  for path in "${mix[@]}"; do
    curl -s -o /dev/null --max-time 15 "http://$addr$path" &
    hammer_pids+=("$!")
  done
done
# Wait for the curls only: a bare `wait` would block on the daemon too.
wait "${hammer_pids[@]}" || true
alive "parallel hammer"

# --- Multipath under faults -------------------------------------------
# Inject faults via fseed/fmode and hammer /v1/route?multipath=k across
# valid and clamped tree counts: every response must be orderly (no 5xx),
# the daemon must not panic, and /healthz must stay green throughout.
multipath_mix=(
  '/v1/route?net=hypercube&dim=6&logm=2&src=3&dst=44&multipath=6&faults=5&fmode=link&fseed=1'
  '/v1/route?net=hypercube&dim=6&logm=2&src=9&dst=54&multipath=6&faults=3&fmode=node&fseed=2'
  '/v1/route?net=hypercube&dim=6&logm=2&src=0&dst=63&multipath=2&faults=2&fmode=chip&fseed=3'
  '/v1/route?net=hsn&l=2&nucleus=q2&src=0&dst=5&multipath=2&faults=1&fmode=link&fseed=4'
  '/v1/route?net=hsn&l=3&nucleus=q2&src=1&dst=40&multipath=10&faults=4&fmode=node&fseed=5'
  '/v1/route?net=torus&k=8&side=2&src=0&dst=37&multipath=2&faults=3&fmode=link&fseed=6'
)
for round in 1 2 3; do
  for path in "${multipath_mix[@]}"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 15 "http://$addr$path" || true)
    case "$code" in
      5*) fail "multipath request $path returned HTTP $code" ;;
    esac
  done
  alive "multipath hammer round $round"
done
# Invalid multipath parameters must 400, never 5xx.
for path in \
  '/v1/route?net=hypercube&dim=6&logm=2&src=0&dst=1&multipath=-1' \
  '/v1/route?net=hypercube&dim=6&logm=2&src=0&dst=1&multipath=999' \
  '/v1/route?net=hypercube&dim=6&logm=2&src=0&dst=1&multipath=2&faults=1&fmode=adversarial'; do
  code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 "http://$addr$path" || true)
  [[ "$code" == "400" ]] || fail "invalid multipath request $path returned HTTP $code, want 400"
done
alive "multipath validation sweep"

# --- The daemon still does real work ---------------------------------
body=$(curl -sS --max-time 15 "http://$addr/v1/metrics?net=hypercube&dim=6&logm=2&faults=4&fmode=node&fseed=7") \
  || fail "post-chaos degraded metrics request"
printf '%s' "$body" | grep -q '"degraded"' || fail "degraded block missing post-chaos: $body"
metrics=$(curl -sS --max-time 10 "http://$addr/metrics") || fail "post-chaos /metrics"
printf '%s\n' "$metrics" | grep -q '^ipgd_panics_total 0$' || fail "daemon recovered panics under chaos: $(printf '%s\n' "$metrics" | grep ipgd_panics_total)"

kill -TERM "$pid"
for _ in $(seq 1 50); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$pid" 2>/dev/null && fail "daemon still running 5s after SIGTERM"
wait "$pid" 2>/dev/null || true
pid=""

# --- Cluster partition ------------------------------------------------
# Two replicas; one is SIGSTOPped (frozen, not dead: the TCP peer still
# accepts, then hangs — the nastiest partition flavor).  The survivor is
# hammered with keys the frozen replica owns; short peer timeouts plus
# the per-peer breaker must keep every response orderly and /healthz
# green, and the survivor must still answer after the partition heals.
cfail() {
  echo "ipgd_chaos: FAIL: $*" >&2
  for i in 0 1; do
    echo "--- cluster replica $i log ---" >&2
    cat "$workdir/c$i.log" >&2 2>/dev/null || true
  done
  exit 1
}

read -r cp0 cp1 < <(python3 - <<'EOF'
import socket
socks = [socket.socket() for _ in range(2)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(*(s.getsockname()[1] for s in socks))
for s in socks:
    s.close()
EOF
)
cpeers="http://127.0.0.1:$cp0,http://127.0.0.1:$cp1"
cports=("$cp0" "$cp1")
for i in 0 1; do
  "$bin" -addr "127.0.0.1:${cports[$i]}" \
    -peers "$cpeers" -advertise "http://127.0.0.1:${cports[$i]}" \
    -peer-timeout 2s -hedge-delay 50ms \
    -peer-breaker-threshold 2 -peer-breaker-cooldown 30s \
    -workers 2 -queue 2 -timeout 5s \
    >"$workdir/c$i.log" 2>&1 &
  cluster_pids[$i]=$!
done
for i in 0 1; do
  up=""
  for _ in $(seq 1 50); do
    grep -q 'cluster mode, 2 peers' "$workdir/c$i.log" 2>/dev/null && up=1 && break
    kill -0 "${cluster_pids[$i]}" 2>/dev/null || cfail "cluster replica $i exited at startup"
    sleep 0.1
  done
  [[ -n "$up" ]] || cfail "cluster replica $i never logged cluster mode"
done

kill -STOP "${cluster_pids[1]}"
echo "ipgd_chaos: cluster replica 1 frozen (SIGSTOP), hammering replica 0"

cluster_mix=(
  '/v1/build?net=hsn&l=2&nucleus=q2'
  '/v1/build?net=hsn&l=3&nucleus=q2'
  '/v1/build?net=hypercube&dim=6&logm=2'
  '/v1/build?net=torus&k=8&side=2'
  '/v1/build?net=ccc&dim=4'
  '/v1/metrics?net=sfn&l=3&nucleus=q2'
)
for round in 1 2 3; do
  for path in "${cluster_mix[@]}"; do
    curl -s -o /dev/null --max-time 15 "http://127.0.0.1:$cp0$path" || true
  done
done
code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 "http://127.0.0.1:$cp0/healthz" || true)
[[ "$code" == "200" ]] || cfail "survivor healthz returned HTTP $code during partition"

# Under partition, every key must still be servable by the survivor.
for path in "${cluster_mix[@]}"; do
  code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 15 "http://127.0.0.1:$cp0$path")
  [[ "$code" == "200" ]] || cfail "$path returned HTTP $code during partition"
done

kill -CONT "${cluster_pids[1]}"
code=$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 "http://127.0.0.1:$cp1/healthz" || true)
[[ "$code" == "200" ]] || cfail "thawed replica healthz returned HTTP $code"
echo "ipgd_chaos: cluster partition case OK"

for i in 0 1; do
  kill -TERM "${cluster_pids[$i]}" 2>/dev/null || true
done
for i in 0 1; do
  for _ in $(seq 1 50); do
    kill -0 "${cluster_pids[$i]}" 2>/dev/null || break
    sleep 0.1
  done
  kill -0 "${cluster_pids[$i]}" 2>/dev/null && cfail "cluster replica $i still running 5s after SIGTERM"
  wait "${cluster_pids[$i]}" 2>/dev/null || true
  cluster_pids[$i]=""
done

echo "ipgd_chaos: OK"
