#!/usr/bin/env bash
# bench_compare.sh: measure the all-sources BFS kernels and gate their
# speedup ratios against the checked-in baseline.
#
# Runs BenchmarkAllSourcesBFS (scalar vs msbfs vs symmetry, single
# threaded), converts the ns/op samples into per-family speedup ratios
# with cmd/benchratio, writes them to BENCH_PR4.json, and fails when any
# ratio drops more than 15% below scripts/bench_baseline_pr4.json.
# Ratios, not raw ns/op, are compared, so the gate is meaningful on any
# machine.
#
# Usage:
#   scripts/bench_compare.sh                # measure + gate (CI entry point)
#   BENCH_BASELINE= scripts/bench_compare.sh  # measure only, no gate
#   BENCHTIME=10x scripts/bench_compare.sh    # slower, steadier samples
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
OUT="${BENCH_OUT:-BENCH_PR4.json}"
BASELINE="${BENCH_BASELINE-scripts/bench_baseline_pr4.json}"

echo "bench_compare: running BenchmarkAllSourcesBFS (benchtime=$BENCHTIME)..." >&2
raw="$(go test -run=NONE -bench='^BenchmarkAllSourcesBFS$' -benchtime="$BENCHTIME" -cpu=1 .)"

args=(-out "$OUT")
if [[ -n "$BASELINE" ]]; then
  args+=(-baseline "$BASELINE")
fi
echo "$raw" | go run ./cmd/benchratio "${args[@]}"
echo "bench_compare: wrote $OUT" >&2
