#!/usr/bin/env bash
# bench_compare.sh: measure the all-sources BFS kernels and the
# implicit-vs-CSR neighbor generation cost, and gate their ratios against
# the checked-in baseline.
#
# Runs BenchmarkAllSourcesBFS (scalar vs msbfs vs symmetry) and
# BenchmarkNeighborGen (CSR arena rows vs rank/unrank codec rows), all
# single threaded, converts the ns/op samples into per-family ratios with
# cmd/benchratio, writes them to BENCH_PR4.json, and fails when any
# speedup drops more than 15% below — or any implicit cost factor rises
# more than 15% above — scripts/bench_baseline_pr4.json.  Ratios, not raw
# ns/op, are compared, so the gate is meaningful on any machine.
#
# Usage:
#   scripts/bench_compare.sh                # measure + gate (CI entry point)
#   BENCH_BASELINE= scripts/bench_compare.sh  # measure only, no gate
#   BENCHTIME=10x scripts/bench_compare.sh    # slower, steadier samples
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
OUT="${BENCH_OUT:-BENCH_PR4.json}"
BASELINE="${BENCH_BASELINE-scripts/bench_baseline_pr4.json}"

echo "bench_compare: running BenchmarkAllSourcesBFS + BenchmarkNeighborGen (benchtime=$BENCHTIME)..." >&2
raw="$(go test -run=NONE -bench='^(BenchmarkAllSourcesBFS|BenchmarkNeighborGen)$' -benchtime="$BENCHTIME" -cpu=1 .)"

args=(-out "$OUT")
if [[ -n "$BASELINE" ]]; then
  args+=(-baseline "$BASELINE")
fi
echo "$raw" | go run ./cmd/benchratio "${args[@]}"
echo "bench_compare: wrote $OUT" >&2
