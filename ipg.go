// Package ipg is a Go implementation of the index-permutation graph (IPG)
// model of Yeh & Parhami and a full reproduction of their ICPP 2001 paper
// "Parallel Algorithms for Index-Permutation Graphs — An Extension of
// Cayley Graphs for Multiple Chip-Multiprocessors (MCMP)".
//
// The package re-exports the main entry points of the internal substrate:
//
//   - permutations, labels and generators (internal/perm)
//   - the IPG closure engine (internal/ipg)
//   - nucleus graphs and super-IPG families: HSN, ring-CN, complete-CN,
//     SFN, RCC, HCN (internal/nucleus, internal/superipg)
//   - baseline topologies: hypercubes, tori, generalized hypercubes, CCC,
//     butterflies (internal/topology)
//   - HPN emulation under the SDC and all-port models (internal/emul,
//     internal/schedule)
//   - ascend/descend algorithms: FFT, bitonic sort, all-reduce, broadcast
//     (internal/ascend)
//   - the MCMP unit-chip-capacity model and bisection analysis
//     (internal/mcmp)
//   - a parallel packet-level network simulator (internal/netsim)
//   - the per-table/figure reproduction harness (internal/experiments)
//
// Quick start:
//
//	net := ipg.HSN(3, ipg.HypercubeNucleus(4)) // HSN(3,Q4): 4096 nodes
//	g, err := net.Build()
//	...
//	r, err := ipg.NewFFTRunner(net, g)
//	spectrum, stats, err := ipg.FFT(r, signal, false)
package ipg

import (
	"ipg/internal/ascend"
	"ipg/internal/experiments"
	igraph "ipg/internal/graph"
	iipg "ipg/internal/ipg"
	"ipg/internal/mcmp"
	"ipg/internal/netsim"
	"ipg/internal/nucleus"
	"ipg/internal/perm"
	"ipg/internal/schedule"
	"ipg/internal/superipg"
	"ipg/internal/topology"
	"ipg/internal/wormhole"
)

// Core algebra.
type (
	// Perm is a permutation acting on label positions.
	Perm = perm.Perm
	// Label is an IPG node label (a symbol string, repeats allowed).
	Label = perm.Label
	// Generator is a named permutation defining an IPG edge relation.
	Generator = perm.Generator
	// GenSet is an ordered set of generators.
	GenSet = perm.GenSet
)

// Graph types.
type (
	// Graph is a materialized IPG.
	Graph = iipg.Graph
	// Spec defines an IPG (seed + generators) before materialization.
	Spec = iipg.Spec
	// UndirectedGraph is the plain adjacency-list graph used for metrics.
	UndirectedGraph = igraph.Graph
)

// Nucleus and super-IPG types.
type (
	// Nucleus is a nucleus graph in IPG form.
	Nucleus = nucleus.Nucleus
	// Network is a super-IPG family instance (HSN, CN, SFN, ...).
	Network = superipg.Network
)

// Algorithm and model types.
type (
	// AscendStats reports communication counts of an ascend/descend run.
	AscendStats = ascend.Stats
	// Schedule is an all-port HPN-emulation schedule (Theorem 3.8).
	Schedule = schedule.Schedule
	// Clustered is a network partitioned onto chips for MCMP analysis.
	Clustered = mcmp.Clustered
	// MCMPAnalysis is the unit-chip-capacity profile of a network.
	MCMPAnalysis = mcmp.Analysis
	// SimNetwork is a simulated network for the packet-level simulator.
	SimNetwork = netsim.Network
	// ExperimentResult is one reproduced table/figure with its checks.
	ExperimentResult = experiments.Result
)

// Label and permutation constructors.
var (
	// ParseLabel parses "123 321"-style label strings.
	ParseLabel = perm.ParseLabel
	// MustParseLabel is ParseLabel that panics on error.
	MustParseLabel = perm.MustParseLabel
	// Identity returns the identity permutation on n positions.
	Identity = perm.Identity
	// Transposition returns the permutation exchanging two positions.
	Transposition = perm.Transposition
	// FromImage builds a permutation from 1-based one-line notation.
	FromImage = perm.FromImage
	// Gen names a permutation as a generator.
	Gen = perm.Gen
)

// IPG engine.
var (
	// Build materializes an IPG from its spec.
	Build = iipg.Build
	// MustBuild is Build that panics on error.
	MustBuild = iipg.MustBuild
)

// Nucleus constructors.
var (
	// HypercubeNucleus returns the binary k-cube Q_k as a nucleus.
	HypercubeNucleus = nucleus.Hypercube
	// FoldedHypercubeNucleus returns FQ_k.
	FoldedHypercubeNucleus = nucleus.FoldedHypercube
	// CompleteNucleus returns the complete graph K_m as a nucleus.
	CompleteNucleus = nucleus.Complete
	// RingNucleus returns the cycle C_m as a nucleus.
	RingNucleus = nucleus.Ring
	// GHCNucleus returns a mixed-radix generalized hypercube nucleus.
	GHCNucleus = nucleus.GeneralizedHypercube
	// StarNucleus returns the star graph S_n as a nucleus.
	StarNucleus = nucleus.Star
	// NucleusProduct returns the Cartesian product of two nuclei.
	NucleusProduct = nucleus.Product
	// NucleusPower returns the p-th Cartesian power of a nucleus.
	NucleusPower = nucleus.Power
)

// Super-IPG family constructors.
var (
	// HSN returns the l-level hierarchical swap network HSN(l, G).
	HSN = superipg.HSN
	// RingCN returns the ring cyclic network ring-CN(l, G).
	RingCN = superipg.RingCN
	// CompleteCN returns the complete cyclic network complete-CN(l, G).
	CompleteCN = superipg.CompleteCN
	// SFN returns the l-level super-flip network SFN(l, G).
	SFN = superipg.SFN
	// DirectedCN returns the directed cyclic network.
	DirectedCN = superipg.DirectedCN
	// HCN returns the hierarchical cubic network HCN(n, n).
	HCN = superipg.HCN
	// RCC returns the r-level recursively connected complete network.
	RCC = superipg.RCC
	// RHSN returns the depth-d recursive hierarchical swap network.
	RHSN = superipg.RHSN
	// HFN returns the hierarchical folded-hypercube network HFN(n, n).
	HFN = superipg.HFN
)

// Baseline topologies.
var (
	// NewHypercube builds the binary d-cube.
	NewHypercube = topology.NewHypercube
	// NewTorus builds the k-ary n-cube.
	NewTorus = topology.NewTorus
	// NewGHCGraph builds a generalized hypercube graph.
	NewGHCGraph = topology.NewGHCGraph
	// NewCCC builds the cube-connected cycles network.
	NewCCC = topology.NewCCC
	// NewButterfly builds the wrapped butterfly.
	NewButterfly = topology.NewButterfly
)

// Ascend/descend algorithms.
var (
	// FFT runs the descend-pass FFT on a super-IPG.
	FFT = ascend.FFT
	// BitonicSort sorts keys on a super-IPG with the bitonic network.
	BitonicSort = ascend.BitonicSort
	// AllReduceSum leaves the global sum at every node.
	AllReduceSum = ascend.AllReduceSum
	// Broadcast propagates address 0's value to every node.
	Broadcast = ascend.Broadcast
	// Convolve computes circular convolution via three FFT passes.
	Convolve = ascend.Convolve
	// MatMulDNS multiplies matrices with the Dekel-Nassimi-Sahni algorithm.
	MatMulDNS = ascend.MatMulDNS
	// DFT is the O(N^2) reference transform.
	DFT = ascend.DFT
)

// Wormhole / virtual cut-through flit simulation (Section 3.1 discussion).
var (
	// WormholeSlowdown measures the pipelined emulation slowdown for one
	// HPN dimension (approaches 2 as the message length grows).
	WormholeSlowdown = wormhole.Slowdown
	// EmulationPaths builds the per-node emulation paths of a dimension.
	EmulationPaths = wormhole.EmulationPaths
)

// NewFFTRunner prepares an ascend runner carrying complex data.
func NewFFTRunner(w *Network, g *Graph) (*ascend.Runner[complex128], error) {
	return ascend.NewRunner[complex128](w, g)
}

// NewFloatRunner prepares an ascend runner carrying float64 data.
func NewFloatRunner(w *Network, g *Graph) (*ascend.Runner[float64], error) {
	return ascend.NewRunner[float64](w, g)
}

// All-port scheduling (Theorem 3.8 / Figure 1).
var (
	// BuildSchedule constructs the all-port emulation schedule.
	BuildSchedule = schedule.Build
	// ScheduleSteps returns the theoretical length max(2n, l+1).
	ScheduleSteps = schedule.Steps
)

// Experiments: the per-table/figure reproduction harness.
var (
	// RunExperiment runs one experiment by id (see ExperimentIDs).
	RunExperiment = experiments.Run
	// RunAllExperiments runs the whole suite.
	RunAllExperiments = experiments.RunAll
	// ExperimentIDs lists the known experiment ids.
	ExperimentIDs = experiments.IDs
	// ExperimentTitle returns an experiment's title.
	ExperimentTitle = experiments.Title
)

// Experiment scales.
const (
	// ScaleSmall runs experiments at test-friendly sizes.
	ScaleSmall = experiments.Small
	// ScalePaper runs experiments at the sizes quoted in the paper.
	ScalePaper = experiments.Paper
)
