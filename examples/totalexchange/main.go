// Total exchange: reproduces the Section 3.3/4.1 claim that a total
// exchange (all-to-all personalized communication) needs Theta(N^2 log N)
// intercluster transmissions on a hypercube but only Theta(N^2) on a
// super-IPG, by running the full workload in the packet simulator on
// matched 512-node machines and counting every off-chip transmission.
package main

import (
	"fmt"
	"log"

	"ipg"
	"ipg/internal/analysis"
	"ipg/internal/netsim"
)

func main() {
	const n = 512 // 2^9 nodes: hypercube Q9/M=8 vs HSN(3,Q3), 64 chips of 8

	cube, err := netsim.BuildHypercube(9, 3, 1e9)
	must(err)
	resCube, err := netsim.RunTotalExchange(cube, 1, 50000)
	must(err)

	net := ipg.HSN(3, ipg.HypercubeNucleus(3))
	g, err := net.Build()
	must(err)
	hsn, err := netsim.BuildSuperIPG(net, g, 1e9, nil)
	must(err)
	resHSN, err := netsim.RunTotalExchange(hsn, 1, 50000)
	must(err)

	avgICCube := float64(9-3) / 2 // (log N - log M)/2
	avgICHSN := 2.0 * 7 / 8       // (l-1)(M-1)/M

	tb := analysis.NewTable(fmt.Sprintf("Total exchange, %d nodes, 64 chips of 8", n),
		"system", "packets", "off-chip transmissions", "analytic N^2*avgIC", "per packet")
	tb.AddRow(cube.Name, resCube.Stats.Delivered, resCube.Stats.OffChipHops,
		netsim.TotalExchangeOffChipLowerBound(n, avgICCube), resCube.Stats.OffChipPerPacket())
	tb.AddRow(hsn.Name, resHSN.Stats.Delivered, resHSN.Stats.OffChipHops,
		netsim.TotalExchangeOffChipLowerBound(n, avgICHSN), resHSN.Stats.OffChipPerPacket())
	fmt.Print(tb)

	ratio := float64(resCube.Stats.OffChipHops) / float64(resHSN.Stats.OffChipHops)
	fmt.Printf("\nhypercube / HSN off-chip ratio: %.2f — the Theta(log N) advantage\n", ratio)
	fmt.Printf("(the ratio grows as (log N - log M)/2 / ~(l-1): doubling log N doubles it)\n")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
