// Wormhole/virtual cut-through pipelining (Section 3.1): simulates every
// node exchanging an F-flit message along its dimension-emulation path and
// shows the slowdown converging from ~3 (per-flit store-and-forward cost)
// to ~2 (the embedding congestion) as messages lengthen — the paper's
// "slowdown factor is actually reduced to about 2" observation.
package main

import (
	"fmt"
	"log"

	"ipg"
	"ipg/internal/analysis"
)

func main() {
	nets := []*ipg.Network{
		ipg.HSN(3, ipg.HypercubeNucleus(3)),
		ipg.SFN(3, ipg.HypercubeNucleus(3)),
		ipg.CompleteCN(3, ipg.HypercubeNucleus(3)),
	}
	flits := []int{1, 2, 4, 8, 16, 32, 64, 128}
	headers := []string{"network"}
	for _, f := range flits {
		headers = append(headers, fmt.Sprintf("F=%d", f))
	}
	tb := analysis.NewTable("Cut-through slowdown of single-dimension emulation (makespan/F)", headers...)
	for _, w := range nets {
		g, err := w.Build()
		if err != nil {
			log.Fatal(err)
		}
		j := w.NumNucGens() + 1 // first dimension of group 2
		row := []interface{}{w.Name()}
		for _, f := range flits {
			s, err := ipg.WormholeSlowdown(w, g, j, f)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, s)
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb)
	fmt.Println("\nStore-and-forward costs 3 full steps (Cor 3.2); with pipelining the HSN/SFN")
	fmt.Println("slowdown converges to the per-dimension congestion 2, and the complete-CN —")
	fmt.Println("whose forward and return links are distinct — converges to 1.")
}
