// Quickstart: build the paper's worked-example network HSN(3,Q4), inspect
// its structure, verify the Section 2 IPG example, and run a parallel FFT
// on it through the public API.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"ipg"
)

func main() {
	// 1. The Section 2 IPG example: seed 123321 with three generators
	// yields a 36-node graph.
	spec := ipg.Spec{
		Name: "section-2-example",
		Seed: ipg.MustParseLabel("123321"),
		Gens: ipg.GenSet{
			ipg.Gen("pi1", ipg.FromImage(2, 1, 3, 4, 5, 6)),
			ipg.Gen("pi2", ipg.FromImage(3, 2, 1, 4, 5, 6)),
			ipg.Gen("pi3", ipg.FromImage(4, 5, 6, 1, 2, 3)),
		},
	}
	example, err := ipg.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Section 2 example IPG: %d nodes (paper says 36)\n", example.N())
	fmt.Printf("  seed %s neighbors:", example.Label(0))
	for gi := 0; gi < example.NumGens(); gi++ {
		fmt.Printf(" %s", example.Label(example.Neighbor(0, gi)))
	}
	fmt.Println()

	// 2. The flagship super-IPG: HSN(3,Q4), 4096 nodes in 256 chips of 16.
	net := ipg.HSN(3, ipg.HypercubeNucleus(4))
	g, err := net.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: %d nodes, %d chips of %d\n", net.Name(), g.N(), g.N()/net.M(), net.M())
	t, err := net.InterclusterT()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  intercluster diameter: %d (= l-1, Corollary 4.2)\n", t)
	fmt.Printf("  avg intercluster distance: %.4g (hypercube with same chips: 4)\n",
		net.AvgInterclusterDistance(g))

	// 3. A 4096-point FFT, executed with the paper's descend algorithm.
	r, err := ipg.NewFFTRunner(net, g)
	if err != nil {
		log.Fatal(err)
	}
	x := make([]complex128, g.N())
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*3.141592653589793*7*float64(i)/float64(len(x))))
	}
	spectrum, stats, err := ipg.FFT(r, x, false)
	if err != nil {
		log.Fatal(err)
	}
	peak, peakAt := 0.0, -1
	for k, v := range spectrum {
		if m := cmplx.Abs(v); m > peak {
			peak, peakAt = m, k
		}
	}
	fmt.Printf("\nFFT of a pure 7-cycle tone: peak at bin %d (want 7), magnitude %.1f (want %d)\n",
		peakAt, peak, len(x))
	fmt.Printf("  communication steps: %d = l(k+2)-2 (Corollary 3.6); hypercube would use %d\n",
		stats.CommSteps, r.LogN())
	fmt.Printf("  off-chip (super-generator) steps: %d vs hypercube's %d off-chip dimensions\n",
		stats.SuperSteps, r.LogN()-4)
}
