// Embeddings (Corollary 3.4): embeds rings, wrapped meshes, and complete
// binary trees into super-IPGs through the ln-dimensional hypercube, and
// measures the exact dilation of every guest edge by BFS on the
// materialized host.
package main

import (
	"fmt"
	"log"

	"ipg"
	"ipg/internal/analysis"
	"ipg/internal/embed"
)

func main() {
	hosts := []*ipg.Network{
		ipg.HCN(3),
		ipg.HFN(3),
		ipg.HSN(3, ipg.HypercubeNucleus(2)),
		ipg.CompleteCN(3, ipg.HypercubeNucleus(2)),
		ipg.SFN(3, ipg.HypercubeNucleus(2)),
	}
	tb := analysis.NewTable("Corollary 3.4: measured dilations (guest -> 6-cube -> host)",
		"host", "N", "ring(64)", "torus(8x8)", "tree(63)")
	for _, w := range hosts {
		g, err := w.Build()
		if err != nil {
			log.Fatal(err)
		}
		u := g.Undirected()
		guests := []*embed.Embedding{
			embed.Ring(6),
			embed.Mesh(3, 3, true),
			embed.CompleteBinaryTree(6),
		}
		dils := make([]interface{}, 0, 3)
		for _, e := range guests {
			comp, err := embed.IntoSuperIPG(e, w, g)
			if err != nil {
				log.Fatal(err)
			}
			d, err := embed.MeasureDilation(comp, u)
			if err != nil {
				log.Fatal(err)
			}
			dils = append(dils, d)
		}
		tb.AddRow(w.Name(), g.N(), dils[0], dils[1], dils[2])
	}
	fmt.Print(tb)
	fmt.Println("\nGray-code rings and meshes embed in the hypercube with dilation 1, the")
	fmt.Println("inorder binary tree with dilation 2; composing through the identity HPN")
	fmt.Println("embedding multiplies dilation by at most 3 (the SDC slowdown) — every")
	fmt.Println("measured value above respects Corollary 3.4's constant-dilation bound.")
}
