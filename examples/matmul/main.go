// Parallel matrix multiplication with the DNS (Dekel-Nassimi-Sahni)
// algorithm — one of the paper's listed ascend/descend applications —
// executed entirely as ascend/descend bit operations on a 512-processor
// HSN(3,Q3): lift, two broadcasts, a local multiply, and a reduction.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ipg"
	"ipg/internal/ascend"
)

func main() {
	net := ipg.HSN(3, ipg.HypercubeNucleus(3)) // 512 nodes = 8^3 processors
	g, err := net.Build()
	if err != nil {
		log.Fatal(err)
	}
	r, err := ascend.NewRunner[ascend.ABPair](net, g)
	if err != nil {
		log.Fatal(err)
	}
	rc, err := ipg.NewFloatRunner(net, g)
	if err != nil {
		log.Fatal(err)
	}

	const p = 8
	rng := rand.New(rand.NewSource(7))
	a := make([][]float64, p)
	b := make([][]float64, p)
	for i := 0; i < p; i++ {
		a[i] = make([]float64, p)
		b[i] = make([]float64, p)
		for j := 0; j < p; j++ {
			a[i][j] = rng.Float64()*2 - 1
			b[i][j] = rng.Float64()*2 - 1
		}
	}

	c, st, err := ascend.MatMulDNS(r, rc, a, b)
	if err != nil {
		log.Fatal(err)
	}
	want := ascend.MatMulReference(a, b)
	worst := 0.0
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if d := math.Abs(c[i][j] - want[i][j]); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("DNS matrix multiplication of %dx%d matrices on %s (%d processors)\n",
		p, p, net.Name(), g.N())
	fmt.Printf("  max |C - A*B| = %.2e\n", worst)
	fmt.Printf("  bit-operation exchanges: %d (= 4 log2 p phases: lift, 2 broadcasts, reduce)\n", st.Exchanges)
	fmt.Printf("  super-generator (off-chip) steps: %d; total comm steps: %d\n", st.SuperSteps, st.CommSteps)
	fmt.Printf("\nC[0] = %7.3f %7.3f %7.3f ...\n", c[0][0], c[0][1], c[0][2])
}
