// MCMP comparison — the paper's headline result: with the same 256 chips
// (16 nodes, equal pin budget each), a parallel machine wired as an
// HSN(3,Q4) has more than double the bisection bandwidth of a 12-cube and
// correspondingly higher random-routing throughput, while a 2-D torus
// falls far behind.  This example reproduces the Section 4.2 numbers and
// then demonstrates the throughput gap live in the packet simulator.
package main

import (
	"fmt"
	"log"

	"ipg"
	"ipg/internal/analysis"
	"ipg/internal/mcmp"
	"ipg/internal/netsim"
	"ipg/internal/topology"
)

func main() {
	const w = 1.0        // per-node off-chip bandwidth in the 16-node reference chip
	const chipCap = 16.0 // every system uses the same chip: budget 16w

	tb := analysis.NewTable("Section 4.2: 256 chips, equal pins (budget 16w each)",
		"system", "N", "per-link bw", "bisection width", "bisection bandwidth", "avg IC dist")

	// 12-cube with 16-node chips.
	h := topology.NewHypercube(12)
	ch, err := mcmp.ClusterHypercube(h, 4)
	must(err)
	ah, err := mcmp.Analyze(ch, mcmp.HypercubeBisection(ch), chipCap)
	must(err)
	tb.AddRow("12-cube", ah.N, ah.PerLinkBW, ah.BisectionWidth, ah.BisectionBandwidth, ah.AvgInterclusterDst)

	// HSN(3,Q4) with one nucleus per chip.
	net := ipg.HSN(3, ipg.HypercubeNucleus(4))
	g, err := net.Build()
	must(err)
	c, err := mcmp.ClusterSuperIPG(net, g)
	must(err)
	side, err := mcmp.SuperIPGBisection(net, g, c)
	must(err)
	aH, err := mcmp.Analyze(c, side, chipCap)
	must(err)
	tb.AddRow(net.Name(), aH.N, aH.PerLinkBW, aH.BisectionWidth, aH.BisectionBandwidth, aH.AvgInterclusterDst)

	// 64-ary 2-cube with 4x4 chips (same N, same chips).
	tor := topology.NewTorus(64, 2)
	ct, err := mcmp.ClusterTorus2D(tor, 4)
	must(err)
	at, err := mcmp.Analyze(ct, mcmp.Torus2DBisection(tor, ct, 4), chipCap)
	must(err)
	tb.AddRow(tor.Name(), at.N, at.PerLinkBW, at.BisectionWidth, at.BisectionBandwidth, at.AvgInterclusterDst)

	fmt.Print(tb)
	fmt.Printf("\nHSN / 12-cube bisection bandwidth ratio: %.3f (paper: \"slightly more than double\")\n\n",
		aH.BisectionBandwidth/ah.BisectionBandwidth)

	// Live throughput measurement in the packet simulator (smaller
	// instances for speed: 64 nodes, 16 chips of 4, same chip budget).
	fmt.Println("Packet-simulator saturation throughput (64 nodes, 16 chips of 4, budget 4/round):")
	cube, err := netsim.BuildHypercube(6, 2, 4.0)
	must(err)
	cubeTh, _, err := netsim.SaturationThroughput(cube, 1, 0.05, 1.2, 150, 300)
	must(err)
	small := ipg.HSN(3, ipg.HypercubeNucleus(2))
	gs, err := small.Build()
	must(err)
	hsnNet, err := netsim.BuildSuperIPG(small, gs, 4.0, nil)
	must(err)
	hsnTh, _, err := netsim.SaturationThroughput(hsnNet, 1, 0.05, 1.2, 150, 300)
	must(err)
	torus, err := netsim.BuildTorus2D(8, 2, 4.0)
	must(err)
	torTh, _, err := netsim.SaturationThroughput(torus, 1, 0.05, 1.2, 150, 300)
	must(err)
	fmt.Printf("  %-22s %.3f packets/node/round\n", cube.Name, cubeTh)
	fmt.Printf("  %-22s %.3f packets/node/round (%.2fx the hypercube)\n", hsnNet.Name, hsnTh, hsnTh/cubeTh)
	fmt.Printf("  %-22s %.3f packets/node/round (%.2fx the hypercube)\n", torus.Name, torTh, torTh/cubeTh)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
