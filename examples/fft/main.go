// FFT on super-IPGs: runs the paper's ascend/descend FFT on every
// super-IPG family and compares communication-step counts against the
// closed forms of Corollaries 3.6 and 3.7 and against a hypercube.
//
// The Corollary 3.7 configuration (CN over a radix-4 generalized
// hypercube) performs the FFT in FEWER communication steps than a
// hypercube of the same size — (2/3) log2 N — while also having lower node
// degree, one of the paper's headline algorithmic results.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"ipg"
	"ipg/internal/analysis"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	tb := analysis.NewTable("4096-point FFT, communication steps by network",
		"network", "degree", "comm steps", "hypercube (log2 N)", "off-chip steps")

	type entry struct {
		net *ipg.Network
	}
	nets := []*ipg.Network{
		ipg.HSN(3, ipg.HypercubeNucleus(4)),
		ipg.SFN(3, ipg.HypercubeNucleus(4)),
		ipg.CompleteCN(3, ipg.HypercubeNucleus(4)),
		ipg.RingCN(3, ipg.HypercubeNucleus(4)),
		ipg.CompleteCN(2, ipg.GHCNucleus(4, 4, 4)), // Cor 3.7's star: beats the cube
		ipg.HSN(2, ipg.GHCNucleus(4, 4, 4)),
	}
	for _, net := range nets {
		g, err := net.Build()
		if err != nil {
			log.Fatal(err)
		}
		r, err := ipg.NewFFTRunner(net, g)
		if err != nil {
			log.Fatal(err)
		}
		x := make([]complex128, g.N())
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		spectrum, stats, err := ipg.FFT(r, x, false)
		if err != nil {
			log.Fatal(err)
		}
		// Verify by inverse-transform round trip (the full O(N^2) DFT
		// comparison lives in the test suite).
		back, _, err := ipg.FFT(r, spectrum, true)
		if err != nil {
			log.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-6*float64(g.N()) {
				log.Fatalf("%s: FFT round-trip failed at %d", net.Name(), i)
			}
		}
		u := g.Undirected()
		_, maxDeg, _ := u.DegreeStats()
		tb.AddRow(net.Name(), maxDeg, stats.CommSteps, r.LogN(), stats.SuperSteps)
	}
	fmt.Print(tb)
	fmt.Println("\nNote: complete-CN(2, GHC(4,4,4)) finishes in (2/3) log2 N steps — faster")
	fmt.Println("than a hypercube — at lower degree (Corollary 3.7's worked example).")
}
