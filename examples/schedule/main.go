// Schedule viewer: constructs, verifies, and prints the all-port
// HPN-emulation schedules of Theorem 3.8, reproducing both panels of
// Figure 1 (l=4/n=3 and l=5/n=3) with their utilization statistics.
package main

import (
	"fmt"
	"log"

	"ipg"
)

func show(l, n int, caption string) {
	w := ipg.HSN(l, ipg.HypercubeNucleus(n))
	s, err := ipg.BuildSchedule(w)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		log.Fatalf("schedule invalid: %v", err)
	}
	perStep, avg := s.Utilization()
	fmt.Printf("%s\nEmulating a %d-dimensional HPN(%d,G) on %s: %d steps (max(2n,l+1)=%d)\n",
		caption, l*n, l, w.Name(), s.T, ipg.ScheduleSteps(l, n))
	fmt.Print(s.Render())
	fmt.Printf("per-step link utilization:")
	for _, u := range perStep {
		fmt.Printf(" %.0f%%", 100*u)
	}
	fmt.Printf("\naverage: %.1f%%\n\n", 100*avg)
}

func main() {
	show(4, 3, "--- Figure 1a ---")
	show(5, 3, "--- Figure 1b (paper: fully used steps 1-5, 93% average) ---")
	// Beyond the paper's figures: a larger instance in the l+1 > 2n regime.
	show(9, 3, "--- l=9, n=3: the l+1 > 2n regime ---")
}
