// Bitonic sorting on super-IPGs: sorts random keys on several families
// with the bitonic sorting network executed as ascend/descend bit
// operations, verifies the output, and reports the communication cost
// relative to a hypercube running the same algorithm.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ipg"
	"ipg/internal/analysis"
	"ipg/internal/ascend"
)

func main() {
	rng := rand.New(rand.NewSource(2026))

	tb := analysis.NewTable("Bitonic sort of 256 keys",
		"network", "exchanges", "super steps", "comm steps", "sorted")
	nets := []*ipg.Network{
		ipg.HSN(2, ipg.HypercubeNucleus(4)),
		ipg.HSN(4, ipg.HypercubeNucleus(2)),
		ipg.CompleteCN(4, ipg.HypercubeNucleus(2)),
		ipg.RingCN(4, ipg.HypercubeNucleus(2)),
		ipg.SFN(4, ipg.HypercubeNucleus(2)),
	}
	for _, net := range nets {
		g, err := net.Build()
		if err != nil {
			log.Fatal(err)
		}
		r, err := ipg.NewFloatRunner(net, g)
		if err != nil {
			log.Fatal(err)
		}
		keys := make([]float64, g.N())
		for i := range keys {
			keys[i] = rng.Float64() * 1000
		}
		sorted, st, err := ipg.BitonicSort(r, keys)
		if err != nil {
			log.Fatal(err)
		}
		ok := true
		want := ascend.SortedReference(keys)
		for i := range want {
			if sorted[i] != want[i] {
				ok = false
				break
			}
		}
		tb.AddRow(net.Name(), st.Exchanges, st.SuperSteps, st.CommSteps, ok)
	}
	fmt.Print(tb)
	logN := 8
	fmt.Printf("\nThe bitonic network needs log N (log N + 1)/2 = %d compare-exchange stages;\n",
		logN*(logN+1)/2)
	fmt.Println("a hypercube pays exactly one communication step per stage, the super-IPGs")
	fmt.Println("add the super-generator transitions counted above — and under the MCMP model")
	fmt.Println("each of their few off-chip steps rides a much wider link (see examples/mcmp).")
}
