package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: ipg
BenchmarkAllSourcesBFS/HSN3Q4/scalar-8         	       3	 300000000 ns/op
BenchmarkAllSourcesBFS/HSN3Q4/msbfs-8          	       3	  50000000 ns/op
BenchmarkAllSourcesBFS/Q12/scalar-8            	       3	 320000000 ns/op
BenchmarkAllSourcesBFS/Q12/msbfs-8             	       3	  40000000 ns/op
BenchmarkAllSourcesBFS/Q12/symmetry-8          	   50000	     80000 ns/op
BenchmarkBFS_CSR/csr-8                         	     100	  10000000 ns/op
PASS
`

func sampleReport(t *testing.T) *Report {
	t.Helper()
	samples, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := buildReport(samples)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseAndRatios(t *testing.T) {
	rep := sampleReport(t)
	if len(rep.Families) != 2 {
		t.Fatalf("got %d families, want 2 (unrelated benchmarks must be skipped)", len(rep.Families))
	}
	hsn := rep.Families["HSN3Q4"]
	if hsn.MSBFSSpeedup != 6.0 {
		t.Errorf("HSN3Q4 msbfs speedup = %v, want 6.0", hsn.MSBFSSpeedup)
	}
	if hsn.SymmetrySpeed != 0 {
		t.Errorf("HSN3Q4 is not vertex-transitive; symmetry speedup should be absent, got %v", hsn.SymmetrySpeed)
	}
	q12 := rep.Families["Q12"]
	if q12.MSBFSSpeedup != 8.0 {
		t.Errorf("Q12 msbfs speedup = %v, want 8.0", q12.MSBFSSpeedup)
	}
	if q12.SymmetrySpeed != 4000.0 {
		t.Errorf("Q12 symmetry speedup = %v, want 4000.0", q12.SymmetrySpeed)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	rep := sampleReport(t)
	base := sampleReport(t)
	// A 10% slowdown passes under the default 15% tolerance.
	fr := rep.Families["Q12"]
	fr.MSBFSSpeedup *= 0.90
	rep.Families["Q12"] = fr
	if problems := compare(rep, base, 0.15); len(problems) != 0 {
		t.Errorf("10%% regression under 15%% tolerance should pass, got %v", problems)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	rep := sampleReport(t)
	base := sampleReport(t)
	fr := rep.Families["Q12"]
	fr.MSBFSSpeedup *= 0.5
	rep.Families["Q12"] = fr
	problems := compare(rep, base, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "Q12 msbfs") {
		t.Errorf("50%% regression must fail with one Q12 msbfs problem, got %v", problems)
	}
}

func TestCompareMissingFamilyFails(t *testing.T) {
	rep := sampleReport(t)
	base := sampleReport(t)
	delete(rep.Families, "HSN3Q4")
	problems := compare(rep, base, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "not measured") {
		t.Errorf("dropped family must fail, got %v", problems)
	}
}

func TestCompareLostSymmetryFails(t *testing.T) {
	rep := sampleReport(t)
	base := sampleReport(t)
	fr := rep.Families["Q12"]
	fr.SymmetryNs, fr.SymmetrySpeed = 0, 0
	rep.Families["Q12"] = fr
	problems := compare(rep, base, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "symmetry") {
		t.Errorf("lost symmetry benchmark must fail, got %v", problems)
	}
}

func TestCompareNewFamilyPasses(t *testing.T) {
	rep := sampleReport(t)
	base := sampleReport(t)
	rep.Families["NewFam"] = FamilyRatios{ScalarNs: 1, MSBFSNs: 1, MSBFSSpeedup: 1}
	if problems := compare(rep, base, 0.15); len(problems) != 0 {
		t.Errorf("family absent from baseline must pass, got %v", problems)
	}
}
