// Command benchratio turns `go test -bench` output for
// BenchmarkAllSourcesBFS into the machine-independent speedup ratios
// tracked in BENCH_PR4.json, and optionally gates them against a
// checked-in baseline.
//
// Raw ns/op numbers vary by machine, so CI cannot compare them against a
// committed file.  The *ratios* between kernels on the same machine and
// graph — scalar/msbfs and scalar/symmetry — measure the algorithmic
// speedup itself and are stable enough to gate on: a change that slows
// the MSBFS kernel relative to the scalar one shrinks the ratio no matter
// the hardware.
//
// Usage:
//
//	go test -run=NONE -bench=AllSourcesBFS -benchtime=3x . | benchratio -out BENCH_PR4.json [-baseline scripts/bench_baseline_pr4.json]
//
// With -baseline the tool exits nonzero when any family's speedup falls
// below the baseline's by more than the tolerance (default 15%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// FamilyRatios is one family's measured kernels and derived speedups.
// Ns fields are informational (machine-dependent); Speedup fields are
// what the baseline comparison gates on.
type FamilyRatios struct {
	ScalarNs      float64 `json:"scalar_ns"`
	MSBFSNs       float64 `json:"msbfs_ns"`
	MSBFSSpeedup  float64 `json:"msbfs_speedup"`
	SymmetryNs    float64 `json:"symmetry_ns,omitempty"`
	SymmetrySpeed float64 `json:"symmetry_speedup,omitempty"`
}

// Report is the top-level BENCH_PR4.json document.
type Report struct {
	Benchmark string                  `json:"benchmark"`
	Note      string                  `json:"note"`
	Families  map[string]FamilyRatios `json:"families"`
}

// parseBench extracts per-(family, kernel) ns/op from go-test bench
// output lines of the form
//
//	BenchmarkAllSourcesBFS/HSN3Q4/scalar-8  3  325575935 ns/op
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		const prefix = "BenchmarkAllSourcesBFS/"
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		parts := strings.Split(strings.TrimPrefix(name, prefix), "/")
		if len(parts) != 2 {
			continue
		}
		family := parts[0]
		kernel := parts[1]
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(kernel, "-"); i > 0 {
			kernel = kernel[:i]
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchratio: bad ns/op %q in %q", fields[2], sc.Text())
		}
		if out[family] == nil {
			out[family] = make(map[string]float64)
		}
		out[family][kernel] = ns
	}
	return out, sc.Err()
}

// buildReport derives speedup ratios from the parsed samples.
func buildReport(samples map[string]map[string]float64) (*Report, error) {
	rep := &Report{
		Benchmark: "BenchmarkAllSourcesBFS",
		Note:      "speedup fields are scalar_ns/<kernel>_ns on one machine and are the gated quantities; raw ns fields are informational",
		Families:  make(map[string]FamilyRatios),
	}
	for family, kernels := range samples {
		scalar, ok := kernels["scalar"]
		if !ok || scalar <= 0 {
			return nil, fmt.Errorf("benchratio: family %s has no scalar sample", family)
		}
		msbfs, ok := kernels["msbfs"]
		if !ok || msbfs <= 0 {
			return nil, fmt.Errorf("benchratio: family %s has no msbfs sample", family)
		}
		fr := FamilyRatios{
			ScalarNs:     scalar,
			MSBFSNs:      msbfs,
			MSBFSSpeedup: round2(scalar / msbfs),
		}
		if sym, ok := kernels["symmetry"]; ok && sym > 0 {
			fr.SymmetryNs = sym
			fr.SymmetrySpeed = round2(scalar / sym)
		}
		rep.Families[family] = fr
	}
	if len(rep.Families) == 0 {
		return nil, fmt.Errorf("benchratio: no BenchmarkAllSourcesBFS samples on stdin")
	}
	return rep, nil
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// compare gates rep against base: any family present in the baseline must
// keep its speedups within tol of the baseline values.  Families new to
// rep pass (the next baseline refresh picks them up); families missing
// from rep fail, since a silently dropped benchmark must not pass CI.
func compare(rep, base *Report, tol float64) []string {
	var problems []string
	names := make([]string, 0, len(base.Families))
	for name := range base.Families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Families[name]
		cur, ok := rep.Families[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("family %s is in the baseline but was not measured", name))
			continue
		}
		if floor := b.MSBFSSpeedup * (1 - tol); cur.MSBFSSpeedup < floor {
			problems = append(problems, fmt.Sprintf(
				"family %s msbfs speedup %.2fx is below baseline %.2fx - %.0f%% = %.2fx",
				name, cur.MSBFSSpeedup, b.MSBFSSpeedup, tol*100, floor))
		}
		if b.SymmetrySpeed > 0 {
			if cur.SymmetrySpeed == 0 {
				problems = append(problems, fmt.Sprintf("family %s lost its symmetry benchmark", name))
			} else if floor := b.SymmetrySpeed * (1 - tol); cur.SymmetrySpeed < floor {
				problems = append(problems, fmt.Sprintf(
					"family %s symmetry speedup %.0fx is below baseline %.0fx - %.0f%% = %.0fx",
					name, cur.SymmetrySpeed, b.SymmetrySpeed, tol*100, floor))
			}
		}
	}
	return problems
}

func run(in io.Reader, outPath, baselinePath string, tol float64) error {
	samples, err := parseBench(in)
	if err != nil {
		return err
	}
	rep, err := buildReport(samples)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(data)
	}
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchratio: bad baseline %s: %w", baselinePath, err)
	}
	if problems := compare(rep, &base, tol); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchratio: FAIL:", p)
		}
		return fmt.Errorf("benchratio: %d speedup regression(s) vs %s", len(problems), baselinePath)
	}
	fmt.Fprintf(os.Stderr, "benchratio: %d families within %.0f%% of baseline speedups\n", len(base.Families), tol*100)
	return nil
}

func main() {
	out := flag.String("out", "", "write the ratio report JSON here (default stdout)")
	baseline := flag.String("baseline", "", "baseline report to gate speedups against")
	tol := flag.Float64("tol", 0.15, "allowed fractional speedup regression vs baseline")
	flag.Parse()
	if err := run(os.Stdin, *out, *baseline, *tol); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
