// Command benchratio turns `go test -bench` output for
// BenchmarkAllSourcesBFS and BenchmarkNeighborGen into the
// machine-independent ratios tracked in BENCH_PR4.json, and optionally
// gates them against a checked-in baseline.
//
// Raw ns/op numbers vary by machine, so CI cannot compare them against a
// committed file.  The *ratios* between kernels on the same machine and
// graph — scalar/msbfs and scalar/symmetry for the BFS kernels,
// implicit/csr for neighbor generation — measure the algorithmic
// trade-off itself and are stable enough to gate on: a change that slows
// the MSBFS kernel relative to the scalar one shrinks its speedup, and a
// codec change that slows implicit rows relative to arena loads grows
// the implicit cost factor, no matter the hardware.  Speedups are gated
// as floors, the implicit cost factor as a ceiling.
//
// Usage:
//
//	go test -run=NONE -bench=AllSourcesBFS -benchtime=3x . | benchratio -out BENCH_PR4.json [-baseline scripts/bench_baseline_pr4.json]
//
// With -baseline the tool exits nonzero when any family's speedup falls
// below the baseline's by more than the tolerance (default 15%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// FamilyRatios is one family's measured kernels and derived ratios.
// Ns fields are informational (machine-dependent); Speedup and Cost
// fields are what the baseline comparison gates on.
type FamilyRatios struct {
	ScalarNs      float64 `json:"scalar_ns,omitempty"`
	MSBFSNs       float64 `json:"msbfs_ns,omitempty"`
	MSBFSSpeedup  float64 `json:"msbfs_speedup,omitempty"`
	SymmetryNs    float64 `json:"symmetry_ns,omitempty"`
	SymmetrySpeed float64 `json:"symmetry_speedup,omitempty"`
	// NeighborGen samples: the cost factor of regenerating a neighbor
	// row from the rank/unrank codec instead of loading a CSR arena row.
	// Gated as a ceiling — implicit serving must not quietly get slower
	// relative to the arena.
	CSRNs        float64 `json:"ngen_csr_ns,omitempty"`
	ImplicitNs   float64 `json:"ngen_implicit_ns,omitempty"`
	ImplicitCost float64 `json:"implicit_cost,omitempty"`
}

// Report is the top-level BENCH_PR4.json document.
type Report struct {
	Benchmark string                  `json:"benchmark"`
	Note      string                  `json:"note"`
	Families  map[string]FamilyRatios `json:"families"`
}

// parseBench extracts per-(family, kernel) ns/op from go-test bench
// output lines of the form
//
//	BenchmarkAllSourcesBFS/HSN3Q4/scalar-8  3  325575935 ns/op
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		var rest, kernelPrefix string
		switch {
		case strings.HasPrefix(name, "BenchmarkAllSourcesBFS/"):
			rest = strings.TrimPrefix(name, "BenchmarkAllSourcesBFS/")
		case strings.HasPrefix(name, "BenchmarkNeighborGen/"):
			rest = strings.TrimPrefix(name, "BenchmarkNeighborGen/")
			kernelPrefix = "ngen_"
		default:
			continue
		}
		parts := strings.Split(rest, "/")
		if len(parts) != 2 {
			continue
		}
		family := parts[0]
		kernel := kernelPrefix + parts[1]
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(kernel, "-"); i > 0 {
			kernel = kernel[:i]
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchratio: bad ns/op %q in %q", fields[2], sc.Text())
		}
		if out[family] == nil {
			out[family] = make(map[string]float64)
		}
		out[family][kernel] = ns
	}
	return out, sc.Err()
}

// buildReport derives speedup ratios from the parsed samples.
func buildReport(samples map[string]map[string]float64) (*Report, error) {
	rep := &Report{
		Benchmark: "BenchmarkAllSourcesBFS+BenchmarkNeighborGen",
		Note:      "speedup fields are scalar_ns/<kernel>_ns and implicit_cost is ngen_implicit_ns/ngen_csr_ns, all measured on one machine; the ratios are the gated quantities, raw ns fields are informational",
		Families:  make(map[string]FamilyRatios),
	}
	for family, kernels := range samples {
		var fr FamilyRatios
		scalar, hasBFS := kernels["scalar"]
		if hasBFS {
			if scalar <= 0 {
				return nil, fmt.Errorf("benchratio: family %s has a bad scalar sample", family)
			}
			msbfs, ok := kernels["msbfs"]
			if !ok || msbfs <= 0 {
				return nil, fmt.Errorf("benchratio: family %s has no msbfs sample", family)
			}
			fr.ScalarNs = scalar
			fr.MSBFSNs = msbfs
			fr.MSBFSSpeedup = round2(scalar / msbfs)
			if sym, ok := kernels["symmetry"]; ok && sym > 0 {
				fr.SymmetryNs = sym
				fr.SymmetrySpeed = round2(scalar / sym)
			}
		}
		csr, hasNgen := kernels["ngen_csr"]
		if hasNgen {
			impl, ok := kernels["ngen_implicit"]
			if !ok || csr <= 0 || impl <= 0 {
				return nil, fmt.Errorf("benchratio: family %s has incomplete NeighborGen samples", family)
			}
			fr.CSRNs = csr
			fr.ImplicitNs = impl
			fr.ImplicitCost = round2(impl / csr)
		}
		if !hasBFS && !hasNgen {
			return nil, fmt.Errorf("benchratio: family %s has no usable samples", family)
		}
		rep.Families[family] = fr
	}
	if len(rep.Families) == 0 {
		return nil, fmt.Errorf("benchratio: no benchmark samples on stdin")
	}
	return rep, nil
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// compare gates rep against base: any family present in the baseline must
// keep its speedups within tol of the baseline values.  Families new to
// rep pass (the next baseline refresh picks them up); families missing
// from rep fail, since a silently dropped benchmark must not pass CI.
func compare(rep, base *Report, tol float64) []string {
	var problems []string
	names := make([]string, 0, len(base.Families))
	for name := range base.Families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Families[name]
		cur, ok := rep.Families[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("family %s is in the baseline but was not measured", name))
			continue
		}
		if b.MSBFSSpeedup > 0 {
			if cur.MSBFSSpeedup == 0 {
				problems = append(problems, fmt.Sprintf("family %s lost its msbfs benchmark", name))
			} else if floor := b.MSBFSSpeedup * (1 - tol); cur.MSBFSSpeedup < floor {
				problems = append(problems, fmt.Sprintf(
					"family %s msbfs speedup %.2fx is below baseline %.2fx - %.0f%% = %.2fx",
					name, cur.MSBFSSpeedup, b.MSBFSSpeedup, tol*100, floor))
			}
		}
		if b.ImplicitCost > 0 {
			if cur.ImplicitCost == 0 {
				problems = append(problems, fmt.Sprintf("family %s lost its NeighborGen benchmark", name))
			} else if ceil := b.ImplicitCost * (1 + tol); cur.ImplicitCost > ceil {
				problems = append(problems, fmt.Sprintf(
					"family %s implicit neighbor-gen cost %.2fx is above baseline %.2fx + %.0f%% = %.2fx",
					name, cur.ImplicitCost, b.ImplicitCost, tol*100, ceil))
			}
		}
		if b.SymmetrySpeed > 0 {
			if cur.SymmetrySpeed == 0 {
				problems = append(problems, fmt.Sprintf("family %s lost its symmetry benchmark", name))
			} else if floor := b.SymmetrySpeed * (1 - tol); cur.SymmetrySpeed < floor {
				problems = append(problems, fmt.Sprintf(
					"family %s symmetry speedup %.0fx is below baseline %.0fx - %.0f%% = %.0fx",
					name, cur.SymmetrySpeed, b.SymmetrySpeed, tol*100, floor))
			}
		}
	}
	return problems
}

func run(in io.Reader, outPath, baselinePath string, tol float64) error {
	samples, err := parseBench(in)
	if err != nil {
		return err
	}
	rep, err := buildReport(samples)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(data)
	}
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchratio: bad baseline %s: %w", baselinePath, err)
	}
	if problems := compare(rep, &base, tol); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchratio: FAIL:", p)
		}
		return fmt.Errorf("benchratio: %d speedup regression(s) vs %s", len(problems), baselinePath)
	}
	fmt.Fprintf(os.Stderr, "benchratio: %d families within %.0f%% of baseline ratios\n", len(base.Families), tol*100)
	return nil
}

func main() {
	out := flag.String("out", "", "write the ratio report JSON here (default stdout)")
	baseline := flag.String("baseline", "", "baseline report to gate speedups against")
	tol := flag.Float64("tol", 0.15, "allowed fractional speedup regression vs baseline")
	flag.Parse()
	if err := run(os.Stdin, *out, *baseline, *tol); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
