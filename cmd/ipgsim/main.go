// Command ipgsim drives the packet-level network simulator on the paper's
// network families and workloads.
//
// Usage examples:
//
//	ipgsim -net hsn -l 3 -nucleus q4 -workload random -rate 0.5
//	ipgsim -net hypercube -dim 12 -logm 4 -workload sweep
//	ipgsim -net hsn -l 3 -nucleus q3 -workload te
//	ipgsim -net torus -k 16 -side 4 -workload transpose
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ipg/internal/fault"
	"ipg/internal/ist"
	"ipg/internal/netsim"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

func main() {
	var (
		netName  = flag.String("net", "hsn", "network: hsn|hypercube|torus")
		l        = flag.Int("l", 3, "super-symbols (hsn)")
		nucName  = flag.String("nucleus", "q2", "nucleus: qK (hsn)")
		dim      = flag.Int("dim", 8, "dimension (hypercube)")
		logm     = flag.Int("logm", 2, "log2 nodes/chip (hypercube)")
		k        = flag.Int("k", 8, "radix (torus)")
		side     = flag.Int("side", 2, "chip side (torus)")
		chipCap  = flag.Float64("chipcap", 8.0, "off-chip budget per chip, packets/round")
		workload = flag.String("workload", "random", "workload: random|sweep|te|transpose")
		rate     = flag.Float64("rate", 0.2, "injection rate, packets/node/round (random)")
		warm     = flag.Int("warmup", 150, "warmup rounds")
		measure  = flag.Int("measure", 300, "measured rounds")
		seed     = flag.Int64("seed", 1, "PRNG seed")

		faults    = flag.Int("faults", 0, "failures injected before the run (0 = healthy network)")
		fmode     = flag.String("fmode", "node", "failure mode: node|link|chip")
		fseed     = flag.Int64("fseed", 1, "failure sample seed")
		frouting  = flag.String("frouting", "aware", "degraded routing: aware|oblivious")
		multipath = flag.Int("multipath", 0, "route over k independent spanning trees with alive-path fallback (0 = off)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		usageError("unexpected arguments: %v", flag.Args())
	}
	validateFlags(*netName, *nucName, *workload, *rate, *chipCap, *warm, *measure)
	fspec := validateFaultFlags(*faults, *fmode, *fseed, *frouting)
	if *multipath < 0 {
		usageError("-multipath must be >= 0, got %d", *multipath)
	}
	if *multipath > 0 && *frouting == "oblivious" {
		usageError("-multipath replaces the degraded routing policy; drop -frouting=oblivious")
	}

	net, logN, addrToNode, nodeToAddr := buildNet(*netName, *l, *nucName, *dim, *logm, *k, *side, *chipCap)
	fmt.Printf("network: %s (%d nodes)\n", net.Name, net.N)
	net = degradeNet(net, fspec, *frouting, *multipath)
	net = installMultipath(net, *netName, *dim, *multipath)

	switch *workload {
	case "random":
		res, err := netsim.RunRandomUniform(net, *seed, *rate, *warm, *measure)
		fail(err)
		fmt.Printf("offered %.3f, accepted %.3f packets/node/round; latency %.2f rounds\n",
			res.Rate, res.Accepted, res.Latency)
		fmt.Printf("off-chip transmissions/packet: %.3f; saturated: %v\n",
			res.Stats.OffChipPerPacket(), res.Saturated)
		printFaultStats(fspec, res.Stats)
	case "sweep":
		best, trace, err := netsim.SaturationThroughput(net, *seed, *rate, 100**rate, *warm, *measure)
		fail(err)
		fmt.Printf("%-8s %-10s %-10s %s\n", "rate", "accepted", "latency", "saturated")
		for _, r := range trace {
			fmt.Printf("%-8.3f %-10.3f %-10.2f %v\n", r.Rate, r.Accepted, r.Latency, r.Saturated)
		}
		fmt.Printf("saturation throughput: %.3f packets/node/round\n", best)
	case "te":
		res, err := netsim.RunTotalExchange(net, *seed, 1<<22)
		fail(err)
		fmt.Printf("total exchange: %d packets in %d rounds\n", res.Stats.Delivered, res.Rounds)
		fmt.Printf("off-chip transmissions: %d (%.3f per packet)\n",
			res.Stats.OffChipHops, res.Stats.OffChipPerPacket())
		printFaultStats(fspec, res.Stats)
	case "transpose":
		if logN%2 != 0 {
			fail(fmt.Errorf("transpose needs an even number of address bits, network has %d", logN))
		}
		if 1<<logN != net.N {
			fail(fmt.Errorf("transpose needs a power-of-two node count, network has %d", net.N))
		}
		perm, err := netsim.Transpose(logN)
		fail(err)
		if addrToNode != nil {
			// Map the address-space permutation onto simulator node ids.
			mapped := make([]int32, net.N)
			for v := 0; v < net.N; v++ {
				mapped[v] = addrToNode[perm[nodeToAddr[v]]]
			}
			perm = mapped
		}
		res, err := netsim.RunPermutation(net, *seed, perm, 1<<22)
		fail(err)
		fmt.Printf("transpose: %d packets in %d rounds; %d off-chip transmissions\n",
			res.Stats.Delivered, res.Rounds, res.Stats.OffChipHops)
		printFaultStats(fspec, res.Stats)
	default:
		fail(fmt.Errorf("unknown workload %q", *workload))
	}
}

// validateFaultFlags parses the fault flags into a spec, or nil when the
// run is on a healthy network.
func validateFaultFlags(faults int, fmode string, fseed int64, frouting string) *fault.Spec {
	if faults < 0 {
		usageError("-faults must be >= 0, got %d", faults)
	}
	mode, err := fault.ParseMode(fmode)
	if err != nil {
		usageError("%v", err)
	}
	if mode == fault.Adversarial {
		usageError("adversarial faults target graph cuts and have no port-level analogue; use ipgtool's degraded metrics instead")
	}
	if frouting != "aware" && frouting != "oblivious" {
		usageError("-frouting must be aware or oblivious, got %q", frouting)
	}
	if faults == 0 {
		return nil
	}
	return &fault.Spec{Mode: mode, Count: faults, Seed: fseed}
}

// degradeNet applies the fault spec (if any) to the built network and
// installs the fault-aware router when requested.  A pending multipath
// router (installed right after) supersedes the routing policy here.
func degradeNet(net *netsim.Network, spec *fault.Spec, frouting string, multipath int) *netsim.Network {
	if spec == nil {
		return net
	}
	dnet, sum, err := netsim.Degrade(net, *spec)
	fail(err)
	routing := frouting
	if multipath > 0 {
		routing = fmt.Sprintf("multipath(%d)", multipath)
	} else if frouting == "aware" {
		far, err := netsim.NewFaultAwareRouter(dnet)
		fail(err)
		dnet.Router = far
	}
	fmt.Printf("faults: mode=%s seed=%d routing=%s; dead nodes %d, links %d, chips %d\n",
		sum.Mode, spec.Seed, routing, len(sum.DeadNodes), len(sum.DeadLinks), len(sum.DeadChips))
	return dnet
}

// installMultipath replaces the network's router with the independent
// spanning tree multipath router: the closed-form k <= dim family on
// the hypercube, the generic 2-IST family elsewhere.  It applies to
// healthy and degraded networks alike (on a healthy network every pair
// rides tree 0, so results match minimal routing).
func installMultipath(net *netsim.Network, netName string, dim, k int) *netsim.Network {
	if k <= 0 {
		return net
	}
	var src netsim.TreeSource
	if netName == "hypercube" {
		if k > dim {
			k = dim
		}
		kk := k
		src = func(dst int) (*ist.Trees, error) { return ist.BuildHypercube(dim, dst, kk) }
	} else {
		if k > ist.GenericMaxTrees {
			k = ist.GenericMaxTrees
		}
		src = netsim.GenericTreeSource(net, k)
	}
	mpr, err := netsim.NewMultipathRouter(net, src)
	fail(err)
	net.Router = mpr
	fmt.Printf("multipath: %d independent trees; pairs: %d tree, %d fallback, %d unreachable\n",
		k, mpr.TreePairs.Load(), mpr.FallbackPairs.Load(), mpr.UnreachablePairs.Load())
	return net
}

// printFaultStats reports the degraded-run packet accounting; on a
// healthy run it prints nothing.
func printFaultStats(spec *fault.Spec, st netsim.Stats) {
	if spec == nil {
		return
	}
	fmt.Printf("injected %d = delivered %d + dropped %d + in-flight %d; misroute retries %d\n",
		st.Injected, st.Delivered, st.Dropped, st.Injected-st.Delivered-st.Dropped, st.Retried)
}

// simFamilyParams maps each simulable family to the parameter flags it
// consumes; providing a flag the family ignores (e.g. `-net hypercube
// -nucleus q4`) is a usage error rather than a silent no-op.
var simFamilyParams = map[string]map[string]bool{
	"hsn":       {"l": true, "nucleus": true},
	"hypercube": {"dim": true, "logm": true},
	"torus":     {"k": true, "side": true},
}

// validateFlags rejects invalid flag combinations with a usage error and
// exit code 2 before any network is built.
func validateFlags(netName, nucName, workload string, rate, chipCap float64, warm, measure int) {
	allowed, ok := simFamilyParams[netName]
	if !ok {
		usageError("unknown network %q (known: hsn, hypercube, torus)", netName)
	}
	paramFlags := map[string]bool{
		"l": true, "nucleus": true, "dim": true, "logm": true, "k": true, "side": true,
	}
	flag.Visit(func(f *flag.Flag) {
		if paramFlags[f.Name] && !allowed[f.Name] {
			usageError("flag -%s does not apply to net %q", f.Name, netName)
		}
	})
	if netName == "hsn" {
		// The simulator's HSN router needs a hypercube nucleus.
		kk, err := strconv.Atoi(strings.TrimPrefix(nucName, "q"))
		if !strings.HasPrefix(nucName, "q") || err != nil || kk < 1 {
			usageError("ipgsim supports only hypercube nuclei (qK), got %q", nucName)
		}
	}
	switch workload {
	case "random", "sweep", "te", "transpose":
	default:
		usageError("unknown workload %q (random|sweep|te|transpose)", workload)
	}
	if rate <= 0 {
		usageError("-rate must be positive, got %v", rate)
	}
	if chipCap <= 0 {
		usageError("-chipcap must be positive, got %v", chipCap)
	}
	if warm < 0 || measure <= 0 {
		usageError("-warmup must be >= 0 and -measure > 0, got %d/%d", warm, measure)
	}
}

// buildNet returns the simulated network, its address-bit count, and (for
// networks whose node ids are not addresses) the address<->node maps.
func buildNet(name string, l int, nucName string, dim, logm, k, side int, chipCap float64) (*netsim.Network, int, []int32, []int32) {
	switch name {
	case "hypercube":
		net, err := netsim.BuildHypercube(dim, logm, chipCap)
		fail(err)
		return net, dim, nil, nil
	case "torus":
		net, err := netsim.BuildTorus2D(k, side, chipCap)
		fail(err)
		logN := 0
		for 1<<logN < k*k {
			logN++
		}
		return net, logN, nil, nil
	case "hsn":
		kk, err := strconv.Atoi(strings.TrimPrefix(nucName, "q"))
		fail(err)
		w := superipg.HSN(l, nucleus.Hypercube(kk))
		g, err := w.Build()
		fail(err)
		net, err := netsim.BuildSuperIPG(w, g, chipCap, nil)
		fail(err)
		addrToNode := make([]int32, g.N())
		nodeToAddr := make([]int32, g.N())
		for v := 0; v < g.N(); v++ {
			a, err := w.AddressOf(g.Label(v))
			fail(err)
			//lint:ignore indextrunc node ids and addresses are < g.N() <= ipg.MaxNodes (1<<22)
			addrToNode[a] = int32(v)
			//lint:ignore indextrunc node ids and addresses are < g.N() <= ipg.MaxNodes (1<<22)
			nodeToAddr[v] = int32(a)
		}
		return net, l * kk, addrToNode, nodeToAddr
	}
	fail(fmt.Errorf("unknown network %q", name))
	return nil, 0, nil, nil
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ipgsim: "+format+"\n", args...)
	fmt.Fprintf(os.Stderr, "run `ipgsim -h` for usage\n")
	os.Exit(2)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipgsim: %v\n", err)
		os.Exit(1)
	}
}
