// Command ipglint runs the project's static-analysis suite (internal/lint)
// over package patterns and reports findings.
//
// Usage:
//
//	go run ./cmd/ipglint [-json] [-list] [pattern ...]
//
// Patterns default to ./... and support the go tool's ./dir and ./dir/...
// forms.  Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Findings are suppressed inline with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on (or immediately above) the offending line, or file-wide with
// //lint:file-ignore.  See docs/linting.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ipg/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ipglint [-json] [-list] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipglint:", err)
		os.Exit(2)
	}
	fset, pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipglint:", err)
		os.Exit(2)
	}
	diags := lint.Run(fset, pkgs, lint.All())
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "ipglint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ipglint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
