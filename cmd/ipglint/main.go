// Command ipglint runs the project's static-analysis suite (internal/lint)
// over package patterns and reports findings.
//
// Usage:
//
//	go run ./cmd/ipglint [flags] [pattern ...]
//
// Patterns default to ./... and support the go tool's ./dir and ./dir/...
// forms.  Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Output modes (mutually exclusive; default is file:line:col text):
//
//	-json    findings as a JSON array
//	-sarif   findings as a SARIF 2.1.0 log (GitHub code scanning)
//	-github  findings as GitHub Actions ::error annotations
//
// CI ratchet:
//
//	-baseline FILE        subtract the committed baseline before failing
//	-write-baseline FILE  snapshot current findings and exit 0
//	-assert-baseline-empty with -baseline: fail if the baseline itself
//	                      still grandfathers anything (the steady state
//	                      for this repository is an empty baseline)
//
// Inspection:
//
//	-why         print every lint:ignore directive with its reason and
//	             how many findings it suppressed
//	-tests=false exclude in-package _test.go files from the universe
//	-list        list analyzers and exit
//
// Findings are suppressed inline with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on (or immediately above) the offending line, or file-wide with
// //lint:file-ignore in the file header.  See docs/linting.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ipg/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	githubOut := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	baselinePath := flag.String("baseline", "", "subtract the baseline `file` from the findings before failing")
	writeBaseline := flag.String("write-baseline", "", "snapshot current findings to `file` and exit 0")
	assertEmpty := flag.Bool("assert-baseline-empty", false, "with -baseline: fail if the baseline still grandfathers any finding")
	why := flag.Bool("why", false, "print each lint:ignore directive with its reason and suppression count")
	withTests := flag.Bool("tests", true, "include in-package _test.go files in the analysis universe")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ipglint [-json|-sarif|-github] [-baseline file [-assert-baseline-empty]] [-write-baseline file] [-why] [-tests=false] [-list] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	modes := 0
	for _, m := range []bool{*jsonOut, *sarifOut, *githubOut} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "ipglint: -json, -sarif, and -github are mutually exclusive")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipglint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader()
	loader.IncludeTests = *withTests
	fset, pkgs, err := loader.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipglint:", err)
		os.Exit(2)
	}
	// A run over anything narrower than the whole module cannot judge
	// whether interprocedural suppressions are stale (their findings
	// depend on entry points outside the load set), so partial runs use
	// the partial staleness rules.
	run := lint.RunResult
	if !(len(patterns) == 1 && patterns[0] == "./...") {
		run = lint.RunResultPartial
	}
	res := run(fset, pkgs, lint.All())
	diags := res.Diags
	rel := func(path string) string {
		if r, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return path
	}
	for i := range diags {
		diags[i].File = rel(diags[i].File)
	}

	if *why {
		for _, s := range res.Suppressions {
			kind := "ignore"
			if s.FileWide {
				kind = "file-ignore"
			}
			fmt.Printf("%s:%d: %s %s suppressed %d finding(s): %s\n",
				rel(s.File), s.Line, kind, strings.Join(s.Analyzers, ","), s.Count, s.Reason)
		}
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipglint:", err)
			os.Exit(2)
		}
		err = lint.WriteBaseline(f, lint.NewBaseline(diags))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipglint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "ipglint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipglint:", err)
			os.Exit(2)
		}
		base, err := lint.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipglint:", err)
			os.Exit(2)
		}
		if *assertEmpty && len(base.Findings) > 0 {
			fmt.Fprintf(os.Stderr, "ipglint: baseline %s still grandfathers %d finding(s); fix or suppress them with a cited invariant and empty the baseline\n",
				*baselinePath, len(base.Findings))
			os.Exit(1)
		}
		diags = base.Filter(diags)
	} else if *assertEmpty {
		fmt.Fprintln(os.Stderr, "ipglint: -assert-baseline-empty requires -baseline")
		os.Exit(2)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "ipglint:", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ipglint:", err)
			os.Exit(2)
		}
	case *githubOut:
		for _, d := range diags {
			// ::error file=...,line=...,col=...,title=...::message
			fmt.Printf("::error file=%s,line=%d,col=%d,title=ipglint %s::%s\n",
				d.File, d.Line, d.Col, d.Analyzer, githubEscape(d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "ipglint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}

// githubEscape applies the workflow-command data escaping rules: percent,
// carriage return, and newline must be %-encoded or the runner truncates
// the message at the first newline.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
