// Command ipgtool builds interconnection networks from the paper's
// families and prints their structural and MCMP metrics.
//
// Usage examples:
//
//	ipgtool -net hsn -l 3 -nucleus q4          # HSN(3,Q4)
//	ipgtool -net complete-cn -l 4 -nucleus q2  # complete-CN(4,Q2)
//	ipgtool -net hcn -nucleus q5               # HCN(5,5)
//	ipgtool -net hypercube -dim 10 -logm 2     # 10-cube, 4-node chips
//	ipgtool -net torus -k 16 -side 4           # 16-ary 2-cube, 16-node chips
//	ipgtool -net hsn -l 4 -nucleus ghc:4,4     # HSN over GHC(4,4)
//	ipgtool -net hsn -l 4 -nucleus q3 -schedule  # print the Thm 3.8 schedule
//	ipgtool -net hsn -l 3 -nucleus q4 -json    # machine-readable metrics
//	ipgtool -net torus -k 2560 -json           # 6.5M nodes, implicit codec
//	ipgtool -net hypercube -dim 10 -json -impl implicit  # force the codec
//
// With -json the output is the same metrics document the ipgd daemon
// serves on /v1/metrics (see docs/serving.md), produced by the same
// encoder.  -impl selects the adjacency representation for -json:
// "csr" forces materialization, "implicit" forces the rank/unrank codec
// (O(1) memory at any size), "auto" (the default) materializes up to the
// cap and goes implicit above it; the document's representation and
// bytes_per_vertex fields report the choice.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ipg/internal/analysis"
	"ipg/internal/mcmp"
	"ipg/internal/nucleus"
	"ipg/internal/schedule"
	"ipg/internal/serve"
	"ipg/internal/superipg"
	"ipg/internal/topology"
)

// materializeCap matches the ipgd default: larger instances are served
// with label-level metrics only.
const materializeCap = 1 << 16

func main() {
	var (
		netName  = flag.String("net", "hsn", "family: hsn|ring-cn|complete-cn|sfn|hcn|rcc|hypercube|torus|ccc|butterfly")
		l        = flag.Int("l", 3, "number of super-symbols (super-IPG families)")
		nucName  = flag.String("nucleus", "q2", "nucleus: qK | fqK | kM | cM | sN | ghc:m1,m2,...")
		dim      = flag.Int("dim", 8, "dimension (hypercube/ccc/butterfly)")
		logm     = flag.Int("logm", 2, "log2 nodes per chip (hypercube)")
		k        = flag.Int("k", 8, "radix (torus)")
		side     = flag.Int("side", 2, "chip side (torus)")
		band     = flag.Int("band", 2, "level band width (butterfly)")
		sched    = flag.Bool("schedule", false, "print the all-port emulation schedule (Theorem 3.8; super-IPG families)")
		diameter = flag.Bool("diameter", false, "compute the exact graph diameter (O(N^2), slow for large N)")
		dotFile  = flag.String("dot", "", "write the network (chips as clusters, off-chip links red) as Graphviz DOT to this file (super-IPG families)")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable metrics document (same shape as ipgd's /v1/metrics)")
		implMode = flag.String("impl", "auto", "adjacency representation for -json: csr|implicit|auto")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		usageError("unexpected arguments: %v", flag.Args())
	}

	// Reject parameters the chosen family does not consume (e.g.
	// `-net hypercube -nucleus q4`) instead of silently ignoring them.
	flagToParam := map[string]string{
		"l": "l", "nucleus": "nucleus", "dim": "dim", "logm": "logm",
		"k": "k", "side": "side", "band": "band",
	}
	provided := map[string]bool{}
	implSet := false
	flag.Visit(func(f *flag.Flag) {
		if p, ok := flagToParam[f.Name]; ok {
			provided[p] = true
		}
		if f.Name == "impl" {
			implSet = true
		}
	})
	switch *implMode {
	case "auto", "csr", "implicit":
	default:
		usageError("-impl must be csr, implicit, or auto (got %q)", *implMode)
	}
	if implSet && !*jsonOut {
		usageError("-impl selects the -json representation; it does not apply to the table output")
	}
	p := serve.Params{
		Net: *netName, L: *l, Nucleus: *nucName,
		Dim: *dim, LogM: *logm, K: *k, Side: *side, Band: *band,
	}
	if err := p.Check(provided); err != nil {
		usageError("%v", err)
	}
	if (*sched || *dotFile != "") && !serve.IsSuperFamily(p.Net) {
		usageError("-schedule and -dot apply only to super-IPG families, not %q", p.Net)
	}

	if *jsonOut {
		if *sched || *dotFile != "" {
			usageError("-json cannot be combined with -schedule or -dot")
		}
		var (
			a   *serve.Artifact
			err error
		)
		switch *implMode {
		case "csr":
			a, err = serve.BuildArtifact(context.Background(), p, materializeCap)
			if err == nil && a.Rep() != serve.RepCSR {
				usageError("%s has %d nodes, above the materialization cap %d; -impl=csr does not apply (use implicit or auto)", a.Name, a.N, materializeCap)
			}
		case "implicit":
			// A switch point of one node forces every real instance through
			// its codec; families without one fall back and are rejected.
			a, err = serve.BuildArtifactThreshold(context.Background(), p, materializeCap, 1)
			if err == nil && a.Rep() != serve.RepImplicit {
				usageError("%s has no implicit codec for this configuration; -impl=implicit does not apply", a.Name)
			}
		default:
			a, err = serve.BuildArtifact(context.Background(), p, materializeCap)
		}
		fail(err)
		doc, err := serve.ComputeMetrics(context.Background(), a, *diameter)
		fail(err)
		fail(doc.WriteJSON(os.Stdout))
		return
	}

	switch p.Net {
	case "hsn", "ring-cn", "complete-cn", "sfn", "hcn", "rcc":
		runSuperIPG(p.Net, *l, *nucName, *sched, *diameter, *dotFile)
	case "hypercube":
		h := topology.NewHypercube(*dim)
		c, err := mcmp.ClusterHypercube(h, *logm)
		fail(err)
		a, err := mcmp.Analyze(c, mcmp.HypercubeBisection(c), float64(c.M))
		fail(err)
		printAnalysis(a, h.G.Diameter())
	case "torus":
		tr := topology.NewTorus(*k, 2)
		c, err := mcmp.ClusterTorus2D(tr, *side)
		fail(err)
		a, err := mcmp.Analyze(c, mcmp.Torus2DBisection(tr, c, *side), float64(c.M))
		fail(err)
		printAnalysis(a, tr.G.Diameter())
	case "ccc":
		cc := topology.NewCCC(*dim)
		c, err := mcmp.ClusterCCC(cc)
		fail(err)
		a, err := mcmp.Analyze(c, mcmp.CCCBisection(cc, c), float64(c.M))
		fail(err)
		printAnalysis(a, cc.G.Diameter())
	case "butterfly":
		bf := topology.NewButterfly(*dim)
		c, err := mcmp.ClusterButterfly(bf, *band)
		fail(err)
		sideB, err := mcmp.ButterflyBisection(bf, c, *band)
		fail(err)
		a, err := mcmp.Analyze(c, sideB, float64(c.M))
		fail(err)
		printAnalysis(a, bf.G.Diameter())
	}
}

func runSuperIPG(family string, l int, nucName string, sched, diameter bool, dotFile string) {
	nuc, err := nucleus.Parse(nucName)
	fail(err)
	var w *superipg.Network
	switch family {
	case "hsn":
		w = superipg.HSN(l, nuc)
	case "ring-cn":
		w = superipg.RingCN(l, nuc)
	case "complete-cn":
		w = superipg.CompleteCN(l, nuc)
	case "sfn":
		w = superipg.SFN(l, nuc)
	case "hcn":
		w = superipg.HSN(2, nuc)
		w.Family = "HCN"
	case "rcc":
		w = superipg.RCC(l, nuc)
	}
	fmt.Printf("network:   %s\n", w.Name())
	fmt.Printf("nodes:     %d (M=%d, l=%d)\n", w.N(), w.M(), w.L)
	fmt.Printf("seed:      %s\n", w.Seed().GroupedString(w.SymbolLen()))
	fmt.Printf("gens:      %d nucleus + %d super\n", w.NumNucGens(), w.NumSupers())
	if t, err := w.InterclusterT(); err == nil {
		fmt.Printf("intercluster diameter t (Thm 4.1): %d  (closed form l-1 = %d)\n", t, w.L-1)
	}
	if ts, err := w.SymmetricTS(); err == nil {
		fmt.Printf("symmetric t_S (Thm 4.3):           %d\n", ts)
	}
	if w.N() <= materializeCap {
		g, err := w.Build()
		fail(err)
		u := g.Undirected()
		min, max, avg := u.DegreeStats()
		fmt.Printf("materialized: %d nodes, %d links, degree min/avg/max = %d/%.2f/%d\n",
			g.N(), u.M(), min, avg, max)
		fmt.Printf("intercluster links: %d, intercluster degree: %.4g\n",
			w.InterclusterLinks(g), w.InterclusterDegree(g))
		fmt.Printf("measured intercluster diameter: %d, avg intercluster distance: %.4g\n",
			w.InterclusterDiameter(g), w.AvgInterclusterDistance(g))
		if diameter {
			fmt.Printf("graph diameter: %d\n", u.DiameterParallel())
		}
		if dotFile != "" {
			f, err := os.Create(dotFile)
			fail(err)
			clusterOf, _ := w.Clusters(g)
			err = u.WriteDOT(f, w.Name(), clusterOf, func(v int) string {
				return g.Label(v).GroupedString(w.SymbolLen())
			})
			fail(err)
			fail(f.Close())
			fmt.Printf("wrote DOT to %s\n", dotFile)
		}
	} else {
		fmt.Printf("(too large to materialize; label-level metrics only)\n")
	}
	if sched {
		s, err := schedule.Build(w)
		fail(err)
		fail(s.Verify())
		_, avgU := s.Utilization()
		fmt.Printf("\nall-port emulation schedule (Theorem 3.8), %d steps, %.1f%% link utilization:\n%s",
			s.T, 100*avgU, s.Render())
	}
}

func printAnalysis(a mcmp.Analysis, diameter int) {
	tb := analysis.NewTable("MCMP profile (unit chip capacity, w=1)",
		"metric", "value")
	tb.AddRow("network", a.Name)
	tb.AddRow("nodes", a.N)
	tb.AddRow("chips", a.Chips)
	tb.AddRow("nodes/chip", a.M)
	tb.AddRow("diameter", diameter)
	tb.AddRow("off-chip links", a.OffChipLinks)
	tb.AddRow("links/chip", a.LinksPerChip)
	tb.AddRow("intercluster degree", a.InterclusterDeg)
	tb.AddRow("intercluster diameter", a.InterclusterDiam)
	tb.AddRow("avg intercluster distance", a.AvgInterclusterDst)
	tb.AddRow("per-link bandwidth", a.PerLinkBW)
	tb.AddRow("bisection width", a.BisectionWidth)
	tb.AddRow("bisection bandwidth", a.BisectionBandwidth)
	fmt.Print(tb)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ipgtool: "+format+"\n", args...)
	fmt.Fprintf(os.Stderr, "run `ipgtool -h` for usage\n")
	os.Exit(2)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipgtool: %v\n", err)
		os.Exit(1)
	}
}
