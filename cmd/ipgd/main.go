// Command ipgd is the topology-serving daemon: it builds the paper's
// network families on demand behind an in-memory artifact cache and
// serves structural metrics, shortest routes, and packet-level
// simulations over HTTP.
//
//	ipgd -addr :8080
//	curl 'localhost:8080/v1/build?net=hsn&l=3&nucleus=q4'
//	curl 'localhost:8080/v1/metrics?net=hsn&l=3&nucleus=q4&diameter=1'
//	curl 'localhost:8080/metrics'          # Prometheus text
//
// See docs/serving.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipg/internal/cluster"
	"ipg/internal/serve"
)

// usageError prints a flag-validation failure and exits 2, matching the
// ipgtool/ipgsim convention for malformed invocations.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ipgd: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		cacheMB     = flag.Int("cache-mb", 256, "artifact cache budget, MiB")
		shards      = flag.Int("shards", 16, "cache shard count (rounded up to a power of two)")
		workers     = flag.Int("workers", 0, "max concurrent builds/simulations (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "requests allowed to wait for a worker before 503 (0 = 4x workers, -1 = none)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		maxNodes    = flag.Int("max-nodes", 1<<16, "topology materialization cap")
		implicitTh  = flag.Int("implicit-threshold", 0, "node count above which implicit-capable families are served via rank/unrank codecs instead of CSR arenas (0 = at max-nodes)")
		simMaxNodes = flag.Int("sim-max-nodes", 1<<13, "simulation size cap")
		enablePprof = flag.Bool("pprof", false, "mount /debug/pprof/")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown drain window")

		buildRetries     = flag.Int("build-retries", 2, "retries for transient build failures (0 disables)")
		retryBackoff     = flag.Duration("retry-backoff", 50*time.Millisecond, "base backoff before the first build retry, doubled each attempt")
		breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive build failures per family that open its circuit (0 disables)")
		breakerCooldown  = flag.Duration("breaker-cooldown", 10*time.Second, "open-circuit fast-fail window before a half-open probe")

		peers         = flag.String("peers", "", "comma-separated base URLs of every cluster replica including this one (empty = single node)")
		advertise     = flag.String("advertise", "", "this replica's own base URL, exactly as listed in -peers (required with -peers)")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per peer on the consistent-hash ring (0 = 64)")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "peer-fill wait on the owner before racing a fallback peer (0 = 30ms, negative disables hedging)")
		peerTimeout   = flag.Duration("peer-timeout", 0, "total budget for one peer-fill fetch including the hedge leg (0 = 30s)")
		peerBreakerTh = flag.Int("peer-breaker-threshold", 0, "consecutive fetch failures that cut a peer out of the ring (0 = 3, negative disables)")
		peerBreakerCd = flag.Duration("peer-breaker-cooldown", 0, "open-peer window before a half-open probe (0 = 5s)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ipgd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	// In serve.Config zero means "default", negative means "disabled"; on
	// the command line 0 is the natural way to say "off", so map it.
	if *buildRetries == 0 {
		*buildRetries = -1
	}
	if *breakerThreshold == 0 {
		*breakerThreshold = -1
	}

	// Cluster flags: -peers enables cluster mode and demands a matching
	// -advertise; the other cluster knobs are meaningless without it.
	var cl *cluster.Cluster
	if *peers == "" {
		if *advertise != "" || *vnodes != 0 || *hedgeDelay != 0 || *peerTimeout != 0 || *peerBreakerTh != 0 || *peerBreakerCd != 0 {
			usageError("cluster flags (-advertise, -vnodes, -hedge-delay, -peer-timeout, -peer-breaker-*) require -peers")
		}
	} else {
		peerList, err := cluster.ParsePeers(*peers)
		if err != nil {
			usageError("invalid -peers: %v", err)
		}
		if *advertise == "" {
			usageError("-peers requires -advertise (this replica's own base URL)")
		}
		self, err := cluster.ParsePeers(*advertise)
		if err != nil || len(self) != 1 {
			usageError("invalid -advertise %q: must be a single base URL", *advertise)
		}
		cl, err = cluster.New(cluster.Config{
			Self:             self[0],
			Peers:            peerList,
			VNodes:           *vnodes,
			HedgeDelay:       *hedgeDelay,
			FetchTimeout:     *peerTimeout,
			BreakerThreshold: *peerBreakerTh,
			BreakerCooldown:  *peerBreakerCd,
		})
		if err != nil {
			usageError("%v", err)
		}
	}

	srv := serve.NewServer(serve.Config{
		CacheBytes:        int64(*cacheMB) << 20,
		CacheShards:       *shards,
		Workers:           *workers,
		QueueDepth:        *queue,
		RequestTimeout:    *timeout,
		MaxNodes:          *maxNodes,
		ImplicitThreshold: *implicitTh,
		SimMaxNodes:       *simMaxNodes,
		EnablePprof:       *enablePprof,
		BuildRetries:      *buildRetries,
		RetryBackoff:      *retryBackoff,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		Cluster:           cl,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ipgd: %v", err)
	}
	// The resolved address matters when -addr :0 picked an ephemeral
	// port; scripts (scripts/ipgd_smoke.sh) parse this line.
	log.Printf("ipgd: listening on %s", ln.Addr())
	if cl != nil {
		log.Printf("ipgd: cluster mode, %d peers, advertising %s", cl.Size(), cl.Self())
	}

	hs := &http.Server{
		Handler: srv,
		// Network builds can legitimately take the full request timeout;
		// pad the server-side write deadline beyond it.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *timeout + 10*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve only returns on listener failure here (Shutdown was not
		// called yet).
		log.Fatalf("ipgd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("ipgd: shutting down, draining in-flight requests (up to %v)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("ipgd: drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ipgd: %v", err)
	}
	st := srv.Cache().Stats()
	log.Printf("ipgd: exit; cache served %d hits / %d misses, %d evictions", st.Hits, st.Misses, st.Evictions)
}
