// Command ipgload is the load generator for ipgd: it drives mixed
// endpoint workloads (metrics, route, simulate, degraded metrics,
// healthz) over hot/cold key mixes and reports latency quantiles from
// HDR-style histograms.
//
// The default open-loop mode schedules requests at a fixed target rate
// and measures every latency from the request's *intended* start time,
// so a stalled server inflates the recorded tail instead of silently
// slowing the request stream — the coordinated-omission mistake most
// closed-loop benchmarks make.  Closed-loop mode (back-to-back workers)
// is available for saturation probing.
//
// Usage examples:
//
//	ipgload -url http://127.0.0.1:8080 -rps 2000 -duration 30s
//	ipgload -url http://127.0.0.1:8080 -mode closed -conns 64 -duration 10s
//	ipgload -url http://127.0.0.1:8080 -rps 500 -find-max-rps -slo-p99 20ms -out BENCH_SERVE.json
//	ipgload -url http://127.0.0.1:8080 -rps 1000 -duration 30s -baseline scripts/bench_serve_baseline.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipg/internal/loadgen"
)

func main() {
	cfg := parseFlags(os.Args[1:])

	wl, err := buildWorkload(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("priming %d keys against %s...\n", len(wl.keys), cfg.url)
	if err := wl.prime(); err != nil {
		fail(err)
	}

	if cfg.warmup > 0 {
		fmt.Printf("warmup: closed loop, %d conns, %v\n", cfg.conns, cfg.warmup)
		_, err := loadgen.Run(context.Background(), loadgen.Options{
			Conns:    cfg.conns,
			Duration: cfg.warmup,
			Classes:  len(wl.classes),
		}, wl.do)
		if err != nil {
			fail(err)
		}
	}

	opts := loadgen.Options{
		OpenLoop: cfg.mode == "open",
		RPS:      cfg.rps,
		Conns:    cfg.conns,
		Duration: cfg.duration,
		Classes:  len(wl.classes),
	}
	fmt.Printf("measuring: %s loop, %d conns, %v, mix %s\n", cfg.mode, cfg.conns, cfg.duration, cfg.mix)
	res, err := loadgen.Run(context.Background(), opts, wl.do)
	if err != nil {
		fail(err)
	}

	rep := &loadgen.Report{
		Tool:      "ipgload",
		Note:      cfg.note,
		Mode:      cfg.mode,
		TargetRPS: cfg.rps,
		Conns:     cfg.conns,
		Duration:  cfg.duration.String(),
		Mix:       cfg.mix,
		Hot:       cfg.hot,
		SLOP99us:  float64(cfg.sloP99.Nanoseconds()) / 1e3,
		Endpoints: map[string]loadgen.EndpointStats{},
	}
	elapsed := res.Elapsed.Seconds()
	for ci, name := range wl.classes {
		rep.Endpoints[name] = loadgen.StatsFor(&res.Class[ci], elapsed)
	}
	printResult(res, wl.classes, rep)

	if cfg.findMax {
		if err := findMaxRPS(cfg, wl, rep); err != nil {
			fail(err)
		}
	}

	if cfg.out != "" {
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		body = append(body, '\n')
		if err := os.WriteFile(cfg.out, body, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("report written to %s\n", cfg.out)
	}

	if cfg.baseline != "" {
		if code := gate(rep, cfg.baseline, cfg.tol); code != 0 {
			os.Exit(code)
		}
	}
}

// config is the parsed and validated command line.
type config struct {
	url      string
	mode     string
	rps      float64
	conns    int
	duration time.Duration
	warmup   time.Duration
	mix      string
	hot      float64
	coldKeys int
	seed     int64
	out      string
	baseline string
	tol      float64
	sloP99   time.Duration
	findMax  bool
	note     string
}

func parseFlags(args []string) config {
	fs := flag.NewFlagSet("ipgload", flag.ExitOnError)
	var c config
	fs.StringVar(&c.url, "url", "", "base URL of the ipgd instance (required)")
	fs.StringVar(&c.mode, "mode", "open", "pacing model: open (target-RPS schedule, CO-safe) | closed (saturating workers)")
	fs.Float64Var(&c.rps, "rps", 0, "open-loop target request rate (required for -mode open)")
	fs.IntVar(&c.conns, "conns", 16, "concurrent connections (workers)")
	fs.DurationVar(&c.duration, "duration", 10*time.Second, "measurement duration")
	fs.DurationVar(&c.warmup, "warmup", 2*time.Second, "closed-loop warmup before measuring (0 disables)")
	fs.StringVar(&c.mix, "mix", "healthz=1,metrics=6,route=2,simulate=1", "endpoint mix as name=weight, endpoints: healthz|metrics|route|route_multipath|simulate|fmetrics")
	fs.Float64Var(&c.hot, "hot", 0.9, "fraction of metrics/route requests using the hot key set (the rest use -cold-keys generated keys)")
	fs.IntVar(&c.coldKeys, "cold-keys", 24, "size of the cold key universe")
	fs.Int64Var(&c.seed, "seed", 1, "deterministic request schedule seed")
	fs.StringVar(&c.out, "out", "", "write the JSON report here")
	fs.StringVar(&c.baseline, "baseline", "", "baseline report to gate against (exit 1 on p99 regression)")
	fs.Float64Var(&c.tol, "tol", 0.15, "allowed relative p99 regression vs -baseline")
	fs.DurationVar(&c.sloP99, "slo-p99", 0, "p99 latency SLO (required by -find-max-rps, recorded in the report otherwise)")
	fs.BoolVar(&c.findMax, "find-max-rps", false, "after the measurement run, ladder-search each endpoint's max open-loop RPS with p99 within -slo-p99")
	fs.StringVar(&c.note, "note", "", "free-form note recorded in the report")
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		usageError("unexpected arguments: %v", fs.Args())
	}

	rpsProvided := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "rps" {
			rpsProvided = true
		}
	})
	if err := validate(c, rpsProvided); err != nil {
		usageError("%v", err)
	}
	return c
}

// validate checks flag consistency; inapplicable combinations are usage
// errors, matching ipgtool/ipgsim conventions.
func validate(c config, rpsProvided bool) error {
	if c.url == "" {
		return fmt.Errorf("-url is required")
	}
	switch c.mode {
	case "open":
		if c.rps <= 0 {
			return fmt.Errorf("-mode open needs a positive -rps, got %v", c.rps)
		}
	case "closed":
		if rpsProvided {
			return fmt.Errorf("-rps does not apply to -mode closed (closed loop saturates -conns workers)")
		}
		if c.findMax {
			return fmt.Errorf("-find-max-rps does not apply to -mode closed (the search is an open-loop ladder)")
		}
	default:
		return fmt.Errorf("unknown -mode %q (open|closed)", c.mode)
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", c.duration)
	}
	if c.warmup < 0 {
		return fmt.Errorf("-warmup must be >= 0, got %v", c.warmup)
	}
	if c.conns < 1 {
		return fmt.Errorf("-conns must be >= 1, got %d", c.conns)
	}
	if c.hot < 0 || c.hot > 1 {
		return fmt.Errorf("-hot must be in [0, 1], got %v", c.hot)
	}
	if c.coldKeys < 1 {
		return fmt.Errorf("-cold-keys must be >= 1, got %d", c.coldKeys)
	}
	if c.tol <= 0 {
		return fmt.Errorf("-tol must be positive, got %v", c.tol)
	}
	if c.findMax && c.sloP99 <= 0 {
		return fmt.Errorf("-find-max-rps needs a positive -slo-p99 to search against")
	}
	if _, err := parseMix(c.mix); err != nil {
		return err
	}
	return nil
}

// endpointOrder is the canonical class order; class indexes and report
// sections follow it.
var endpointOrder = []string{"healthz", "metrics", "route", "route_multipath", "simulate", "fmetrics"}

// parseMix decodes "-mix name=weight,..." into per-endpoint weights.
func parseMix(mix string) (map[string]int, error) {
	known := map[string]bool{}
	for _, e := range endpointOrder {
		known[e] = true
	}
	out := map[string]int{}
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-mix entry %q is not name=weight", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("-mix endpoint %q unknown (%s)", name, strings.Join(endpointOrder, "|"))
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-mix weight for %q must be a positive integer, got %q", name, val)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("-mix endpoint %q listed twice", name)
		}
		out[name] = w
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix is empty")
	}
	return out, nil
}

// hotQueries is the hot key set: the same golden families the cluster
// smoke test hammers, spanning every topology class the daemon serves.
var hotQueries = []string{
	"net=hsn&l=2&nucleus=q2",
	"net=hsn&l=3&nucleus=q2",
	"net=ring-cn&l=3&nucleus=q2",
	"net=complete-cn&l=3&nucleus=q2",
	"net=sfn&l=3&nucleus=q2",
	"net=hypercube&dim=6&logm=2",
	"net=torus&k=8&side=2",
	"net=ccc&dim=4",
}

// simQueries are small instances of families with a packet-level
// simulator, safe for /v1/simulate at load.
var simQueries = []string{
	"net=hypercube&dim=6&logm=2",
	"net=torus&k=8&side=2",
	"net=hsn&l=2&nucleus=q2",
}

// faultQueries are small materialized instances for per-request degraded
// metrics (CPU-bound survivability sweeps).
var faultQueries = []string{
	"net=hypercube&dim=6&logm=2",
	"net=torus&k=8&side=2",
	"net=ccc&dim=4",
}

// coldQueries generates n distinct valid key queries outside the hot
// set, cycling parameterized families.
func coldQueries(n int) []string {
	var out []string
	seen := map[string]bool{}
	for _, q := range hotQueries {
		seen[q] = true
	}
	add := func(q string) {
		if !seen[q] && len(out) < n {
			seen[q] = true
			out = append(out, q)
		}
	}
	for round := 0; len(out) < n && round < 4; round++ {
		for dim := 4; dim <= 10; dim++ {
			for logm := 1; logm <= 2+round; logm++ {
				if logm < dim {
					add(fmt.Sprintf("net=hypercube&dim=%d&logm=%d", dim, logm))
				}
			}
		}
		// Torus chip tilings must be balanced: side | k and k/side even.
		for _, t := range []string{"k=4&side=2", "k=12&side=2", "k=16&side=2", "k=6&side=3", "k=12&side=3", "k=8&side=4"} {
			add("net=torus&" + t)
		}
		for dim := 3; dim <= 8; dim++ {
			add(fmt.Sprintf("net=ccc&dim=%d", dim))
		}
		add("net=ring-cn&l=2&nucleus=q2")
		add("net=complete-cn&l=2&nucleus=q2")
		add("net=sfn&l=2&nucleus=q2")
		add("net=hsn&l=2&nucleus=q3")
		add("net=hsn&l=3&nucleus=q3")
	}
	return out
}

// keyInfo is one primed key: its query string and node count (learned
// from /v1/build during priming, needed for route src/dst).
type keyInfo struct {
	query string
	n     int
}

// workload generates deterministic mixed traffic.  All request choices
// derive from a splitmix64 stream seeded by the request index, so a run
// is reproducible given the same flags.
type workload struct {
	cfg     config
	client  *http.Client
	classes []string // endpoint per class index
	cum     []int    // cumulative mix weights, aligned with classes
	total   int

	keys    []keyInfo // hot keys first, then cold
	nHot    int
	simKeys []keyInfo // simulator-capable subset for /v1/simulate
	fltKeys []keyInfo // materialized subset for degraded metrics
}

func buildWorkload(cfg config) (*workload, error) {
	weights, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	wl := &workload{
		cfg: cfg,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        2 * cfg.conns,
				MaxIdleConnsPerHost: 2 * cfg.conns,
				IdleConnTimeout:     90 * time.Second,
			},
			Timeout: 60 * time.Second,
		},
	}
	for _, name := range endpointOrder {
		if w, ok := weights[name]; ok {
			wl.classes = append(wl.classes, name)
			wl.total += w
			wl.cum = append(wl.cum, wl.total)
		}
	}
	for _, q := range hotQueries {
		wl.keys = append(wl.keys, keyInfo{query: q})
	}
	wl.nHot = len(wl.keys)
	for _, q := range coldQueries(cfg.coldKeys) {
		wl.keys = append(wl.keys, keyInfo{query: q})
	}
	return wl, nil
}

// prime builds every key once via /v1/build and learns its node count.
func (wl *workload) prime() error {
	for i := range wl.keys {
		k := &wl.keys[i]
		resp, err := wl.client.Get(wl.cfg.url + "/v1/build?" + k.query)
		if err != nil {
			return fmt.Errorf("priming %s: %w", k.query, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("priming %s: status %d: %s", k.query, resp.StatusCode, strings.TrimSpace(string(body)))
		}
		var b struct {
			Nodes int `json:"nodes"`
		}
		if err := json.Unmarshal(body, &b); err != nil {
			return fmt.Errorf("priming %s: %w", k.query, err)
		}
		k.n = b.Nodes
	}
	byQuery := map[string]keyInfo{}
	for _, k := range wl.keys {
		byQuery[k.query] = k
	}
	for _, q := range simQueries {
		if k, ok := byQuery[q]; ok {
			wl.simKeys = append(wl.simKeys, k)
		}
	}
	for _, q := range faultQueries {
		if k, ok := byQuery[q]; ok {
			wl.fltKeys = append(wl.fltKeys, k)
		}
	}
	return nil
}

// splitmix64 is the per-request PRNG step: one multiply-shift chain per
// draw, no shared state between workers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pickKey selects a hot or cold key for request stream h.
func (wl *workload) pickKey(h uint64) keyInfo {
	hotDraw := float64(splitmix64(h^0xa5a5)&0xfffff) / float64(1<<20)
	if hotDraw < wl.cfg.hot || wl.nHot == len(wl.keys) {
		return wl.keys[int(h%uint64(wl.nHot))]
	}
	cold := wl.keys[wl.nHot:]
	return cold[int(h%uint64(len(cold)))]
}

// do issues request i: the endpoint class is drawn from the mix
// weights, then doClass picks keys and parameters — all derived
// deterministically from i.
func (wl *workload) do(i int64) (int, error) {
	h := splitmix64(uint64(i) ^ uint64(wl.cfg.seed)<<17)
	draw := int(h % uint64(wl.total))
	class := 0
	for draw >= wl.cum[class] {
		class++
	}
	_, err := wl.doClass(wl.classes[class], i)
	return class, err
}

// doClass issues one request against a fixed endpoint class (do routes
// mixed traffic here; the find-max ladder calls it directly).
func (wl *workload) doClass(name string, i int64) (int, error) {
	h := splitmix64(splitmix64(uint64(i) ^ uint64(wl.cfg.seed)<<17))
	var url string
	switch name {
	case "healthz":
		url = wl.cfg.url + "/healthz"
	case "metrics":
		url = wl.cfg.url + "/v1/metrics?" + wl.pickKey(h).query
	case "route":
		k := wl.pickKey(h)
		if k.n < 2 {
			k = wl.keys[0]
		}
		h2 := splitmix64(h)
		url = fmt.Sprintf("%s/v1/route?%s&src=%d&dst=%d", wl.cfg.url, k.query,
			int(h%uint64(k.n)), int(h2%uint64(k.n)))
	case "route_multipath":
		// Multipath needs a materialized network, so draw from the same
		// subset the fault classes use.
		k := wl.fltKeys[int(h%uint64(len(wl.fltKeys)))]
		if k.n < 2 {
			k = wl.fltKeys[0]
		}
		h2 := splitmix64(h)
		url = fmt.Sprintf("%s/v1/route?%s&src=%d&dst=%d&multipath=%d", wl.cfg.url, k.query,
			int(h%uint64(k.n)), int(h2%uint64(k.n)), 2+int(h2%5))
	case "simulate":
		k := wl.simKeys[int(h%uint64(len(wl.simKeys)))]
		url = fmt.Sprintf("%s/v1/simulate?%s&workload=random&rate=0.1&warmup=5&measure=20&seed=%d",
			wl.cfg.url, k.query, 1+int(splitmix64(h)%64))
	case "fmetrics":
		k := wl.fltKeys[int(h%uint64(len(wl.fltKeys)))]
		url = fmt.Sprintf("%s/v1/metrics?%s&faults=3&fmode=node&fseed=%d",
			wl.cfg.url, k.query, 1+int(splitmix64(h)%64))
	}
	resp, err := wl.client.Get(url)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	return 0, nil
}

// findMaxRPS ladder-searches, per endpoint, the highest open-loop target
// RPS whose measured p99 stays within the SLO (and whose error rate
// stays under 1%).  Each rung runs for the configured duration; rungs
// grow by 1.5x from the -rps starting point.
func findMaxRPS(cfg config, wl *workload, rep *loadgen.Report) error {
	const growth = 1.5
	const maxRungs = 14
	stageDur := cfg.duration
	if stageDur > 5*time.Second {
		stageDur = 5 * time.Second
	}
	for _, name := range wl.classes {
		rate := cfg.rps
		best := 0.0
		for rung := 0; rung < maxRungs; rung++ {
			res, err := loadgen.Run(context.Background(), loadgen.Options{
				OpenLoop: true,
				RPS:      rate,
				Conns:    cfg.conns,
				Duration: stageDur,
			}, func(i int64) (int, error) { return wl.doClass(name, i) })
			if err != nil {
				return err
			}
			p99 := res.Total.Quantile(0.99)
			errRate := 0.0
			if res.Sent > 0 {
				errRate = float64(res.Errors()) / float64(res.Sent+res.Dropped)
			}
			ok := p99 <= cfg.sloP99 && errRate <= 0.01 && res.Dropped == 0
			fmt.Printf("find-max %-9s rps=%-8.0f p99=%-10v errs=%.2f%% -> %s\n",
				name, rate, p99, errRate*100, map[bool]string{true: "pass", false: "FAIL"}[ok])
			if !ok {
				break
			}
			best = rate
			rate *= growth
		}
		st := rep.Endpoints[name]
		st.MaxRPSAtSLO = best
		rep.Endpoints[name] = st
	}
	return nil
}

// printResult writes the human-readable per-endpoint table.
func printResult(res *loadgen.Result, classes []string, rep *loadgen.Report) {
	fmt.Printf("\n%-9s %9s %7s %12s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "rps", "p50", "p99", "p999", "max")
	for ci, name := range classes {
		c := &res.Class[ci]
		st := rep.Endpoints[name]
		fmt.Printf("%-9s %9d %7d %12.1f %10v %10v %10v %10v\n",
			name, c.Requests.Load(), c.Errors.Load(), st.ThroughputRPS,
			c.Hist.Quantile(0.50), c.Hist.Quantile(0.99), c.Hist.Quantile(0.999), c.Hist.Max())
	}
	fmt.Printf("%-9s %9d %7d %12.1f %10v %10v %10v %10v\n",
		"TOTAL", res.Sent, res.Errors(), res.ActualRPS(),
		res.Total.Quantile(0.50), res.Total.Quantile(0.99), res.Total.Quantile(0.999), res.Total.Max())
	if res.Dropped > 0 {
		fmt.Printf("dropped %d scheduled requests at the drain deadline (server far below target rate)\n", res.Dropped)
	}
}

// gate compares rep against the baseline file and returns the exit code.
func gate(rep *loadgen.Report, baselinePath string, tol float64) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipgload: reading baseline: %v\n", err)
		return 1
	}
	var base loadgen.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "ipgload: parsing baseline: %v\n", err)
		return 1
	}
	violations := loadgen.Compare(rep, &base, tol)
	if len(violations) == 0 {
		names := make([]string, 0, len(rep.Endpoints))
		for n := range rep.Endpoints {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("p99 gate PASS vs %s (tol %.0f%%, endpoints: %s)\n", baselinePath, tol*100, strings.Join(names, " "))
		return 0
	}
	fmt.Fprintf(os.Stderr, "ipgload: p99 gate FAIL vs %s:\n", baselinePath)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	return 1
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ipgload: "+format+"\n", args...)
	fmt.Fprintf(os.Stderr, "run `ipgload -h` for usage\n")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ipgload: %v\n", err)
	os.Exit(1)
}
