package main

import (
	"strings"
	"testing"
	"time"
)

func validConfig() config {
	return config{
		url:      "http://127.0.0.1:8080",
		mode:     "open",
		rps:      100,
		conns:    4,
		duration: time.Second,
		mix:      "healthz=1,metrics=6,route=2",
		hot:      0.9,
		coldKeys: 8,
		tol:      0.15,
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validate(validConfig(), true); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c := validConfig()
	c.mode = "closed"
	c.rps = 0
	if err := validate(c, false); err != nil {
		t.Fatalf("valid closed config rejected: %v", err)
	}
	c = validConfig()
	c.findMax = true
	c.sloP99 = 20 * time.Millisecond
	if err := validate(c, true); err != nil {
		t.Fatalf("valid find-max config rejected: %v", err)
	}
}

func TestValidateRejectsInapplicableCombos(t *testing.T) {
	cases := []struct {
		name        string
		mutate      func(*config)
		rpsProvided bool
		wantSubstr  string
	}{
		{"missing url", func(c *config) { c.url = "" }, true, "-url"},
		{"closed with rps", func(c *config) { c.mode = "closed" }, true, "does not apply"},
		{"closed with find-max", func(c *config) { c.mode = "closed"; c.findMax = true; c.sloP99 = time.Millisecond }, false, "does not apply"},
		{"unknown mode", func(c *config) { c.mode = "burst" }, true, "unknown -mode"},
		{"open without rps", func(c *config) { c.rps = 0 }, false, "-rps"},
		{"zero duration", func(c *config) { c.duration = 0 }, true, "-duration"},
		{"negative warmup", func(c *config) { c.warmup = -time.Second }, true, "-warmup"},
		{"zero conns", func(c *config) { c.conns = 0 }, true, "-conns"},
		{"hot above 1", func(c *config) { c.hot = 1.5 }, true, "-hot"},
		{"zero cold keys", func(c *config) { c.coldKeys = 0 }, true, "-cold-keys"},
		{"zero tol", func(c *config) { c.tol = 0 }, true, "-tol"},
		{"find-max without slo", func(c *config) { c.findMax = true }, true, "-slo-p99"},
		{"bad mix entry", func(c *config) { c.mix = "metrics" }, true, "name=weight"},
		{"unknown mix endpoint", func(c *config) { c.mix = "metrics=1,teleport=2" }, true, "unknown"},
		{"zero mix weight", func(c *config) { c.mix = "metrics=0" }, true, "positive integer"},
		{"duplicate mix endpoint", func(c *config) { c.mix = "metrics=1,metrics=2" }, true, "twice"},
		{"empty mix", func(c *config) { c.mix = " , " }, true, "empty"},
	}
	for _, tc := range cases {
		c := validConfig()
		tc.mutate(&c)
		err := validate(c, tc.rpsProvided)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSubstr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSubstr)
		}
	}
}

func TestParseMixWeights(t *testing.T) {
	m, err := parseMix("healthz=1, metrics=6,route=2")
	if err != nil {
		t.Fatal(err)
	}
	if m["healthz"] != 1 || m["metrics"] != 6 || m["route"] != 2 {
		t.Errorf("unexpected weights: %v", m)
	}
	m, err = parseMix("route_multipath=3,route=1")
	if err != nil {
		t.Fatal(err)
	}
	if m["route_multipath"] != 3 {
		t.Errorf("route_multipath weight missing: %v", m)
	}
	// Unknown endpoints are a hard error, never a silently dropped weight.
	if _, err := parseMix("route=1,warp=9"); err == nil {
		t.Error("unknown -mix endpoint must be rejected")
	}
}

func TestColdQueriesDistinctAndDisjoint(t *testing.T) {
	hot := map[string]bool{}
	for _, q := range hotQueries {
		hot[q] = true
	}
	cold := coldQueries(24)
	if len(cold) != 24 {
		t.Fatalf("wanted 24 cold queries, got %d", len(cold))
	}
	seen := map[string]bool{}
	for _, q := range cold {
		if hot[q] {
			t.Errorf("cold query %q is in the hot set", q)
		}
		if seen[q] {
			t.Errorf("cold query %q duplicated", q)
		}
		seen[q] = true
	}
}

func TestWorkloadClassDrawMatchesMix(t *testing.T) {
	cfg := validConfig()
	wl, err := buildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"healthz", "metrics", "route"}; strings.Join(wl.classes, ",") != strings.Join(want, ",") {
		t.Fatalf("classes = %v, want %v", wl.classes, want)
	}
	// The class draw must follow the 1:6:2 weights.
	counts := make([]int, len(wl.classes))
	for i := int64(0); i < 90_000; i++ {
		h := splitmix64(uint64(i) ^ uint64(wl.cfg.seed)<<17)
		draw := int(h % uint64(wl.total))
		class := 0
		for draw >= wl.cum[class] {
			class++
		}
		counts[class]++
	}
	for ci, want := range []float64{1.0 / 9, 6.0 / 9, 2.0 / 9} {
		got := float64(counts[ci]) / 90_000
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("class %s drawn %.3f of the time, want ~%.3f", wl.classes[ci], got, want)
		}
	}
}
