// Command paperbench regenerates every table and figure of the paper's
// evaluation (the experiment index E1-E16 of DESIGN.md) and prints
// paper-vs-measured checks for each.
//
// Usage:
//
//	paperbench -exp all            # run everything at small scale
//	paperbench -exp fig1b          # one experiment
//	paperbench -exp all -scale paper   # the paper's own sizes (slower)
//	paperbench -list               # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ipg/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or \"all\"")
	scaleName := flag.String("scale", "small", "experiment scale: small or paper")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-16s %s\n", id, experiments.Title(id))
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.Small
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown scale %q (want small or paper)\n", *scaleName)
		os.Exit(2)
	}

	var results []*experiments.Result
	if *exp == "all" {
		var err error
		results, err = experiments.RunAll(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	} else {
		res, err := experiments.Run(*exp, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		results = append(results, res)
	}

	failed := 0
	for _, r := range results {
		if !*jsonOut {
			fmt.Println(r)
		}
		if !r.Passed() {
			failed++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		type jsonReport struct {
			Experiments []*experiments.Result `json:"experiments"`
			Passed      int                   `json:"passed"`
			Total       int                   `json:"total"`
		}
		if err := enc.Encode(jsonReport{Experiments: results, Passed: len(results) - failed, Total: len(results)}); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("%d/%d experiments passed all checks\n", len(results)-failed, len(results))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
