package ipg

import (
	"math/cmplx"
	"testing"
)

// TestFacadeQuickstart exercises the README's quick-start path end to end
// through the public API.
func TestFacadeQuickstart(t *testing.T) {
	net := HSN(3, HypercubeNucleus(2))
	g, err := net.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 {
		t.Fatalf("HSN(3,Q2) has %d nodes, want 64", g.N())
	}
	r, err := NewFFTRunner(net, g)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, g.N())
	for i := range x {
		x[i] = complex(float64(i%7)-3, 0)
	}
	spec, stats, err := FFT(r, x, false)
	if err != nil {
		t.Fatal(err)
	}
	want := DFT(x, false)
	for k := range want {
		if cmplx.Abs(spec[k]-want[k]) > 1e-6*float64(len(x)) {
			t.Fatalf("FFT[%d] mismatch", k)
		}
	}
	if stats.CommSteps <= 0 {
		t.Error("no communication steps recorded")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("want 22 experiments, got %d", len(ids))
	}
	res, err := RunExperiment("worked-example", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Errorf("worked example failed:\n%s", res)
	}
}

func TestFacadeSchedule(t *testing.T) {
	s, err := BuildSchedule(HSN(4, HypercubeNucleus(3)))
	if err != nil {
		t.Fatal(err)
	}
	if s.T != ScheduleSteps(4, 3) {
		t.Errorf("schedule length %d", s.T)
	}
	if err := s.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFacadeLabels(t *testing.T) {
	l := MustParseLabel("123 321")
	p := FromImage(4, 5, 6, 1, 2, 3)
	if got := p.Apply(l).String(); got != "321123" {
		t.Errorf("apply = %s", got)
	}
	spec := Spec{Name: "tiny", Seed: MustParseLabel("01"), Gens: GenSet{Gen("t", Transposition(2, 0, 1))}}
	g := MustBuild(spec)
	if g.N() != 2 {
		t.Errorf("tiny IPG nodes = %d", g.N())
	}
}
