package ipg

// This file contains one benchmark per reproduced table/figure of the
// paper (E1-E16 of DESIGN.md), plus micro-benchmarks of the core
// substrate.  Run with:
//
//	go test -bench=. -benchmem
//
// The per-experiment benchmarks execute the full reproduction (including
// all paper-vs-measured checks) and fail the benchmark if any check fails,
// so `-bench` doubles as an end-to-end verification pass at measured cost.

import (
	"math/rand"
	"testing"

	"ipg/internal/ascend"
	"ipg/internal/emul"
	"ipg/internal/experiments"
	"ipg/internal/graph"
	"ipg/internal/netsim"
	"ipg/internal/nucleus"
	"ipg/internal/schedule"
	"ipg/internal/superipg"
	"ipg/internal/topo"
	"ipg/internal/topology"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			b.Fatalf("experiment %s failed:\n%s", id, res)
		}
	}
}

// E1: Figure 1a.
func BenchmarkFig1aSchedule(b *testing.B) { benchExperiment(b, "fig1a") }

// E2: Figure 1b.
func BenchmarkFig1bSchedule(b *testing.B) { benchExperiment(b, "fig1b") }

// E3: Section 3.1 dimension-11 table.
func BenchmarkDim11Emulation(b *testing.B) { benchExperiment(b, "dim11") }

// E4: Theorem 3.1 / Corollaries 3.2-3.3.
func BenchmarkSDCEmulation(b *testing.B) { benchExperiment(b, "sdc") }

// E5: Corollary 3.6.
func BenchmarkAscendSteps(b *testing.B) { benchExperiment(b, "ascend") }

// E6: Corollary 3.7.
func BenchmarkAscendGHC(b *testing.B) { benchExperiment(b, "ascend-ghc") }

// E7: Corollaries 3.10/3.11.
func BenchmarkMNBTE(b *testing.B) { benchExperiment(b, "mnb-te") }

// E8: Theorem 4.1 / Corollary 4.2.
func BenchmarkInterclusterDiameter(b *testing.B) { benchExperiment(b, "ic-diameter") }

// E9: Corollary 4.4.
func BenchmarkSymmetricDiameter(b *testing.B) { benchExperiment(b, "symmetric") }

// E10: Theorem 4.7 / Corollary 4.8.
func BenchmarkBisectionHSN(b *testing.B) { benchExperiment(b, "bisection-hsn") }

// E11: Corollaries 4.9/4.10.
func BenchmarkBisectionBaselines(b *testing.B) { benchExperiment(b, "bisection-base") }

// E12: Section 4.2 worked example.
func BenchmarkWorkedExample(b *testing.B) { benchExperiment(b, "worked-example") }

// E13: Section 4.1 off-chip transmissions.
func BenchmarkOffchipTransmissions(b *testing.B) { benchExperiment(b, "offchip") }

// E14: Sections 3.3/4.1 TE intercluster census.
func BenchmarkTEIntercluster(b *testing.B) { benchExperiment(b, "te-intercluster") }

// E15: headline throughput comparison.
func BenchmarkThroughput(b *testing.B) { benchExperiment(b, "throughput") }

// E16: Corollary 4.11.
func BenchmarkBisectionOptimality(b *testing.B) { benchExperiment(b, "optimality") }

// E17: Section 3.1 wormhole/VCT discussion.
func BenchmarkWormholeSlowdown(b *testing.B) { benchExperiment(b, "wormhole") }

// E18: matrix transposition (Section 1 task list).
func BenchmarkTranspose(b *testing.B) { benchExperiment(b, "transpose") }

// E19: ID-cost / II-cost (Section 4.2).
func BenchmarkIICost(b *testing.B) { benchExperiment(b, "ii-cost") }

// E20: Corollary 3.4 embeddings.
func BenchmarkEmbeddings(b *testing.B) { benchExperiment(b, "embeddings") }

// E21: three-tier packaging extension.
func BenchmarkMultiLevel(b *testing.B) { benchExperiment(b, "multilevel") }

// E22: HSN design-space sweep.
func BenchmarkDesignSweep(b *testing.B) { benchExperiment(b, "design-sweep") }

// --- Substrate micro-benchmarks ---

// BenchmarkBuildHSN3Q4 materializes the paper's flagship 4096-node
// instance.
func BenchmarkBuildHSN3Q4(b *testing.B) {
	w := superipg.HSN(3, nucleus.Hypercube(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := w.Build()
		if err != nil {
			b.Fatal(err)
		}
		if g.N() != 4096 {
			b.Fatal("wrong size")
		}
	}
}

// BenchmarkFFT4096 runs a full 4096-point FFT on HSN(3,Q4).
func BenchmarkFFT4096(b *testing.B) {
	w := superipg.HSN(3, nucleus.Hypercube(4))
	g, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	r, err := ascend.NewRunner[complex128](w, g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, g.N())
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ascend.FFT(r, x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitonicSort1024 sorts 1024 keys on HSN(2,Q5).
func BenchmarkBitonicSort1024(b *testing.B) {
	w := superipg.HSN(2, nucleus.Hypercube(5))
	g, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	r, err := ascend.NewRunner[float64](w, g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	keys := make([]float64, g.N())
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ascend.BitonicSort(r, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomRouting4096 simulates random routing on HSN(3,Q4) under
// unit chip capacity.
func BenchmarkRandomRouting4096(b *testing.B) {
	w := superipg.HSN(3, nucleus.Hypercube(4))
	g, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	net, err := netsim.BuildSuperIPG(w, g, 4.0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.RunRandomUniform(net, 1, 0.05, 20, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleBuild builds and verifies a large all-port schedule.
func BenchmarkScheduleBuild(b *testing.B) {
	w := superipg.CompleteCN(12, nucleus.Hypercube(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := schedule.Build(w)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSDCDimensionWords measures the emulation word generator.
func BenchmarkSDCDimensionWords(b *testing.B) {
	w := superipg.HSN(8, nucleus.Hypercube(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 1; j <= w.L*w.NumNucGens(); j++ {
			if _, err := emul.DimensionWord(w, j); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationHSNRouterVsTable compares the O(1)-state hierarchical
// HSN router against the all-pairs table router on the same network: the
// table costs O(N^2) memory and a large precomputation; the hierarchical
// router needs only the nucleus table.
func BenchmarkAblationHSNRouterVsTable(b *testing.B) {
	w := superipg.HSN(3, nucleus.Hypercube(3))
	g, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	net, err := netsim.BuildSuperIPG(w, g, 1e9, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hierarchical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := netsim.NewHSNRouter(w, g)
			if err != nil {
				b.Fatal(err)
			}
			routeAll(b, r, g.N())
		}
	})
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := netsim.NewTableRouter(net)
			if err != nil {
				b.Fatal(err)
			}
			routeAll(b, tr, g.N())
		}
	})
}

func routeAll(b *testing.B, r netsim.Router, n int) {
	b.Helper()
	for src := 0; src < n; src += 37 {
		for dst := 0; dst < n; dst += 41 {
			if src != dst {
				if p := r.NextPort(src, dst); p < 0 {
					b.Fatal("router returned no port")
				}
			}
		}
	}
}

// BenchmarkAblationScheduleVsSequential compares the Theorem 3.8 all-port
// schedule (max(2n, l+1) steps) against naive sequential single-dimension
// emulation (3 steps per dimension = 3*l*n total): the schedule's step
// count is the quantity of interest, benchmarked here alongside build
// cost.
func BenchmarkAblationScheduleVsSequential(b *testing.B) {
	w := superipg.HSN(8, nucleus.Hypercube(6))
	s, err := schedule.Build(w)
	if err != nil {
		b.Fatal(err)
	}
	seq := 3 * w.L * w.NumNucGens()
	if s.T >= seq {
		b.Fatalf("schedule %d steps should beat sequential %d", s.T, seq)
	}
	b.ReportMetric(float64(seq)/float64(s.T), "speedup")
	for i := 0; i < b.N; i++ {
		s, err := schedule.Build(w)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationParallelBFS compares source-parallel and serial
// all-pairs BFS on the HSN(3,Q3) graph.
func BenchmarkAblationParallelBFS(b *testing.B) {
	g := superipg.HSN(3, nucleus.Hypercube(3)).MustBuild().Undirected()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.Diameter() < 0 {
				b.Fatal("disconnected")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.DiameterParallel() < 0 {
				b.Fatal("disconnected")
			}
		}
	})
}

// rowsBFSInto is the pre-refactor BFS over a per-row [][]int32 adjacency,
// kept verbatim as the baseline for BenchmarkBFS_CSR.  (Test files are the
// one place the row representation may still be spelled — see the adjbuild
// analyzer.)
func rowsBFSInto(rows [][]int32, src int, dist, queue []int32) (ecc int32, sum int64) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], int32(src))
	visited := 1
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		sum += int64(du)
		for _, v := range rows[u] {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
				visited++
			}
		}
	}
	if visited != len(rows) {
		return -1, sum
	}
	return ecc, sum
}

// hsn3q4Rows materializes HSN(3,Q4) undirected plus a per-row copy of its
// adjacency (the seed representation), for the representation benchmarks.
func hsn3q4Rows(b *testing.B) (*UndirectedGraph, [][]int32) {
	b.Helper()
	g := superipg.HSN(3, nucleus.Hypercube(4)).MustBuild().Undirected()
	rows := make([][]int32, g.N())
	var buf []int32
	for v := 0; v < g.N(); v++ {
		buf = g.Neighbors(v, buf)
		rows[v] = append([]int32(nil), buf...)
	}
	return g, rows
}

// BenchmarkBFS_CSR measures one full BFS over HSN(3,Q4) (4096 nodes) in
// the flat CSR arena versus the pre-refactor per-row slice representation.
func BenchmarkBFS_CSR(b *testing.B) {
	g, rows := hsn3q4Rows(b)
	n := g.N()
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	b.Run("csr", func(b *testing.B) {
		c := g.CSR()
		for i := 0; i < b.N; i++ {
			if ecc, _ := c.BFSInto(i%n, dist, queue); ecc < 0 {
				b.Fatal("disconnected")
			}
		}
	})
	b.Run("rows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ecc, _ := rowsBFSInto(rows, i%n, dist, queue); ecc < 0 {
				b.Fatal("disconnected")
			}
		}
	})
}

// BenchmarkBFSMemoryFootprint reports the adjacency storage of HSN(3,Q4)
// in bytes per vertex for both representations: the CSR arena (uint32
// offsets + int32 arena) versus per-row slices (24-byte slice header plus
// a backing array per vertex).
func BenchmarkBFSMemoryFootprint(b *testing.B) {
	g, rows := hsn3q4Rows(b)
	n := float64(g.N())
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.MemoryFootprint()
		}
		b.ReportMetric(float64(g.MemoryFootprint())/n, "bytes/vertex")
	})
	b.Run("rows", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			bytes = int64(len(rows)) * 24 // slice headers
			for _, r := range rows {
				bytes += int64(cap(r)) * 4
			}
		}
		b.ReportMetric(float64(bytes)/n, "bytes/vertex")
	})
}

// benchFamilies4096 materializes the eight golden families at serving
// scale (~4096 nodes) for the all-sources BFS benchmarks.
func benchFamilies4096() []struct {
	name string
	g    *graph.Graph
} {
	q4 := func() *nucleus.Nucleus { return nucleus.Hypercube(4) }
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"HSN3Q4", superipg.HSN(3, q4()).MustBuild().Undirected()},
		{"ringCN3Q4", superipg.RingCN(3, q4()).MustBuild().Undirected()},
		{"completeCN3Q4", superipg.CompleteCN(3, q4()).MustBuild().Undirected()},
		{"SFN3Q4", superipg.SFN(3, q4()).MustBuild().Undirected()},
		{"Q12", topology.NewHypercube(12).G},
		{"64ary2cube", topology.NewTorus(64, 2).G},
		{"CCC9", topology.NewCCC(9).G},
		{"WBF9", topology.NewButterfly(9).G},
	}
}

// BenchmarkAllSourcesBFS measures one full all-sources distance sweep per
// family three ways, all single-threaded so the numbers isolate kernel
// effects from worker-pool parallelism:
//
//   - scalar: one BFSInto per source (the pre-PR kernel),
//   - msbfs: 64-source batches through the bit-parallel kernel,
//   - symmetry: a single source, valid only for the vertex-transitive
//     families, where it already yields the exact diameter and average
//     distance.
//
// scripts/bench_compare.sh turns these into the speedup ratios committed
// in BENCH_PR4.json.
func BenchmarkAllSourcesBFS(b *testing.B) {
	for _, f := range benchFamilies4096() {
		c := f.g.CSR()
		n := c.N()
		b.Run(f.name+"/scalar", func(b *testing.B) {
			dist := make([]int32, n)
			queue := make([]int32, 0, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var diam int32
				for src := 0; src < n; src++ {
					ecc, _ := c.BFSInto(src, dist, queue)
					if ecc > diam {
						diam = ecc
					}
				}
				if diam <= 0 {
					b.Fatal("bad diameter")
				}
			}
		})
		b.Run(f.name+"/msbfs", func(b *testing.B) {
			s := topo.NewMSBFSScratch(n)
			ecc := make([]int32, 64)
			sum := make([]int64, 64)
			srcs := make([]int32, 0, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var diam int32
				for lo := 0; lo < n; lo += 64 {
					hi := lo + 64
					if hi > n {
						hi = n
					}
					srcs = srcs[:0]
					for v := lo; v < hi; v++ {
						srcs = append(srcs, int32(v))
					}
					c.MSBFSInto(srcs, s, ecc, sum, nil)
					for _, e := range ecc[:len(srcs)] {
						if e > diam {
							diam = e
						}
					}
				}
				if diam <= 0 {
					b.Fatal("bad diameter")
				}
			}
		})
		if !f.g.VertexTransitive() {
			continue
		}
		b.Run(f.name+"/symmetry", func(b *testing.B) {
			dist := make([]int32, n)
			queue := make([]int32, 0, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ecc, _ := c.BFSInto(0, dist, queue); ecc <= 0 {
					b.Fatal("bad eccentricity")
				}
			}
		})
	}
}

// benchSources4096 pairs each golden family at serving scale with both
// of its adjacency sources: the materialized CSR arena and the implicit
// rank/unrank codec over the same vertex numbering.
func benchSources4096() []struct {
	name string
	csr  *topo.CSR
	impl *topo.Implicit
} {
	q4 := func() *nucleus.Nucleus { return nucleus.Hypercube(4) }
	superPair := func(w *superipg.Network) (*topo.CSR, *topo.Implicit) {
		im, err := w.Implicit()
		if err != nil {
			panic(err)
		}
		// Materialize the CSR in address order so both sources traverse
		// the same vertex numbering (the equivalence tests pin the two
		// representations to identical rows).
		c, err := topo.Build(im.N(), func(edge func(u, v int)) {
			var buf []int32
			for v := 0; v < im.N(); v++ {
				buf = im.NeighborsInto(v, buf)
				for _, u := range buf {
					edge(v, int(u))
				}
			}
		})
		if err != nil {
			panic(err)
		}
		return c, im
	}
	baselinePair := func(g *graph.Graph, cd topo.Codec, err error) (*topo.CSR, *topo.Implicit) {
		if err != nil {
			panic(err)
		}
		return g.CSR(), topo.NewImplicit(cd)
	}
	mk := func(name string, c *topo.CSR, im *topo.Implicit) struct {
		name string
		csr  *topo.CSR
		impl *topo.Implicit
	} {
		return struct {
			name string
			csr  *topo.CSR
			impl *topo.Implicit
		}{name, c, im}
	}
	hc, herr := topo.NewHypercubeCodec(12)
	tc, terr := topo.NewTorusCodec(64, 2)
	cc, cerr := topo.NewCCCCodec(9)
	bc, berr := topo.NewButterflyCodec(9)
	hsnC, hsnI := superPair(superipg.HSN(3, q4()))
	sfnC, sfnI := superPair(superipg.SFN(3, q4()))
	q12C, q12I := baselinePair(topology.NewHypercube(12).G, hc, herr)
	torC, torI := baselinePair(topology.NewTorus(64, 2).G, tc, terr)
	cccC, cccI := baselinePair(topology.NewCCC(9).G, cc, cerr)
	wbfC, wbfI := baselinePair(topology.NewButterfly(9).G, bc, berr)
	return []struct {
		name string
		csr  *topo.CSR
		impl *topo.Implicit
	}{
		mk("HSN3Q4", hsnC, hsnI),
		mk("SFN3Q4", sfnC, sfnI),
		mk("Q12", q12C, q12I),
		mk("64ary2cube", torC, torI),
		mk("CCC9", cccC, cccI),
		mk("WBF9", wbfC, wbfI),
	}
}

// BenchmarkNeighborGen measures one full neighbor sweep — NeighborsInto
// over every vertex — per family for both adjacency sources.  The ratio
// implicit/csr is the per-row cost of regenerating adjacency from the
// rank/unrank codec instead of loading an arena row; bench_compare.sh
// gates it against scripts/bench_baseline_pr4.json so a codec change that
// quietly blows up the implicit serving path fails CI.  Single-threaded
// for the same reason as BenchmarkAllSourcesBFS.
func BenchmarkNeighborGen(b *testing.B) {
	for _, f := range benchSources4096() {
		sweep := func(s topo.Source) func(b *testing.B) {
			return func(b *testing.B) {
				n := s.N()
				buf := make([]int32, 0, s.DegreeBound())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var touched int64
					for v := 0; v < n; v++ {
						buf = s.NeighborsInto(v, buf)
						touched += int64(len(buf))
					}
					if touched <= 0 {
						b.Fatal("empty sweep")
					}
				}
			}
		}
		b.Run(f.name+"/csr", sweep(f.csr))
		b.Run(f.name+"/implicit", sweep(f.impl))
	}
}

// BenchmarkNetsimStepAllocs measures steady-state rounds of the packet
// simulator under random uniform traffic on HSN(3,Q3); run with -benchmem
// to see the per-round allocation budget the persistent phase and emit
// closures buy.
func BenchmarkNetsimStepAllocs(b *testing.B) {
	w := superipg.HSN(3, nucleus.Hypercube(3))
	g, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	net, err := netsim.BuildSuperIPG(w, g, 8.0, nil)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := netsim.New(net, 1)
	if err != nil {
		b.Fatal(err)
	}
	rngs := make([]*rand.Rand, net.N)
	for u := range rngs {
		rngs[u] = rand.New(rand.NewSource(1 + int64(u)*1_000_003))
	}
	sim.SetInjector(func(u int, _ int32, emit func(dst int32)) {
		rng := rngs[u]
		if rng.Float64() < 0.2 {
			dst := int32(rng.Intn(net.N - 1))
			if int(dst) >= u {
				dst++
			}
			emit(dst)
		}
	})
	for i := 0; i < 50; i++ { // fill the pipeline before measuring
		if _, err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTotalExchange512 runs a full total exchange on HSN(3,Q3).
func BenchmarkTotalExchange512(b *testing.B) {
	w := superipg.HSN(3, nucleus.Hypercube(3))
	g, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	net, err := netsim.BuildSuperIPG(w, g, 1e9, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.RunTotalExchange(net, 1, 20000); err != nil {
			b.Fatal(err)
		}
	}
}
