package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"
)

// Zero-allocation response writing.  The warm serving paths (/healthz,
// memoized /v1/metrics, the fixed error envelopes) write precomputed
// immutable bodies with precomputed header value slices; dynamic
// responses encode into pooled buffers.  Headers are set by direct map
// assignment of shared []string values — http.Header.Set allocates a
// fresh one-element slice per call, which is the single largest
// allocation on an otherwise-static response.

// Shared header values.  These slices are assigned into header maps and
// must never be mutated.
var (
	jsonCT        = []string{"application/json"}
	retryAfterOne = []string{"1"}
)

// healthzBody is the /healthz response, byte-identical to the
// json.Encoder output it replaced.
var (
	healthzBody = []byte("{\"status\":\"ok\"}\n")
	healthzLen  = []string{strconv.Itoa(len(healthzBody))}
)

// staticBody is a precomputed immutable response body with its header
// values, built once (at memoization time) and served with two map
// assignments and one Write.
type staticBody struct {
	body []byte
	clen []string // Content-Length
	etag []string // strong ETag: quoted FNV-1a 64 of the body
}

func newStaticBody(body []byte) *staticBody {
	return &staticBody{
		body: body,
		clen: []string{strconv.Itoa(len(body))},
		etag: []string{etagOf(body)},
	}
}

// etagOf derives the strong entity tag for an immutable body.  The
// memoized metrics documents are byte-stable (the WriteJSON contract),
// so a content hash is a valid strong validator.
func etagOf(body []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(body)
	return `"` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// etagMatches implements If-None-Match matching against one strong etag:
// a comma-separated candidate list, "*", and weak ("W/"-prefixed)
// candidates compare true per RFC 9110's weak comparison.
func etagMatches(header, etag string) bool {
	for len(header) > 0 {
		var cand string
		if i := strings.IndexByte(header, ','); i >= 0 {
			cand, header = header[:i], header[i+1:]
		} else {
			cand, header = header, ""
		}
		cand = strings.TrimSpace(cand)
		if cand == "*" {
			return true
		}
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// writeStaticJSON writes a precomputed body with its precomputed
// Content-Length.  code http.StatusOK skips the explicit WriteHeader
// (the first Write implies it).
func writeStaticJSON(w http.ResponseWriter, code int, body []byte, clen []string) {
	h := w.Header()
	h["Content-Type"] = jsonCT
	h["Content-Length"] = clen
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	_, _ = w.Write(body)
}

// encBuf is a pooled response-encoding buffer with a json.Encoder bound
// to it, plus a scratch slice for manual JSON assembly, reused across
// requests.
type encBuf struct {
	buf     bytes.Buffer
	scratch []byte
	enc     *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &encBuf{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// encBufMaxRetain drops buffers a giant response grew instead of pooling
// them forever.
const encBufMaxRetain = 1 << 20

func putEncBuf(e *encBuf) {
	if e.buf.Cap() <= encBufMaxRetain {
		encPool.Put(e)
	}
}

// writeJSON encodes v into a pooled buffer and writes it as one
// application/json response (one Write call, so net/http sets
// Content-Length itself for responses that fit its output buffer).
func writeJSON(w http.ResponseWriter, v any) error {
	e := encPool.Get().(*encBuf)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		putEncBuf(e)
		return err
	}
	w.Header()["Content-Type"] = jsonCT
	_, err := w.Write(e.buf.Bytes())
	putEncBuf(e)
	return err
}

// writeErrorJSON writes a {"error": msg} envelope for a dynamic message
// through the pooled buffer, byte-compatible with the json.Encoder
// encoding of map[string]string{"error": msg} it replaced.
func writeErrorJSON(w http.ResponseWriter, code int, msg string) {
	e := encPool.Get().(*encBuf)
	e.buf.Reset()
	e.buf.WriteString(`{"error":`)
	e.scratch = appendJSONString(e.scratch[:0], msg)
	e.buf.Write(e.scratch)
	e.buf.WriteString("}\n")
	h := w.Header()
	h["Content-Type"] = jsonCT
	w.WriteHeader(code)
	_, _ = w.Write(e.buf.Bytes())
	putEncBuf(e)
}

// staticErrorBody precomputes the error envelope for a fixed sentinel
// message.
func staticErrorBody(msg string) *staticBody {
	b := append(appendJSONString([]byte(`{"error":`), msg), '}', '\n')
	return newStaticBody(b)
}

// Preencoded envelopes for the fixed-message errors on the backpressure
// and timeout paths, so a saturated server sheds load without allocating
// per rejection.
var (
	saturatedBody   = staticErrorBody(ErrSaturated.Error())
	circuitOpenBody = staticErrorBody(ErrCircuitOpen.Error())
	deadlineBody    = staticErrorBody(context.DeadlineExceeded.Error())
	canceledBody    = staticErrorBody(context.Canceled.Error())
)

// jsonSafe marks the ASCII bytes encoding/json emits verbatim inside a
// string (with HTML escaping on, its Encoder default).
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for b := 0; b < utf8.RuneSelf; b++ {
		safe[b] = b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
	}
	return
}()

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, matching
// encoding/json's escaping (HTML escapes included) byte for byte so the
// manual error envelopes are indistinguishable from encoded ones.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
