package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// checkMultipathBlock asserts the structural contract of a multipath
// response block: the right tree count, every path running src -> dst,
// and the disjointness self-check green.
func checkMultipathBlock(t *testing.T, mp *MultipathRoute, src, dst, wantK int) {
	t.Helper()
	if mp == nil {
		t.Fatal("multipath block missing")
	}
	if mp.K != wantK || len(mp.Paths) != wantK {
		t.Fatalf("multipath k = %d with %d paths, want %d", mp.K, len(mp.Paths), wantK)
	}
	if !mp.Disjoint {
		t.Fatal("multipath paths failed the disjointness self-check")
	}
	for _, p := range mp.Paths {
		if len(p.Path) == 0 || p.Path[0] != src || p.Path[len(p.Path)-1] != dst {
			t.Fatalf("tree %d path does not run %d -> %d: %v", p.Tree, src, dst, p.Path)
		}
		if p.Hops != len(p.Path)-1 {
			t.Fatalf("tree %d hops %d inconsistent with path length %d", p.Tree, p.Hops, len(p.Path))
		}
	}
}

// TestMultipathRoute: /v1/route?multipath=k returns k disjoint routes —
// the full k = dim family on the hypercube, the generic 2 elsewhere —
// and clamps oversized requests to what the topology supports.
func TestMultipathRoute(t *testing.T) {
	srv := NewServer(Config{Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var route RouteResponse
	if resp := get(t, ts, "/v1/route?net=hypercube&dim=6&logm=2&src=3&dst=44&multipath=6", &route); resp.StatusCode != http.StatusOK {
		t.Fatalf("hypercube multipath: status %d", resp.StatusCode)
	}
	checkMultipathBlock(t, route.Multipath, 3, 44, 6)
	if route.Multipath.Requested != 6 {
		t.Fatalf("requested echo %d, want 6", route.Multipath.Requested)
	}
	if route.Hops != len(route.Path)-1 || route.Path[0] != 3 {
		t.Fatalf("single-path part of the response broke: %+v", route)
	}

	// Super-IPG family: generic 2-IST, with an oversized request clamped.
	var hsn RouteResponse
	if resp := get(t, ts, "/v1/route?net=hsn&l=2&nucleus=q2&src=0&dst=5&multipath=10", &hsn); resp.StatusCode != http.StatusOK {
		t.Fatalf("hsn multipath: status %d", resp.StatusCode)
	}
	checkMultipathBlock(t, hsn.Multipath, 0, 5, 2)
	if hsn.Multipath.Requested != 10 {
		t.Fatalf("requested echo %d, want 10", hsn.Multipath.Requested)
	}
	if len(hsn.Labels) == 0 {
		t.Fatal("super-IPG labels must survive the multipath branch")
	}

	// multipath=0 leaves the response exactly as before.
	var plain RouteResponse
	if resp := get(t, ts, "/v1/route?net=hsn&l=2&nucleus=q2&src=0&dst=5&multipath=0", &plain); resp.StatusCode != http.StatusOK {
		t.Fatalf("multipath=0: status %d", resp.StatusCode)
	}
	if plain.Multipath != nil {
		t.Fatal("multipath=0 must omit the multipath block")
	}

	// The counter moved.
	raw, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(raw.Body)
	raw.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v := promValue(t, string(b), "ipgd_multipath_routes_total"); v < 2 {
		t.Fatalf("ipgd_multipath_routes_total = %v, want >= 2", v)
	}
}

// TestMultipathRouteFaults: fault parameters annotate each tree path
// with survival and the block with delivery; one link fault can never
// sever both disjoint trees, so delivery is guaranteed.
func TestMultipathRouteFaults(t *testing.T) {
	srv := NewServer(Config{Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for seed := 1; seed <= 5; seed++ {
		var route RouteResponse
		url := "/v1/route?net=hypercube&dim=6&logm=2&src=9&dst=54&multipath=6&faults=5&fmode=link&fseed=" +
			string(rune('0'+seed))
		if resp := get(t, ts, url, &route); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		mp := route.Multipath
		checkMultipathBlock(t, mp, 9, 54, 6)
		if mp.Faults == nil || mp.Faults.Mode != "link" || mp.Faults.Count != 5 || mp.Faults.DeadLinks != 5 {
			t.Fatalf("seed %d: fault echo wrong: %+v", seed, mp.Faults)
		}
		if mp.Delivered == nil || !*mp.Delivered {
			t.Fatalf("seed %d: 5 link faults < k=6 trees must leave a surviving path", seed)
		}
		annotated := 0
		for _, p := range mp.Paths {
			if p.Alive != nil {
				annotated++
			}
		}
		if annotated != 6 {
			t.Fatalf("seed %d: %d of 6 paths annotated", seed, annotated)
		}
	}
}

// TestMultipathRouteValidation: bad parameters are 400s, never 500s.
func TestMultipathRouteValidation(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bad := []string{
		"/v1/route?net=hypercube&dim=4&logm=1&src=0&dst=3&multipath=-1",
		"/v1/route?net=hypercube&dim=4&logm=1&src=0&dst=3&multipath=65",
		"/v1/route?net=hypercube&dim=4&logm=1&src=0&dst=3&multipath=bogus",
		"/v1/route?net=hypercube&dim=4&logm=1&src=0&dst=3&multipath=2&fmode=adversarial&faults=1",
	}
	for _, u := range bad {
		if resp := get(t, ts, u, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}
}

// TestISTreesMemo: repeated requests for the same (dst, k) return the
// cached table, and the FIFO bound holds.
func TestISTreesMemo(t *testing.T) {
	a, err := BuildArtifact(context.Background(), Params{Net: "hsn", L: 2, Nucleus: "q2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := a.ISTrees(context.Background(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := a.ISTrees(context.Background(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Fatal("second ISTrees call must hit the memo")
	}
	for dst := 0; dst < a.N && dst < istMemoMaxEntries+8; dst++ {
		if _, err := a.ISTrees(context.Background(), dst, 2); err != nil {
			t.Fatal(err)
		}
	}
	a.mu.Lock()
	entries := len(a.istMemo)
	a.mu.Unlock()
	if entries > istMemoMaxEntries {
		t.Fatalf("memo grew to %d entries, cap is %d", entries, istMemoMaxEntries)
	}
}
