package serve

import (
	"context"
	"testing"
)

// BenchmarkWarmServingPaths measures the per-request cost of the two hot
// read paths after an artifact is cached: the memoized /v1/metrics body
// and the pooled-scratch shortest-path reconstruction behind /v1/route.
// Run with -benchmem; the allocation counts here are the PR's "zero-alloc
// serving" evidence (the route path's remaining allocations are the
// response slice itself).
func BenchmarkWarmServingPaths(b *testing.B) {
	ctx := context.Background()
	p := Params{Net: "hsn", L: 3, Nucleus: "q4"}
	a, err := BuildArtifact(ctx, p, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("metricsJSON", func(b *testing.B) {
		if _, err := a.MetricsJSON(ctx, false); err != nil {
			b.Fatal(err) // prime the memo so the loop measures the warm path
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.MetricsJSON(ctx, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("route", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := shortestPath(ctx, a, i%a.N, (i+a.N/2)%a.N); err != nil {
				b.Fatal(err)
			}
		}
	})
}
