// Package serve is the topology-as-a-service layer: canonicalized family
// parameters, cached topology artifacts (internal/cache), the shared
// machine-readable metrics document used by both the daemon's /v1/metrics
// handler and `ipgtool -json`, and the HTTP server behind cmd/ipgd.
package serve

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ipg/internal/nucleus"
	"ipg/internal/topology"
)

// Params identifies one network family instance.  Only the fields listed
// in familyParams for the chosen Net are meaningful; Key() canonicalizes
// exactly those, so HSN(3,Q4) requested with a stray default dim and
// HSN(3,Q4) requested bare hash to the same cache entry.
type Params struct {
	Net     string // family name, lowercase
	L       int    // super-symbols (super-IPG families)
	Nucleus string // nucleus spec, e.g. "q4" or "ghc:4,4"
	Dim     int    // dimension (hypercube/ccc/butterfly)
	LogM    int    // log2 nodes per chip (hypercube)
	K       int    // radix (torus)
	Side    int    // chip side (torus)
	Band    int    // level band width (butterfly)
}

// Defaults mirror the ipgtool flag defaults, so the daemon and the CLI
// agree on what an unspecified parameter means.
func Defaults() Params {
	return Params{Net: "hsn", L: 3, Nucleus: "q2", Dim: 8, LogM: 2, K: 8, Side: 2, Band: 2}
}

// superFamilies are the super-IPG families materialized via
// internal/superipg; the rest are baseline MCMP networks.
var superFamilies = map[string]bool{
	"hsn": true, "ring-cn": true, "complete-cn": true, "sfn": true,
	"hcn": true, "rcc": true,
}

// familyParams maps each family to the parameter names it consumes.  A
// request that sets a parameter its family ignores is rejected rather
// than silently building a different network than the caller imagined.
var familyParams = map[string]map[string]bool{
	"hsn":         {"l": true, "nucleus": true},
	"ring-cn":     {"l": true, "nucleus": true},
	"complete-cn": {"l": true, "nucleus": true},
	"sfn":         {"l": true, "nucleus": true},
	"rcc":         {"l": true, "nucleus": true},
	"hcn":         {"nucleus": true},
	"hypercube":   {"dim": true, "logm": true},
	"torus":       {"k": true, "side": true},
	"ccc":         {"dim": true},
	"butterfly":   {"dim": true, "band": true},
}

// Provided is the set of explicitly supplied parameter names as a
// bitmask — the allocation-free form of Check's map argument, used by
// the serving hot path (ParamsFromRawQuery + CheckProvided).
type Provided uint8

const (
	ProvL Provided = 1 << iota
	ProvNucleus
	ProvDim
	ProvLogM
	ProvK
	ProvSide
	ProvBand
)

// provNames orders the parameter bits for error messages, matching the
// names familyParams uses.
var provNames = [...]struct {
	name string
	bit  Provided
}{
	{"l", ProvL}, {"nucleus", ProvNucleus}, {"dim", ProvDim},
	{"logm", ProvLogM}, {"k", ProvK}, {"side", ProvSide}, {"band", ProvBand},
}

// familyAllowedMask is familyParams in bitmask form, derived once.
var familyAllowedMask = func() map[string]Provided {
	out := make(map[string]Provided, len(familyParams))
	for fam, allowed := range familyParams {
		var mask Provided
		for _, pn := range provNames {
			if allowed[pn.name] {
				mask |= pn.bit
			}
		}
		out[fam] = mask
	}
	return out
}()

// provBit maps a parameter name to its bit.
func provBit(name string) (Provided, bool) {
	for _, pn := range provNames {
		if pn.name == name {
			return pn.bit, true
		}
	}
	return 0, false
}

// Families returns the known family names, sorted.
func Families() []string {
	out := make([]string, 0, len(familyParams))
	for f := range familyParams {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// IsSuperFamily reports whether net names a super-IPG family.
func IsSuperFamily(net string) bool { return superFamilies[net] }

// Check validates p.  provided names the parameters the caller explicitly
// set ("l", "nucleus", "dim", "logm", "k", "side", "band"); a provided
// parameter the family does not consume is an error.  Pass nil to skip
// the applicability check and validate ranges only.
func (p Params) Check(provided map[string]bool) error {
	if _, ok := familyAllowedMask[p.Net]; !ok {
		return fmt.Errorf("unknown network %q (known: %s)", p.Net, strings.Join(Families(), ", "))
	}
	var prov Provided
	for name := range provided {
		bit, ok := provBit(name)
		if !ok {
			return fmt.Errorf("parameter %q does not apply to net %q", name, p.Net)
		}
		prov |= bit
	}
	return p.CheckProvided(prov)
}

// CheckProvided is Check with the provided set as a bitmask: the
// allocation-free validation the raw-query request path uses.
func (p Params) CheckProvided(prov Provided) error {
	allowed, ok := familyAllowedMask[p.Net]
	if !ok {
		return fmt.Errorf("unknown network %q (known: %s)", p.Net, strings.Join(Families(), ", "))
	}
	if bad := prov &^ allowed; bad != 0 {
		for _, pn := range provNames {
			if bad&pn.bit != 0 {
				return fmt.Errorf("parameter %q does not apply to net %q", pn.name, p.Net)
			}
		}
	}
	switch {
	case superFamilies[p.Net]:
		l := p.effectiveL()
		if l < 2 || l > 20 {
			// The Theorem 4.1/4.3 arrangement BFS is bounded to l <= 20.
			return fmt.Errorf("l = %d outside [2, 20]", p.L)
		}
		nuc, err := parseNucleusCached(p.Nucleus)
		if err != nil {
			return err
		}
		// Overflow-guard the M^l node count; label-level metrics work at
		// any size, but the count itself must stay a sane int.
		n := 1
		for i := 0; i < l; i++ {
			if nuc.M <= 0 || n > (1<<40)/nuc.M {
				return fmt.Errorf("%s(%d,%s) has more than 2^40 nodes", p.Net, l, p.Nucleus)
			}
			n *= nuc.M
		}
	case p.Net == "hypercube":
		// Materialization is still capped at topology.MaxNodes (1<<22)
		// nodes at build time; the wider bound here admits the sizes the
		// implicit rank/unrank codec can serve (vertex ids within int32).
		if p.Dim < 1 || p.Dim > 30 {
			return fmt.Errorf("hypercube dim %d outside [1, 30]", p.Dim)
		}
		if p.LogM < 0 || p.LogM >= p.Dim {
			return fmt.Errorf("logm %d outside [0, dim) for Q%d: nodes per chip must be a power of two dividing the network", p.LogM, p.Dim)
		}
	case p.Net == "torus":
		if p.K < 2 || p.K > 46340 {
			// 46340^2 is the largest square within int32 vertex ids; sizes
			// above topology.MaxNodes are served implicitly.
			return fmt.Errorf("torus radix k = %d outside [2, 46340]", p.K)
		}
		if p.Side < 1 || p.Side > p.K || p.K%p.Side != 0 {
			return fmt.Errorf("chip side %d must be in [1, k] and divide k = %d", p.Side, p.K)
		}
	case p.Net == "ccc":
		if p.Dim < 2 || p.Dim > 26 {
			// CCC(d) has d*2^d nodes; 26*2^26 < math.MaxInt32 < 27*2^27.
			// Sizes above topology.MaxNodes are served implicitly.
			return fmt.Errorf("ccc dim %d outside [2, 26]", p.Dim)
		}
	case p.Net == "butterfly":
		if p.Dim < 2 || p.Dim > 26 {
			return fmt.Errorf("butterfly dim %d outside [2, 26]", p.Dim)
		}
		if p.Band < 1 || p.Band > p.Dim || p.Dim%p.Band != 0 {
			return fmt.Errorf("band %d must be in [1, dim] and divide dim = %d", p.Band, p.Dim)
		}
	}
	return nil
}

// nucCache memoizes nucleus.Parse results for CheckProvided: the hot
// serving path re-validates the same handful of nucleus specs on every
// request, and Parse allocates.  Bounded so unbounded distinct (mostly
// invalid) specs from a querystring fuzzer cannot grow it without limit;
// past the bound new specs are parsed uncached.  A plain RWMutex-guarded
// map, not sync.Map: storing a string key in sync.Map would box it and
// allocate on the read path.
var nucCache = struct {
	sync.RWMutex
	m map[string]nucParseResult
}{m: make(map[string]nucParseResult)}

type nucParseResult struct {
	nuc *nucleus.Nucleus
	err error
}

const nucCacheMax = 4096

func parseNucleusCached(spec string) (*nucleus.Nucleus, error) {
	nucCache.RLock()
	r, ok := nucCache.m[spec]
	nucCache.RUnlock()
	if ok {
		return r.nuc, r.err
	}
	nuc, err := nucleus.Parse(spec)
	nucCache.Lock()
	if len(nucCache.m) < nucCacheMax {
		nucCache.m[spec] = nucParseResult{nuc: nuc, err: err}
	}
	nucCache.Unlock()
	return nuc, err
}

// effectiveL is the super-symbol count actually used: HCN is HSN(2, G) by
// definition, so its l is pinned at 2.
func (p Params) effectiveL() int {
	if p.Net == "hcn" {
		return 2
	}
	return p.L
}

// Key returns the canonical cache key: the family plus exactly the
// parameters it consumes, in fixed order.
func (p Params) Key() string { return string(p.AppendKey(nil)) }

// AppendKey appends the canonical cache key to dst and returns the
// extended slice — Key without the string allocation, so the warm
// request path can probe the cache with a pooled key buffer.  The bytes
// are identical to Key's.
func (p Params) AppendKey(dst []byte) []byte {
	allowed := familyAllowedMask[p.Net]
	dst = append(dst, p.Net...)
	if allowed&ProvL != 0 {
		dst = append(dst, "|l="...)
		dst = strconv.AppendInt(dst, int64(p.effectiveL()), 10)
	}
	if allowed&ProvNucleus != 0 {
		dst = append(dst, "|nucleus="...)
		// ToLower returns its input unchanged (no copy) when the spec is
		// already lowercase, which request-decoded params always are.
		dst = append(dst, strings.ToLower(strings.TrimSpace(p.Nucleus))...)
	}
	if allowed&ProvDim != 0 {
		dst = append(dst, "|dim="...)
		dst = strconv.AppendInt(dst, int64(p.Dim), 10)
	}
	if allowed&ProvLogM != 0 {
		dst = append(dst, "|logm="...)
		dst = strconv.AppendInt(dst, int64(p.LogM), 10)
	}
	if allowed&ProvK != 0 {
		dst = append(dst, "|k="...)
		dst = strconv.AppendInt(dst, int64(p.K), 10)
	}
	if allowed&ProvSide != 0 {
		dst = append(dst, "|side="...)
		dst = strconv.AppendInt(dst, int64(p.Side), 10)
	}
	if allowed&ProvBand != 0 {
		dst = append(dst, "|band="...)
		dst = strconv.AppendInt(dst, int64(p.Band), 10)
	}
	return dst
}

// MaxBaselineNodes is the materialization cap for baseline families,
// re-exported for range documentation.
const MaxBaselineNodes = topology.MaxNodes

// ParamsFromQuery decodes family parameters from an HTTP query, applying
// the shared defaults, and returns the set of explicitly provided names
// for Check.  Unknown query keys are left to the caller (handlers accept
// extra per-endpoint keys).
func ParamsFromQuery(q url.Values) (Params, map[string]bool, error) {
	p := Defaults()
	provided := map[string]bool{}
	if v := q.Get("net"); v != "" {
		p.Net = strings.ToLower(strings.TrimSpace(v))
	}
	if v := q.Get("nucleus"); v != "" {
		p.Nucleus = strings.ToLower(strings.TrimSpace(v))
		provided["nucleus"] = true
	}
	ints := []struct {
		name string
		dst  *int
	}{
		{"l", &p.L}, {"dim", &p.Dim}, {"logm", &p.LogM},
		{"k", &p.K}, {"side", &p.Side}, {"band", &p.Band},
	}
	for _, f := range ints {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return p, provided, fmt.Errorf("parameter %q: bad integer %q", f.name, v)
		}
		*f.dst = n
		provided[f.name] = true
	}
	return p, provided, nil
}

// RawQueryNeedsEscape reports whether a raw query string contains
// characters the zero-allocation scanners cannot decode in place
// (%-escapes, '+'-encoded spaces, or legacy ';' separators).  Requests
// carrying them take the url.Values path instead; family parameter
// values never need escaping, so in practice the fast path covers all
// production traffic.
func RawQueryNeedsEscape(raw string) bool {
	return strings.ContainsAny(raw, "%+;")
}

// ParamsFromRawQuery decodes family parameters by scanning the raw query
// string in place — ParamsFromQuery without the url.Values map or the
// provided-set map, for the serving hot path.  Callers must route
// queries for which RawQueryNeedsEscape is true through ParamsFromQuery;
// for all other queries the two decoders agree exactly (url.Values.Get
// semantics: the first occurrence of a key wins, an empty value counts
// as unset).
func ParamsFromRawQuery(raw string) (Params, Provided, error) {
	p := Defaults()
	var prov, seen Provided
	seenNet := false
	for len(raw) > 0 {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if pair == "" {
			continue
		}
		key, val, _ := strings.Cut(pair, "=")
		if key == "net" {
			if seenNet {
				continue
			}
			seenNet = true
			if val != "" {
				p.Net = strings.ToLower(strings.TrimSpace(val))
			}
			continue
		}
		bit, ok := provBit(key)
		if !ok || seen&bit != 0 {
			continue // unknown keys are per-endpoint extras; first value wins
		}
		seen |= bit
		if val == "" {
			continue
		}
		if bit == ProvNucleus {
			p.Nucleus = strings.ToLower(strings.TrimSpace(val))
			prov |= bit
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return p, prov, fmt.Errorf("parameter %q: bad integer %q", key, val)
		}
		switch bit {
		case ProvL:
			p.L = n
		case ProvDim:
			p.Dim = n
		case ProvLogM:
			p.LogM = n
		case ProvK:
			p.K = n
		case ProvSide:
			p.Side = n
		case ProvBand:
			p.Band = n
		}
		prov |= bit
	}
	return p, prov, nil
}
