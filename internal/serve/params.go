// Package serve is the topology-as-a-service layer: canonicalized family
// parameters, cached topology artifacts (internal/cache), the shared
// machine-readable metrics document used by both the daemon's /v1/metrics
// handler and `ipgtool -json`, and the HTTP server behind cmd/ipgd.
package serve

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"ipg/internal/nucleus"
	"ipg/internal/topology"
)

// Params identifies one network family instance.  Only the fields listed
// in familyParams for the chosen Net are meaningful; Key() canonicalizes
// exactly those, so HSN(3,Q4) requested with a stray default dim and
// HSN(3,Q4) requested bare hash to the same cache entry.
type Params struct {
	Net     string // family name, lowercase
	L       int    // super-symbols (super-IPG families)
	Nucleus string // nucleus spec, e.g. "q4" or "ghc:4,4"
	Dim     int    // dimension (hypercube/ccc/butterfly)
	LogM    int    // log2 nodes per chip (hypercube)
	K       int    // radix (torus)
	Side    int    // chip side (torus)
	Band    int    // level band width (butterfly)
}

// Defaults mirror the ipgtool flag defaults, so the daemon and the CLI
// agree on what an unspecified parameter means.
func Defaults() Params {
	return Params{Net: "hsn", L: 3, Nucleus: "q2", Dim: 8, LogM: 2, K: 8, Side: 2, Band: 2}
}

// superFamilies are the super-IPG families materialized via
// internal/superipg; the rest are baseline MCMP networks.
var superFamilies = map[string]bool{
	"hsn": true, "ring-cn": true, "complete-cn": true, "sfn": true,
	"hcn": true, "rcc": true,
}

// familyParams maps each family to the parameter names it consumes.  A
// request that sets a parameter its family ignores is rejected rather
// than silently building a different network than the caller imagined.
var familyParams = map[string]map[string]bool{
	"hsn":         {"l": true, "nucleus": true},
	"ring-cn":     {"l": true, "nucleus": true},
	"complete-cn": {"l": true, "nucleus": true},
	"sfn":         {"l": true, "nucleus": true},
	"rcc":         {"l": true, "nucleus": true},
	"hcn":         {"nucleus": true},
	"hypercube":   {"dim": true, "logm": true},
	"torus":       {"k": true, "side": true},
	"ccc":         {"dim": true},
	"butterfly":   {"dim": true, "band": true},
}

// Families returns the known family names, sorted.
func Families() []string {
	out := make([]string, 0, len(familyParams))
	for f := range familyParams {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// IsSuperFamily reports whether net names a super-IPG family.
func IsSuperFamily(net string) bool { return superFamilies[net] }

// Check validates p.  provided names the parameters the caller explicitly
// set ("l", "nucleus", "dim", "logm", "k", "side", "band"); a provided
// parameter the family does not consume is an error.  Pass nil to skip
// the applicability check and validate ranges only.
func (p Params) Check(provided map[string]bool) error {
	allowed, ok := familyParams[p.Net]
	if !ok {
		return fmt.Errorf("unknown network %q (known: %s)", p.Net, strings.Join(Families(), ", "))
	}
	for name := range provided {
		if !allowed[name] {
			return fmt.Errorf("parameter %q does not apply to net %q", name, p.Net)
		}
	}
	switch {
	case superFamilies[p.Net]:
		l := p.effectiveL()
		if l < 2 || l > 20 {
			// The Theorem 4.1/4.3 arrangement BFS is bounded to l <= 20.
			return fmt.Errorf("l = %d outside [2, 20]", p.L)
		}
		nuc, err := nucleus.Parse(p.Nucleus)
		if err != nil {
			return err
		}
		// Overflow-guard the M^l node count; label-level metrics work at
		// any size, but the count itself must stay a sane int.
		n := 1
		for i := 0; i < l; i++ {
			if nuc.M <= 0 || n > (1<<40)/nuc.M {
				return fmt.Errorf("%s(%d,%s) has more than 2^40 nodes", p.Net, l, p.Nucleus)
			}
			n *= nuc.M
		}
	case p.Net == "hypercube":
		// Materialization is still capped at topology.MaxNodes (1<<22)
		// nodes at build time; the wider bound here admits the sizes the
		// implicit rank/unrank codec can serve (vertex ids within int32).
		if p.Dim < 1 || p.Dim > 30 {
			return fmt.Errorf("hypercube dim %d outside [1, 30]", p.Dim)
		}
		if p.LogM < 0 || p.LogM >= p.Dim {
			return fmt.Errorf("logm %d outside [0, dim) for Q%d: nodes per chip must be a power of two dividing the network", p.LogM, p.Dim)
		}
	case p.Net == "torus":
		if p.K < 2 || p.K > 46340 {
			// 46340^2 is the largest square within int32 vertex ids; sizes
			// above topology.MaxNodes are served implicitly.
			return fmt.Errorf("torus radix k = %d outside [2, 46340]", p.K)
		}
		if p.Side < 1 || p.Side > p.K || p.K%p.Side != 0 {
			return fmt.Errorf("chip side %d must be in [1, k] and divide k = %d", p.Side, p.K)
		}
	case p.Net == "ccc":
		if p.Dim < 2 || p.Dim > 26 {
			// CCC(d) has d*2^d nodes; 26*2^26 < math.MaxInt32 < 27*2^27.
			// Sizes above topology.MaxNodes are served implicitly.
			return fmt.Errorf("ccc dim %d outside [2, 26]", p.Dim)
		}
	case p.Net == "butterfly":
		if p.Dim < 2 || p.Dim > 26 {
			return fmt.Errorf("butterfly dim %d outside [2, 26]", p.Dim)
		}
		if p.Band < 1 || p.Band > p.Dim || p.Dim%p.Band != 0 {
			return fmt.Errorf("band %d must be in [1, dim] and divide dim = %d", p.Band, p.Dim)
		}
	}
	return nil
}

// effectiveL is the super-symbol count actually used: HCN is HSN(2, G) by
// definition, so its l is pinned at 2.
func (p Params) effectiveL() int {
	if p.Net == "hcn" {
		return 2
	}
	return p.L
}

// Key returns the canonical cache key: the family plus exactly the
// parameters it consumes, in fixed order.
func (p Params) Key() string {
	var b strings.Builder
	b.WriteString(p.Net)
	allowed := familyParams[p.Net]
	add := func(name string, v int) {
		if allowed[name] {
			fmt.Fprintf(&b, "|%s=%d", name, v)
		}
	}
	add("l", p.effectiveL())
	if allowed["nucleus"] {
		fmt.Fprintf(&b, "|nucleus=%s", strings.ToLower(strings.TrimSpace(p.Nucleus)))
	}
	add("dim", p.Dim)
	add("logm", p.LogM)
	add("k", p.K)
	add("side", p.Side)
	add("band", p.Band)
	return b.String()
}

// MaxBaselineNodes is the materialization cap for baseline families,
// re-exported for range documentation.
const MaxBaselineNodes = topology.MaxNodes

// ParamsFromQuery decodes family parameters from an HTTP query, applying
// the shared defaults, and returns the set of explicitly provided names
// for Check.  Unknown query keys are left to the caller (handlers accept
// extra per-endpoint keys).
func ParamsFromQuery(q url.Values) (Params, map[string]bool, error) {
	p := Defaults()
	provided := map[string]bool{}
	if v := q.Get("net"); v != "" {
		p.Net = strings.ToLower(strings.TrimSpace(v))
	}
	if v := q.Get("nucleus"); v != "" {
		p.Nucleus = strings.ToLower(strings.TrimSpace(v))
		provided["nucleus"] = true
	}
	ints := []struct {
		name string
		dst  *int
	}{
		{"l", &p.L}, {"dim", &p.Dim}, {"logm", &p.LogM},
		{"k", &p.K}, {"side", &p.Side}, {"band", &p.Band},
	}
	for _, f := range ints {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return p, provided, fmt.Errorf("parameter %q: bad integer %q", f.name, v)
		}
		*f.dst = n
		provided[f.name] = true
	}
	return p, provided, nil
}
