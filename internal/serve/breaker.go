package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned without touching the cache or the worker pool
// when a family's circuit breaker is open; handlers translate it to 503 +
// Retry-After.
var ErrCircuitOpen = errors.New("serve: circuit open for this family")

// buildOutcome classifies a build result for the breaker.  Neutral
// outcomes — client errors, pool saturation, cancelled or expired
// contexts — say nothing about the family's health and neither trip nor
// close the breaker.
type buildOutcome int

const (
	outcomeOK buildOutcome = iota
	outcomeNeutral
	outcomeFail
)

// breakerSet is a per-family circuit breaker: threshold consecutive
// genuine build failures for one family open its circuit, and for
// cooldown every request against that family fast-fails with 503 without
// consuming a worker slot.  After the cooldown one probe request is let
// through (half-open); success closes the circuit, failure re-opens it
// for another cooldown.  A nil *breakerSet is a disabled breaker: allow
// always succeeds and report is a no-op.
type breakerSet struct {
	threshold int
	cooldown  time.Duration

	mu      sync.Mutex
	entries map[string]*breakerEntry
	opens   int64 // transitions to open, for the Prometheus counter
}

type breakerEntry struct {
	failures int       // consecutive genuine failures
	openedAt time.Time // when failures reached the threshold
	probing  bool      // a half-open probe is in flight
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	if threshold <= 0 {
		return nil
	}
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		entries:   make(map[string]*breakerEntry),
	}
}

// tripped reports whether e has reached the failure threshold.
func (b *breakerSet) tripped(e *breakerEntry) bool { return e.failures >= b.threshold }

// allow reports whether a request for key may proceed.  While the circuit
// is open it returns ErrCircuitOpen; in the half-open window it admits
// exactly one probe at a time.
func (b *breakerSet) allow(key string, now time.Time) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || !b.tripped(e) {
		return nil
	}
	if now.Sub(e.openedAt) < b.cooldown {
		return ErrCircuitOpen
	}
	if e.probing {
		return ErrCircuitOpen // one probe at a time
	}
	e.probing = true
	return nil
}

// report records the outcome of an admitted request for key.  A neutral
// outcome releases a half-open probe without a verdict, so the next
// request may probe again instead of the breaker wedging open.
func (b *breakerSet) report(key string, outcome buildOutcome, now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		if outcome != outcomeFail {
			return
		}
		e = &breakerEntry{}
		b.entries[key] = e
	}
	wasTripped := b.tripped(e)
	switch outcome {
	case outcomeOK:
		e.failures = 0
		e.probing = false
	case outcomeNeutral:
		e.probing = false
	case outcomeFail:
		e.probing = false
		if wasTripped {
			// Failed half-open probe: re-open for another cooldown.
			e.openedAt = now
			b.opens++
			return
		}
		e.failures++
		if b.tripped(e) {
			e.openedAt = now
			b.opens++
		}
	}
}

// states counts circuits currently open and half-open (cooldown elapsed,
// waiting for or running a probe), plus the total open transitions.
func (b *breakerSet) states(now time.Time) (open, halfOpen, opens int64) {
	if b == nil {
		return 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.entries {
		if !b.tripped(e) {
			continue
		}
		if now.Sub(e.openedAt) < b.cooldown {
			open++
		} else {
			halfOpen++
		}
	}
	return open, halfOpen, b.opens
}