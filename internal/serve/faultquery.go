package serve

import (
	"net/http"

	"ipg/internal/fault"
)

// faultQuery is the decoded fault block of a request: ?faults=K selects K
// failures, ?fmode= picks the model (node|link|chip|adversarial, default
// node), ?fseed= fixes the sample, and ?frouting= (aware|oblivious,
// default aware, /v1/simulate only) selects how the degraded network
// routes around the damage.
type faultQuery struct {
	Spec    fault.Spec
	Routing string
}

// parseFaultQuery returns nil when the request carries no fault
// parameter, so fault-free requests pay nothing.
func parseFaultQuery(r *http.Request) (*faultQuery, error) {
	q := r.URL.Query()
	if q.Get("faults") == "" && q.Get("fmode") == "" && q.Get("fseed") == "" && q.Get("frouting") == "" {
		return nil, nil
	}
	count, err := queryInt(r, "faults", 0)
	if err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, badRequest("parameter \"faults\" must be >= 0, got %d", count)
	}
	mode, err := fault.ParseMode(q.Get("fmode"))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	seed, err := queryInt(r, "fseed", 1)
	if err != nil {
		return nil, err
	}
	routing := q.Get("frouting")
	if routing == "" {
		routing = "aware"
	}
	if routing != "aware" && routing != "oblivious" {
		return nil, badRequest("parameter %q must be aware or oblivious, got %q", "frouting", routing)
	}
	return &faultQuery{
		Spec:    fault.Spec{Mode: mode, Count: count, Seed: int64(seed)},
		Routing: routing,
	}, nil
}