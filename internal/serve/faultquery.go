package serve

import (
	"net/http"
	"strconv"

	"ipg/internal/fault"
)

// faultQuery is the decoded fault block of a request: ?faults=K selects K
// failures, ?fmode= picks the model (node|link|chip|adversarial, default
// node), ?fseed= fixes the sample, and ?frouting= (aware|oblivious,
// default aware, /v1/simulate only) selects how the degraded network
// routes around the damage.
type faultQuery struct {
	Spec    fault.Spec
	Routing string
}

// parseFaultQuery returns nil when the request carries no fault
// parameter, so fault-free requests pay nothing — not even a query-map
// parse: the probe goes through the raw-query scanner.
func parseFaultQuery(r *http.Request) (*faultQuery, error) {
	faults := queryValue(r, "faults")
	fmode := queryValue(r, "fmode")
	fseed := queryValue(r, "fseed")
	routing := queryValue(r, "frouting")
	if faults == "" && fmode == "" && fseed == "" && routing == "" {
		return nil, nil
	}
	count := 0
	if faults != "" {
		n, err := strconv.Atoi(faults)
		if err != nil {
			return nil, badRequest("parameter %q: bad integer %q", "faults", faults)
		}
		count = n
	}
	if count < 0 {
		return nil, badRequest("parameter \"faults\" must be >= 0, got %d", count)
	}
	mode, err := fault.ParseMode(fmode)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	seed := 1
	if fseed != "" {
		n, err := strconv.Atoi(fseed)
		if err != nil {
			return nil, badRequest("parameter %q: bad integer %q", "fseed", fseed)
		}
		seed = n
	}
	if routing == "" {
		routing = "aware"
	}
	if routing != "aware" && routing != "oblivious" {
		return nil, badRequest("parameter %q must be aware or oblivious, got %q", "frouting", routing)
	}
	return &faultQuery{
		Spec:    fault.Spec{Mode: mode, Count: count, Seed: int64(seed)},
		Routing: routing,
	}, nil
}
