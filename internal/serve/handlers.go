package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ipg/internal/fault"
	"ipg/internal/netsim"
	"ipg/internal/topo"
)

// API handlers.  Each returns an error instead of writing its own failure
// body; instrument() maps the error to a JSON {"error": ...} response and
// the right status code.  A handler must not write anything before it is
// certain it will not return an error.

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeStaticJSON(w, http.StatusOK, healthzBody, healthzLen)
}

func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	open, halfOpen, opens := s.breaker.States(time.Now())
	s.metrics.WriteProm(w, s.cache.Stats(), breakerStats{open: open, halfOpen: halfOpen, opens: opens}, s.clusterPromStats())
}

// requestParams decodes and validates family parameters for one request.
// Escape-free queries (all production traffic) are scanned in place; only
// queries carrying %-escapes or '+' pay for url.Values.
func requestParams(r *http.Request) (Params, error) {
	if raw := r.URL.RawQuery; !RawQueryNeedsEscape(raw) {
		p, prov, err := ParamsFromRawQuery(raw)
		if err != nil {
			return p, badRequest("%v", err)
		}
		if err := p.CheckProvided(prov); err != nil {
			return p, badRequest("%v", err)
		}
		return p, nil
	}
	p, provided, err := ParamsFromQuery(r.URL.Query())
	if err != nil {
		return p, badRequest("%v", err)
	}
	if err := p.Check(provided); err != nil {
		return p, badRequest("%v", err)
	}
	return p, nil
}

// BuildResponse is the /v1/build reply.
type BuildResponse struct {
	Network        string `json:"network"`
	Key            string `json:"key"`
	Nodes          int    `json:"nodes"`
	Links          *int   `json:"links,omitempty"`
	Materialized   bool   `json:"materialized"`
	Representation string `json:"representation"` // csr | implicit | skeleton
	Cached         bool   `json:"cached"`
	SizeBytes      int64  `json:"size_bytes"`
	BuildMillis    int64  `json:"build_ms"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) error {
	p, err := requestParams(r)
	if err != nil {
		return err
	}
	if handled, err := s.maybeForward(w, r, p, ""); handled || err != nil {
		return err
	}
	start := time.Now()
	a, hit, err := s.getArtifact(r.Context(), p)
	if err != nil {
		return err
	}
	resp := BuildResponse{
		Network:        a.Name,
		Key:            p.Key(),
		Nodes:          a.N,
		Materialized:   a.Materialized(),
		Representation: a.Rep(),
		Cached:         hit,
		SizeBytes:      a.SizeBytes(),
		BuildMillis:    time.Since(start).Milliseconds(),
	}
	if a.Materialized() {
		links := a.U.M()
		resp.Links = &links
	}
	return writeJSON(w, &resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	p, err := requestParams(r)
	if err != nil {
		return err
	}
	withDiameter := queryBool(r, "diameter")
	fq, err := parseFaultQuery(r)
	if err != nil {
		return err
	}
	// Fault-free metric documents are memoized and byte-stable, so
	// non-owners may cache the fetched body; degraded requests are
	// per-request computations and forward uncached.
	bodyKey := ""
	if fq == nil && s.cfg.Cluster != nil {
		bodyKey = fillBodyKey(p, withDiameter)
	}
	if handled, err := s.maybeForward(w, r, p, bodyKey); handled || err != nil {
		return err
	}
	a, _, err := s.getArtifact(r.Context(), p)
	if err != nil {
		return err
	}
	sb, err := a.metricsBody(r.Context(), withDiameter)
	if err != nil {
		return err
	}
	if fq == nil {
		// The memoized body is immutable and byte-stable, so its content
		// hash is a strong validator: revalidating pollers get a bodyless
		// 304 instead of the full document.
		h := w.Header()
		h["Etag"] = sb.etag
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, sb.etag[0]) {
			w.WriteHeader(http.StatusNotModified)
			return nil
		}
		writeStaticJSON(w, http.StatusOK, sb.body, sb.clen)
		return nil
	}
	// Degraded request: re-decode the memoized document, attach a freshly
	// computed survivability block, and encode per request.  The sweep is
	// CPU-bound like a build, so it holds a worker slot.
	dm, err := s.degradedMetrics(r, a, fq)
	if err != nil {
		return err
	}
	var doc MetricsDoc
	if err := json.Unmarshal(sb.body, &doc); err != nil {
		return fmt.Errorf("serve: re-decoding memoized metrics: %w", err)
	}
	doc.Degraded = dm
	w.Header().Set("Content-Type", "application/json")
	return doc.WriteJSON(w)
}

// degradedMetrics samples fq's fault set over the artifact's CSR and runs
// the masked survivability sweep under a worker slot.
func (s *Server) degradedMetrics(r *http.Request, a *Artifact, fq *faultQuery) (*DegradedMetrics, error) {
	if !a.Materialized() {
		return nil, badRequest("%s is not materialized; no degraded metrics", a.Name)
	}
	release, err := s.acquireSlot(r.Context())
	if err != nil {
		return nil, err
	}
	defer release()
	c := a.U.CSR()
	clusterOf := a.ClusterIDs()
	set, err := fault.New(c, fq.Spec, clusterOf)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	dv, err := fault.NewDegradedView(c, set)
	if err != nil {
		return nil, err
	}
	rep, err := dv.WithClusters(clusterOf).Analyze(r.Context())
	if err != nil {
		return nil, err
	}
	return &DegradedMetrics{
		Mode:             string(fq.Spec.Mode),
		Count:            fq.Spec.Count,
		Seed:             fq.Spec.Seed,
		Alive:            rep.Alive,
		FailedNodes:      rep.FailedVertices,
		FailedLinks:      rep.FailedEdges,
		FailedChips:      rep.FailedChips,
		Components:       rep.Components,
		LargestComponent: rep.LargestComponent,
		Diameter:         rep.Diameter,
		AvgDistance:      rep.AvgDistance,
		GiantDiameter:    rep.GiantDiameter,
		GiantAvgDistance: rep.GiantAvgDistance,
		ChipsTotal:       rep.ChipsTotal,
		ChipsDead:        rep.ChipsDead,
		ChipsReachable:   rep.ChipsReachable,
	}, nil
}

// RouteResponse is the /v1/route reply: a shortest path in the
// materialized undirected network, plus — when ?multipath=k is set —
// the k node-disjoint independent-spanning-tree routes to dst.
type RouteResponse struct {
	Network   string          `json:"network"`
	Src       int             `json:"src"`
	Dst       int             `json:"dst"`
	Hops      int             `json:"hops"`
	Path      []int           `json:"path"`
	Labels    []string        `json:"labels,omitempty"` // node labels along the path (super-IPG families)
	Multipath *MultipathRoute `json:"multipath,omitempty"`
}

// MultipathPath is one independent-tree route src -> dst.
type MultipathPath struct {
	Tree  int   `json:"tree"`
	Hops  int   `json:"hops"`
	Path  []int `json:"path"`
	Alive *bool `json:"alive,omitempty"` // set only when fault params are present
}

// MultipathRoute is the ?multipath=k block: k pairwise internally
// node-disjoint (and edge-disjoint) routes from src to dst over the
// healthy topology.  With fault parameters, each path is annotated with
// whether it survives the sampled failures, and Delivered reports
// whether at least one does — guaranteed whenever faults < k.
type MultipathRoute struct {
	Requested int             `json:"requested"` // k the client asked for
	K         int             `json:"k"`         // trees actually built (topology bound)
	Disjoint  bool            `json:"disjoint"`  // response-level disjointness self-check
	Paths     []MultipathPath `json:"paths"`
	Delivered *bool           `json:"delivered,omitempty"` // set only when fault params are present
	Faults    *SimFaults      `json:"faults,omitempty"`
}

// multipathMaxK bounds the ?multipath parameter; no supported family
// exceeds this tree count.
const multipathMaxK = 64

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) error {
	p, err := requestParams(r)
	if err != nil {
		return err
	}
	src, err := queryInt(r, "src", 0)
	if err != nil {
		return err
	}
	dst, err := queryInt(r, "dst", 0)
	if err != nil {
		return err
	}
	multipath, err := queryInt(r, "multipath", 0)
	if err != nil {
		return err
	}
	if multipath < 0 || multipath > multipathMaxK {
		return badRequest("parameter \"multipath\" must be in [0, %d], got %d", multipathMaxK, multipath)
	}
	if handled, err := s.maybeForward(w, r, p, ""); handled || err != nil {
		return err
	}
	a, _, err := s.getArtifact(r.Context(), p)
	if err != nil {
		return err
	}
	if a.Source() == nil {
		return badRequest("%s has no adjacency representation (label-level skeleton); no concrete routes", a.Name)
	}
	if !a.Materialized() {
		if a.N > implicitSweepMax {
			return badRequest("%s has %d nodes, above the implicit route cap %d", a.Name, a.N, implicitSweepMax)
		}
		// An implicit route regenerates every visited row from the codec
		// — CPU-bound like a build, so it holds a worker slot.
		release, err := s.acquireSlot(r.Context())
		if err != nil {
			return err
		}
		defer release()
	}
	if src < 0 || src >= a.N || dst < 0 || dst >= a.N {
		return badRequest("src/dst must be in [0, %d)", a.N)
	}
	path, err := shortestPath(r.Context(), a, src, dst)
	if err != nil {
		return err
	}
	resp := RouteResponse{
		Network: a.Name,
		Src:     src,
		Dst:     dst,
		Hops:    len(path) - 1,
		Path:    path,
	}
	if a.Super() {
		resp.Labels = make([]string, len(path))
		for i, v := range path {
			label, err := a.routeLabel(v)
			if err != nil {
				return err
			}
			resp.Labels[i] = label
		}
	}
	if multipath > 0 {
		mp, err := s.multipathRoute(r, a, src, dst, multipath)
		if err != nil {
			return err
		}
		resp.Multipath = mp
		s.metrics.multipathRoutes.Add(1)
	}
	return writeJSON(w, &resp)
}

// multipathRoute builds the ?multipath=k response block: the k
// independent-tree routes src -> dst (k clamped to what the topology
// supports), with optional fault annotation.  Tree construction is
// CPU-bound like a build, so it holds a worker slot.
func (s *Server) multipathRoute(r *http.Request, a *Artifact, src, dst, requested int) (*MultipathRoute, error) {
	if !a.Materialized() {
		return nil, badRequest("%s is not materialized; multipath routes need the built network", a.Name)
	}
	fq, err := parseFaultQuery(r)
	if err != nil {
		return nil, err
	}
	if fq != nil && fq.Spec.Mode == fault.Adversarial {
		return nil, badRequest("adversarial faults target graph cuts; use the degraded metrics endpoint, not multipath routes")
	}
	release, err := s.acquireSlot(r.Context())
	if err != nil {
		return nil, err
	}
	defer release()
	k := requested
	if max := a.MaxTrees(); k > max {
		k = max
	}
	tr, err := a.ISTrees(r.Context(), dst, k)
	if err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, badRequest("%v", err)
	}
	mp := &MultipathRoute{Requested: requested, K: tr.K, Paths: make([]MultipathPath, tr.K)}
	var buf []int32
	for t := 0; t < tr.K; t++ {
		buf, err = tr.PathTo(t, src, buf[:0])
		if err != nil {
			return nil, err
		}
		path := make([]int, len(buf))
		//lint:ignore ctxflow copies one root path, at most N entries, inside a slot-bounded request
		for i, v := range buf {
			path[i] = int(v)
		}
		mp.Paths[t] = MultipathPath{Tree: t, Hops: len(path) - 1, Path: path}
	}
	mp.Disjoint = multipathDisjoint(mp.Paths, src, dst)
	if fq != nil {
		set, err := fault.New(a.U.CSR(), fq.Spec, a.ClusterIDs())
		if err != nil {
			return nil, badRequest("%v", err)
		}
		mp.Faults = &SimFaults{
			Mode:      string(fq.Spec.Mode),
			Count:     fq.Spec.Count,
			Seed:      fq.Spec.Seed,
			DeadNodes: len(set.DeadVertices),
			DeadLinks: len(set.DeadEdges),
			DeadChips: len(set.DeadChips),
		}
		delivered := false
		for t := range mp.Paths {
			alive := pathAlive(a.U.CSR(), set, mp.Paths[t].Path)
			mp.Paths[t].Alive = &alive
			delivered = delivered || alive
		}
		mp.Delivered = &delivered
	}
	return mp, nil
}

// multipathDisjoint is the response-level self-check: the tree paths
// must share no internal vertex and no edge (they meet only at src and
// dst).  O(total path length).
func multipathDisjoint(paths []MultipathPath, src, dst int) bool {
	internals := make(map[int]bool, 64)
	edges := make(map[[2]int]bool, 64)
	for _, p := range paths {
		for i, v := range p.Path {
			if v != src && v != dst {
				if internals[v] {
					return false
				}
				internals[v] = true
			}
			if i+1 < len(p.Path) {
				a, b := v, p.Path[i+1]
				if a > b {
					a, b = b, a
				}
				e := [2]int{a, b}
				if edges[e] {
					return false
				}
				edges[e] = true
			}
		}
	}
	return true
}

// pathAlive reports whether every vertex and every hop of path survives
// the fault set (both directions of a failed link are masked, so one
// directional arc check per hop suffices).
func pathAlive(c *topo.CSR, set *fault.Set, path []int) bool {
	for i, v := range path {
		if set.VertexDead(v) {
			return false
		}
		if i+1 == len(path) {
			break
		}
		first := c.RowStart(v)
		hopAlive := false
		for j, w := range c.Row(v) {
			if int(w) == path[i+1] && !topo.Bit(set.ADead, first+j) {
				hopAlive = true
				break
			}
		}
		if !hopAlive {
			return false
		}
	}
	return true
}

// shortestPath reconstructs one BFS shortest path src -> dst by walking
// back from dst along strictly decreasing distances.  It is generic over
// the artifact's adjacency source: a materialized CSR takes the
// zero-copy arena fast path inside the kernel, an implicit artifact
// regenerates rows from its codec.  The distance vector, queue, and
// neighbor buffer all come from the shared topo scratch pool, so the
// only per-request allocation is the response path itself.  The
// backtrack walk is O(path length * degree) and honors ctx so a
// disconnected client cannot pin a worker on a high-diameter
// (path-like) topology.
func shortestPath(ctx context.Context, a *Artifact, src, dst int) ([]int, error) {
	source := a.Source()
	s := topo.GetScratch(source.N())
	defer topo.PutScratch(s)
	dist := s.Dist
	nbuf := s.NeighborBuf(source.DegreeBound())
	_, _, nbuf = topo.BFSSourceInto(source, src, dist, s.Queue, nbuf)
	// Store the possibly-grown buffer back so its capacity is pooled for
	// the next request (growth past the degree bound is theoretical, so
	// skipping the store-back on error returns below costs nothing).
	s.Nbuf = nbuf
	if dist[dst] < 0 {
		return nil, badRequest("no path from %d to %d (disconnected?)", src, dst)
	}
	path := make([]int, dist[dst]+1)
	path[len(path)-1] = dst
	cur := dst
	for d := int(dist[dst]); d > 0; d-- {
		if d&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		found := false
		nbuf = source.NeighborsInto(cur, nbuf)
		//lint:ignore ctxflow scans one neighbor row, at most DegreeBound entries; the enclosing backtrack loop polls ctx every 1024 levels
		for _, nb := range nbuf {
			if int(dist[nb]) == d-1 {
				cur = int(nb)
				path[d-1] = cur
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: BFS distance array inconsistent at node %d", cur)
		}
	}
	s.Nbuf = nbuf
	return path, nil
}

// SimFaults echoes the fault scenario a degraded simulation ran under.
type SimFaults struct {
	Mode      string `json:"mode"`
	Count     int    `json:"count"`
	Seed      int64  `json:"seed"`
	Routing   string `json:"routing,omitempty"` // aware | oblivious (simulate); empty on route echoes
	DeadNodes int    `json:"dead_nodes,omitempty"`
	DeadLinks int    `json:"dead_links,omitempty"`
	DeadChips int    `json:"dead_chips,omitempty"`
}

// SimulateResponse is the /v1/simulate reply.  On a degraded network
// every injected packet is accounted exactly once:
// injected = delivered + dropped + in-flight.
type SimulateResponse struct {
	Network   string     `json:"network"`
	Workload  string     `json:"workload"`
	Nodes     int        `json:"nodes"`
	Rounds    int        `json:"rounds"`
	Injected  int64      `json:"injected"`
	Delivered int64      `json:"delivered"`
	Dropped   int64      `json:"dropped,omitempty"`
	Retried   int64      `json:"retried,omitempty"`
	Latency   float64    `json:"latency_rounds"`
	OffChip   float64    `json:"off_chip_per_packet"`
	Accepted  float64    `json:"accepted,omitempty"`  // random workload only
	Saturated *bool      `json:"saturated,omitempty"` // random workload only
	Faults    *SimFaults `json:"faults,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) error {
	p, err := requestParams(r)
	if err != nil {
		return err
	}
	workload := queryValue(r, "workload")
	if workload == "" {
		workload = "random"
	}
	rate, err := queryFloat(r, "rate", 0.2)
	if err != nil {
		return err
	}
	chipCap, err := queryFloat(r, "chipcap", 8.0)
	if err != nil {
		return err
	}
	seed, err := queryInt(r, "seed", 1)
	if err != nil {
		return err
	}
	warmup, err := queryInt(r, "warmup", 150)
	if err != nil {
		return err
	}
	measure, err := queryInt(r, "measure", 300)
	if err != nil {
		return err
	}
	if rate <= 0 || chipCap <= 0 || warmup < 0 || measure <= 0 {
		return badRequest("rate and chipcap must be positive, warmup >= 0, measure > 0")
	}
	if handled, err := s.maybeForward(w, r, p, ""); handled || err != nil {
		return err
	}

	a, _, err := s.getArtifact(r.Context(), p)
	if err != nil {
		return err
	}
	if !a.Materialized() {
		return badRequest("%s is not materialized; cannot simulate", a.Name)
	}
	if a.N > s.cfg.SimMaxNodes {
		return badRequest("%s has %d nodes, above the simulation cap %d", a.Name, a.N, s.cfg.SimMaxNodes)
	}

	// Simulation runs are CPU-bound like builds, so they hold a worker
	// slot (and see the same 503 backpressure when the pool is full).
	release, err := s.acquireSlot(r.Context())
	if err != nil {
		return err
	}
	defer release()

	net, err := a.SimNetwork(chipCap)
	if err != nil {
		return badRequest("%v", err)
	}

	const maxDrainRounds = 1 << 20
	resp := SimulateResponse{Network: a.Name, Workload: workload, Nodes: a.N}
	fq, err := parseFaultQuery(r)
	if err != nil {
		return err
	}
	if fq != nil && fq.Spec.Count > 0 {
		if fq.Spec.Mode == fault.Adversarial {
			return badRequest("adversarial faults target graph cuts and have no port-level analogue; use /v1/metrics with fmode=adversarial")
		}
		dnet, sum, err := netsim.Degrade(net, fq.Spec)
		if err != nil {
			return badRequest("%v", err)
		}
		if fq.Routing == "aware" {
			far, err := netsim.NewFaultAwareRouter(dnet)
			if err != nil {
				return badRequest("%v", err)
			}
			dnet.Router = far
		}
		net = dnet
		resp.Faults = &SimFaults{
			Mode:      string(sum.Mode),
			Count:     fq.Spec.Count,
			Seed:      fq.Spec.Seed,
			Routing:   fq.Routing,
			DeadNodes: len(sum.DeadNodes),
			DeadLinks: len(sum.DeadLinks),
			DeadChips: len(sum.DeadChips),
		}
	}
	switch workload {
	case "random":
		res, err := netsim.RunRandomUniformCtx(r.Context(), net, int64(seed), rate, warmup, measure)
		if err != nil {
			return err
		}
		resp.Rounds = res.Stats.Rounds
		resp.Injected = res.Stats.Injected
		resp.Delivered = res.Stats.Delivered
		resp.Dropped = res.Stats.Dropped
		resp.Retried = res.Stats.Retried
		resp.Latency = res.Latency
		resp.OffChip = res.Stats.OffChipPerPacket()
		resp.Accepted = res.Accepted
		resp.Saturated = &res.Saturated
	case "te":
		res, err := netsim.RunTotalExchangeCtx(r.Context(), net, int64(seed), maxDrainRounds)
		if err != nil {
			return err
		}
		resp.Rounds = res.Rounds
		resp.Injected = res.Stats.Injected
		resp.Delivered = res.Stats.Delivered
		resp.Dropped = res.Stats.Dropped
		resp.Retried = res.Stats.Retried
		resp.Latency = res.Stats.AvgLatency()
		resp.OffChip = res.Stats.OffChipPerPacket()
	case "transpose":
		logN := 0
		//lint:ignore ctxflow counts the address bits of a.N: at most ~31 iterations and no per-vertex work, far below cancellation granularity
		for 1<<logN < a.N {
			logN++
		}
		if 1<<logN != a.N || logN%2 != 0 {
			return badRequest("transpose needs a power-of-two node count with an even number of address bits; %s has %d nodes", a.Name, a.N)
		}
		perm, err := netsim.Transpose(logN)
		if err != nil {
			return badRequest("%v", err)
		}
		if a.Super() {
			// Map the address-space permutation onto simulator node ids.
			//lint:ignore scratchalloc mapped is the permutation handed to the simulator, which retains it past the handler — not traversal scratch
			mapped := make([]int32, a.N)
			for v := 0; v < a.N; v++ {
				if v&1023 == 0 {
					if err := r.Context().Err(); err != nil {
						return err
					}
				}
				addr, err := a.W.AddressOf(a.G.Label(v))
				if err != nil {
					return err
				}
				dstAddr := perm[addr]
				dstLabel, err := a.W.LabelOf(int(dstAddr))
				if err != nil {
					return err
				}
				dv := a.G.NodeID(dstLabel)
				if dv < 0 {
					return fmt.Errorf("serve: address %d maps to an unknown label", dstAddr)
				}
				//lint:ignore indextrunc node ids are < g.N() <= ipg.MaxNodes (1<<22)
				mapped[v] = int32(dv)
			}
			perm = mapped
		}
		res, err := netsim.RunPermutationCtx(r.Context(), net, int64(seed), perm, maxDrainRounds)
		if err != nil {
			return err
		}
		resp.Rounds = res.Rounds
		resp.Injected = res.Stats.Injected
		resp.Delivered = res.Stats.Delivered
		resp.Dropped = res.Stats.Dropped
		resp.Retried = res.Stats.Retried
		resp.Latency = res.Stats.AvgLatency()
		resp.OffChip = res.Stats.OffChipPerPacket()
	default:
		return badRequest("unknown workload %q (random|te|transpose)", workload)
	}
	return writeJSON(w, &resp)
}

// queryInt reads an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := queryValue(r, name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("parameter %q: bad integer %q", name, v)
	}
	return n, nil
}

// queryFloat reads a float query parameter with a default.
func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := queryValue(r, name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badRequest("parameter %q: bad number %q", name, v)
	}
	return f, nil
}

// queryBool reports whether a query parameter is set to a truthy value.
func queryBool(r *http.Request, name string) bool {
	switch queryValue(r, name) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
