package serve

import (
	"net/url"
	"testing"
)

// TestParamsKeyGolden pins the canonical key strings for the eight golden
// families.  These exact strings are the cluster's unit of ownership: the
// consistent-hash ring places them, peers exchange them, and any drift
// here silently re-partitions a running cluster (every replica suddenly
// disagrees with its former self about what it owns).  If this test
// fails, the key format changed — treat that as a cluster protocol break,
// not a test to update casually.
func TestParamsKeyGolden(t *testing.T) {
	golden := []struct {
		query string
		key   string
	}{
		{"net=hsn&l=2&nucleus=q2", "hsn|l=2|nucleus=q2"},
		{"net=hsn&l=3&nucleus=q2", "hsn|l=3|nucleus=q2"},
		{"net=ring-cn&l=3&nucleus=q2", "ring-cn|l=3|nucleus=q2"},
		{"net=complete-cn&l=3&nucleus=q2", "complete-cn|l=3|nucleus=q2"},
		{"net=sfn&l=3&nucleus=q2", "sfn|l=3|nucleus=q2"},
		{"net=hypercube&dim=6&logm=2", "hypercube|dim=6|logm=2"},
		{"net=torus&k=8&side=2", "torus|k=8|side=2"},
		{"net=ccc&dim=4", "ccc|dim=4"},
	}
	for _, g := range golden {
		q, err := url.ParseQuery(g.query)
		if err != nil {
			t.Fatal(err)
		}
		p, provided, err := ParamsFromQuery(q)
		if err != nil {
			t.Fatalf("%s: %v", g.query, err)
		}
		if err := p.Check(provided); err != nil {
			t.Fatalf("%s: %v", g.query, err)
		}
		if got := p.Key(); got != g.key {
			t.Errorf("Key(%s) = %q, want %q", g.query, got, g.key)
		}
	}
}

// TestParamsKeyCanonicalization checks the normalizations that make the
// key canonical: defaults and explicit values hash identically, stray
// defaults of inapplicable parameters never leak into the key, nucleus
// spelling is case/space-insensitive, and HCN's l is pinned at 2.
func TestParamsKeyCanonicalization(t *testing.T) {
	key := func(query string) string {
		t.Helper()
		q, err := url.ParseQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := ParamsFromQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		return p.Key()
	}

	// Bare hsn uses the defaults (l=3, nucleus=q2) and must collide with
	// the fully spelled-out request.
	if a, b := key("net=hsn"), key("net=hsn&l=3&nucleus=q2"); a != b {
		t.Errorf("default key %q != explicit key %q", a, b)
	}
	// hypercube ignores l and nucleus entirely; their defaults must not
	// appear in its key.
	if got := key("net=hypercube&dim=6&logm=2"); got != "hypercube|dim=6|logm=2" {
		t.Errorf("hypercube key = %q: inapplicable defaults leaked in", got)
	}
	// Nucleus spelling normalizes.
	if a, b := key("net=hsn&nucleus=Q2"), key("net=hsn&nucleus=q2"); a != b {
		t.Errorf("nucleus case changed the key: %q vs %q", a, b)
	}
	// HCN is HSN(2, G) by definition: l is not a parameter it consumes, so
	// no l appears in the key at all and the surrounding default cannot
	// perturb it.
	if a, b := key("net=hcn&nucleus=q2"), key("net=hcn&l=7&nucleus=q2"); a != "hcn|nucleus=q2" || a != b {
		t.Errorf("hcn keys = %q / %q, want both %q", a, b, "hcn|nucleus=q2")
	}
}
