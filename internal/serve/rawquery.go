package serve

import (
	"net/http"
	"strings"
)

// Raw-query parameter access.  r.URL.Query() parses the whole query
// string into a fresh map of fresh slices on every call — several
// handlers called it four or five times per request.  queryValue scans
// r.URL.RawQuery in place instead (url.Values.Get semantics: first
// occurrence wins), falling back to the url.Values path only when the
// query carries escapes the in-place scan cannot decode.

// rawQueryGet returns the first value of name in a raw query string
// without escapes.
func rawQueryGet(raw, name string) string {
	for len(raw) > 0 {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		key, val, _ := strings.Cut(pair, "=")
		if key == name {
			return val
		}
	}
	return ""
}

// queryValue returns the first value of a query parameter,
// allocation-free for escape-free queries.
func queryValue(r *http.Request, name string) string {
	raw := r.URL.RawQuery
	if RawQueryNeedsEscape(raw) {
		return r.URL.Query().Get(name)
	}
	return rawQueryGet(raw, name)
}
