package serve

import (
	"net/url"
	"strings"
	"testing"
)

// FuzzParamsFromQuery feeds arbitrary query strings through the request
// parameter pipeline: decode, validate, canonicalize.  Nothing here may
// panic, and any parameter set that validates must produce a non-empty,
// deterministic cache key rooted at its family name — the key is what
// the cache shards and singleflights on, so instability would split or
// alias cache entries.
func FuzzParamsFromQuery(f *testing.F) {
	for _, seed := range []string{
		"net=hsn&l=3&nucleus=q4",
		"net=hcn&nucleus=fq3",
		"net=ring-cn&l=3&nucleus=q2",
		"net=complete-cn&l=4&nucleus=k5",
		"net=sfn&l=3&nucleus=s3",
		"net=rcc&l=3&nucleus=c8",
		"net=hypercube&dim=6&logm=2",
		"net=torus&k=8&side=2",
		"net=ccc&dim=4",
		"net=butterfly&dim=3&band=1",
		"net=hsn&nucleus=ghc:2,3,4",
		"net=HSN&l=03&nucleus=Q4",    // case and zero padding normalize
		"net=hsn&l=3&l=4&nucleus=q2", // repeated key: first value wins
		"net=bogus",
		"net=hypercube&l=3", // l does not apply
		"net=hsn&l=-1&nucleus=q2",
		"net=torus&k=999999999999999999999",
		"l=3&nucleus=q2", // family defaulted
		"",
		"net=hsn&l=2147483647&nucleus=q30",
		"%zz=1",
		"net=hsn&nucleus=" + strings.Repeat("q", 4096),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			t.Skip() // not a well-formed query; out of scope
		}
		p, provided, err := ParamsFromQuery(q)
		// Escape-free queries must decode identically through the raw
		// scanner the serving hot path uses — same params, same provided
		// set, same accept/reject decision.
		if !RawQueryNeedsEscape(raw) {
			fastP, fastProv, fastErr := ParamsFromRawQuery(raw)
			if (err == nil) != (fastErr == nil) {
				t.Fatalf("decode divergence on %q: slow=%v fast=%v", raw, err, fastErr)
			}
			if err == nil {
				if fastP != p {
					t.Fatalf("params divergence on %q: slow=%+v fast=%+v", raw, p, fastP)
				}
				var slowMask Provided
				for name := range provided {
					if bit, ok := provBit(name); ok {
						slowMask |= bit
					}
				}
				if slowMask != fastProv {
					t.Fatalf("provided divergence on %q: slow=%07b fast=%07b", raw, slowMask, fastProv)
				}
				slowCheck, fastCheck := p.Check(provided), fastP.CheckProvided(fastProv)
				if (slowCheck == nil) != (fastCheck == nil) {
					t.Fatalf("check divergence on %q: slow=%v fast=%v", raw, slowCheck, fastCheck)
				}
			}
		}
		if err != nil {
			return // rejected inputs just need to not panic
		}
		if err := p.Check(provided); err != nil {
			return
		}
		key := p.Key()
		if key == "" {
			t.Fatalf("valid params %+v produced an empty cache key", p)
		}
		if !strings.HasPrefix(key, p.Net) {
			t.Fatalf("key %q not rooted at family %q", key, p.Net)
		}
		if again := p.Key(); again != key {
			t.Fatalf("key not deterministic: %q then %q", key, again)
		}
	})
}
