package serve

import (
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
)

// rawParityQueries are escape-free query strings the raw scanner must
// decode identically to the url.Values path, covering first-wins
// repeats, empty values, valueless keys, unknown extras, and every
// family's parameter shape.
var rawParityQueries = []string{
	"",
	"net=hsn&l=3&nucleus=q4",
	"net=hcn&nucleus=fq3",
	"net=hypercube&dim=6&logm=2",
	"net=torus&k=8&side=2",
	"net=ccc&dim=4",
	"net=butterfly&dim=3&band=1",
	"net=hsn&nucleus=ghc:2,3,4",
	"net=HSN&l=03&nucleus=Q4",
	"net=hsn&l=3&l=4&nucleus=q2",        // repeated key: first wins
	"net=hsn&l=&l=4&nucleus=q2",         // empty first occurrence wins (stays default)
	"net=hsn&l&nucleus=q2",              // valueless key
	"net=&net=torus&k=4&side=2",         // empty net: family stays default
	"net=torus&net=ccc&k=4&side=2",      // repeated net: first wins
	"l=3&nucleus=q2",                    // family defaulted
	"net=bogus",                         // unknown family
	"net=hypercube&l=3",                 // l does not apply
	"net=hsn&l=-1&nucleus=q2",           // out of range
	"net=torus&k=999999999999999999999", // Atoi overflow
	"net=hsn&l=x&nucleus=q2",            // bad integer
	"net=hsn&L=9&l=2&nucleus=q2",        // keys are case-sensitive
	"src=3&dst=9&net=torus&k=4&side=2&workload=te&seed=5", // per-endpoint extras ignored
	"&&net=ccc&dim=3&&", // empty pairs
	"diameter=1&net=hypercube&dim=4&logm=1",
}

// TestParamsFromRawQueryParity pins the raw scanner to the url.Values
// decoder: identical Params, identical provided sets, and identical
// accept/reject decisions (with identical messages) for every query the
// fast path is allowed to handle.
func TestParamsFromRawQueryParity(t *testing.T) {
	for _, raw := range rawParityQueries {
		if RawQueryNeedsEscape(raw) {
			t.Fatalf("query %q is not fast-path eligible; fix the table", raw)
		}
		q, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", raw, err)
		}
		slowP, slowProv, slowErr := ParamsFromQuery(q)
		fastP, fastProv, fastErr := ParamsFromRawQuery(raw)
		if (slowErr == nil) != (fastErr == nil) ||
			(slowErr != nil && slowErr.Error() != fastErr.Error()) {
			t.Errorf("%q: decode error mismatch: slow=%v fast=%v", raw, slowErr, fastErr)
			continue
		}
		if slowErr != nil {
			continue
		}
		if !reflect.DeepEqual(slowP, fastP) {
			t.Errorf("%q: params mismatch:\n slow %+v\n fast %+v", raw, slowP, fastP)
		}
		var slowMask Provided
		for name := range slowProv {
			bit, ok := provBit(name)
			if !ok {
				t.Fatalf("%q: ParamsFromQuery provided unknown name %q", raw, name)
			}
			slowMask |= bit
		}
		if slowMask != fastProv {
			t.Errorf("%q: provided mismatch: slow=%07b fast=%07b", raw, slowMask, fastProv)
		}
		slowCheck := slowP.Check(slowProv)
		fastCheck := fastP.CheckProvided(fastProv)
		if (slowCheck == nil) != (fastCheck == nil) ||
			(slowCheck != nil && slowCheck.Error() != fastCheck.Error()) {
			t.Errorf("%q: check mismatch: slow=%v fast=%v", raw, slowCheck, fastCheck)
		}
	}
}

// TestRequestParamsEscapedQueriesFallBack asserts queries carrying
// escapes still decode correctly through the url.Values fallback.
func TestRequestParamsEscapedQueriesFallBack(t *testing.T) {
	r := httptest.NewRequest("GET", "/v1/build?net=hsn&l=2&nucleus=%71two2", nil)
	if !RawQueryNeedsEscape(r.URL.RawQuery) {
		t.Fatal("query should need escaping")
	}
	// %71 is 'q'; the decoded spec "qtwo2" is invalid, but the point is
	// the decoder saw the unescaped bytes, not the raw ones.
	_, err := requestParams(r)
	if err == nil {
		t.Fatal("expected a validation error for nucleus qtwo2")
	}
	r2 := httptest.NewRequest("GET", "/v1/build?net=hsn&l=2&nucleus=%71"+"2", nil)
	p, err := requestParams(r2)
	if err != nil {
		t.Fatalf("escaped q2 should validate: %v", err)
	}
	if p.Nucleus != "q2" {
		t.Fatalf("nucleus %q, want q2", p.Nucleus)
	}
}

// TestQueryValueMatchesURLValues pins the per-endpoint scalar helper to
// url.Values.Get semantics.
func TestQueryValueMatchesURLValues(t *testing.T) {
	for _, raw := range []string{
		"", "a=1", "a=1&b=2", "a=&a=2", "a&b=2", "b=2&a=xyz", "a=1&a=2&a=3",
		"workload=te&seed=5&rate=0.5",
	} {
		q, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"a", "b", "workload", "seed", "rate", "missing"} {
			r := httptest.NewRequest("GET", "/x?"+raw, nil)
			if got, want := queryValue(r, name), q.Get(name); got != want {
				t.Errorf("queryValue(%q, %q) = %q, want %q", raw, name, got, want)
			}
		}
	}
}
