package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestHealthzStaticBody pins the preencoded /healthz body to the exact
// bytes the json.Encoder used to produce, headers included.
func TestHealthzStaticBody(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := "{\"status\":\"ok\"}\n"
	if string(body) != want {
		t.Errorf("body %q, want %q", body, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(want)) {
		t.Errorf("Content-Length %q, want %d", cl, len(want))
	}
}

// TestMetricsETagRevalidation walks the conditional-request protocol
// end to end over a real server: 200 with a strong ETag, then 304s for
// exact, weak-prefixed, listed, and wildcard If-None-Match candidates,
// and a fresh 200 for a stale one.
func TestMetricsETagRevalidation(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/v1/metrics?net=hypercube&dim=4&logm=2"

	resp, err := ts.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %d", resp.StatusCode)
	}
	etag := resp.Header.Get("Etag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("ETag %q is not a quoted strong validator", etag)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Errorf("Content-Length %q, body is %d bytes", cl, len(body))
	}
	var doc MetricsDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("body is not a metrics document: %v", err)
	}

	get := func(inm string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resp.Request = nil
		resp.Body = io.NopCloser(bytes.NewReader(b))
		return resp
	}

	for _, inm := range []string{etag, "W/" + etag, `"stale", ` + etag, "*"} {
		resp := get(inm)
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: %d, want 304", inm, resp.StatusCode)
		}
		if b, _ := io.ReadAll(resp.Body); len(b) != 0 {
			t.Errorf("If-None-Match %q: 304 carried a %d-byte body", inm, len(b))
		}
		if got := resp.Header.Get("Etag"); got != etag {
			t.Errorf("If-None-Match %q: 304 ETag %q, want %q", inm, got, etag)
		}
	}

	resp2 := get(`"deadbeef"`)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: %d, want 200", resp2.StatusCode)
	}
	if b, _ := io.ReadAll(resp2.Body); !bytes.Equal(b, body) {
		t.Error("stale If-None-Match: body differs from the first response")
	}

	// The ETag is a function of the body: a different instance gets a
	// different tag.
	other, err := ts.Client().Get(ts.URL + "/v1/metrics?net=hypercube&dim=5&logm=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, other.Body)
	other.Body.Close()
	if got := other.Header.Get("Etag"); got == etag || got == "" {
		t.Errorf("distinct instance ETag %q vs %q", got, etag)
	}
}

// TestEtagMatches covers the If-None-Match list parser directly.
func TestEtagMatches(t *testing.T) {
	const tag = `"abc123"`
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{tag, true},
		{"W/" + tag, true},
		{"*", true},
		{`"zzz", ` + tag, true},
		{`"zzz",` + tag, true},
		{`  ` + tag + `  `, true},
		{`"zzz"`, false},
		{`abc123`, false}, // unquoted is a different opaque tag
		{"", false},
	} {
		if got := etagMatches(tc.header, tag); got != tc.want {
			t.Errorf("etagMatches(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestWriteErrorBodiesMatchEncoder asserts the static and pooled error
// envelopes are byte-identical to the json.Encoder output they replaced,
// for both the preencoded sentinels and dynamic messages.
func TestWriteErrorBodiesMatchEncoder(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	for _, err := range []error{
		ErrSaturated,
		ErrCircuitOpen,
		context.DeadlineExceeded,
		context.Canceled,
		badRequest("dim %d outside [1, 30]", 99),
		fmt.Errorf("wrapped: %w", ErrSaturated),
		badRequest("tricky <html> & \"quotes\"   %s", "\x01"),
	} {
		rec := httptest.NewRecorder()
		srv.writeError(rec, err)
		var want bytes.Buffer
		_ = json.NewEncoder(&want).Encode(map[string]string{"error": err.Error()})
		if got := rec.Body.String(); got != want.String() {
			t.Errorf("writeError(%v) body %q, want %q", err, got, want.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("writeError(%v) Content-Type %q", err, ct)
		}
	}

	// Retry-After accompanies both the sentinel and wrapped 503s.
	for _, err := range []error{ErrSaturated, fmt.Errorf("wrapped: %w", ErrSaturated)} {
		rec := httptest.NewRecorder()
		if code := srv.writeError(rec, err); code != http.StatusServiceUnavailable {
			t.Fatalf("writeError(%v) = %d", err, code)
		}
		if rec.Header().Get("Retry-After") != "1" {
			t.Errorf("writeError(%v): missing Retry-After", err)
		}
	}
}

// TestAppendJSONStringMatchesEncoder drives the manual string escaper
// over the encoder's corner cases: HTML escaping, control bytes, invalid
// UTF-8, and the U+2028/U+2029 JavaScript line separators.
func TestAppendJSONStringMatchesEncoder(t *testing.T) {
	cases := []string{
		"",
		"plain",
		`quotes " and \ slashes`,
		"tabs\tnewlines\nreturns\r",
		"\x00\x01\x1f\x7f",
		"<script>&amp;</script>",
		"line\u2028and\u2029seps",
		"invalid \xff\xfe utf8",
		"mixed ünïcodé 漢字 🎉",
		strings.Repeat("x", 300) + "\"",
	}
	for _, s := range cases {
		var want bytes.Buffer
		enc := json.NewEncoder(&want)
		if err := enc.Encode(s); err != nil {
			t.Fatalf("encode %q: %v", s, err)
		}
		got := string(appendJSONString(nil, s)) + "\n"
		if got != want.String() {
			t.Errorf("appendJSONString(%q) = %q, want %q", s, got, want.String())
		}
	}
}

// TestWriteJSONMatchesEncoder asserts the pooled response encoder is
// byte-identical to a plain json.Encoder for a response struct.
func TestWriteJSONMatchesEncoder(t *testing.T) {
	links := 42
	resp := BuildResponse{Network: "HSN(2,Q2)", Key: "hsn|l=2|nucleus=q2", Nodes: 16, Links: &links}
	rec := httptest.NewRecorder()
	if err := writeJSON(rec, &resp); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	_ = json.NewEncoder(&want).Encode(&resp)
	if rec.Body.String() != want.String() {
		t.Errorf("writeJSON body %q, want %q", rec.Body.String(), want.String())
	}
}
