package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipg/internal/cache"
)

// serverMetrics holds the daemon's operational counters, exported in
// Prometheus text exposition format by WriteProm.  Cache counters live in
// the cache itself; this struct tracks the HTTP and build-latency side.
type serverMetrics struct {
	requestsInFlight atomic.Int64

	// Robustness counters: recovered panics (handler or build), transient
	// build retries, and requests fast-failed by an open circuit.
	panics           atomic.Int64
	buildRetries     atomic.Int64
	breakerFastFails atomic.Int64

	// multipathRoutes counts /v1/route?multipath=k computations served
	// (IST-based multipath route blocks, cache hits included).
	multipathRoutes atomic.Int64

	// Artifact builds by representation: materialized CSR arenas vs
	// codec-backed implicit sources vs label-level skeletons.
	buildsCSR      atomic.Int64
	buildsImplicit atomic.Int64
	buildsSkeleton atomic.Int64

	// Cluster-mode counters: peer-fill requests served for other
	// replicas, 421 not-owner declines, client requests answered by
	// proxying a peer's response, and fills that fell back to a local
	// build because every peer leg failed.
	clusterFillsServed    atomic.Int64
	clusterNotOwner       atomic.Int64
	clusterForwarded      atomic.Int64
	clusterLocalFallbacks atomic.Int64

	mu       sync.Mutex
	requests map[reqKey]int64 // requests_total{endpoint, code}

	// Build latency histogram (seconds).  Builds complete at most a few
	// per second, so a mutex is cheaper than lock-free machinery here.
	histBuckets []float64 // upper bounds, ascending
	histCounts  []int64   // observations <= bound (non-cumulative per bucket)
	histSum     float64
	histCount   int64
}

type reqKey struct {
	endpoint string
	code     int
}

// defaultBuckets span sub-millisecond cache hits through multi-second
// diameter computations.
var defaultBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		requests:    make(map[reqKey]int64),
		histBuckets: defaultBuckets,
		histCounts:  make([]int64, len(defaultBuckets)),
	}
}

// countRequest records one finished request.
func (m *serverMetrics) countRequest(endpoint string, code int) {
	m.mu.Lock()
	m.requests[reqKey{endpoint, code}]++
	m.mu.Unlock()
}

// countBuild records one completed artifact build by representation.
func (m *serverMetrics) countBuild(rep string) {
	switch rep {
	case RepImplicit:
		m.buildsImplicit.Add(1)
	case RepSkeleton:
		m.buildsSkeleton.Add(1)
	default:
		m.buildsCSR.Add(1)
	}
}

// observeBuild records one artifact build duration.
func (m *serverMetrics) observeBuild(d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	for i, ub := range m.histBuckets {
		if secs <= ub {
			m.histCounts[i]++
			break
		}
	}
	m.histSum += secs
	m.histCount++
	m.mu.Unlock()
}

// breakerStats is the circuit-breaker snapshot WriteProm renders:
// circuits currently open and half-open, plus total open transitions.
type breakerStats struct {
	open, halfOpen, opens int64
}

// clusterPromStats is the cluster snapshot WriteProm renders; nil means
// single-node mode and the ipgd_cluster_* series are omitted entirely.
type clusterPromStats struct {
	peers, peersOpen                                 int64
	fills, fillErrors, hedges, hedgeWins, declines   int64
	fillsServed, notOwner, forwarded, localFallbacks int64
}

// localBuilds sums completed artifact builds across representations
// (the /v1/cluster "local_builds" counter: the cluster smoke test sums
// it over replicas to assert one build per key cluster-wide).
func (m *serverMetrics) localBuilds() int64 {
	return m.buildsCSR.Load() + m.buildsImplicit.Load() + m.buildsSkeleton.Load()
}

// clusterPromStats snapshots the cluster-mode counters for /metrics;
// nil without cluster mode.
func (s *Server) clusterPromStats() *clusterPromStats {
	cl := s.cfg.Cluster
	if cl == nil {
		return nil
	}
	st := cl.Status()
	return &clusterPromStats{
		peers:          int64(cl.Size()),
		peersOpen:      cl.OpenPeers(),
		fills:          st.Fills,
		fillErrors:     st.FillErrors,
		hedges:         st.Hedges,
		hedgeWins:      st.HedgeWins,
		declines:       st.Declines,
		fillsServed:    s.metrics.clusterFillsServed.Load(),
		notOwner:       s.metrics.clusterNotOwner.Load(),
		forwarded:      s.metrics.clusterForwarded.Load(),
		localFallbacks: s.metrics.clusterLocalFallbacks.Load(),
	}
}

// WriteProm writes the full metrics page: cache counters, request
// counters, the in-flight gauges, the robustness counters, the breaker
// state, cluster-mode counters (when enabled), and the build-latency
// histogram.
func (m *serverMetrics) WriteProm(w io.Writer, cs cache.Stats, bs breakerStats, cls *clusterPromStats) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	counter("ipgd_cache_hits_total", "Requests served from cache or joined to an in-flight build.", cs.Hits)
	counter("ipgd_cache_misses_total", "Requests that initiated an artifact build.", cs.Misses)
	counter("ipgd_cache_evictions_total", "Entries evicted to fit the byte budget.", cs.Evictions)
	counter("ipgd_cache_oversize_total", "Artifacts served uncached because they exceed a shard budget.", cs.Oversize)
	gauge("ipgd_cache_entries", "Artifacts currently cached.", cs.Entries)
	gauge("ipgd_cache_bytes", "Bytes held by cached artifacts.", cs.Bytes)
	gauge("ipgd_cache_max_bytes", "Configured cache byte budget (0 = unbounded).", cs.MaxBytes)
	gauge("ipgd_builds_in_flight", "Artifact builds currently running.", cs.InFlight)
	gauge("ipgd_requests_in_flight", "HTTP requests currently being served.", m.requestsInFlight.Load())

	fmt.Fprintf(w, "# HELP ipgd_artifact_builds_total Completed artifact builds by adjacency representation.\n")
	fmt.Fprintf(w, "# TYPE ipgd_artifact_builds_total counter\n")
	fmt.Fprintf(w, "ipgd_artifact_builds_total{representation=%q} %d\n", RepCSR, m.buildsCSR.Load())
	fmt.Fprintf(w, "ipgd_artifact_builds_total{representation=%q} %d\n", RepImplicit, m.buildsImplicit.Load())
	fmt.Fprintf(w, "ipgd_artifact_builds_total{representation=%q} %d\n", RepSkeleton, m.buildsSkeleton.Load())

	counter("ipgd_panics_total", "Panics recovered in handlers or artifact builds.", m.panics.Load())
	counter("ipgd_build_retries_total", "Transient build failures retried with backoff.", m.buildRetries.Load())
	counter("ipgd_breaker_fastfail_total", "Requests rejected immediately by an open circuit breaker.", m.breakerFastFails.Load())
	counter("ipgd_breaker_open_total", "Circuit breaker transitions to the open state.", bs.opens)
	counter("ipgd_multipath_routes_total", "Independent-spanning-tree multipath route computations served.", m.multipathRoutes.Load())
	gauge("ipgd_breaker_open", "Family circuits currently open (fast-failing).", bs.open)
	gauge("ipgd_breaker_half_open", "Family circuits currently half-open (probing).", bs.halfOpen)

	if cls != nil {
		gauge("ipgd_cluster_peers", "Configured cluster size including this replica.", cls.peers)
		gauge("ipgd_cluster_peers_open", "Peers currently cut out of the ring by an open circuit.", cls.peersOpen)
		counter("ipgd_cluster_peer_fills_total", "Outgoing peer-fill fetches (after singleflight collapse).", cls.fills)
		counter("ipgd_cluster_peer_fill_errors_total", "Peer-fill fetches that exhausted every leg.", cls.fillErrors)
		counter("ipgd_cluster_hedges_total", "Hedge legs launched against fallback peers.", cls.hedges)
		counter("ipgd_cluster_hedge_wins_total", "Fills answered by the hedge leg.", cls.hedgeWins)
		counter("ipgd_cluster_declines_total", "421 not-owner declines received from peers.", cls.declines)
		counter("ipgd_cluster_fills_served_total", "Peer-fill requests served for other replicas.", cls.fillsServed)
		counter("ipgd_cluster_not_owner_total", "Incoming fills declined because this replica neither owns nor caches the key.", cls.notOwner)
		counter("ipgd_cluster_forwarded_total", "Client requests answered by proxying a peer's response.", cls.forwarded)
		counter("ipgd_cluster_local_fallbacks_total", "Peer-fills that fell back to a local build.", cls.localFallbacks)
	}

	// Snapshot the mutex-guarded state before writing: w is the HTTP
	// response, and a stalled scrape client must not be able to hold m.mu
	// (and with it every request-counting handler) hostage.
	type reqStat struct {
		key reqKey
		n   int64
	}
	m.mu.Lock()
	stats := make([]reqStat, 0, len(m.requests))
	for k, n := range m.requests {
		stats = append(stats, reqStat{k, n})
	}
	histCounts := append([]int64(nil), m.histCounts...)
	histSum, histCount := m.histSum, m.histCount
	m.mu.Unlock()

	sort.Slice(stats, func(i, j int) bool {
		if stats[i].key.endpoint != stats[j].key.endpoint {
			return stats[i].key.endpoint < stats[j].key.endpoint
		}
		return stats[i].key.code < stats[j].key.code
	})
	fmt.Fprintf(w, "# HELP ipgd_requests_total Finished HTTP requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE ipgd_requests_total counter\n")
	for _, s := range stats {
		fmt.Fprintf(w, "ipgd_requests_total{endpoint=%q,code=\"%d\"} %d\n", s.key.endpoint, s.key.code, s.n)
	}

	fmt.Fprintf(w, "# HELP ipgd_build_duration_seconds Artifact build latency.\n")
	fmt.Fprintf(w, "# TYPE ipgd_build_duration_seconds histogram\n")
	cum := int64(0)
	for i, ub := range m.histBuckets {
		cum += histCounts[i]
		fmt.Fprintf(w, "ipgd_build_duration_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	fmt.Fprintf(w, "ipgd_build_duration_seconds_bucket{le=\"+Inf\"} %d\n", histCount)
	fmt.Fprintf(w, "ipgd_build_duration_seconds_sum %g\n", histSum)
	fmt.Fprintf(w, "ipgd_build_duration_seconds_count %d\n", histCount)
}
