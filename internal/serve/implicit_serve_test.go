package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestImplicitServingEndToEnd drives the hybrid representation policy
// through the HTTP surface: a torus past the materialization cap must
// build as an implicit artifact, report the representation in both
// /v1/build and /v1/metrics, serve exact vertex-transitive metrics and
// shortest routes through the codec, and show up in the Prometheus
// build counter — all with a constant-size cache entry.
func TestImplicitServingEndToEnd(t *testing.T) {
	srv := NewServer(Config{Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 300^2 = 90 000 nodes: above the default 1<<16 materialization cap,
	// small enough that the single-BFS vt sweep stays fast in CI.
	var build BuildResponse
	if resp := get(t, ts, "/v1/build?net=torus&k=300", &build); resp.StatusCode != http.StatusOK {
		t.Fatalf("build: status %d", resp.StatusCode)
	}
	if build.Representation != RepImplicit {
		t.Fatalf("build representation = %q, want %q", build.Representation, RepImplicit)
	}
	if build.Nodes != 90000 {
		t.Fatalf("build nodes = %d, want 90000", build.Nodes)
	}

	var doc MetricsDoc
	if resp := get(t, ts, "/v1/metrics?net=torus&k=300", &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if doc.Representation != RepImplicit || doc.Materialized {
		t.Fatalf("metrics representation = %q (materialized=%v), want implicit", doc.Representation, doc.Materialized)
	}
	if doc.BytesPerVertex <= 0 || doc.BytesPerVertex > 0.01 {
		t.Errorf("bytes_per_vertex = %v, want ~128/90000", doc.BytesPerVertex)
	}
	if doc.Implicit == nil {
		t.Fatalf("metrics doc has no implicit block: %+v", doc)
	}
	if doc.Implicit.Codec == "" || !doc.Implicit.VertexTransitive {
		t.Errorf("implicit block incomplete: %+v", doc.Implicit)
	}
	if doc.Implicit.Diameter == nil || *doc.Implicit.Diameter != 300 {
		t.Errorf("implicit diameter = %v, want 300 (k-ary 2-cube closed form)", doc.Implicit.Diameter)
	}
	if doc.Implicit.AvgDistance == nil || *doc.Implicit.AvgDistance != 150 {
		t.Errorf("implicit avg distance = %v, want 150", doc.Implicit.AvgDistance)
	}

	// Shortest routes run the generic BFS over the codec: 0 = (0,0) and
	// 903 = (3,3) are 6 torus hops apart.
	var route RouteResponse
	if resp := get(t, ts, "/v1/route?net=torus&k=300&src=0&dst=903", &route); resp.StatusCode != http.StatusOK {
		t.Fatalf("route: status %d", resp.StatusCode)
	}
	if route.Hops != 6 || route.Path[0] != 0 || route.Path[len(route.Path)-1] != 903 {
		t.Fatalf("route inconsistent: %+v", route)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if v := promValue(t, string(body), `ipgd_artifact_builds_total{representation="implicit"}`); v < 1 {
		t.Errorf("implicit build counter = %v, want >= 1", v)
	}
	// The labeled counter must exist for every representation so
	// dashboards can rate() them without gaps.
	_ = promValue(t, string(body), `ipgd_artifact_builds_total{representation="csr"}`)
	_ = promValue(t, string(body), `ipgd_artifact_builds_total{representation="skeleton"}`)
}

// TestImplicitThresholdOverride checks the flag-overridable switch point:
// with the threshold forced below a family's size, an otherwise
// materializable instance is served through its codec, and the default
// configuration still materializes it.
func TestImplicitThresholdOverride(t *testing.T) {
	low := NewServer(Config{Workers: 2, ImplicitThreshold: 32})
	tsLow := httptest.NewServer(low)
	defer tsLow.Close()

	var build BuildResponse
	if resp := get(t, tsLow, "/v1/build?net=hypercube&dim=6", &build); resp.StatusCode != http.StatusOK {
		t.Fatalf("build: status %d", resp.StatusCode)
	}
	if build.Representation != RepImplicit {
		t.Fatalf("threshold 32: Q6 representation = %q, want %q", build.Representation, RepImplicit)
	}

	def := NewServer(Config{Workers: 2})
	tsDef := httptest.NewServer(def)
	defer tsDef.Close()
	if resp := get(t, tsDef, "/v1/build?net=hypercube&dim=6", &build); resp.StatusCode != http.StatusOK {
		t.Fatalf("build: status %d", resp.StatusCode)
	}
	if build.Representation != RepCSR {
		t.Fatalf("default: Q6 representation = %q, want %q", build.Representation, RepCSR)
	}
}

// TestImplicitMetricsMatchMaterialized cross-checks the implicit serving
// path against the materialized one on the same instance: Q10 served
// through its codec (threshold 1) must report the same diameter and
// average distance the CSR path computes.
func TestImplicitMetricsMatchMaterialized(t *testing.T) {
	imp := NewServer(Config{Workers: 2, ImplicitThreshold: 1})
	tsImp := httptest.NewServer(imp)
	defer tsImp.Close()
	mat := NewServer(Config{Workers: 2})
	tsMat := httptest.NewServer(mat)
	defer tsMat.Close()

	var di, dm MetricsDoc
	if resp := get(t, tsImp, "/v1/metrics?net=hypercube&dim=10", &di); resp.StatusCode != http.StatusOK {
		t.Fatalf("implicit metrics: status %d", resp.StatusCode)
	}
	if resp := get(t, tsMat, "/v1/metrics?net=hypercube&dim=10&diameter=1", &dm); resp.StatusCode != http.StatusOK {
		t.Fatalf("materialized metrics: status %d", resp.StatusCode)
	}
	if di.Representation != RepImplicit || dm.Representation != RepCSR {
		t.Fatalf("representations = %q, %q; want implicit, csr", di.Representation, dm.Representation)
	}
	if di.Implicit == nil || di.Implicit.Diameter == nil || dm.Diameter == nil {
		t.Fatalf("missing diameters: implicit=%+v materialized=%+v", di.Implicit, dm.Diameter)
	}
	if *di.Implicit.Diameter != *dm.Diameter {
		t.Errorf("diameter: implicit %d, materialized %d", *di.Implicit.Diameter, *dm.Diameter)
	}
}
