package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ipg/internal/breaker"
	"ipg/internal/cache"
	"ipg/internal/cluster"
)

// ErrCircuitOpen is returned without touching the cache or the worker
// pool when a family's circuit breaker is open; handlers translate it to
// 503 + Retry-After.  It is the shared breaker package's sentinel, so
// errors.Is matches across layers.
var ErrCircuitOpen = breaker.ErrOpen

// ErrSaturated is returned by the worker pool when every slot is busy and
// the waiting queue is full; handlers translate it to 503 + Retry-After.
var ErrSaturated = errors.New("serve: worker pool saturated")

// ErrTransient marks a build failure as retryable: a Builder that wraps
// its error with ErrTransient (fmt.Errorf("%w: ...", serve.ErrTransient))
// opts into the bounded retry-with-backoff in getArtifact.  Deterministic
// failures (bad parameters, oversized instances) must not carry it.
var ErrTransient = errors.New("serve: transient build failure")

// Config sizes the daemon.
type Config struct {
	// CacheBytes is the artifact cache budget; 0 means 256 MiB.
	CacheBytes int64
	// CacheShards is the cache shard count; 0 means 16.
	CacheShards int
	// Workers bounds concurrent artifact builds and simulation runs; 0
	// means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many requests may wait for a free worker
	// before new arrivals are rejected with 503.  0 means 4x Workers; use
	// a negative value for "no waiting" (reject immediately when busy).
	QueueDepth int
	// RequestTimeout is the per-request deadline threaded into builds,
	// metric computations, and simulations; 0 means 60s.
	RequestTimeout time.Duration
	// MaxNodes caps topology materialization; 0 means 1<<16 (the same
	// threshold ipgtool uses).
	MaxNodes int
	// ImplicitThreshold is the node count above which an implicit-capable
	// family is served through its rank/unrank codec instead of a
	// materialized CSR arena.  0 means "at MaxNodes": only instances that
	// cannot be materialized go implicit.  Values above MaxNodes are
	// clamped to it.
	ImplicitThreshold int
	// SimMaxNodes caps /v1/simulate network sizes; 0 means 1<<13.
	SimMaxNodes int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// BuildRetries bounds how many times a build that fails with
	// ErrTransient is retried (with jittered exponential backoff) before
	// the error is surfaced; 0 means 2, negative disables retries.
	BuildRetries int
	// RetryBackoff is the base backoff before the first retry, doubled
	// each attempt; 0 means 50ms.
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive genuine build failures per
	// family that open its circuit (fast 503s without consuming workers);
	// 0 means 5, negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fast-fails before
	// letting a half-open probe through; 0 means 10s.
	BreakerCooldown time.Duration
	// Builder overrides artifact construction (tests use it to count and
	// gate builds); nil means BuildArtifact.
	Builder func(ctx context.Context, p Params, maxNodes int) (*Artifact, error)
	// Cluster enables cluster mode: consistent-hash ownership of family
	// keys across replicas with peer-fill and hedged reads.  nil means
	// single-node operation (every request is served locally).
	Cluster *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 16
	}
	if c.SimMaxNodes <= 0 {
		c.SimMaxNodes = 1 << 13
	}
	if c.Builder == nil {
		th := c.ImplicitThreshold
		c.Builder = func(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
			return BuildArtifactThreshold(ctx, p, maxNodes, th)
		}
	}
	if c.BuildRetries == 0 {
		c.BuildRetries = 2
	}
	if c.BuildRetries < 0 {
		c.BuildRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	return c
}

// Server is the topology-serving HTTP handler set.  It is an
// http.Handler; cmd/ipgd wraps it in an http.Server for lifecycle
// management.
type Server struct {
	cfg     Config
	cache   *cache.Cache
	sem     chan struct{} // worker slots
	queued  chan struct{} // tokens for requests waiting on a slot
	metrics *serverMetrics
	breaker *breaker.Set // per-family circuits; nil when disabled
	mux     *http.ServeMux

	// retryAfter is the breaker-open Retry-After header value, precomputed
	// from BreakerCooldown so the 503 fast-fail path never allocates.
	retryAfter []string
}

// NewServer builds the handler set.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   cache.New(cache.Config{MaxBytes: cfg.CacheBytes, Shards: cfg.CacheShards}),
		sem:     make(chan struct{}, cfg.Workers),
		queued:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		metrics: newServerMetrics(),
		breaker: breaker.NewSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		mux:     http.NewServeMux(),
	}
	retry := int(cfg.BreakerCooldown / time.Second)
	if retry < 1 {
		retry = 1
	}
	s.retryAfter = []string{strconv.Itoa(retry)}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/build", s.instrument("/v1/build", s.handleBuild))
	s.mux.HandleFunc("/v1/metrics", s.instrument("/v1/metrics", s.handleMetrics))
	s.mux.HandleFunc("/v1/route", s.instrument("/v1/route", s.handleRoute))
	s.mux.HandleFunc("/v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	s.mux.HandleFunc("/v1/cluster", s.instrument("/v1/cluster", s.handleCluster))
	s.mux.HandleFunc("/metrics", s.handleProm)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache exposes the artifact cache (tests and cmd/ipgd logging).
func (s *Server) Cache() *cache.Cache { return s.cache }

// acquireSlot claims a worker slot, waiting only while the bounded queue
// has room.  It returns ErrSaturated when Workers slots are busy and
// QueueDepth requests are already waiting.
func (s *Server) acquireSlot(ctx context.Context) (release func(), err error) {
	// The queued channel holds Workers+QueueDepth tokens: every request
	// that is either running or waiting holds one, so a failed non-blocking
	// take means the pool plus queue are full.
	select {
	case s.queued <- struct{}{}:
	default:
		return nil, ErrSaturated
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; <-s.queued }, nil
	case <-ctx.Done():
		<-s.queued
		return nil, ctx.Err()
	}
}

// buildOnce runs the configured Builder exactly once, converting a panic
// into an error.  This recovery is load-bearing: builds execute on the
// cache's singleflight goroutine, where an unrecovered panic would kill
// the whole daemon, not just one request.
func (s *Server) buildOnce(ctx context.Context, p Params) (a *Artifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			err = fmt.Errorf("serve: build panicked for %s: %v", p.Key(), r)
		}
	}()
	return s.cfg.Builder(ctx, p, s.cfg.MaxNodes)
}

// buildWithRetry retries transient build failures (errors wrapping
// ErrTransient) up to cfg.BuildRetries times with jittered exponential
// backoff, honoring ctx while sleeping.
func (s *Server) buildWithRetry(ctx context.Context, p Params) (*Artifact, error) {
	a, err := s.buildOnce(ctx, p)
	for i := 0; i < s.cfg.BuildRetries && err != nil && errors.Is(err, ErrTransient); i++ {
		d := s.cfg.RetryBackoff << i
		// Full jitter on the upper half keeps synchronized clients apart.
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
		s.metrics.buildRetries.Add(1)
		a, err = s.buildOnce(ctx, p)
	}
	return a, err
}

// buildOutcomeOf classifies err for the circuit breaker.  Outcomes that
// say nothing about the family's buildability — client errors, pool
// saturation, cancelled or expired deadlines — are neutral.
func buildOutcomeOf(err error) breaker.Outcome {
	var he *httpError
	switch {
	case err == nil:
		return breaker.OK
	case errors.As(err, &he), errors.Is(err, ErrSaturated),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return breaker.Neutral
	}
	return breaker.Fail
}

// getArtifact is the shared request path: breaker check, canonicalize,
// consult the cache, and build (with retry and panic containment) under a
// worker slot on miss.  The build itself runs on the cache's singleflight
// goroutine; the slot is held by the build function, so cache hits never
// touch the pool.  The breaker is keyed per family, so one family
// failing repeatedly cannot consume build slots needed by the rest.
func (s *Server) getArtifact(ctx context.Context, p Params) (*Artifact, bool, error) {
	if err := s.breaker.Allow(p.Net, time.Now()); err != nil {
		s.metrics.breakerFastFails.Add(1)
		return nil, false, err
	}
	// Warm path: probe the cache with a pooled key buffer so a hit never
	// allocates the key string.  The miss is not counted here — the
	// GetOrBuild below counts it when it starts (or joins) the build.
	kb := keyBufPool.Get().(*keyBuf)
	kb.b = p.AppendKey(kb.b[:0])
	if v, ok := s.cache.Lookup(kb.b); ok {
		keyBufPool.Put(kb)
		s.breaker.Report(p.Net, breaker.OK, time.Now())
		return v.(*Artifact), true, nil
	}
	key := string(kb.b)
	keyBufPool.Put(kb)
	v, hit, err := s.cache.GetOrBuild(ctx, key, func(bctx context.Context) (cache.Value, error) {
		release, err := s.acquireSlot(bctx)
		if err != nil {
			return nil, err
		}
		defer release()
		start := time.Now()
		a, err := s.buildWithRetry(bctx, p)
		if err != nil {
			return nil, err
		}
		s.metrics.observeBuild(time.Since(start))
		s.metrics.countBuild(a.Rep())
		return a, nil
	})
	s.breaker.Report(p.Net, buildOutcomeOf(err), time.Now())
	if err != nil {
		return nil, hit, err
	}
	return v.(*Artifact), hit, nil
}

// keyBuf wraps the pooled cache-key buffer (pooling the bare slice would
// allocate its header on every Put).
type keyBuf struct{ b []byte }

var keyBufPool = sync.Pool{New: func() any { return &keyBuf{b: make([]byte, 0, 64)} }}

// httpError is an error with a dedicated HTTP status.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeError maps an error to a JSON error body with the right status:
// pool saturation becomes 503 + Retry-After, a blown request deadline
// becomes 504, cancellations become 499 (client gone), everything else
// 400/500 by type.  The unwrapped sentinels — what load shedding and
// timeouts actually return — are served from preencoded envelopes, so a
// saturated server rejects without allocating; only errors carrying
// dynamic text pay for encoding.
func (s *Server) writeError(w http.ResponseWriter, err error) int {
	switch err {
	case ErrSaturated:
		w.Header()["Retry-After"] = retryAfterOne
		writeStaticJSON(w, http.StatusServiceUnavailable, saturatedBody.body, saturatedBody.clen)
		return http.StatusServiceUnavailable
	case ErrCircuitOpen:
		w.Header()["Retry-After"] = s.retryAfter
		writeStaticJSON(w, http.StatusServiceUnavailable, circuitOpenBody.body, circuitOpenBody.clen)
		return http.StatusServiceUnavailable
	case context.DeadlineExceeded:
		writeStaticJSON(w, http.StatusGatewayTimeout, deadlineBody.body, deadlineBody.clen)
		return http.StatusGatewayTimeout
	case context.Canceled:
		// 499 is nginx's "client closed request"; never seen by a live client.
		writeStaticJSON(w, 499, canceledBody.body, canceledBody.clen)
		return 499
	}
	code := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.Is(err, ErrSaturated):
		code = http.StatusServiceUnavailable
		w.Header()["Retry-After"] = retryAfterOne
	case errors.Is(err, ErrCircuitOpen):
		code = http.StatusServiceUnavailable
		w.Header()["Retry-After"] = s.retryAfter
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = 499
	}
	// A write failure here means the client is gone; nothing to do.
	writeErrorJSON(w, code, err.Error())
	return code
}

// statusRecorder captures the response code for requests_total, and
// whether anything was written yet (so the panic recovery knows if a 500
// body can still be sent).
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// instrument wraps an API handler with the request gauge/counters, the
// per-request deadline, and panic containment: a panicking handler is
// counted in ipgd_panics_total and answered with a 500 (when nothing was
// written yet) instead of tearing down the connection — and the daemon
// keeps serving.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requestsInFlight.Add(1)
		defer s.metrics.requestsInFlight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		// LIFO: the recover below runs before this, so the counted code
		// reflects the 500 a panic produced.
		defer func() { s.metrics.countRequest(endpoint, rec.code) }()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Add(1)
				if !rec.wrote {
					rec.code = s.writeError(rec, fmt.Errorf("serve: handler panicked: %v", p))
				} else {
					rec.code = http.StatusInternalServerError
				}
			}
		}()
		if err := h(rec, r.WithContext(ctx)); err != nil {
			rec.code = s.writeError(rec.ResponseWriter, err)
		}
	}
}
