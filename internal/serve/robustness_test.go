package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBuildPanicRecovery checks the panic containment on the build path:
// builds run on the cache's singleflight goroutine, so an unrecovered
// panic there would kill the daemon.  A panicking Builder must instead
// surface as a 500 with a JSON error body, increment ipgd_panics_total,
// and leave the server fully able to serve other families.
func TestBuildPanicRecovery(t *testing.T) {
	srv := NewServer(Config{
		Workers: 2,
		Builder: func(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
			if p.Net == "hsn" {
				panic("synthetic build explosion")
			}
			return BuildArtifact(ctx, p, maxNodes)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var body map[string]string
	resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", &body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking build: status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(body["error"], "panicked") {
		t.Errorf("panicking build error body = %q, want mention of the panic", body["error"])
	}

	// The daemon must keep serving: health green, other families fine.
	var health map[string]string
	if resp := get(t, ts, "/healthz", &health); resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz after panic: %d %+v", resp.StatusCode, health)
	}
	if resp := get(t, ts, "/v1/build?net=hypercube&dim=5&logm=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy family after panic: status %d, want 200", resp.StatusCode)
	}

	prom := readAll(t, mustGet(t, ts, "/metrics"))
	if v := promValue(t, prom, "ipgd_panics_total"); v != 1 {
		t.Errorf("ipgd_panics_total = %v, want 1", v)
	}
	if !strings.Contains(prom, `ipgd_requests_total{endpoint="/v1/build",code="500"} 1`) {
		t.Errorf("requests_total missing the 500 sample:\n%s", prom)
	}
}

// TestHandlerPanicRecovery exercises the instrument middleware directly
// with a panicking handler: the client gets a 500 JSON error, the panic
// counter and the per-endpoint request counter both record it.
func TestHandlerPanicRecovery(t *testing.T) {
	srv := NewServer(Config{})
	h := srv.instrument("/test", func(w http.ResponseWriter, r *http.Request) error {
		panic("handler exploded")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/test", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "handler exploded") {
		t.Errorf("panic body = %q, want the panic value", rec.Body.String())
	}
	if v := srv.metrics.panics.Load(); v != 1 {
		t.Errorf("panics counter = %d, want 1", v)
	}

	// A panic after the handler already wrote must not attempt a second
	// WriteHeader; the counted code still flips to 500.
	h2 := srv.instrument("/test2", func(w http.ResponseWriter, r *http.Request) error {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "partial")
		panic("late explosion")
	})
	rec2 := httptest.NewRecorder()
	h2(rec2, httptest.NewRequest(http.MethodGet, "/test2", nil))
	if v := srv.metrics.panics.Load(); v != 2 {
		t.Errorf("panics counter = %d, want 2", v)
	}
	var buf strings.Builder
	srv.metrics.WriteProm(&buf, srv.cache.Stats(), breakerStats{}, nil)
	if !strings.Contains(buf.String(), `ipgd_requests_total{endpoint="/test2",code="500"} 1`) {
		t.Errorf("late panic not counted as 500:\n%s", buf.String())
	}
}

// TestRetryTransient checks the bounded retry-with-backoff: a Builder
// failing with ErrTransient is retried up to BuildRetries times, the
// retries are counted, and a family that keeps failing surfaces the
// error after exhausting its budget.
func TestRetryTransient(t *testing.T) {
	var hsnCalls, ringCalls atomic.Int64
	srv := NewServer(Config{
		Workers:      2,
		BuildRetries: 3,
		RetryBackoff: time.Millisecond,
		Builder: func(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
			switch p.Net {
			case "hsn":
				if hsnCalls.Add(1) <= 2 {
					return nil, fmt.Errorf("%w: flaky dependency", ErrTransient)
				}
				return BuildArtifact(ctx, p, maxNodes)
			case "ring-cn":
				ringCalls.Add(1)
				return nil, fmt.Errorf("%w: permanently flaky", ErrTransient)
			}
			return BuildArtifact(ctx, p, maxNodes)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two transient failures, then success: the client sees one clean 200.
	if resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("transient-then-ok build: status %d, want 200", resp.StatusCode)
	}
	if n := hsnCalls.Load(); n != 3 {
		t.Errorf("hsn builder ran %d times, want 3 (1 try + 2 retries)", n)
	}

	// Transient forever: 1 try + 3 retries, then the error surfaces.
	if resp := get(t, ts, "/v1/build?net=ring-cn&l=3&nucleus=q2", nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("exhausted retries: status %d, want 500", resp.StatusCode)
	}
	if n := ringCalls.Load(); n != 4 {
		t.Errorf("ring-cn builder ran %d times, want 4 (1 try + 3 retries)", n)
	}

	prom := readAll(t, mustGet(t, ts, "/metrics"))
	if v := promValue(t, prom, "ipgd_build_retries_total"); v != 5 {
		t.Errorf("ipgd_build_retries_total = %v, want 5 (2 hsn + 3 ring-cn)", v)
	}
}

// TestBreakerCycle walks one family's circuit through the full
// open -> fast-fail -> half-open -> re-open -> half-open -> closed
// cycle, asserting the HTTP behavior, the builder invocation counts,
// and every breaker metric along the way.
func TestBreakerCycle(t *testing.T) {
	const cooldown = 250 * time.Millisecond
	var fail atomic.Bool
	fail.Store(true)
	var calls atomic.Int64
	srv := NewServer(Config{
		Workers:          2,
		BuildRetries:     -1, // isolate the breaker from the retry loop
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
		Builder: func(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
			if p.Net == "hsn" {
				calls.Add(1)
				if fail.Load() {
					return nil, fmt.Errorf("backing store down")
				}
			}
			return BuildArtifact(ctx, p, maxNodes)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two genuine failures trip the threshold-2 circuit.
	for i := 0; i < 2; i++ {
		if resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", nil); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d, want 500", i+1, resp.StatusCode)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("builder ran %d times before trip, want 2", n)
	}

	// Open: fast 503 with Retry-After, builder not consulted.
	resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-circuit 503 missing Retry-After header")
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("open circuit consulted the builder (%d calls)", n)
	}

	// The breaker is per family: other families are unaffected.
	if resp := get(t, ts, "/v1/build?net=hypercube&dim=5&logm=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("unrelated family while hsn open: status %d, want 200", resp.StatusCode)
	}

	prom := readAll(t, mustGet(t, ts, "/metrics"))
	if v := promValue(t, prom, "ipgd_breaker_open"); v != 1 {
		t.Errorf("ipgd_breaker_open = %v, want 1", v)
	}
	if v := promValue(t, prom, "ipgd_breaker_open_total"); v != 1 {
		t.Errorf("ipgd_breaker_open_total = %v, want 1", v)
	}
	if v := promValue(t, prom, "ipgd_breaker_fastfail_total"); v != 1 {
		t.Errorf("ipgd_breaker_fastfail_total = %v, want 1", v)
	}

	// After the cooldown the circuit is half-open and admits one probe.
	time.Sleep(cooldown + 100*time.Millisecond)
	prom = readAll(t, mustGet(t, ts, "/metrics"))
	if v := promValue(t, prom, "ipgd_breaker_half_open"); v != 1 {
		t.Errorf("ipgd_breaker_half_open = %v, want 1 after cooldown", v)
	}
	if v := promValue(t, prom, "ipgd_breaker_open"); v != 0 {
		t.Errorf("ipgd_breaker_open = %v, want 0 after cooldown", v)
	}

	// A failing probe re-opens the circuit for another cooldown.
	if resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing probe: status %d, want 500", resp.StatusCode)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("builder ran %d times after probe, want 3", n)
	}
	if resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("after failed probe: status %d, want 503 (re-opened)", resp.StatusCode)
	}

	// Heal the backend; the next probe closes the circuit for good.
	fail.Store(false)
	time.Sleep(cooldown + 100*time.Millisecond)
	if resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healing probe: status %d, want 200", resp.StatusCode)
	}
	if resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("closed circuit: status %d, want 200", resp.StatusCode)
	}

	prom = readAll(t, mustGet(t, ts, "/metrics"))
	if v := promValue(t, prom, "ipgd_breaker_open"); v != 0 {
		t.Errorf("ipgd_breaker_open = %v, want 0 after close", v)
	}
	if v := promValue(t, prom, "ipgd_breaker_half_open"); v != 0 {
		t.Errorf("ipgd_breaker_half_open = %v, want 0 after close", v)
	}
	if v := promValue(t, prom, "ipgd_breaker_open_total"); v != 2 {
		t.Errorf("ipgd_breaker_open_total = %v, want 2 (trip + failed probe)", v)
	}
}

// TestMetricsDegraded checks the /v1/metrics fault parameters: the
// degraded block appears exactly when fault parameters are present, is
// deterministic per (mode, count, seed), reduces to the healthy metrics
// at zero faults, and never leaks into the memoized fault-free body.
func TestMetricsDegraded(t *testing.T) {
	srv := NewServer(Config{Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Fault-free request: no degraded block.
	var plain MetricsDoc
	if resp := get(t, ts, "/v1/metrics?net=hypercube&dim=6&logm=2", &plain); resp.StatusCode != http.StatusOK {
		t.Fatalf("plain metrics: status %d", resp.StatusCode)
	}
	if plain.Degraded != nil {
		t.Fatalf("fault-free request got a degraded block: %+v", plain.Degraded)
	}

	// Zero faults: the block reduces to the healthy graph's metrics.
	var zero MetricsDoc
	if resp := get(t, ts, "/v1/metrics?net=hypercube&dim=6&logm=2&faults=0", &zero); resp.StatusCode != http.StatusOK {
		t.Fatalf("zero-fault metrics: status %d", resp.StatusCode)
	}
	z := zero.Degraded
	if z == nil {
		t.Fatal("faults=0 request missing the degraded block")
	}
	if z.Alive != 64 || z.Components != 1 || z.Diameter != 6 || z.GiantDiameter != 6 {
		t.Errorf("zero-fault block wrong: %+v", z)
	}

	// Node faults on the clustered hypercube: exact counts, chip census.
	const q = "/v1/metrics?net=hypercube&dim=6&logm=2&faults=4&fmode=node&fseed=7"
	var doc MetricsDoc
	if resp := get(t, ts, q, &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded metrics: status %d", resp.StatusCode)
	}
	d := doc.Degraded
	if d == nil {
		t.Fatal("degraded block missing")
	}
	if d.Mode != "node" || d.Count != 4 || d.Seed != 7 {
		t.Errorf("echoed spec wrong: %+v", d)
	}
	if d.Alive != 60 || d.FailedNodes != 4 {
		t.Errorf("alive/failed wrong: %+v", d)
	}
	if d.ChipsTotal != 16 {
		t.Errorf("chips_total = %d, want 16 (Q6 with 4-node chips)", d.ChipsTotal)
	}
	if d.Components < 1 || d.LargestComponent <= 0 || d.LargestComponent > d.Alive {
		t.Errorf("component census inconsistent: %+v", d)
	}

	// Same spec twice: identical sample, identical block.
	var again MetricsDoc
	get(t, ts, q, &again)
	if !reflect.DeepEqual(doc.Degraded, again.Degraded) {
		t.Errorf("degraded block not deterministic:\n%+v\n%+v", doc.Degraded, again.Degraded)
	}

	// The memoized fault-free body must stay untouched by fault requests.
	var plain2 MetricsDoc
	get(t, ts, "/v1/metrics?net=hypercube&dim=6&logm=2", &plain2)
	if plain2.Degraded != nil {
		t.Errorf("fault request leaked into the memoized body: %+v", plain2.Degraded)
	}

	// Adversarial mode is legal here (it is the simulate side that rejects
	// it), and super-IPG chip faults use the nucleus clustering.
	var adv MetricsDoc
	if resp := get(t, ts, "/v1/metrics?net=hypercube&dim=6&logm=2&faults=3&fmode=adversarial&fseed=1", &adv); resp.StatusCode != http.StatusOK {
		t.Fatalf("adversarial metrics: status %d", resp.StatusCode)
	}
	if adv.Degraded == nil || adv.Degraded.Mode != "adversarial" {
		t.Fatalf("adversarial block missing: %+v", adv.Degraded)
	}
	var chip MetricsDoc
	if resp := get(t, ts, "/v1/metrics?net=hsn&l=3&nucleus=q2&faults=2&fmode=chip&fseed=3", &chip); resp.StatusCode != http.StatusOK {
		t.Fatalf("super chip metrics: status %d", resp.StatusCode)
	}
	c := chip.Degraded
	if c == nil || c.FailedChips != 2 || c.ChipsDead != 2 || c.ChipsTotal <= 2 {
		t.Fatalf("super chip block wrong: %+v", c)
	}

	// Invalid fault parameters are client errors.
	for _, bad := range []string{
		"/v1/metrics?net=hypercube&dim=6&logm=2&faults=4&fmode=bogus",
		"/v1/metrics?net=hypercube&dim=6&logm=2&faults=-1",
		"/v1/metrics?net=hypercube&dim=6&logm=2&faults=4&frouting=psychic",
		"/v1/metrics?net=hypercube&dim=6&logm=2&faults=999",
	} {
		if resp := get(t, ts, bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestMetricsDegradedUnmaterialized checks that fault analysis on a
// label-level-only artifact is refused as a client error rather than a
// nil dereference.
func TestMetricsDegradedUnmaterialized(t *testing.T) {
	srv := NewServer(Config{Workers: 2, MaxNodes: 10}) // HSN(3,Q2) is 64 nodes: skeleton only
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp := get(t, ts, "/v1/metrics?net=hsn&l=3&nucleus=q2", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("label-level metrics: status %d", resp.StatusCode)
	}
	resp := get(t, ts, "/v1/metrics?net=hsn&l=3&nucleus=q2&faults=2", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("faults on unmaterialized artifact: status %d, want 400", resp.StatusCode)
	}
}

// TestSimulateFaults checks the /v1/simulate fault parameters: the fault
// echo block, exact packet conservation on the drained total exchange,
// and the aware/oblivious routing split.
func TestSimulateFaults(t *testing.T) {
	srv := NewServer(Config{Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	run := func(q string) SimulateResponse {
		t.Helper()
		var resp SimulateResponse
		if r := get(t, ts, q, &resp); r.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", q, r.StatusCode)
		}
		return resp
	}

	aware := run("/v1/simulate?net=hypercube&dim=5&logm=1&workload=te&faults=3&fmode=link&fseed=2&frouting=aware")
	if aware.Faults == nil {
		t.Fatal("degraded simulation missing the faults block")
	}
	if f := aware.Faults; f.Mode != "link" || f.Count != 3 || f.Seed != 2 || f.Routing != "aware" || f.DeadLinks != 3 {
		t.Errorf("fault echo wrong: %+v", f)
	}
	// The drained total exchange accounts every packet exactly once.
	if aware.Delivered+aware.Dropped != aware.Injected {
		t.Errorf("conservation violated: injected %d != delivered %d + dropped %d",
			aware.Injected, aware.Delivered, aware.Dropped)
	}
	if aware.Retried != 0 {
		t.Errorf("aware routing retried %d times; it must never misroute", aware.Retried)
	}

	oblivious := run("/v1/simulate?net=hypercube&dim=5&logm=1&workload=te&faults=3&fmode=link&fseed=2&frouting=oblivious")
	if oblivious.Faults == nil || oblivious.Faults.Routing != "oblivious" {
		t.Fatalf("oblivious echo wrong: %+v", oblivious.Faults)
	}
	if oblivious.Delivered+oblivious.Dropped != oblivious.Injected {
		t.Errorf("oblivious conservation violated: %+v", oblivious)
	}
	if aware.Delivered < oblivious.Delivered {
		t.Errorf("aware delivered %d < oblivious %d on the same fault sample",
			aware.Delivered, oblivious.Delivered)
	}

	node := run("/v1/simulate?net=hypercube&dim=5&logm=1&workload=te&faults=2&fmode=node&fseed=5")
	if node.Faults == nil || node.Faults.DeadNodes != 2 {
		t.Fatalf("node fault echo wrong: %+v", node.Faults)
	}
	if node.Delivered+node.Dropped != node.Injected {
		t.Errorf("node-fault conservation violated: %+v", node)
	}

	// Adversarial faults are a graph-cut concept with no port analogue.
	if resp := get(t, ts, "/v1/simulate?net=hypercube&dim=5&logm=1&workload=te&faults=2&fmode=adversarial", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("adversarial simulate: status %d, want 400", resp.StatusCode)
	}
}
