package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// countingBuilder wraps BuildArtifact and counts builds per canonical key.
type countingBuilder struct {
	mu     sync.Mutex
	builds map[string]int
}

func newCountingBuilder() *countingBuilder {
	return &countingBuilder{builds: map[string]int{}}
}

func (b *countingBuilder) build(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
	b.mu.Lock()
	b.builds[p.Key()]++
	b.mu.Unlock()
	return BuildArtifact(ctx, p, maxNodes)
}

func (b *countingBuilder) count(key string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.builds[key]
}

func (b *countingBuilder) total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, c := range b.builds {
		n += c
	}
	return n
}

// get issues one GET and decodes the JSON body into out (if non-nil).
func get(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return resp
}

// promValue scans Prometheus text output for an exact sample name.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics output", name)
	return 0
}

// TestConcurrentBuildsSingleflight is the acceptance integration test:
// >= 64 concurrent requests over repeated and distinct families must
// trigger exactly one build per distinct key, later requests must be
// served from cache without rebuild, and /metrics must agree with the
// observed traffic.
func TestConcurrentBuildsSingleflight(t *testing.T) {
	cb := newCountingBuilder()
	srv := NewServer(Config{
		Workers:    8,
		QueueDepth: 16,
		Builder:    cb.build,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	queries := []string{
		"net=hsn&l=2&nucleus=q2",
		"net=hsn&l=3&nucleus=q2",
		"net=ring-cn&l=3&nucleus=q2",
		"net=complete-cn&l=3&nucleus=q2",
		"net=sfn&l=3&nucleus=q2",
		"net=hypercube&dim=6&logm=2",
		"net=torus&k=8&side=2",
		"net=ccc&dim=4",
	}
	const perKey = 12 // 8 * 12 = 96 concurrent requests
	total := perKey * len(queries)

	var wg sync.WaitGroup
	codes := make([]int, total)
	cached := make([]bool, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries[i%len(queries)]
			resp, err := ts.Client().Get(ts.URL + "/v1/build?" + q)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var br BuildResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Errorf("request %d: bad JSON: %v", i, err)
				return
			}
			cached[i] = br.Cached
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	for _, q := range queries {
		vals, err := url.ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		p, provided, err := ParamsFromQuery(vals)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Check(provided); err != nil {
			t.Fatal(err)
		}
		if n := cb.count(p.Key()); n != 1 {
			t.Errorf("key %s built %d times, want exactly 1", p.Key(), n)
		}
	}

	// Second pass: every family must now come from cache, no rebuild.
	before := cb.total()
	for _, q := range queries {
		var br BuildResponse
		resp := get(t, ts, "/v1/build?"+q, &br)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cached GET %s: status %d", q, resp.StatusCode)
		}
		if !br.Cached {
			t.Errorf("second request for %s not served from cache", q)
		}
	}
	if after := cb.total(); after != before {
		t.Errorf("cached pass triggered %d rebuilds", after-before)
	}

	// /metrics must be consistent with the traffic we just generated:
	// one miss per distinct key, everything else a hit, nothing in flight.
	body := readAll(t, mustGet(t, ts, "/metrics"))
	misses := promValue(t, body, "ipgd_cache_misses_total")
	hits := promValue(t, body, "ipgd_cache_hits_total")
	if int(misses) != len(queries) {
		t.Errorf("misses = %v, want %d", misses, len(queries))
	}
	// Pass one: total requests of which len(queries) are misses; pass
	// two: len(queries) more hits.  Hits therefore equal `total` exactly.
	if hits != float64(total) {
		t.Errorf("hits = %v, want %d (requests %d, misses %d)", hits, total, total+len(queries), len(queries))
	}
	if v := promValue(t, body, "ipgd_builds_in_flight"); v != 0 {
		t.Errorf("builds_in_flight = %v after drain", v)
	}
	if v := promValue(t, body, "ipgd_requests_in_flight"); v != 1 {
		// The /metrics request itself is not instrumented, so 0 is also
		// acceptable; tolerate either but nothing larger.
		if v != 0 {
			t.Errorf("requests_in_flight = %v after drain", v)
		}
	}
	if v := promValue(t, body, "ipgd_cache_entries"); int(v) != len(queries) {
		t.Errorf("cache entries = %v, want %d", v, len(queries))
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSaturationReturns503 checks the backpressure contract: with one
// worker and no queue, a second concurrent build is refused with 503 and
// a Retry-After header.
func TestSaturationReturns503(t *testing.T) {
	entered := make(chan struct{})
	unblock := make(chan struct{})
	var once sync.Once
	srv := NewServer(Config{
		Workers:    1,
		QueueDepth: -1, // no waiting: reject when the slot is busy
		Builder: func(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
			once.Do(func() { close(entered) })
			select {
			case <-unblock:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return BuildArtifact(ctx, p, maxNodes)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/v1/build?net=hsn&l=2&nucleus=q2")
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered // the slow build now owns the only worker slot

	resp := get(t, ts, "/v1/build?net=hsn&l=3&nucleus=q2", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("saturated 503 response missing Retry-After header")
	}

	close(unblock)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("slow build request finished with status %d", code)
	}
}

// TestRequestDeadlineReturns504 checks that a build outlasting the
// request timeout yields 504 promptly and cancels the detached build.
func TestRequestDeadlineReturns504(t *testing.T) {
	buildCancelled := make(chan struct{})
	srv := NewServer(Config{
		RequestTimeout: 50 * time.Millisecond,
		Builder: func(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
			<-ctx.Done() // the flight context is cancelled when the last waiter leaves
			close(buildCancelled)
			return nil, ctx.Err()
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	start := time.Now()
	resp := get(t, ts, "/v1/build?net=hsn&l=2&nucleus=q2", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline response took %v, not prompt", elapsed)
	}
	select {
	case <-buildCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("detached build was never cancelled after the waiter left")
	}
}

// TestEndpointsSmoke exercises each endpoint once for correctness of the
// response shapes.
func TestEndpointsSmoke(t *testing.T) {
	srv := NewServer(Config{Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var health map[string]string
	if resp := get(t, ts, "/healthz", &health); resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %+v", health)
	}

	var doc MetricsDoc
	if resp := get(t, ts, "/v1/metrics?net=hsn&l=3&nucleus=q2&diameter=1", &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if doc.Network != "HSN(3,Q2)" || !doc.Materialized || doc.Super == nil || doc.Structure == nil {
		t.Fatalf("metrics doc incomplete: %+v", doc)
	}
	if doc.Super.InterclusterT == nil || *doc.Super.InterclusterT != 2 {
		t.Errorf("HSN(3,Q2) intercluster t = %v, want 2 (l-1)", doc.Super.InterclusterT)
	}
	if doc.Diameter == nil || *doc.Diameter <= 0 {
		t.Errorf("diameter missing from doc: %+v", doc.Diameter)
	}

	var route RouteResponse
	if resp := get(t, ts, "/v1/route?net=hsn&l=2&nucleus=q2&src=0&dst=5", &route); resp.StatusCode != http.StatusOK {
		t.Fatalf("route: status %d", resp.StatusCode)
	}
	if route.Hops != len(route.Path)-1 || route.Path[0] != 0 || route.Path[len(route.Path)-1] != 5 {
		t.Fatalf("route inconsistent: %+v", route)
	}
	if len(route.Labels) != len(route.Path) {
		t.Fatalf("route labels missing for super-IPG: %+v", route)
	}

	var sim SimulateResponse
	if resp := get(t, ts, "/v1/simulate?net=hypercube&dim=5&logm=1&workload=te", &sim); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}
	if sim.Delivered == 0 || sim.Rounds == 0 {
		t.Fatalf("simulate delivered nothing: %+v", sim)
	}

	// A CN family must route through the table router.
	var simCN SimulateResponse
	if resp := get(t, ts, "/v1/simulate?net=complete-cn&l=3&nucleus=q2&workload=random&rate=0.05&warmup=20&measure=50", &simCN); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate CN: status %d", resp.StatusCode)
	}
	if simCN.Delivered == 0 {
		t.Fatalf("CN simulation delivered nothing: %+v", simCN)
	}
}

// TestBadRequests checks validation failures surface as 400s with JSON
// error bodies.
func TestBadRequests(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []string{
		"/v1/build?net=bogus",
		"/v1/build?net=hypercube&l=3",    // l does not apply to hypercube
		"/v1/build?net=hsn&l=99",         // l out of range
		"/v1/build?net=hsn&nucleus=zz9",  // unknown nucleus
		"/v1/build?net=torus&k=8&side=3", // side does not divide k
		"/v1/route?net=hsn&l=2&nucleus=q2&src=-1&dst=0",
		"/v1/simulate?net=hsn&l=2&nucleus=q2&workload=nope",
		"/v1/simulate?net=ccc&dim=4", // no simulator for ccc
	}
	for _, path := range cases {
		var body map[string]string
		resp := get(t, ts, path, &body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing JSON error body", path)
		}
	}
}

// TestEvictionUnderTightBudget checks the daemon survives a cache far
// smaller than its traffic and reports evictions.
func TestEvictionUnderTightBudget(t *testing.T) {
	srv := NewServer(Config{
		CacheBytes:  2 << 10, // below the combined size of the artifacts
		CacheShards: 1,
		Workers:     2,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	queries := []string{
		"net=hsn&l=2&nucleus=q2",
		"net=hypercube&dim=6&logm=2",
		"net=torus&k=8&side=2",
		"net=ccc&dim=4",
	}
	for _, q := range queries {
		if resp := get(t, ts, "/v1/build?"+q, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", q, resp.StatusCode)
		}
	}
	body := readAll(t, mustGet(t, ts, "/metrics"))
	evictions := promValue(t, body, "ipgd_cache_evictions_total")
	oversize := promValue(t, body, "ipgd_cache_oversize_total")
	if evictions == 0 && oversize == 0 {
		t.Errorf("tight budget produced no evictions or oversize rejections")
	}
	bytes := promValue(t, body, "ipgd_cache_bytes")
	if bytes > 2<<10 {
		t.Errorf("cache bytes %v above the %d budget", bytes, 2<<10)
	}
}

func mustGet(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
