package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ipg/internal/cache"
	"ipg/internal/cluster"
)

// Cluster-mode request routing.  With Config.Cluster set, every
// artifact-backed endpoint consults the consistent-hash ring before
// doing any work: the key's owner serves locally (one build per key
// cluster-wide, deduplicated by the owner's in-process singleflight),
// and every other replica peer-fills — a hedged HTTP fetch of the same
// request from the owner, with concurrent identical fetches collapsed
// by the cluster singleflight and (for immutable metrics documents)
// the bytes cached locally alongside artifacts.  Peer-fill never
// compromises availability: when the owner and the hedge fallback are
// both unreachable, the replica builds locally — the ring has already
// rehashed ownership onto the survivors by then, so local is correct.

// fillBody is a cached peer-fill response body (a memoized metrics
// document fetched from the owner).  It lives in the same byte-budgeted
// LRU as artifacts, under a "fill|"-prefixed key, so hot remote
// documents are evictable like everything else.
type fillBody struct {
	body        []byte
	contentType string
}

// SizeBytes implements cache.Value (64 covers the struct overhead).
func (f fillBody) SizeBytes() int64 { return int64(len(f.body)) + 64 }

// fillBodyKey names the local cache slot for a cacheable fill body.
// Only fault-free metrics documents are body-cached: they are memoized
// and byte-stable on the owner, so replicas may serve them from cache
// indefinitely.  "" means not cacheable.
func fillBodyKey(p Params, withDiameter bool) string {
	d := 0
	if withDiameter {
		d = 1
	}
	return fmt.Sprintf("fill|metrics|%s|diameter=%d", p.Key(), d)
}

// errFillStatus carries a non-200 peer response through the cache's
// singleflight error path, so it is never cached but still replayed
// (with its Retry-After) to every collapsed waiter.
type errFillStatus struct {
	res *cluster.FillResult
}

func (e *errFillStatus) Error() string {
	return fmt.Sprintf("serve: peer fill returned HTTP %d", e.res.Status)
}

// maybeForward implements the cluster routing decision for one request.
// It returns handled=true when the response has been written (proxied
// from a peer, served from the fill-body cache, or declined with 421);
// handled=false means the caller should serve locally.  bodyKey is the
// local cache slot for a cacheable response body ("" for per-request
// computations like routes and simulations).
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, p Params, bodyKey string) (bool, error) {
	cl := s.cfg.Cluster
	if cl == nil {
		return false, nil
	}
	key := p.Key()
	w.Header().Set(cluster.ReplicaHeader, cl.Self())

	if r.Header.Get(cluster.FillHeader) != "" {
		// Incoming peer-fill: serve locally, never forward again (no
		// forwarding loops).  A replica that neither owns the key nor has
		// anything cached declines with 421 so a hedge leg cannot trigger
		// a duplicate build.
		s.metrics.clusterFillsServed.Add(1)
		if cl.Owns(key) {
			return false, nil
		}
		if _, ok := s.cache.Get(key); ok {
			return false, nil // artifact already here (e.g. pre-rehash owner)
		}
		if bodyKey != "" {
			if v, ok := s.cache.Get(bodyKey); ok {
				fb := v.(fillBody)
				w.Header().Set("Content-Type", fb.contentType)
				_, err := w.Write(fb.body)
				return true, err
			}
		}
		s.metrics.clusterNotOwner.Add(1)
		writeErrorJSON(w, http.StatusMisdirectedRequest,
			fmt.Sprintf("replica %s does not own %s and has it neither built nor cached", cl.Self(), key))
		return true, nil
	}

	if cl.Owns(key) {
		return false, nil
	}

	// Non-owner with a client request: peer-fill from the owner.
	uri := r.URL.RequestURI()
	res, err := s.clusterFetch(r, key, uri, bodyKey)
	if err != nil {
		// Owner and fallback both unreachable (or both declined): build
		// locally.  By now the dead owner's circuit is open or opening,
		// so ownership has rehashed and local is the correct authority.
		s.metrics.clusterLocalFallbacks.Add(1)
		return false, nil
	}
	s.metrics.clusterForwarded.Add(1)
	return true, s.replayFill(w, res)
}

// clusterFetch runs the hedged peer-fill, collapsing and caching
// cacheable bodies through the artifact cache's singleflight.
func (s *Server) clusterFetch(r *http.Request, key, uri, bodyKey string) (*cluster.FillResult, error) {
	cl := s.cfg.Cluster
	if bodyKey == "" {
		return cl.Fill(r.Context(), key, uri)
	}
	v, _, err := s.cache.GetOrBuild(r.Context(), bodyKey, func(bctx context.Context) (cache.Value, error) {
		res, err := cl.Fill(bctx, key, uri)
		if err != nil {
			return nil, err
		}
		if res.Status != http.StatusOK {
			// Replayable but not cacheable (e.g. a 503 from a saturated
			// owner): carry it through the error path.
			return nil, &errFillStatus{res: res}
		}
		return fillBody{body: res.Body, contentType: res.ContentType}, nil
	})
	if err != nil {
		var fe *errFillStatus
		if errors.As(err, &fe) {
			return fe.res, nil
		}
		return nil, err
	}
	fb := v.(fillBody)
	return &cluster.FillResult{
		Status:      http.StatusOK,
		Body:        fb.body,
		ContentType: fb.contentType,
	}, nil
}

// replayFill writes a peer's response verbatim: status, body,
// Content-Type, and — critically for 503 backpressure — the Retry-After
// header, so a saturated owner's throttle signal reaches the end client
// unchanged.
func (s *Server) replayFill(w http.ResponseWriter, res *cluster.FillResult) error {
	if res.ContentType != "" {
		w.Header().Set("Content-Type", res.ContentType)
	}
	if res.RetryAfter != "" {
		w.Header().Set("Retry-After", res.RetryAfter)
	}
	if res.ServedBy != "" {
		w.Header().Set(cluster.ReplicaHeader, res.ServedBy)
	}
	w.Header().Set(cluster.ViaHeader, s.cfg.Cluster.Self())
	w.WriteHeader(res.Status)
	_, err := w.Write(res.Body)
	return err
}

// ClusterResponse is the /v1/cluster reply: ring state, per-peer breaker
// and traffic counters, and this replica's serving-side fill counters.
type ClusterResponse struct {
	Enabled bool   `json:"enabled"`
	Self    string `json:"self,omitempty"`
	Size    int    `json:"size,omitempty"`
	VNodes  int    `json:"vnodes,omitempty"`

	Peers []cluster.PeerStatus `json:"peers,omitempty"`

	// Outgoing fill counters (this replica asking others).
	PeerFills      int64 `json:"peer_fills"`
	PeerFillErrors int64 `json:"peer_fill_errors"`
	Hedges         int64 `json:"hedges"`
	HedgeWins      int64 `json:"hedge_wins"`
	Declines       int64 `json:"declines"`

	// Serving-side counters (others asking this replica, and local work).
	FillsServed    int64 `json:"fills_served"`
	NotOwner       int64 `json:"not_owner"`
	Forwarded      int64 `json:"forwarded"`
	LocalFallbacks int64 `json:"local_fallbacks"`
	LocalBuilds    int64 `json:"local_builds"`

	// Ownership lookup, present when the request carried ?key=... .
	Key        string   `json:"key,omitempty"`
	Owner      string   `json:"owner,omitempty"`
	Preference []string `json:"preference,omitempty"`
}

// handleCluster serves cluster introspection.  Without cluster mode it
// reports {"enabled": false} so probes can distinguish "single node" from
// "endpoint missing".
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) error {
	cl := s.cfg.Cluster
	resp := ClusterResponse{Enabled: cl != nil}
	if cl != nil {
		st := cl.Status()
		resp.Self = st.Self
		resp.Size = cl.Size()
		resp.VNodes = st.VNodes
		resp.Peers = st.Peers
		resp.PeerFills = st.Fills
		resp.PeerFillErrors = st.FillErrors
		resp.Hedges = st.Hedges
		resp.HedgeWins = st.HedgeWins
		resp.Declines = st.Declines
		resp.FillsServed = s.metrics.clusterFillsServed.Load()
		resp.NotOwner = s.metrics.clusterNotOwner.Load()
		resp.Forwarded = s.metrics.clusterForwarded.Load()
		resp.LocalFallbacks = s.metrics.clusterLocalFallbacks.Load()
		resp.LocalBuilds = s.metrics.localBuilds()
		if key := r.URL.Query().Get("key"); key != "" {
			resp.Key = key
			resp.Owner = cl.Owner(key)
			resp.Preference = cl.Preference(key)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}
