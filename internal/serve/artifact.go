package serve

import (
	"context"
	"fmt"
	"sync"

	"ipg/internal/graph"
	"ipg/internal/ipg"
	"ipg/internal/mcmp"
	"ipg/internal/netsim"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topology"
)

// Artifact is one built topology: the immutable value the cache stores
// and every handler reads.  All fields are written once by BuildArtifact
// and only read afterwards (the CSR arenas are goroutine-safe by PR 2's
// construction); the one mutable member, the memoized diameter, has its
// own lock.
type Artifact struct {
	Params Params
	Name   string // descriptive instance name, e.g. "HSN(3,Q4)"
	N      int    // node count (known even when not materialized)

	// Super-IPG families.
	W *superipg.Network
	G *ipg.Graph // nil when the instance is too large to materialize

	// U is the undirected structural graph: the super-IPG's undirected
	// view, or the baseline family's graph.  nil only for an
	// unmaterialized super-IPG.
	U *graph.Graph

	// Baseline families.
	Clustered *mcmp.Clustered
	Analysis  *mcmp.Analysis

	bytes int64

	mu     sync.Mutex
	diam   *int          // memoized exact diameter (successful computations only)
	superM *SuperMetrics // memoized super-IPG metrics block

	// metricsJSON memoizes the encoded /v1/metrics body, one slot per
	// withDiameter variant, so warm requests are a single Write with no
	// document assembly or JSON encoding.
	metricsJSON [2][]byte

	simNet    *netsim.Network // memoized simulation network (see SimNetwork)
	simCapVal float64

	clusterIDs []int32 // memoized chip assignment (see ClusterIDs)
}

// SizeBytes implements cache.Value with the CSR bytes-per-vertex
// accounting from the representation benchmarks.
func (a *Artifact) SizeBytes() int64 { return a.bytes }

// Materialized reports whether the instance's graph was built (small
// enough under the server's node cap).  Route and simulate need it;
// label-level metrics do not.
func (a *Artifact) Materialized() bool { return a.U != nil }

// Super reports whether this is a super-IPG family artifact.
func (a *Artifact) Super() bool { return a.W != nil }

// BuildArtifact constructs the topology named by p.  maxNodes caps
// materialization: a super-IPG above it is still served (label-level
// metrics only), a baseline family above it is an error since baselines
// have no label-level form.  The context is checked between the build
// stages; the construction kernels themselves are uninterruptible but
// bounded by maxNodes.
func BuildArtifact(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
	if err := p.Check(nil); err != nil {
		return nil, err
	}
	if maxNodes <= 0 || maxNodes > topology.MaxNodes {
		maxNodes = topology.MaxNodes
	}
	if IsSuperFamily(p.Net) {
		return buildSuper(ctx, p, maxNodes)
	}
	return buildBaseline(ctx, p, maxNodes)
}

func buildSuper(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
	nuc, err := nucleus.Parse(p.Nucleus)
	if err != nil {
		return nil, err
	}
	var w *superipg.Network
	switch p.Net {
	case "hsn":
		w = superipg.HSN(p.L, nuc)
	case "ring-cn":
		w = superipg.RingCN(p.L, nuc)
	case "complete-cn":
		w = superipg.CompleteCN(p.L, nuc)
	case "sfn":
		w = superipg.SFN(p.L, nuc)
	case "hcn":
		w = superipg.HSN(2, nuc)
		w.Family = "HCN"
	case "rcc":
		w = superipg.RCC(p.L, nuc)
	default:
		return nil, fmt.Errorf("serve: %q is not a super-IPG family", p.Net)
	}
	a := &Artifact{Params: p, W: w, Name: w.Name(), N: w.N()}
	if a.N > maxNodes {
		a.bytes = 256 // the label-level skeleton is effectively free
		return a, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := w.Build()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a.G = g
	a.U = g.Undirected()
	a.bytes = g.MemoryFootprint() + a.U.MemoryFootprint()
	return a, nil
}

func buildBaseline(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
	var (
		c    *mcmp.Clustered
		an   mcmp.Analysis
		err  error
		side []int8
	)
	switch p.Net {
	case "hypercube":
		if 1<<p.Dim > maxNodes {
			return nil, fmt.Errorf("serve: Q%d has %d nodes, above the serving cap %d", p.Dim, 1<<p.Dim, maxNodes)
		}
		h := topology.NewHypercube(p.Dim)
		c, err = mcmp.ClusterHypercube(h, p.LogM)
		if err != nil {
			return nil, err
		}
		side = mcmp.HypercubeBisection(c)
	case "torus":
		if p.K*p.K > maxNodes {
			return nil, fmt.Errorf("serve: %d-ary 2-cube has %d nodes, above the serving cap %d", p.K, p.K*p.K, maxNodes)
		}
		tr := topology.NewTorus(p.K, 2)
		c, err = mcmp.ClusterTorus2D(tr, p.Side)
		if err != nil {
			return nil, err
		}
		side = mcmp.Torus2DBisection(tr, c, p.Side)
	case "ccc":
		cc := topology.NewCCC(p.Dim)
		if cc.N() > maxNodes {
			return nil, fmt.Errorf("serve: CCC(%d) has %d nodes, above the serving cap %d", p.Dim, cc.N(), maxNodes)
		}
		c, err = mcmp.ClusterCCC(cc)
		if err != nil {
			return nil, err
		}
		side = mcmp.CCCBisection(cc, c)
	case "butterfly":
		bf := topology.NewButterfly(p.Dim)
		if bf.N() > maxNodes {
			return nil, fmt.Errorf("serve: WBF(%d) has %d nodes, above the serving cap %d", p.Dim, bf.N(), maxNodes)
		}
		c, err = mcmp.ClusterButterfly(bf, p.Band)
		if err != nil {
			return nil, err
		}
		side, err = mcmp.ButterflyBisection(bf, c, p.Band)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("serve: unknown baseline family %q", p.Net)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The MCMP profile (including the quotient-graph BFS metrics) is the
	// expensive part of a baseline build; computing it here means cached
	// metric requests are pure reads.
	an, err = mcmp.Analyze(c, side, float64(c.M))
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Params:    p,
		Name:      c.Name,
		N:         c.G.N(),
		U:         c.G,
		Clustered: c,
		Analysis:  &an,
		bytes:     c.G.MemoryFootprint() + int64(len(c.ClusterOf))*4,
	}, nil
}

// simCap remembers which chip capacity the memoized simulation network
// was built with; a request with a different capacity rebuilds it (only
// one network is retained per artifact, bounding resident memory).
type simCap struct {
	cap float64
	net *netsim.Network
}

// SimNetwork returns the packet-level simulated network for this
// artifact, memoized per chip capacity.  The netsim.Network is immutable
// during runs (each run creates its own Sim), so sharing it between
// concurrent /v1/simulate requests is safe.
func (a *Artifact) SimNetwork(chipCapacity float64) (*netsim.Network, error) {
	if !a.Materialized() {
		return nil, fmt.Errorf("serve: %s is not materialized; cannot simulate", a.Name)
	}
	a.mu.Lock()
	if a.simNet != nil && a.simCapVal == chipCapacity {
		n := a.simNet
		a.mu.Unlock()
		return n, nil
	}
	a.mu.Unlock()

	var (
		net *netsim.Network
		err error
	)
	switch a.Params.Net {
	case "hsn", "hcn", "rcc":
		// Swap families route with the word-based HSN router.
		net, err = netsim.BuildSuperIPG(a.W, a.G, chipCapacity, nil)
	case "ring-cn", "complete-cn", "sfn":
		// CN families need the all-pairs table router; build with a
		// placeholder router first since the table is derived from the
		// finished port map.
		net, err = netsim.BuildSuperIPG(a.W, a.G, chipCapacity, netsim.HypercubeRouter{D: 1})
		if err == nil {
			var tr *netsim.TableRouter
			tr, err = netsim.NewTableRouter(net)
			if err == nil {
				net.Router = tr
			}
		}
	case "hypercube":
		net, err = netsim.BuildHypercube(a.Params.Dim, a.Params.LogM, chipCapacity)
	case "torus":
		net, err = netsim.BuildTorus2D(a.Params.K, a.Params.Side, chipCapacity)
	default:
		return nil, fmt.Errorf("serve: no packet-level simulator for family %q", a.Params.Net)
	}
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.simNet = net
	a.simCapVal = chipCapacity
	a.mu.Unlock()
	return net, nil
}

// ClusterIDs returns the chip assignment of a materialized artifact
// (cluster id per node), memoized: the super-IPG nucleus clustering or
// the baseline family's clustering.  nil for unmaterialized artifacts.
// The returned slice is shared and must not be modified.
func (a *Artifact) ClusterIDs() []int32 {
	if !a.Materialized() {
		return nil
	}
	if a.Clustered != nil {
		return a.Clustered.ClusterOf
	}
	if !a.Super() {
		return nil
	}
	a.mu.Lock()
	ids := a.clusterIDs
	a.mu.Unlock()
	if ids != nil {
		return ids
	}
	ids, _ = a.W.Clusters(a.G)
	a.mu.Lock()
	if a.clusterIDs == nil {
		a.clusterIDs = ids
	} else {
		ids = a.clusterIDs
	}
	a.mu.Unlock()
	return ids
}

// Diameter returns the exact graph diameter, computing it at most once
// per artifact under the caller's deadline.  A cancelled computation is
// not memoized, so a later request with a longer deadline can succeed.
func (a *Artifact) Diameter(ctx context.Context) (int, error) {
	if !a.Materialized() {
		return 0, fmt.Errorf("serve: %s is not materialized; no exact diameter", a.Name)
	}
	a.mu.Lock()
	if a.diam != nil {
		d := *a.diam
		a.mu.Unlock()
		return d, nil
	}
	a.mu.Unlock()
	d, err := a.U.DiameterParallelCtx(ctx)
	if err != nil {
		return 0, err
	}
	a.mu.Lock()
	a.diam = &d
	a.mu.Unlock()
	return d, nil
}
