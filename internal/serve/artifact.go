package serve

import (
	"context"
	"fmt"
	"sync"

	"ipg/internal/graph"
	"ipg/internal/ipg"
	"ipg/internal/ist"
	"ipg/internal/mcmp"
	"ipg/internal/netsim"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topo"
	"ipg/internal/topology"
)

// Representation names for Artifact.Representation and the
// ipgd_artifact_builds_total metric labels.
const (
	RepCSR      = "csr"      // materialized flat-arena adjacency
	RepImplicit = "implicit" // codec-backed rank/unrank adjacency
	RepSkeleton = "skeleton" // label-level quantities only, no adjacency
)

// Artifact is one built topology: the immutable value the cache stores
// and every handler reads.  All fields are written once by BuildArtifact
// and only read afterwards (the CSR arenas are goroutine-safe by PR 2's
// construction); the one mutable member, the memoized diameter, has its
// own lock.
type Artifact struct {
	Params Params
	Name   string // descriptive instance name, e.g. "HSN(3,Q4)"
	N      int    // node count (known even when not materialized)

	// Super-IPG families.
	W *superipg.Network
	G *ipg.Graph // nil when the instance is too large to materialize

	// U is the undirected structural graph: the super-IPG's undirected
	// view, or the baseline family's graph.  nil only for an
	// unmaterialized super-IPG.
	U *graph.Graph

	// Baseline families.
	Clustered *mcmp.Clustered
	Analysis  *mcmp.Analysis

	// Impl is the codec-backed adjacency source, set when the instance is
	// served implicitly (too large for the arena cap, or configured below
	// it): neighbor queries are rank arithmetic with O(1) resident memory
	// regardless of N.
	Impl *topo.Implicit

	// Representation says how the artifact answers adjacency queries:
	// RepCSR, RepImplicit, or RepSkeleton.
	Representation string

	bytes int64

	mu     sync.Mutex
	diam   *int             // memoized exact diameter (successful computations only)
	superM *SuperMetrics    // memoized super-IPG metrics block
	implM  *ImplicitMetrics // memoized implicit-representation metrics block

	// metricsMemo memoizes the encoded /v1/metrics response — body plus
	// precomputed Content-Length and ETag header values — one slot per
	// withDiameter variant, so warm requests are three header map
	// assignments and a single Write with no document assembly or JSON
	// encoding.
	metricsMemo [2]*staticBody

	simNet    *netsim.Network // memoized simulation network (see SimNetwork)
	simCapVal float64

	clusterIDs []int32 // memoized chip assignment (see ClusterIDs)

	// istMemo caches independent-spanning-tree families per (dst, k),
	// FIFO-bounded (see ISTrees); the tables live and die with the
	// artifact in the server's LRU.
	istMemo  map[uint64]*ist.Trees
	istOrder []uint64
}

// SizeBytes implements cache.Value with the CSR bytes-per-vertex
// accounting from the representation benchmarks.
func (a *Artifact) SizeBytes() int64 { return a.bytes }

// Materialized reports whether the instance's graph was built (small
// enough under the server's node cap).  Route and simulate need it;
// label-level metrics do not.
func (a *Artifact) Materialized() bool { return a.U != nil }

// Super reports whether this is a super-IPG family artifact.
func (a *Artifact) Super() bool { return a.W != nil }

// Rep returns the artifact's representation name, deriving it from the
// populated fields when the builder did not set one (custom test
// builders construct Artifacts directly).
func (a *Artifact) Rep() string {
	if a.Representation != "" {
		return a.Representation
	}
	switch {
	case a.U != nil:
		return RepCSR
	case a.Impl != nil:
		return RepImplicit
	}
	return RepSkeleton
}

// Source returns the adjacency source the artifact answers structural
// queries with: the materialized CSR when present, else the implicit
// codec, else nil (skeleton artifacts have no adjacency).
func (a *Artifact) Source() topo.Source {
	if a.U != nil {
		return a.U.CSR()
	}
	if a.Impl != nil {
		return a.Impl
	}
	return nil
}

// BuildArtifact constructs the topology named by p with the default
// hybrid policy: instances up to maxNodes are materialized as CSR
// arenas, larger ones fall back to the implicit codec representation
// where the family has one (all baselines; super-IPGs with addressable
// nuclei), and the rest are served as label-level skeletons (super-IPGs
// only — a baseline with no codec and no arena is an error).
func BuildArtifact(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
	return BuildArtifactThreshold(ctx, p, maxNodes, 0)
}

// BuildArtifactThreshold is BuildArtifact with an explicit
// representation switch point: instances above implicitOver nodes are
// served implicitly even when they would fit under the materialization
// cap.  implicitOver <= 0 (or above maxNodes) means "at the cap" — the
// default policy where only non-materializable instances go implicit.
// The context is checked between the build stages; the construction
// kernels themselves are uninterruptible but bounded by maxNodes.
func BuildArtifactThreshold(ctx context.Context, p Params, maxNodes, implicitOver int) (*Artifact, error) {
	if err := p.Check(nil); err != nil {
		return nil, err
	}
	if maxNodes <= 0 || maxNodes > topology.MaxNodes {
		maxNodes = topology.MaxNodes
	}
	if implicitOver <= 0 || implicitOver > maxNodes {
		implicitOver = maxNodes
	}
	if IsSuperFamily(p.Net) {
		return buildSuper(ctx, p, maxNodes, implicitOver)
	}
	return buildBaseline(ctx, p, maxNodes, implicitOver)
}

func buildSuper(ctx context.Context, p Params, maxNodes, implicitOver int) (*Artifact, error) {
	nuc, err := nucleus.Parse(p.Nucleus)
	if err != nil {
		return nil, err
	}
	var w *superipg.Network
	switch p.Net {
	case "hsn":
		w = superipg.HSN(p.L, nuc)
	case "ring-cn":
		w = superipg.RingCN(p.L, nuc)
	case "complete-cn":
		w = superipg.CompleteCN(p.L, nuc)
	case "sfn":
		w = superipg.SFN(p.L, nuc)
	case "hcn":
		w = superipg.HSN(2, nuc)
		w.Family = "HCN"
	case "rcc":
		w = superipg.RCC(p.L, nuc)
	default:
		return nil, fmt.Errorf("serve: %q is not a super-IPG family", p.Net)
	}
	a := &Artifact{Params: p, W: w, Name: w.Name(), N: w.N()}
	if a.N > implicitOver {
		// Too large (or configured) for the arena: the address codec
		// serves full adjacency with O(1) resident memory when the
		// nucleus is addressable; otherwise fall back to the label-level
		// skeleton.
		if im, err := w.Implicit(); err == nil {
			a.Impl = im
			a.Representation = RepImplicit
			a.bytes = im.ByteSize()
			return a, nil
		}
		a.Representation = RepSkeleton
		a.bytes = 256 // the label-level skeleton is effectively free
		return a, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := w.Build()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a.G = g
	a.U = g.Undirected()
	a.Representation = RepCSR
	a.bytes = g.MemoryFootprint() + a.U.MemoryFootprint()
	return a, nil
}

// baselineNodes is the node count of a baseline instance, computable
// without building anything (the representation switch needs it first).
func baselineNodes(p Params) int {
	switch p.Net {
	case "hypercube":
		return 1 << p.Dim
	case "torus":
		return p.K * p.K
	case "ccc", "butterfly":
		return p.Dim << p.Dim
	}
	return 0
}

// buildImplicitBaseline wraps the family's rank/unrank codec; nothing is
// materialized, so the artifact costs O(1) memory at any N.
func buildImplicitBaseline(p Params) (*Artifact, error) {
	var (
		codec topo.Codec
		name  string
		err   error
	)
	switch p.Net {
	case "hypercube":
		codec, err = topo.NewHypercubeCodec(p.Dim)
		name = fmt.Sprintf("Q%d", p.Dim)
	case "torus":
		codec, err = topo.NewTorusCodec(p.K, 2)
		name = fmt.Sprintf("%d-ary 2-cube", p.K)
	case "ccc":
		codec, err = topo.NewCCCCodec(p.Dim)
		name = fmt.Sprintf("CCC(%d)", p.Dim)
	case "butterfly":
		codec, err = topo.NewButterflyCodec(p.Dim)
		name = fmt.Sprintf("WBF(%d)", p.Dim)
	default:
		return nil, fmt.Errorf("serve: no implicit codec for family %q", p.Net)
	}
	if err != nil {
		return nil, err
	}
	im := topo.NewImplicit(codec)
	return &Artifact{
		Params:         p,
		Name:           name,
		N:              im.N(),
		Impl:           im,
		Representation: RepImplicit,
		bytes:          im.ByteSize(),
	}, nil
}

func buildBaseline(ctx context.Context, p Params, maxNodes, implicitOver int) (*Artifact, error) {
	if n := baselineNodes(p); n > implicitOver {
		a, err := buildImplicitBaseline(p)
		if err == nil || n > maxNodes {
			// Above the arena cap the codec is the only representation,
			// so its error is final; between the thresholds a family the
			// codec cannot express (e.g. CCC(2)) still materializes.
			return a, err
		}
	}
	var (
		c    *mcmp.Clustered
		an   mcmp.Analysis
		err  error
		side []int8
	)
	switch p.Net {
	case "hypercube":
		if 1<<p.Dim > maxNodes {
			return nil, fmt.Errorf("serve: Q%d has %d nodes, above the serving cap %d", p.Dim, 1<<p.Dim, maxNodes)
		}
		h := topology.NewHypercube(p.Dim)
		c, err = mcmp.ClusterHypercube(h, p.LogM)
		if err != nil {
			return nil, err
		}
		side = mcmp.HypercubeBisection(c)
	case "torus":
		if p.K*p.K > maxNodes {
			return nil, fmt.Errorf("serve: %d-ary 2-cube has %d nodes, above the serving cap %d", p.K, p.K*p.K, maxNodes)
		}
		tr := topology.NewTorus(p.K, 2)
		c, err = mcmp.ClusterTorus2D(tr, p.Side)
		if err != nil {
			return nil, err
		}
		side = mcmp.Torus2DBisection(tr, c, p.Side)
	case "ccc":
		cc := topology.NewCCC(p.Dim)
		if cc.N() > maxNodes {
			return nil, fmt.Errorf("serve: CCC(%d) has %d nodes, above the serving cap %d", p.Dim, cc.N(), maxNodes)
		}
		c, err = mcmp.ClusterCCC(cc)
		if err != nil {
			return nil, err
		}
		side = mcmp.CCCBisection(cc, c)
	case "butterfly":
		bf := topology.NewButterfly(p.Dim)
		if bf.N() > maxNodes {
			return nil, fmt.Errorf("serve: WBF(%d) has %d nodes, above the serving cap %d", p.Dim, bf.N(), maxNodes)
		}
		c, err = mcmp.ClusterButterfly(bf, p.Band)
		if err != nil {
			return nil, err
		}
		side, err = mcmp.ButterflyBisection(bf, c, p.Band)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("serve: unknown baseline family %q", p.Net)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The MCMP profile (including the quotient-graph BFS metrics) is the
	// expensive part of a baseline build; computing it here means cached
	// metric requests are pure reads.
	an, err = mcmp.Analyze(c, side, float64(c.M))
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Params:         p,
		Name:           c.Name,
		N:              c.G.N(),
		U:              c.G,
		Clustered:      c,
		Analysis:       &an,
		Representation: RepCSR,
		bytes:          c.G.MemoryFootprint() + int64(len(c.ClusterOf))*4,
	}, nil
}

// simCap remembers which chip capacity the memoized simulation network
// was built with; a request with a different capacity rebuilds it (only
// one network is retained per artifact, bounding resident memory).
type simCap struct {
	cap float64
	net *netsim.Network
}

// SimNetwork returns the packet-level simulated network for this
// artifact, memoized per chip capacity.  The netsim.Network is immutable
// during runs (each run creates its own Sim), so sharing it between
// concurrent /v1/simulate requests is safe.
func (a *Artifact) SimNetwork(chipCapacity float64) (*netsim.Network, error) {
	if !a.Materialized() {
		return nil, fmt.Errorf("serve: %s is not materialized; cannot simulate", a.Name)
	}
	a.mu.Lock()
	if a.simNet != nil && a.simCapVal == chipCapacity {
		n := a.simNet
		a.mu.Unlock()
		return n, nil
	}
	a.mu.Unlock()

	var (
		net *netsim.Network
		err error
	)
	switch a.Params.Net {
	case "hsn", "hcn", "rcc":
		// Swap families route with the word-based HSN router.
		net, err = netsim.BuildSuperIPG(a.W, a.G, chipCapacity, nil)
	case "ring-cn", "complete-cn", "sfn":
		// CN families need the all-pairs table router; build with a
		// placeholder router first since the table is derived from the
		// finished port map.
		net, err = netsim.BuildSuperIPG(a.W, a.G, chipCapacity, netsim.HypercubeRouter{D: 1})
		if err == nil {
			var tr *netsim.TableRouter
			tr, err = netsim.NewTableRouter(net)
			if err == nil {
				net.Router = tr
			}
		}
	case "hypercube":
		net, err = netsim.BuildHypercube(a.Params.Dim, a.Params.LogM, chipCapacity)
	case "torus":
		net, err = netsim.BuildTorus2D(a.Params.K, a.Params.Side, chipCapacity)
	default:
		return nil, fmt.Errorf("serve: no packet-level simulator for family %q", a.Params.Net)
	}
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.simNet = net
	a.simCapVal = chipCapacity
	a.mu.Unlock()
	return net, nil
}

// ClusterIDs returns the chip assignment of a materialized artifact
// (cluster id per node), memoized: the super-IPG nucleus clustering or
// the baseline family's clustering.  nil for unmaterialized artifacts.
// The returned slice is shared and must not be modified.
func (a *Artifact) ClusterIDs() []int32 {
	if !a.Materialized() {
		return nil
	}
	if a.Clustered != nil {
		return a.Clustered.ClusterOf
	}
	if !a.Super() {
		return nil
	}
	a.mu.Lock()
	ids := a.clusterIDs
	a.mu.Unlock()
	if ids != nil {
		return ids
	}
	ids, _ = a.W.Clusters(a.G)
	a.mu.Lock()
	if a.clusterIDs == nil {
		a.clusterIDs = ids
	} else {
		ids = a.clusterIDs
	}
	a.mu.Unlock()
	return ids
}

// MaxTrees returns the largest independent-spanning-tree family the
// artifact's topology supports: the full dimension for the hypercube
// (closed-form construction), the generic 2-connected bound otherwise.
func (a *Artifact) MaxTrees() int {
	if a.Params.Net == "hypercube" {
		return a.Params.Dim
	}
	return ist.GenericMaxTrees
}

// IST memo bounds: at most istMemoMaxEntries destination families per
// artifact, and only tables whose parent count (k*N) stays under
// istMemoMaxParents (4 MiB of int32s) are retained at all — a giant
// implicit-scale table is computed per request instead of pinned.
const (
	istMemoMaxEntries = 64
	istMemoMaxParents = 1 << 20
)

// ISTrees returns the k independent spanning trees rooted at dst on the
// artifact's healthy topology, memoized FIFO per (dst, k).  The trees
// are deterministic, so every replica computes identical tables and
// cluster peer-fill keys stay representation-independent.
func (a *Artifact) ISTrees(ctx context.Context, dst, k int) (*ist.Trees, error) {
	key := uint64(dst)<<8 | uint64(k)
	a.mu.Lock()
	if tr, ok := a.istMemo[key]; ok {
		a.mu.Unlock()
		return tr, nil
	}
	a.mu.Unlock()
	var (
		tr  *ist.Trees
		err error
	)
	if a.Params.Net == "hypercube" && k <= a.Params.Dim {
		// Hypercube node ids are the d-bit addresses, so the closed-form
		// k = d family applies directly.
		tr, err = ist.BuildHypercube(a.Params.Dim, dst, k)
	} else {
		src := a.Source()
		if src == nil {
			return nil, badRequest("%s has no adjacency representation (label-level skeleton); no multipath trees", a.Name)
		}
		tr, err = ist.Build(ctx, src, dst, k)
	}
	if err != nil {
		return nil, err
	}
	if k*a.N <= istMemoMaxParents {
		a.mu.Lock()
		if cached, ok := a.istMemo[key]; ok {
			tr = cached // a concurrent builder won; keep one table resident
		} else {
			if a.istMemo == nil {
				a.istMemo = make(map[uint64]*ist.Trees, istMemoMaxEntries)
			}
			if len(a.istOrder) >= istMemoMaxEntries {
				delete(a.istMemo, a.istOrder[0])
				a.istOrder = a.istOrder[1:]
			}
			a.istMemo[key] = tr
			a.istOrder = append(a.istOrder, key)
		}
		a.mu.Unlock()
	}
	return tr, nil
}

// routeLabel renders the node label of vertex v on a super-IPG route:
// materialized artifacts look it up in the built graph, implicit ones
// decode it from the address (implicit super vertices ARE their group
// addresses, so LabelOf inverts the codec's numbering exactly).
func (a *Artifact) routeLabel(v int) (string, error) {
	if a.G != nil {
		return a.G.Label(v).GroupedString(a.W.SymbolLen()), nil
	}
	l, err := a.W.LabelOf(v)
	if err != nil {
		return "", err
	}
	return l.GroupedString(a.W.SymbolLen()), nil
}

// implicitSweepMax bounds the distance sweeps run over implicit
// artifacts: the vertex-transitive families collapse to a single O(N)
// BFS whose dist/queue scratch is transient, so 1<<24 vertices (~128 MiB
// of scratch, freed after the sweep) is affordable per request while the
// artifact itself stays O(1) resident.
const implicitSweepMax = 1 << 24

// sweepableImplicit reports whether the artifact's implicit source
// supports exact distance metrics at its size: a proven
// vertex-transitive codec collapses the all-sources sweep to one BFS.
func (a *Artifact) sweepableImplicit() bool {
	return a.Impl != nil && topo.SourceTransitive(a.Impl) && a.N <= implicitSweepMax
}

// Diameter returns the exact graph diameter, computing it at most once
// per artifact under the caller's deadline.  A cancelled computation is
// not memoized, so a later request with a longer deadline can succeed.
// Materialized artifacts sweep the CSR; implicit vertex-transitive ones
// collapse to a single codec-driven BFS (under implicitSweepMax).
func (a *Artifact) Diameter(ctx context.Context) (int, error) {
	if !a.Materialized() && !a.sweepableImplicit() {
		return 0, fmt.Errorf("serve: %s has no representation that supports an exact diameter", a.Name)
	}
	a.mu.Lock()
	if a.diam != nil {
		d := *a.diam
		a.mu.Unlock()
		return d, nil
	}
	a.mu.Unlock()
	var (
		d   int
		err error
	)
	if a.Materialized() {
		d, err = a.U.DiameterParallelCtx(ctx)
	} else {
		d, err = graph.DiameterSourceCtx(ctx, a.Impl)
	}
	if err != nil {
		return 0, err
	}
	a.mu.Lock()
	a.diam = &d
	a.mu.Unlock()
	return d, nil
}
