package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// nullResponseWriter is the alloc-test sink: a reusable ResponseWriter
// whose header map persists across runs, mirroring net/http's per-request
// header reuse without the connection machinery.  The tests call handlers
// directly (below instrument's per-request context.WithTimeout, which
// necessarily allocates) — the handler plus response path is the part the
// zero-allocation overhaul claims.
type nullResponseWriter struct {
	h     http.Header
	code  int
	bytes int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }

func (w *nullResponseWriter) Write(b []byte) (int, error) {
	w.bytes += len(b)
	return len(b), nil
}

func (w *nullResponseWriter) WriteHeader(code int) { w.code = code }

// TestWarmMetricsZeroAllocs locks in the tentpole claim: a warm
// /v1/metrics request — raw-query decode, validation, breaker check,
// cache lookup, memoized body with ETag — performs zero heap allocations.
func TestWarmMetricsZeroAllocs(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics?net=hsn&l=2&nucleus=q2", nil)
	w := &nullResponseWriter{h: make(http.Header)}
	if err := srv.handleMetrics(w, req); err != nil {
		t.Fatalf("prime request: %v", err)
	}
	if w.bytes == 0 {
		t.Fatal("prime request wrote no body")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := srv.handleMetrics(w, req); err != nil {
			t.Fatalf("warm request: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm /v1/metrics: %.2f allocs/op, want 0", allocs)
	}
}

// TestWarmMetrics304ZeroAllocs covers the revalidation path: a matching
// If-None-Match answers 304 without a body and without allocating.
func TestWarmMetrics304ZeroAllocs(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics?net=torus&k=4&side=2", nil)
	w := &nullResponseWriter{h: make(http.Header)}
	if err := srv.handleMetrics(w, req); err != nil {
		t.Fatalf("prime request: %v", err)
	}
	etag := w.h["Etag"]
	if len(etag) != 1 || etag[0] == "" {
		t.Fatalf("prime request set no ETag: %v", etag)
	}
	req.Header.Set("If-None-Match", etag[0])
	allocs := testing.AllocsPerRun(200, func() {
		w.bytes = 0
		if err := srv.handleMetrics(w, req); err != nil {
			t.Fatalf("revalidation request: %v", err)
		}
		if w.code != http.StatusNotModified || w.bytes != 0 {
			t.Fatalf("revalidation: code %d with %d body bytes, want bodyless 304", w.code, w.bytes)
		}
	})
	if allocs != 0 {
		t.Errorf("warm 304 revalidation: %.2f allocs/op, want 0", allocs)
	}
}

// TestHealthzZeroAllocs asserts the liveness probe serves its preencoded
// body without allocating.
func TestHealthzZeroAllocs(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := &nullResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(200, func() {
		srv.handleHealthz(w, req)
	})
	if allocs != 0 {
		t.Errorf("/healthz: %.2f allocs/op, want 0", allocs)
	}
}

// TestStaticErrorEnvelopeZeroAllocs asserts the load-shedding rejections
// (pool saturated, breaker open, deadline, cancellation sentinels) are
// served from preencoded envelopes: shedding load must not allocate, or
// the shedding itself feeds the GC pressure it is escaping.
func TestStaticErrorEnvelopeZeroAllocs(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	w := &nullResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(200, func() {
		if code := srv.writeError(w, ErrSaturated); code != http.StatusServiceUnavailable {
			t.Fatalf("writeError(ErrSaturated) = %d, want 503", code)
		}
	})
	if allocs != 0 {
		t.Errorf("saturated error envelope: %.2f allocs/op, want 0", allocs)
	}
}
