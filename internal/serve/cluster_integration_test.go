package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"ipg/internal/cluster"
)

// clusterReplica is one in-process ipgd replica in a test cluster.
type clusterReplica struct {
	url string
	ts  *httptest.Server
	srv *Server
	cb  *countingBuilder
	cl  *cluster.Cluster
}

// startTestCluster boots n in-process replicas that all know each other.
// Listeners are bound first so every replica's URL is known before any
// cluster config is built — the same order a static -peers deployment
// uses.  mutate (optional) adjusts each replica's serve.Config.
func startTestCluster(t *testing.T, n int, ccfg cluster.Config, mutate func(i int, cfg *Config)) []*clusterReplica {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	replicas := make([]*clusterReplica, n)
	for i := range replicas {
		cc := ccfg
		cc.Self = urls[i]
		cc.Peers = urls
		cl, err := cluster.New(cc)
		if err != nil {
			t.Fatal(err)
		}
		cb := newCountingBuilder()
		cfg := Config{
			Workers:    8,
			QueueDepth: 32,
			Builder:    cb.build,
			Cluster:    cl,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := NewServer(cfg)
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(ts.Close)
		replicas[i] = &clusterReplica{url: urls[i], ts: ts, srv: srv, cb: cb, cl: cl}
	}
	return replicas
}

// goldenQueries are the eight golden families every serving test uses;
// their canonical keys are pinned by TestParamsKeyGolden.
var goldenQueries = []string{
	"net=hsn&l=2&nucleus=q2",
	"net=hsn&l=3&nucleus=q2",
	"net=ring-cn&l=3&nucleus=q2",
	"net=complete-cn&l=3&nucleus=q2",
	"net=sfn&l=3&nucleus=q2",
	"net=hypercube&dim=6&logm=2",
	"net=torus&k=8&side=2",
	"net=ccc&dim=4",
}

func goldenKey(t *testing.T, query string) string {
	t.Helper()
	q, err := url.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := ParamsFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return p.Key()
}

// getRaw issues one plain GET (a client request: no fill header) and
// returns status and body.
func getRaw(t *testing.T, rawURL string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", rawURL, err)
	}
	return resp.StatusCode, body
}

// TestClusterKillTolerance is the cluster acceptance test.  Three
// in-process replicas serve concurrent mixed traffic over all eight
// golden families; the healthy phase must perform exactly one build per
// key cluster-wide and return byte-identical metrics documents from
// every replica.  Then one replica that owns at least one key is killed
// mid-run: traffic against the survivors must see zero 5xx, ownership of
// the victim's keys must rehash onto the survivors, and the rebuilt
// documents must be byte-identical to the pre-kill ones.
func TestClusterKillTolerance(t *testing.T) {
	replicas := startTestCluster(t, 3, cluster.Config{
		BreakerThreshold: 1, // first refused connection cuts the peer out
		BreakerCooldown:  time.Hour,
	}, nil)

	// Phase 1: concurrent mixed /v1/build traffic over every family,
	// spread across all replicas.
	const perKey = 6
	total := perKey * len(goldenQueries)
	codes := make([]int, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := goldenQueries[i%len(goldenQueries)]
			r := replicas[i%len(replicas)]
			codes[i], _ = getRaw(t, r.url+"/v1/build?"+q)
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("phase 1 request %d (%s): HTTP %d", i, goldenQueries[i%len(goldenQueries)], c)
		}
	}

	// Exactly one build per key cluster-wide: sum the per-replica build
	// counters.
	for _, q := range goldenQueries {
		key := goldenKey(t, q)
		sum := 0
		for _, r := range replicas {
			sum += r.cb.count(key)
		}
		if sum != 1 {
			for _, r := range replicas {
				t.Logf("  %s built %q %d times", r.url, key, r.cb.count(key))
			}
			t.Fatalf("key %q built %d times cluster-wide, want exactly 1", key, sum)
		}
	}

	// Byte-identical metrics documents from every replica.
	phase1 := make(map[string][]byte, len(goldenQueries))
	for _, q := range goldenQueries {
		for _, r := range replicas {
			code, body := getRaw(t, r.url+"/v1/metrics?"+q+"&diameter=1")
			if code != http.StatusOK {
				t.Fatalf("phase 1 metrics %s from %s: HTTP %d", q, r.url, code)
			}
			if want, seen := phase1[q]; seen {
				if !bytes.Equal(body, want) {
					t.Fatalf("metrics %s from %s differ from the first replica's bytes", q, r.url)
				}
			} else {
				phase1[q] = body
			}
		}
	}

	// Pick the victim: a replica that owns at least one golden key (the
	// one owning the most, so the rehash moves real load).
	owned := make(map[string][]string) // replica URL -> keys
	for _, q := range goldenQueries {
		key := goldenKey(t, q)
		owner := replicas[0].cl.Owner(key)
		owned[owner] = append(owned[owner], key)
	}
	var victim *clusterReplica
	for _, r := range replicas {
		if victim == nil || len(owned[r.url]) > len(owned[victim.url]) {
			victim = r
		}
	}
	if len(owned[victim.url]) == 0 {
		t.Fatal("no replica owns any golden key; test vacuous")
	}
	victimKeys := owned[victim.url]
	var survivors []*clusterReplica
	for _, r := range replicas {
		if r != victim {
			survivors = append(survivors, r)
		}
	}
	t.Logf("killing %s (owns %d/%d golden keys)", victim.url, len(victimKeys), len(goldenQueries))
	victim.ts.Close()

	// Drain pass: one /v1/build per family per survivor.  The very first
	// fetch toward the dead owner is refused, opens its circuit on the
	// requester, and falls back to a local build — so even the drain
	// window must be free of 5xx.
	for _, r := range survivors {
		for _, q := range goldenQueries {
			code, body := getRaw(t, r.url+"/v1/build?"+q)
			if code >= 500 {
				t.Fatalf("drain: /v1/build?%s on %s: HTTP %d: %s", q, r.url, code, body)
			}
		}
	}

	// Ownership of every victim key must have rehashed onto a survivor,
	// and every survivor must agree it moved.
	for _, key := range victimKeys {
		for _, r := range survivors {
			var cs ClusterResponse
			code, body := getRaw(t, r.url+"/v1/cluster?key="+url.QueryEscape(key))
			if code != http.StatusOK {
				t.Fatalf("/v1/cluster on %s: HTTP %d", r.url, code)
			}
			if err := json.Unmarshal(body, &cs); err != nil {
				t.Fatal(err)
			}
			if cs.Owner == victim.url {
				t.Fatalf("survivor %s still assigns %q to the dead replica", r.url, key)
			}
		}
	}

	// Strict pass: concurrent mixed traffic on the survivors, zero 5xx,
	// and every rebuilt document byte-identical to its pre-kill bytes.
	const perKey2 = 4
	total2 := perKey2 * len(goldenQueries)
	codes2 := make([]int, total2)
	bodies2 := make([][]byte, total2)
	for i := 0; i < total2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := goldenQueries[i%len(goldenQueries)]
			r := survivors[i%len(survivors)]
			codes2[i], bodies2[i] = getRaw(t, r.url+"/v1/metrics?"+q+"&diameter=1")
		}(i)
	}
	wg.Wait()
	for i := 0; i < total2; i++ {
		q := goldenQueries[i%len(goldenQueries)]
		if codes2[i] != http.StatusOK {
			t.Errorf("post-kill metrics %s: HTTP %d", q, codes2[i])
			continue
		}
		if !bytes.Equal(bodies2[i], phase1[q]) {
			t.Errorf("post-kill metrics %s not byte-identical to the pre-kill document", q)
		}
	}
}

// gateBuilder blocks builds of one key until released, so a test can
// saturate an owner's single-worker pool on demand.
type gateBuilder struct {
	gateKey string
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateBuilder) build(ctx context.Context, p Params, maxNodes int) (*Artifact, error) {
	if p.Key() == g.gateKey {
		g.once.Do(func() { close(g.entered) })
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return BuildArtifact(ctx, p, maxNodes)
}

// twoKeysSameOwner returns two golden queries whose keys hash to the
// same owner (pigeonhole guarantees one exists for a 2-replica ring).
func twoKeysSameOwner(t *testing.T, cl *cluster.Cluster) (qa, qb, owner string) {
	t.Helper()
	byOwner := make(map[string][]string)
	for _, q := range goldenQueries {
		o := cl.Owner(goldenKey(t, q))
		byOwner[o] = append(byOwner[o], q)
		if len(byOwner[o]) == 2 {
			return byOwner[o][0], byOwner[o][1], o
		}
	}
	t.Fatal("no owner with two golden keys")
	return "", "", ""
}

// TestClusterRetryAfterThroughFill checks end-to-end 503 pass-through: a
// saturated owner's backpressure response — status AND Retry-After —
// must reach the client unchanged when forwarded through a non-owner,
// and must never be cached as if it were the document.
func TestClusterRetryAfterThroughFill(t *testing.T) {
	gate := &gateBuilder{entered: make(chan struct{}), release: make(chan struct{})}
	replicas := startTestCluster(t, 2, cluster.Config{
		HedgeDelay:      -1,
		BreakerCooldown: time.Hour,
	}, func(i int, cfg *Config) {
		cfg.Workers = 1
		cfg.QueueDepth = -1 // no waiting: saturation answers 503 immediately
		cfg.Builder = gate.build
	})

	qSlow, qTest, ownerURL := twoKeysSameOwner(t, replicas[0].cl)
	gate.gateKey = goldenKey(t, qSlow)
	var owner, other *clusterReplica
	for _, r := range replicas {
		if r.url == ownerURL {
			owner = r
		} else {
			other = r
		}
	}

	// Occupy the owner's only worker with a gated build.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _ := getRaw(t, owner.url+"/v1/build?"+qSlow)
		if code != http.StatusOK {
			t.Errorf("gated build finished with HTTP %d", code)
		}
	}()
	<-gate.entered

	// A client asking the non-owner is forwarded to the saturated owner;
	// the 503 and its Retry-After must come back through the fill intact.
	resp, err := http.Get(other.url + "/v1/metrics?" + qTest + "&diameter=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("through-fill status = %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("Retry-After lost in the fill path")
	}
	if via := resp.Header.Get(cluster.ViaHeader); via != other.url {
		t.Errorf("via header = %q, want the forwarding replica %s", via, other.url)
	}

	// Release the worker; the same request must now succeed — proving the
	// 503 body was replayed, not cached in the fill-body slot.
	close(gate.release)
	wg.Wait()
	code, _ := getRaw(t, other.url+"/v1/metrics?"+qTest+"&diameter=1")
	if code != http.StatusOK {
		t.Fatalf("after release: HTTP %d, want 200 (503 must not be cached)", code)
	}
}

// TestClusterFillMarkerStopsForwarding checks the loop-prevention rule:
// a fill-marked request is never forwarded again — the owner serves it,
// and a non-owner without the artifact declines with 421 instead of
// building or proxying.
func TestClusterFillMarkerStopsForwarding(t *testing.T) {
	replicas := startTestCluster(t, 2, cluster.Config{HedgeDelay: -1}, nil)
	q := goldenQueries[0]
	key := goldenKey(t, q)
	var owner, other *clusterReplica
	for _, r := range replicas {
		if r.cl.Owns(key) {
			owner = r
		} else {
			other = r
		}
	}

	fillGet := func(base string) int {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/build?"+q, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(cluster.FillHeader, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := fillGet(other.url); code != http.StatusMisdirectedRequest {
		t.Fatalf("fill against non-owner = HTTP %d, want 421", code)
	}
	if other.cb.count(key) != 0 {
		t.Fatal("non-owner built the artifact for a declined fill")
	}
	if code := fillGet(owner.url); code != http.StatusOK {
		t.Fatalf("fill against owner = HTTP %d, want 200", code)
	}
	if owner.cb.count(key) != 1 {
		t.Fatalf("owner build count = %d, want 1", owner.cb.count(key))
	}
}

// TestClusterEndpointSingleNode checks that /v1/cluster exists (and says
// so) without cluster mode, so probes can tell "single node" from "old
// binary".
func TestClusterEndpointSingleNode(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var cs ClusterResponse
	if resp := get(t, ts, "/v1/cluster", &cs); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster: HTTP %d", resp.StatusCode)
	}
	if cs.Enabled {
		t.Fatal("single-node server reports cluster enabled")
	}
}
