package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"

	"ipg/internal/graph"
	"ipg/internal/topo"
)

// MetricsDoc is the machine-readable metrics document for one network
// instance.  It is the single JSON shape shared by the daemon's
// /v1/metrics endpoint and `ipgtool -json`, so scripts can swap between
// the CLI and the service without a second parser.
type MetricsDoc struct {
	Network      string `json:"network"` // instance name, e.g. "HSN(3,Q4)"
	Key          string `json:"key"`     // canonical cache key
	Family       string `json:"family"`  // family name, e.g. "hsn"
	Nodes        int    `json:"nodes"`
	Materialized bool   `json:"materialized"`

	// Representation says how the instance answers adjacency queries —
	// "csr" (materialized arena), "implicit" (rank/unrank codec), or
	// "skeleton" (label-level only) — and BytesPerVertex is the resident
	// cost of that choice (SizeBytes / Nodes): roughly 8 + 4*degree for
	// CSR, asymptotically zero for implicit.
	Representation string  `json:"representation"`
	BytesPerVertex float64 `json:"bytes_per_vertex"`
	SizeBytes      int64   `json:"size_bytes"`

	Super     *SuperMetrics     `json:"super,omitempty"`
	Structure *StructureMetrics `json:"structure,omitempty"`
	MCMP      *MCMPMetrics      `json:"mcmp,omitempty"`
	Implicit  *ImplicitMetrics  `json:"implicit,omitempty"`

	// Diameter is the exact graph diameter, present only when requested
	// (it is an all-pairs BFS and therefore the one optional slow field).
	Diameter *int `json:"diameter,omitempty"`

	// Degraded is the survivability block, present only when the request
	// carried fault parameters.  It is computed per request (never
	// memoized): the fault sample depends on count, mode, and seed.
	Degraded *DegradedMetrics `json:"degraded,omitempty"`
}

// DegradedMetrics reports what survives a sampled failure scenario.
// Diameter and AvgDistance cover the whole alive subgraph and are -1 when
// it is disconnected; the Giant* fields always describe the largest
// surviving component.  The chip fields appear when the family has a chip
// assignment.
type DegradedMetrics struct {
	Mode  string `json:"mode"`
	Count int    `json:"count"`
	Seed  int64  `json:"seed"`

	Alive       int `json:"alive"`
	FailedNodes int `json:"failed_nodes"`
	FailedLinks int `json:"failed_links"`
	FailedChips int `json:"failed_chips,omitempty"`

	Components       int `json:"components"`
	LargestComponent int `json:"largest_component"`

	Diameter         int     `json:"diameter"`
	AvgDistance      float64 `json:"avg_distance"`
	GiantDiameter    int     `json:"giant_diameter"`
	GiantAvgDistance float64 `json:"giant_avg_distance"`

	ChipsTotal     int `json:"chips_total,omitempty"`
	ChipsDead      int `json:"chips_dead,omitempty"`
	ChipsReachable int `json:"chips_reachable,omitempty"`
}

// ImplicitMetrics describes the codec-backed representation of an
// implicit artifact.  The distance metrics are exact and present only
// when the codec proves vertex transitivity (one BFS from vertex 0
// covers the orbit) and the instance is under the sweep cap; they are
// the same quantities a materialized all-sources sweep would report.
type ImplicitMetrics struct {
	Codec            string   `json:"codec"`
	DegreeBound      int      `json:"degree_bound"`
	VertexTransitive bool     `json:"vertex_transitive"`
	Diameter         *int     `json:"diameter,omitempty"`
	AvgDistance      *float64 `json:"avg_distance,omitempty"`
}

// SuperMetrics carries the label-level quantities of super-IPG families.
// The measured fields are present only for materialized instances.
type SuperMetrics struct {
	L           int    `json:"l"`
	M           int    `json:"m"` // nucleus order
	Seed        string `json:"seed"`
	NucleusGens int    `json:"nucleus_gens"`
	SuperGens   int    `json:"super_gens"`

	// Theorem 4.1 / 4.3 quantities from the arrangement BFS, computed
	// when l <= maxArrangementL; the closed-form corollary values are
	// always present (TheoreticalTS is -1 when Corollary 4.4 gives no
	// formula for the family).
	InterclusterT *int `json:"intercluster_t,omitempty"`
	SymmetricTS   *int `json:"symmetric_ts,omitempty"`
	TheoreticalT  int  `json:"theoretical_t"`
	TheoreticalTS int  `json:"theoretical_ts"`

	InterclusterLinks    *int     `json:"intercluster_links,omitempty"`
	InterclusterDegree   *float64 `json:"intercluster_degree,omitempty"`
	InterclusterDiameter *int     `json:"intercluster_diameter,omitempty"`
	AvgInterclusterDist  *float64 `json:"avg_intercluster_distance,omitempty"`
}

// StructureMetrics describes the materialized undirected graph.
type StructureMetrics struct {
	Links     int     `json:"links"`
	DegreeMin int     `json:"degree_min"`
	DegreeMax int     `json:"degree_max"`
	DegreeAvg float64 `json:"degree_avg"`
}

// MCMPMetrics is the MCMP profile (unit chip capacity, w=1) of a
// clustered baseline network, mirroring mcmp.Analysis.
type MCMPMetrics struct {
	Chips                int     `json:"chips"`
	NodesPerChip         int     `json:"nodes_per_chip"`
	OffChipLinks         int     `json:"off_chip_links"`
	LinksPerChip         int     `json:"links_per_chip"`
	InterclusterDegree   float64 `json:"intercluster_degree"`
	InterclusterDiameter int     `json:"intercluster_diameter"`
	AvgInterclusterDist  float64 `json:"avg_intercluster_distance"`
	PerLinkBandwidth     float64 `json:"per_link_bandwidth"`
	BisectionWidth       int     `json:"bisection_width"`
	BisectionBandwidth   float64 `json:"bisection_bandwidth"`
}

// maxArrangementL bounds the Theorem 4.1/4.3 arrangement BFS inside the
// serving layer.  The state space is up to l! * 2^l for complete-CN; at
// l = 8 that is ~10M states, which a request can afford — beyond it the
// document carries only the closed-form corollary values.
const maxArrangementL = 8

// ComputeMetrics assembles the metrics document for a built artifact.
// The expensive pieces (quotient BFS, arrangement BFS) are memoized on
// the artifact, so repeated metric requests against a cached artifact
// are pure reads.  withDiameter additionally runs the all-pairs BFS
// under ctx.
func ComputeMetrics(ctx context.Context, a *Artifact, withDiameter bool) (*MetricsDoc, error) {
	doc := &MetricsDoc{
		Network:        a.Name,
		Key:            a.Params.Key(),
		Family:         a.Params.Net,
		Nodes:          a.N,
		Materialized:   a.Materialized(),
		Representation: a.Rep(),
		SizeBytes:      a.SizeBytes(),
	}
	if a.N > 0 {
		doc.BytesPerVertex = float64(a.SizeBytes()) / float64(a.N)
	}
	if a.Impl != nil {
		im, err := a.implicitMetrics(ctx)
		if err != nil {
			return nil, err
		}
		doc.Implicit = im
	}
	if a.Super() {
		sm, err := a.superMetrics(ctx)
		if err != nil {
			return nil, err
		}
		doc.Super = sm
	}
	if a.Materialized() {
		min, max, avg := a.U.DegreeStats()
		doc.Structure = &StructureMetrics{
			Links:     a.U.M(),
			DegreeMin: min,
			DegreeMax: max,
			DegreeAvg: avg,
		}
	}
	if a.Analysis != nil {
		an := a.Analysis
		doc.MCMP = &MCMPMetrics{
			Chips:                an.Chips,
			NodesPerChip:         an.M,
			OffChipLinks:         an.OffChipLinks,
			LinksPerChip:         an.LinksPerChip,
			InterclusterDegree:   an.InterclusterDeg,
			InterclusterDiameter: an.InterclusterDiam,
			AvgInterclusterDist:  an.AvgInterclusterDst,
			PerLinkBandwidth:     an.PerLinkBW,
			BisectionWidth:       an.BisectionWidth,
			BisectionBandwidth:   an.BisectionBandwidth,
		}
	}
	if withDiameter {
		d, err := a.Diameter(ctx)
		if err != nil {
			return nil, err
		}
		doc.Diameter = &d
	}
	return doc, nil
}

// implicitMetrics computes (once) the implicit-representation block.
// For vertex-transitive codecs under the sweep cap it runs the two
// single-source sweeps (diameter and average distance collapse to one
// BFS each from vertex 0); a ctx error is returned without memoizing so
// a later request with a longer deadline can still succeed.
func (a *Artifact) implicitMetrics(ctx context.Context) (*ImplicitMetrics, error) {
	a.mu.Lock()
	if a.implM != nil {
		im := a.implM
		a.mu.Unlock()
		return im, nil
	}
	a.mu.Unlock()

	im := &ImplicitMetrics{
		Codec:            a.Impl.Codec().Name(),
		DegreeBound:      a.Impl.DegreeBound(),
		VertexTransitive: topo.SourceTransitive(a.Impl),
	}
	if a.sweepableImplicit() {
		d, err := graph.DiameterSourceCtx(ctx, a.Impl)
		if err != nil {
			return nil, err
		}
		avg, err := graph.AverageDistanceSourceCtx(ctx, a.Impl)
		if err != nil {
			return nil, err
		}
		im.Diameter = &d
		im.AvgDistance = &avg
	}

	a.mu.Lock()
	if a.implM == nil {
		a.implM = im
	} else {
		im = a.implM
	}
	a.mu.Unlock()
	return im, nil
}

// superMetrics computes (once) the super-IPG block of the document.  A
// ctx error mid-computation is returned without memoizing, so a later
// request with a longer deadline can still succeed.
func (a *Artifact) superMetrics(ctx context.Context) (*SuperMetrics, error) {
	a.mu.Lock()
	if a.superM != nil {
		sm := a.superM
		a.mu.Unlock()
		return sm, nil
	}
	a.mu.Unlock()

	w := a.W
	sm := &SuperMetrics{
		L:             w.L,
		M:             w.M(),
		Seed:          w.Seed().GroupedString(w.SymbolLen()),
		NucleusGens:   w.NumNucGens(),
		SuperGens:     w.NumSupers(),
		TheoreticalT:  w.TheoreticalInterclusterDiameter(),
		TheoreticalTS: w.TheoreticalSymmetricDiameter(),
	}
	if w.L <= maxArrangementL {
		if t, err := w.InterclusterT(); err == nil {
			sm.InterclusterT = &t
		}
		if ts, err := w.SymmetricTS(); err == nil {
			sm.SymmetricTS = &ts
		}
	}
	if a.Materialized() {
		links := w.InterclusterLinks(a.G)
		deg := w.InterclusterDegree(a.G)
		sm.InterclusterLinks = &links
		sm.InterclusterDegree = &deg
		d, err := w.InterclusterDiameterCtx(ctx, a.G)
		if err != nil {
			return nil, err
		}
		avg, err := w.AvgInterclusterDistanceCtx(ctx, a.G)
		if err != nil {
			return nil, err
		}
		sm.InterclusterDiameter = &d
		sm.AvgInterclusterDist = &avg
	}

	a.mu.Lock()
	if a.superM == nil {
		a.superM = sm
	} else {
		sm = a.superM
	}
	a.mu.Unlock()
	return sm, nil
}

// WriteJSON writes the document as indented JSON.  Both `ipgtool -json`
// and the daemon funnel through this one encoder, keeping the two
// surfaces byte-identical for identical inputs.
func (d *MetricsDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// metricsBody returns the encoded metrics document with its precomputed
// response headers (Content-Length, strong ETag), memoized per
// withDiameter variant: the first request pays for document assembly,
// encoding, and the hash; every later one is a lock and a pointer load.
// The bytes go through the same WriteJSON encoder, so the body stays
// byte-identical to `ipgtool -json`.  Failed computations (cancelled
// contexts) are not memoized.
func (a *Artifact) metricsBody(ctx context.Context, withDiameter bool) (*staticBody, error) {
	idx := 0
	if withDiameter {
		idx = 1
	}
	a.mu.Lock()
	sb := a.metricsMemo[idx]
	a.mu.Unlock()
	if sb != nil {
		return sb, nil
	}
	doc, err := ComputeMetrics(ctx, a, withDiameter)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		return nil, err
	}
	sb = newStaticBody(buf.Bytes())
	a.mu.Lock()
	if a.metricsMemo[idx] == nil {
		a.metricsMemo[idx] = sb
	} else {
		sb = a.metricsMemo[idx]
	}
	a.mu.Unlock()
	return sb, nil
}

// MetricsJSON returns the encoded metrics document body (the memoized
// bytes behind metricsBody), for callers that serve or re-decode the
// document without the HTTP header plumbing.
func (a *Artifact) MetricsJSON(ctx context.Context, withDiameter bool) ([]byte, error) {
	sb, err := a.metricsBody(ctx, withDiameter)
	if err != nil {
		return nil, err
	}
	return sb.body, nil
}
