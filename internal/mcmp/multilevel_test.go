package mcmp

import (
	"testing"

	"ipg/internal/topology"
)

// twoLevelQ6 packages Q6 as 16 chips of 4 nodes on 4 boards of 4 chips.
func twoLevelQ6(t *testing.T) (*TwoLevel, *topology.Hypercube) {
	t.Helper()
	h := topology.NewHypercube(6)
	chipOf := make([]int32, h.N())
	for v := range chipOf {
		chipOf[v] = int32(v >> 2)
	}
	boardOfChip := make([]int32, 16)
	for c := range boardOfChip {
		boardOfChip[c] = int32(c >> 2)
	}
	two, err := NewTwoLevel("Q6/3-tier", h.G, chipOf, boardOfChip)
	if err != nil {
		t.Fatal(err)
	}
	return two, h
}

func TestTwoLevelStructure(t *testing.T) {
	two, h := twoLevelQ6(t)
	if two.Chips != 16 || two.MChip != 4 || two.Boards != 4 || two.ChipsPerBoard != 4 {
		t.Fatalf("structure: %+v", two)
	}
	if two.BoardOfNode(63) != 3 || two.BoardOfNode(0) != 0 {
		t.Error("BoardOfNode wrong")
	}
	// Cross-board links: dimensions 4,5 cross boards: 2 * N/2 = 64.
	if got := two.CrossBoardLinks(); got != 64 {
		t.Errorf("cross-board links = %d, want 64", got)
	}
	_ = h
}

func TestTwoLevelValidation(t *testing.T) {
	h := topology.NewHypercube(4)
	chipOf := make([]int32, h.N())
	for v := range chipOf {
		chipOf[v] = int32(v >> 2)
	}
	if _, err := NewTwoLevel("bad", h.G, chipOf, []int32{0, 0, 1}); err == nil {
		t.Error("wrong boardOfChip length should error")
	}
	if _, err := NewTwoLevel("bad", h.G, chipOf, []int32{0, 0, 0, 1}); err == nil {
		t.Error("uneven boards should error")
	}
	if _, err := NewTwoLevel("bad", h.G, chipOf, []int32{0, 0, 7, 7}); err == nil {
		t.Error("non-dense board ids should error")
	}
	if _, err := NewTwoLevel("ok", h.G, chipOf, []int32{0, 0, 1, 1}); err != nil {
		t.Errorf("valid packaging rejected: %v", err)
	}
}

func TestAnalyzeLevelQ6(t *testing.T) {
	two, _ := twoLevelQ6(t)
	cc, err := two.ChipClustered()
	if err != nil {
		t.Fatal(err)
	}
	chipSide := make([]int8, cc.Chips)
	for c := range chipSide {
		chipSide[c] = int8(c >> 3 & 1)
	}
	chip, err := AnalyzeLevel("chip", cc, chipSide, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Each chip: 4 nodes x 4 off-chip dims = 16 links; per-link bw = 1/4.
	if chip.LinksPerUnit != 16 {
		t.Errorf("links/chip = %d, want 16", chip.LinksPerUnit)
	}
	if chip.BisectionWidth != 32 { // top-bit cut of Q6
		t.Errorf("chip-level width = %d, want 32", chip.BisectionWidth)
	}
	if chip.BisectionBandwidth != 8 { // 32 * 4/16
		t.Errorf("chip-level B_B = %v, want 8", chip.BisectionBandwidth)
	}
	if chip.PerLinkBW != 0.25 {
		t.Errorf("per-link bw = %v, want 0.25", chip.PerLinkBW)
	}

	bc, err := two.BoardClustered()
	if err != nil {
		t.Fatal(err)
	}
	boardSide := []int8{0, 0, 1, 1}
	board, err := AnalyzeLevel("board", bc, boardSide, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Board: 16 nodes x 2 off-board dims = 32 links; bw = 0.5; width 32.
	if board.LinksPerUnit != 32 || board.BisectionWidth != 32 {
		t.Errorf("board level: links=%d width=%d", board.LinksPerUnit, board.BisectionWidth)
	}
	if board.BisectionBandwidth != 16 {
		t.Errorf("board-level B_B = %v, want 16", board.BisectionBandwidth)
	}
	if board.InterUnitDiameter != 2 {
		t.Errorf("board ic diameter = %d, want 2", board.InterUnitDiameter)
	}
	// Unbalanced partition rejected.
	if _, err := AnalyzeLevel("bad", bc, []int8{0, 0, 0, 1}, 16); err == nil {
		t.Error("unbalanced board split should error")
	}
}
