package mcmp

import "math"

// This file collects the closed-form bisection-bandwidth results of
// Section 4.2.  All formulas use w = the average aggregate off-chip
// bandwidth of a node, i.e. a chip's budget is w*M.

// HSNBisectionBandwidth returns Corollary 4.8's closed form for an N-node
// HSN or SFN with M-node nucleus chips and l = log_M(N) super-symbols:
//
//	B_B = w*N*M / (4*(l-1)*(M-1))
func HSNBisectionBandwidth(n, m, l int, w float64) float64 {
	return w * float64(n) * float64(m) / (4 * float64(l-1) * float64(m-1))
}

// HypercubeBisectionBandwidth returns Corollary 4.9's hypercube form:
//
//	B_B = w*N / (2*(log2 N - log2 M))
func HypercubeBisectionBandwidth(n, m int, w float64) float64 {
	return w * float64(n) / (2 * (math.Log2(float64(n)) - math.Log2(float64(m))))
}

// TorusBisectionBandwidth returns Corollary 4.10's form for the
// sqrt(N)-ary 2-cube with M-node square chips:
//
//	B_B = w*sqrt(N*M)/2
func TorusBisectionBandwidth(n, m int, w float64) float64 {
	return w * math.Sqrt(float64(n)*float64(m)) / 2
}

// LowerBoundBisectionBandwidth returns Theorem 4.7's lower bound from the
// average intercluster distance a (for random routing with balanced
// off-chip traffic):
//
//	B_B >= w*N/(4*a)
func LowerBoundBisectionBandwidth(n int, w, avgIC float64) float64 {
	return w * float64(n) / (4 * avgIC)
}

// TrivialUpperBoundBisectionBandwidth returns Corollary 4.11's trivial
// upper bound w*N/2 (every node's whole off-chip budget crossing the cut).
func TrivialUpperBoundBisectionBandwidth(n int, w float64) float64 {
	return w * float64(n) / 2
}

// HSNAvgInterclusterDistance returns the exact average intercluster
// distance of an HSN/SFN with l groups over an M-node nucleus:
// (l-1)(M-1)/M (each of the l-1 non-front groups independently needs one
// intercluster hop unless it already matches, probability 1/M).
func HSNAvgInterclusterDistance(m, l int) float64 {
	return float64(l-1) * float64(m-1) / float64(m)
}

// HypercubeAvgInterclusterDistance returns the average intercluster
// distance of a hypercube with 2^logM-node subcube chips: half the
// off-chip dimensions differ on average: (log2 N - log2 M)/2.
func HypercubeAvgInterclusterDistance(n, m int) float64 {
	return (math.Log2(float64(n)) - math.Log2(float64(m))) / 2
}

// IDCost returns the paper's ID-cost metric: intercluster degree times
// diameter.
func IDCost(interclusterDegree float64, diameter int) float64 {
	return interclusterDegree * float64(diameter)
}

// IICost returns the paper's II-cost metric: intercluster degree times
// intercluster diameter.
func IICost(interclusterDegree float64, icDiameter int) float64 {
	return interclusterDegree * float64(icDiameter)
}
