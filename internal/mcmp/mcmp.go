// Package mcmp implements the paper's multiple chip-multiprocessor (MCMP)
// cost model of Section 4: networks partitioned onto chips (clusters), the
// unit chip capacity model (the sum of the bandwidths of all off-chip links
// of a chip is fixed), intercluster degree/diameter/average-distance, and
// bisection width/bandwidth under the different capacity models.
//
// Under unit chip capacity a chip's off-chip bandwidth budget C is split
// evenly over its off-chip links, so a network with few wide off-chip links
// (a super-IPG) gets more bandwidth per link than one with many narrow ones
// (a hypercube): the root of the paper's headline result.
package mcmp

//lint:file-ignore ctxflow clustered-model constructors are one-shot O(N) passes over graphs bounded by ipg.MaxNodes (1<<22), run inside serve's build worker slot and timeout

import (
	"fmt"

	"ipg/internal/graph"
)

// Model selects the link-capacity normalization of Section 4.
type Model int

const (
	// UnitLink: every link has bandwidth 1 (Section 3's model).
	UnitLink Model = iota
	// UnitNode: each node's total link bandwidth is fixed.
	UnitNode
	// UnitChip: each chip's total off-chip link bandwidth is fixed (the
	// paper's proposed model for MCMPs).
	UnitChip
	// UnitBisection: total bisection bandwidth fixed (Dally's SCMP model).
	UnitBisection
)

func (m Model) String() string {
	switch m {
	case UnitLink:
		return "unit-link"
	case UnitNode:
		return "unit-node"
	case UnitChip:
		return "unit-chip"
	case UnitBisection:
		return "unit-bisection"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Clustered is a network whose nodes are assigned to chips.
type Clustered struct {
	Name      string
	G         *graph.Graph
	ClusterOf []int32
	Chips     int
	M         int // nodes per chip (uniform)
}

// NewClustered validates the assignment (every chip must hold the same
// number of nodes) and returns the clustered network.
func NewClustered(name string, g *graph.Graph, clusterOf []int32) (*Clustered, error) {
	if len(clusterOf) != g.N() {
		return nil, fmt.Errorf("mcmp: clusterOf has %d entries for %d nodes", len(clusterOf), g.N())
	}
	counts := map[int32]int{}
	for _, c := range clusterOf {
		counts[c]++
	}
	m := -1
	for c, cnt := range counts {
		if c < 0 || int(c) >= len(counts) {
			return nil, fmt.Errorf("mcmp: cluster ids must be dense 0..%d, got %d", len(counts)-1, c)
		}
		if m < 0 {
			m = cnt
		} else if cnt != m {
			return nil, fmt.Errorf("mcmp: chip sizes differ (%d vs %d)", m, cnt)
		}
	}
	return &Clustered{Name: name, G: g, ClusterOf: clusterOf, Chips: len(counts), M: m}, nil
}

// OffChipLinks returns the total number of links between distinct chips.
func (c *Clustered) OffChipLinks() int {
	total := 0
	c.G.Edges(func(u, v int) {
		if c.ClusterOf[u] != c.ClusterOf[v] {
			total++
		}
	})
	return total
}

// OffChipLinksPerChip returns the number of off-chip links touching each
// chip.
func (c *Clustered) OffChipLinksPerChip() []int {
	per := make([]int, c.Chips)
	c.G.Edges(func(u, v int) {
		cu, cv := c.ClusterOf[u], c.ClusterOf[v]
		if cu != cv {
			per[cu]++
			per[cv]++
		}
	})
	return per
}

// InterclusterDegree returns the paper's intercluster degree: the maximum
// over chips of the average number of off-chip links per node.
func (c *Clustered) InterclusterDegree() float64 {
	max := 0.0
	for _, links := range c.OffChipLinksPerChip() {
		if d := float64(links) / float64(c.M); d > max {
			max = d
		}
	}
	return max
}

// Quotient returns the chip graph: one vertex per chip, an edge between
// chips joined by at least one link.
func (c *Clustered) Quotient() *graph.Graph {
	q := graph.New(c.Chips)
	c.G.Edges(func(u, v int) {
		cu, cv := c.ClusterOf[u], c.ClusterOf[v]
		if cu != cv {
			q.AddEdge(int(cu), int(cv))
		}
	})
	return q
}

// InterclusterDiameter returns the maximum intercluster distance between
// any pair of nodes, assuming every chip's subgraph is connected (true for
// all the paper's partitions): the quotient graph's diameter.
func (c *Clustered) InterclusterDiameter() int { return c.Quotient().DiameterParallel() }

// AvgInterclusterDistance returns the average intercluster distance over
// ordered node pairs including self pairs; with uniform chip sizes this is
// the quotient graph's average distance.
func (c *Clustered) AvgInterclusterDistance() float64 { return c.Quotient().AverageDistanceParallel() }

// PerOffChipLinkBandwidth returns the bandwidth of one off-chip link under
// the given model, where chipCapacity is the fixed per-chip off-chip
// budget (unit chip), nodeCapacity the fixed per-node budget (unit node).
// It requires a uniform off-chip link count per chip, as holds for every
// network family analysed in the paper.
func (c *Clustered) PerOffChipLinkBandwidth(model Model, capacity float64) (float64, error) {
	per := c.OffChipLinksPerChip()
	links := per[0]
	for _, l := range per {
		if l != links {
			return 0, fmt.Errorf("mcmp: %s has non-uniform off-chip link counts (%d vs %d)", c.Name, links, l)
		}
	}
	switch model {
	case UnitLink:
		return 1, nil
	case UnitChip:
		return capacity / float64(links), nil
	case UnitNode:
		// A node's budget is split over all its links; off-chip links get
		// the same share as on-chip ones.  For regular graphs this is
		// capacity/degree.
		reg, deg := c.G.IsRegular()
		if !reg {
			return 0, fmt.Errorf("mcmp: unit-node model needs a regular graph")
		}
		return capacity / float64(deg), nil
	default:
		return 0, fmt.Errorf("mcmp: per-link bandwidth undefined for model %v", model)
	}
}

// ChipPartitionToNodes expands a partition of chips into a partition of
// nodes (chips are never split, so on-chip links are never cut — matching
// the paper's convention that wide on-chip links are not removed).
func (c *Clustered) ChipPartitionToNodes(chipSide []int8) ([]int8, error) {
	if len(chipSide) != c.Chips {
		return nil, fmt.Errorf("mcmp: chip partition has %d entries for %d chips", len(chipSide), c.Chips)
	}
	side := make([]int8, c.G.N())
	for v := range side {
		side[v] = chipSide[c.ClusterOf[v]]
	}
	return side, nil
}

// OffChipCut counts the off-chip links crossing a node partition.
func (c *Clustered) OffChipCut(side []int8) int {
	cut := 0
	c.G.Edges(func(u, v int) {
		if side[u] != side[v] && c.ClusterOf[u] != c.ClusterOf[v] {
			cut++
		}
	})
	return cut
}

// Analysis collects the MCMP metrics of one network under one bisection.
type Analysis struct {
	Name               string
	N, M, Chips        int
	OffChipLinks       int
	LinksPerChip       int
	InterclusterDeg    float64
	InterclusterDiam   int
	AvgInterclusterDst float64
	PerLinkBW          float64
	BisectionWidth     int
	BisectionBandwidth float64
}

// Analyze computes the full MCMP profile of a clustered network for a given
// chip-level bisection under unit chip capacity with the given per-chip
// budget.
func Analyze(c *Clustered, chipSide []int8, chipCapacity float64) (Analysis, error) {
	if !graph.IsBisection(chipSide) {
		return Analysis{}, fmt.Errorf("mcmp: %s: chip partition is not balanced", c.Name)
	}
	side, err := c.ChipPartitionToNodes(chipSide)
	if err != nil {
		return Analysis{}, err
	}
	bw, err := c.PerOffChipLinkBandwidth(UnitChip, chipCapacity)
	if err != nil {
		return Analysis{}, err
	}
	per := c.OffChipLinksPerChip()
	width := c.OffChipCut(side)
	return Analysis{
		Name:               c.Name,
		N:                  c.G.N(),
		M:                  c.M,
		Chips:              c.Chips,
		OffChipLinks:       c.OffChipLinks(),
		LinksPerChip:       per[0],
		InterclusterDeg:    c.InterclusterDegree(),
		InterclusterDiam:   c.InterclusterDiameter(),
		AvgInterclusterDst: c.AvgInterclusterDistance(),
		PerLinkBW:          bw,
		BisectionWidth:     width,
		BisectionBandwidth: float64(width) * bw,
	}, nil
}
