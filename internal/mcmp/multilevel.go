package mcmp

import (
	"fmt"

	"ipg/internal/graph"
)

// This file implements the extension the paper announces at the end of
// Section 4.2: "even though we assumed only two levels of hierarchy for
// our network performance comparisons in this section, our results and
// methodology can be easily extended to hierarchical parallel
// architectures involving more than two levels."
//
// A TwoLevel packaging places nodes on chips and chips on boards; each
// packaging level has its own link census, intercluster metrics, and
// bisection bandwidth under a fixed per-unit budget (unit chip capacity at
// level 1, unit board capacity at level 2).

// TwoLevel is a three-tier packaging: nodes -> chips -> boards.
type TwoLevel struct {
	Name string
	G    *graph.Graph
	// Chip assignment (level 1).
	ChipOf []int32
	Chips  int
	MChip  int
	// Board assignment per chip (level 2).
	BoardOfChip   []int32
	Boards        int
	ChipsPerBoard int
}

// NewTwoLevel validates a nested packaging: chips uniform in size, boards
// uniform in chip count, and every chip entirely inside one board.
func NewTwoLevel(name string, g *graph.Graph, chipOf, boardOfChip []int32) (*TwoLevel, error) {
	c, err := NewClustered(name, g, chipOf)
	if err != nil {
		return nil, err
	}
	if len(boardOfChip) != c.Chips {
		return nil, fmt.Errorf("mcmp: boardOfChip has %d entries for %d chips", len(boardOfChip), c.Chips)
	}
	counts := map[int32]int{}
	for _, b := range boardOfChip {
		counts[b]++
	}
	per := -1
	for b, cnt := range counts {
		if b < 0 || int(b) >= len(counts) {
			return nil, fmt.Errorf("mcmp: board ids must be dense, got %d", b)
		}
		if per < 0 {
			per = cnt
		} else if cnt != per {
			return nil, fmt.Errorf("mcmp: board sizes differ (%d vs %d chips)", per, cnt)
		}
	}
	return &TwoLevel{
		Name: name, G: g,
		ChipOf: chipOf, Chips: c.Chips, MChip: c.M,
		BoardOfChip: boardOfChip, Boards: len(counts), ChipsPerBoard: per,
	}, nil
}

// BoardOfNode returns the board of node v.
func (t *TwoLevel) BoardOfNode(v int) int32 { return t.BoardOfChip[t.ChipOf[v]] }

// BoardClustered views the boards as one flat clustering of the nodes,
// reusing the single-level machinery for board-level metrics.
func (t *TwoLevel) BoardClustered() (*Clustered, error) {
	boardOf := make([]int32, t.G.N())
	for v := range boardOf {
		boardOf[v] = t.BoardOfNode(v)
	}
	return NewClustered(t.Name+"/boards", t.G, boardOf)
}

// ChipClustered views the chips as the flat clustering (level 1).
func (t *TwoLevel) ChipClustered() (*Clustered, error) {
	return NewClustered(t.Name+"/chips", t.G, t.ChipOf)
}

// LevelProfile summarizes one packaging level.
type LevelProfile struct {
	Level              string
	Units              int
	NodesPerUnit       int
	LinksPerUnit       int // off-unit links touching each unit (uniform)
	InterUnitDegree    float64
	InterUnitDiameter  int
	AvgInterUnitDist   float64
	PerLinkBW          float64
	BisectionWidth     int
	BisectionBandwidth float64
}

// AnalyzeLevel profiles one level given its flat clustering, a unit-level
// bisection, and the per-unit budget.  Unlike Analyze it tolerates
// non-uniform off-unit link counts (recursive super-IPGs have slightly
// fewer links on units whose higher-level generator actions are
// self-loops): each unit splits its budget over its own links, and a cut
// link's usable bandwidth is the minimum of its two endpoint allocations.
func AnalyzeLevel(level string, c *Clustered, unitSide []int8, unitCapacity float64) (LevelProfile, error) {
	if !graph.IsBisection(unitSide) {
		return LevelProfile{}, fmt.Errorf("mcmp: %s: unit partition is not balanced", c.Name)
	}
	side, err := c.ChipPartitionToNodes(unitSide)
	if err != nil {
		return LevelProfile{}, err
	}
	per := c.OffChipLinksPerChip()
	maxLinks := 0
	for _, l := range per {
		if l > maxLinks {
			maxLinks = l
		}
	}
	bwOf := func(chip int32) float64 { return unitCapacity / float64(per[chip]) }
	width := 0
	bandwidth := 0.0
	var bwSum float64
	var bwCount int
	c.G.Edges(func(u, v int) {
		cu, cv := c.ClusterOf[u], c.ClusterOf[v]
		if cu == cv {
			return
		}
		bw := bwOf(cu)
		if b2 := bwOf(cv); b2 < bw {
			bw = b2
		}
		bwSum += bw
		bwCount++
		if side[u] != side[v] {
			width++
			bandwidth += bw
		}
	})
	avgBW := 0.0
	if bwCount > 0 {
		avgBW = bwSum / float64(bwCount)
	}
	return LevelProfile{
		Level:              level,
		Units:              c.Chips,
		NodesPerUnit:       c.M,
		LinksPerUnit:       maxLinks,
		InterUnitDegree:    c.InterclusterDegree(),
		InterUnitDiameter:  c.InterclusterDiameter(),
		AvgInterUnitDist:   c.AvgInterclusterDistance(),
		PerLinkBW:          avgBW,
		BisectionWidth:     width,
		BisectionBandwidth: bandwidth,
	}, nil
}

// CrossBoardLinks counts links joining distinct boards (the level-2
// analogue of OffChipLinks).
func (t *TwoLevel) CrossBoardLinks() int {
	total := 0
	t.G.Edges(func(u, v int) {
		if t.BoardOfNode(u) != t.BoardOfNode(v) {
			total++
		}
	})
	return total
}
