package mcmp

import (
	"math"
	"testing"

	"ipg/internal/graph"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topology"
)

func TestWorkedExample12Cube(t *testing.T) {
	// Section 4.2: "a 12-cube with 16-node chips (for a total of 256
	// chips) has off-chip bandwidth w/8 per link and has bisection width
	// 2048 and bisection bandwidth 256w".  Chip budget C = 16w.
	const w = 1.0
	h := topology.NewHypercube(12)
	c, err := ClusterHypercube(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Chips != 256 || c.M != 16 {
		t.Fatalf("chips=%d M=%d", c.Chips, c.M)
	}
	a, err := Analyze(c, HypercubeBisection(c), 16*w)
	if err != nil {
		t.Fatal(err)
	}
	if a.LinksPerChip != 128 {
		t.Errorf("links/chip = %d, want 128", a.LinksPerChip)
	}
	if a.PerLinkBW != w/8 {
		t.Errorf("per-link bandwidth = %v, want w/8", a.PerLinkBW)
	}
	if a.BisectionWidth != 2048 {
		t.Errorf("bisection width = %d, want 2048", a.BisectionWidth)
	}
	if a.BisectionBandwidth != 256*w {
		t.Errorf("bisection bandwidth = %v, want 256w", a.BisectionBandwidth)
	}
	// Closed form agrees.
	if f := HypercubeBisectionBandwidth(4096, 16, w); math.Abs(f-256*w) > 1e-9 {
		t.Errorf("closed form = %v", f)
	}
	// "The average intercluster distance of a 12-cube is exactly 4 when a
	// cluster has 16 nodes."
	if got := c.AvgInterclusterDistance(); got != 4.0 {
		t.Errorf("avg intercluster distance = %v, want 4", got)
	}
	if got := HypercubeAvgInterclusterDistance(4096, 16); got != 4.0 {
		t.Errorf("closed-form avg IC distance = %v", got)
	}
}

func TestWorkedExample10Cube(t *testing.T) {
	// "a 10-cube with 4-node chips (for a total of 256 chips too) has
	// off-chip bandwidth w/2 per link and has bisection width 512 and
	// bisection bandwidth 256w" — same chips, so the same budget C = 16w.
	const w = 1.0
	h := topology.NewHypercube(10)
	c, err := ClusterHypercube(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Chips != 256 {
		t.Fatalf("chips = %d", c.Chips)
	}
	a, err := Analyze(c, HypercubeBisection(c), 16*w)
	if err != nil {
		t.Fatal(err)
	}
	if a.PerLinkBW != w/2 {
		t.Errorf("per-link bandwidth = %v, want w/2", a.PerLinkBW)
	}
	if a.BisectionWidth != 512 {
		t.Errorf("bisection width = %d, want 512", a.BisectionWidth)
	}
	if a.BisectionBandwidth != 256*w {
		t.Errorf("bisection bandwidth = %v, want 256w", a.BisectionBandwidth)
	}
}

func TestWorkedExampleHSN3Q4(t *testing.T) {
	// "an HSN(3,Q4) with 16-node chips (for a total of 256 chips) has
	// off-chip bandwidth 8w/15 per link, has bisection width 1024 (without
	// cutting any nucleus), and has bisection bandwidth 8192w/15 > 512w".
	const w = 1.0
	net := superipg.HSN(3, nucleus.Hypercube(4))
	g := net.MustBuild()
	c, err := ClusterSuperIPG(net, g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Chips != 256 || c.M != 16 {
		t.Fatalf("chips=%d M=%d", c.Chips, c.M)
	}
	chipSide, err := SuperIPGBisection(net, g, c)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(c, chipSide, 16*w)
	if err != nil {
		t.Fatal(err)
	}
	if a.LinksPerChip != 30 {
		t.Errorf("links/chip = %d, want 30", a.LinksPerChip)
	}
	if math.Abs(a.PerLinkBW-8.0/15.0) > 1e-12 {
		t.Errorf("per-link bandwidth = %v, want 8w/15", a.PerLinkBW)
	}
	if a.BisectionWidth != 1024 {
		t.Errorf("bisection width = %d, want 1024", a.BisectionWidth)
	}
	if math.Abs(a.BisectionBandwidth-8192.0/15.0) > 1e-9 {
		t.Errorf("bisection bandwidth = %v, want 8192w/15", a.BisectionBandwidth)
	}
	if a.BisectionBandwidth <= 512*w {
		t.Error("HSN bandwidth should exceed 512w (double the hypercube's)")
	}
	// Closed form of Corollary 4.8.
	if f := HSNBisectionBandwidth(4096, 16, 3, w); math.Abs(f-a.BisectionBandwidth) > 1e-9 {
		t.Errorf("closed form %v != measured %v", f, a.BisectionBandwidth)
	}
	// Theorem 4.7 lower bound holds and is tight here.
	lb := LowerBoundBisectionBandwidth(4096, w, a.AvgInterclusterDst)
	if a.BisectionBandwidth < lb-1e-9 {
		t.Errorf("bandwidth %v below Theorem 4.7 bound %v", a.BisectionBandwidth, lb)
	}
	if math.Abs(a.AvgInterclusterDst-HSNAvgInterclusterDistance(16, 3)) > 1e-12 {
		t.Errorf("avg IC distance = %v, want %v", a.AvgInterclusterDst, HSNAvgInterclusterDistance(16, 3))
	}
}

func TestTorusCorollary410(t *testing.T) {
	// 16-ary 2-cube with 4x4-node chips: W_B = 2k = 32, per-link w*sqrt(M)/4,
	// B_B = w*sqrt(N*M)/2 = 32w.
	const w = 1.0
	tor := topology.NewTorus(16, 2)
	c, err := ClusterTorus2D(tor, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(c, Torus2DBisection(tor, c, 4), 16*w)
	if err != nil {
		t.Fatal(err)
	}
	if a.BisectionWidth != 32 {
		t.Errorf("torus bisection width = %d, want 32", a.BisectionWidth)
	}
	if math.Abs(a.PerLinkBW-1.0) > 1e-12 { // w*sqrt(16)/4 = w
		t.Errorf("per-link = %v, want 1", a.PerLinkBW)
	}
	want := TorusBisectionBandwidth(256, 16, w)
	if math.Abs(a.BisectionBandwidth-want) > 1e-9 {
		t.Errorf("torus bandwidth = %v, want %v", a.BisectionBandwidth, want)
	}
}

func TestCCCClustering(t *testing.T) {
	const w = 1.0
	ccc := topology.NewCCC(4)
	c, err := ClusterCCC(ccc)
	if err != nil {
		t.Fatal(err)
	}
	if c.M != 4 || c.Chips != 16 {
		t.Fatalf("CCC chips=%d M=%d", c.Chips, c.M)
	}
	// Every node has exactly one off-chip (cube) link.
	if d := c.InterclusterDegree(); d != 1.0 {
		t.Errorf("CCC intercluster degree = %v, want 1", d)
	}
	a, err := Analyze(c, CCCBisection(ccc, c), 4*w)
	if err != nil {
		t.Fatal(err)
	}
	// Top-bit cut: 2^(d-1) = 8 cube links.
	if a.BisectionWidth != 8 {
		t.Errorf("CCC bisection width = %d, want 8", a.BisectionWidth)
	}
	// Per-link = C/4 = w: B_B = 8w = wN/(2d).
	if math.Abs(a.BisectionBandwidth-8*w) > 1e-9 {
		t.Errorf("CCC bandwidth = %v, want 8w", a.BisectionBandwidth)
	}
}

func TestButterflyClustering(t *testing.T) {
	const w = 1.0
	b := topology.NewButterfly(4)
	c, err := ClusterButterfly(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.M != 8 || c.Chips != 8 {
		t.Fatalf("WBF chips=%d M=%d", c.Chips, c.M)
	}
	// Links per chip: 2^(a+2) = 16; intercluster degree 4/a = 2.
	if d := c.InterclusterDegree(); d != 2.0 {
		t.Errorf("butterfly intercluster degree = %v, want 2", d)
	}
	side, err := ButterflyBisection(b, c, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(c, side, 8*w)
	if err != nil {
		t.Fatal(err)
	}
	// Two seams x 2^(d+1) = 64 links.
	if a.BisectionWidth != 64 {
		t.Errorf("butterfly band-cut width = %d, want 64", a.BisectionWidth)
	}
	// B_B = w*a*2^d = 2*16w = 32w.
	if math.Abs(a.BisectionBandwidth-32*w) > 1e-9 {
		t.Errorf("butterfly bandwidth = %v, want 32w", a.BisectionBandwidth)
	}
}

func TestCorollary411Optimality(t *testing.T) {
	// For l = 2 and l = 3, HSN/SFN bandwidth is within a factor < 2l-2 of
	// the trivial bound wN/2 (l=2: ratio < 2; l=3: ratio < 4).
	const w = 1.0
	for _, l := range []int{2, 3} {
		net := superipg.HSN(l, nucleus.Hypercube(3))
		g := net.MustBuild()
		c, err := ClusterSuperIPG(net, g)
		if err != nil {
			t.Fatal(err)
		}
		side, err := SuperIPGBisection(net, g, c)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(c, side, float64(c.M)*w)
		if err != nil {
			t.Fatal(err)
		}
		upper := TrivialUpperBoundBisectionBandwidth(g.N(), w)
		ratio := upper / a.BisectionBandwidth
		var bound float64
		if l == 2 {
			bound = 2
		} else {
			bound = 4
		}
		if ratio >= bound {
			t.Errorf("l=%d: ratio %v, want < %v", l, ratio, bound)
		}
	}
}

func TestSuperIPGBisectionCutsQuarter(t *testing.T) {
	// The group-2 partition cuts exactly N/4 links in HSN and SFN.
	for _, build := range []func() *superipg.Network{
		func() *superipg.Network { return superipg.HSN(3, nucleus.Hypercube(2)) },
		func() *superipg.Network { return superipg.SFN(3, nucleus.Hypercube(2)) },
	} {
		net := build()
		g := net.MustBuild()
		c, err := ClusterSuperIPG(net, g)
		if err != nil {
			t.Fatal(err)
		}
		side, err := SuperIPGBisection(net, g, c)
		if err != nil {
			t.Fatal(err)
		}
		nodes, err := c.ChipPartitionToNodes(side)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsBisection(nodes) {
			t.Fatalf("%s: group-2 split unbalanced", net.Name())
		}
		if cut := c.OffChipCut(nodes); cut != g.N()/4 {
			t.Errorf("%s: cut = %d, want N/4 = %d", net.Name(), cut, g.N()/4)
		}
	}
}

func TestRefinerCannotBeatStructuredHSNCut(t *testing.T) {
	// Sanity: local search from the structured partition does not find a
	// smaller off-chip... the refiner works on all links; here we check the
	// structured cut is at least locally minimal for the full graph.
	net := superipg.HSN(2, nucleus.Hypercube(2))
	g := net.MustBuild()
	u := g.Undirected()
	c, _ := ClusterSuperIPG(net, g)
	side, _ := SuperIPGBisection(net, g, c)
	nodes, _ := c.ChipPartitionToNodes(side)
	refined, cut := u.RefineBisection(nodes, 100)
	if !graph.IsBisection(refined) {
		t.Fatal("refiner broke balance")
	}
	if cut > u.CutSize(nodes) {
		t.Error("refiner made the cut worse")
	}
}

func TestNewClusteredValidation(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	if _, err := NewClustered("bad", g, []int32{0, 0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewClustered("bad", g, []int32{0, 0, 0, 1}); err == nil {
		t.Error("uneven chips should error")
	}
	if _, err := NewClustered("bad", g, []int32{0, 0, 5, 5}); err == nil {
		t.Error("non-dense ids should error")
	}
	if _, err := NewClustered("ok", g, []int32{0, 0, 1, 1}); err != nil {
		t.Errorf("valid clustering rejected: %v", err)
	}
}

func TestUnitNodeLinkWidthFactor(t *testing.T) {
	// Section 4.1: under unit node capacity, a link of an HSN(l,Q_n) has
	// bandwidth higher than an nl-cube's link by Theta(sqrt(log N)) when
	// l = Theta(n): per-link bw = w/degree, and degree(HSN) = n+l-1 vs
	// degree(cube) = n*l.
	for n := 2; n <= 6; n++ {
		l := n
		// Pure degree arithmetic (the networks would have up to 2^36
		// nodes); the generator-count degrees are what the paper's
		// argument uses.
		hsnDeg := float64(n + l - 1)
		cubeDeg := float64(n * l)
		factor := cubeDeg / hsnDeg
		// Theta(sqrt(log N)): sqrt(n*l) = n here; factor = n^2/(2n-1) ~ n/2.
		lo, hi := float64(n)/2.5, float64(n)
		if factor < lo || factor > hi {
			t.Errorf("n=l=%d: link width factor %v outside [%v,%v]", n, factor, lo, hi)
		}
	}
}

func TestModelString(t *testing.T) {
	if UnitChip.String() != "unit-chip" || UnitLink.String() != "unit-link" {
		t.Error("model names wrong")
	}
}

func TestIDAndIICost(t *testing.T) {
	if IDCost(2.5, 4) != 10 || IICost(1.5, 2) != 3 {
		t.Error("cost metrics wrong")
	}
}

func TestPerLinkBandwidthModels(t *testing.T) {
	h := topology.NewHypercube(4)
	c, err := ClusterHypercube(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bw, err := c.PerOffChipLinkBandwidth(UnitLink, 99); err != nil || bw != 1 {
		t.Errorf("unit-link = %v, %v", bw, err)
	}
	if bw, err := c.PerOffChipLinkBandwidth(UnitNode, 4); err != nil || bw != 1 {
		t.Errorf("unit-node = %v, %v (Q4 degree 4)", bw, err)
	}
	if _, err := c.PerOffChipLinkBandwidth(UnitBisection, 1); err == nil {
		t.Error("unit-bisection per-link should be undefined")
	}
}
