package mcmp

//lint:file-ignore ctxflow partition tables are one-shot O(N) fills over node counts bounded by ipg.MaxNodes, built under serve's build timeout

import (
	"fmt"

	"ipg/internal/ipg"
	"ipg/internal/superipg"
	"ipg/internal/topology"
)

// This file supplies the chip assignments and the structured bisections the
// paper analyses for each network family.  Structured bisections never cut
// a chip: they are partitions of the chips.

//lint:file-ignore indextrunc chip and node ids here are bounded by the source network's node count, capped at topology.MaxNodes / ipg.MaxNodes (1<<22)

// ClusterHypercube puts each 2^logM-node subcube (low address bits) on one
// chip.
func ClusterHypercube(h *topology.Hypercube, logM int) (*Clustered, error) {
	if logM < 0 || logM >= h.D {
		return nil, fmt.Errorf("mcmp: logM %d out of range for Q%d", logM, h.D)
	}
	clusterOf := make([]int32, h.N())
	for v := range clusterOf {
		clusterOf[v] = int32(v >> logM)
	}
	return NewClustered(fmt.Sprintf("Q%d/%d-node-chips", h.D, 1<<logM), h.G, clusterOf)
}

// HypercubeBisection splits the hypercube's chips by the top address bit:
// the canonical N/2-link bisection.
func HypercubeBisection(c *Clustered) []int8 {
	side := make([]int8, c.Chips)
	for chip := range side {
		side[chip] = int8(chip >> (log2(c.Chips) - 1) & 1)
	}
	return side
}

// ClusterTorus2D puts side x side sub-blocks of the k-ary 2-cube on chips
// (side must divide k).
func ClusterTorus2D(t *topology.Torus, side int) (*Clustered, error) {
	if t.Dims != 2 {
		return nil, fmt.Errorf("mcmp: ClusterTorus2D needs a 2-cube, got %d dims", t.Dims)
	}
	if side < 1 || t.K%side != 0 {
		return nil, fmt.Errorf("mcmp: chip side %d must divide k=%d", side, t.K)
	}
	chipsPerRow := t.K / side
	clusterOf := make([]int32, t.N())
	for v := range clusterOf {
		x, y := t.Digit(v, 0), t.Digit(v, 1)
		clusterOf[v] = int32((y/side)*chipsPerRow + x/side)
	}
	return NewClustered(fmt.Sprintf("%s/%d-node-chips", t.Name(), side*side), t.G, clusterOf)
}

// Torus2DBisection cuts the torus into left and right halves of chip
// columns: 2k links cut (both the middle seam and the wraparound seam).
func Torus2DBisection(t *topology.Torus, c *Clustered, side int) []int8 {
	chipsPerRow := t.K / side
	sideOf := make([]int8, c.Chips)
	for chip := range sideOf {
		if chip%chipsPerRow < chipsPerRow/2 {
			sideOf[chip] = 0
		} else {
			sideOf[chip] = 1
		}
	}
	return sideOf
}

// ClusterCCC puts each d-cycle on one chip (M = d), giving every node
// exactly one off-chip link: the constant intercluster degree the paper
// cites for CCC.
func ClusterCCC(ccc *topology.CCC) (*Clustered, error) {
	clusterOf := make([]int32, ccc.N())
	for v := range clusterOf {
		clusterOf[v] = int32(ccc.CubeAddr(v))
	}
	return NewClustered(fmt.Sprintf("CCC(%d)/cycle-chips", ccc.D), ccc.G, clusterOf)
}

// CCCBisection splits the CCC by the top cube-address bit.
func CCCBisection(ccc *topology.CCC, c *Clustered) []int8 {
	side := make([]int8, c.Chips)
	for chip := range side {
		side[chip] = int8(chip >> (ccc.D - 1) & 1)
	}
	return side
}

// ClusterButterfly partitions the wrapped butterfly WBF(d) into
// sub-butterflies of "a" consecutive levels (a must divide d): the chip of
// node (row, lev) is determined by the level band and the row bits outside
// the band.  Each chip holds a*2^a nodes and only its boundary levels have
// off-chip links, realizing the low intercluster degree the paper cites
// from its butterfly-partitioning work [32].
func ClusterButterfly(b *topology.Butterfly, a int) (*Clustered, error) {
	if a < 1 || b.D%a != 0 {
		return nil, fmt.Errorf("mcmp: band width %d must divide d=%d", a, b.D)
	}
	bands := b.D / a
	chipIdx := map[string]int32{}
	clusterOf := make([]int32, b.N())
	for v := range clusterOf {
		row, lev := b.Row(v), b.Level(v)
		band := lev / a
		// Zero the row bits whose cross edges live inside this band.
		mask := ((1 << a) - 1) << (band * a)
		key := fmt.Sprintf("%d:%d", band, row&^mask)
		id, ok := chipIdx[key]
		if !ok {
			id = int32(len(chipIdx))
			chipIdx[key] = id
		}
		clusterOf[v] = id
	}
	c, err := NewClustered(fmt.Sprintf("WBF(%d)/band-%d-chips", b.D, a), b.G, clusterOf)
	if err != nil {
		return nil, err
	}
	if c.Chips != bands<<(b.D-a) {
		return nil, fmt.Errorf("mcmp: butterfly chip count %d, want %d", c.Chips, bands<<(b.D-a))
	}
	return c, nil
}

// ButterflyBisection splits the wrapped butterfly's chips by level band:
// the first half of the bands on one side.  No row-bit split can avoid
// cutting chips (every row bit is owned by exactly one band, whose chips
// mix both values of it), so the band split is the natural chip-respecting
// bisection; it cuts the two band seams, 2^(d+1) links each, which is
// within a constant factor of the butterfly's Theta(N/log N) bisection
// width and realizes Corollary 4.9's Theta(wN/log_M N) bandwidth.
func ButterflyBisection(b *topology.Butterfly, c *Clustered, a int) ([]int8, error) {
	bands := b.D / a
	if bands%2 != 0 {
		return nil, fmt.Errorf("mcmp: band split needs an even number of bands, got %d", bands)
	}
	side := make([]int8, c.Chips)
	for v := 0; v < b.N(); v++ {
		band := b.Level(v) / a
		s := int8(0)
		if band >= bands/2 {
			s = 1
		}
		side[c.ClusterOf[v]] = s
	}
	return side, nil
}

// ClusterSuperIPG puts each nucleus copy of a materialized super-IPG on one
// chip.
func ClusterSuperIPG(w *superipg.Network, g *ipg.Graph) (*Clustered, error) {
	clusterOf, _ := w.Clusters(g)
	return NewClustered(w.Name(), g.Undirected(), clusterOf)
}

// SuperIPGBisection splits the super-IPG by the value of group 2: nodes
// whose second super-symbol encodes a nucleus address below M/2 go to side
// 0.  For HSN and SFN this cuts exactly N/4 links (only the T2/F2 links
// whose two labels disagree on the predicate), the partition behind
// Corollary 4.8.
func SuperIPGBisection(w *superipg.Network, g *ipg.Graph, c *Clustered) ([]int8, error) {
	m := w.SymbolLen()
	half := w.Nuc.M / 2
	side := make([]int8, c.Chips)
	assigned := make([]bool, c.Chips)
	for v := 0; v < g.N(); v++ {
		addr2, err := w.Nuc.AddressOf(g.Label(v).Group(m, 1))
		if err != nil {
			return nil, err
		}
		s := int8(0)
		if addr2 >= half {
			s = 1
		}
		chip := c.ClusterOf[v]
		if assigned[chip] && side[chip] != s {
			return nil, fmt.Errorf("mcmp: group-2 split cut a chip, which cannot happen")
		}
		side[chip] = s
		assigned[chip] = true
	}
	return side, nil
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
