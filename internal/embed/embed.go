// Package embed implements the concrete graph embeddings behind
// Corollary 3.4 of the paper: "If a graph can be embedded in an
// ln-dimensional hypercube with constant dilation, then the graph can be
// embedded with constant dilation in an HCN, HFN, complete-CN, SFN, RCC,
// or RHSN."
//
// The package provides the classic constant-dilation hypercube embeddings
// — rings via Gray codes (dilation 1), multi-dimensional meshes/tori via
// products of Gray codes (dilation 1 for power-of-two sides), and complete
// binary trees via the inorder labelling (dilation 2) — and composes them
// with the identity HPN-to-super-IPG embedding of Theorem 3.1 (dilation
// t+1 = 3) to produce verified constant-dilation embeddings into any
// hypercube-nucleus super-IPG.
package embed

import (
	"fmt"

	"ipg/internal/graph"
	"ipg/internal/ipg"
	"ipg/internal/superipg"
)

// Embedding maps guest vertices to host vertices (injectively for the
// embeddings built here).
type Embedding struct {
	GuestName string
	Guest     *graph.Graph
	// Map[u] is the host vertex of guest vertex u.
	Map []int
}

// Validate checks injectivity and host-range.
func (e *Embedding) Validate(hostN int) error {
	if len(e.Map) != e.Guest.N() {
		return fmt.Errorf("embed: map covers %d of %d guest vertices", len(e.Map), e.Guest.N())
	}
	seen := make(map[int]bool, len(e.Map))
	for u, h := range e.Map {
		if h < 0 || h >= hostN {
			return fmt.Errorf("embed: guest %d maps to out-of-range host %d", u, h)
		}
		if seen[h] {
			return fmt.Errorf("embed: host %d used twice", h)
		}
		seen[h] = true
	}
	return nil
}

// Dilation returns the maximum host distance between images of adjacent
// guest vertices, given the host distance oracle.
func (e *Embedding) Dilation(hostDist func(a, b int) int) int {
	max := 0
	e.Guest.Edges(func(u, v int) {
		if d := hostDist(e.Map[u], e.Map[v]); d > max {
			max = d
		}
	})
	return max
}

// GrayCode returns the n-th binary reflected Gray code value.
func GrayCode(n int) int { return n ^ (n >> 1) }

// Ring returns the 2^d-node ring embedded in the d-cube with dilation 1
// via the binary reflected Gray code.
func Ring(d int) *Embedding {
	n := 1 << d
	g := graph.New(n)
	m := make([]int, n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
		m[i] = GrayCode(i)
	}
	return &Embedding{GuestName: fmt.Sprintf("ring(%d)", n), Guest: g, Map: m}
}

// Mesh returns the 2^a x 2^b mesh (with optional wraparound) embedded in
// the (a+b)-cube with dilation 1 via a product of Gray codes.
func Mesh(a, b int, wrap bool) *Embedding {
	rows, cols := 1<<a, 1<<b
	n := rows * cols
	g := graph.New(n)
	m := make([]int, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			} else if wrap && cols > 2 {
				g.AddEdge(id(r, c), id(r, 0))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			} else if wrap && rows > 2 {
				g.AddEdge(id(r, c), id(0, c))
			}
			m[id(r, c)] = GrayCode(r)<<b | GrayCode(c)
		}
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
	}
	return &Embedding{GuestName: fmt.Sprintf("%s(%dx%d)", kind, rows, cols), Guest: g, Map: m}
}

// CompleteBinaryTree returns the (2^d - 1)-node complete binary tree
// embedded in the d-cube with dilation 2 via the inorder numbering
// (adjacent tree nodes' inorder indices differ by a power of two, or by
// two hypercube steps at the root levels).
func CompleteBinaryTree(d int) *Embedding {
	n := 1<<d - 1
	g := graph.New(n)
	m := make([]int, n)
	// Heap indexing 1..n; inorder position of heap node i at depth k.
	var inorder func(heap, lo, hi int)
	inorder = func(heap, lo, hi int) {
		mid := (lo + hi) / 2
		m[heap-1] = mid
		if 2*heap <= n {
			g.AddEdge(heap-1, 2*heap-1)
			g.AddEdge(heap-1, 2*heap)
			inorder(2*heap, lo, mid-1)
			inorder(2*heap+1, mid+1, hi)
		}
	}
	inorder(1, 0, n-1)
	return &Embedding{GuestName: fmt.Sprintf("tree(%d)", n), Guest: g, Map: m}
}

// IntoSuperIPG composes a hypercube embedding with the identity
// label-space embedding of the ln-cube into a hypercube-nucleus super-IPG
// (the HPN(l, Q_n) of Theorem 3.1): host vertex h of the cube maps to the
// super-IPG node whose address is h.  The composition multiplies dilation
// by at most the SDC slowdown (3 for HSN/complete-CN/SFN), per Corollary
// 3.4.
func IntoSuperIPG(e *Embedding, w *superipg.Network, g *ipg.Graph) (*Embedding, error) {
	logN := 0
	for 1<<logN < g.N() {
		logN++
	}
	if 1<<logN != g.N() {
		return nil, fmt.Errorf("embed: super-IPG size %d not a power of two", g.N())
	}
	out := &Embedding{
		GuestName: e.GuestName + "->" + w.Name(),
		Guest:     e.Guest,
		Map:       make([]int, len(e.Map)),
	}
	for u, h := range e.Map {
		lbl, err := w.LabelOf(h)
		if err != nil {
			return nil, err
		}
		id := g.NodeID(lbl)
		if id < 0 {
			return nil, fmt.Errorf("embed: address %d has no node in %s", h, w.Name())
		}
		out.Map[u] = id
	}
	return out, nil
}

// HypercubeDistance is the host distance oracle for cube embeddings.
func HypercubeDistance(a, b int) int {
	d := 0
	for x := a ^ b; x != 0; x &= x - 1 {
		d++
	}
	return d
}

// MeasureDilation computes the dilation of an embedding into a
// materialized graph by multi-source BFS from every image vertex that has
// guest edges (exact, O(guest-N * (host-N + host-M))).
func MeasureDilation(e *Embedding, host *graph.Graph) (int, error) {
	if err := e.Validate(host.N()); err != nil {
		return 0, err
	}
	max := 0
	// BFS once per distinct source image.
	distCache := map[int][]int32{}
	var lastErr error
	e.Guest.Edges(func(u, v int) {
		src := e.Map[u]
		dist, ok := distCache[src]
		if !ok {
			dist = host.BFS(src)
			distCache[src] = dist
		}
		d := dist[e.Map[v]]
		if d < 0 {
			lastErr = fmt.Errorf("embed: images %d,%d disconnected", e.Map[u], e.Map[v])
			return
		}
		if int(d) > max {
			max = int(d)
		}
	})
	return max, lastErr
}
