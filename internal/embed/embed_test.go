package embed

import (
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

func TestGrayCodeRing(t *testing.T) {
	for d := 2; d <= 8; d++ {
		e := Ring(d)
		if err := e.Validate(1 << d); err != nil {
			t.Fatal(err)
		}
		if dil := e.Dilation(HypercubeDistance); dil != 1 {
			t.Errorf("ring in Q%d: dilation %d, want 1", d, dil)
		}
	}
}

func TestMeshEmbedding(t *testing.T) {
	for _, wrap := range []bool{false, true} {
		e := Mesh(3, 4, wrap)
		if err := e.Validate(1 << 7); err != nil {
			t.Fatal(err)
		}
		if dil := e.Dilation(HypercubeDistance); dil != 1 {
			t.Errorf("%s: dilation %d, want 1", e.GuestName, dil)
		}
	}
}

func TestTreeEmbedding(t *testing.T) {
	for d := 2; d <= 8; d++ {
		e := CompleteBinaryTree(d)
		if err := e.Validate(1 << d); err != nil {
			t.Fatal(err)
		}
		if e.Guest.N() != 1<<d-1 || e.Guest.M() != 1<<d-2 {
			t.Fatalf("tree(%d): n=%d m=%d", d, e.Guest.N(), e.Guest.M())
		}
		dil := e.Dilation(HypercubeDistance)
		if dil > 2 {
			t.Errorf("tree in Q%d: dilation %d, want <= 2", d, dil)
		}
	}
}

func TestCorollary34Composition(t *testing.T) {
	// Ring, mesh, and tree embedded into super-IPGs through the
	// ln-dimensional hypercube: dilation at most 3x the cube dilation.
	hosts := []*superipg.Network{
		superipg.HSN(3, nucleus.Hypercube(2)),
		superipg.CompleteCN(3, nucleus.Hypercube(2)),
		superipg.SFN(3, nucleus.Hypercube(2)),
		superipg.HCN(3),
		superipg.HFN(3),
	}
	for _, w := range hosts {
		g, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		u := g.Undirected()
		logN := 0
		for 1<<logN < g.N() {
			logN++
		}
		guests := []*Embedding{
			Ring(logN),
			Mesh(logN/2, logN-logN/2, true),
			CompleteBinaryTree(logN),
		}
		for _, e := range guests {
			cubeDil := e.Dilation(HypercubeDistance)
			comp, err := IntoSuperIPG(e, w, g)
			if err != nil {
				t.Fatal(err)
			}
			dil, err := MeasureDilation(comp, u)
			if err != nil {
				t.Fatal(err)
			}
			if dil > 3*cubeDil {
				t.Errorf("%s: dilation %d > 3x cube dilation %d", comp.GuestName, dil, cubeDil)
			}
			if dil < 1 {
				t.Errorf("%s: degenerate dilation %d", comp.GuestName, dil)
			}
		}
	}
}

func TestValidateCatchesBadMaps(t *testing.T) {
	e := Ring(3)
	e.Map[0] = e.Map[1]
	if err := e.Validate(8); err == nil {
		t.Error("duplicate image should fail validation")
	}
	e2 := Ring(3)
	e2.Map[0] = 99
	if err := e2.Validate(8); err == nil {
		t.Error("out-of-range image should fail validation")
	}
}
