// Package perm implements permutations on index positions and labelled
// symbol strings, the algebraic substrate of the index-permutation graph
// (IPG) model of Yeh & Parhami.
//
// A Perm p of size n acts on a symbol string x of length n by
//
//	y[i] = x[p[i]]
//
// matching the paper's convention: the generator written 456123 maps
// y1..y6 to y4 y5 y6 y1 y2 y3.  Because IPG labels may contain repeated
// symbols, a Perm acting on a Label is generally a many-to-one map on
// label values even though it is a bijection on positions.
package perm

import (
	"fmt"
	"math/rand"
	"strings"
)

// Perm is a permutation of the positions 0..len(p)-1.  p[i] is the source
// position whose symbol lands at position i when the permutation is applied.
type Perm []int

// Identity returns the identity permutation on n positions.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Transposition returns the permutation on n positions that exchanges
// positions i and j (0-based).  It is its own inverse.
func Transposition(n, i, j int) Perm {
	p := Identity(n)
	p[i], p[j] = p[j], p[i]
	return p
}

// RotateLeft returns the permutation on n positions that rotates the string
// k positions to the left: y[i] = x[(i+k) mod n].
func RotateLeft(n, k int) Perm {
	k = ((k % n) + n) % n
	p := make(Perm, n)
	for i := range p {
		p[i] = (i + k) % n
	}
	return p
}

// RotateRight returns the permutation rotating k positions to the right.
func RotateRight(n, k int) Perm { return RotateLeft(n, -k) }

// Reverse returns the permutation reversing the first k of n positions.
func Reverse(n, k int) Perm {
	p := Identity(n)
	for i := 0; i < k/2; i++ {
		p[i], p[k-1-i] = p[k-1-i], p[i]
	}
	return p
}

// FromImage builds a Perm from the paper's one-line image notation, where
// img[i] is the 1-based source position for target position i.  For example
// FromImage(4,5,6,1,2,3) is the generator written 456123 in the paper.
func FromImage(img ...int) Perm {
	p := make(Perm, len(img))
	for i, v := range img {
		p[i] = v - 1
	}
	if !p.Valid() {
		panic(fmt.Sprintf("perm.FromImage: %v is not a permutation", img))
	}
	return p
}

// Valid reports whether p is a bijection on 0..len(p)-1.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Size returns the number of positions p acts on.
func (p Perm) Size() int { return len(p) }

// IsIdentity reports whether p fixes every position.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Inverse returns the permutation q with p.Then(q) == identity.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Then returns the composite permutation "apply p first, then q".
// (p.Then(q)).Apply(x) == q.Apply(p.Apply(x)) for every label x.
func (p Perm) Then(q Perm) Perm {
	if len(p) != len(q) {
		panic("perm.Then: size mismatch")
	}
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Pow returns p composed with itself k times (k >= 0); Pow(0) is identity.
func (p Perm) Pow(k int) Perm {
	r := Identity(len(p))
	base := p.Clone()
	for k > 0 {
		if k&1 == 1 {
			r = r.Then(base)
		}
		base = base.Then(base)
		k >>= 1
	}
	return r
}

// Order returns the multiplicative order of p (smallest k >= 1 with
// p^k = identity), computed from its cycle structure.
func (p Perm) Order() int {
	order := 1
	for _, c := range p.Cycles() {
		order = lcm(order, len(c))
	}
	return order
}

// Cycles returns the cycle decomposition of p, including fixed points as
// singleton cycles, each cycle starting at its smallest element.
func (p Perm) Cycles() [][]int {
	var cycles [][]int
	seen := make([]bool, len(p))
	for i := range p {
		if seen[i] {
			continue
		}
		var c []int
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			c = append(c, j)
		}
		cycles = append(cycles, c)
	}
	return cycles
}

// FixedPoints returns the positions fixed by p.
func (p Perm) FixedPoints() []int {
	var fps []int
	for i, v := range p {
		if v == i {
			fps = append(fps, i)
		}
	}
	return fps
}

// String renders p in the paper's one-line 1-based image notation for small
// sizes, e.g. "456123".
func (p Perm) String() string {
	var b strings.Builder
	for i, v := range p {
		if len(p) > 9 {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", v+1)
		} else {
			fmt.Fprintf(&b, "%d", v+1)
		}
	}
	return b.String()
}

// Random returns a uniformly random permutation on n positions drawn from r.
func Random(r *rand.Rand, n int) Perm {
	p := Identity(n)
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
