package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	id := Identity(6)
	if !id.Valid() || !id.IsIdentity() {
		t.Fatalf("Identity(6) = %v, not a valid identity", id)
	}
	x := MustParseLabel("123321")
	if !id.Apply(x).Equal(x) {
		t.Errorf("identity moved label %v", x)
	}
}

func TestPaperExample(t *testing.T) {
	// Section 2 of the paper: seed 123321, three generators, and their
	// listed actions.
	y := MustParseLabel("123321")
	pi1 := FromImage(2, 1, 3, 4, 5, 6)
	pi2 := FromImage(3, 2, 1, 4, 5, 6)
	pi3 := FromImage(4, 5, 6, 1, 2, 3)

	if got, want := pi1.Apply(y), MustParseLabel("213321"); !got.Equal(want) {
		t.Errorf("pi1(Y) = %v, want %v", got, want)
	}
	if got, want := pi2.Apply(y), MustParseLabel("321321"); !got.Equal(want) {
		t.Errorf("pi2(Y) = %v, want %v", got, want)
	}
	if got, want := pi3.Apply(y), MustParseLabel("321123"); !got.Equal(want) {
		t.Errorf("pi3(Y) = %v, want %v", got, want)
	}
}

func TestSection2SuperGeneratorExample(t *testing.T) {
	// "with the seed label 123 123, the permutation 321 456 ... defines a
	// nucleus generator" taking 123123 to 321123, "whereas the permutation
	// 456 123 ... permutes 321 123 to get 123 321".
	seed := MustParseLabel("123123")
	nuc := FromImage(3, 2, 1, 4, 5, 6)
	sup := FromImage(4, 5, 6, 1, 2, 3)
	mid := nuc.Apply(seed)
	if want := MustParseLabel("321123"); !mid.Equal(want) {
		t.Fatalf("nucleus generator: got %v, want %v", mid, want)
	}
	end := sup.Apply(mid)
	if want := MustParseLabel("123321"); !end.Equal(want) {
		t.Fatalf("super generator: got %v, want %v", end, want)
	}
	if !IsNucleusGenerator(nuc, 2, 3) {
		t.Error("321456 should be recognized as a nucleus generator for l=2,m=3")
	}
	if IsNucleusGenerator(sup, 2, 3) {
		t.Error("456123 is not a nucleus generator")
	}
	if ga, ok := GroupAction(sup, 2, 3); !ok || !ga.Equal(Perm{1, 0}) {
		t.Errorf("GroupAction(456123) = %v, %v; want [1 0], true", ga, ok)
	}
	if _, ok := GroupAction(nuc, 2, 3); ok {
		t.Error("nucleus generator should not have a rigid group action")
	}
}

func TestInverseComposition(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(20)
		p := Random(r, n)
		q := Random(r, n)
		if !p.Then(p.Inverse()).IsIdentity() {
			t.Fatalf("p.Then(p^-1) != id for %v", p)
		}
		if !p.Inverse().Then(p).IsIdentity() {
			t.Fatalf("p^-1.Then(p) != id for %v", p)
		}
		// Composition semantics: (p.Then(q)).Apply(x) == q.Apply(p.Apply(x)).
		x := make(Label, n)
		for i := range x {
			x[i] = byte(r.Intn(4))
		}
		lhs := p.Then(q).Apply(x)
		rhs := q.Apply(p.Apply(x))
		if !lhs.Equal(rhs) {
			t.Fatalf("composition mismatch: p=%v q=%v x=%v: %v vs %v", p, q, x, lhs, rhs)
		}
	}
}

func TestPowOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(12)
		p := Random(r, n)
		ord := p.Order()
		if ord < 1 {
			t.Fatalf("order %d < 1", ord)
		}
		if !p.Pow(ord).IsIdentity() {
			t.Fatalf("p^order != id for %v (order %d)", p, ord)
		}
		for k := 1; k < ord; k++ {
			if p.Pow(k).IsIdentity() {
				t.Fatalf("p^%d = id but order claimed %d for %v", k, ord, p)
			}
		}
	}
}

func TestCycles(t *testing.T) {
	p := FromImage(2, 3, 1, 4, 6, 5)
	cycles := p.Cycles()
	if len(cycles) != 3 {
		t.Fatalf("got %d cycles, want 3: %v", len(cycles), cycles)
	}
	if len(p.FixedPoints()) != 1 || p.FixedPoints()[0] != 3 {
		t.Errorf("fixed points = %v, want [3]", p.FixedPoints())
	}
}

func TestRotations(t *testing.T) {
	x := MustParseLabel("123456")
	if got := RotateLeft(6, 2).Apply(x); !got.Equal(MustParseLabel("345612")) {
		t.Errorf("RotateLeft(6,2): got %v", got)
	}
	if got := RotateRight(6, 2).Apply(x); !got.Equal(MustParseLabel("561234")) {
		t.Errorf("RotateRight(6,2): got %v", got)
	}
	if !RotateLeft(6, 2).Then(RotateRight(6, 2)).IsIdentity() {
		t.Error("left then right rotation should cancel")
	}
}

func TestSuperGenerators(t *testing.T) {
	// l=4 groups of m=2.
	x := MustParseLabel("00 11 22 33")
	if got := SwapGroups(4, 2, 1, 3).Apply(x); !got.Equal(MustParseLabel("22 11 00 33")) {
		t.Errorf("SwapGroups(1,3): got %v", got)
	}
	// L_1: X2 X3 X4 X1
	if got := ShiftGroupsLeft(4, 2, 1).Apply(x); !got.Equal(MustParseLabel("11 22 33 00")) {
		t.Errorf("L1: got %v", got)
	}
	// R_1: X4 X1 X2 X3
	if got := ShiftGroupsRight(4, 2, 1).Apply(x); !got.Equal(MustParseLabel("33 00 11 22")) {
		t.Errorf("R1: got %v", got)
	}
	// L_2 per the paper: X3 X4 X1 X2
	if got := ShiftGroupsLeft(4, 2, 2).Apply(x); !got.Equal(MustParseLabel("22 33 00 11")) {
		t.Errorf("L2: got %v", got)
	}
	// F_2(X1X2X3X4) = X2X1X3X4 ; F_3 = X3X2X1X4 (paper, Section 2).
	if got := FlipGroups(4, 2, 2).Apply(x); !got.Equal(MustParseLabel("11 00 22 33")) {
		t.Errorf("F2: got %v", got)
	}
	if got := FlipGroups(4, 2, 3).Apply(x); !got.Equal(MustParseLabel("22 11 00 33")) {
		t.Errorf("F3: got %v", got)
	}
}

func TestShiftGroupsMatchPaperFormula(t *testing.T) {
	// L_{i,m}(X) = X_{i+1} ... X_l X_1 ... X_i and
	// R_{i,m}(X) = X_{l-i+1} ... X_l X_1 ... X_{l-i}.
	l, m := 5, 3
	x := make(Label, l*m)
	for g := 0; g < l; g++ {
		for k := 0; k < m; k++ {
			x[g*m+k] = byte(g)
		}
	}
	for i := 1; i < l; i++ {
		got := ShiftGroupsLeft(l, m, i).Apply(x)
		for g := 0; g < l; g++ {
			want := byte((g + i) % l)
			if got[g*m] != want {
				t.Fatalf("L_%d group %d: got %d want %d", i, g, got[g*m], want)
			}
		}
		got = ShiftGroupsRight(l, m, i).Apply(x)
		for g := 0; g < l; g++ {
			want := byte((g - i + l) % l)
			if got[g*m] != want {
				t.Fatalf("R_%d group %d: got %d want %d", i, g, got[g*m], want)
			}
		}
		if !ShiftGroupsLeft(l, m, i).Then(ShiftGroupsRight(l, m, i)).IsIdentity() {
			t.Fatalf("L_%d then R_%d != id", i, i)
		}
	}
}

func TestLiftToLeftGroup(t *testing.T) {
	g := FromImage(2, 1, 3) // swap first two symbols of a 3-symbol group
	p := LiftToLeftGroup(g, 3)
	x := MustParseLabel("123 456 789")
	if got := p.Apply(x); !got.Equal(MustParseLabel("213 456 789")) {
		t.Errorf("lifted generator: got %v", got)
	}
	if !IsNucleusGenerator(p, 3, 3) {
		t.Error("lifted generator should be a nucleus generator")
	}
}

func TestFixes(t *testing.T) {
	// Swapping two identical groups fixes the label: self-loop.
	x := MustParseLabel("12 12 34")
	if !SwapGroups(3, 2, 1, 2).Fixes(x) {
		t.Error("swap of identical groups should fix label")
	}
	if SwapGroups(3, 2, 1, 3).Fixes(x) {
		t.Error("swap of distinct groups should not fix label")
	}
}

func TestGenSet(t *testing.T) {
	gs := GenSet{
		Gen("T2", SwapGroups(3, 2, 1, 2)),
		Gen("T3", SwapGroups(3, 2, 1, 3)),
	}
	if err := gs.Validate(); err != nil {
		t.Fatal(err)
	}
	if !gs.ClosedUnderInverse() {
		t.Error("transpositions are involutions; set should be inverse-closed")
	}
	if idx := gs.InverseIndex(); idx[0] != 0 || idx[1] != 1 {
		t.Errorf("InverseIndex = %v, want [0 1]", idx)
	}
	if gs.Find("T3") != 1 || gs.Find("nope") != -1 {
		t.Error("Find misbehaved")
	}

	ring := GenSet{Gen("L1", ShiftGroupsLeft(4, 2, 1))}
	if ring.ClosedUnderInverse() {
		t.Error("L1 alone is not inverse-closed for l=4")
	}
	ring = append(ring, Gen("R1", ShiftGroupsRight(4, 2, 1)))
	if !ring.ClosedUnderInverse() {
		t.Error("L1,R1 should be inverse-closed")
	}
}

func TestQuickInverseInvolution(t *testing.T) {
	// Property: Inverse is an involution and preserves validity.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		p := Random(rand.New(rand.NewSource(seed)), n)
		return p.Inverse().Inverse().Equal(p) && p.Inverse().Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGroupActionRoundTrip(t *testing.T) {
	// Property: every block permutation built from a group permutation has
	// that exact group action.
	f := func(seed int64, lRaw, mRaw uint8) bool {
		l := int(lRaw%5) + 2
		m := int(mRaw%4) + 1
		r := rand.New(rand.NewSource(seed))
		gp := Random(r, l)
		p := make(Perm, l*m)
		for g := 0; g < l; g++ {
			for k := 0; k < m; k++ {
				p[g*m+k] = gp[g]*m + k
			}
		}
		got, ok := GroupAction(p, l, m)
		return ok && got.Equal(gp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseLabelErrors(t *testing.T) {
	if _, err := ParseLabel("12!3"); err == nil {
		t.Error("expected error for invalid character")
	}
	l, err := ParseLabel("0a z9")
	if err != nil {
		t.Fatal(err)
	}
	if l[1] != 10 || l[2] != 35 {
		t.Errorf("letter parsing wrong: %v", l)
	}
	if l.String() != "0az9" {
		t.Errorf("String() = %q", l.String())
	}
	if l.GroupedString(2) != "0a z9" {
		t.Errorf("GroupedString(2) = %q", l.GroupedString(2))
	}
}

func TestReverse(t *testing.T) {
	x := MustParseLabel("123456")
	if got := Reverse(6, 4).Apply(x); !got.Equal(MustParseLabel("432156")) {
		t.Errorf("Reverse(6,4): got %v", got)
	}
}

func TestRepeatGroups(t *testing.T) {
	g := MustParseLabel("0123")
	s := RepeatGroups(g, 3)
	if s.GroupedString(4) != "0123 0123 0123" {
		t.Errorf("RepeatGroups: %v", s.GroupedString(4))
	}
}

func TestStringRenderings(t *testing.T) {
	p := FromImage(4, 5, 6, 1, 2, 3)
	if p.String() != "456123" {
		t.Errorf("Perm.String = %q", p.String())
	}
	big := Identity(12)
	if big.String() != "1 2 3 4 5 6 7 8 9 10 11 12" {
		t.Errorf("wide Perm.String = %q", big.String())
	}
	g := Gen("pi3", p)
	if g.String() != "pi3=456123" {
		t.Errorf("Generator.String = %q", g.String())
	}
}

func TestGenSetAccessors(t *testing.T) {
	gs := GenSet{
		Gen("a", Transposition(3, 0, 1)),
		Gen("b", RotateLeft(3, 1)),
	}
	ps := gs.Perms()
	if len(ps) != 2 || !ps[1].Equal(RotateLeft(3, 1)) {
		t.Errorf("Perms = %v", ps)
	}
	names := gs.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	bad := GenSet{Gen("x", Perm{0, 0, 1})}
	if err := bad.Validate(); err == nil {
		t.Error("invalid permutation should fail validation")
	}
}

func TestLabelHelpers(t *testing.T) {
	x := MustParseLabel("123456")
	y := x.Clone()
	y[0] = 9
	if x[0] == 9 {
		t.Error("Clone should be independent")
	}
	if x.Key() != string([]byte{1, 2, 3, 4, 5, 6}) {
		t.Error("Key wrong")
	}
	if got := x.Group(2, 1); !got.Equal(MustParseLabel("34")) {
		t.Errorf("Group(2,1) = %v", got)
	}
	dst := make(Label, 6)
	RotateLeft(6, 2).ApplyInto(dst, x)
	if !dst.Equal(MustParseLabel("345612")) {
		t.Errorf("ApplyInto = %v", dst)
	}
	if x.Equal(MustParseLabel("12345")) {
		t.Error("length mismatch should not be Equal")
	}
	if x.Equal(MustParseLabel("123457")) {
		t.Error("content mismatch should not be Equal")
	}
}

func TestCheckGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SwapGroups with bad index should panic")
		}
	}()
	SwapGroups(3, 2, 0, 1)
}

func TestGeneratorInverseNaming(t *testing.T) {
	t2 := Gen("T2", SwapGroups(3, 2, 1, 2))
	if inv := t2.Inverse(); inv.Name != "T2" {
		t.Errorf("involution inverse should keep name, got %q", inv.Name)
	}
	l1 := Gen("L1", ShiftGroupsLeft(3, 2, 1))
	if inv := l1.Inverse(); inv.Name != "L1'" {
		t.Errorf("non-involution inverse name = %q, want L1'", inv.Name)
	}
}
