package perm

import (
	"testing"
)

// FuzzParseLabel checks that ParseLabel never panics and that accepted
// labels round-trip through GroupedString (modulo whitespace).
func FuzzParseLabel(f *testing.F) {
	f.Add("123321")
	f.Add("01 01 01")
	f.Add("")
	f.Add("zz9 0a")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseLabel(s)
		if err != nil {
			return
		}
		re, err := ParseLabel(l.String())
		if err != nil {
			t.Fatalf("rendered label %q failed to reparse: %v", l.String(), err)
		}
		if !re.Equal(l) {
			t.Fatalf("roundtrip mismatch: %v vs %v", l, re)
		}
	})
}

// FuzzPermFromBytes builds permutations from fuzzed byte slices (rejecting
// invalid ones) and checks the group laws.
func FuzzPermFromBytes(f *testing.F) {
	f.Add([]byte{1, 0, 2})
	f.Add([]byte{0})
	f.Add([]byte{3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 16 {
			return
		}
		p := make(Perm, len(raw))
		for i, b := range raw {
			p[i] = int(b)
		}
		if !p.Valid() {
			return
		}
		if !p.Then(p.Inverse()).IsIdentity() {
			t.Fatalf("p * p^-1 != id for %v", p)
		}
		if p.Pow(p.Order()).IsIdentity() == false {
			t.Fatalf("p^order != id for %v", p)
		}
		if p.Inverse().Sign() != p.Sign() {
			t.Fatalf("sign(p^-1) != sign(p) for %v", p)
		}
	})
}
