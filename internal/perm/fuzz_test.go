package perm

import (
	"testing"
)

// FuzzParseLabel checks that ParseLabel never panics and that accepted
// labels round-trip through GroupedString (modulo whitespace).
func FuzzParseLabel(f *testing.F) {
	f.Add("123321")
	f.Add("01 01 01")
	f.Add("")
	f.Add("zz9 0a")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseLabel(s)
		if err != nil {
			return
		}
		re, err := ParseLabel(l.String())
		if err != nil {
			t.Fatalf("rendered label %q failed to reparse: %v", l.String(), err)
		}
		if !re.Equal(l) {
			t.Fatalf("roundtrip mismatch: %v vs %v", l, re)
		}
	})
}

// FuzzPermFromBytes builds permutations from fuzzed byte slices (rejecting
// invalid ones) and checks the group laws.
func FuzzPermFromBytes(f *testing.F) {
	f.Add([]byte{1, 0, 2})
	f.Add([]byte{0})
	f.Add([]byte{3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 16 {
			return
		}
		p := make(Perm, len(raw))
		for i, b := range raw {
			p[i] = int(b)
		}
		if !p.Valid() {
			return
		}
		if !p.Then(p.Inverse()).IsIdentity() {
			t.Fatalf("p * p^-1 != id for %v", p)
		}
		if p.Pow(p.Order()).IsIdentity() == false {
			t.Fatalf("p^order != id for %v", p)
		}
		if p.Inverse().Sign() != p.Sign() {
			t.Fatalf("sign(p^-1) != sign(p) for %v", p)
		}
	})
}

// FuzzLabelCodec drives the multiset Lehmer codec with arbitrary seeds
// and ranks: construction either errors or yields a codec where every
// in-range rank unranks to an arrangement of the seed multiset, ranks
// back to itself, and consecutive ranks are lexicographically ordered —
// the invariants the implicit IPG adjacency builds on.
func FuzzLabelCodec(f *testing.F) {
	f.Add([]byte("123321"), int64(7))
	f.Add([]byte("1234"), int64(23))
	f.Add([]byte{}, int64(0))
	f.Add([]byte("aabbbbcc"), int64(-5))
	f.Fuzz(func(t *testing.T, seed []byte, rank int64) {
		if len(seed) > 32 {
			return
		}
		c, err := NewLabelCodec(Label(seed))
		if err != nil {
			return
		}
		if c.Count() < 1 || c.Len() != len(seed) {
			t.Fatalf("accepted codec with Count=%d Len=%d", c.Count(), c.Len())
		}
		r := rank % c.Count()
		l, err := c.Unrank(r)
		if r < 0 {
			if err == nil {
				t.Fatalf("negative rank %d accepted", r)
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range rank %d rejected: %v", r, err)
		}
		var want, got [256]int
		for _, s := range seed {
			want[s]++
		}
		for _, s := range l {
			got[s]++
		}
		if want != got {
			t.Fatalf("Unrank(%d) = %v is not an arrangement of %v", r, l, seed)
		}
		back, err := c.Rank(l)
		if err != nil {
			t.Fatalf("Rank(%v): %v", l, err)
		}
		if back != r {
			t.Fatalf("round trip: %d -> %v -> %d", r, l, back)
		}
		if r > 0 {
			prev, err := c.Unrank(r - 1)
			if err != nil {
				t.Fatalf("Unrank(%d): %v", r-1, err)
			}
			if string(prev) >= string(l) {
				t.Fatalf("ranks %d, %d out of lexicographic order: %v >= %v", r-1, r, prev, l)
			}
		}
	})
}
