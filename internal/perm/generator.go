package perm

import "fmt"

// Generator is a named permutation, the labelled edge relation of an IPG.
// Names follow the paper's notation, e.g. "T2" for the transposition
// super-generator (1,2)_m, "L1" for a cyclic shift, "N3" for the third
// nucleus generator.
type Generator struct {
	Name string
	P    Perm
}

// Gen is shorthand for constructing a Generator.
func Gen(name string, p Perm) Generator { return Generator{Name: name, P: p} }

// Inverse returns the generator realizing the inverse permutation, named
// name+"'" unless p is an involution, in which case the name is kept.
func (g Generator) Inverse() Generator {
	inv := g.P.Inverse()
	if inv.Equal(g.P) {
		return Generator{Name: g.Name, P: inv}
	}
	return Generator{Name: g.Name + "'", P: inv}
}

func (g Generator) String() string { return fmt.Sprintf("%s=%s", g.Name, g.P) }

// GenSet is an ordered collection of generators defining an IPG's edges.
type GenSet []Generator

// Perms returns the underlying permutations in order.
func (gs GenSet) Perms() []Perm {
	ps := make([]Perm, len(gs))
	for i, g := range gs {
		ps[i] = g.P
	}
	return ps
}

// Names returns the generator names in order.
func (gs GenSet) Names() []string {
	ns := make([]string, len(gs))
	for i, g := range gs {
		ns[i] = g.Name
	}
	return ns
}

// Find returns the index of the generator with the given name, or -1.
func (gs GenSet) Find(name string) int {
	for i, g := range gs {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// ClosedUnderInverse reports whether for every generator in gs its inverse
// permutation is also present.  IPGs with inverse-closed generator sets are
// undirected graphs; others (e.g. directed cyclic networks) are digraphs.
func (gs GenSet) ClosedUnderInverse() bool {
	for _, g := range gs {
		inv := g.P.Inverse()
		found := false
		for _, h := range gs {
			if h.P.Equal(inv) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// InverseIndex returns, for each generator, the index of a generator
// realizing its inverse permutation, or -1 if absent.
func (gs GenSet) InverseIndex() []int {
	idx := make([]int, len(gs))
	for i, g := range gs {
		idx[i] = -1
		inv := g.P.Inverse()
		for j, h := range gs {
			if h.P.Equal(inv) {
				idx[i] = j
				break
			}
		}
	}
	return idx
}

// Validate checks that all generators act on the same number of positions
// and are valid permutations.
func (gs GenSet) Validate() error {
	if len(gs) == 0 {
		return fmt.Errorf("perm: empty generator set")
	}
	n := gs[0].P.Size()
	for _, g := range gs {
		if !g.P.Valid() {
			return fmt.Errorf("perm: generator %s is not a permutation", g.Name)
		}
		if g.P.Size() != n {
			return fmt.Errorf("perm: generator %s acts on %d positions, want %d", g.Name, g.P.Size(), n)
		}
	}
	return nil
}
