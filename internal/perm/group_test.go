package perm

import (
	"testing"
)

func TestSign(t *testing.T) {
	if Identity(5).Sign() != 1 {
		t.Error("identity should be even")
	}
	if Transposition(5, 0, 3).Sign() != -1 {
		t.Error("transposition should be odd")
	}
	if RotateLeft(3, 1).Sign() != 1 {
		t.Error("3-cycle should be even")
	}
	// Sign is multiplicative.
	p := FromImage(2, 3, 1, 5, 4)
	q := FromImage(1, 3, 2, 4, 5)
	if p.Then(q).Sign() != p.Sign()*q.Sign() {
		t.Error("sign not multiplicative")
	}
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func TestClosureStructures(t *testing.T) {
	// Swap super-generators (1,i) generate the full symmetric group: the
	// algebraic reason HSN routing can realize any group arrangement.
	for l := 2; l <= 5; l++ {
		var gens []Perm
		for i := 1; i < l; i++ {
			gens = append(gens, Transposition(l, 0, i))
		}
		size, err := ClosureSize(gens, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if size != factorial(l) {
			t.Errorf("swaps on %d groups generate %d perms, want %d", l, size, factorial(l))
		}
	}
	// All rotations L_1..L_{l-1} generate only the cyclic group Z_l: why
	// complete-CN routing must rebuild contents rather than permute groups
	// arbitrarily.
	for l := 2; l <= 6; l++ {
		var gens []Perm
		for i := 1; i < l; i++ {
			gens = append(gens, RotateLeft(l, i))
		}
		size, err := ClosureSize(gens, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if size != l {
			t.Errorf("rotations on %d groups generate %d perms, want %d", l, size, l)
		}
	}
	// Prefix reversals F_2..F_l generate the full symmetric group (the
	// pancake group).
	for l := 2; l <= 5; l++ {
		var gens []Perm
		for i := 2; i <= l; i++ {
			gens = append(gens, Reverse(l, i))
		}
		size, err := ClosureSize(gens, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if size != factorial(l) {
			t.Errorf("flips on %d groups generate %d perms, want %d", l, size, factorial(l))
		}
	}
}

func TestClosureLimits(t *testing.T) {
	gens := []Perm{Transposition(6, 0, 1), RotateLeft(6, 1)}
	if _, err := Closure(gens, 100); err == nil {
		t.Error("S6 (720 elements) should exceed limit 100")
	}
	if _, err := Closure(nil, 10); err == nil {
		t.Error("empty generator set should error")
	}
}

func TestIsTransitiveOn(t *testing.T) {
	// A single transposition is not transitive on 3 positions.
	if IsTransitiveOn([]Perm{Transposition(3, 0, 1)}, 3) {
		t.Error("(0 1) alone is not transitive on 3 points")
	}
	if !IsTransitiveOn([]Perm{RotateLeft(5, 1)}, 5) {
		t.Error("a 5-cycle is transitive")
	}
	if !IsTransitiveOn([]Perm{Transposition(4, 0, 1), RotateLeft(4, 1)}, 4) {
		t.Error("transposition + rotation is transitive")
	}
}
