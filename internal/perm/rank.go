package perm

import (
	"fmt"
	"math"
)

// This file implements the rank/unrank codecs of the implicit topology
// representation: the Lehmer code (factorial number system) for
// permutations, and its multiset generalization for IPG labels with
// repeated symbols.  Ranks are lexicographic, so Unrank(Rank(x)) == x and
// consecutive ranks enumerate arrangements in sorted order — the property
// the property tests and the implicit adjacency codecs rely on.

// maxLehmerLen bounds RankPerm/UnrankPerm: 20! < 2^63 <= 21!.
const maxLehmerLen = 20

// RankPerm returns the lexicographic rank of p among the permutations of
// its size — the Lehmer code read as a factorial-base numeral.  Sizes
// above 20 overflow int64 and error.
func RankPerm(p Perm) (int64, error) {
	n := len(p)
	if n > maxLehmerLen {
		return 0, fmt.Errorf("perm: rank of size-%d permutation overflows int64", n)
	}
	if !p.Valid() {
		return 0, fmt.Errorf("perm: %v is not a permutation", []int(p))
	}
	var rank int64
	for i := 0; i < n; i++ {
		// Lehmer digit i: how many later entries are smaller than p[i].
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank = rank*int64(n-i) + int64(smaller)
	}
	return rank, nil
}

// UnrankPerm returns the permutation of size n with lexicographic rank r
// (the inverse of RankPerm).
func UnrankPerm(n int, r int64) (Perm, error) {
	if n < 0 || n > maxLehmerLen {
		return nil, fmt.Errorf("perm: unrank size %d outside [0,%d]", n, maxLehmerLen)
	}
	total := int64(1)
	for i := 2; i <= n; i++ {
		total *= int64(i)
	}
	if r < 0 || r >= total {
		return nil, fmt.Errorf("perm: rank %d outside [0,%d)", r, total)
	}
	// Decompose r into factorial-base digits, most significant first.
	digits := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		digits[i] = r % int64(n-i)
		r /= int64(n - i)
	}
	// digits[i] selects the digits[i]-th smallest unused value.
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	p := make(Perm, n)
	for i := 0; i < n; i++ {
		d := int(digits[i])
		p[i] = avail[d]
		avail = append(avail[:d], avail[d+1:]...)
	}
	return p, nil
}

// LabelCodec ranks and unranks the arrangements of a fixed symbol
// multiset in lexicographic order: the generalization of the Lehmer code
// to labels with repeated symbols.  For an all-distinct seed it reduces
// to the factorial number system; for a repeated-symbol seed the ranks
// run over the multinomial count of distinct arrangements — exactly the
// node set of an IPG whose generator group acts transitively on the
// arrangements of its seed.
type LabelCodec struct {
	length int
	// counts[s] is the multiplicity of symbol s in the seed multiset.
	counts [256]int32
	// symbols lists the distinct symbols ascending, for unranking.
	symbols []byte
	total   int64
}

// maxLabelArrangements caps Count so every intermediate product in
// Rank/Unrank (at most remaining * count <= total * length) stays within
// int64.
const maxLabelArrangements = math.MaxInt64 >> 9

// NewLabelCodec builds the codec for the multiset of seed's symbols.  It
// errors when the arrangement count overflows the guarded int64 range.
func NewLabelCodec(seed Label) (*LabelCodec, error) {
	if len(seed) == 0 {
		return nil, fmt.Errorf("perm: empty label codec seed")
	}
	if len(seed) > 256 {
		return nil, fmt.Errorf("perm: label codec seed longer than 256 symbols")
	}
	c := &LabelCodec{length: len(seed)}
	for _, s := range seed {
		c.counts[s]++
	}
	for s := 0; s < 256; s++ {
		if c.counts[s] > 0 {
			c.symbols = append(c.symbols, byte(s))
		}
	}
	// total = multinomial(length; counts), built incrementally as a product
	// of binomials so every intermediate value is integral.
	total := int64(1)
	placed := int64(0)
	for _, s := range c.symbols {
		for j := int64(1); j <= int64(c.counts[s]); j++ {
			placed++
			if total > maxLabelArrangements/placed {
				return nil, fmt.Errorf("perm: arrangement count of %d-symbol multiset overflows int64", len(seed))
			}
			total = total * placed / j
		}
	}
	c.total = total
	return c, nil
}

// Count returns the number of distinct arrangements (the rank range).
func (c *LabelCodec) Count() int64 { return c.total }

// Len returns the label length.
func (c *LabelCodec) Len() int { return c.length }

// Rank returns the lexicographic rank of l among the arrangements of the
// codec's multiset, erroring when l is not such an arrangement.
func (c *LabelCodec) Rank(l Label) (int64, error) {
	if len(l) != c.length {
		return 0, fmt.Errorf("perm: label length %d, want %d", len(l), c.length)
	}
	var counts [256]int32
	counts = c.counts
	remaining := c.total // arrangements of the suffix multiset
	var rank int64
	for i, sym := range l {
		rem := int64(c.length - i)
		if counts[sym] == 0 {
			return 0, fmt.Errorf("perm: symbol %d at position %d not in the seed multiset", sym, i)
		}
		for _, s := range c.symbols {
			if s >= sym {
				break
			}
			if counts[s] > 0 {
				// Arrangements of the suffix starting with s.
				rank += remaining * int64(counts[s]) / rem
			}
		}
		remaining = remaining * int64(counts[sym]) / rem
		counts[sym]--
	}
	return rank, nil
}

// UnrankInto writes the arrangement with lexicographic rank r into
// dst[:0] (growing it as needed) and returns it.  Ranks outside
// [0, Count()) error.
func (c *LabelCodec) UnrankInto(r int64, dst Label) (Label, error) {
	if r < 0 || r >= c.total {
		return dst, fmt.Errorf("perm: rank %d outside [0,%d)", r, c.total)
	}
	var counts [256]int32
	counts = c.counts
	dst = dst[:0]
	remaining := c.total
	for i := 0; i < c.length; i++ {
		rem := int64(c.length - i)
		for _, s := range c.symbols {
			if counts[s] == 0 {
				continue
			}
			sub := remaining * int64(counts[s]) / rem
			if r < sub {
				dst = append(dst, s)
				counts[s]--
				remaining = sub
				break
			}
			r -= sub
		}
	}
	return dst, nil
}

// Unrank is UnrankInto with a fresh label.
func (c *LabelCodec) Unrank(r int64) (Label, error) {
	return c.UnrankInto(r, make(Label, 0, c.length))
}
