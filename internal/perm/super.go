package perm

import "fmt"

// This file implements the super-generators of the super-IPG model: the
// permutations that rearrange whole m-symbol groups of a label without
// changing the order of symbols inside any group, plus the lift that turns a
// nucleus generator (acting on one group) into a generator on the full label
// acting on the leftmost group.

// SwapGroups returns the transposition super-generator (i,j)_m on l groups
// of m symbols: it exchanges the i-th and j-th groups (1-based, as in the
// paper's T_{i,m} = (1,i)_m notation).
func SwapGroups(l, m, i, j int) Perm {
	checkGroup(l, i)
	checkGroup(l, j)
	p := Identity(l * m)
	for k := 0; k < m; k++ {
		a := (i-1)*m + k
		b := (j-1)*m + k
		p[a], p[b] = p[b], p[a]
	}
	return p
}

// ShiftGroupsLeft returns the cyclic-shift super-generator L_{i,m} on l
// groups of m symbols:
//
//	L_i(X_1 X_2 ... X_l) = X_{i+1} X_{i+2} ... X_l X_1 X_2 ... X_i
func ShiftGroupsLeft(l, m, i int) Perm {
	if i <= 0 || i >= l {
		panic(fmt.Sprintf("perm.ShiftGroupsLeft: shift %d out of range for l=%d", i, l))
	}
	p := make(Perm, l*m)
	for g := 0; g < l; g++ {
		src := (g + i) % l
		for k := 0; k < m; k++ {
			p[g*m+k] = src*m + k
		}
	}
	return p
}

// ShiftGroupsRight returns R_{i,m} = L_{i,m}^{-1}, the cyclic shift of the
// groups i positions to the right.
func ShiftGroupsRight(l, m, i int) Perm { return ShiftGroupsLeft(l, m, l-i) }

// FlipGroups returns the flip super-generator F_{i,m}: it reverses the order
// of the first i groups (2 <= i <= l), leaving groups i+1..l in place.
//
//	F_3(X1 X2 X3 X4) = X3 X2 X1 X4
func FlipGroups(l, m, i int) Perm {
	if i < 2 || i > l {
		panic(fmt.Sprintf("perm.FlipGroups: flip width %d out of range for l=%d", i, l))
	}
	p := make(Perm, l*m)
	for g := 0; g < l; g++ {
		src := g
		if g < i {
			src = i - 1 - g
		}
		for k := 0; k < m; k++ {
			p[g*m+k] = src*m + k
		}
	}
	return p
}

// LiftToLeftGroup embeds a permutation g on m positions as a permutation on
// l*m positions acting on the leftmost group only.  This is how a nucleus
// generator becomes a generator of the super-IPG.
func LiftToLeftGroup(g Perm, l int) Perm {
	m := len(g)
	p := Identity(l * m)
	for k := 0; k < m; k++ {
		p[k] = g[k]
	}
	return p
}

// GroupAction describes how a permutation on l*m positions permutes whole
// groups: it returns (gp, ok) where gp is the induced permutation on the l
// groups, and ok is false if p does not map groups onto groups rigidly
// (i.e., it is not a super-generator).
func GroupAction(p Perm, l, m int) (Perm, bool) {
	if len(p) != l*m {
		return nil, false
	}
	gp := make(Perm, l)
	for g := 0; g < l; g++ {
		src := p[g*m]
		if src%m != 0 {
			return nil, false
		}
		sg := src / m
		for k := 1; k < m; k++ {
			if p[g*m+k] != sg*m+k {
				return nil, false
			}
		}
		gp[g] = sg
	}
	if !gp.Valid() {
		return nil, false
	}
	return gp, true
}

// IsNucleusGenerator reports whether p (on l*m positions) only permutes
// symbols inside the leftmost group.
func IsNucleusGenerator(p Perm, l, m int) bool {
	if len(p) != l*m {
		return false
	}
	for i := 0; i < m; i++ {
		if p[i] >= m {
			return false
		}
	}
	for i := m; i < l*m; i++ {
		if p[i] != i {
			return false
		}
	}
	return true
}

func checkGroup(l, i int) {
	if i < 1 || i > l {
		panic(fmt.Sprintf("perm: group index %d out of range 1..%d", i, l))
	}
}
