package perm

import (
	"fmt"
	"strings"
)

// Label is an IPG node label: a string of symbols, possibly with repeats.
// Symbols are small integers; for super-IPGs the label consists of l groups
// ("super-symbols") of m symbols each.
type Label []byte

// ParseLabel builds a Label from a human-readable string such as
// "123 321" or "01 01 01".  Spaces are ignored; digits '0'-'9' map to
// symbols 0-9 and letters 'a'-'z' to symbols 10-35.
func ParseLabel(s string) (Label, error) {
	var l Label
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t':
		case r >= '0' && r <= '9':
			l = append(l, byte(r-'0'))
		case r >= 'a' && r <= 'z':
			l = append(l, byte(r-'a'+10))
		default:
			return nil, fmt.Errorf("perm: invalid label character %q in %q", r, s)
		}
	}
	return l, nil
}

// MustParseLabel is ParseLabel that panics on error, for literals in tests
// and examples.
func MustParseLabel(s string) Label {
	l, err := ParseLabel(s)
	if err != nil {
		panic(err)
	}
	return l
}

// Apply returns the label obtained by applying p to x: y[i] = x[p[i]].
func (p Perm) Apply(x Label) Label {
	if len(p) != len(x) {
		panic(fmt.Sprintf("perm.Apply: perm size %d != label size %d", len(p), len(x)))
	}
	y := make(Label, len(x))
	for i, v := range p {
		y[i] = x[v]
	}
	return y
}

// ApplyInto applies p to x writing the result into dst (which must have the
// same length and not alias x).  It avoids allocation in hot loops.
func (p Perm) ApplyInto(dst, x Label) {
	for i, v := range p {
		dst[i] = x[v]
	}
}

// Fixes reports whether applying p to x yields x itself.  Because labels may
// contain repeated symbols, a non-identity permutation can fix a label; such
// generator actions are self-loops in the IPG and produce no edge.
func (p Perm) Fixes(x Label) bool {
	for i, v := range p {
		if x[i] != x[v] {
			return false
		}
	}
	return true
}

// Equal reports whether two labels are identical.
func (x Label) Equal(y Label) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of x.
func (x Label) Clone() Label {
	y := make(Label, len(x))
	copy(y, x)
	return y
}

// Key returns x as a string usable as a map key.
func (x Label) Key() string { return string(x) }

// Group returns the i-th (0-based) group of m symbols of x as a sub-slice.
func (x Label) Group(m, i int) Label { return x[i*m : (i+1)*m] }

// String renders the label with groups of size 0 (no grouping): symbols
// 0-9 as digits, 10-35 as letters.
func (x Label) String() string { return x.GroupedString(0) }

// GroupedString renders the label with a space every m symbols (m <= 0
// disables grouping), matching the paper's "123 321" style.
func (x Label) GroupedString(m int) string {
	var b strings.Builder
	for i, s := range x {
		if m > 0 && i > 0 && i%m == 0 {
			b.WriteByte(' ')
		}
		if s < 10 {
			b.WriteByte('0' + s)
		} else if s < 36 {
			b.WriteByte('a' + s - 10)
		} else {
			fmt.Fprintf(&b, "<%d>", s)
		}
	}
	return b.String()
}

// RepeatGroups returns the label consisting of l copies of group g, the
// canonical seed of a super-IPG.
func RepeatGroups(g Label, l int) Label {
	out := make(Label, 0, len(g)*l)
	for i := 0; i < l; i++ {
		out = append(out, g...)
	}
	return out
}
