package wormhole

import (
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

func TestSingleMessagePipeline(t *testing.T) {
	// One message, no contention: makespan = hops + flits - 1.
	msgs := []Message{{Path: []int32{0, 1, 2, 3}}}
	for _, f := range []int{1, 4, 16} {
		mk, err := SimulateCutThrough(msgs, f)
		if err != nil {
			t.Fatal(err)
		}
		if want := 3 + f - 1; mk != want {
			t.Errorf("flits=%d: makespan %d, want %d", f, mk, want)
		}
	}
}

func TestTwoMessagesSharedLink(t *testing.T) {
	// Both messages cross link 1->2: the shared link serializes 2F flits.
	msgs := []Message{
		{Path: []int32{0, 1, 2}},
		{Path: []int32{3, 1, 2}},
	}
	f := 8
	mk, err := SimulateCutThrough(msgs, f)
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: the shared link carries 16 flits, plus pipeline fill.
	if mk < 2*f || mk > 2*f+4 {
		t.Errorf("makespan %d, want about %d", mk, 2*f+1)
	}
}

func TestSlowdownApproachesCongestion(t *testing.T) {
	// The paper's claim: wormhole/VCT emulation slowdown ~2 (= the
	// per-dimension congestion), vs 3 for store-and-forward.
	for _, w := range []*superipg.Network{
		superipg.HSN(2, nucleus.Hypercube(3)),
		superipg.HSN(3, nucleus.Hypercube(2)),
		superipg.SFN(3, nucleus.Hypercube(2)),
	} {
		g, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		j := w.NumNucGens() + 1 // first dimension of group 2
		prev := 1e18
		for _, f := range []int{1, 8, 64} {
			s, err := Slowdown(w, g, j, f)
			if err != nil {
				t.Fatal(err)
			}
			if s > prev+1e-9 {
				t.Errorf("%s: slowdown increased with flits: %v -> %v", w.Name(), prev, s)
			}
			prev = s
		}
		if prev < 2.0 || prev > 2.3 {
			t.Errorf("%s: asymptotic slowdown %v, want ~2", w.Name(), prev)
		}
		// Store-and-forward: 3 steps.
		msgs, err := EmulationPaths(w, g, j)
		if err != nil {
			t.Fatal(err)
		}
		if saf := StoreAndForwardMakespan(msgs, 64); saf != 3*64 {
			t.Errorf("%s: SAF makespan %d, want %d", w.Name(), saf, 3*64)
		}
	}
}

func TestCompleteCNSlowdown(t *testing.T) {
	// Complete-CN has congestion 1 per dimension on separate forward and
	// return links, but the L-link of group i is shared with the return of
	// group l-i+2, which is idle in a single-dimension workload: slowdown
	// approaches 1 (plus pipeline fill).
	w := superipg.CompleteCN(3, nucleus.Hypercube(2))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Slowdown(w, g, w.NumNucGens()+1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1.0 || s > 1.2 {
		t.Errorf("complete-CN slowdown %v, want ~1", s)
	}
}

func TestErrors(t *testing.T) {
	if _, err := SimulateCutThrough([]Message{{Path: []int32{0}}}, 4); err == nil {
		t.Error("degenerate path should error")
	}
	if _, err := SimulateCutThrough([]Message{{Path: []int32{0, 1}}}, 0); err == nil {
		t.Error("zero flits should error")
	}
}

func TestEmulationPathsCompressSelfLoops(t *testing.T) {
	// HSN(2,Q2) nodes with X1 == X2 skip the swap hops: 1-hop paths exist.
	w := superipg.HSN(2, nucleus.Hypercube(2))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := EmulationPaths(w, g, w.NumNucGens()+1)
	if err != nil {
		t.Fatal(err)
	}
	short, long := 0, 0
	for _, m := range msgs {
		switch len(m.Path) - 1 {
		case 2: // self-loop at one end collapses one swap... or full path
			short++
		case 3:
			long++
		case 1:
			short++
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("expected a mix of compressed and full paths, got short=%d long=%d", short, long)
	}
}
