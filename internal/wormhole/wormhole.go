// Package wormhole simulates pipelined (virtual cut-through) message
// transmission along the HPN-emulation paths of Section 3.1, reproducing
// the paper's observation that "when wormhole routing or virtual
// cut-through is used, the slowdown factor is actually reduced to about 2,
// since the congestion for embedding all the links of an HPN(l,G) that
// belong to a certain dimension ... is only 2".
//
// Model: every node simultaneously sends one F-flit message to its
// dimension-j HPN neighbor along the 3-hop emulation path S, N, S^-1
// (hops where a generator fixes the label are free and skipped).  Each
// directed link carries one flit per cycle; flits of different messages
// interleave FIFO in arrival order, and a flit may leave a node one cycle
// after it arrives (cut-through — no store-and-forward wait for the
// message tail).  The makespan divided by F is the slowdown relative to
// the HPN's own one-hop transmission; as F grows it converges to the
// embedding congestion (2), while store-and-forward costs 3 steps
// (Theorem 3.1 / Corollary 3.2).
package wormhole

import (
	"fmt"
	"sort"

	"ipg/internal/emul"
	"ipg/internal/superipg"
	"ipg/internal/topo"
)

// Message is one unicast of F flits along a fixed node path.
type Message struct {
	Path []int32 // node sequence, Path[0] = source; len >= 2
}

// EmulationPaths returns, for HPN dimension j, the per-node emulation
// paths (self-loop hops compressed away).  The family graph is consumed
// through its port-labelled topo.Ported view (port gi = generator gi).
func EmulationPaths(w *superipg.Network, g topo.Ported, j int) ([]Message, error) {
	word, err := emul.DimensionWord(w, j)
	if err != nil {
		return nil, err
	}
	msgs := make([]Message, 0, g.N())
	for v := 0; v < g.N(); v++ {
		//lint:ignore indextrunc node ids are < g.N(), bounded by the family builders
		cur := int32(v)
		path := []int32{cur}
		for _, gi := range word {
			next := g.Port(int(cur), gi)
			if next != cur {
				path = append(path, next)
				cur = next
			}
		}
		if len(path) < 2 {
			return nil, fmt.Errorf("wormhole: node %d has a degenerate emulation path for dim %d", v, j)
		}
		msgs = append(msgs, Message{Path: path})
	}
	return msgs, nil
}

// flit identifies one flit in flight.
type flit struct {
	msg int
	seq int // 0-based flit index within the message
	hop int // index of the link it is queued on (Path[hop] -> Path[hop+1])
}

// SimulateCutThrough runs the flit-level simulation and returns the
// makespan in cycles (time until every flit of every message has arrived
// at its destination).  Every directed link moves one flit per cycle;
// queues are FIFO in arrival order with ties broken by message index for
// determinism.
func SimulateCutThrough(msgs []Message, flits int) (int, error) {
	if flits < 1 {
		return 0, fmt.Errorf("wormhole: flits must be >= 1")
	}
	type linkKey struct{ u, v int32 }
	queues := make(map[linkKey][]flit)
	// Inject: at cycle 0, flit 0 of every message is ready on hop 0; flit
	// s becomes ready at cycle s (source injects one flit per cycle).
	// We process cycle by cycle.
	pending := 0
	for mi, m := range msgs {
		if len(m.Path) < 2 {
			return 0, fmt.Errorf("wormhole: message %d has no hops", mi)
		}
		pending += flits
	}
	delivered := 0
	arrivedAtHop := func(f flit) linkKey {
		m := msgs[f.msg]
		return linkKey{m.Path[f.hop], m.Path[f.hop+1]}
	}
	// Seed injections for cycle 0.
	for mi := range msgs {
		queues[arrivedAtHop(flit{msg: mi, seq: 0, hop: 0})] = append(
			queues[arrivedAtHop(flit{msg: mi, seq: 0, hop: 0})], flit{msg: mi, seq: 0, hop: 0})
	}
	cycle := 0
	maxCycles := (len(msgs)*flits + flits) * 8
	for delivered < pending {
		cycle++
		if cycle > maxCycles {
			return 0, fmt.Errorf("wormhole: no progress after %d cycles (%d/%d delivered)", cycle, delivered, pending)
		}
		// Each link transmits its queue head this cycle.
		type arrival struct {
			f    flit
			next linkKey
			done bool
		}
		var arrivals []arrival
		var freed []linkKey
		// Deterministic link order.
		keys := make([]linkKey, 0, len(queues))
		for k := range queues {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].u != keys[b].u {
				return keys[a].u < keys[b].u
			}
			return keys[a].v < keys[b].v
		})
		for _, k := range keys {
			q := queues[k]
			if len(q) == 0 {
				freed = append(freed, k)
				continue
			}
			f := q[0]
			queues[k] = q[1:]
			m := msgs[f.msg]
			if f.hop+1 == len(m.Path)-1 {
				arrivals = append(arrivals, arrival{f: f, done: true})
			} else {
				nf := flit{msg: f.msg, seq: f.seq, hop: f.hop + 1}
				arrivals = append(arrivals, arrival{f: nf, next: linkKey{m.Path[nf.hop], m.Path[nf.hop+1]}})
			}
		}
		for _, k := range freed {
			delete(queues, k)
		}
		for _, a := range arrivals {
			if a.done {
				delivered++
				continue
			}
			queues[a.next] = append(queues[a.next], a.f)
		}
		// Source injects the next flit of each message (one per cycle).
		if cycle < flits {
			for mi := range msgs {
				f := flit{msg: mi, seq: cycle, hop: 0}
				queues[arrivedAtHop(f)] = append(queues[arrivedAtHop(f)], f)
			}
		}
	}
	return cycle, nil
}

// StoreAndForwardMakespan returns the store-and-forward completion time
// for the same workload under the SDC discipline of Theorem 3.1: each of
// the (up to) 3 generator transmissions is a full F-flit step, so the
// makespan is hops * F.
func StoreAndForwardMakespan(msgs []Message, flits int) int {
	maxHops := 0
	for _, m := range msgs {
		if h := len(m.Path) - 1; h > maxHops {
			maxHops = h
		}
	}
	return maxHops * flits
}

// Slowdown runs the cut-through simulation for dimension j and returns
// makespan/F, the wormhole/VCT slowdown relative to the HPN's direct
// transmission.
func Slowdown(w *superipg.Network, g topo.Ported, j, flits int) (float64, error) {
	msgs, err := EmulationPaths(w, g, j)
	if err != nil {
		return 0, err
	}
	mk, err := SimulateCutThrough(msgs, flits)
	if err != nil {
		return 0, err
	}
	return float64(mk) / float64(flits), nil
}
