// Package loadgen is the measurement core behind cmd/ipgload: an
// HDR-style log-bucketed latency histogram with exact merge, and
// coordinated-omission-safe open-loop / closed-loop load runners.  The
// package is HTTP-agnostic — callers supply a Do function — so the
// scheduling and recording logic is testable without sockets.
package loadgen

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values (nanoseconds) are grouped by power of
// two, each power split into 64 linear sub-buckets, so every recorded
// value lands in a bucket whose width is at most 1/64 (~1.6%) of the
// value.  Values below 128ns are bucketed exactly.  The full non-negative
// int64 range fits in a fixed array, so Record is two shifts and an
// atomic add — cheap enough to sit on the measurement path — and Merge is
// element-wise addition, which is exact and associative: per-worker
// histograms combine without losing tail fidelity, unlike sampled or
// decaying reservoirs.
const (
	subBucketBits = 6
	subBuckets    = 1 << subBucketBits // 64
	numBuckets    = 64 * subBuckets    // covers all of int64
)

// Histogram is a concurrency-safe log-linear latency histogram.  Record
// and Merge use atomics so many workers can share one histogram; the
// read-side methods (Quantile, Count, Max) take a racy snapshot and are
// meant to be called after the workers have stopped.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds, for Mean
	max    atomic.Int64
}

// bucketOf maps a non-negative value to its bucket index.  Values in
// [0, 2*subBuckets) map to themselves (exact); larger values keep their
// top 1+subBucketBits bits.
func bucketOf(v int64) int {
	if v < 2*subBuckets {
		return int(v)
	}
	shift := uint(bits.Len64(uint64(v))) - 1 - subBucketBits
	return int(shift+1)<<subBucketBits + int(v>>shift) - subBuckets
}

// bucketMax returns the largest value that maps to bucket index i — the
// representative value Quantile reports, so quantiles never understate.
func bucketMax(i int) int64 {
	if i < 2*subBuckets {
		return int64(i)
	}
	shift := uint(i>>subBucketBits) - 1
	mantissa := int64(i&(subBuckets-1)) + subBuckets
	return (mantissa+1)<<shift - 1
}

// Record adds one latency observation.  Negative values (clock skew)
// clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Merge adds o's observations into h.  The merge is exact: bucket counts
// add element-wise, so quantiles of the merged histogram equal quantiles
// of the concatenated sample streams (to bucket resolution) regardless
// of how the streams were split or the order of merging.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded value exactly (not bucket-rounded).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of the recorded values.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket containing the ceil(q*count)-th smallest observation, so the
// reported value is >= the true quantile and at most ~1.6% above it.
// The exact maximum is reported for q high enough to select the last
// observation.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	if rank >= n {
		return h.Max()
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketMax(i))
		}
	}
	return h.Max()
}

// Snapshot returns the raw bucket counts (for tests asserting exactness).
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, numBuckets)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// String summarizes the distribution for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d p50=%v p99=%v p999=%v max=%v}",
		h.Count(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}
