package loadgen

import (
	"fmt"
	"sort"
)

// calibrationEndpoint is the endpoint whose p99 normalizes the
// regression gate.  /healthz is a single static write, so its tail is a
// pure measure of the machine + HTTP stack; dividing every other
// endpoint's p99 by it yields a tail-amplification ratio that is stable
// across hardware, the same trick cmd/benchratio uses for kernel
// speedups (raw ns/op cannot be compared against a file committed from
// another machine, ratios can).
const calibrationEndpoint = "healthz"

// EndpointStats is one endpoint's measured latency profile in a Report.
// Latencies are microseconds (float for JSON readability).
type EndpointStats struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50us         float64 `json:"p50_us"`
	P99us         float64 `json:"p99_us"`
	P999us        float64 `json:"p999_us"`
	MaxUs         float64 `json:"max_us"`
	MeanUs        float64 `json:"mean_us"`
	// MaxRPSAtSLO is the highest open-loop target RPS at which this
	// endpoint's measured p99 stayed within the run's SLO (present only
	// when the run searched for it).
	MaxRPSAtSLO float64 `json:"max_rps_at_slo,omitempty"`
}

// Report is the ipgload output document (BENCH_SERVE.json).
type Report struct {
	Tool      string                   `json:"tool"`
	Note      string                   `json:"note"`
	Mode      string                   `json:"mode"` // open | closed
	TargetRPS float64                  `json:"target_rps,omitempty"`
	Conns     int                      `json:"conns"`
	Duration  string                   `json:"duration"`
	Mix       string                   `json:"mix"`
	Hot       float64                  `json:"hot_fraction"`
	SLOP99us  float64                  `json:"slo_p99_us,omitempty"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// StatsFor converts one class's run results into EndpointStats.
func StatsFor(c *ClassResult, elapsed float64) EndpointStats {
	us := func(q float64) float64 { return float64(c.Hist.Quantile(q).Nanoseconds()) / 1e3 }
	st := EndpointStats{
		Requests: c.Requests.Load(),
		Errors:   c.Errors.Load(),
		P50us:    us(0.50),
		P99us:    us(0.99),
		P999us:   us(0.999),
		MaxUs:    float64(c.Hist.Max().Nanoseconds()) / 1e3,
		MeanUs:   float64(c.Hist.Mean().Nanoseconds()) / 1e3,
	}
	if elapsed > 0 {
		st.ThroughputRPS = float64(st.Requests) / elapsed
	}
	return st
}

// minGateSamples is the per-endpoint sample floor below which the
// regression gate stays silent: quantiles of a handful of requests are
// noise, not evidence.
const minGateSamples = 200

// ratioSlack is the absolute slack added on top of the relative
// tolerance when comparing normalized p99 ratios.  Warm endpoints sit
// within a ratio point or two of the calibration endpoint, where
// scheduler jitter alone moves the ratio by fractions of a point; the
// slack keeps the gate about real regressions, not timer noise.
const ratioSlack = 0.75

// Compare gates cur against base: an endpoint (present in both reports
// with enough samples) fails only when BOTH regression signals trip —
// its p99 normalized by the same run's calibration-endpoint p99 exceeds
// the baseline's normalized p99 by more than tol (relative) plus a
// small absolute slack, AND its raw p99 exceeds the baseline's raw p99
// by more than tol.  The two signals cover each other's blind spot: on
// a slower machine raw p99 inflates but the ratio holds, and on a run
// where the calibration endpoint itself came in anomalously fast the
// ratio spikes but raw p99 holds; a genuine serving regression inflates
// both.  Returns one human-readable violation per failing endpoint,
// empty when the gate passes.
func Compare(cur, base *Report, tol float64) []string {
	curCal, curOK := calibration(cur)
	baseCal, baseOK := calibration(base)
	var violations []string
	names := make([]string, 0, len(cur.Endpoints))
	for name := range cur.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == calibrationEndpoint {
			continue
		}
		c := cur.Endpoints[name]
		b, ok := base.Endpoints[name]
		if !ok || c.Requests < minGateSamples || b.Requests < minGateSamples {
			continue
		}
		if b.P99us <= 0 {
			continue
		}
		if curOK && baseOK {
			curRatio := c.P99us / curCal
			baseRatio := b.P99us / baseCal
			ratioRegressed := curRatio > baseRatio*(1+tol)+ratioSlack
			rawRegressed := c.P99us > b.P99us*(1+tol)
			if ratioRegressed && rawRegressed {
				violations = append(violations, fmt.Sprintf(
					"%s: p99 %.0fus (%.2fx healthz) vs baseline %.0fus (%.2fx): both raw and normalized regressed beyond %.0f%%",
					name, c.P99us, curRatio, b.P99us, baseRatio, tol*100))
			}
			continue
		}
		// No calibration endpoint on one side: fall back to the raw p99,
		// which is only meaningful baseline-refresh-on-same-machine.
		if c.P99us > b.P99us*(1+tol) {
			violations = append(violations, fmt.Sprintf(
				"%s: p99 %.0fus vs baseline %.0fus: regression beyond %.0f%% (no %s calibration available)",
				name, c.P99us, b.P99us, tol*100, calibrationEndpoint))
		}
	}
	return violations
}

// calibration returns the report's calibration p99, when measured with
// enough samples to trust.
func calibration(r *Report) (float64, bool) {
	c, ok := r.Endpoints[calibrationEndpoint]
	if !ok || c.Requests < minGateSamples || c.P99us <= 0 {
		return 0, false
	}
	return c.P99us, true
}
