package loadgen

import (
	"strings"
	"testing"
)

// rep builds a report whose endpoints all have enough samples to gate.
// Latencies are microseconds, keyed by endpoint name; "healthz" is the
// calibration endpoint.
func rep(p99 map[string]float64) *Report {
	r := &Report{Endpoints: map[string]EndpointStats{}}
	for name, us := range p99 {
		r.Endpoints[name] = EndpointStats{Requests: minGateSamples, P99us: us}
	}
	return r
}

// The gate needs BOTH signals to trip: normalized ratio regression alone
// (e.g. the calibration endpoint came in anomalously fast on one run)
// must pass, raw regression alone (e.g. a uniformly slower machine) must
// pass, and a genuine regression — both raw and normalized — must fail.
func TestCompareTwoSignalGate(t *testing.T) {
	base := rep(map[string]float64{"healthz": 5000, "metrics": 6000})

	cases := []struct {
		name string
		cur  *Report
		fail bool
	}{
		// Identical run: clean pass.
		{"identical", rep(map[string]float64{"healthz": 5000, "metrics": 6000}), false},
		// Calibration came in 2.5x faster while metrics held: the ratio
		// jumps 1.2x -> 3.0x but raw p99 did not move. Must pass.
		{"fast calibration only", rep(map[string]float64{"healthz": 2000, "metrics": 6000}), false},
		// Uniformly slower machine: raw doubles everywhere, ratio holds.
		{"slower machine", rep(map[string]float64{"healthz": 10000, "metrics": 12000}), false},
		// Raw regression with the calibration dragged along far enough
		// that the ratio stays inside tol+slack: machine-level shift.
		{"raw up ratio flat", rep(map[string]float64{"healthz": 7000, "metrics": 9000}), false},
		// Genuine regression: metrics p99 triples against a steady
		// calibration, so raw and normalized both blow through 15%.
		{"real regression", rep(map[string]float64{"healthz": 5000, "metrics": 18000}), true},
	}
	for _, tc := range cases {
		violations := Compare(tc.cur, base, 0.15)
		if got := len(violations) > 0; got != tc.fail {
			t.Errorf("%s: gate fail=%v, want %v (violations: %v)", tc.name, got, tc.fail, violations)
		}
	}
}

// Endpoints below the sample floor are skipped, and a missing
// calibration class falls back to the raw-only comparison.
func TestCompareSampleFloorAndFallback(t *testing.T) {
	base := rep(map[string]float64{"healthz": 5000, "metrics": 6000})

	thin := rep(map[string]float64{"healthz": 5000, "metrics": 60000})
	e := thin.Endpoints["metrics"]
	e.Requests = minGateSamples - 1
	thin.Endpoints["metrics"] = e
	if v := Compare(thin, base, 0.15); len(v) != 0 {
		t.Errorf("under-sampled endpoint gated anyway: %v", v)
	}

	noCal := rep(map[string]float64{"metrics": 60000})
	v := Compare(noCal, base, 0.15)
	if len(v) != 1 || !strings.Contains(v[0], "no healthz calibration") {
		t.Errorf("raw fallback: got %v, want one no-calibration violation", v)
	}
	if v := Compare(rep(map[string]float64{"metrics": 6100}), base, 0.15); len(v) != 0 {
		t.Errorf("raw fallback within tolerance failed: %v", v)
	}
}
