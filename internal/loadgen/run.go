package loadgen

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Do performs request number i and returns the workload class it chose
// (an index < the run's class count, for per-class histograms) and the
// request error, if any.  Implementations pick the endpoint/key mix
// deterministically from i so runs are reproducible.
type Do func(i int64) (class int, err error)

// Options configures one measurement run.
type Options struct {
	// OpenLoop selects the pacing model.  Open-loop runs issue requests
	// on a fixed schedule of intended start times (RPS) regardless of how
	// fast the server answers, and each latency is measured from the
	// *intended* start — so a stalled server inflates the recorded tail
	// instead of silently slowing the request stream (the coordinated
	// omission trap closed-loop tools fall into).  Closed-loop runs keep
	// Conns workers saturated back-to-back, measuring per-request service
	// time only.
	OpenLoop bool
	// RPS is the open-loop target request rate (ignored closed-loop).
	RPS float64
	// Conns is the worker count: concurrent requests in flight
	// (closed-loop) or the cap on concurrent sends (open-loop; scheduled
	// requests queue behind it, with their queueing delay measured).
	Conns int
	// Duration is how long new requests are scheduled/issued.
	Duration time.Duration
	// DrainTimeout bounds how long after Duration an open-loop run keeps
	// executing the scheduled backlog a slow server left behind; requests
	// still queued at the drain deadline are recorded as errors with
	// their queueing delay as latency (never silently dropped — dropping
	// them would reintroduce coordinated omission).  0 means 10s.
	DrainTimeout time.Duration
	// Classes is the number of workload classes Do may return.
	Classes int
}

// ClassResult is one workload class's share of a run.
type ClassResult struct {
	Hist     Histogram
	Requests atomic.Int64
	Errors   atomic.Int64
}

// Result is one measurement run.
type Result struct {
	Class   []ClassResult
	Total   Histogram
	Sent    int64 // requests executed (including errored)
	Dropped int64 // open-loop: scheduled requests abandoned at the drain deadline
	Elapsed time.Duration
}

// ActualRPS is the achieved request rate over the issuing window.
func (r *Result) ActualRPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Sent) / r.Elapsed.Seconds()
}

// Errors sums the per-class error counts.
func (r *Result) Errors() int64 {
	var n int64
	for i := range r.Class {
		n += r.Class[i].Errors.Load()
	}
	return n
}

func (o Options) withDefaults() (Options, error) {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.Classes <= 0 {
		o.Classes = 1
	}
	if o.Duration <= 0 {
		return o, errors.New("loadgen: Duration must be positive")
	}
	if o.OpenLoop && o.RPS <= 0 {
		return o, errors.New("loadgen: open-loop runs need a positive RPS")
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o, nil
}

// Run executes one measurement run and returns its histograms.  ctx
// cancellation stops the run early (partial results are returned with
// ctx's error).
func Run(ctx context.Context, opts Options, do Do) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &Result{Class: make([]ClassResult, opts.Classes)}
	if opts.OpenLoop {
		err = runOpen(ctx, opts, do, res)
	} else {
		err = runClosed(ctx, opts, do, res)
	}
	return res, err
}

// record executes request i and files its latency under the class Do
// returned.  from is the timestamp latency is measured from: the
// intended schedule slot (open-loop) or the actual send time
// (closed-loop).
func (res *Result) record(do Do, i int64, from time.Time) {
	class, err := do(i)
	lat := time.Since(from)
	if class < 0 || class >= len(res.Class) {
		class = 0
	}
	c := &res.Class[class]
	c.Hist.Record(lat)
	c.Requests.Add(1)
	if err != nil {
		c.Errors.Add(1)
	}
	res.Total.Record(lat)
}

// runClosed keeps Conns workers issuing back-to-back until Duration
// elapses.  Latency is pure service time; throughput is whatever the
// server sustains.
func runClosed(ctx context.Context, opts Options, do Do, res *Result) error {
	start := time.Now()
	deadline := start.Add(opts.Duration)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opts.Conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) && ctx.Err() == nil {
				i := next.Add(1) - 1
				res.record(do, i, time.Now())
			}
		}()
	}
	wg.Wait()
	res.Sent = next.Load()
	res.Elapsed = time.Since(start)
	return ctx.Err()
}

// runOpen issues requests on the intended-start schedule start + i/RPS.
// A scheduler goroutine enqueues each slot's intended timestamp the
// moment it comes due; Conns workers drain the queue.  When the server
// keeps up the queue stays empty and latency equals service time; when
// it stalls, slots accumulate and every queued request's measured
// latency includes its time in the queue — the coordinated-omission-safe
// accounting.  The queue is sized for the whole schedule, so a stall
// never blocks the scheduler itself.
func runOpen(ctx context.Context, opts Options, do Do, res *Result) error {
	total := int64(opts.RPS * opts.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / opts.RPS)
	type slot struct {
		i        int64
		intended time.Time
	}
	queue := make(chan slot, total)
	start := time.Now()

	go func() {
		defer close(queue)
		timer := time.NewTimer(0)
		defer timer.Stop()
		if !timer.Stop() {
			<-timer.C
		}
		for i := int64(0); i < total; i++ {
			intended := start.Add(time.Duration(i) * interval)
			if wait := time.Until(intended); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					return
				}
			} else if ctx.Err() != nil {
				return
			}
			queue <- slot{i: i, intended: intended}
		}
	}()

	drainDeadline := start.Add(opts.Duration + opts.DrainTimeout)
	var sent, dropped atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opts.Conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range queue {
				if ctx.Err() != nil || time.Now().After(drainDeadline) {
					// Abandoned backlog: record the queueing delay as the
					// latency (under class 0) and count an error, so the
					// sample count still reflects the intended schedule.
					c := &res.Class[0]
					lat := time.Since(s.intended)
					c.Hist.Record(lat)
					c.Requests.Add(1)
					c.Errors.Add(1)
					res.Total.Record(lat)
					dropped.Add(1)
					continue
				}
				res.record(do, s.i, s.intended)
				sent.Add(1)
			}
		}()
	}
	wg.Wait()
	res.Sent = sent.Load()
	res.Dropped = dropped.Load()
	res.Elapsed = time.Since(start)
	if res.Elapsed > opts.Duration {
		// Throughput is defined over the scheduling window; the drain tail
		// only finishes already-scheduled work.
		res.Elapsed = opts.Duration
	}
	return ctx.Err()
}
