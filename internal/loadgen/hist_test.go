package loadgen

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistExactSmallValues(t *testing.T) {
	// Values below 2*subBuckets ns land in exact unit buckets, so every
	// quantile of a small-value distribution is exact.
	var h Histogram
	for v := 1; v <= 100; v++ {
		h.Record(time.Duration(v))
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.01, 1}, {0.50, 50}, {0.99, 99}, {1.0, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d, want 100", h.Count())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %v, want 100ns", h.Max())
	}
}

func TestHistGoldenQuantilesUniform(t *testing.T) {
	// Uniform 1..1_000_000 ns: every quantile is known analytically and
	// the log-bucketed estimate must sit within one bucket width (~1.6%)
	// above it.
	var h Histogram
	for v := int64(1); v <= 1_000_000; v++ {
		h.Record(time.Duration(v))
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 0.999} {
		want := q * 1e6
		got := float64(h.Quantile(q))
		if got < want {
			t.Errorf("Quantile(%v) = %v, below true value %v (quantiles must never understate)", q, got, want)
		}
		if got > want*1.02 {
			t.Errorf("Quantile(%v) = %v, more than 2%% above true value %v", q, got, want)
		}
	}
	if h.Max() != 1_000_000 {
		t.Errorf("Max = %v, want 1ms", h.Max())
	}
}

func TestHistGoldenQuantilesBimodal(t *testing.T) {
	// 99 fast (10us) : 1 slow (10ms) — the tail shape a stalled server
	// produces.  p50 must report the fast mode, p999 the slow one.
	var h Histogram
	for i := 0; i < 9900; i++ {
		h.Record(10 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Millisecond)
	}
	if p50 := h.Quantile(0.50); p50 < 10*time.Microsecond || p50 > 11*time.Microsecond {
		t.Errorf("p50 = %v, want ~10us", p50)
	}
	if p99 := h.Quantile(0.99); p99 > 11*time.Microsecond {
		t.Errorf("p99 = %v, want the fast mode (the slow mode is exactly the last 1%%)", p99)
	}
	if p999 := h.Quantile(0.999); p999 < 10*time.Millisecond {
		t.Errorf("p999 = %v, want the 10ms mode", p999)
	}
}

func TestHistMergeExactAndAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 30_000)
	for i := range samples {
		// Log-uniform over ~6 decades, heavy on the tail.
		samples[i] = time.Duration(1 + rng.Int63n(1<<uint(10+rng.Intn(30))))
	}
	var whole Histogram
	var parts [3]Histogram
	for i, s := range samples {
		whole.Record(s)
		parts[i%3].Record(s)
	}

	// (a+b)+c and a+(b+c) must both equal the unsplit histogram, bucket
	// by bucket — the merge is exact, not approximate.
	var left, right Histogram
	left.Merge(&parts[0])
	left.Merge(&parts[1])
	left.Merge(&parts[2])
	right.Merge(&parts[2])
	right.Merge(&parts[1])
	right.Merge(&parts[0])

	ws, ls, rs := whole.Snapshot(), left.Snapshot(), right.Snapshot()
	for i := range ws {
		if ws[i] != ls[i] || ws[i] != rs[i] {
			t.Fatalf("bucket %d: whole=%d left=%d right=%d — merge is not exact/associative", i, ws[i], ls[i], rs[i])
		}
	}
	if whole.Count() != left.Count() || whole.Max() != left.Max() || whole.Mean() != left.Mean() {
		t.Fatalf("summary stats diverge after merge: whole=%v left=%v", whole.String(), left.String())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if whole.Quantile(q) != left.Quantile(q) || whole.Quantile(q) != right.Quantile(q) {
			t.Fatalf("Quantile(%v) diverges after merge", q)
		}
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket,
	// and bucket indexes must be monotone in the value.
	last := -1
	for _, v := range []int64{0, 1, 63, 64, 127, 128, 129, 1000, 12345, 1 << 20, 1<<40 + 12345, 1<<62 + 999} {
		b := bucketOf(v)
		if b < last {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		last = b
		if got := bucketOf(bucketMax(b)); got != b {
			t.Errorf("bucketMax(%d)=%d maps to bucket %d", b, bucketMax(b), got)
		}
		if bucketMax(b) < v {
			t.Errorf("bucketMax(%d)=%d below member value %d", b, bucketMax(b), v)
		}
	}
}
