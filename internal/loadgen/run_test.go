package loadgen

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunClosedCountsAndClasses(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(context.Background(), Options{
		Conns:    4,
		Duration: 200 * time.Millisecond,
		Classes:  2,
	}, func(i int64) (int, error) {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return int(i % 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != calls.Load() {
		t.Errorf("Sent=%d but Do ran %d times", res.Sent, calls.Load())
	}
	if res.Sent < 100 {
		t.Errorf("4 workers x 200ms of 1ms ops sent only %d requests", res.Sent)
	}
	per := res.Class[0].Requests.Load() + res.Class[1].Requests.Load()
	if per != res.Sent {
		t.Errorf("class requests %d != sent %d", per, res.Sent)
	}
	if got := int64(res.Total.Count()); got != res.Sent {
		t.Errorf("histogram count %d != sent %d", got, res.Sent)
	}
	if res.Errors() != 0 {
		t.Errorf("unexpected errors: %d", res.Errors())
	}
}

func TestRunOpenKeepsSchedule(t *testing.T) {
	// A fast server at 500 RPS for 400ms: the run must issue ~the whole
	// schedule and latencies must stay tiny (no queueing).
	res, err := Run(context.Background(), Options{
		OpenLoop: true,
		RPS:      500,
		Conns:    8,
		Duration: 400 * time.Millisecond,
	}, func(i int64) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	want := int64(500 * 0.4)
	if res.Sent < want*8/10 || res.Sent > want+1 {
		t.Errorf("sent %d of %d scheduled requests", res.Sent, want)
	}
	if p99 := res.Total.Quantile(0.99); p99 > 50*time.Millisecond {
		t.Errorf("unloaded open-loop p99 = %v, expected near-zero", p99)
	}
}

// TestCoordinatedOmissionRegression is the guard the ISSUE asks for: a
// stalled server must inflate the open-loop p99, not hide it.  The same
// stall pattern measured closed-loop yields a tiny p99 (the classic
// coordinated-omission blind spot, kept here as the contrast); open-loop
// measurement from intended start times surfaces the queueing delay the
// stall imposed on every scheduled-but-delayed request.
func TestCoordinatedOmissionRegression(t *testing.T) {
	const (
		rps      = 200
		duration = 1 * time.Second
		stall    = 400 * time.Millisecond
	)
	// Server model: the first Conns requests hit a stall (a lock-held
	// pause); everything afterwards is instant.  With 2 conns this
	// freezes the pipeline for ~stall while the schedule keeps coming
	// due.
	mkDo := func() Do {
		var n atomic.Int64
		return func(i int64) (int, error) {
			if n.Add(1) <= 2 {
				time.Sleep(stall)
			}
			return 0, nil
		}
	}

	open, err := Run(context.Background(), Options{
		OpenLoop: true, RPS: rps, Conns: 2, Duration: duration,
	}, mkDo())
	if err != nil {
		t.Fatal(err)
	}
	closed, err := Run(context.Background(), Options{
		Conns: 2, Duration: duration,
	}, mkDo())
	if err != nil {
		t.Fatal(err)
	}

	// The schedule must survive the stall: scheduled requests queue (and
	// are all eventually measured), never silently vanish.
	want := int64(rps * duration.Seconds())
	if got := open.Sent + open.Dropped; got < want*8/10 {
		t.Fatalf("open loop accounted %d of %d scheduled requests — the stall suppressed the schedule", got, want)
	}

	// Open-loop p99 must carry the queueing delay: ~80 requests came due
	// during the 400ms stall, which is >1%% of ~200, so the p99 sits at
	// a large fraction of the stall.
	if p99 := open.Total.Quantile(0.99); p99 < stall/4 {
		t.Errorf("open-loop p99 = %v, want >= %v: stall-induced queueing delay missing from the tail", p99, stall/4)
	}

	// Closed loop records the same stall as just 2 slow samples among
	// thousands of fast ones — p99 stays tiny.  (This is the bug class
	// the open-loop mode exists to avoid; asserted so the contrast is
	// pinned, with a generous bound to stay timing-robust.)
	if p99 := closed.Total.Quantile(0.99); p99 >= stall/4 {
		t.Errorf("closed-loop p99 = %v unexpectedly large; contrast with open loop lost", p99)
	}
}

func TestRunOptionValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{Duration: 0}, func(int64) (int, error) { return 0, nil }); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(context.Background(), Options{OpenLoop: true, Duration: time.Second}, func(int64) (int, error) { return 0, nil }); err == nil {
		t.Error("open loop without RPS accepted")
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, Options{OpenLoop: true, RPS: 10, Conns: 1, Duration: 10 * time.Second}, func(int64) (int, error) { return 0, nil })
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("cancelled run took %v to stop", time.Since(start))
	}
}
