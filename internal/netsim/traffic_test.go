package netsim

import (
	"math/rand"
	"testing"

	"ipg/internal/topo"
)

func TestBitComplementStressesBisection(t *testing.T) {
	// Every bit-complement packet crosses the top-bit cut: off-chip hops
	// per packet equal the full intercluster distance l-1... on the
	// hypercube: every packet flips all d bits, so off-chip hops = d-logM.
	net := mustHypercube(t, 6, 2, 1e9)
	perm := BitComplement(6)
	res, err := RunPermutation(net, 1, perm, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered != 64 {
		t.Fatalf("delivered %d", res.Stats.Delivered)
	}
	// All 4 off-chip dimensions flipped by every packet.
	if got := res.Stats.OffChipPerPacket(); got != 4.0 {
		t.Errorf("off-chip per packet = %v, want 4", got)
	}
}

func TestHotSpotSaturatesEarlier(t *testing.T) {
	net := mustHypercube(t, 6, 2, 4.0)
	uniform, err := RunRandomUniform(net, 5, 0.3, 150, 300)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := RunHotSpot(net, 5, 0.3, 0.3, 0, 150, 300)
	if err != nil {
		t.Fatal(err)
	}
	// 30% of traffic converging on node 0 must hurt latency or saturate.
	if !hot.Saturated && hot.Latency <= uniform.Latency {
		t.Errorf("hot-spot latency %v should exceed uniform %v (or saturate)", hot.Latency, uniform.Latency)
	}
	if _, err := RunHotSpot(net, 5, 0.3, 1.5, 0, 10, 10); err == nil {
		t.Error("bad hotFrac should error")
	}
	if _, err := RunHotSpot(net, 5, 0.3, 0.5, 9999, 10, 10); err == nil {
		t.Error("bad hot node should error")
	}
}

func TestLatencyProbePercentiles(t *testing.T) {
	net := mustHypercube(t, 6, 2, 1e9)
	ps, err := LatencyProbe(net, 7, 0.1, 100, 300, []float64{0.5, 0.95, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !(ps[0] <= ps[1] && ps[1] <= ps[2]) {
		t.Errorf("percentiles not monotone: %v", ps)
	}
	// Median latency at low load ~ average distance 3 (within slack).
	if ps[0] < 1 || ps[0] > 6 {
		t.Errorf("median latency %d implausible", ps[0])
	}
	// Max cannot exceed the simulated horizon.
	if ps[2] > 400 {
		t.Errorf("max latency %d too large", ps[2])
	}
}

func TestLatencyHistogramLifecycle(t *testing.T) {
	net := mustHypercube(t, 4, 1, 1e9)
	s, err := New(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LatencyPercentiles([]float64{0.5}); err == nil {
		t.Error("percentiles without histogram should error")
	}
	s.EnableLatencyHistogram(64)
	if _, err := s.LatencyPercentiles([]float64{0.5}); err == nil {
		t.Error("percentiles without deliveries should error")
	}
	if err := s.Enqueue(0, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := s.LatencyPercentiles([]float64{0.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] != ps[1] || ps[0] < 1 {
		t.Errorf("single packet percentiles = %v", ps)
	}
	// Reset clears the histogram but keeps it enabled.
	s.ResetStats()
	if _, err := s.LatencyPercentiles([]float64{0.5}); err == nil {
		t.Error("after reset there are no recorded deliveries")
	}
	if _, err := s.LatencyPercentiles(nil); err == nil {
		// nil percentiles: fine, returns empty — but no deliveries, so
		// this must error first.
		t.Error("expected error with empty histogram")
	}
}

func TestRandomPermutationWorkload(t *testing.T) {
	net := mustHypercube(t, 6, 2, 1e9)
	perm := RandomPermutation(rand.New(rand.NewSource(3)), net.N)
	res, err := RunPermutation(net, 2, perm, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered != countMoves(perm) {
		t.Errorf("delivered %d, want %d", res.Stats.Delivered, countMoves(perm))
	}
}

func TestAdaptiveRoutingHelpsAdversarialTraffic(t *testing.T) {
	// Bit-complement traffic concentrates on dimension-order paths; the
	// minimal adaptive router spreads it and must not be slower.
	base := mustHypercube(t, 8, 2, 4.0)
	adaptive := mustHypercube(t, 8, 2, 4.0)
	adaptive.Router = AdaptiveHypercube{D: 8}
	perm := BitComplement(8)
	rb, err := RunPermutation(base, 1, perm, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RunPermutation(adaptive, 1, perm, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Stats.Delivered != rb.Stats.Delivered {
		t.Fatalf("deliveries differ: %d vs %d", ra.Stats.Delivered, rb.Stats.Delivered)
	}
	if ra.Rounds > rb.Rounds {
		t.Errorf("adaptive (%d rounds) slower than dimension-order (%d)", ra.Rounds, rb.Rounds)
	}
	// Minimal adaptivity preserves shortest paths.
	if ra.Stats.Hops != rb.Stats.Hops {
		t.Errorf("adaptive hops %d != minimal %d", ra.Stats.Hops, rb.Stats.Hops)
	}
}

func TestAdaptiveRouterFallback(t *testing.T) {
	r := AdaptiveHypercube{D: 4}
	if r.NextPort(5, 5) != -1 || r.NextPortAdaptive(5, 5, func(int) int { return 0 }) != -1 {
		t.Error("at-destination should return -1")
	}
	// With equal queues it picks the lowest differing dimension, matching
	// dimension-order.
	got := r.NextPortAdaptive(0b0000, 0b1010, func(int) int { return 0 })
	if got != 1 {
		t.Errorf("tie-break port = %d, want 1", got)
	}
	// With a congested low dimension it diverts.
	got = r.NextPortAdaptive(0b0000, 0b1010, func(p int) int {
		if p == 1 {
			return 5
		}
		return 0
	})
	if got != 3 {
		t.Errorf("diverted port = %d, want 3", got)
	}
}

func TestSinglePortSlowsTotalExchange(t *testing.T) {
	// Under the single-port model each node injects at most one packet per
	// round, so a TE must take roughly degree times longer than all-port.
	allPort := mustHypercube(t, 5, 1, 1e9)
	single := mustHypercube(t, 5, 1, 1e9)
	single.SinglePort = true
	ra, err := RunTotalExchange(allPort, 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunTotalExchange(single, 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Stats.Delivered != rs.Stats.Delivered {
		t.Fatalf("deliveries differ: %d vs %d", ra.Stats.Delivered, rs.Stats.Delivered)
	}
	if rs.Rounds <= ra.Rounds {
		t.Errorf("single-port TE (%d rounds) should be slower than all-port (%d)", rs.Rounds, ra.Rounds)
	}
	ratio := float64(rs.Rounds) / float64(ra.Rounds)
	if ratio < 1.5 || ratio > 12 {
		t.Errorf("single/all-port ratio = %.2f, want within (1.5, 12)", ratio)
	}
}

func TestSinglePortRoundRobinFairness(t *testing.T) {
	// A node with packets on two ports must alternate between them.
	net := &Network{
		Name:  "fork",
		N:     3,
		Ports: topo.PortMapFromRows([][]int32{{1, 2}, {}, {}}, [][]float64{{1, 1}, {}, {}}),
		Router: routeFunc(func(cur, dst int) int {
			return dst - 1
		}),
		SinglePort: true,
	}
	s, err := New(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Enqueue(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Enqueue(0, 2); err != nil {
			t.Fatal(err)
		}
	}
	// 8 packets, one transmission per round: 8 rounds to drain.
	for i := 0; i < 8; i++ {
		moved, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if moved != 1 {
			t.Fatalf("round %d moved %d packets, want 1", i, moved)
		}
	}
	if st := s.Stats(); st.Delivered != 8 {
		t.Errorf("delivered %d, want 8", st.Delivered)
	}
}

// TestFailureInjectionBrokenRouter verifies the simulator detects a router
// that sends packets in circles (undeliverable traffic must surface as an
// error, not silent loss).
func TestFailureInjectionBrokenRouter(t *testing.T) {
	net := mustHypercube(t, 4, 1, 8.0)
	// A router that always returns port 0 never reaches most destinations.
	net.Router = routeFunc(func(cur, dst int) int { return 0 })
	perm := BitComplement(4)
	if _, err := RunPermutation(net, 1, perm, 200); err == nil {
		t.Error("broken router should produce an undelivered-packets error")
	}
}

// TestFailureInjectionInvalidPort verifies Enqueue rejects routers
// returning out-of-range ports.
func TestFailureInjectionInvalidPort(t *testing.T) {
	net := mustHypercube(t, 4, 1, 8.0)
	net.Router = routeFunc(func(cur, dst int) int { return 99 })
	s, err := New(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(0, 3); err == nil {
		t.Error("invalid port should be rejected")
	}
}
