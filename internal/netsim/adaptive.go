package netsim

// This file adds minimal adaptive routing: a router may consult the local
// output-queue lengths and pick any profitable port.  Minimal adaptive
// routing on hypercubes (any differing dimension, least-loaded first)
// spreads adversarial permutations over more links than deterministic
// dimension-order routing.

// AdaptiveRouter is an optional extension of Router: when the network's
// router implements it, the simulator passes the current local queue
// lengths to the routing decision.
type AdaptiveRouter interface {
	Router
	// NextPortAdaptive returns the forwarding port given qlen(p), the
	// number of packets currently waiting on port p at cur.
	NextPortAdaptive(cur, dst int, qlen func(port int) int) int
}

// AdaptiveHypercube routes minimally but adaptively on a hypercube whose
// port b flips bit b: among all differing dimensions it picks the one with
// the shortest local output queue (ties to the lowest dimension, keeping
// the choice deterministic).
type AdaptiveHypercube struct{ D int }

// NextPort implements Router (used when no queue information is
// available): dimension-order.
func (r AdaptiveHypercube) NextPort(cur, dst int) int {
	return HypercubeRouter{D: r.D}.NextPort(cur, dst)
}

// NextPortAdaptive implements AdaptiveRouter.
func (r AdaptiveHypercube) NextPortAdaptive(cur, dst int, qlen func(port int) int) int {
	diff := cur ^ dst
	if diff == 0 {
		return -1
	}
	best, bestLen := -1, 0
	for b := 0; b < r.D; b++ {
		if diff&(1<<b) == 0 {
			continue
		}
		l := qlen(b)
		if best < 0 || l < bestLen {
			best, bestLen = b, l
		}
	}
	return best
}

// routePort picks the forwarding port for a packet at node v, consulting
// the adaptive interface when the router provides it.
func (s *Sim) routePort(v int, dst int32) int {
	if ar, ok := s.Net.Router.(AdaptiveRouter); ok {
		return ar.NextPortAdaptive(v, int(dst), func(port int) int {
			return len(s.queues[v][port]) - s.qhead[v][port]
		})
	}
	return s.Net.Router.NextPort(v, int(dst))
}
