package netsim

import (
	"fmt"
	"strings"
	"testing"

	"ipg/internal/fault"
	"ipg/internal/ist"
)

// multipathSource picks the richest tree family each fault-test network
// supports: the closed-form k = 6 family for Q6 (netsim hypercube node
// ids are the addresses), the generic 2-IST for everything else.
func multipathSource(t *testing.T, net *Network) TreeSource {
	t.Helper()
	if net.N == 64 && strings.HasPrefix(net.Name, "Q6/") {
		return func(dst int) (*ist.Trees, error) { return ist.BuildHypercube(6, dst, 6) }
	}
	return GenericTreeSource(net, 2)
}

// aliveCount returns the number of alive nodes of net.
func aliveCount(net *Network) int64 {
	var alive int64
	for v := 0; v < net.N; v++ {
		if !net.nodeDead(v) {
			alive++
		}
	}
	return alive
}

// TestMultipathDeliversReachable is the tentpole's routing pin: under
// every PR-5 fault mode, the multipath router delivers EXACTLY the
// reachable packet set — never below the fault-aware single-path router
// (they tie at the reachability optimum, the strongest form of the
// "≥ whenever any disjoint tree survives" guarantee) — never misroutes,
// and resolves every alive pair into exactly one of the tree, fallback,
// or unreachable tiers.
func TestMultipathDeliversReachable(t *testing.T) {
	for _, base := range faultTestNetworks(t) {
		base := base
		links := len(undirectedLinks(base))
		specs := []fault.Spec{
			{Mode: fault.Links, Count: links / 20, Seed: 0},
			{Mode: fault.Nodes, Count: base.N / 16, Seed: 0},
			{Mode: fault.Chips, Count: 2, Seed: 0},
		}
		perm := rotatePerm(base.N)
		total := permTotal(perm)
		for _, spec := range specs {
			for seed := int64(1); seed <= 3; seed++ {
				spec := spec
				spec.Seed = seed
				name := fmt.Sprintf("%s/%s/seed=%d", base.Name, spec.Mode, seed)
				t.Run(name, func(t *testing.T) {
					net, _, err := Degrade(base, spec)
					if err != nil {
						t.Fatal(err)
					}
					far, err := NewFaultAwareRouter(net)
					if err != nil {
						t.Fatal(err)
					}
					net.Router = far
					awr, err := RunPermutation(net, 7, perm, 1<<16)
					if err != nil {
						t.Fatal(err)
					}

					mpr, err := NewMultipathRouter(net, multipathSource(t, base))
					if err != nil {
						t.Fatal(err)
					}
					alive := aliveCount(net)
					if got := mpr.TreePairs.Load() + mpr.FallbackPairs.Load() + mpr.UnreachablePairs.Load(); got != alive*(alive-1) {
						t.Fatalf("pair accounting: %d tree + %d fallback + %d unreachable = %d, want %d alive pairs",
							mpr.TreePairs.Load(), mpr.FallbackPairs.Load(), mpr.UnreachablePairs.Load(), got, alive*(alive-1))
					}
					net.Router = mpr
					mp, err := RunPermutation(net, 7, perm, 1<<16)
					if err != nil {
						t.Fatal(err)
					}
					conservationCheck(t, name, mp.Stats)
					if mp.Stats.InFlight != 0 {
						t.Fatalf("%d multipath packets still in flight", mp.Stats.InFlight)
					}
					if mp.Stats.Retried != 0 {
						t.Fatalf("multipath routing misrouted %d times; the table must never hit a dead port", mp.Stats.Retried)
					}
					if mp.Stats.Injected != total || awr.Stats.Injected != total {
						t.Fatalf("injected %d/%d, want %d", mp.Stats.Injected, awr.Stats.Injected, total)
					}
					want := awareReachable(net, far, perm)
					if mp.Stats.Delivered != want {
						t.Fatalf("multipath delivered %d of %d reachable packets", mp.Stats.Delivered, want)
					}
					if mp.Stats.Delivered < awr.Stats.Delivered {
						t.Fatalf("multipath delivered %d < fault-aware %d", mp.Stats.Delivered, awr.Stats.Delivered)
					}
				})
			}
		}
	}
}

// TestMultipathHealthyDeliversAll: on an intact network every pair rides
// tree 0 (no fallback, nothing unreachable) and every packet arrives.
func TestMultipathHealthyDeliversAll(t *testing.T) {
	for _, base := range faultTestNetworks(t) {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			mpr, err := NewMultipathRouter(base, multipathSource(t, base))
			if err != nil {
				t.Fatal(err)
			}
			n := int64(base.N)
			if mpr.TreePairs.Load() != n*(n-1) || mpr.FallbackPairs.Load() != 0 || mpr.UnreachablePairs.Load() != 0 {
				t.Fatalf("healthy pairs: tree %d fallback %d unreachable %d, want %d/0/0",
					mpr.TreePairs.Load(), mpr.FallbackPairs.Load(), mpr.UnreachablePairs.Load(), n*(n-1))
			}
			net := *base
			net.Router = mpr
			perm := rotatePerm(base.N)
			res, err := RunPermutation(&net, 7, perm, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Delivered != permTotal(perm) || res.Stats.Dropped != 0 {
				t.Fatalf("healthy multipath delivered %d dropped %d of %d", res.Stats.Delivered, res.Stats.Dropped, permTotal(perm))
			}
		})
	}
}

// TestMultipathBeatsOblivious: same ~5% link-fault setup as the
// fault-aware comparison — multipath must never deliver less than the
// oblivious router's randomized diversions.
func TestMultipathBeatsOblivious(t *testing.T) {
	for _, base := range faultTestNetworks(t) {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			links := len(undirectedLinks(base))
			count := links / 20
			if count < 1 {
				count = 1
			}
			perm := rotatePerm(base.N)
			for seed := int64(1); seed <= 3; seed++ {
				spec := fault.Spec{Mode: fault.Links, Count: count, Seed: seed}
				netObl, _, err := Degrade(base, spec)
				if err != nil {
					t.Fatal(err)
				}
				obl, err := RunPermutation(netObl, 7, perm, 1<<16)
				if err != nil {
					t.Fatal(err)
				}
				netMP, _, err := Degrade(base, spec)
				if err != nil {
					t.Fatal(err)
				}
				mpr, err := NewMultipathRouter(netMP, multipathSource(t, base))
				if err != nil {
					t.Fatal(err)
				}
				netMP.Router = mpr
				mp, err := RunPermutation(netMP, 7, perm, 1<<16)
				if err != nil {
					t.Fatal(err)
				}
				if mp.Stats.Delivered < obl.Stats.Delivered {
					t.Fatalf("seed %d: multipath delivered %d < oblivious %d", seed, mp.Stats.Delivered, obl.Stats.Delivered)
				}
			}
		})
	}
}

// TestMultipathErrors: oversized networks and broken tree sources are
// rejected loudly.
func TestMultipathErrors(t *testing.T) {
	base, err := BuildHypercube(4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultipathRouter(base, func(dst int) (*ist.Trees, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("tree-source errors must propagate")
	}
	if _, err := NewMultipathRouter(base, func(dst int) (*ist.Trees, error) {
		return ist.BuildHypercube(3, dst%8, 3) // wrong N and root
	}); err == nil {
		t.Fatal("mismatched tree families must be rejected")
	}
}
