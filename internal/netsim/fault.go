package netsim

//lint:file-ignore ctxflow degradation and fault-aware table builds run once per request on networks capped by serve's SimMaxNodes check; the round-level runners poll ctx once per simulated round

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"ipg/internal/fault"
	"ipg/internal/topo"
)

// This file degrades simulated networks with the failure models of
// internal/fault and routes around the damage.  A degraded Network carries
// DeadNode/DeadPort masks; the simulator then stamps every packet with a
// TTL, diverts (oblivious) routing decisions off dead ports onto random
// alive ports, and accounts every packet exactly once as delivered,
// dropped, or in flight.  FaultAwareRouter replaces the oblivious router
// with shortest alive paths, so it never misroutes and drops only packets
// whose destination is genuinely unreachable.

// FaultSummary reports the failures Degrade sampled.
type FaultSummary struct {
	Mode      fault.Mode
	Seed      int64
	DeadNodes []int32    // failed nodes (node and chip modes)
	DeadLinks [][2]int32 // failed undirected links, canonical u < v (link mode)
	DeadChips []int32    // failed chips (chip mode)
}

// Degrade returns a copy of base with spec's failures applied: dead nodes
// neither inject, forward, nor receive; dead links lose every parallel
// port in both directions.  The base network is not modified and the copy
// shares its port map.  The adversarial mode targets graph cuts and has no
// port-level analogue here; ask the metrics layer for it instead.
func Degrade(base *Network, spec fault.Spec) (*Network, *FaultSummary, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, err
	}
	if base.Faulty() {
		return nil, nil, fmt.Errorf("netsim: %s is already degraded", base.Name)
	}
	mode := spec.Mode
	if mode == "" {
		mode = fault.Nodes
	}
	sum := &FaultSummary{Mode: mode, Seed: spec.Seed}
	d := *base
	if spec.Count < 0 {
		return nil, nil, fmt.Errorf("netsim: negative failure count %d", spec.Count)
	}
	if spec.Count == 0 {
		return &d, sum, nil
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	switch mode {
	case fault.Nodes:
		if spec.Count >= base.N {
			return nil, nil, fmt.Errorf("netsim: %d node failures would leave no node of %d alive", spec.Count, base.N)
		}
		d.DeadNode = make([]bool, base.N)
		for len(sum.DeadNodes) < spec.Count {
			v := rng.Intn(base.N)
			if d.DeadNode[v] {
				continue
			}
			d.DeadNode[v] = true
			//lint:ignore indextrunc v < base.N, which New bounds via checkNodeCount
			sum.DeadNodes = append(sum.DeadNodes, int32(v))
		}
	case fault.Links:
		pairs := undirectedLinks(base)
		if spec.Count > len(pairs) {
			return nil, nil, fmt.Errorf("netsim: %d link failures exceed the %d links present", spec.Count, len(pairs))
		}
		d.DeadPort = make([][]bool, base.N)
		for u := 0; u < base.N; u++ {
			d.DeadPort[u] = make([]bool, base.Ports.Arity(u))
		}
		killed := make(map[int]bool, spec.Count)
		for len(sum.DeadLinks) < spec.Count {
			i := rng.Intn(len(pairs))
			if killed[i] {
				continue
			}
			killed[i] = true
			pr := pairs[i]
			killPorts(&d, int(pr[0]), int(pr[1]))
			killPorts(&d, int(pr[1]), int(pr[0]))
			sum.DeadLinks = append(sum.DeadLinks, pr)
		}
	case fault.Chips:
		if base.ClusterOf == nil {
			return nil, nil, fmt.Errorf("netsim: %s has no chip assignment for chip faults", base.Name)
		}
		nc := 0
		for _, ch := range base.ClusterOf {
			if int(ch) >= nc {
				nc = int(ch) + 1
			}
		}
		if spec.Count >= nc {
			return nil, nil, fmt.Errorf("netsim: %d chip failures would leave none of %d chips alive", spec.Count, nc)
		}
		dead := make(map[int32]bool, spec.Count)
		for len(sum.DeadChips) < spec.Count {
			//lint:ignore indextrunc nc-1 is the max of ClusterOf's int32 values, so it fits
			ch := int32(rng.Intn(nc))
			if dead[ch] {
				continue
			}
			dead[ch] = true
			sum.DeadChips = append(sum.DeadChips, ch)
		}
		d.DeadNode = make([]bool, base.N)
		for v, ch := range base.ClusterOf {
			if dead[ch] {
				d.DeadNode[v] = true
				//lint:ignore indextrunc v < base.N, which New bounds via checkNodeCount
				sum.DeadNodes = append(sum.DeadNodes, int32(v))
			}
		}
		if len(sum.DeadNodes) == base.N {
			return nil, nil, fmt.Errorf("netsim: the %d failed chips cover every node", spec.Count)
		}
	case fault.Adversarial:
		return nil, nil, fmt.Errorf("netsim: adversarial faults target graph cuts; use the degraded metrics endpoint, not the packet simulator")
	default:
		return nil, nil, fmt.Errorf("fault: unknown mode %q", mode)
	}
	return &d, sum, nil
}

// undirectedLinks lists the distinct undirected links of net in canonical
// u < v order, deduplicating parallel ports.
func undirectedLinks(net *Network) [][2]int32 {
	var pairs [][2]int32
	seen := make(map[int64]bool)
	for u := 0; u < net.N; u++ {
		for _, v := range net.Ports.PortRow(u) {
			if int(v) <= u {
				continue
			}
			key := int64(u)<<32 | int64(v)
			if seen[key] {
				continue
			}
			seen[key] = true
			//lint:ignore indextrunc u < net.N, which Validate callers bound via checkNodeCount
			pairs = append(pairs, [2]int32{int32(u), v})
		}
	}
	return pairs
}

// killPorts marks every port of u targeting v dead (parallel ports all die
// with the physical link).
func killPorts(net *Network, u, v int) {
	for p, w := range net.Ports.PortRow(u) {
		if int(w) == v {
			net.DeadPort[u][p] = true
		}
	}
}

// resolveFaulty picks the forwarding port for a packet at node v on a
// faulty network.  A routing decision that lands on a dead port is
// diverted to a uniformly random alive port (a misroute retry); -1 means
// the packet has no alive way forward and must be dropped.  The per-node
// PRNG keeps the diversion race-free: v is always in the calling shard.
func (s *Sim) resolveFaulty(v int, dst int32) int {
	net := s.Net
	p := s.routePort(v, dst)
	if p >= 0 && p < len(s.queues[v]) && net.Ports.Port(v, p) >= 0 && !net.portDead(v, p) {
		return p
	}
	if p < 0 {
		// A fault-aware router returns -1 exactly when dst is unreachable
		// over alive links; there is nothing to retry.
		return -1
	}
	alive := 0
	np := net.Ports.Arity(v)
	for q := 0; q < np; q++ {
		if net.Ports.Port(v, q) >= 0 && !net.portDead(v, q) {
			alive++
		}
	}
	if alive == 0 {
		return -1
	}
	k := s.rngs[v].Intn(alive)
	for q := 0; q < np; q++ {
		if net.Ports.Port(v, q) >= 0 && !net.portDead(v, q) {
			if k == 0 {
				s.perNode[v].retried++
				return q
			}
			k--
		}
	}
	return -1 // unreachable
}

// FaultAwareRouter routes minimally over the alive links of a degraded
// network: a per-destination distance table built by reverse BFS that
// skips dead ports and dead nodes.  It implements AdaptiveRouter — among
// the alive minimal ports it picks the shortest local queue (ties to the
// lowest port, keeping runs deterministic) — and returns -1 only when the
// destination is unreachable, so it never misroutes and a simulation under
// it delivers every packet whose destination survives in the same
// component.
type FaultAwareRouter struct {
	net  *Network
	n    int
	dist []int16 // dist[u*n+dst] over alive links; -1 = unreachable
}

// NewFaultAwareRouter builds the distance table (O(N^2) memory, O(N*E)
// time, destination-parallel like NewTableRouter).  Unreachable pairs are
// not an error: that is precisely what a degraded network looks like.
func NewFaultAwareRouter(net *Network) (*FaultAwareRouter, error) {
	n := net.N
	if err := checkNodeCount(n); err != nil {
		return nil, err
	}
	if n > 1<<14 {
		return nil, fmt.Errorf("netsim: FaultAwareRouter limited to 16384 nodes, got %d", n)
	}
	r := &FaultAwareRouter{net: net, n: n, dist: make([]int16, n*n)}
	for i := range r.dist {
		r.dist[i] = -1
	}
	// Reverse adjacency over alive arcs only.
	revOff := make([]uint32, n+1)
	aliveArc := func(u, p int, v int32) bool {
		return v >= 0 && int(v) != u && !net.nodeDead(u) && !net.portDead(u, p)
	}
	for u := 0; u < n; u++ {
		for p, v := range net.Ports.PortRow(u) {
			if aliveArc(u, p, v) {
				revOff[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		revOff[v+1] += revOff[v]
	}
	revSrc := make([]int32, revOff[n])
	cursor := make([]uint32, n)
	copy(cursor, revOff[:n])
	for u := 0; u < n; u++ {
		for p, v := range net.Ports.PortRow(u) {
			if aliveArc(u, p, v) {
				i := cursor[v]
				revSrc[i] = int32(u)
				cursor[v] = i + 1
			}
		}
	}
	var next int64 = -1
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := topo.GetScratch(n)
			defer topo.PutScratch(s)
			queue := s.Queue
			for {
				dst := int(atomic.AddInt64(&next, 1))
				if dst >= n {
					return
				}
				if net.nodeDead(dst) {
					continue // all -1: nothing can be delivered there
				}
				// Each destination writes only its own column (u*n+dst),
				// so workers never touch the same entries.
				r.dist[dst*n+dst] = 0
				queue = queue[:0]
				queue = append(queue, int32(dst))
				for qi := 0; qi < len(queue); qi++ {
					v := queue[qi]
					dv := r.dist[int(v)*n+dst]
					for i := revOff[v]; i < revOff[v+1]; i++ {
						u := revSrc[i]
						if r.dist[int(u)*n+dst] < 0 {
							r.dist[int(u)*n+dst] = dv + 1
							queue = append(queue, u)
						}
					}
				}
				// Write any reallocated queue back so the pool keeps the
				// grown buffer instead of the stale pre-append slice.
				s.Queue = queue
			}
		}()
	}
	wg.Wait()
	return r, nil
}

// NextPort implements Router: the lowest alive port on a shortest alive
// path, or -1 when dst is unreachable.
func (r *FaultAwareRouter) NextPort(cur, dst int) int {
	d := r.dist[cur*r.n+dst]
	if d <= 0 {
		return -1
	}
	for p, v := range r.net.Ports.PortRow(cur) {
		if v >= 0 && !r.net.portDead(cur, p) && r.dist[int(v)*r.n+dst] == d-1 {
			return p
		}
	}
	return -1
}

// NextPortAdaptive implements AdaptiveRouter: among the alive minimal
// ports, the one with the shortest local output queue (ties to the lowest
// port).
func (r *FaultAwareRouter) NextPortAdaptive(cur, dst int, qlen func(port int) int) int {
	d := r.dist[cur*r.n+dst]
	if d <= 0 {
		return -1
	}
	best, bestLen := -1, 0
	for p, v := range r.net.Ports.PortRow(cur) {
		if v < 0 || r.net.portDead(cur, p) || r.dist[int(v)*r.n+dst] != d-1 {
			continue
		}
		l := qlen(p)
		if best < 0 || l < bestLen {
			best, bestLen = p, l
		}
	}
	return best
}