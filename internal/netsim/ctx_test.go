package netsim

import (
	"context"
	"errors"
	"testing"
)

// TestRunnersCancelled checks every workload runner returns the context
// error instead of simulating when the context is already done.
func TestRunnersCancelled(t *testing.T) {
	net, err := BuildHypercube(6, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := RunRandomUniformCtx(ctx, net, 1, 0.2, 10, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("RunRandomUniformCtx err = %v, want context.Canceled", err)
	}
	if _, err := RunTotalExchangeCtx(ctx, net, 1, 1000); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTotalExchangeCtx err = %v, want context.Canceled", err)
	}
	perm, err := Transpose(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPermutationCtx(ctx, net, 1, perm, 1000); !errors.Is(err, context.Canceled) {
		t.Errorf("RunPermutationCtx err = %v, want context.Canceled", err)
	}
}

// TestRunnersCtxBackground checks the ctx variants agree with the plain
// runners for an uncancelled context (same seed, same deterministic
// simulator).
func TestRunnersCtxBackground(t *testing.T) {
	net, err := BuildHypercube(5, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunRandomUniform(net, 7, 0.1, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := RunRandomUniformCtx(context.Background(), net, 7, 0.1, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats != withCtx.Stats {
		t.Fatalf("ctx variant diverged: %+v vs %+v", plain.Stats, withCtx.Stats)
	}
}
