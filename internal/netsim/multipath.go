package netsim

//lint:file-ignore ctxflow multipath table builds run once per request on networks capped by serve's SimMaxNodes check and the 16384-node router limit

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ipg/internal/ist"
	"ipg/internal/topo"
)

// This file routes around failures with independent spanning trees.  A
// MultipathRouter is built from a per-destination k-IST family of the
// HEALTHY network (the port map always describes the intact machine;
// DeadNode/DeadPort are masks on top of it): for every pair it forwards
// along the lowest-indexed tree whose root path survives the fault
// masks, falling back to an alive shortest path only when every
// disjoint tree is severed.  Because the k root paths are pairwise
// internally node-disjoint and edge-disjoint, fewer than k faults can
// never sever them all — the paper's connectivity guarantee made into a
// forwarding table — and the fallback closes the gap to full alive
// reachability beyond the bound, so delivery is never below the
// fault-aware single-path router's.
//
// Forwarding loops cannot form: if tree i survives at u it survives at
// every vertex of u's tree-i root path (alive paths are suffix-closed),
// so the minimum surviving tree index never increases along a route and
// the depth within a tree strictly decreases; fallback hops strictly
// decrease alive distance and can only hand over to a tree once.

// TreeSource yields the k-IST family rooted at dst, built on the
// healthy topology.  It is called concurrently from the build workers
// and must be safe for parallel use.
type TreeSource func(dst int) (*ist.Trees, error)

// GenericTreeSource adapts net's healthy port map into an adjacency
// source and builds the generic k-IST family (k <= ist.GenericMaxTrees)
// per destination.  Works for any 2-connected network; the hypercube's
// richer k = d family comes from ist.BuildHypercube instead.
func GenericTreeSource(net *Network, k int) TreeSource {
	src := newPortAdjacency(net)
	return func(dst int) (*ist.Trees, error) {
		return ist.Build(context.Background(), src, dst, k)
	}
}

// portAdjacency presents a Network's healthy port map as a topo.Source:
// neighbor rows are sorted ascending and deduplicated (parallel ports
// collapse), self-loop ports are skipped.  Read-only and therefore safe
// for the concurrent access topo.Source requires.
type portAdjacency struct {
	net *Network
	deg int
}

func newPortAdjacency(net *Network) portAdjacency {
	deg := 0
	for u := 0; u < net.N; u++ {
		if a := net.Ports.Arity(u); a > deg {
			deg = a
		}
	}
	return portAdjacency{net: net, deg: deg}
}

func (a portAdjacency) N() int           { return a.net.N }
func (a portAdjacency) DegreeBound() int { return a.deg }

func (a portAdjacency) NeighborsInto(v int, buf []int32) []int32 {
	buf = buf[:0]
	for _, w := range a.net.Ports.PortRow(v) {
		if w >= 0 && int(w) != v {
			buf = append(buf, w)
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	out := buf[:0]
	var prev int32 = -1
	for _, w := range buf {
		if w != prev {
			out = append(out, w)
			prev = w
		}
	}
	return out
}

// MultipathRouter implements Router over a precomputed n x n port
// table; NextPort is a single load.  The build statistics report how
// each alive pair was resolved.
type MultipathRouter struct {
	net  *Network
	n    int
	port []int16 // port[u*n+dst]; -1 = drop (unreachable)

	// TreePairs counts (src, dst) pairs forwarded by a surviving
	// independent tree, FallbackPairs those rescued by the alive
	// shortest-path fallback, UnreachablePairs those no router could
	// serve.  Dead endpoints are excluded from all three.
	TreePairs        atomic.Int64
	FallbackPairs    atomic.Int64
	UnreachablePairs atomic.Int64
}

// NewMultipathRouter builds the forwarding table, one destination per
// worker (O(N^2) memory like the other table routers).  treeFor is
// consulted once per alive destination; its trees must be rooted on the
// healthy topology at that destination.
func NewMultipathRouter(net *Network, treeFor TreeSource) (*MultipathRouter, error) {
	n := net.N
	if err := checkNodeCount(n); err != nil {
		return nil, err
	}
	if n > 1<<14 {
		return nil, fmt.Errorf("netsim: MultipathRouter limited to 16384 nodes, got %d", n)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	r := &MultipathRouter{net: net, n: n, port: make([]int16, n*n)}
	for i := range r.port {
		r.port[i] = -1
	}
	revOff, revSrc := aliveReverseCSR(net)
	var next int64 = -1
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := topo.GetScratch(n)
			defer topo.PutScratch(s)
			dist := make([]int16, n)  // alive distance to dst, fallback tier
			var state []int8          // per (tree, vertex): 0 unknown, 1 alive, 2 dead
			var walk []int32          // upward-walk stack for memoization
			var tp, fp, up int64      // local counters, flushed once
			for {
				dst := int(atomic.AddInt64(&next, 1))
				if dst >= n {
					break
				}
				if net.nodeDead(dst) {
					continue // all -1: nothing can be delivered there
				}
				trees, err := treeFor(dst)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("netsim: multipath trees for destination %d: %w", dst, err)
					}
					errMu.Unlock()
					break
				}
				if trees.N != n || trees.Root != dst {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("netsim: tree source returned (N=%d root=%d) for destination %d of %d nodes", trees.N, trees.Root, dst, n)
					}
					errMu.Unlock()
					break
				}
				k := trees.K
				if cap(state) < k*n {
					state = make([]int8, k*n)
				}
				state = state[:k*n]
				for i := range state {
					state[i] = 0
				}
				// Fallback tier: alive distances to dst by reverse BFS,
				// shared with FaultAwareRouter's arc convention.
				for i := range dist {
					dist[i] = -1
				}
				dist[dst] = 0
				queue := s.Queue[:0]
				queue = append(queue, int32(dst))
				for qi := 0; qi < len(queue); qi++ {
					v := queue[qi]
					dv := dist[v]
					for i := revOff[v]; i < revOff[v+1]; i++ {
						u := revSrc[i]
						if dist[u] < 0 {
							dist[u] = dv + 1
							queue = append(queue, u)
						}
					}
				}
				s.Queue = queue

				for u := 0; u < n; u++ {
					if u == dst || net.nodeDead(u) {
						continue
					}
					assigned := false
					for t := 0; t < k; t++ {
						if walk = treeAlive(net, trees, state, t, u, walk); state[t*n+u] == 1 {
							r.port[u*n+dst] = alivePortTo(net, u, trees.Parent(t, u))
							tp++
							assigned = true
							break
						}
					}
					if assigned {
						continue
					}
					if dist[u] > 0 {
						r.port[u*n+dst] = fallbackPort(net, dist, u)
						fp++
						continue
					}
					up++
				}
			}
			r.TreePairs.Add(tp)
			r.FallbackPairs.Add(fp)
			r.UnreachablePairs.Add(up)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return r, nil
}

// aliveReverseCSR builds the reverse adjacency over alive arcs, the
// same arc filter FaultAwareRouter uses for its distance tables.
func aliveReverseCSR(net *Network) ([]uint32, []int32) {
	n := net.N
	revOff := make([]uint32, n+1)
	aliveArc := func(u, p int, v int32) bool {
		return v >= 0 && int(v) != u && !net.nodeDead(u) && !net.portDead(u, p)
	}
	for u := 0; u < n; u++ {
		for p, v := range net.Ports.PortRow(u) {
			if aliveArc(u, p, v) {
				revOff[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		revOff[v+1] += revOff[v]
	}
	revSrc := make([]int32, revOff[n])
	cursor := make([]uint32, n)
	copy(cursor, revOff[:n])
	for u := 0; u < n; u++ {
		for p, v := range net.Ports.PortRow(u) {
			if aliveArc(u, p, v) {
				i := cursor[v]
				//lint:ignore indextrunc u < n <= 16384, well under math.MaxInt32
				revSrc[i] = int32(u)
				cursor[v] = i + 1
			}
		}
	}
	return revOff, revSrc
}

// treeAlive resolves (memoized) whether vertex v's tree-t root path
// survives the fault masks: every vertex on it alive and every hop
// having at least one alive port.  It walks up until a vertex with
// known state (or the root), then unwinds, so each vertex is resolved
// once per tree per destination.
func treeAlive(net *Network, trees *ist.Trees, state []int8, t, v int, walk []int32) []int32 {
	n := trees.N
	row := state[t*n : (t+1)*n]
	walk = walk[:0]
	cur := v
	verdict := int8(0)
	for {
		if row[cur] != 0 {
			verdict = row[cur]
			break
		}
		if net.nodeDead(cur) {
			verdict = 2
			row[cur] = 2
			break
		}
		if cur == trees.Root {
			verdict = 1
			row[cur] = 1
			break
		}
		p := trees.Parent(t, cur)
		if p < 0 || alivePortTo(net, cur, p) < 0 {
			verdict = 2
			row[cur] = 2
			break
		}
		//lint:ignore indextrunc cur < trees.N <= 16384
		walk = append(walk, int32(cur))
		cur = p
	}
	for _, x := range walk {
		row[x] = verdict
	}
	return walk
}

// alivePortTo returns the lowest alive port of u whose endpoint is w,
// or -1 if the link is fully dead.
func alivePortTo(net *Network, u, w int) int16 {
	for p, v := range net.Ports.PortRow(u) {
		if int(v) == w && !net.portDead(u, p) {
			//lint:ignore indextrunc ports per node are bounded by PortMap arity, far below MaxInt16
			return int16(p)
		}
	}
	return -1
}

// fallbackPort returns the lowest alive port of u stepping onto an
// alive shortest path toward the destination dist was computed for.
func fallbackPort(net *Network, dist []int16, u int) int16 {
	d := dist[u]
	for p, v := range net.Ports.PortRow(u) {
		if v >= 0 && !net.portDead(u, p) && !net.nodeDead(int(v)) && dist[v] == d-1 {
			//lint:ignore indextrunc ports per node are bounded by PortMap arity, far below MaxInt16
			return int16(p)
		}
	}
	return -1
}

// NextPort implements Router: a table lookup, -1 = drop.
func (r *MultipathRouter) NextPort(cur, dst int) int { return int(r.port[cur*r.n+dst]) }
