package netsim

//lint:file-ignore ctxflow router table construction runs once per network, capped by serve's SimMaxNodes check and by the explicit 16384-node TableRouter limit

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ipg/internal/ipg"
	"ipg/internal/superipg"
	"ipg/internal/topo"
)

// HypercubeRouter routes dimension-order on a hypercube whose port b flips
// address bit b (lowest differing bit first, so on-chip dimensions are
// corrected before off-chip ones when chips are low-order subcubes).  The
// arithmetic lives in topo.HypercubeNextDim, shared with the graph-level
// helpers in internal/topology.
type HypercubeRouter struct{ D int }

// NextPort implements Router.
func (r HypercubeRouter) NextPort(cur, dst int) int {
	return topo.HypercubeNextDim(cur, dst)
}

// TorusRouter routes dimension-order with minimal wrap on a k-ary n-cube
// whose ports are (2d) = +1 in dimension d, (2d+1) = -1 in dimension d.
// The arithmetic lives in topo.TorusNextHop, shared with the graph-level
// helpers in internal/topology.
type TorusRouter struct{ K, Dims int }

// NextPort implements Router.
func (r TorusRouter) NextPort(cur, dst int) int {
	dim, dir := topo.TorusNextHop(r.K, r.Dims, cur, dst)
	if dim < 0 {
		return -1
	}
	if dir > 0 {
		return 2 * dim
	}
	return 2*dim + 1
}

// HSNRouter routes hierarchically on an HSN (or HCN/RCC skeleton): fix the
// highest differing group i >= 2 by steering the front group to the
// destination's group-i content with nucleus hops and then swapping with
// T_i; finish by steering the front group to the destination's group-1
// content.  Intercluster hops equal the number of differing groups beyond
// the first — the optimum that Theorem 4.1's routing achieves.
type HSNRouter struct {
	w *superipg.Network
	// groupAddr[v*l+i] is the nucleus address of group i of node v.
	groupAddr []uint16
	l         int
	// nextGen[a*M+b] is the nucleus generator moving a nucleus node with
	// address a one hop toward address b.
	nextGen []int16
	m       int
}

// NewHSNRouter precomputes label digests and the nucleus routing table.
func NewHSNRouter(w *superipg.Network, g *ipg.Graph) (*HSNRouter, error) {
	if w.Family != "HSN" && w.Family != "HCN" && w.Family != "RCC" {
		return nil, fmt.Errorf("netsim: HSNRouter supports swap families, not %s", w.Family)
	}
	if w.Nuc.M > 1<<16 {
		return nil, fmt.Errorf("netsim: nucleus too large for HSNRouter")
	}
	if err := checkNodeCount(g.N()); err != nil {
		return nil, err
	}
	r := &HSNRouter{w: w, l: w.L, m: w.SymbolLen()}
	r.groupAddr = make([]uint16, g.N()*w.L)
	for v := 0; v < g.N(); v++ {
		lbl := g.Label(v)
		for i := 0; i < w.L; i++ {
			a, err := w.Nuc.AddressOf(lbl.Group(r.m, i))
			if err != nil {
				return nil, err
			}
			r.groupAddr[v*w.L+i] = uint16(a)
		}
	}
	table, err := nucleusNextGen(w)
	if err != nil {
		return nil, err
	}
	r.nextGen = table
	return r, nil
}

// nucleusNextGen builds the all-pairs next-generator table of the nucleus
// by reverse BFS from every destination.
func nucleusNextGen(w *superipg.Network) ([]int16, error) {
	ng, err := w.Nuc.Build()
	if err != nil {
		return nil, err
	}
	M := ng.N()
	if err := checkNodeCount(M); err != nil {
		return nil, err
	}
	// Node ids of the nucleus graph ordered by address.
	idByAddr := make([]int32, M)
	addrByID := make([]int32, M)
	for v := 0; v < M; v++ {
		a, err := w.Nuc.AddressOf(ng.Label(v))
		if err != nil {
			return nil, err
		}
		idByAddr[a] = int32(v)
		addrByID[v] = int32(a)
	}
	table := make([]int16, M*M)
	for i := range table {
		table[i] = -1
	}
	dist := make([]int32, M)
	queue := make([]int32, 0, M)
	for dstAddr := 0; dstAddr < M; dstAddr++ {
		dst := idByAddr[dstAddr]
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = queue[:0]
		queue = append(queue, dst)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			// Predecessors: nodes u with u --gen--> v set their table entry.
			for gi := 0; gi < ng.NumGens(); gi++ {
				// Use inverse walk: for u such that gen(u) = v, iterate all
				// gens from v on the inverse graph.  The nucleus generator
				// sets in this package are inverse-closed, so neighbors of
				// v are exactly the nodes with an edge to v.
				u := int32(ng.Neighbor(int(v), gi))
				if u == v || dist[u] >= 0 {
					continue
				}
				// Find a generator carrying u to v.
				for gj := 0; gj < ng.NumGens(); gj++ {
					if int32(ng.Neighbor(int(u), gj)) == v {
						dist[u] = dist[v] + 1
						table[int(addrByID[u])*M+dstAddr] = int16(gj)
						queue = append(queue, u)
						break
					}
				}
			}
		}
		for u := 0; u < M; u++ {
			if dist[u] < 0 {
				return nil, fmt.Errorf("netsim: nucleus %s disconnected", w.Nuc.Name)
			}
		}
	}
	return table, nil
}

// NextPort implements Router.  Ports coincide with generator indices of the
// super-IPG.
func (r *HSNRouter) NextPort(cur, dst int) int {
	ca := r.groupAddr[cur*r.l:]
	da := r.groupAddr[dst*r.l:]
	M := r.w.Nuc.M
	for i := r.l - 1; i >= 1; i-- {
		if ca[i] == da[i] {
			continue
		}
		if ca[0] == da[i] {
			// Front holds the needed content: swap it into place via T_{i+1}.
			return r.w.NumNucGens() + (i - 1)
		}
		return int(r.nextGen[int(ca[0])*M+int(da[i])])
	}
	if ca[0] != da[0] {
		return int(r.nextGen[int(ca[0])*M+int(da[0])])
	}
	return -1
}

// TableRouter is a full all-pairs next-port table built by reverse BFS on
// an arbitrary port network; usable for any family at small N.
type TableRouter struct {
	n     int
	table []int16
}

// NewTableRouter builds the table (O(N^2) memory, O(N*E) time).  The
// reverse adjacency is a flat count-then-fill arena (no per-node slice
// headers), and the per-destination reverse BFS runs destination-parallel
// over a worker pool: each destination writes only its own table column,
// so workers never touch the same entries.  Discovery order within each
// BFS — source ascending, then port ascending — is identical to the
// serial build, so the minimal-port tie-breaks and therefore the table
// are bit-identical, worker count notwithstanding.
func NewTableRouter(net *Network) (*TableRouter, error) {
	n := net.N
	if err := checkNodeCount(n); err != nil {
		return nil, err
	}
	if n > 1<<14 {
		return nil, fmt.Errorf("netsim: TableRouter limited to 16384 nodes, got %d", n)
	}
	tr := &TableRouter{n: n, table: make([]int16, n*n)}
	for i := range tr.table {
		tr.table[i] = -1
	}
	// Reverse adjacency with originating port, as flat arenas: the
	// reverse arcs into v are (revSrc[i], revPort[i]) for i in
	// [revOff[v], revOff[v+1]), in (source asc, port asc) order because
	// both passes iterate sources then ports ascending.
	revOff := make([]uint32, n+1)
	for u := 0; u < n; u++ {
		for _, v := range net.Ports.PortRow(u) {
			if v >= 0 && int(v) != u {
				revOff[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		revOff[v+1] += revOff[v]
	}
	revSrc := make([]int32, revOff[n])
	revPort := make([]int16, revOff[n])
	cursor := make([]uint32, n)
	copy(cursor, revOff[:n])
	for u := 0; u < n; u++ {
		for p, v := range net.Ports.PortRow(u) {
			if v >= 0 && int(v) != u {
				i := cursor[v]
				revSrc[i] = int32(u)
				revPort[i] = int16(p)
				cursor[v] = i + 1
			}
		}
	}

	var firstErr error
	var errMu sync.Mutex
	var next int64 = -1
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := topo.GetScratch(n)
			defer topo.PutScratch(s)
			dist := s.Dist
			queue := s.Queue
			for {
				dst := int(atomic.AddInt64(&next, 1))
				if dst >= n {
					return
				}
				for i := range dist {
					dist[i] = -1
				}
				dist[dst] = 0
				queue = queue[:0]
				queue = append(queue, int32(dst))
				for qi := 0; qi < len(queue); qi++ {
					v := queue[qi]
					for i := revOff[v]; i < revOff[v+1]; i++ {
						u := revSrc[i]
						if dist[u] < 0 {
							dist[u] = dist[v] + 1
							tr.table[int(u)*n+dst] = revPort[i]
							queue = append(queue, u)
						}
					}
				}
				// Write any reallocated queue back so the pool keeps the
				// grown buffer instead of the stale pre-append slice.
				s.Queue = queue
				for u := 0; u < n; u++ {
					if dist[u] < 0 {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("netsim: network disconnected (node %d cannot reach %d)", u, dst)
						}
						errMu.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return tr, nil
}

// NextPort implements Router.
func (tr *TableRouter) NextPort(cur, dst int) int { return int(tr.table[cur*tr.n+dst]) }
