package netsim

//lint:file-ignore ctxflow network construction runs once per request on node counts capped by serve's SimMaxNodes check (and checkNodeCount) before any build starts

import (
	"fmt"

	"ipg/internal/ipg"
	"ipg/internal/superipg"
	"ipg/internal/topo"
)

// This file assembles simulated networks under the unit chip capacity
// model: each chip has off-chip budget chipCapacity (in packets per round),
// split evenly over its off-chip directed links; on-chip links are
// effectively infinite.

// UniformCapacity overwrites every present port's capacity with c,
// switching a network to the unit link capacity model of Section 3 (with
// c = 1).  Cluster assignments are kept for off-chip accounting.
func UniformCapacity(net *Network, c float64) {
	for u := 0; u < net.N; u++ {
		for p, v := range net.Ports.PortRow(u) {
			if v >= 0 {
				net.Ports.SetCap(u, p, c)
			}
		}
	}
}

// BuildHypercube returns a d-cube with 2^logM-node chips (low address bits
// on-chip).  Port b flips bit b.
func BuildHypercube(d, logM int, chipCapacity float64) (*Network, error) {
	if logM < 0 || logM >= d {
		return nil, fmt.Errorf("netsim: logM %d out of range for Q%d", logM, d)
	}
	n := 1 << d
	if err := checkNodeCount(n); err != nil {
		return nil, err
	}
	offLinksPerChip := (1 << logM) * (d - logM) // M nodes x off-chip degree
	offCap := chipCapacity / float64(offLinksPerChip)
	pm, err := topo.NewUniformPortMap(n, d)
	if err != nil {
		return nil, err
	}
	clusterOf := make([]int32, n)
	for v := 0; v < n; v++ {
		clusterOf[v] = int32(v >> logM)
		for b := 0; b < d; b++ {
			pm.SetPort(v, b, int32(v^1<<b))
			if b < logM {
				pm.SetCap(v, b, OnChipCapacity)
			} else {
				pm.SetCap(v, b, offCap)
			}
		}
	}
	return &Network{
		Name:      fmt.Sprintf("Q%d/M=%d", d, 1<<logM),
		N:         n,
		Ports:     pm,
		ClusterOf: clusterOf,
		Router:    HypercubeRouter{D: d},
	}, nil
}

// BuildTorus2D returns the k-ary 2-cube with side x side chips.  Ports:
// 0 = +x, 1 = -x, 2 = +y, 3 = -y.
func BuildTorus2D(k, side int, chipCapacity float64) (*Network, error) {
	if side < 1 || k%side != 0 || k/side < 2 {
		return nil, fmt.Errorf("netsim: chip side %d invalid for k=%d", side, k)
	}
	n := k * k
	if err := checkNodeCount(n); err != nil {
		return nil, err
	}
	chipsPerRow := k / side
	// Each chip has 4*side off-chip undirected links, i.e. 4*side outgoing
	// off-chip arcs.
	offCap := chipCapacity / float64(4*side)
	pm, err := topo.NewUniformPortMap(n, 4)
	if err != nil {
		return nil, err
	}
	clusterOf := make([]int32, n)
	chipOf := func(x, y int) int32 { return int32((y/side)*chipsPerRow + x/side) }
	for v := 0; v < n; v++ {
		x, y := v%k, v/k
		clusterOf[v] = chipOf(x, y)
		nb := [4][2]int{
			{(x + 1) % k, y}, {(x - 1 + k) % k, y},
			{x, (y + 1) % k}, {x, (y - 1 + k) % k},
		}
		for p, xy := range nb {
			pm.SetPort(v, p, int32(xy[1]*k+xy[0]))
			if chipOf(xy[0], xy[1]) == clusterOf[v] {
				pm.SetCap(v, p, OnChipCapacity)
			} else {
				pm.SetCap(v, p, offCap)
			}
		}
	}
	return &Network{
		Name:      fmt.Sprintf("%d-ary 2-cube/M=%d", k, side*side),
		N:         n,
		Ports:     pm,
		ClusterOf: clusterOf,
		Router:    TorusRouter{K: k, Dims: 2},
	}, nil
}

// BuildSuperIPG returns a simulated super-IPG with one nucleus per chip.
// Ports coincide with generator indices; generator self-loops become
// absent ports.  If router is nil an HSNRouter is built (swap families
// only); pass a TableRouter-based router for other families.
func BuildSuperIPG(w *superipg.Network, g *ipg.Graph, chipCapacity float64, router Router) (*Network, error) {
	if err := checkNodeCount(g.N()); err != nil {
		return nil, err
	}
	clusterOf, _ := w.Clusters(g)
	// Count off-chip out-arcs per chip and check uniformity.
	arcs := make(map[int32]int)
	for v := 0; v < g.N(); v++ {
		for gi := w.NumNucGens(); gi < len(w.Gens()); gi++ {
			u := g.Neighbor(v, gi)
			if u != v && clusterOf[u] != clusterOf[v] {
				arcs[clusterOf[v]]++
			}
		}
	}
	// Each chip splits its budget over its own off-chip arcs.  Swap
	// families have uniform counts; CN families have slightly fewer arcs
	// on "diagonal" clusters (labels with coinciding groups turn some
	// super-generator actions into self-loops), whose links are then
	// correspondingly wider.
	offCap := make(map[int32]float64, len(arcs))
	for chip, cnt := range arcs {
		offCap[chip] = chipCapacity / float64(cnt)
	}
	ng := len(w.Gens())
	pm, err := topo.NewUniformPortMap(g.N(), ng)
	if err != nil {
		return nil, err
	}
	for v := 0; v < g.N(); v++ {
		for gi := 0; gi < ng; gi++ {
			u := g.Neighbor(v, gi)
			if u == v {
				// Absent port (self-loop); capacity value is never consulted.
				pm.SetCap(v, gi, 1)
				continue
			}
			pm.SetPort(v, gi, int32(u))
			if clusterOf[u] == clusterOf[v] {
				pm.SetCap(v, gi, OnChipCapacity)
			} else {
				pm.SetCap(v, gi, offCap[clusterOf[v]])
			}
		}
	}
	net := &Network{
		Name:      w.Name(),
		N:         g.N(),
		Ports:     pm,
		ClusterOf: clusterOf,
		Router:    router,
	}
	if net.Router == nil {
		r, err := NewHSNRouter(w, g)
		if err != nil {
			return nil, err
		}
		net.Router = r
	}
	return net, nil
}
