package netsim

import (
	"fmt"
	"testing"

	"ipg/internal/fault"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

// faultTestNetworks builds the three families the fault-routing claims are
// checked on: hypercube, torus, and an HSN super-IPG, each with chips.
func faultTestNetworks(t *testing.T) []*Network {
	t.Helper()
	hc, err := BuildHypercube(6, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := BuildTorus2D(8, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := superipg.HSN(3, nucleus.Hypercube(2))
	g := w.MustBuild()
	hsn, err := BuildSuperIPG(w, g, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []*Network{hc, torus, hsn}
}

// conservationCheck asserts the exact packet-accounting invariant of a
// faulty run: injected = delivered + dropped + in-flight.
func conservationCheck(t *testing.T, name string, st Stats) {
	t.Helper()
	if st.Injected != st.Delivered+st.Dropped+st.InFlight {
		t.Fatalf("%s: conservation broken: injected %d != delivered %d + dropped %d + in-flight %d",
			name, st.Injected, st.Delivered, st.Dropped, st.InFlight)
	}
}

// permTotal counts the packets a permutation run injects.
func permTotal(perm []int32) int64 {
	var total int64
	for u, d := range perm {
		if int(d) != u {
			total++
		}
	}
	return total
}

// randomPerm builds a deterministic derangement-ish permutation by
// rotating node ids (every node sends, no fixed points when n > 1).
func rotatePerm(n int) []int32 {
	perm := make([]int32, n)
	for v := 0; v < n; v++ {
		perm[v] = int32((v + n/2 + 1) % n)
	}
	return perm
}

// TestFaultConservation drives degraded networks under every supported
// failure mode with both oblivious and fault-aware routing, stepping
// manually so the invariant is checked mid-flight as well as at the end.
func TestFaultConservation(t *testing.T) {
	for _, base := range faultTestNetworks(t) {
		base := base
		links := len(undirectedLinks(base))
		specs := []fault.Spec{
			{Mode: fault.Links, Count: links / 20, Seed: 3},
			{Mode: fault.Nodes, Count: base.N / 16, Seed: 4},
			{Mode: fault.Chips, Count: 2, Seed: 5},
		}
		for _, spec := range specs {
			for _, aware := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/aware=%v", base.Name, spec.Mode, aware)
				t.Run(name, func(t *testing.T) {
					net, sum, err := Degrade(base, spec)
					if err != nil {
						t.Fatal(err)
					}
					if !net.Faulty() || base.Faulty() {
						t.Fatal("Degrade must mark the copy faulty and leave the base untouched")
					}
					switch spec.Mode {
					case fault.Links:
						if len(sum.DeadLinks) != spec.Count {
							t.Fatalf("killed %d links, want %d", len(sum.DeadLinks), spec.Count)
						}
					case fault.Nodes:
						if len(sum.DeadNodes) != spec.Count {
							t.Fatalf("killed %d nodes, want %d", len(sum.DeadNodes), spec.Count)
						}
					case fault.Chips:
						if len(sum.DeadChips) != spec.Count || len(sum.DeadNodes) == 0 {
							t.Fatalf("killed %d chips / %d nodes", len(sum.DeadChips), len(sum.DeadNodes))
						}
					}
					if aware {
						r, err := NewFaultAwareRouter(net)
						if err != nil {
							t.Fatal(err)
						}
						net.Router = r
					}
					s, err := New(net, 99)
					if err != nil {
						t.Fatal(err)
					}
					perm := rotatePerm(net.N)
					for u, d := range perm {
						if err := s.Enqueue(u, d); err != nil {
							t.Fatal(err)
						}
					}
					total := permTotal(perm)
					for r := 0; r < 4096; r++ {
						if _, err := s.Step(); err != nil {
							t.Fatal(err)
						}
						st := s.Stats()
						conservationCheck(t, name, st)
						if st.Delivered+st.Dropped >= total {
							break
						}
					}
					st := s.Stats()
					conservationCheck(t, name, st)
					if st.Delivered+st.Dropped != total {
						t.Fatalf("%s: %d packets unaccounted after 4096 rounds (delivered %d dropped %d)",
							name, total-st.Delivered-st.Dropped, st.Delivered, st.Dropped)
					}
					if st.Injected != total {
						t.Fatalf("%s: injected %d, want %d", name, st.Injected, total)
					}
					if aware && st.Retried != 0 {
						t.Fatalf("%s: fault-aware routing should never misroute, saw %d retries", name, st.Retried)
					}
				})
			}
		}
	}
}

// awareReachable counts the packets of perm whose source and destination
// are both alive and connected over alive links: exactly the set a
// fault-aware router must deliver.
func awareReachable(net *Network, r *FaultAwareRouter, perm []int32) int64 {
	var total int64
	for u, d := range perm {
		if int(d) == u || net.nodeDead(u) {
			continue
		}
		if net.nodeDead(int(d)) || r.dist[u*r.n+int(d)] < 0 {
			continue
		}
		total++
	}
	return total
}

// TestFaultAwareBeatsOblivious: under ~5% uniform link faults, the
// fault-aware router delivers at least as many packets as the oblivious
// router on every family (it delivers every reachable packet; the
// oblivious router's random diversions can cycle until TTL death).
func TestFaultAwareBeatsOblivious(t *testing.T) {
	for _, base := range faultTestNetworks(t) {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			links := len(undirectedLinks(base))
			count := links / 20 // ~5%
			if count < 1 {
				count = 1
			}
			perm := rotatePerm(base.N)
			total := permTotal(perm)
			for seed := int64(1); seed <= 3; seed++ {
				spec := fault.Spec{Mode: fault.Links, Count: count, Seed: seed}
				run := func(aware bool) Stats {
					net, _, err := Degrade(base, spec)
					if err != nil {
						t.Fatal(err)
					}
					var far *FaultAwareRouter
					if aware {
						far, err = NewFaultAwareRouter(net)
						if err != nil {
							t.Fatal(err)
						}
						net.Router = far
					}
					res, err := RunPermutation(net, 7, perm, 1<<16)
					if err != nil {
						t.Fatalf("aware=%v seed=%d: %v", aware, seed, err)
					}
					st := res.Stats
					conservationCheck(t, base.Name, st)
					if st.InFlight != 0 {
						t.Fatalf("aware=%v seed=%d: %d packets still in flight", aware, seed, st.InFlight)
					}
					if aware {
						if want := awareReachable(net, far, perm); st.Delivered != want {
							t.Fatalf("seed %d: aware delivered %d of %d reachable packets", seed, st.Delivered, want)
						}
					}
					return st
				}
				obl := run(false)
				awr := run(true)
				if obl.Injected != total || awr.Injected != total {
					t.Fatalf("seed %d: injected %d/%d, want %d", seed, obl.Injected, awr.Injected, total)
				}
				if awr.Delivered < obl.Delivered {
					t.Fatalf("seed %d: aware delivered %d < oblivious %d", seed, awr.Delivered, obl.Delivered)
				}
			}
		})
	}
}

// TestDegradeZeroAndErrors pins the edge cases: a zero-count degrade is a
// healthy copy, adversarial mode is rejected, and oversized counts fail.
func TestDegradeZeroAndErrors(t *testing.T) {
	base, err := BuildHypercube(4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, sum, err := Degrade(base, fault.Spec{Mode: fault.Links, Count: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if net.Faulty() || len(sum.DeadLinks) != 0 {
		t.Fatal("zero-count degrade must be healthy")
	}
	bad := []fault.Spec{
		{Mode: fault.Adversarial, Count: 1},
		{Mode: fault.Nodes, Count: base.N},
		{Mode: fault.Links, Count: 1 << 20},
		{Mode: fault.Nodes, Count: -1},
		{Mode: "bogus", Count: 1},
	}
	for _, spec := range bad {
		if _, _, err := Degrade(base, spec); err == nil {
			t.Fatalf("spec %+v: expected error", spec)
		}
	}
	// Degrading a degraded network is refused.
	d, _, err := Degrade(base, fault.Spec{Mode: fault.Nodes, Count: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Degrade(d, fault.Spec{Mode: fault.Nodes, Count: 1, Seed: 2}); err == nil {
		t.Fatal("double degrade should fail")
	}
}

// TestHealthyPathUntouched: a zero-fault degraded copy must behave
// bit-identically to the base network (the fault branches are all gated).
func TestHealthyPathUntouched(t *testing.T) {
	base, err := BuildHypercube(6, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	perm := rotatePerm(base.N)
	resBase, err := RunPermutation(base, 7, perm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := Degrade(base, fault.Spec{Mode: fault.Links, Count: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resDeg, err := RunPermutation(net, 7, perm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if resBase.Stats != resDeg.Stats || resBase.Rounds != resDeg.Rounds {
		t.Fatalf("zero-fault run diverged: %+v vs %+v", resBase, resDeg)
	}
}