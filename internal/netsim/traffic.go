package netsim

//lint:file-ignore ctxflow hot-spot runs are CLI experiment drivers bounded by checkNodeCount and explicit round counts; the serving path only invokes the ...Ctx runners, which poll ctx per round

import (
	"fmt"
	"math/rand"
)

// This file adds the adversarial and skewed traffic patterns used beyond
// uniform random routing: bit-complement (every packet crosses the
// bisection), hot-spot (a fraction of traffic converges on one node), and
// a latency-distribution probe.

// BitComplement returns the permutation sending every address to its
// bitwise complement — the canonical bisection-stressing pattern (all
// packets cross any balanced address cut).
func BitComplement(logN int) []int32 {
	n := 1 << logN
	if err := checkNodeCount(n); err != nil {
		panic("netsim.BitComplement: " + err.Error())
	}
	perm := make([]int32, n)
	mask := int32(n - 1)
	for v := int32(0); v < int32(n); v++ {
		perm[v] = v ^ mask
	}
	return perm
}

// RunHotSpot injects uniform traffic, but each packet targets the hot node
// with probability hotFrac (Pfister-Norton hot-spot model).  Returns the
// measured stats over the last `measure` rounds.
func RunHotSpot(net *Network, seed int64, rate, hotFrac float64, hot int32, warmup, measure int) (RandomResult, error) {
	if hotFrac < 0 || hotFrac > 1 {
		return RandomResult{}, fmt.Errorf("netsim: hotFrac %v out of [0,1]", hotFrac)
	}
	if int(hot) < 0 || int(hot) >= net.N {
		return RandomResult{}, fmt.Errorf("netsim: hot node %d out of range", hot)
	}
	if err := checkNodeCount(net.N); err != nil {
		return RandomResult{}, err
	}
	s, err := New(net, seed)
	if err != nil {
		return RandomResult{}, err
	}
	n := int32(net.N)
	s.SetInjector(func(u int, _ int32, emit func(dst int32)) {
		rng := s.rngs[u]
		if rng.Float64() >= rate {
			return
		}
		if rng.Float64() < hotFrac {
			if int32(u) != hot {
				emit(hot)
			}
			return
		}
		emit(pickOther(rng, n, int32(u)))
	})
	for i := 0; i < warmup; i++ {
		if _, err := s.Step(); err != nil {
			return RandomResult{}, err
		}
	}
	s.ResetStats()
	before := s.InFlight()
	for i := 0; i < measure; i++ {
		if _, err := s.Step(); err != nil {
			return RandomResult{}, err
		}
	}
	st := s.Stats()
	res := RandomResult{
		Rate:     rate,
		Stats:    st,
		Accepted: float64(st.Delivered) / float64(net.N) / float64(measure),
		Latency:  st.AvgLatency(),
	}
	res.Saturated = float64(st.InFlight-before) > 0.2*float64(st.Injected)
	return res, nil
}

// LatencyProbe runs uniform traffic with per-packet latency histograms
// enabled and returns the requested percentiles (e.g. 0.5, 0.95, 0.99) of
// delivery latency over the measured window.
func LatencyProbe(net *Network, seed int64, rate float64, warmup, measure int, percentiles []float64) ([]int, error) {
	if err := checkNodeCount(net.N); err != nil {
		return nil, err
	}
	s, err := New(net, seed)
	if err != nil {
		return nil, err
	}
	s.EnableLatencyHistogram(4 * (warmup + measure))
	n := int32(net.N)
	s.SetInjector(func(u int, _ int32, emit func(dst int32)) {
		rng := s.rngs[u]
		if rng.Float64() < rate {
			emit(pickOther(rng, n, int32(u)))
		}
	})
	for i := 0; i < warmup; i++ {
		if _, err := s.Step(); err != nil {
			return nil, err
		}
	}
	s.ResetStats()
	for i := 0; i < measure; i++ {
		if _, err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.LatencyPercentiles(percentiles)
}

// RandomPermutation returns a uniformly random fixed permutation workload
// (derangement not enforced; self-mappings send nothing).
func RandomPermutation(r *rand.Rand, n int) []int32 {
	if err := checkNodeCount(n); err != nil {
		panic("netsim.RandomPermutation: " + err.Error())
	}
	p := r.Perm(n)
	out := make([]int32, n)
	for i, v := range p {
		out[i] = int32(v)
	}
	return out
}
