// Package netsim is a synchronous, packet-level interconnection-network
// simulator used to reproduce the paper's communication experiments:
// random uniform routing, total exchange, and permutation traffic under
// the unit link / unit chip capacity models.
//
// Model: store-and-forward, one routing decision per packet per node,
// per-directed-link FIFO queues, and per-link capacities in packets per
// round.  Fractional capacities (e.g. the 8w/15 off-chip links of an
// HSN(3,Q4) chip) accumulate as credits.  On-chip links are modelled as
// effectively infinite, following the paper's assumption that "on-chip
// links can be made fast enough so that they do not form a performance
// bottleneck".
//
// The simulator advances in two phases per round, each parallelized over
// node shards with a barrier in between: phase A pops up to capacity
// packets from every node's output queues; phase B routes arrivals and
// injections into the destination nodes' queues.  Queue ownership moves
// from the source shard (phase A) to the target shard (phase B), so the
// phases are data-race free; results are deterministic for a fixed seed
// and worker-independent.
//
// Unlike the metric kernels in internal/topo and internal/graph, the
// simulator is not generic over topo.Source: a simulation's per-node
// queue and credit state is O(N) whatever the adjacency representation,
// and routers address *ports*, not neighbors, so the port banks are the
// simulated resource.  Implicit (codec-backed) topologies enter through
// topo.FromSource, which materializes their port map in the same
// canonical order as the CSR path — the simulator itself then runs
// identically on either origin.
package netsim

//lint:file-ignore ctxflow simulator setup and per-round sweeps are O(N) on networks capped by SimMaxNodes (enforced in serve) and checkNodeCount; the exported ...Ctx runners poll ctx once per round

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"ipg/internal/topo"
)

// OnChipCapacity is the per-round packet capacity assigned to on-chip
// links.
const OnChipCapacity = math.MaxFloat64

// Router decides the outgoing port for a packet.
type Router interface {
	// NextPort returns the port index at cur on which to forward a packet
	// destined for dst (cur != dst).
	NextPort(cur, dst int) int
}

// Network is the static description of a simulated network.
type Network struct {
	Name string
	N    int
	// Ports is the port-labelled topology: Ports.Port(u, p) is the neighbor
	// reached from u via port p, or -1 if the port is absent at u (e.g. an
	// IPG generator that fixes u's label), and Ports.Cap(u, p) is the
	// capacity of the directed link at (u, p) in packets per round.
	Ports *topo.PortMap
	// ClusterOf assigns nodes to chips for off-chip accounting; nil means
	// every node is its own chip.
	ClusterOf []int32
	Router    Router
	// SinglePort restricts each node to transmitting on at most one
	// outgoing link per round (the single-port model of Section 3, of
	// which SDC is a special case); the default is all-port.
	SinglePort bool

	// Fault state, normally installed by Degrade.  DeadNode[u] marks a
	// failed node: it neither injects, forwards, nor receives.  DeadPort[u][p]
	// marks the directed link at (u, p) failed; Degrade kills both
	// directions of an edge together.  Nil slices mean fully healthy, and
	// the simulator's fault branches are skipped entirely.
	DeadNode []bool
	DeadPort [][]bool
	// PacketTTL bounds the hops a packet may take on a faulty network
	// before it is dropped (misrouting around faults can cycle); 0 means
	// the default of 4*N+64.  Ignored on healthy networks.
	PacketTTL int32
}

// Faulty reports whether the network carries any fault state.
func (n *Network) Faulty() bool { return n.DeadNode != nil || n.DeadPort != nil }

// nodeDead reports whether node u failed.
func (n *Network) nodeDead(u int) bool { return n.DeadNode != nil && n.DeadNode[u] }

// portDead reports whether the directed link at (u, p) failed (a link into
// a dead node counts as dead, so transmissions never target dead nodes).
func (n *Network) portDead(u, p int) bool {
	if n.DeadPort != nil && n.DeadPort[u][p] {
		return true
	}
	if n.DeadNode != nil {
		if v := n.Ports.Port(u, p); v >= 0 && n.DeadNode[v] {
			return true
		}
	}
	return false
}

// Validate checks structural consistency.
func (n *Network) Validate() error {
	if n.Ports == nil || n.Ports.N() != n.N {
		return fmt.Errorf("netsim: %s: port map node count mismatch", n.Name)
	}
	for u := 0; u < n.N; u++ {
		for p, v := range n.Ports.PortRow(u) {
			if v >= 0 && (int(v) >= n.N || n.Ports.Cap(u, p) <= 0) {
				return fmt.Errorf("netsim: %s: node %d port %d invalid", n.Name, u, p)
			}
		}
	}
	if n.ClusterOf != nil && len(n.ClusterOf) != n.N {
		return fmt.Errorf("netsim: %s: clusterOf length mismatch", n.Name)
	}
	if n.Router == nil {
		return fmt.Errorf("netsim: %s: no router", n.Name)
	}
	if n.DeadNode != nil && len(n.DeadNode) != n.N {
		return fmt.Errorf("netsim: %s: deadNode length mismatch", n.Name)
	}
	if n.DeadPort != nil {
		if len(n.DeadPort) != n.N {
			return fmt.Errorf("netsim: %s: deadPort length mismatch", n.Name)
		}
		for u := 0; u < n.N; u++ {
			if len(n.DeadPort[u]) != n.Ports.Arity(u) {
				return fmt.Errorf("netsim: %s: deadPort arity mismatch at node %d", n.Name, u)
			}
		}
	}
	if n.PacketTTL < 0 {
		return fmt.Errorf("netsim: %s: negative packet TTL", n.Name)
	}
	return nil
}

// offChip reports whether the directed link u->v crosses chips.
func (n *Network) offChip(u, v int32) bool {
	return n.ClusterOf != nil && n.ClusterOf[u] != n.ClusterOf[v]
}

// Packet is a unicast payload descriptor.
type Packet struct {
	Dst  int32
	Born int32 // round of injection
	// TTL is the remaining hop budget on a faulty network (misrouting
	// around faults can cycle); unused — and never decremented — on
	// healthy networks.
	TTL int32
}

// Stats aggregates simulation measurements.  On a faulty network every
// injected packet is eventually accounted exactly once:
// Injected = Delivered + Dropped + InFlight.
type Stats struct {
	Rounds       int
	Injected     int64
	Delivered    int64
	Dropped      int64 // lost to faults: no alive route, or TTL exhausted
	Retried      int64 // misroute retries: routing decisions diverted off a dead port
	TotalLatency int64 // sum over delivered packets of (arrival - born)
	Hops         int64 // total link transmissions
	OffChipHops  int64 // transmissions crossing chips
	InFlight     int64 // packets still queued when the run ended
}

// AvgLatency returns mean delivery latency in rounds.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// OffChipPerPacket returns mean off-chip transmissions per delivered
// packet.
func (s Stats) OffChipPerPacket() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.OffChipHops) / float64(s.Delivered)
}

// HopsPerPacket returns mean total transmissions per delivered packet.
func (s Stats) HopsPerPacket() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.Hops) / float64(s.Delivered)
}

// Sim is a running simulation instance.
type Sim struct {
	Net *Network

	queues  [][][]Packet // queues[u][p]: FIFO (head at index qhead)
	qhead   [][]int
	credits [][]float64
	outbox  [][][]Packet // phase A results, consumed in phase B

	inLinks [][]inLink // per destination node: links arriving at it

	round   int32
	stats   Stats
	workers int

	// Persistent parallelism state: the node ranges are fixed at New, and
	// the per-range worker closures plus the two phase closures are
	// created once, so Step allocates nothing for its fan-out.  curPhase
	// is written between phases (single-threaded points) and only read by
	// the workers.
	ranges    [][2]int
	workerFns []func()
	phaseAFn  func(lo, hi int)
	phaseBFn  func(lo, hi int)
	curPhase  func(lo, hi int)
	wg        sync.WaitGroup

	// emitFns holds one persistent injection closure per node, replacing
	// the per-node-per-round closure the injector used to receive.
	emitFns []func(dst int32)

	// Livelock detection: with fractional link capacities, rounds where
	// nothing moves are legitimate while credits accumulate; only a streak
	// longer than the slowest link's refill period indicates a stuck
	// simulation.
	zeroStreak int
	maxIdle    int

	// rrPort is the per-node round-robin pointer for single-port mode.
	rrPort []int

	// faulty caches Net.Faulty(); every fault branch below is skipped when
	// false, so healthy simulations run the exact pre-fault code path.
	faulty bool
	// ttl0 is the initial TTL stamped on packets of a faulty network.
	ttl0 int32

	// injectFn, if set, is called in phase B for each node to produce new
	// packets this round.
	injectFn func(u int, round int32, emit func(dst int32))

	perNode []localStats
	rngs    []*rand.Rand
}

type inLink struct {
	src  int32
	port int16
}

type localStats struct {
	delivered, latency, hops, offchip, injected, dropped, retried int64
	_pad                                                          [1]int64 // reduce false sharing
	// hist counts deliveries by latency (index = rounds, last bucket =
	// overflow); nil unless EnableLatencyHistogram was called.  Node-local,
	// so updates are race-free under the phase-B sharding.
	hist []int64
}

// checkNodeCount validates that a node count fits the int32 node-id /
// int16 port-id representation used throughout the simulator, so oversized
// caller-built networks fail loudly instead of wrapping ids.
func checkNodeCount(n int) error {
	if n < 0 || n > math.MaxInt32 {
		return fmt.Errorf("netsim: node count %d outside [0, %d]", n, math.MaxInt32)
	}
	return nil
}

// New creates a simulation for the network with the given PRNG seed.
func New(net *Network, seed int64) (*Sim, error) {
	if err := checkNodeCount(net.N); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		Net:     net,
		workers: runtime.GOMAXPROCS(0),
		faulty:  net.Faulty(),
	}
	if s.faulty {
		s.ttl0 = net.PacketTTL
		if s.ttl0 == 0 {
			if ttl := 4*int64(net.N) + 64; ttl <= math.MaxInt32 {
				s.ttl0 = int32(ttl)
			} else {
				s.ttl0 = math.MaxInt32
			}
		}
	}
	if s.workers > net.N {
		s.workers = net.N
	}
	if s.workers < 1 {
		s.workers = 1
	}
	s.queues = make([][][]Packet, net.N)
	s.qhead = make([][]int, net.N)
	s.credits = make([][]float64, net.N)
	s.outbox = make([][][]Packet, net.N)
	s.inLinks = make([][]inLink, net.N)
	s.perNode = make([]localStats, net.N)
	s.rngs = make([]*rand.Rand, net.N)
	for u := 0; u < net.N; u++ {
		np := net.Ports.Arity(u)
		s.queues[u] = make([][]Packet, np)
		s.qhead[u] = make([]int, np)
		s.credits[u] = make([]float64, np)
		s.outbox[u] = make([][]Packet, np)
		s.rngs[u] = rand.New(rand.NewSource(seed + int64(u)*1_000_003))
	}
	minCap := math.Inf(1)
	for u := 0; u < net.N; u++ {
		for p, v := range net.Ports.PortRow(u) {
			if v >= 0 {
				s.inLinks[v] = append(s.inLinks[v], inLink{src: int32(u), port: int16(p)})
				if c := net.Ports.Cap(u, p); c < minCap {
					minCap = c
				}
			}
		}
	}
	s.maxIdle = 2
	if minCap < 1 {
		s.maxIdle = int(math.Ceil(1/minCap)) + 2
	}
	if net.SinglePort {
		s.rrPort = make([]int, net.N)
	}
	chunk := (net.N + s.workers - 1) / s.workers
	for lo := 0; lo < net.N; lo += chunk {
		hi := lo + chunk
		if hi > net.N {
			hi = net.N
		}
		s.ranges = append(s.ranges, [2]int{lo, hi})
	}
	s.workerFns = make([]func(), len(s.ranges))
	for i, r := range s.ranges {
		lo, hi := r[0], r[1]
		s.workerFns[i] = func() {
			defer s.wg.Done()
			s.curPhase(lo, hi)
		}
	}
	s.phaseAFn = s.phaseA
	s.phaseBFn = s.phaseB
	return s, nil
}

// SetInjector installs the per-round traffic source.  The emit closures
// handed to fn are built here, one per node for the life of the Sim, so
// phase B hands out a stored closure instead of allocating one per node
// per round.
func (s *Sim) SetInjector(fn func(u int, round int32, emit func(dst int32))) {
	s.injectFn = fn
	if fn == nil || s.emitFns != nil {
		return
	}
	s.emitFns = make([]func(dst int32), s.Net.N)
	for u := range s.emitFns {
		u := u
		s.emitFns[u] = func(dst int32) { s.emitAt(u, dst) }
	}
}

// emitAt enqueues one injected packet at node v for the round phase B is
// currently processing (s.round is stable for the whole phase; the packet
// is born in round s.round+1, matching arrival accounting).
func (s *Sim) emitAt(v int, dst int32) {
	if int(dst) == v {
		return
	}
	if !s.faulty {
		p := s.routePort(v, dst)
		s.queues[v][p] = append(s.queues[v][p], Packet{Dst: dst, Born: s.round + 1})
		s.perNode[v].injected++
		return
	}
	s.perNode[v].injected++
	if s.Net.nodeDead(v) {
		// A dead source cannot inject; like Enqueue, count the packet as
		// injected-then-dropped so batch workloads with a fixed intended
		// total (e.g. total exchange) still drain to conservation.
		s.perNode[v].dropped++
		return
	}
	p := s.resolveFaulty(v, dst)
	if p < 0 {
		s.perNode[v].dropped++ // no alive route out of v
		return
	}
	s.queues[v][p] = append(s.queues[v][p], Packet{Dst: dst, Born: s.round + 1, TTL: s.ttl0})
}

// EnableLatencyHistogram starts recording per-packet delivery latencies in
// buckets 0..maxLatency (larger values land in the overflow bucket).
func (s *Sim) EnableLatencyHistogram(maxLatency int) {
	for i := range s.perNode {
		s.perNode[i].hist = make([]int64, maxLatency+2)
	}
}

// LatencyPercentiles merges the per-node histograms and returns the
// requested percentiles (each in [0,1]) of the delivered-packet latency.
func (s *Sim) LatencyPercentiles(percentiles []float64) ([]int, error) {
	if s.perNode[0].hist == nil {
		return nil, fmt.Errorf("netsim: latency histogram not enabled")
	}
	merged := make([]int64, len(s.perNode[0].hist))
	var total int64
	for i := range s.perNode {
		for b, c := range s.perNode[i].hist {
			merged[b] += c
			total += c
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("netsim: no deliveries recorded")
	}
	out := make([]int, len(percentiles))
	for i, p := range percentiles {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("netsim: percentile %v out of [0,1]", p)
		}
		target := int64(p * float64(total-1))
		var cum int64
		for b, c := range merged {
			cum += c
			if cum > target {
				out[i] = b
				break
			}
		}
	}
	return out, nil
}

// Enqueue injects a packet at node u immediately (before the next round).
// On a faulty network a packet injected at a dead node, or with no alive
// route, is accounted as injected-then-dropped so conservation holds.
func (s *Sim) Enqueue(u int, dst int32) error {
	if int(dst) == u {
		return fmt.Errorf("netsim: packet to self at node %d", u)
	}
	if s.faulty {
		s.perNode[u].injected++
		if s.Net.nodeDead(u) {
			s.perNode[u].dropped++
			return nil
		}
		p := s.resolveFaulty(u, dst)
		if p < 0 {
			s.perNode[u].dropped++
			return nil
		}
		s.queues[u][p] = append(s.queues[u][p], Packet{Dst: dst, Born: s.round, TTL: s.ttl0})
		return nil
	}
	p := s.routePort(u, dst)
	if p < 0 || p >= len(s.queues[u]) || s.Net.Ports.Port(u, p) < 0 {
		return fmt.Errorf("netsim: router returned invalid port %d at node %d for dst %d", p, u, dst)
	}
	s.queues[u][p] = append(s.queues[u][p], Packet{Dst: dst, Born: s.round})
	s.perNode[u].injected++
	return nil
}

// parallelNodes runs fn over the fixed node ranges on the worker pool.
// The worker closures are the persistent ones built in New; the spawned
// goroutines are joined by wg.Wait before return.
func (s *Sim) parallelNodes(fn func(lo, hi int)) {
	if len(s.ranges) <= 1 {
		fn(0, s.Net.N)
		return
	}
	s.curPhase = fn
	s.wg.Add(len(s.workerFns))
	for _, w := range s.workerFns {
		go w()
	}
	s.wg.Wait()
}

// phaseA pops up to capacity from each source queue in [lo, hi) into its
// outboxes.
func (s *Sim) phaseA(lo, hi int) {
	net := s.Net
	for u := lo; u < hi; u++ {
		if s.faulty && net.nodeDead(u) {
			continue // dead nodes transmit nothing (their queues stay empty)
		}
		if net.SinglePort {
			s.singlePortPhaseA(u)
			continue
		}
		for p := range s.queues[u] {
			q := s.queues[u][p]
			head := s.qhead[u][p]
			avail := len(q) - head
			if avail == 0 {
				s.outbox[u][p] = s.outbox[u][p][:0]
				continue
			}
			cap := net.Ports.Cap(u, p)
			var take int
			if cap >= float64(avail) {
				take = avail
			} else {
				// Token bucket: credits accumulate across idle rounds
				// up to one round's worth plus one packet.
				s.credits[u][p] += cap
				if limit := cap + 1; s.credits[u][p] > limit {
					s.credits[u][p] = limit
				}
				take = int(s.credits[u][p])
				if take > avail {
					take = avail
				}
				s.credits[u][p] -= float64(take)
			}
			s.outbox[u][p] = append(s.outbox[u][p][:0], q[head:head+take]...)
			head += take
			if head == len(q) {
				s.queues[u][p] = q[:0]
				s.qhead[u][p] = 0
			} else {
				s.qhead[u][p] = head
				if head > 4096 && head*2 > len(q) {
					s.queues[u][p] = append(s.queues[u][p][:0], q[head:]...)
					s.qhead[u][p] = 0
				}
			}
		}
	}
}

// phaseB routes arrivals and injections into destination nodes [lo, hi).
// s.round is stable for the whole phase (incremented only after the join
// in Step), so reading it here is race-free.
func (s *Sim) phaseB(lo, hi int) {
	net := s.Net
	round := s.round
	for v := lo; v < hi; v++ {
		if s.faulty && net.nodeDead(v) {
			// Dead nodes receive and forward nothing, but their injector
			// still runs: emitAt accounts each intended packet as
			// injected-then-dropped so batch workloads drain to conservation.
			if s.injectFn != nil {
				s.injectFn(v, round+1, s.emitFns[v])
			}
			continue
		}
		ls := &s.perNode[v]
		for _, il := range s.inLinks[v] {
			box := s.outbox[il.src][il.port]
			if len(box) == 0 {
				continue
			}
			//lint:ignore indextrunc v < net.N, which New bounds via checkNodeCount
			off := net.offChip(il.src, int32(v))
			for _, pkt := range box {
				ls.hops++
				if off {
					ls.offchip++
				}
				if int(pkt.Dst) == v {
					ls.delivered++
					lat := int64(round + 1 - pkt.Born)
					ls.latency += lat
					if ls.hist != nil {
						b := int(lat)
						if b >= len(ls.hist) {
							b = len(ls.hist) - 1
						}
						ls.hist[b]++
					}
					continue
				}
				if s.faulty {
					// Each forwarding hop costs one TTL unit; a packet that
					// runs out (or has no alive route) is dropped, keeping
					// injected = delivered + dropped + in-flight exact.
					pkt.TTL--
					if pkt.TTL <= 0 {
						ls.dropped++
						continue
					}
					p := s.resolveFaulty(v, pkt.Dst)
					if p < 0 {
						ls.dropped++
						continue
					}
					s.queues[v][p] = append(s.queues[v][p], pkt)
					continue
				}
				p := s.routePort(v, pkt.Dst)
				s.queues[v][p] = append(s.queues[v][p], pkt)
			}
		}
		if s.injectFn != nil {
			s.injectFn(v, round+1, s.emitFns[v])
		}
	}
}

// Step advances the simulation one round.  It returns the number of
// packets that moved or were injected (0 with packets in flight indicates
// livelock, reported as an error).
func (s *Sim) Step() (int, error) {
	net := s.Net
	// Phase A: pop up to capacity from each source queue into outboxes.
	s.parallelNodes(s.phaseAFn)
	// Phase B: arrivals and injections, sharded by destination node.
	s.parallelNodes(s.phaseBFn)
	s.round++
	s.stats.Rounds++
	moved := 0
	for u := range s.outbox {
		for p := range s.outbox[u] {
			moved += len(s.outbox[u][p])
			s.outbox[u][p] = s.outbox[u][p][:0]
		}
	}
	if moved == 0 && s.injectFn == nil && s.InFlight() > 0 {
		s.zeroStreak++
		if s.zeroStreak > s.maxIdle {
			return 0, fmt.Errorf("netsim: %s: livelock with %d packets in flight", net.Name, s.InFlight())
		}
	} else {
		s.zeroStreak = 0
	}
	return moved, nil
}

// singlePortPhaseA transmits at most one packet at node u, on the next
// nonempty port in round-robin order (credits still gate slow links).
func (s *Sim) singlePortPhaseA(u int) {
	np := len(s.queues[u])
	for p := range s.outbox[u] {
		s.outbox[u][p] = s.outbox[u][p][:0]
	}
	if np == 0 {
		return
	}
	start := s.rrPort[u]
	for off := 0; off < np; off++ {
		p := (start + off) % np
		q := s.queues[u][p]
		head := s.qhead[u][p]
		if len(q)-head == 0 {
			continue
		}
		cap := s.Net.Ports.Cap(u, p)
		if cap < 1 {
			s.credits[u][p] += cap
			if limit := cap + 1; s.credits[u][p] > limit {
				s.credits[u][p] = limit
			}
			if s.credits[u][p] < 1 {
				continue // link not ready; try another port
			}
			s.credits[u][p]--
		}
		s.outbox[u][p] = append(s.outbox[u][p][:0], q[head])
		head++
		if head == len(q) {
			s.queues[u][p] = q[:0]
			s.qhead[u][p] = 0
		} else {
			s.qhead[u][p] = head
		}
		s.rrPort[u] = (p + 1) % np
		return
	}
}

// InFlight returns the number of queued packets.
func (s *Sim) InFlight() int64 {
	var total int64
	for u := range s.queues {
		for p := range s.queues[u] {
			total += int64(len(s.queues[u][p]) - s.qhead[u][p])
		}
	}
	return total
}

// Stats reduces the per-node counters into the aggregate view.
func (s *Sim) Stats() Stats {
	out := s.stats
	for i := range s.perNode {
		ls := &s.perNode[i]
		out.Delivered += ls.delivered
		out.TotalLatency += ls.latency
		out.Hops += ls.hops
		out.OffChipHops += ls.offchip
		out.Injected += ls.injected
		out.Dropped += ls.dropped
		out.Retried += ls.retried
	}
	out.InFlight = s.InFlight()
	return out
}

// ResetStats zeroes the measurement counters (e.g. after warmup) without
// touching queue state.
func (s *Sim) ResetStats() {
	s.stats = Stats{}
	for i := range s.perNode {
		hist := s.perNode[i].hist
		s.perNode[i] = localStats{}
		if hist != nil {
			for b := range hist {
				hist[b] = 0
			}
			s.perNode[i].hist = hist
		}
	}
}
