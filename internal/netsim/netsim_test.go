package netsim

import (
	"math"
	"runtime"
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topo"
)

func mustHypercube(t *testing.T, d, logM int, cap float64) *Network {
	t.Helper()
	net, err := BuildHypercube(d, logM, cap)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func mustHSN(t *testing.T, l, k int, cap float64) (*Network, *superipg.Network) {
	t.Helper()
	w := superipg.HSN(l, nucleus.Hypercube(k))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildSuperIPG(w, g, cap, nil)
	if err != nil {
		t.Fatal(err)
	}
	return net, w
}

func TestHypercubeLowLoadLatency(t *testing.T) {
	// At very low load, latency approaches the unloaded average distance:
	// d/2 for random pairs on a d-cube (plus queueing noise).
	net := mustHypercube(t, 8, 2, 1e9) // effectively infinite capacity
	res, err := RunRandomUniform(net, 1, 0.05, 200, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Average Hamming distance between distinct random nodes: d/2 * N/(N-1).
	want := 4.0 * 256 / 255
	if math.Abs(res.Latency-want) > 0.3 {
		t.Errorf("low-load latency = %v, want about %v", res.Latency, want)
	}
	if res.Saturated {
		t.Error("low load should not saturate")
	}
	if res.Stats.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Off-chip transmissions per packet ~ (d - logM)/2 (Section 4.1's
	// claim that random routing needs log2 N - log2 M off-chip hops in the
	// worst case, half that on average).
	wantOff := 3.0 * 256 / 255
	if math.Abs(res.Stats.OffChipPerPacket()-wantOff) > 0.2 {
		t.Errorf("off-chip per packet = %v, want about %v", res.Stats.OffChipPerPacket(), wantOff)
	}
}

func TestHSNOffChipPerPacket(t *testing.T) {
	// E13: random routing on an HSN(3,Q2) needs on average
	// (l-1)(M-1)/M = 1.5 off-chip transmissions per packet, independent of
	// log N — the paper's key MCMP advantage.
	net, _ := mustHSN(t, 3, 2, 1e9)
	res, err := RunRandomUniform(net, 2, 0.05, 200, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.5 * 64 / 63
	if math.Abs(res.Stats.OffChipPerPacket()-want) > 0.15 {
		t.Errorf("HSN off-chip per packet = %v, want about %v", res.Stats.OffChipPerPacket(), want)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// The two-phase sharding must make results independent of GOMAXPROCS.
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var baseline Stats
	for i, workers := range []int{1, 2, 7} {
		runtime.GOMAXPROCS(workers)
		net := mustHypercube(t, 7, 2, 4.0)
		res, err := RunRandomUniform(net, 99, 0.4, 80, 150)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseline = res.Stats
			continue
		}
		if res.Stats != baseline {
			t.Fatalf("workers=%d produced %+v, baseline %+v", workers, res.Stats, baseline)
		}
	}
}

func TestDeterminism(t *testing.T) {
	net := mustHypercube(t, 6, 2, 4.0)
	a, err := RunRandomUniform(net, 7, 0.3, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRandomUniform(net, 7, 0.3, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestPermutationTranspose(t *testing.T) {
	net := mustHypercube(t, 8, 2, 8.0)
	perm, err := Transpose(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPermutation(net, 3, perm, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered != countMoves(perm) {
		t.Errorf("delivered %d, want %d", res.Stats.Delivered, countMoves(perm))
	}
	if res.Rounds <= 0 {
		t.Error("no rounds?")
	}
}

func countMoves(perm []int32) int64 {
	var c int64
	for u, d := range perm {
		if int(d) != u {
			c++
		}
	}
	return c
}

func TestBitReversePerm(t *testing.T) {
	perm := BitReversePerm(4)
	if perm[0b0001] != 0b1000 || perm[0b1010] != 0b0101 {
		t.Error("bit reversal wrong")
	}
	if _, err := Transpose(5); err == nil {
		t.Error("odd logN should error")
	}
}

func TestTotalExchangeOffChipCensus(t *testing.T) {
	// E14: the simulated total exchange must use exactly N^2 * avgIC
	// off-chip transmissions on both the hypercube (dimension-order
	// routing) and the HSN (hierarchical routing): both routers are
	// intercluster-optimal.
	cube := mustHypercube(t, 6, 2, 1e9)
	resC, err := RunTotalExchange(cube, 5, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// avgIC over ordered pairs incl self = (d-logM)/2 = 2; count excludes
	// nothing since self pairs contribute 0.
	wantC := TotalExchangeOffChipLowerBound(64, 2.0)
	if float64(resC.Stats.OffChipHops) != wantC {
		t.Errorf("cube TE off-chip hops = %d, want %v", resC.Stats.OffChipHops, wantC)
	}

	hsn, w := mustHSN(t, 3, 2, 1e9)
	resH, err := RunTotalExchange(hsn, 5, 5000)
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	wantH := TotalExchangeOffChipLowerBound(64, 1.5)
	if float64(resH.Stats.OffChipHops) != wantH {
		t.Errorf("HSN TE off-chip hops = %d, want %v", resH.Stats.OffChipHops, wantH)
	}
	if resH.Stats.OffChipHops >= resC.Stats.OffChipHops {
		t.Error("HSN should use fewer off-chip transmissions than the hypercube")
	}
}

func TestSaturationHSNBeatsHypercube(t *testing.T) {
	// E15 at small scale: 64 nodes, 16 chips of 4, equal chip budget.
	// Analytic saturation: hypercube C/8, HSN(3,Q2) C/6 (33% higher).
	const C = 3.0
	cube := mustHypercube(t, 6, 2, C)
	hsn, _ := mustHSN(t, 3, 2, C)
	cubeTh, _, err := SaturationThroughput(cube, 11, 0.05, 1.0, 150, 300)
	if err != nil {
		t.Fatal(err)
	}
	hsnTh, _, err := SaturationThroughput(hsn, 11, 0.05, 1.0, 150, 300)
	if err != nil {
		t.Fatal(err)
	}
	if hsnTh <= cubeTh {
		t.Errorf("HSN throughput %v should beat hypercube %v", hsnTh, cubeTh)
	}
	// The analytic ratio is 4/3; allow simulation slack.
	ratio := hsnTh / cubeTh
	if ratio < 1.1 || ratio > 1.7 {
		t.Errorf("throughput ratio = %v, want around 1.33", ratio)
	}
}

func TestUnitLinkComparableThroughput(t *testing.T) {
	// Section 4.1: "when the unit link capacity model is assumed, HSNs,
	// complete-CNs, SFNs, and hypercubes have comparable throughput for
	// these communication-intensive tasks (usually within a factor of
	// 1+o(1) or 2+o(1))".  Under unit link capacity the MCMP advantage
	// disappears: saturation rates must be within a small constant factor.
	cube := mustHypercube(t, 6, 2, 1.0)
	UniformCapacity(cube, 1.0)
	hsn, _ := mustHSN(t, 3, 2, 1.0)
	UniformCapacity(hsn, 1.0)
	cubeTh, _, err := SaturationThroughput(cube, 21, 0.1, 3.0, 150, 300)
	if err != nil {
		t.Fatal(err)
	}
	hsnTh, _, err := SaturationThroughput(hsn, 21, 0.1, 3.0, 150, 300)
	if err != nil {
		t.Fatal(err)
	}
	if cubeTh <= 0 || hsnTh <= 0 {
		t.Fatalf("degenerate throughputs %v, %v", cubeTh, hsnTh)
	}
	ratio := cubeTh / hsnTh
	if ratio < 1.0/3.0 || ratio > 3.0 {
		t.Errorf("unit-link throughput ratio cube/HSN = %.2f, want within 3x", ratio)
	}
}

func TestHSNRouterDeliversShortest(t *testing.T) {
	// Every packet on the HSN router takes exactly
	// (#differing suffix groups) off-chip hops.
	net, w := mustHSN(t, 3, 2, 1e9)
	g := w.MustBuild()
	m := w.SymbolLen()
	for src := 0; src < g.N(); src += 7 {
		for dst := 0; dst < g.N(); dst += 5 {
			if src == dst {
				continue
			}
			cur := src
			off := 0
			for steps := 0; cur != dst; steps++ {
				if steps > 50 {
					t.Fatalf("route %d->%d too long", src, dst)
				}
				p := net.Router.NextPort(cur, dst)
				next := int(net.Ports.Port(cur, p))
				if next < 0 {
					t.Fatalf("router chose absent port at %d", cur)
				}
				if net.ClusterOf[cur] != net.ClusterOf[next] {
					off++
				}
				cur = next
			}
			want := 0
			for i := 1; i < w.L; i++ {
				if !g.Label(src).Group(m, i).Equal(g.Label(dst).Group(m, i)) {
					want++
				}
			}
			if off != want {
				t.Fatalf("route %d->%d used %d off-chip hops, want %d", src, dst, off, want)
			}
		}
	}
}

func TestTableRouterOnCompleteCN(t *testing.T) {
	w := superipg.CompleteCN(3, nucleus.Hypercube(2))
	g := w.MustBuild()
	// Build with a placeholder router, then swap in the table router.
	net, err := BuildSuperIPG(w, g, 1e9, HypercubeRouter{D: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTableRouter(net)
	if err != nil {
		t.Fatal(err)
	}
	net.Router = tr
	res, err := RunRandomUniform(net, 9, 0.1, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered == 0 {
		t.Fatal("table-routed CN delivered nothing")
	}
	// Latency at low load ~ average distance of the network.
	u := g.Undirected()
	avg := u.AverageDistance() * float64(g.N()) / float64(g.N()-1)
	if math.Abs(res.Latency-avg) > 0.5 {
		t.Errorf("CN latency = %v, want about %v", res.Latency, avg)
	}
}

func TestTorusSimulatedNetwork(t *testing.T) {
	net, err := BuildTorus2D(8, 2, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := RunRandomUniform(net, 3, 0.1, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered == 0 {
		t.Fatal("torus delivered nothing")
	}
	if res.Stats.HopsPerPacket() <= 1 {
		t.Errorf("hops/packet = %v, implausible", res.Stats.HopsPerPacket())
	}
	// Bad chip sides rejected.
	if _, err := BuildTorus2D(8, 3, 4.0); err == nil {
		t.Error("side not dividing k should error")
	}
	if _, err := BuildTorus2D(8, 8, 4.0); err == nil {
		t.Error("single-chip torus should error")
	}
	// TorusRouter at destination.
	if (TorusRouter{K: 8, Dims: 2}).NextPort(5, 5) != -1 {
		t.Error("at-destination should return -1")
	}
}

func TestGraphPortMap(t *testing.T) {
	w := superipg.HSN(2, nucleus.Hypercube(2))
	u := w.MustBuild().Undirected()
	pm := topo.FromTopology(u, 2.5)
	if pm.N() != u.N() {
		t.Fatal("length mismatch")
	}
	for v := 0; v < u.N(); v++ {
		if pm.Arity(v) != u.Degree(v) {
			t.Fatalf("node %d has %d ports, degree %d", v, pm.Arity(v), u.Degree(v))
		}
		for p := 0; p < pm.Arity(v); p++ {
			if pm.Cap(v, p) != 2.5 {
				t.Fatal("capacity not applied")
			}
		}
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var st Stats
	if st.AvgLatency() != 0 || st.OffChipPerPacket() != 0 || st.HopsPerPacket() != 0 {
		t.Error("zero-delivery stats should be 0")
	}
}

func TestValidation(t *testing.T) {
	net := &Network{Name: "bad", N: 2}
	if err := net.Validate(); err == nil {
		t.Error("missing ports should fail")
	}
	good := mustHypercube(t, 3, 1, 1.0)
	if err := good.Validate(); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
	good.Router = nil
	if err := good.Validate(); err == nil {
		t.Error("nil router should fail")
	}
}

func TestEnqueueErrors(t *testing.T) {
	net := mustHypercube(t, 3, 1, 1.0)
	s, err := New(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(3, 3); err == nil {
		t.Error("self packet should error")
	}
}

func TestFractionalCapacity(t *testing.T) {
	// A 0.5-capacity link moves one packet every two rounds.
	net := &Network{
		Name:  "pair",
		N:     2,
		Ports: topo.PortMapFromRows([][]int32{{1}, {0}}, [][]float64{{0.5}, {0.5}}),
		Router: routeFunc(func(cur, dst int) int {
			return 0
		}),
	}
	s, err := New(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Enqueue(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// 10 rounds at 0.5/round, plus up to 1 burst credit.
	if st.Delivered < 5 || st.Delivered > 6 {
		t.Errorf("delivered %d over 10 rounds on 0.5-cap link, want 5-6", st.Delivered)
	}
}

type routeFunc func(cur, dst int) int

func (f routeFunc) NextPort(cur, dst int) int { return f(cur, dst) }
