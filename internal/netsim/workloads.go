package netsim

import (
	"context"
	"fmt"
	"math/rand"
)

// This file drives the paper's communication-intensive workloads: random
// uniform routing (Section 4's throughput comparisons), total exchange
// (Corollary 3.11 and the Section 4.1 off-chip-transmission claims), and
// permutation traffic such as matrix transposition.
//
// Every runner has a context-aware variant (the ...Ctx functions) used by
// the serving layer: the round loop checks the context once per simulated
// round — each round touches every node, so cancellation is observed
// after at most O(N) work — and returns the context's error with the
// partial round count.

// RandomResult reports a random-routing run.
type RandomResult struct {
	Rate      float64 // offered load, packets/node/round
	Stats     Stats
	Accepted  float64 // delivered packets/node/round over the measured phase
	Latency   float64
	Saturated bool // queues kept growing (delivered << injected)
}

// RunRandomUniform injects Bernoulli traffic at the given rate with
// uniformly random destinations for warmup+measure rounds, measuring over
// the final `measure` rounds.
func RunRandomUniform(net *Network, seed int64, rate float64, warmup, measure int) (RandomResult, error) {
	return RunRandomUniformCtx(context.Background(), net, seed, rate, warmup, measure)
}

// RunRandomUniformCtx is RunRandomUniform under a context deadline,
// checked once per simulated round.
func RunRandomUniformCtx(ctx context.Context, net *Network, seed int64, rate float64, warmup, measure int) (RandomResult, error) {
	if err := checkNodeCount(net.N); err != nil {
		return RandomResult{}, err
	}
	s, err := New(net, seed)
	if err != nil {
		return RandomResult{}, err
	}
	n := int32(net.N)
	s.SetInjector(func(u int, _ int32, emit func(dst int32)) {
		rng := s.rngs[u]
		// Bernoulli or multi-packet injection for rate > 1.
		r := rate
		for r >= 1 {
			emit(pickOther(rng, n, int32(u)))
			r--
		}
		if r > 0 && rng.Float64() < r {
			emit(pickOther(rng, n, int32(u)))
		}
	})
	for i := 0; i < warmup; i++ {
		if err := ctx.Err(); err != nil {
			return RandomResult{}, err
		}
		if _, err := s.Step(); err != nil {
			return RandomResult{}, err
		}
	}
	s.ResetStats()
	inFlightBefore := s.InFlight()
	for i := 0; i < measure; i++ {
		if err := ctx.Err(); err != nil {
			return RandomResult{}, err
		}
		if _, err := s.Step(); err != nil {
			return RandomResult{}, err
		}
	}
	st := s.Stats()
	res := RandomResult{
		Rate:     rate,
		Stats:    st,
		Accepted: float64(st.Delivered) / float64(net.N) / float64(measure),
		Latency:  st.AvgLatency(),
	}
	// Saturation heuristic: backlog grew by more than 20% of injections.
	growth := st.InFlight - inFlightBefore
	res.Saturated = float64(growth) > 0.2*float64(st.Injected)
	return res, nil
}

func pickOther(rng *rand.Rand, n, self int32) int32 {
	d := rng.Int31n(n - 1)
	if d >= self {
		d++
	}
	return d
}

// SaturationThroughput sweeps the injection rate upward until the network
// saturates and returns the largest sustained rate found, with the sweep
// trace.  Rates are multiples of step up to max.
func SaturationThroughput(net *Network, seed int64, step, max float64, warmup, measure int) (float64, []RandomResult, error) {
	var trace []RandomResult
	best := 0.0
	for rate := step; rate <= max+1e-9; rate += step {
		res, err := RunRandomUniform(net, seed, rate, warmup, measure)
		if err != nil {
			return 0, trace, err
		}
		trace = append(trace, res)
		if !res.Saturated {
			best = res.Accepted
		} else {
			break
		}
	}
	return best, trace, nil
}

// DrainResult reports a batch workload run to completion.
type DrainResult struct {
	Rounds int
	Stats
}

// runToCompletion steps until every packet is accounted for (delivered,
// or — on a faulty network — dropped), maxRounds is hit, or ctx is
// cancelled (checked once per round).
func runToCompletion(ctx context.Context, s *Sim, total int64, maxRounds int) (DrainResult, error) {
	for r := 0; r < maxRounds; r++ {
		if err := ctx.Err(); err != nil {
			return DrainResult{Rounds: r, Stats: s.Stats()}, err
		}
		if _, err := s.Step(); err != nil {
			return DrainResult{}, err
		}
		st := s.Stats()
		if st.Delivered+st.Dropped >= total {
			return DrainResult{Rounds: r + 1, Stats: st}, nil
		}
	}
	st := s.Stats()
	return DrainResult{Rounds: maxRounds, Stats: st},
		fmt.Errorf("netsim: %s: %d of %d packets undelivered after %d rounds",
			s.Net.Name, total-st.Delivered, total, maxRounds)
}

// RunPermutation sends one packet from every node u to perm[u] (nodes with
// perm[u] == u send nothing) and drains.
func RunPermutation(net *Network, seed int64, perm []int32, maxRounds int) (DrainResult, error) {
	return RunPermutationCtx(context.Background(), net, seed, perm, maxRounds)
}

// RunPermutationCtx is RunPermutation under a context deadline, checked
// once per simulated round.
func RunPermutationCtx(ctx context.Context, net *Network, seed int64, perm []int32, maxRounds int) (DrainResult, error) {
	if len(perm) != net.N {
		return DrainResult{}, fmt.Errorf("netsim: permutation length %d != %d", len(perm), net.N)
	}
	s, err := New(net, seed)
	if err != nil {
		return DrainResult{}, err
	}
	var total int64
	for u, d := range perm {
		if u&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return DrainResult{}, err
			}
		}
		if int(d) == u {
			continue
		}
		if err := s.Enqueue(u, d); err != nil {
			return DrainResult{}, err
		}
		total++
	}
	return runToCompletion(ctx, s, total, maxRounds)
}

// Transpose returns the matrix-transposition permutation on 2^(2h) nodes:
// node (r, c) sends to (c, r), i.e. the address halves are swapped.
func Transpose(logN int) ([]int32, error) {
	if logN%2 != 0 {
		return nil, fmt.Errorf("netsim: transpose needs an even number of address bits, got %d", logN)
	}
	h := logN / 2
	n := 1 << logN
	if err := checkNodeCount(n); err != nil {
		return nil, err
	}
	mask := int32(1<<h - 1)
	perm := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		perm[v] = (v&mask)<<h | v>>h
	}
	return perm, nil
}

// BitReversePerm returns the bit-reversal permutation, the canonical FFT
// data rearrangement.
func BitReversePerm(logN int) []int32 {
	n := 1 << logN
	if err := checkNodeCount(n); err != nil {
		panic("netsim.BitReversePerm: " + err.Error())
	}
	perm := make([]int32, n)
	for v := 0; v < n; v++ {
		r := 0
		for b := 0; b < logN; b++ {
			r = r<<1 | (v>>b)&1
		}
		perm[v] = int32(r)
	}
	return perm
}

// RunTotalExchange has every node send one personalized packet to every
// other node, injected in waves to bound memory, and drains.  It returns
// the completion time and the off-chip transmission census of Section 4.1.
func RunTotalExchange(net *Network, seed int64, maxRounds int) (DrainResult, error) {
	return RunTotalExchangeCtx(context.Background(), net, seed, maxRounds)
}

// RunTotalExchangeCtx is RunTotalExchange under a context deadline,
// checked once per simulated round.
func RunTotalExchangeCtx(ctx context.Context, net *Network, seed int64, maxRounds int) (DrainResult, error) {
	if err := checkNodeCount(net.N); err != nil {
		return DrainResult{}, err
	}
	s, err := New(net, seed)
	if err != nil {
		return DrainResult{}, err
	}
	n := int32(net.N)
	total := int64(net.N) * int64(net.N-1)
	// Wave injection: at round r, node u sends to u+r+1 mod N.  This is the
	// standard staggered total exchange; every (src,dst) pair occurs once.
	s.SetInjector(func(u int, round int32, emit func(dst int32)) {
		if round <= n-1 {
			emit((int32(u) + round) % n)
		}
	})
	res, err := runToCompletion(ctx, s, total, maxRounds)
	if err != nil {
		return res, err
	}
	return res, nil
}

// TotalExchangeOffChipLowerBound returns the analytic count of off-chip
// transmissions a total exchange needs: sum over ordered pairs of the
// intercluster distance, i.e. N^2 times the average intercluster distance.
func TotalExchangeOffChipLowerBound(nNodes int, avgIC float64) float64 {
	return float64(nNodes) * float64(nNodes) * avgIC
}
