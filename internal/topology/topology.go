// Package topology builds the baseline (non-IPG) interconnection networks
// the paper compares against: binary hypercubes, k-ary n-cubes (tori),
// generalized hypercubes, cube-connected cycles, butterflies,
// shuffle-exchange and de Bruijn graphs, and homogeneous product networks
// (HPNs).  Each constructor returns both the materialized graph and enough
// addressing structure for routing and for MCMP cluster assignment.
package topology

import (
	"fmt"

	"ipg/internal/graph"
	"ipg/internal/topo"
)

// Hypercube is the binary d-cube; node id = address, edges flip one bit.
type Hypercube struct {
	D int
	G *graph.Graph
}

// NewHypercube builds Q_d.
func NewHypercube(d int) *Hypercube {
	if d < 1 || d > 24 {
		panic("topology.NewHypercube: d out of range [1,24]")
	}
	n := 1 << d
	g := graph.FromStream(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			for b := 0; b < d; b++ {
				edge(v, v^(1<<b))
			}
		}
	})
	g.MarkVertexTransitive() // Cayley graph of (Z_2)^d
	return &Hypercube{D: d, G: g}
}

// N returns the node count 2^d.
func (h *Hypercube) N() int { return 1 << h.D }

// Name returns a short identifier such as "Q12".
func (h *Hypercube) Name() string { return fmt.Sprintf("Q%d", h.D) }

// NextHop returns the neighbor on a dimension-order route from cur to dst
// (lowest differing bit first), or cur if already there.  The arithmetic
// is shared with the netsim HypercubeRouter via internal/topo.
func (h *Hypercube) NextHop(cur, dst int) int {
	b := topo.HypercubeNextDim(cur, dst)
	if b < 0 {
		return cur
	}
	return cur ^ (1 << b)
}

// Distance returns the Hamming distance between two nodes.
func (h *Hypercube) Distance(a, b int) int { return topo.HammingDistance(a, b) }

// Torus is the k-ary n-cube: n dimensions of radix k with wraparound.
// Node id encodes the digit vector in base k (dimension 0 least
// significant).  For k = 2 pairs of wrap links collapse to single edges.
type Torus struct {
	K, Dims int
	G       *graph.Graph
}

// MaxNodes caps materialized baseline networks, mirroring ipg.MaxNodes.
const MaxNodes = 1 << 22

// NewTorusChecked builds the k-ary n-cube, reporting an error when k^dims
// exceeds MaxNodes.  The bound is checked before each multiplication so an
// oversized request fails cleanly instead of wrapping the int node count.
func NewTorusChecked(k, dims int) (*Torus, error) {
	if k < 2 || dims < 1 {
		return nil, fmt.Errorf("topology: torus needs k >= 2, dims >= 1 (got k=%d, dims=%d)", k, dims)
	}
	n := 1
	for i := 0; i < dims; i++ {
		if n > MaxNodes/k {
			return nil, fmt.Errorf("topology: %d-ary %d-cube exceeds MaxNodes=%d", k, dims, MaxNodes)
		}
		n *= k
	}
	g := graph.FromStream(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			weight := 1
			for d := 0; d < dims; d++ {
				digit := (v / weight) % k
				edge(v, v-digit*weight+((digit+1)%k)*weight)
				weight *= k
			}
		}
	})
	g.MarkVertexTransitive() // Cayley graph of (Z_k)^dims
	return &Torus{K: k, Dims: dims, G: g}, nil
}

// NewTorus builds the k-ary n-cube, panicking on invalid or oversized
// parameters; scale-sensitive callers should use NewTorusChecked.
func NewTorus(k, dims int) *Torus {
	t, err := NewTorusChecked(k, dims)
	if err != nil {
		panic("topology.NewTorus: " + err.Error())
	}
	return t
}

// N returns k^dims.
func (t *Torus) N() int { return t.G.N() }

// Name returns an identifier such as "64-ary 2-cube".
func (t *Torus) Name() string { return fmt.Sprintf("%d-ary %d-cube", t.K, t.Dims) }

// Digit returns digit d of node v.
func (t *Torus) Digit(v, d int) int {
	for i := 0; i < d; i++ {
		v /= t.K
	}
	return v % t.K
}

// NextHop returns the neighbor on a dimension-order minimal route
// (shortest way around each ring), or cur when cur == dst.  The
// arithmetic is shared with the netsim TorusRouter via internal/topo.
func (t *Torus) NextHop(cur, dst int) int {
	dim, dir := topo.TorusNextHop(t.K, t.Dims, cur, dst)
	if dim < 0 {
		return cur
	}
	return topo.TorusNeighbor(t.K, cur, dim, dir)
}

// GHCGraph is the generalized hypercube as a plain graph: the Cartesian
// product of complete graphs with the given radices, node id in mixed radix
// (dimension 0 least significant).
type GHCGraph struct {
	Radices []int
	G       *graph.Graph
}

// NewGHCGraphChecked builds GHC(m_1, ..., m_n), reporting an error when
// the node count would exceed MaxNodes (checked before each multiplication
// so the int product never wraps).
func NewGHCGraphChecked(radices ...int) (*GHCGraph, error) {
	n := 1
	for _, m := range radices {
		if m < 2 {
			return nil, fmt.Errorf("topology: GHC radix must be >= 2 (got %d)", m)
		}
		if n > MaxNodes/m {
			return nil, fmt.Errorf("topology: GHC%v exceeds MaxNodes=%d", radices, MaxNodes)
		}
		n *= m
	}
	g := graph.FromStream(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			weight := 1
			for _, m := range radices {
				digit := (v / weight) % m
				for other := 0; other < m; other++ {
					if other != digit {
						edge(v, v+(other-digit)*weight)
					}
				}
				weight *= m
			}
		}
	})
	g.MarkVertexTransitive() // Cayley graph of Z_m1 x ... x Z_mn (complete-graph factors)
	return &GHCGraph{Radices: append([]int(nil), radices...), G: g}, nil
}

// NewGHCGraph builds GHC(m_1, ..., m_n), panicking on invalid or oversized
// parameters; scale-sensitive callers should use NewGHCGraphChecked.
func NewGHCGraph(radices ...int) *GHCGraph {
	g, err := NewGHCGraphChecked(radices...)
	if err != nil {
		panic("topology.NewGHCGraph: " + err.Error())
	}
	return g
}

// N returns the node count.
func (g *GHCGraph) N() int { return g.G.N() }

// CCC is the cube-connected cycles network CCC(d): each hypercube vertex is
// replaced by a d-cycle; node id = x*d + i for cube address x and cycle
// position i.  Degree 3 (for d >= 3), N = d*2^d.
type CCC struct {
	D int
	G *graph.Graph
}

// NewCCC builds CCC(d).
func NewCCC(d int) *CCC {
	if d < 3 || d > 18 {
		panic("topology.NewCCC: d out of range [3,18]")
	}
	n := d * (1 << d)
	g := graph.FromStream(n, func(edge func(u, v int)) {
		for x := 0; x < 1<<d; x++ {
			for i := 0; i < d; i++ {
				v := x*d + i
				edge(v, x*d+(i+1)%d)    // cycle link
				edge(v, (x^(1<<i))*d+i) // cube link at position i
			}
		}
	})
	g.MarkVertexTransitive() // Cayley graph of (Z_2)^d semidirect Z_d
	return &CCC{D: d, G: g}
}

// N returns d*2^d.
func (c *CCC) N() int { return c.G.N() }

// CubeAddr returns the hypercube address of node v.
func (c *CCC) CubeAddr(v int) int { return v / c.D }

// CyclePos returns the cycle position of node v.
func (c *CCC) CyclePos(v int) int { return v % c.D }

// Butterfly is the wrapped butterfly WBF(d): nodes (level, row) with
// level in 0..d-1 and row in 0..2^d-1; node id = row*d + level.  Edges go
// from level i to level (i+1) mod d, straight and crossing bit i.
// N = d*2^d, 4-regular for d >= 3.
type Butterfly struct {
	D int
	G *graph.Graph
}

// NewButterfly builds the wrapped butterfly of dimension d.
func NewButterfly(d int) *Butterfly {
	if d < 2 || d > 18 {
		panic("topology.NewButterfly: d out of range [2,18]")
	}
	n := d * (1 << d)
	g := graph.FromStream(n, func(edge func(u, v int)) {
		for row := 0; row < 1<<d; row++ {
			for lev := 0; lev < d; lev++ {
				v := row*d + lev
				next := (lev + 1) % d
				edge(v, row*d+next)            // straight
				edge(v, (row^(1<<lev))*d+next) // cross
			}
		}
	})
	g.MarkVertexTransitive() // Cayley graph of (Z_2)^d semidirect Z_d
	return &Butterfly{D: d, G: g}
}

// N returns d*2^d.
func (b *Butterfly) N() int { return b.G.N() }

// Row returns the row of node v.
func (b *Butterfly) Row(v int) int { return v / b.D }

// Level returns the level of node v.
func (b *Butterfly) Level(v int) int { return v % b.D }

// ShuffleExchange is the shuffle-exchange graph SE(d) on 2^d nodes:
// exchange edges flip the low bit, shuffle edges rotate the address left.
type ShuffleExchange struct {
	D int
	G *graph.Graph
}

// NewShuffleExchange builds SE(d).
func NewShuffleExchange(d int) *ShuffleExchange {
	if d < 2 || d > 22 {
		panic("topology.NewShuffleExchange: d out of range [2,22]")
	}
	n := 1 << d
	mask := n - 1
	g := graph.FromStream(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			edge(v, v^1)                      // exchange
			edge(v, ((v<<1)|(v>>(d-1)))&mask) // shuffle
		}
	})
	return &ShuffleExchange{D: d, G: g}
}

// N returns 2^d.
func (s *ShuffleExchange) N() int { return s.G.N() }

// DeBruijn is the binary de Bruijn graph DB(d) on 2^d nodes: v connects to
// 2v mod N and 2v+1 mod N (undirected collapse).
type DeBruijn struct {
	D int
	G *graph.Graph
}

// NewDeBruijn builds DB(d).
func NewDeBruijn(d int) *DeBruijn {
	if d < 2 || d > 22 {
		panic("topology.NewDeBruijn: d out of range [2,22]")
	}
	n := 1 << d
	mask := n - 1
	g := graph.FromStream(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			edge(v, (v<<1)&mask)
			edge(v, ((v<<1)|1)&mask)
		}
	})
	return &DeBruijn{D: d, G: g}
}

// N returns 2^d.
func (d *DeBruijn) N() int { return d.G.N() }

// HPN returns the homogeneous product network HPN(p, g): the p-th
// Cartesian power of g (Efe & Fernandez).
func HPN(p int, g *graph.Graph) *graph.Graph { return graph.Power(g, p) }
