package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHypercube(t *testing.T) {
	h := NewHypercube(5)
	if h.N() != 32 || h.G.M() != 80 {
		t.Fatalf("Q5: n=%d m=%d", h.N(), h.G.M())
	}
	if d := h.G.Diameter(); d != 5 {
		t.Errorf("Q5 diameter = %d", d)
	}
	if h.Distance(0b10110, 0b00011) != 3 {
		t.Error("Hamming distance wrong")
	}
	if h.Name() != "Q5" {
		t.Errorf("name = %s", h.Name())
	}
}

func TestHypercubeNextHop(t *testing.T) {
	h := NewHypercube(6)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		cur, dst := r.Intn(64), r.Intn(64)
		steps := 0
		for cur != dst {
			next := h.NextHop(cur, dst)
			if !h.G.HasEdge(cur, next) {
				t.Fatalf("NextHop returned non-neighbor %d -> %d", cur, next)
			}
			cur = next
			steps++
			if steps > 6 {
				t.Fatal("route too long")
			}
		}
	}
	if h.NextHop(5, 5) != 5 {
		t.Error("NextHop at destination should stay")
	}
}

func TestTorus(t *testing.T) {
	tr := NewTorus(4, 2)
	if tr.N() != 16 || tr.G.M() != 32 {
		t.Fatalf("4-ary 2-cube: n=%d m=%d", tr.N(), tr.G.M())
	}
	if d := tr.G.Diameter(); d != 4 {
		t.Errorf("4-ary 2-cube diameter = %d, want 4", d)
	}
	if tr.Digit(7, 0) != 3 || tr.Digit(7, 1) != 1 {
		t.Error("Digit decoding wrong")
	}
	if tr.Name() != "4-ary 2-cube" {
		t.Errorf("name = %s", tr.Name())
	}
}

func TestTorusK2(t *testing.T) {
	// 2-ary n-cube is the hypercube.
	tr := NewTorus(2, 4)
	h := NewHypercube(4)
	if tr.N() != h.N() || tr.G.M() != h.G.M() {
		t.Errorf("2-ary 4-cube != Q4: m=%d vs %d", tr.G.M(), h.G.M())
	}
}

func TestTorusNextHopMinimal(t *testing.T) {
	tr := NewTorus(5, 2)
	r := rand.New(rand.NewSource(2))
	dist := func(a, b int) int {
		total := 0
		for d := 0; d < 2; d++ {
			delta := (tr.Digit(b, d) - tr.Digit(a, d) + 5) % 5
			if delta > 5-delta {
				delta = 5 - delta
			}
			total += delta
		}
		return total
	}
	for trial := 0; trial < 100; trial++ {
		cur, dst := r.Intn(25), r.Intn(25)
		want := dist(cur, dst)
		steps := 0
		for cur != dst {
			next := tr.NextHop(cur, dst)
			if !tr.G.HasEdge(cur, next) {
				t.Fatalf("NextHop returned non-neighbor")
			}
			cur = next
			steps++
		}
		if steps != want {
			t.Fatalf("route length %d, want minimal %d", steps, want)
		}
	}
}

func TestGHCGraph(t *testing.T) {
	g := NewGHCGraph(4, 4, 4)
	if g.N() != 64 {
		t.Fatalf("GHC(4,4,4) n=%d", g.N())
	}
	if reg, d := g.G.IsRegular(); !reg || d != 9 {
		t.Errorf("degree = %v,%d want 9", reg, d)
	}
	if diam := g.G.Diameter(); diam != 3 {
		t.Errorf("diameter = %d", diam)
	}
}

func TestCCC(t *testing.T) {
	c := NewCCC(3)
	if c.N() != 24 {
		t.Fatalf("CCC(3) n=%d", c.N())
	}
	if reg, d := c.G.IsRegular(); !reg || d != 3 {
		t.Errorf("CCC(3) degree = %v,%d want 3", reg, d)
	}
	if !c.G.Connected() {
		t.Error("CCC should be connected")
	}
	if c.CubeAddr(7) != 2 || c.CyclePos(7) != 1 {
		t.Error("CCC addressing wrong")
	}
}

func TestButterfly(t *testing.T) {
	b := NewButterfly(3)
	if b.N() != 24 {
		t.Fatalf("WBF(3) n=%d", b.N())
	}
	// Wrapped butterfly is 4-regular for d >= 3.
	if reg, d := b.G.IsRegular(); !reg || d != 4 {
		t.Errorf("WBF(3) degree = %v,%d want 4", reg, d)
	}
	if !b.G.Connected() {
		t.Error("butterfly should be connected")
	}
	if b.Row(7) != 2 || b.Level(7) != 1 {
		t.Error("butterfly addressing wrong")
	}
}

func TestShuffleExchangeAndDeBruijn(t *testing.T) {
	se := NewShuffleExchange(4)
	if se.N() != 16 || !se.G.Connected() {
		t.Fatalf("SE(4) bad: n=%d", se.N())
	}
	db := NewDeBruijn(4)
	if db.N() != 16 || !db.G.Connected() {
		t.Fatalf("DB(4) bad: n=%d", db.N())
	}
	// de Bruijn diameter is d.
	if diam := db.G.Diameter(); diam != 4 {
		t.Errorf("DB(4) diameter = %d", diam)
	}
}

func TestHPNOfK2IsHypercube(t *testing.T) {
	k2 := NewHypercube(1)
	p := HPN(4, k2.G)
	h := NewHypercube(4)
	if p.N() != h.N() || p.M() != h.G.M() {
		t.Errorf("HPN(4,K2) != Q4")
	}
	if d := p.Diameter(); d != 4 {
		t.Errorf("HPN(4,K2) diameter = %d", d)
	}
}

func TestQuickTorusDigits(t *testing.T) {
	tr := NewTorus(3, 3)
	f := func(raw uint8) bool {
		v := int(raw) % tr.N()
		back := 0
		weight := 1
		for d := 0; d < 3; d++ {
			back += tr.Digit(v, d) * weight
			weight *= 3
		}
		return back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestButterflyEdgeStructure(t *testing.T) {
	b := NewButterfly(4)
	// Every node connects to exactly the straight and cross nodes at the
	// next and previous levels.
	for row := 0; row < 16; row++ {
		for lev := 0; lev < 4; lev++ {
			v := row*4 + lev
			next := (lev + 1) % 4
			if !b.G.HasEdge(v, row*4+next) {
				t.Fatalf("missing straight edge at (%d,%d)", row, lev)
			}
			if !b.G.HasEdge(v, (row^(1<<lev))*4+next) {
				t.Fatalf("missing cross edge at (%d,%d)", row, lev)
			}
		}
	}
}
