package topology

import (
	"testing"

	"ipg/internal/graph"
)

// TestVertexTransitiveFamilies checks, for every family marked
// vertex-transitive, the property the single-source metric shortcut
// relies on: every vertex has the same eccentricity and the same distance
// sum.  It then cross-checks the shortcut itself — the parallel metrics
// (which take the single-source path for marked graphs) must equal the
// serial full-sweep reference exactly.
func TestVertexTransitiveFamilies(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"Q4", NewHypercube(4).G},
		{"4-ary 2-cube", NewTorus(4, 2).G},
		{"GHC(3,4)", NewGHCGraph(3, 4).G},
		{"CCC(4)", NewCCC(4).G},
		{"WBF(4)", NewButterfly(4).G},
	}
	for _, f := range families {
		if !f.g.VertexTransitive() {
			t.Errorf("%s: not marked vertex-transitive", f.name)
			continue
		}
		c := f.g.CSR()
		n := f.g.N()
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		ecc0, sum0 := c.BFSInto(0, dist, queue)
		for v := 1; v < n; v++ {
			ecc, sum := c.BFSInto(v, dist, queue)
			if ecc != ecc0 || sum != sum0 {
				t.Fatalf("%s: vertex %d has ecc=%d sum=%d, vertex 0 has ecc=%d sum=%d — not vertex-transitive",
					f.name, v, ecc, sum, ecc0, sum0)
			}
		}
		if got, want := f.g.DiameterParallel(), f.g.Diameter(); got != want {
			t.Errorf("%s: DiameterParallel = %d, serial = %d", f.name, got, want)
		}
		if got, want := f.g.AverageDistanceParallel(), f.g.AverageDistance(); got != want {
			t.Errorf("%s: AverageDistanceParallel = %v, serial = %v", f.name, got, want)
		}
	}
}

// TestNonTransitiveFamiliesUnmarked pins that families without a proven
// transitive construction stay on the full-sweep path: shuffle-exchange
// and de Bruijn graphs have fixed points / irregular neighborhoods and
// must never claim the shortcut.
func TestNonTransitiveFamiliesUnmarked(t *testing.T) {
	if NewShuffleExchange(4).G.VertexTransitive() {
		t.Error("shuffle-exchange marked vertex-transitive")
	}
	if NewDeBruijn(4).G.VertexTransitive() {
		t.Error("de Bruijn marked vertex-transitive")
	}
}

// TestAddEdgeClearsTransitivity pins the invalidation rule: mutating a
// marked graph must drop the mark, or the shortcut would silently report
// stale metrics.
func TestAddEdgeClearsTransitivity(t *testing.T) {
	h := NewHypercube(3)
	if !h.G.VertexTransitive() {
		t.Fatal("Q3 not marked")
	}
	h.G.AddEdge(0, 3)
	if h.G.VertexTransitive() {
		t.Error("mark survived AddEdge")
	}
	if got, want := h.G.DiameterParallel(), h.G.Diameter(); got != want {
		t.Errorf("after mutation: DiameterParallel = %d, serial = %d", got, want)
	}
}
