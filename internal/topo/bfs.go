package topo

//lint:file-ignore ctxflow BFS kernels are deliberately ctx-free: one call is a single bounded traversal, and callers (graph's batch drivers, serve) poll ctx between calls, keeping cancellation latency to one batch

// This file holds the scalar BFS kernels every single-source distance
// computation in the repository runs: graph.Diameter/AverageDistance and
// their parallel variants, and the directed cluster-quotient diameter in
// internal/superipg all delegate here instead of hand-rolling the loop.
// The batched 64-source kernel lives in msbfs.go.

// BFSInto runs BFS from src into the caller-owned buffers: dist (length
// c.N(), fully overwritten; -1 marks unreachable) and queue (scratch;
// cap >= c.N() makes the call allocation-free).  It returns the
// eccentricity of src and the sum of finite distances; ecc is -1 when some
// vertex is unreachable (the sum then covers the reached vertices only).
func (c *CSR) BFSInto(src int, dist []int32, queue []int32) (ecc int32, sum int64) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	//lint:ignore indextrunc src < c.N() <= MaxVertices (math.MaxInt32)
	queue = append(queue, int32(src))
	visited := 1
	arena, off := c.arena, c.off
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		sum += int64(du)
		for _, v := range arena[off[u]:off[u+1]] {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
				visited++
			}
		}
	}
	if visited != c.N() {
		return -1, sum
	}
	return ecc, sum
}

// BFSGenericInto is BFSInto for any Topology implementation, walking
// neighbors through the interface.  It shares the CSR kernel's contract
// exactly — in particular the visited-count check, so a disconnected
// component is reported as ecc = -1 on both paths.  nbuf is neighbor
// scratch (cap >= the maximum degree avoids reallocation); the possibly
// grown buffer is returned for reuse.
func BFSGenericInto(t Topology, src int, dist, queue, nbuf []int32) (ecc int32, sum int64, _ []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	//lint:ignore indextrunc src < t.N() <= MaxVertices (math.MaxInt32)
	queue = append(queue, int32(src))
	visited := 1
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		sum += int64(du)
		nbuf = t.Neighbors(int(u), nbuf)
		for _, v := range nbuf {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
				visited++
			}
		}
	}
	if visited != t.N() {
		return -1, sum, nbuf
	}
	return ecc, sum, nbuf
}

// BFS returns the distance from src to every vertex of t (-1 if
// unreachable).  CSR-backed topologies take the flat-arena fast path;
// other implementations go through BFSGenericInto, so both paths report
// disconnected components identically.
func BFS(t Topology, src int) []int32 {
	n := t.N()
	dist := make([]int32, n)
	if c, ok := t.(*CSR); ok {
		c.BFSInto(src, dist, make([]int32, 0, n))
		return dist
	}
	BFSGenericInto(t, src, dist, make([]int32, 0, n), nil)
	return dist
}
