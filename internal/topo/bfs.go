package topo

// This file holds the one BFS kernel every all-sources distance
// computation in the repository runs: graph.Diameter/AverageDistance and
// their parallel variants, and the directed cluster-quotient diameter in
// internal/superipg all delegate here instead of hand-rolling the loop.

// BFSInto runs BFS from src into the caller-owned buffers: dist (length
// c.N(), fully overwritten; -1 marks unreachable) and queue (scratch;
// cap >= c.N() makes the call allocation-free).  It returns the
// eccentricity of src and the sum of finite distances; ecc is -1 when some
// vertex is unreachable (the sum then covers the reached vertices only).
func (c *CSR) BFSInto(src int, dist []int32, queue []int32) (ecc int32, sum int64) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	//lint:ignore indextrunc src < c.N() <= MaxVertices (math.MaxInt32)
	queue = append(queue, int32(src))
	visited := 1
	arena, off := c.arena, c.off
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		sum += int64(du)
		for _, v := range arena[off[u]:off[u+1]] {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
				visited++
			}
		}
	}
	if visited != c.N() {
		return -1, sum
	}
	return ecc, sum
}

// BFS returns the distance from src to every vertex of t (-1 if
// unreachable).  CSR-backed topologies take the flat-arena fast path;
// other implementations are walked through the interface.
func BFS(t Topology, src int) []int32 {
	n := t.N()
	dist := make([]int32, n)
	if c, ok := t.(*CSR); ok {
		c.BFSInto(src, dist, make([]int32, 0, n))
		return dist
	}
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	//lint:ignore indextrunc src < t.N() <= MaxVertices (math.MaxInt32)
	queue := append(make([]int32, 0, n), int32(src))
	var buf []int32
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		buf = t.Neighbors(int(u), buf)
		for _, v := range buf {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
