package topo

//lint:file-ignore ctxflow masked MSBFS processes one 64-source batch per call; the degraded metric drivers poll ctx between batches

import "math/bits"

// This file holds the fault-masked variants of the BFS kernels: the same
// CSR arena is traversed, but a vertex bitset (one bit per vertex) and an
// arc bitset (one bit per arena index) hide failed vertices and links
// without rebuilding the arena.  The fault layer (internal/fault) builds
// the masks; both kernels treat a nil mask as all-alive, so the masked
// path with zero faults visits exactly the vertices and arcs the unmasked
// kernels do, in the same order, producing bit-identical eccentricities
// and distance sums.
//
// Unlike the unmasked kernels, the masked ones do not encode
// disconnection as ecc = -1: a degraded topology is routinely
// disconnected, and the caller needs the per-source reached count to tell
// a small component from a dead graph.  Both kernels therefore return how
// many vertices each source reached and leave ecc as the eccentricity
// within the source's component.

// NewBitset returns a bitset able to hold n bits, all zero.
func NewBitset(n int) []uint64 { return make([]uint64, (n+63)/64) }

// SetBit sets bit i of bs.
func SetBit(bs []uint64, i int) { bs[i>>6] |= 1 << (uint(i) & 63) }

// Bit reports bit i of bs, treating a nil bitset as all-zero.
func Bit(bs []uint64, i int) bool {
	return bs != nil && bs[i>>6]&(1<<(uint(i)&63)) != 0
}

// BFSMaskedInto runs BFS from src over the CSR, skipping vertices whose
// bit is set in vdead and arcs whose arena index is set in adead (either
// or both may be nil).  src must be alive.  dist (length c.N(), fully
// overwritten; -1 marks unreached or dead vertices) and queue are
// caller-owned scratch as in BFSInto.  It returns the eccentricity of src
// within its component, the sum of distances to reached vertices, and the
// reached-vertex count (including src).
func (c *CSR) BFSMaskedInto(src int, vdead, adead []uint64, dist, queue []int32) (ecc int32, sum int64, reached int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	//lint:ignore indextrunc src < c.N() <= MaxVertices (math.MaxInt32)
	queue = append(queue, int32(src))
	reached = 1
	arena, off := c.arena, c.off
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		sum += int64(du)
		base := off[u]
		for j, v := range arena[base:off[u+1]] {
			if dist[v] >= 0 || Bit(adead, int(base)+j) || Bit(vdead, int(v)) {
				continue
			}
			dist[v] = du + 1
			queue = append(queue, v)
			reached++
		}
	}
	return ecc, sum, reached
}

// MSBFSMaskedInto is the masked variant of MSBFSInto: up to 64 BFS
// traversals advance together over a symmetric CSR, skipping vertices in
// vdead and arcs in adead (either may be nil; a failed undirected edge
// must have both of its arc directions marked, which keeps the bottom-up
// gather — reading Row(v) as in-neighbors — correct).  All sources must
// be alive.  Per source i it writes ecc[i] (eccentricity within the
// source's component), sum[i] (sum of distances to reached vertices), and
// reached[i] (vertices reached, including the source).  There is no
// dist output: the fault layer consumes only the census quantities.
func (c *CSR) MSBFSMaskedInto(sources []int32, s *MSBFSScratch, vdead, adead []uint64, ecc []int32, sum []int64, reached []int32) {
	n := c.N()
	ns := len(sources)
	if ns == 0 || ns > msbfsBatch {
		panic("topo: MSBFSMaskedInto needs 1..64 sources")
	}
	if len(ecc) < ns || len(sum) < ns || len(reached) < ns {
		panic("topo: MSBFSMaskedInto ecc/sum/reached shorter than sources")
	}
	s.ensure(n)
	visited, frontier, next := s.visited, s.frontier, s.next
	for i := range visited {
		visited[i] = 0
		frontier[i] = 0
		next[i] = 0
	}
	full := ^uint64(0) >> (msbfsBatch - ns)
	s.cur = s.cur[:0]
	for i, src := range sources {
		if Bit(vdead, int(src)) {
			panic("topo: MSBFSMaskedInto source is dead")
		}
		if frontier[src] == 0 {
			s.cur = append(s.cur, src)
		}
		bit := uint64(1) << i
		frontier[src] |= bit
		visited[src] |= bit
		ecc[i], sum[i] = 0, 0
		reached[i] = 1
	}
	arena, off := c.arena, c.off
	var cnt [msbfsBatch]int32
	for level := int32(1); len(s.cur) > 0; level++ {
		s.touched = s.touched[:0]
		if len(s.cur) > n/msbfsDenseCut {
			// Bottom-up: every alive, not-fully-visited vertex gathers the
			// frontier bits of its neighbors along alive arcs.  Dead
			// neighbors contribute nothing (their frontier word stays 0),
			// so only the arc mask needs checking in the gather.
			for v := 0; v < n; v++ {
				if visited[v] == full || Bit(vdead, v) {
					continue
				}
				base := off[v]
				var acc uint64
				for j, u := range arena[base:off[v+1]] {
					if Bit(adead, int(base)+j) {
						continue
					}
					acc |= frontier[u]
				}
				if acc&^visited[v] != 0 {
					next[v] = acc
					//lint:ignore indextrunc v < n <= MaxVertices (math.MaxInt32)
					s.touched = append(s.touched, int32(v))
				}
			}
		} else {
			// Top-down: frontier vertices push their bits along alive arcs
			// to alive targets.
			for _, u := range s.cur {
				f := frontier[u]
				base := off[u]
				for j, v := range arena[base:off[u+1]] {
					if f&^visited[v] == 0 || Bit(adead, int(base)+j) || Bit(vdead, int(v)) {
						continue
					}
					if next[v] == 0 {
						s.touched = append(s.touched, v)
					}
					next[v] |= f
				}
			}
		}
		for _, u := range s.cur {
			frontier[u] = 0
		}
		s.cur = s.cur[:0]
		for i := 0; i < ns; i++ {
			cnt[i] = 0
		}
		for _, v := range s.touched {
			newBits := next[v] &^ visited[v]
			next[v] = 0
			if newBits == 0 {
				continue
			}
			visited[v] |= newBits
			frontier[v] = newBits
			s.cur = append(s.cur, v)
			for b := newBits; b != 0; b &= b - 1 {
				cnt[bits.TrailingZeros64(b)]++
			}
		}
		for i := 0; i < ns; i++ {
			if cnt[i] > 0 {
				ecc[i] = level
				sum[i] += int64(level) * int64(cnt[i])
				reached[i] += cnt[i]
			}
		}
	}
}
