package topo

import "fmt"

//lint:file-ignore ctxflow port-map constructors are one-shot O(arcs) fills bounded by maxArcs (math.MaxUint32), run under serve's build timeout
//lint:file-ignore indextrunc port indices are < Arity(u) and all offsets are bounded to maxArcs (math.MaxUint32) at construction

// PortMap is the port-labelled topology of the packet simulator: for each
// node a fixed bank of ports, where ports[off[u]+p] is the neighbor behind
// port p of u (-1 = absent port) and caps[off[u]+p] is the directed link's
// capacity in packets per round.  Both banks live in single flat arrays —
// the simulator's third copy of the adjacency in the old representation is
// now a view over this one.
type PortMap struct {
	off   []uint32
	ports []int32
	caps  []float64
}

// NewUniformPortMap returns a PortMap with arity ports per node, all
// absent (-1) with zero capacity, for the builders to fill in.
func NewUniformPortMap(n, arity int) (*PortMap, error) {
	if err := CheckVertexCount(n); err != nil {
		return nil, err
	}
	if arity < 0 || (arity > 0 && uint64(n)*uint64(arity) > maxArcs) {
		return nil, fmt.Errorf("topo: %d nodes x %d ports overflow the uint32 offset representation", n, arity)
	}
	pm := &PortMap{
		off:   make([]uint32, n+1),
		ports: make([]int32, n*arity),
		caps:  make([]float64, n*arity),
	}
	for v := 0; v <= n; v++ {
		pm.off[v] = uint32(v * arity)
	}
	for i := range pm.ports {
		pm.ports[i] = -1
	}
	return pm, nil
}

// FromTopology returns the PortMap of t with port p of u = u's p-th sorted
// neighbor and every link at the given capacity.
func FromTopology(t Topology, capacity float64) *PortMap {
	n := t.N()
	off := make([]uint32, n+1)
	var total uint64
	for v := 0; v < n; v++ {
		total += uint64(t.Degree(v))
		if total > maxArcs {
			panic("topo.FromTopology: arc count overflows the uint32 offset representation")
		}
		off[v+1] = uint32(total)
	}
	pm := &PortMap{off: off, ports: make([]int32, total), caps: make([]float64, total)}
	var buf []int32
	for v := 0; v < n; v++ {
		buf = t.Neighbors(v, buf)
		copy(pm.ports[off[v]:off[v+1]], buf)
	}
	for i := range pm.caps {
		pm.caps[i] = capacity
	}
	return pm
}

// FromSource returns the PortMap of any adjacency source with port p of
// u = u's p-th canonical neighbor and every link at the given capacity.
// This is how the packet simulator consumes implicit (codec-backed)
// topologies: the per-node queue state of a simulation is O(N) regardless
// of representation, so materializing the port banks here costs nothing
// asymptotically, and the port numbering matches FromTopology on the CSR
// of the same family because both use the canonical sorted row order.
func FromSource(s Source, capacity float64) (*PortMap, error) {
	n := s.N()
	off := make([]uint32, n+1)
	buf := make([]int32, 0, s.DegreeBound())
	var total uint64
	for v := 0; v < n; v++ {
		buf = s.NeighborsInto(v, buf)
		total += uint64(len(buf))
		if total > maxArcs {
			return nil, fmt.Errorf("topo: source arc count overflows the uint32 offset representation")
		}
		off[v+1] = uint32(total)
	}
	pm := &PortMap{off: off, ports: make([]int32, total), caps: make([]float64, total)}
	for v := 0; v < n; v++ {
		buf = s.NeighborsInto(v, buf)
		copy(pm.ports[off[v]:off[v+1]], buf)
	}
	for i := range pm.caps {
		pm.caps[i] = capacity
	}
	return pm, nil
}

// PortMapFromRows converts per-node port/capacity rows into the flat
// representation; a convenience for tests and small hand-built networks.
// It panics on mismatched row shapes.
func PortMapFromRows(ports [][]int32, caps [][]float64) *PortMap {
	if len(ports) != len(caps) {
		panic("topo.PortMapFromRows: ports/caps length mismatch")
	}
	n := len(ports)
	off := make([]uint32, n+1)
	var total uint64
	for v := 0; v < n; v++ {
		if len(ports[v]) != len(caps[v]) {
			panic(fmt.Sprintf("topo.PortMapFromRows: node %d port/cap mismatch", v))
		}
		total += uint64(len(ports[v]))
		if total > maxArcs {
			panic("topo.PortMapFromRows: arc count overflows the uint32 offset representation")
		}
		off[v+1] = uint32(total)
	}
	pm := &PortMap{off: off, ports: make([]int32, total), caps: make([]float64, total)}
	for v := 0; v < n; v++ {
		copy(pm.ports[off[v]:off[v+1]], ports[v])
		copy(pm.caps[off[v]:off[v+1]], caps[v])
	}
	return pm
}

// N returns the node count.
func (pm *PortMap) N() int { return len(pm.off) - 1 }

// Arity returns the number of ports at u.
func (pm *PortMap) Arity(u int) int { return int(pm.off[u+1] - pm.off[u]) }

// Port returns the neighbor behind port p of u, or -1 if the port is
// absent.
func (pm *PortMap) Port(u, p int) int32 { return pm.ports[pm.off[u]+uint32(p)] }

// Cap returns the capacity of the directed link at (u, p).
func (pm *PortMap) Cap(u, p int) float64 { return pm.caps[pm.off[u]+uint32(p)] }

// SetPort installs neighbor nb behind port p of u.
func (pm *PortMap) SetPort(u, p int, nb int32) { pm.ports[pm.off[u]+uint32(p)] = nb }

// SetCap sets the capacity of the directed link at (u, p).
func (pm *PortMap) SetCap(u, p int, c float64) { pm.caps[pm.off[u]+uint32(p)] = c }

// PortRow returns u's port bank as a zero-copy view.
func (pm *PortMap) PortRow(u int) []int32 { return pm.ports[pm.off[u]:pm.off[u+1]] }

// CapRow returns u's capacity bank as a zero-copy view.
func (pm *PortMap) CapRow(u int) []float64 { return pm.caps[pm.off[u]:pm.off[u+1]] }
