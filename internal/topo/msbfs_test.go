package topo

import (
	"math/rand"
	"testing"
)

// randomCSR builds a random undirected graph: a spanning structure when
// connected is true (plus noise edges), or two disjoint halves when not.
// Build streams the edge set twice (count-then-fill), so the edges are
// drawn up front and the stream closure just replays them.
func randomCSR(t *testing.T, r *rand.Rand, n int, connected bool) *CSR {
	t.Helper()
	var edges [][2]int
	if connected {
		for v := 1; v < n; v++ {
			edges = append(edges, [2]int{v, r.Intn(v)})
		}
	} else {
		// Two halves, each internally a path: every source misses the
		// other half, so ecc must be -1 everywhere.
		half := n / 2
		for v := 1; v < half; v++ {
			edges = append(edges, [2]int{v, v - 1})
		}
		for v := half + 1; v < n; v++ {
			edges = append(edges, [2]int{v, v - 1})
		}
	}
	for e := 0; e < n/2; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if !connected {
			// Keep noise edges within one half.
			half := n / 2
			if (u < half) != (v < half) {
				continue
			}
		}
		edges = append(edges, [2]int{u, v})
	}
	c, err := Build(n, func(edge func(u, v int)) {
		for _, e := range edges {
			edge(e[0], e[1])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkMSBFSMatchesScalar runs the batched kernel over every vertex of c
// in batches of width batch and cross-checks ecc, sum, and the full
// distance vectors against scalar BFSInto, bit for bit.
func checkMSBFSMatchesScalar(t *testing.T, c *CSR, batch int) {
	t.Helper()
	n := c.N()
	scalarDist := make([]int32, n)
	queue := make([]int32, 0, n)
	s := NewMSBFSScratch(n)
	ecc := make([]int32, batch)
	sum := make([]int64, batch)
	dist := make([]int32, batch*n)
	srcs := make([]int32, 0, batch)
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		srcs = srcs[:0]
		for v := lo; v < hi; v++ {
			srcs = append(srcs, int32(v))
		}
		c.MSBFSInto(srcs, s, ecc, sum, dist)
		for i, src := range srcs {
			wantEcc, wantSum := c.BFSInto(int(src), scalarDist, queue)
			if ecc[i] != wantEcc || sum[i] != wantSum {
				t.Fatalf("src %d (batch %d): msbfs ecc=%d sum=%d, scalar ecc=%d sum=%d",
					src, batch, ecc[i], sum[i], wantEcc, wantSum)
			}
			for v := 0; v < n; v++ {
				if dist[i*n+v] != scalarDist[v] {
					t.Fatalf("src %d: dist[%d] = %d, scalar %d", src, v, dist[i*n+v], scalarDist[v])
				}
			}
		}
	}
}

func TestMSBFSMatchesScalarRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 7, 63, 64, 65, 200, 513} {
		for _, connected := range []bool{true, false} {
			if !connected && n < 4 {
				continue
			}
			c := randomCSR(t, r, n, connected)
			for _, batch := range []int{1, 3, 64} {
				if batch > n && batch != 64 {
					continue
				}
				checkMSBFSMatchesScalar(t, c, batch)
			}
		}
	}
}

// TestMSBFSDenseLevels forces the bottom-up branch: a star graph reaches
// every vertex at level 1, so the frontier is instantly dense.
func TestMSBFSDenseLevels(t *testing.T) {
	n := 400
	c, err := Build(n, func(edge func(u, v int)) {
		for v := 1; v < n; v++ {
			edge(0, v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMSBFSMatchesScalar(t, c, 64)
}

// TestMSBFSDuplicateSources allows two batch lanes to start at the same
// vertex; both must produce that vertex's scalar result.
func TestMSBFSDuplicateSources(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := randomCSR(t, r, 50, true)
	s := NewMSBFSScratch(c.N())
	srcs := []int32{5, 5, 17}
	ecc := make([]int32, len(srcs))
	sum := make([]int64, len(srcs))
	c.MSBFSInto(srcs, s, ecc, sum, nil)
	dist := make([]int32, c.N())
	queue := make([]int32, 0, c.N())
	for i, src := range srcs {
		wantEcc, wantSum := c.BFSInto(int(src), dist, queue)
		if ecc[i] != wantEcc || sum[i] != wantSum {
			t.Fatalf("lane %d (src %d): got ecc=%d sum=%d, want ecc=%d sum=%d",
				i, src, ecc[i], sum[i], wantEcc, wantSum)
		}
	}
}

// TestMSBFSScratchReuse reuses one scratch across graphs of different
// sizes, the serving-pool pattern.
func TestMSBFSScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := NewMSBFSScratch(8)
	for _, n := range []int{8, 300, 12} {
		c := randomCSR(t, r, n, true)
		ecc := make([]int32, 1)
		sum := make([]int64, 1)
		c.MSBFSInto([]int32{0}, s, ecc, sum, nil)
		dist := make([]int32, n)
		wantEcc, wantSum := c.BFSInto(0, dist, make([]int32, 0, n))
		if ecc[0] != wantEcc || sum[0] != wantSum {
			t.Fatalf("n=%d: got ecc=%d sum=%d, want ecc=%d sum=%d", n, ecc[0], sum[0], wantEcc, wantSum)
		}
	}
}

// TestBFSGenericMatchesCSR pins the satellite fix: the interface fallback
// must report disconnected components exactly like the CSR fast path.
func TestBFSGenericMatchesCSR(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, connected := range []bool{true, false} {
		c := randomCSR(t, r, 40, connected)
		n := c.N()
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		gdist := make([]int32, n)
		for src := 0; src < n; src++ {
			wantEcc, wantSum := c.BFSInto(src, dist, queue)
			gotEcc, gotSum, _ := BFSGenericInto(Topology(c), src, gdist, queue, nil)
			if gotEcc != wantEcc || gotSum != wantSum {
				t.Fatalf("src %d: generic ecc=%d sum=%d, CSR ecc=%d sum=%d",
					src, gotEcc, gotSum, wantEcc, wantSum)
			}
			for v := range gdist {
				if gdist[v] != dist[v] {
					t.Fatalf("src %d: generic dist[%d]=%d, CSR %d", src, v, gdist[v], dist[v])
				}
			}
		}
	}
}
