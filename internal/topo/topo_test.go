package topo

import (
	"testing"
)

// ring returns a CSR cycle on n vertices, emitting every edge from both
// endpoints to exercise the duplicate collapse.
func ring(t *testing.T, n int) *CSR {
	t.Helper()
	c, err := Build(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			edge(v, (v+1)%n)
			edge(v, (v-1+n)%n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildSortsDedupsAndDropsLoops(t *testing.T) {
	c, err := Build(4, func(edge func(u, v int)) {
		edge(2, 1)
		edge(1, 2) // duplicate from the other endpoint
		edge(1, 2) // plain duplicate
		edge(0, 3)
		edge(3, 3) // self-loop: dropped
		edge(0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.Arcs() != 6 {
		t.Fatalf("N=%d Arcs=%d, want 4, 6", c.N(), c.Arcs())
	}
	wantRows := [][]int32{{1, 3}, {0, 2}, {1}, {0}}
	for v, want := range wantRows {
		row := c.Row(v)
		if len(row) != len(want) {
			t.Fatalf("row %d = %v, want %v", v, row, want)
		}
		for i := range want {
			if row[i] != want[i] {
				t.Fatalf("row %d = %v, want %v", v, row, want)
			}
		}
	}
	if !c.HasArc(0, 3) || c.HasArc(0, 2) || c.HasArc(3, 3) {
		t.Error("HasArc wrong")
	}
	buf := c.Neighbors(1, nil)
	if len(buf) != 2 || buf[0] != 0 || buf[1] != 2 {
		t.Errorf("Neighbors(1) = %v", buf)
	}
}

func TestBuildArcsDirected(t *testing.T) {
	c, err := BuildArcs(3, func(arc func(u, v int)) {
		arc(0, 1)
		arc(1, 2)
		arc(2, 0)
		arc(0, 1) // duplicate
		arc(1, 1) // self-arc: dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Arcs() != 3 {
		t.Fatalf("Arcs = %d, want 3", c.Arcs())
	}
	if !c.HasArc(0, 1) || c.HasArc(1, 0) {
		t.Error("directed arcs wrong")
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range endpoint should panic")
		}
	}()
	_, _ = Build(2, func(edge func(u, v int)) { edge(0, 5) })
}

func TestBuildRejectsUnstableStream(t *testing.T) {
	calls := 0
	defer func() {
		if recover() == nil {
			t.Error("a stream emitting extra edges on the fill pass should panic")
		}
	}()
	_, _ = Build(3, func(edge func(u, v int)) {
		calls++
		edge(0, 1)
		if calls == 2 {
			edge(1, 2)
		}
	})
}

func TestBFSOnRing(t *testing.T) {
	c := ring(t, 8)
	dist := BFS(c, 0)
	want := []int32{0, 1, 2, 3, 4, 3, 2, 1}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
	ecc, sum := c.BFSInto(0, make([]int32, 8), make([]int32, 0, 8))
	if ecc != 4 || sum != 16 {
		t.Errorf("BFSInto: ecc=%d sum=%d, want 4, 16", ecc, sum)
	}
}

func TestBFSDisconnected(t *testing.T) {
	c, err := Build(4, func(edge func(u, v int)) { edge(0, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if ecc, _ := c.BFSInto(0, make([]int32, 4), nil); ecc != -1 {
		t.Errorf("ecc = %d on a disconnected graph, want -1", ecc)
	}
}

// sliceTopo is a non-CSR Topology, exercising BFS's interface path.
type sliceTopo [][]int32

func (s sliceTopo) N() int           { return len(s) }
func (s sliceTopo) Degree(v int) int { return len(s[v]) }
func (s sliceTopo) Neighbors(v int, buf []int32) []int32 {
	return append(buf[:0], s[v]...)
}

func TestBFSInterfacePathMatchesCSR(t *testing.T) {
	c := ring(t, 6)
	var st sliceTopo
	for v := 0; v < c.N(); v++ {
		st = append(st, c.Neighbors(v, nil))
	}
	for src := 0; src < 6; src++ {
		a, b := BFS(c, src), BFS(st, src)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("src %d: CSR and interface BFS disagree at %d: %d vs %d", src, v, a[v], b[v])
			}
		}
	}
}

func TestEqual(t *testing.T) {
	a, b := ring(t, 5), ring(t, 5)
	if !Equal(a, b) {
		t.Error("identical rings should be Equal")
	}
	c := ring(t, 6)
	if Equal(a, c) {
		t.Error("different rings should not be Equal")
	}
}

func TestPortMapRoundTrip(t *testing.T) {
	pm, err := NewUniformPortMap(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pm.N() != 3 || pm.Arity(1) != 2 {
		t.Fatalf("N=%d Arity=%d", pm.N(), pm.Arity(1))
	}
	if pm.Port(1, 0) != -1 {
		t.Error("fresh ports should be absent")
	}
	pm.SetPort(1, 0, 2)
	pm.SetCap(1, 0, 0.5)
	if pm.Port(1, 0) != 2 || pm.Cap(1, 0) != 0.5 {
		t.Error("Set/Get mismatch")
	}
	if row := pm.PortRow(1); len(row) != 2 || row[0] != 2 || row[1] != -1 {
		t.Errorf("PortRow = %v", row)
	}
}

func TestPortMapFromRows(t *testing.T) {
	pm := PortMapFromRows([][]int32{{1, 2}, {}, {0}}, [][]float64{{1, 2}, {}, {3}})
	if pm.N() != 3 || pm.Arity(0) != 2 || pm.Arity(1) != 0 || pm.Arity(2) != 1 {
		t.Fatal("shape mismatch")
	}
	if pm.Port(0, 1) != 2 || pm.Cap(2, 0) != 3 {
		t.Error("values mismatch")
	}
}

func TestFromTopology(t *testing.T) {
	c := ring(t, 4)
	pm := FromTopology(c, 2.5)
	for v := 0; v < 4; v++ {
		if pm.Arity(v) != c.Degree(v) {
			t.Fatalf("node %d arity %d, degree %d", v, pm.Arity(v), c.Degree(v))
		}
		row := c.Row(v)
		for p := range row {
			if pm.Port(v, p) != row[p] || pm.Cap(v, p) != 2.5 {
				t.Fatalf("node %d port %d mismatch", v, p)
			}
		}
	}
}

func TestGuards(t *testing.T) {
	if err := CheckVertexCount(-1); err == nil {
		t.Error("negative vertex count should error")
	}
	if _, err := Build(-1, func(func(u, v int)) {}); err == nil {
		t.Error("Build with bad n should error")
	}
	if _, err := NewUniformPortMap(1<<20, 1<<13); err == nil {
		t.Error("oversized port map should error")
	}
}

func TestRouteHelpers(t *testing.T) {
	if HammingDistance(0b1010, 0b0110) != 2 {
		t.Error("HammingDistance wrong")
	}
	if HypercubeNextDim(5, 5) != -1 {
		t.Error("at destination should be -1")
	}
	if HypercubeNextDim(0b100, 0b001) != 0 {
		t.Error("lowest differing bit first")
	}
	// 5-ary ring: from digit 0 to 3 the short way is backward.
	dim, dir := TorusNextHop(5, 1, 0, 3)
	if dim != 0 || dir != -1 {
		t.Errorf("TorusNextHop = (%d,%d), want (0,-1)", dim, dir)
	}
	if TorusNeighbor(5, 0, 0, -1) != 4 {
		t.Error("TorusNeighbor wrap wrong")
	}
	// Walking next hops always reaches the destination in the torus
	// distance bound.
	k, dims := 4, 2
	n := k * k
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			cur := src
			for steps := 0; cur != dst; steps++ {
				if steps > dims*k/2 {
					t.Fatalf("route %d->%d too long", src, dst)
				}
				d, dir := TorusNextHop(k, dims, cur, dst)
				cur = TorusNeighbor(k, cur, d, dir)
			}
		}
	}
}
