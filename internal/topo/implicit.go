package topo

// Implicit is the codec-backed adjacency implementation: a Source (and
// Topology) whose neighbor rows are computed on demand from a rank/unrank
// codec instead of being stored in an arena.  Its memory footprint is the
// codec struct — independent of the vertex count — which is what lets the
// serving layer keep huge families resident at ~zero cache cost.
//
// Every row goes through the same canonicalization topo.Build applies to
// the materialized stream (sort ascending, collapse duplicates, drop
// self-loops), so for a correct codec Implicit rows are bit-identical to
// the CSR rows of the same family.
type Implicit struct {
	codec Codec
}

// NewImplicit wraps a codec as an adjacency source.
func NewImplicit(c Codec) *Implicit {
	if c == nil {
		panic("topo.NewImplicit: nil codec")
	}
	return &Implicit{codec: c}
}

// Codec returns the underlying codec.
func (im *Implicit) Codec() Codec { return im.codec }

// CodecName returns the codec's identifying name.
func (im *Implicit) CodecName() string { return im.codec.Name() }

// N implements Source and Topology.
func (im *Implicit) N() int { return im.codec.N() }

// DegreeBound implements Source.
func (im *Implicit) DegreeBound() int { return im.codec.DegreeBound() }

// VertexTransitive implements Symmetric, delegating to the codec.
func (im *Implicit) VertexTransitive() bool { return im.codec.VertexTransitive() }

// NeighborsInto implements Source: the codec's raw neighbors of v,
// canonicalized into buf.
func (im *Implicit) NeighborsInto(v int, buf []int32) []int32 {
	if v < 0 || v >= im.codec.N() {
		panic("topo.Implicit: vertex out of range")
	}
	buf = im.codec.AppendNeighbors(v, buf[:0])
	//lint:ignore indextrunc v < N() <= MaxVertices (math.MaxInt32)
	return CanonicalizeRow(buf, int32(v))
}

// Neighbors implements Topology (same contract as NeighborsInto).
func (im *Implicit) Neighbors(v int, buf []int32) []int32 {
	return im.NeighborsInto(v, buf)
}

// Degree implements Topology by generating and canonicalizing the row.
// It allocates a small scratch buffer per call; degree-heavy loops should
// use NeighborsInto with a reused buffer and take len() instead.
func (im *Implicit) Degree(v int) int {
	buf := make([]int32, 0, im.codec.DegreeBound())
	return len(im.NeighborsInto(v, buf))
}

// ByteSize reports the resident footprint of the implicit representation:
// a small constant for the codec struct, by construction independent of N.
func (im *Implicit) ByteSize() int64 { return 128 }

// CanonicalizeRow sorts row ascending, collapses duplicates, and drops
// the value self, in place, returning the shortened slice — the exact
// per-row normalization topo.Build applies to a materialized edge stream.
// Rows are small (a vertex degree), so insertion sort beats sort.Slice's
// interface overhead on the neighbor-generation hot path.
func CanonicalizeRow(row []int32, self int32) []int32 {
	//lint:ignore ctxflow normalizes one neighbor row, at most DegreeBound entries — far below cancellation granularity
	for i := 1; i < len(row); i++ {
		x := row[i]
		j := i - 1
		for j >= 0 && row[j] > x {
			row[j+1] = row[j]
			j--
		}
		row[j+1] = x
	}
	w := 0
	for i, x := range row {
		if x == self || (i > 0 && x == row[i-1]) {
			continue
		}
		row[w] = x
		w++
	}
	return row[:w]
}
