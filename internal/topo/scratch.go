package topo

import "sync"

// Scratch bundles the per-worker traversal buffers every BFS consumer
// needs — a distance vector, a queue, and (lazily) an MSBFS word-per-
// vertex scratch — behind one sync.Pool, so serving-layer request paths
// (/v1/route reconstruction, /v1/metrics builds) and the parallel metric
// workers allocate O(1) at steady state instead of O(N) per request.
//
// A Scratch is checked out with GetScratch(n) and must be returned with
// PutScratch when the caller is done; the buffers grow monotonically and
// are reused verbatim for any topology at most as large.
type Scratch struct {
	// Dist is a length-n distance vector (contents are garbage until a
	// BFS overwrites them).
	Dist []int32
	// Queue is an empty queue with capacity >= n, making BFSInto
	// allocation-free.
	Queue []int32

	// Nbuf is a reusable neighbor-row buffer (see NeighborBuf).  Callers
	// that grow it must store the grown slice back before PutScratch so
	// the capacity is retained across checkouts.
	Nbuf []int32

	ms *MSBFSScratch
}

var scratchPool sync.Pool

// GetScratch checks a scratch out of the pool, sized for n vertices.
func GetScratch(n int) *Scratch {
	s, _ := scratchPool.Get().(*Scratch)
	if s == nil {
		s = &Scratch{}
	}
	if cap(s.Dist) < n {
		s.Dist = make([]int32, n)
	}
	s.Dist = s.Dist[:n]
	if cap(s.Queue) < n {
		s.Queue = make([]int32, 0, n)
	}
	s.Queue = s.Queue[:0]
	return s
}

// PutScratch returns a scratch to the pool.  The caller must not retain
// any view into its buffers.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// NeighborBuf returns an empty neighbor-row buffer with capacity >=
// degreeBound, reusing the pooled slice when it is already big enough —
// the per-request NeighborsInto buffer on serving paths without
// allocating per request.
func (s *Scratch) NeighborBuf(degreeBound int) []int32 {
	if cap(s.Nbuf) < degreeBound {
		s.Nbuf = make([]int32, 0, degreeBound)
	}
	return s.Nbuf[:0]
}

// MS returns the scratch's MSBFS state sized for n vertices, allocating
// it on first use so scalar-only callers never pay the 24 bytes/vertex.
func (s *Scratch) MS(n int) *MSBFSScratch {
	if s.ms == nil {
		s.ms = NewMSBFSScratch(n)
	} else {
		s.ms.ensure(n)
	}
	return s.ms
}
