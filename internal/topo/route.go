package topo

import "math/bits"

// This file holds the shared dimension-order routing arithmetic.  The
// hypercube and torus next-hop logic used to live twice — once as graph
// helpers in internal/topology and once as simulator routers in
// internal/netsim — and the two copies could drift apart; both layers now
// delegate here.

// HammingDistance returns the number of differing address bits between a
// and b: the hypercube distance.
func HammingDistance(a, b int) int {
	return bits.OnesCount(uint(a ^ b))
}

// HypercubeNextDim returns the dimension a dimension-order hypercube route
// corrects next (the lowest differing bit of cur and dst), or -1 when
// cur == dst.  On a hypercube whose port b flips bit b this is also the
// forwarding port.
func HypercubeNextDim(cur, dst int) int {
	diff := cur ^ dst
	if diff == 0 {
		return -1
	}
	return bits.TrailingZeros(uint(diff))
}

// TorusNextHop returns the (dimension, direction) of the next hop on a
// dimension-order minimal route over a k-ary cube with dims dimensions
// (shortest way around each ring, ties broken toward +1).  dir is +1 or
// -1; at the destination it returns (-1, 0).
func TorusNextHop(k, dims, cur, dst int) (dim, dir int) {
	weight := 1
	for d := 0; d < dims; d++ {
		cd := (cur / weight) % k
		dd := (dst / weight) % k
		if cd != dd {
			fwd := ((dd - cd) + k) % k
			if fwd <= k-fwd {
				return d, 1
			}
			return d, -1
		}
		weight *= k
	}
	return -1, 0
}

// TorusNeighbor returns the node reached from cur by moving dir (+1 or -1)
// along dimension dim of a k-ary cube.
func TorusNeighbor(k, cur, dim, dir int) int {
	weight := 1
	for d := 0; d < dim; d++ {
		weight *= k
	}
	digit := (cur / weight) % k
	return cur - digit*weight + ((digit+dir+k)%k)*weight
}
