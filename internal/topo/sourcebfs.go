package topo

//lint:file-ignore ctxflow the Source kernels process one traversal (or one 64-source batch) per call; the metric drivers poll ctx between calls, bounding cancellation latency to one kernel invocation

import "math/bits"

// This file generalizes the traversal kernels over the Source
// abstraction, so the same code drives a materialized CSR arena and a
// codec-backed Implicit.  Each kernel type-switches to the tuned CSR
// fast path when the source is an arena (zero-copy rows, no interface
// call per vertex) and otherwise walks NeighborsInto with a reused
// neighbor buffer.  Contracts are identical to the CSR kernels, so a
// correct codec yields bit-identical eccentricities and distance sums on
// either path.

// BFSSourceInto runs a scalar BFS from src over any Source, with the
// BFSInto contract: dist (length s.N(), fully overwritten; -1 marks
// unreachable), queue is caller scratch, and ecc is -1 when some vertex
// is unreachable.  nbuf is neighbor scratch (cap >= s.DegreeBound()
// avoids reallocation); the possibly grown buffer is returned for reuse.
func BFSSourceInto(s Source, src int, dist, queue, nbuf []int32) (ecc int32, sum int64, _ []int32) {
	if c, ok := s.(*CSR); ok {
		ecc, sum = c.BFSInto(src, dist, queue)
		return ecc, sum, nbuf
	}
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	//lint:ignore indextrunc src < s.N() <= MaxVertices (math.MaxInt32)
	queue = append(queue, int32(src))
	visited := 1
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		sum += int64(du)
		nbuf = s.NeighborsInto(int(u), nbuf)
		for _, v := range nbuf {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
				visited++
			}
		}
	}
	if visited != s.N() {
		return -1, sum, nbuf
	}
	return ecc, sum, nbuf
}

// MSBFSSourceInto is MSBFSInto over any symmetric Source: up to 64 BFS
// traversals advance together, one uint64 visited/frontier word per
// vertex.  The contract matches MSBFSInto exactly (per-source ecc/sum,
// ecc[i] = -1 on disconnection, optional flat strided dist).  Like the
// CSR kernel it requires symmetric adjacency: the bottom-up pass reads
// NeighborsInto(v) as the in-neighbors of v.  nbuf is neighbor scratch,
// returned possibly grown.
func MSBFSSourceInto(s Source, sources []int32, sc *MSBFSScratch, ecc []int32, sum []int64, dist []int32, nbuf []int32) []int32 {
	if c, ok := s.(*CSR); ok {
		c.MSBFSInto(sources, sc, ecc, sum, dist)
		return nbuf
	}
	n := s.N()
	ns := len(sources)
	if ns == 0 || ns > msbfsBatch {
		panic("topo: MSBFSSourceInto needs 1..64 sources")
	}
	if len(ecc) < ns || len(sum) < ns {
		panic("topo: MSBFSSourceInto ecc/sum shorter than sources")
	}
	if dist != nil && len(dist) < ns*n {
		panic("topo: MSBFSSourceInto dist shorter than len(sources)*N")
	}
	sc.ensure(n)
	visited, frontier, next := sc.visited, sc.frontier, sc.next
	for i := range visited {
		visited[i] = 0
		frontier[i] = 0
		next[i] = 0
	}
	if dist != nil {
		for i := range dist[:ns*n] {
			dist[i] = -1
		}
	}
	full := ^uint64(0) >> (msbfsBatch - ns)
	var reached [msbfsBatch]int32
	sc.cur = sc.cur[:0]
	for i, src := range sources {
		if frontier[src] == 0 {
			sc.cur = append(sc.cur, src)
		}
		bit := uint64(1) << i
		frontier[src] |= bit
		visited[src] |= bit
		ecc[i], sum[i] = 0, 0
		reached[i] = 1
		if dist != nil {
			dist[i*n+int(src)] = 0
		}
	}
	var cnt [msbfsBatch]int32
	for level := int32(1); len(sc.cur) > 0; level++ {
		sc.touched = sc.touched[:0]
		if len(sc.cur) > n/msbfsDenseCut {
			// Bottom-up: every vertex some source has not reached gathers
			// the frontier bits of its (symmetric) neighbors.
			for v := 0; v < n; v++ {
				if visited[v] == full {
					continue
				}
				var acc uint64
				nbuf = s.NeighborsInto(v, nbuf)
				for _, u := range nbuf {
					acc |= frontier[u]
				}
				if acc&^visited[v] != 0 {
					next[v] = acc
					//lint:ignore indextrunc v < n <= MaxVertices (math.MaxInt32)
					sc.touched = append(sc.touched, int32(v))
				}
			}
		} else {
			// Top-down: frontier vertices push their bits along their rows.
			for _, u := range sc.cur {
				f := frontier[u]
				nbuf = s.NeighborsInto(int(u), nbuf)
				for _, v := range nbuf {
					if f&^visited[v] != 0 {
						if next[v] == 0 {
							sc.touched = append(sc.touched, v)
						}
						next[v] |= f
					}
				}
			}
		}
		for _, u := range sc.cur {
			frontier[u] = 0
		}
		sc.cur = sc.cur[:0]
		for i := 0; i < ns; i++ {
			cnt[i] = 0
		}
		for _, v := range sc.touched {
			newBits := next[v] &^ visited[v]
			next[v] = 0
			if newBits == 0 {
				continue
			}
			visited[v] |= newBits
			frontier[v] = newBits
			sc.cur = append(sc.cur, v)
			for b := newBits; b != 0; b &= b - 1 {
				i := bits.TrailingZeros64(b)
				cnt[i]++
				if dist != nil {
					dist[i*n+int(v)] = level
				}
			}
		}
		for i := 0; i < ns; i++ {
			if cnt[i] > 0 {
				ecc[i] = level
				sum[i] += int64(level) * int64(cnt[i])
				reached[i] += cnt[i]
			}
		}
	}
	//lint:ignore indextrunc n <= MaxVertices (math.MaxInt32) by construction
	nn := int32(n)
	for i := 0; i < ns; i++ {
		if reached[i] != nn {
			ecc[i] = -1
		}
	}
	return nbuf
}

// MSBFSMaskedSourceInto is the vertex-masked variant of MSBFSSourceInto:
// up to 64 BFS traversals advance together over a symmetric Source,
// skipping vertices whose bit is set in vdead (nil means all alive).
// The contract matches MSBFSMaskedInto with a nil arc mask: per source i
// it writes ecc[i] (eccentricity within the source's component), sum[i]
// (sum of distances to reached vertices), and reached[i] (vertices
// reached, including the source); all sources must be alive.  Arc-level
// masks need stable arena arc indices and therefore remain CSR-only
// (CSR.MSBFSMaskedInto).  nbuf is neighbor scratch, returned possibly
// grown.
func MSBFSMaskedSourceInto(s Source, sources []int32, sc *MSBFSScratch, vdead []uint64, ecc []int32, sum []int64, reached []int32, nbuf []int32) []int32 {
	if c, ok := s.(*CSR); ok {
		c.MSBFSMaskedInto(sources, sc, vdead, nil, ecc, sum, reached)
		return nbuf
	}
	n := s.N()
	ns := len(sources)
	if ns == 0 || ns > msbfsBatch {
		panic("topo: MSBFSMaskedSourceInto needs 1..64 sources")
	}
	if len(ecc) < ns || len(sum) < ns || len(reached) < ns {
		panic("topo: MSBFSMaskedSourceInto ecc/sum/reached shorter than sources")
	}
	sc.ensure(n)
	visited, frontier, next := sc.visited, sc.frontier, sc.next
	for i := range visited {
		visited[i] = 0
		frontier[i] = 0
		next[i] = 0
	}
	full := ^uint64(0) >> (msbfsBatch - ns)
	sc.cur = sc.cur[:0]
	for i, src := range sources {
		if Bit(vdead, int(src)) {
			panic("topo: MSBFSMaskedSourceInto source is dead")
		}
		if frontier[src] == 0 {
			sc.cur = append(sc.cur, src)
		}
		bit := uint64(1) << i
		frontier[src] |= bit
		visited[src] |= bit
		ecc[i], sum[i] = 0, 0
		reached[i] = 1
	}
	var cnt [msbfsBatch]int32
	for level := int32(1); len(sc.cur) > 0; level++ {
		sc.touched = sc.touched[:0]
		if len(sc.cur) > n/msbfsDenseCut {
			// Bottom-up: every alive, not-fully-visited vertex gathers the
			// frontier bits of its neighbors.  Dead neighbors contribute
			// nothing — their frontier word is always 0 — so only the
			// vertex's own liveness needs checking.
			for v := 0; v < n; v++ {
				if visited[v] == full || Bit(vdead, v) {
					continue
				}
				var acc uint64
				nbuf = s.NeighborsInto(v, nbuf)
				for _, u := range nbuf {
					acc |= frontier[u]
				}
				if acc&^visited[v] != 0 {
					next[v] = acc
					//lint:ignore indextrunc v < n <= MaxVertices (math.MaxInt32)
					sc.touched = append(sc.touched, int32(v))
				}
			}
		} else {
			// Top-down: frontier vertices push their bits to alive targets.
			for _, u := range sc.cur {
				f := frontier[u]
				nbuf = s.NeighborsInto(int(u), nbuf)
				for _, v := range nbuf {
					if f&^visited[v] == 0 || Bit(vdead, int(v)) {
						continue
					}
					if next[v] == 0 {
						sc.touched = append(sc.touched, v)
					}
					next[v] |= f
				}
			}
		}
		for _, u := range sc.cur {
			frontier[u] = 0
		}
		sc.cur = sc.cur[:0]
		for i := 0; i < ns; i++ {
			cnt[i] = 0
		}
		for _, v := range sc.touched {
			newBits := next[v] &^ visited[v]
			next[v] = 0
			if newBits == 0 {
				continue
			}
			visited[v] |= newBits
			frontier[v] = newBits
			sc.cur = append(sc.cur, v)
			for b := newBits; b != 0; b &= b - 1 {
				cnt[bits.TrailingZeros64(b)]++
			}
		}
		for i := 0; i < ns; i++ {
			if cnt[i] > 0 {
				ecc[i] = level
				sum[i] += int64(level) * int64(cnt[i])
				reached[i] += cnt[i]
			}
		}
	}
	return nbuf
}

// BFSMaskedSourceInto is the vertex-masked scalar BFS over any Source:
// vertices whose bit is set in vdead are hidden from the traversal, with
// the BFSMaskedInto census contract (ecc within src's component, sum over
// reached vertices, reached count including src).  Arc-level masks need
// stable arc identifiers and therefore remain CSR-only
// (CSR.BFSMaskedInto); a nil vdead makes this identical to the unmasked
// kernel's visit order.  src must be alive.
func BFSMaskedSourceInto(s Source, src int, vdead []uint64, dist, queue, nbuf []int32) (ecc int32, sum int64, reached int32, _ []int32) {
	if c, ok := s.(*CSR); ok {
		ecc, sum, reached = c.BFSMaskedInto(src, vdead, nil, dist, queue)
		return ecc, sum, reached, nbuf
	}
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	//lint:ignore indextrunc src < s.N() <= MaxVertices (math.MaxInt32)
	queue = append(queue, int32(src))
	reached = 1
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		sum += int64(du)
		nbuf = s.NeighborsInto(int(u), nbuf)
		for _, v := range nbuf {
			if dist[v] >= 0 || Bit(vdead, int(v)) {
				continue
			}
			dist[v] = du + 1
			queue = append(queue, v)
			reached++
		}
	}
	return ecc, sum, reached, nbuf
}
