package topo

import (
	"math/rand"
	"testing"
)

// randomMasks builds random vertex and arc masks over c.  Arc masks are
// always symmetric (both directions of an edge die together), matching the
// contract of the fault layer.
func randomMasks(r *rand.Rand, c *CSR) (vdead, adead []uint64) {
	n := c.N()
	vdead = NewBitset(n)
	adead = NewBitset(c.Arcs())
	for v := 0; v < n; v++ {
		if r.Intn(8) == 0 {
			SetBit(vdead, v)
		}
	}
	for u := 0; u < n; u++ {
		first := c.RowStart(u)
		for j, v := range c.Row(u) {
			if int(v) > u && r.Intn(8) == 0 {
				SetBit(adead, first+j)
				if back := c.ArcIndex(int(v), u); back >= 0 {
					SetBit(adead, back)
				}
			}
		}
	}
	return vdead, adead
}

// TestMaskedNilMasksMatchUnmasked: with nil masks the masked scalar BFS
// must reproduce the plain kernel bit for bit.
func TestMaskedNilMasksMatchUnmasked(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 16 + r.Intn(200)
		c := randomCSR(t, r, n, trial%2 == 0)
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		dist2 := make([]int32, n)
		queue2 := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			ecc, sum := c.BFSInto(src, dist, queue)
			mecc, msum, reached := c.BFSMaskedInto(src, nil, nil, dist2, queue2)
			// The unmasked kernel encodes disconnection as ecc = -1; the
			// masked kernel reports the reached count instead.
			if ecc >= 0 {
				if mecc != ecc || msum != sum || int(reached) != n {
					t.Fatalf("trial %d src %d: masked (%d,%d,%d) vs unmasked (%d,%d)", trial, src, mecc, msum, reached, ecc, sum)
				}
			} else if int(reached) == n {
				t.Fatalf("trial %d src %d: unmasked says disconnected, masked reached all %d", trial, src, n)
			}
			for v := 0; v < n; v++ {
				if ecc >= 0 && dist[v] != dist2[v] {
					t.Fatalf("trial %d src %d: dist[%d] = %d vs %d", trial, src, v, dist[v], dist2[v])
				}
			}
		}
	}
}

// TestMaskedMSBFSMatchesMaskedScalar: the bit-parallel masked kernel must
// agree with the masked scalar BFS on ecc, distance sum, and reached count
// for every source, under random vertex+arc masks.
func TestMaskedMSBFSMatchesMaskedScalar(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 16 + r.Intn(200)
		c := randomCSR(t, r, n, trial%2 == 0)
		vdead, adead := randomMasks(r, c)
		var sources []int32
		for v := 0; v < n && len(sources) < msbfsBatch; v++ {
			if !Bit(vdead, v) {
				sources = append(sources, int32(v))
			}
		}
		if len(sources) == 0 {
			continue
		}
		scratch := NewMSBFSScratch(n)
		ecc := make([]int32, len(sources))
		sum := make([]int64, len(sources))
		reached := make([]int32, len(sources))
		c.MSBFSMaskedInto(sources, scratch, vdead, adead, ecc, sum, reached)
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for i, src := range sources {
			secc, ssum, sreached := c.BFSMaskedInto(int(src), vdead, adead, dist, queue)
			if ecc[i] != secc || sum[i] != ssum || reached[i] != sreached {
				t.Fatalf("trial %d src %d: msbfs (%d,%d,%d) vs scalar (%d,%d,%d)",
					trial, src, ecc[i], sum[i], reached[i], secc, ssum, sreached)
			}
		}
	}
}

// TestMaskedDeadSourcePanics: sweeping from a dead source is a programming
// error the kernel refuses.
func TestMaskedDeadSourcePanics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := randomCSR(t, r, 32, true)
	vdead := NewBitset(32)
	SetBit(vdead, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dead source")
		}
	}()
	scratch := NewMSBFSScratch(32)
	c.MSBFSMaskedInto([]int32{3}, scratch, vdead, nil, make([]int32, 1), make([]int64, 1), make([]int32, 1))
}

// TestArcAccessors pins the ArcIndex/ArcSource/ArcTarget/RowStart
// round-trip the fault layer's link sampling depends on.
func TestArcAccessors(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := randomCSR(t, r, 64, true)
	for u := 0; u < c.N(); u++ {
		first := c.RowStart(u)
		for j, v := range c.Row(u) {
			i := first + j
			if got := c.ArcIndex(u, int(v)); got != i {
				t.Fatalf("ArcIndex(%d,%d) = %d, want %d", u, v, got, i)
			}
			if got := c.ArcSource(i); got != u {
				t.Fatalf("ArcSource(%d) = %d, want %d", i, got, u)
			}
			if got := c.ArcTarget(i); got != v {
				t.Fatalf("ArcTarget(%d) = %d, want %d", i, got, v)
			}
		}
		if c.ArcIndex(u, u) >= 0 == !c.HasArc(u, u) {
			t.Fatalf("ArcIndex/HasArc disagree at self-loop %d", u)
		}
	}
}
