package topo

import "fmt"

// This file holds the rank/unrank vertex codecs of the implicit
// adjacency representation: each baseline family's vertex id is a
// mixed-radix numeral (bit vector for hypercubes, base-k digit vector for
// tori, per-dimension digits for generalized hypercubes, (address, cycle
// position) pairs for CCC and wrapped butterflies), so a vertex's
// neighbors are pure arithmetic on its rank — no arena, no per-vertex
// storage.  Every codec reproduces the exact edge stream of the
// corresponding materialized builder in internal/topology; the Implicit
// wrapper then canonicalizes rows (sort, dedup, drop self-loops) so the
// two representations are bit-identical per row.

// Codec generates the raw neighbor multiset of a vertex from its rank.
// AppendNeighbors may emit duplicates and self-loops in any order —
// exactly what the materialized builders stream into topo.Build — and
// the Implicit wrapper applies the same canonicalization Build does.
// Implementations must be immutable after construction and safe for
// concurrent callers.
type Codec interface {
	// Name identifies the codec, e.g. "hypercube(20)".
	Name() string
	// N returns the vertex count.
	N() int
	// DegreeBound returns an upper bound on the canonical degree.
	DegreeBound() int
	// AppendNeighbors appends the raw neighbors of v to buf.
	AppendNeighbors(v int, buf []int32) []int32
	// VertexTransitive reports whether the family is a proven
	// vertex-transitive construction.
	VertexTransitive() bool
}

// MixedRadix is a little-endian mixed-radix numeral system: rank r has
// digit d_i = (r / w_i) mod m_i with weight w_i = m_0*...*m_{i-1}.  It is
// the shared addressing scheme of the torus and GHC codecs and of the
// super-IPG group addressing, exposed with checked conversions so fuzzed
// or malformed ranks error instead of panicking.
type MixedRadix struct {
	radices []int
	n       int
}

// NewMixedRadix builds the numeral system with the given radices (least
// significant first).  Every radix must be >= 2 and the product must stay
// within MaxVertices.
func NewMixedRadix(radices []int) (*MixedRadix, error) {
	if len(radices) == 0 {
		return nil, fmt.Errorf("topo: mixed radix needs at least one digit")
	}
	n := 1
	for _, m := range radices {
		if m < 2 {
			return nil, fmt.Errorf("topo: mixed radix %d < 2", m)
		}
		if n > MaxVertices/m {
			return nil, fmt.Errorf("topo: mixed-radix product exceeds MaxVertices=%d", MaxVertices)
		}
		n *= m
	}
	return &MixedRadix{radices: append([]int(nil), radices...), n: n}, nil
}

// N returns the number of representable ranks (the radix product).
func (mr *MixedRadix) N() int { return mr.n }

// Digits returns the number of digit positions.
func (mr *MixedRadix) Digits() int { return len(mr.radices) }

// Radix returns the radix of digit position i.
func (mr *MixedRadix) Radix(i int) int { return mr.radices[i] }

// UnrankInto decomposes rank r into its digit vector, appended to
// dst[:0].  It errors on ranks outside [0, N).
func (mr *MixedRadix) UnrankInto(r int, dst []int) ([]int, error) {
	if r < 0 || r >= mr.n {
		return dst, fmt.Errorf("topo: rank %d outside [0,%d)", r, mr.n)
	}
	dst = dst[:0]
	for _, m := range mr.radices {
		dst = append(dst, r%m)
		r /= m
	}
	return dst, nil
}

// Rank recomposes a digit vector into its rank, erroring on out-of-range
// digits or a wrong digit count.
func (mr *MixedRadix) Rank(digits []int) (int, error) {
	if len(digits) != len(mr.radices) {
		return 0, fmt.Errorf("topo: %d digits, want %d", len(digits), len(mr.radices))
	}
	r := 0
	weight := 1
	for i, d := range digits {
		m := mr.radices[i]
		if d < 0 || d >= m {
			return 0, fmt.Errorf("topo: digit %d at position %d outside [0,%d)", d, i, m)
		}
		r += d * weight
		weight *= m
	}
	return r, nil
}

// HypercubeCodec is the binary d-cube: rank = address, neighbors flip one
// bit.  Unlike the materialized builder it has no d <= 24 cap — any d with
// 2^d <= MaxVertices works.
type HypercubeCodec struct {
	D int
}

// NewHypercubeCodec validates d and returns the codec.
func NewHypercubeCodec(d int) (*HypercubeCodec, error) {
	if d < 1 || d > 30 {
		return nil, fmt.Errorf("topo: hypercube codec dimension %d outside [1,30]", d)
	}
	return &HypercubeCodec{D: d}, nil
}

func (h *HypercubeCodec) Name() string { return fmt.Sprintf("hypercube(%d)", h.D) }

func (h *HypercubeCodec) N() int { return 1 << h.D }

func (h *HypercubeCodec) DegreeBound() int { return h.D }

func (h *HypercubeCodec) VertexTransitive() bool { return true }

func (h *HypercubeCodec) AppendNeighbors(v int, buf []int32) []int32 {
	for b := 0; b < h.D; b++ {
		//lint:ignore indextrunc v < 2^D <= MaxVertices (math.MaxInt32), and the flip stays in range
		buf = append(buf, int32(v^(1<<b)))
	}
	return buf
}

// TorusCodec is the k-ary n-cube: rank = base-k digit vector (dimension 0
// least significant), neighbors step one digit +/-1 mod k.  The +1 step
// matches the materialized edge stream and the -1 step its symmetric
// closure; for k = 2 the two coincide and canonicalization collapses them,
// exactly as Build dedups the materialized pair.
type TorusCodec struct {
	K, Dims int
	n       int
}

// NewTorusCodec validates the shape (k >= 2, dims >= 1, k^dims within
// MaxVertices) and returns the codec.
func NewTorusCodec(k, dims int) (*TorusCodec, error) {
	if k < 2 || dims < 1 {
		return nil, fmt.Errorf("topo: torus codec needs k >= 2, dims >= 1 (got k=%d, dims=%d)", k, dims)
	}
	n := 1
	for i := 0; i < dims; i++ {
		if n > MaxVertices/k {
			return nil, fmt.Errorf("topo: %d-ary %d-cube exceeds MaxVertices=%d", k, dims, MaxVertices)
		}
		n *= k
	}
	return &TorusCodec{K: k, Dims: dims, n: n}, nil
}

func (t *TorusCodec) Name() string { return fmt.Sprintf("torus(%d,%d)", t.K, t.Dims) }

func (t *TorusCodec) N() int { return t.n }

func (t *TorusCodec) DegreeBound() int { return 2 * t.Dims }

func (t *TorusCodec) VertexTransitive() bool { return true }

func (t *TorusCodec) AppendNeighbors(v int, buf []int32) []int32 {
	weight := 1
	for d := 0; d < t.Dims; d++ {
		digit := (v / weight) % t.K
		up := v - digit*weight + ((digit+1)%t.K)*weight
		down := v - digit*weight + ((digit+t.K-1)%t.K)*weight
		//lint:ignore indextrunc both steps stay inside [0, k^dims) <= MaxVertices (math.MaxInt32)
		buf = append(buf, int32(up), int32(down))
		weight *= t.K
	}
	return buf
}

// GHCCodec is the generalized hypercube GHC(m_1, ..., m_n): the Cartesian
// product of complete graphs, rank in mixed radix (dimension 0 least
// significant), neighbors change one digit to any other value.
type GHCCodec struct {
	mr  *MixedRadix
	deg int
}

// NewGHCCodec validates the radices (each >= 2, product within
// MaxVertices) and returns the codec.
func NewGHCCodec(radices ...int) (*GHCCodec, error) {
	mr, err := NewMixedRadix(radices)
	if err != nil {
		return nil, err
	}
	deg := 0
	for _, m := range radices {
		deg += m - 1
	}
	return &GHCCodec{mr: mr, deg: deg}, nil
}

func (g *GHCCodec) Name() string {
	s := "ghc("
	for i := 0; i < g.mr.Digits(); i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", g.mr.Radix(i))
	}
	return s + ")"
}

func (g *GHCCodec) N() int { return g.mr.N() }

func (g *GHCCodec) DegreeBound() int { return g.deg }

func (g *GHCCodec) VertexTransitive() bool { return true }

func (g *GHCCodec) AppendNeighbors(v int, buf []int32) []int32 {
	weight := 1
	for i := 0; i < g.mr.Digits(); i++ {
		m := g.mr.Radix(i)
		digit := (v / weight) % m
		for other := 0; other < m; other++ {
			if other != digit {
				//lint:ignore indextrunc the digit swap stays inside [0, N) <= MaxVertices (math.MaxInt32)
				buf = append(buf, int32(v+(other-digit)*weight))
			}
		}
		weight *= m
	}
	return buf
}

// CCCCodec is the cube-connected cycles CCC(d): rank = x*d + i for cube
// address x and cycle position i; neighbors are the two cycle steps and
// the cube link at position i.  The forward cycle step matches the
// materialized edge stream and the backward step its symmetric closure.
type CCCCodec struct {
	D int
	n int
}

// NewCCCCodec validates d (d >= 3, d*2^d within MaxVertices) and returns
// the codec.
func NewCCCCodec(d int) (*CCCCodec, error) {
	if d < 3 || d > 26 {
		return nil, fmt.Errorf("topo: CCC codec dimension %d outside [3,26]", d)
	}
	n := d * (1 << d)
	if n > MaxVertices {
		return nil, fmt.Errorf("topo: CCC(%d) exceeds MaxVertices=%d", d, MaxVertices)
	}
	return &CCCCodec{D: d, n: n}, nil
}

func (c *CCCCodec) Name() string { return fmt.Sprintf("ccc(%d)", c.D) }

func (c *CCCCodec) N() int { return c.n }

func (c *CCCCodec) DegreeBound() int { return 3 }

func (c *CCCCodec) VertexTransitive() bool { return true }

func (c *CCCCodec) AppendNeighbors(v int, buf []int32) []int32 {
	x, i := v/c.D, v%c.D
	//lint:ignore indextrunc cycle and cube steps stay inside [0, d*2^d) <= MaxVertices (math.MaxInt32)
	buf = append(buf, int32(x*c.D+(i+1)%c.D), int32(x*c.D+(i+c.D-1)%c.D), int32((x^(1<<i))*c.D+i))
	return buf
}

// ButterflyCodec is the wrapped butterfly WBF(d): rank = row*d + level;
// forward edges go to level+1 straight and crossing bit level, backward
// edges (the symmetric closure) to level-1 straight and crossing bit
// level-1.
type ButterflyCodec struct {
	D int
	n int
}

// NewButterflyCodec validates d (d >= 2, d*2^d within MaxVertices) and
// returns the codec.
func NewButterflyCodec(d int) (*ButterflyCodec, error) {
	if d < 2 || d > 26 {
		return nil, fmt.Errorf("topo: butterfly codec dimension %d outside [2,26]", d)
	}
	n := d * (1 << d)
	if n > MaxVertices {
		return nil, fmt.Errorf("topo: WBF(%d) exceeds MaxVertices=%d", d, MaxVertices)
	}
	return &ButterflyCodec{D: d, n: n}, nil
}

func (b *ButterflyCodec) Name() string { return fmt.Sprintf("butterfly(%d)", b.D) }

func (b *ButterflyCodec) N() int { return b.n }

func (b *ButterflyCodec) DegreeBound() int { return 4 }

func (b *ButterflyCodec) VertexTransitive() bool { return true }

func (b *ButterflyCodec) AppendNeighbors(v int, buf []int32) []int32 {
	row, lev := v/b.D, v%b.D
	next := (lev + 1) % b.D
	prev := (lev + b.D - 1) % b.D
	//lint:ignore indextrunc straight and cross steps stay inside [0, d*2^d) <= MaxVertices (math.MaxInt32)
	buf = append(buf, int32(row*b.D+next), int32((row^(1<<lev))*b.D+next), int32(row*b.D+prev), int32((row^(1<<prev))*b.D+prev))
	return buf
}
