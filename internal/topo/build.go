package topo

//lint:file-ignore ctxflow Build is a one-shot two-pass fill bounded by CheckVertexCount and maxArcs, run once per artifact under serve's build timeout

import (
	"fmt"
	"sort"
)

// This file implements the streaming count-then-fill builders.  A caller
// describes its edge set as a function that replays the edges on demand;
// the builder invokes it twice — once to size each row, once to fill the
// arena — so no intermediate [][]int32 is ever allocated.  Rows are then
// sorted and deduplicated in place, and self-loops are dropped, matching
// the semantics of the old per-vertex sorted adjacency lists bit for bit.

// Build constructs a symmetric (undirected) CSR on n vertices.  stream
// must invoke edge(u, v) for the same edge multiset on every call; each
// call contributes v to u's row and u to v's row.  Self-loops are
// skipped and parallel edges collapse, so emitting an edge from both
// endpoints (the natural form for the family builders) is harmless.
// Build panics if an endpoint is outside [0, n), mirroring AddEdge.
func Build(n int, stream func(edge func(u, v int))) (*CSR, error) {
	return build(n, stream, true)
}

// BuildArcs constructs a directed CSR on n vertices: arc(u, v) contributes
// v to u's row only.  Self-arcs are skipped and duplicates collapse.
func BuildArcs(n int, stream func(arc func(u, v int))) (*CSR, error) {
	return build(n, stream, false)
}

func build(n int, stream func(edge func(u, v int)), symmetric bool) (*CSR, error) {
	if err := CheckVertexCount(n); err != nil {
		return nil, err
	}
	check := func(u, v int) bool {
		if u < 0 || v < 0 || u >= n || v >= n {
			panic(fmt.Sprintf("topo.Build: vertex out of range: %d,%d (n=%d)", u, v, n))
		}
		return u != v
	}
	// Pass 1: count row sizes.
	counts := make([]uint32, n)
	var total uint64
	stream(func(u, v int) {
		if !check(u, v) {
			return
		}
		counts[u]++
		total++
		if symmetric {
			counts[v]++
			total++
		}
	})
	if total > maxArcs {
		return nil, fmt.Errorf("topo: %d arcs overflow the uint32 offset representation", total)
	}
	off := make([]uint32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + counts[v]
	}
	// Pass 2: fill, reusing counts as per-row cursors.
	arena := make([]int32, total)
	cursor := counts
	copy(cursor, off[:n])
	put := func(u int, v int32) {
		i := cursor[u]
		if i == off[u+1] {
			panic("topo.Build: stream emitted different edges between passes")
		}
		arena[i] = v
		cursor[u] = i + 1
	}
	stream(func(u, v int) {
		if !check(u, v) {
			return
		}
		put(u, int32(v))
		if symmetric {
			put(v, int32(u))
		}
	})
	for v := 0; v < n; v++ {
		if cursor[v] != off[v+1] {
			return nil, fmt.Errorf("topo: stream emitted fewer edges on the fill pass (row %d)", v)
		}
	}
	// Sort each row and compact duplicates in place (the read index never
	// falls behind the write index, so one arena suffices).
	var w uint32
	for v := 0; v < n; v++ {
		row := arena[off[v]:off[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		start := w
		for i, x := range row {
			if i > 0 && x == row[i-1] {
				continue
			}
			arena[w] = x
			w++
		}
		off[v] = start
	}
	off[n] = w
	if int(w) != len(arena) {
		// Clone to the exact size so collapsed duplicates do not linger as
		// dead capacity in the steady-state footprint.
		arena = append(make([]int32, 0, w), arena[:w]...)
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := int(off[v+1] - off[v]); d > maxDeg {
			maxDeg = d
		}
	}
	return &CSR{off: off, arena: arena, maxDeg: maxDeg}, nil
}
