package topo

import "sync/atomic"

// AtomicMaxInt64 raises *addr to v if v is larger, with the usual
// compare-and-swap retry loop.  It is the one shared max-reduction used
// by the parallel metric merges (diameter, eccentricity maxima) instead
// of hand-rolled CAS loops at every call site.
func AtomicMaxInt64(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}
