package topo

import "sync/atomic"

// AtomicMaxInt64 raises v's value to x if x is larger, with the usual
// compare-and-swap retry loop.  It is the one shared max-reduction used
// by the parallel metric merges (diameter, eccentricity maxima) instead
// of hand-rolled CAS loops at every call site.  Taking *atomic.Int64
// rather than *int64 makes a mixed plain/atomic access of the target
// unrepresentable — the value can only be touched through the atomic
// API.
func AtomicMaxInt64(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}
