package topo

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMixedRadixRoundTrip exhausts a small mixed-radix system: every rank
// unranks to in-range digits and ranks back to itself, and consecutive
// ranks enumerate digit vectors in little-endian counting order.
func TestMixedRadixRoundTrip(t *testing.T) {
	mr, err := NewMixedRadix([]int{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if mr.N() != 30 || mr.Digits() != 3 {
		t.Fatalf("N=%d digits=%d, want 30, 3", mr.N(), mr.Digits())
	}
	var digits []int
	for r := 0; r < mr.N(); r++ {
		digits, err = mr.UnrankInto(r, digits)
		if err != nil {
			t.Fatalf("UnrankInto(%d): %v", r, err)
		}
		for i, d := range digits {
			if d < 0 || d >= mr.Radix(i) {
				t.Fatalf("rank %d digit %d = %d outside [0,%d)", r, i, d, mr.Radix(i))
			}
		}
		back, err := mr.Rank(digits)
		if err != nil {
			t.Fatalf("Rank(%v): %v", digits, err)
		}
		if back != r {
			t.Fatalf("round trip: %d -> %v -> %d", r, digits, back)
		}
	}
}

// TestMixedRadixErrors checks every rejection path of the checked
// conversions: the codecs rely on errors, not panics, for malformed input.
func TestMixedRadixErrors(t *testing.T) {
	if _, err := NewMixedRadix(nil); err == nil {
		t.Error("empty radices accepted")
	}
	if _, err := NewMixedRadix([]int{4, 1}); err == nil {
		t.Error("radix 1 accepted")
	}
	if _, err := NewMixedRadix([]int{1 << 16, 1 << 16}); err == nil {
		t.Error("overflowing product accepted")
	}
	mr, err := NewMixedRadix([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mr.UnrankInto(-1, nil); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := mr.UnrankInto(12, nil); err == nil {
		t.Error("rank == N accepted")
	}
	if _, err := mr.Rank([]int{0}); err == nil {
		t.Error("short digit vector accepted")
	}
	if _, err := mr.Rank([]int{0, 4}); err == nil {
		t.Error("digit == radix accepted")
	}
	if _, err := mr.Rank([]int{-1, 0}); err == nil {
		t.Error("negative digit accepted")
	}
}

// TestGHCCodecMatchesHypercube cross-checks two independent codecs: the
// generalized hypercube with all radices 2 is exactly the binary d-cube,
// so their canonical rows must coincide on every vertex.
func TestGHCCodecMatchesHypercube(t *testing.T) {
	const d = 10
	radices := make([]int, d)
	for i := range radices {
		radices[i] = 2
	}
	ghc, err := NewGHCCodec(radices...)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercubeCodec(d)
	if err != nil {
		t.Fatal(err)
	}
	ig, ih := NewImplicit(ghc), NewImplicit(hc)
	if ig.N() != ih.N() {
		t.Fatalf("N: ghc %d, hypercube %d", ig.N(), ih.N())
	}
	var gb, hb []int32
	for v := 0; v < ig.N(); v++ {
		gb = ig.NeighborsInto(v, gb)
		hb = ih.NeighborsInto(v, hb)
		if len(gb) != len(hb) {
			t.Fatalf("v=%d: ghc degree %d, hypercube degree %d", v, len(gb), len(hb))
		}
		for i := range gb {
			if gb[i] != hb[i] {
				t.Fatalf("v=%d: ghc row %v, hypercube row %v", v, gb, hb)
			}
		}
	}
}

// TestGHCCodecCompleteGraph checks the single-digit degenerate case: one
// radix-m digit is the complete graph K_m.
func TestGHCCodecCompleteGraph(t *testing.T) {
	const m = 7
	g, err := NewGHCCodec(m)
	if err != nil {
		t.Fatal(err)
	}
	im := NewImplicit(g)
	var buf []int32
	for v := 0; v < m; v++ {
		buf = im.NeighborsInto(v, buf)
		if len(buf) != m-1 {
			t.Fatalf("v=%d: degree %d, want %d", v, len(buf), m-1)
		}
		for i, u := range buf {
			want := int32(i)
			if i >= v {
				want++
			}
			if u != want {
				t.Fatalf("v=%d: row %v not K_%d", v, buf, m)
			}
		}
	}
}

// TestCodecRowsCanonicalAtScale samples random vertices of each codec at
// sizes far beyond what the materialized builders allow (hypercube d=30,
// torus k=46340, CCC/WBF d=26) and checks the Source row contract —
// ascending, deduplicated, self-free, in range, at the family's exact
// degree — plus adjacency symmetry: v appears in the row of each of its
// neighbors.  Symmetry is what the direction-optimizing BFS's bottom-up
// phase relies on, so a violation here would corrupt traversals silently.
func TestCodecRowsCanonicalAtScale(t *testing.T) {
	cases := []struct {
		codec  func() (Codec, error)
		degree int
	}{
		{func() (Codec, error) { return NewHypercubeCodec(30) }, 30},
		{func() (Codec, error) { return NewTorusCodec(46340, 2) }, 4},
		{func() (Codec, error) { return NewCCCCodec(26) }, 3},
		{func() (Codec, error) { return NewButterflyCodec(26) }, 4},
		{func() (Codec, error) { return NewGHCCodec(10, 20, 30) }, 9 + 19 + 29},
	}
	for _, tc := range cases {
		c, err := tc.codec()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name(), func(t *testing.T) {
			im := NewImplicit(c)
			n := im.N()
			rng := rand.New(rand.NewSource(11))
			var row, nrow []int32
			for trial := 0; trial < 64; trial++ {
				v := rng.Intn(n)
				row = im.NeighborsInto(v, row)
				if len(row) != tc.degree {
					t.Fatalf("v=%d: degree %d, want %d", v, len(row), tc.degree)
				}
				if len(row) > im.DegreeBound() {
					t.Fatalf("v=%d: degree %d exceeds DegreeBound %d", v, len(row), im.DegreeBound())
				}
				for i, u := range row {
					if int(u) < 0 || int(u) >= n {
						t.Fatalf("v=%d: neighbor %d out of range", v, u)
					}
					if int(u) == v {
						t.Fatalf("v=%d: self-loop survived canonicalization", v)
					}
					if i > 0 && row[i-1] >= u {
						t.Fatalf("v=%d: row %v not strictly ascending", v, row)
					}
				}
				for _, u := range row {
					nrow = im.NeighborsInto(int(u), nrow)
					j := sort.Search(len(nrow), func(i int) bool { return nrow[i] >= int32(v) })
					if j == len(nrow) || nrow[j] != int32(v) {
						t.Fatalf("asymmetric edge: %d in row of %d but not vice versa", u, v)
					}
				}
			}
		})
	}
}

// FuzzMixedRadix drives the checked rank/unrank conversions with
// arbitrary radix vectors and ranks: construction either errors or
// yields a system where unrank-then-rank is the identity and all digits
// are in range.
func FuzzMixedRadix(f *testing.F) {
	f.Add([]byte{2, 3, 5}, int64(17))
	f.Add([]byte{2}, int64(0))
	f.Add([]byte{255, 255, 255, 255}, int64(1<<40))
	f.Add([]byte{0, 7}, int64(-3))
	f.Fuzz(func(t *testing.T, raw []byte, rank int64) {
		if len(raw) == 0 || len(raw) > 16 {
			return
		}
		radices := make([]int, len(raw))
		for i, b := range raw {
			radices[i] = int(b)
		}
		mr, err := NewMixedRadix(radices)
		if err != nil {
			return
		}
		if mr.N() < 1 || mr.N() > MaxVertices {
			t.Fatalf("accepted system with N = %d", mr.N())
		}
		r := int(rank % int64(mr.N()))
		digits, err := mr.UnrankInto(r, nil)
		if r < 0 {
			if err == nil {
				t.Fatalf("negative rank %d accepted", r)
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range rank rejected: %v", err)
		}
		for i, d := range digits {
			if d < 0 || d >= mr.Radix(i) {
				t.Fatalf("digit %d at %d outside [0,%d)", d, i, mr.Radix(i))
			}
		}
		back, err := mr.Rank(digits)
		if err != nil {
			t.Fatalf("Rank(%v): %v", digits, err)
		}
		if back != r {
			t.Fatalf("round trip: %d -> %v -> %d", r, digits, back)
		}
	})
}
