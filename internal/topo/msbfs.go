package topo

//lint:file-ignore ctxflow MSBFS processes one 64-source batch per call; graph's batch drivers poll ctx between batches, bounding cancellation latency to one kernel invocation

import "math/bits"

// This file holds the batched multi-source BFS (MSBFS) kernel: up to 64
// BFS traversals advance together through the CSR arena, one uint64
// visited/frontier word per vertex, so every edge is scanned once per
// *batch* instead of once per source.  All-sources sweeps (diameter,
// average distance, the intercluster quotient metrics) are the dominant
// cost of the paper's headline tables; batching cuts their arena traffic
// by up to 64x and replaces the per-edge branch of the scalar kernel with
// a handful of word operations.
//
// The kernel is level-synchronous with a direction-optimizing switch: a
// sparse frontier is expanded top-down (scan the frontier vertices'
// rows), a dense one bottom-up (scan the rows of still-unfinished
// vertices and gather frontier bits), following Beamer et al.'s
// direction-optimizing BFS adapted to the bit-parallel setting.
//
// MSBFS requires a symmetric CSR: the bottom-up step reads Row(v) as the
// in-neighbors of v, which is only correct when every arc has its
// reverse.  Directed quotients must keep using the scalar BFSInto.

// msbfsBatch is the source-batch width: one bit of a uint64 per source.
const msbfsBatch = 64

// msbfsDenseCut is the frontier density (as a fraction 1/msbfsDenseCut of
// the vertex count) above which a level switches to bottom-up expansion.
const msbfsDenseCut = 8

// MSBFSScratch is the reusable state of one MSBFS call: three uint64
// words per vertex plus the frontier vertex lists.  A scratch may be
// reused across calls and topologies of any size (buffers grow on
// demand); it must not be shared between concurrent calls.
type MSBFSScratch struct {
	visited  []uint64 // visited[v] bit i: source i has reached v
	frontier []uint64 // current-level bits per vertex
	next     []uint64 // gathered bits for the level under construction
	cur      []int32  // vertices with nonzero frontier word
	touched  []int32  // vertices with nonzero next word this level
}

// NewMSBFSScratch returns a scratch sized for n vertices.
func NewMSBFSScratch(n int) *MSBFSScratch {
	s := &MSBFSScratch{}
	s.ensure(n)
	return s
}

// ensure sizes the buffers for n vertices, reusing capacity.
func (s *MSBFSScratch) ensure(n int) {
	if cap(s.visited) < n {
		s.visited = make([]uint64, n)
		s.frontier = make([]uint64, n)
		s.next = make([]uint64, n)
	}
	s.visited = s.visited[:n]
	s.frontier = s.frontier[:n]
	s.next = s.next[:n]
	s.cur = s.cur[:0]
	s.touched = s.touched[:0]
}

// MSBFSInto runs BFS from up to 64 sources simultaneously over a
// symmetric CSR.  Per source i it writes ecc[i] and sum[i] under the same
// contract as BFSInto: ecc[i] is the eccentricity of sources[i], or -1
// when some vertex is unreachable (sum[i] then covers the reached
// vertices only).  If dist is non-nil it must have length
// len(sources)*c.N() and receives the full distance vector of source i in
// dist[i*n:(i+1)*n], -1 marking unreachable vertices — the same flat
// strided layout the routers use.  The call is allocation-free once the
// scratch has grown to c.N() vertices.
func (c *CSR) MSBFSInto(sources []int32, s *MSBFSScratch, ecc []int32, sum []int64, dist []int32) {
	n := c.N()
	ns := len(sources)
	if ns == 0 || ns > msbfsBatch {
		panic("topo: MSBFSInto needs 1..64 sources")
	}
	if len(ecc) < ns || len(sum) < ns {
		panic("topo: MSBFSInto ecc/sum shorter than sources")
	}
	if dist != nil && len(dist) < ns*n {
		panic("topo: MSBFSInto dist shorter than len(sources)*N")
	}
	s.ensure(n)
	visited, frontier, next := s.visited, s.frontier, s.next
	for i := range visited {
		visited[i] = 0
		frontier[i] = 0
		next[i] = 0
	}
	if dist != nil {
		for i := range dist[:ns*n] {
			dist[i] = -1
		}
	}
	full := ^uint64(0) >> (msbfsBatch - ns)
	var reached [msbfsBatch]int32
	s.cur = s.cur[:0]
	for i, src := range sources {
		if frontier[src] == 0 {
			s.cur = append(s.cur, src)
		}
		bit := uint64(1) << i
		frontier[src] |= bit
		visited[src] |= bit
		ecc[i], sum[i] = 0, 0
		reached[i] = 1
		if dist != nil {
			dist[i*n+int(src)] = 0
		}
	}
	arena, off := c.arena, c.off
	var cnt [msbfsBatch]int32
	for level := int32(1); len(s.cur) > 0; level++ {
		s.touched = s.touched[:0]
		if len(s.cur) > n/msbfsDenseCut {
			// Bottom-up: every vertex some source has not reached gathers
			// the frontier bits of its (symmetric) neighbors.
			for v := 0; v < n; v++ {
				if visited[v] == full {
					continue
				}
				var acc uint64
				for _, u := range arena[off[v]:off[v+1]] {
					acc |= frontier[u]
				}
				if acc&^visited[v] != 0 {
					next[v] = acc
					//lint:ignore indextrunc v < n <= MaxVertices (math.MaxInt32)
					s.touched = append(s.touched, int32(v))
				}
			}
		} else {
			// Top-down: frontier vertices push their bits along their rows.
			for _, u := range s.cur {
				f := frontier[u]
				for _, v := range arena[off[u]:off[u+1]] {
					if f&^visited[v] != 0 {
						if next[v] == 0 {
							s.touched = append(s.touched, v)
						}
						next[v] |= f
					}
				}
			}
		}
		for _, u := range s.cur {
			frontier[u] = 0
		}
		s.cur = s.cur[:0]
		for i := 0; i < ns; i++ {
			cnt[i] = 0
		}
		for _, v := range s.touched {
			newBits := next[v] &^ visited[v]
			next[v] = 0
			if newBits == 0 {
				continue
			}
			visited[v] |= newBits
			frontier[v] = newBits
			s.cur = append(s.cur, v)
			for b := newBits; b != 0; b &= b - 1 {
				i := bits.TrailingZeros64(b)
				cnt[i]++
				if dist != nil {
					dist[i*n+int(v)] = level
				}
			}
		}
		for i := 0; i < ns; i++ {
			if cnt[i] > 0 {
				ecc[i] = level
				sum[i] += int64(level) * int64(cnt[i])
				reached[i] += cnt[i]
			}
		}
	}
	//lint:ignore indextrunc n <= MaxVertices (math.MaxInt32) by construction
	nn := int32(n)
	for i := 0; i < ns; i++ {
		if reached[i] != nn {
			ecc[i] = -1
		}
	}
}
