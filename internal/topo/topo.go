// Package topo is the single adjacency substrate of the repository: a
// compressed-sparse-row (CSR) representation with one flat []int32
// neighbor arena, the streaming count-then-fill builders that produce it,
// and the port-labelled view consumed by routers and schedules.
//
// Every layer — the graph metrics, the family builders in
// internal/topology and internal/superipg, the emulation engines, and the
// packet simulator — iterates this arena instead of re-materializing its
// own [][]int32 copy.  The per-vertex slice headers of the old
// representation cost 24 bytes each plus allocator slack; CSR costs 4
// bytes of offset per vertex plus 4 per arc, roughly halving steady-state
// memory for the materialized families and keeping neighbor scans on one
// contiguous cache-friendly array.
package topo

import (
	"fmt"
	"math"
	"sort"
)

// Topology is the neighbor-enumeration view every metric consumer needs:
// vertex count, degrees, and neighbor lists.  Implementations must return
// each vertex's neighbors in ascending order so downstream iteration
// (bisection refinement, DOT output, equality) is deterministic.
type Topology interface {
	N() int
	Degree(v int) int
	// Neighbors appends v's sorted neighbors to buf[:0] and returns it.
	// Passing a buffer with cap >= Degree(v) makes the call allocation-free.
	Neighbors(v int, buf []int32) []int32
}

// Symmetric is the optional vertex-transitivity capability: a topology
// (or graph facade) whose automorphism group acts transitively on
// vertices reports it here, and metric consumers may then collapse
// all-sources sweeps to a single source — every vertex has the same
// eccentricity and the same distance multiset, so one BFS yields the
// exact diameter and average distance.  The Cayley-graph families the
// paper builds on (hypercubes, tori, generalized hypercubes, CCC,
// wrapped butterflies) qualify; implementations must return false
// whenever transitivity is not a proven property of the construction.
type Symmetric interface {
	VertexTransitive() bool
}

// Ported is the port-labelled view consumed by routers, schedules, and the
// emulation engines: every vertex exposes Arity(v) ports, and Port(v, p)
// is the neighbor behind port p.  Implementations may mark a dead port
// with the vertex's own id (an IPG generator that fixes the label) or
// with -1 (an absent simulator port); consumers must treat both as
// "no transmission".
type Ported interface {
	N() int
	Arity(v int) int
	Port(v, p int) int32
}

// MaxVertices is the largest vertex count the int32 arena can address.
const MaxVertices = math.MaxInt32

// maxArcs bounds the arena length so uint32 row offsets cannot wrap.
const maxArcs = math.MaxUint32

// CheckVertexCount reports whether n vertices fit the int32 arena
// representation, as an error suitable for propagation.
func CheckVertexCount(n int) error {
	if n < 0 || n > MaxVertices {
		return fmt.Errorf("topo: vertex count %d outside [0, %d]", n, MaxVertices)
	}
	return nil
}

// CSR is the compressed-sparse-row adjacency: the neighbors of vertex v
// are arena[off[v]:off[v+1]], sorted ascending with duplicates collapsed.
// A CSR is immutable after construction and safe for concurrent readers.
type CSR struct {
	off   []uint32
	arena []int32
	// maxDeg is the maximum row length, recorded at construction so the
	// CSR can report a Source degree bound without rescanning offsets.
	maxDeg int
}

// N returns the vertex count.
func (c *CSR) N() int { return len(c.off) - 1 }

// Arcs returns the arena length: directed arc count (twice the edge count
// for a symmetric CSR).
func (c *CSR) Arcs() int { return len(c.arena) }

// Degree returns the number of neighbors of v.
func (c *CSR) Degree(v int) int { return int(c.off[v+1] - c.off[v]) }

// Row returns v's sorted neighbor slice as a zero-copy view into the
// arena.  The returned slice is owned by the CSR and must not be modified.
func (c *CSR) Row(v int) []int32 { return c.arena[c.off[v]:c.off[v+1]] }

// Neighbors implements Topology by appending Row(v) to buf[:0].
func (c *CSR) Neighbors(v int, buf []int32) []int32 {
	return append(buf[:0], c.Row(v)...)
}

// HasArc reports whether the arc u->v is present, by binary search on u's
// sorted row.
func (c *CSR) HasArc(u, v int) bool {
	if v < 0 || v > MaxVertices {
		return false
	}
	//lint:ignore indextrunc v is bounded to MaxVertices (math.MaxInt32) above
	target := int32(v)
	row := c.Row(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= target })
	return i < len(row) && row[i] == target
}

// ArcIndex returns the arena index of the arc u->v, or -1 if absent.  The
// fault layer uses arena indices as stable arc identifiers for its link
// masks.
func (c *CSR) ArcIndex(u, v int) int {
	if v < 0 || v > MaxVertices {
		return -1
	}
	//lint:ignore indextrunc v is bounded to MaxVertices (math.MaxInt32) above
	target := int32(v)
	row := c.Row(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= target })
	if i < len(row) && row[i] == target {
		return int(c.off[u]) + i
	}
	return -1
}

// ArcSource returns the source vertex of arena index i, by binary search
// over the row offsets.
func (c *CSR) ArcSource(i int) int {
	// Find the first vertex whose row ends past i.
	//lint:ignore indextrunc i < len(arena) <= maxArcs (math.MaxUint32)
	target := uint32(i)
	return sort.Search(c.N(), func(v int) bool { return c.off[v+1] > target })
}

// ArcTarget returns the target vertex of arena index i.
func (c *CSR) ArcTarget(i int) int32 { return c.arena[i] }

// RowStart returns the arena index of v's first arc, so callers pairing
// Row(v) with per-arc masks can address arcs as RowStart(v)+j.
func (c *CSR) RowStart(v int) int { return int(c.off[v]) }

// ByteSize returns the adjacency storage footprint in bytes: the offset
// array plus the arena.  Struct headers are excluded (constant overhead).
func (c *CSR) ByteSize() int64 {
	return int64(cap(c.off))*4 + int64(cap(c.arena))*4
}

// Equal reports whether two CSRs have identical vertex and arc sets
// (labels matter; this is not isomorphism).
func Equal(a, b *CSR) bool {
	if a.N() != b.N() || len(a.arena) != len(b.arena) {
		return false
	}
	for i, o := range a.off {
		if b.off[i] != o {
			return false
		}
	}
	for i, v := range a.arena {
		if b.arena[i] != v {
			return false
		}
	}
	return true
}
