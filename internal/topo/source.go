package topo

// Source is the neighbor-generation abstraction the traversal kernels and
// metric drivers consume: anything that can enumerate a vertex's sorted
// neighbor set into a caller-owned buffer.  CSR is one implementation (the
// materialized arena); Implicit is another (neighbors computed on the fly
// from a rank/unrank codec).  The contract mirrors the CSR row invariants
// exactly — ascending order, no duplicates, no self-loops — so a kernel
// running over a Source produces bit-identical traversals on either
// implementation.
//
// NeighborsInto must be safe for concurrent callers (each with its own
// buffer): the parallel metric drivers fan one Source out over a worker
// pool.
type Source interface {
	// N returns the vertex count.
	N() int
	// DegreeBound returns an upper bound on Degree(v) over all vertices,
	// so callers can pre-size neighbor buffers once instead of growing
	// them mid-traversal.
	DegreeBound() int
	// NeighborsInto appends v's neighbors — ascending, deduplicated,
	// self excluded — to buf[:0] and returns it.  Passing a buffer with
	// cap >= DegreeBound() makes the call allocation-free.
	NeighborsInto(v int, buf []int32) []int32
}

// DegreeBound implements Source: the maximum row length, computed once at
// construction.
func (c *CSR) DegreeBound() int { return c.maxDeg }

// NeighborsInto implements Source; for a CSR it is exactly Neighbors (the
// arena rows already satisfy the Source ordering contract).
func (c *CSR) NeighborsInto(v int, buf []int32) []int32 {
	return append(buf[:0], c.Row(v)...)
}

// SourceTransitive reports whether s is marked vertex-transitive through
// the optional Symmetric capability.  Metric drivers use it to collapse
// all-sources sweeps to a single source; a Source without the capability
// is conservatively non-transitive.
func SourceTransitive(s Source) bool {
	if sym, ok := s.(Symmetric); ok {
		return sym.VertexTransitive()
	}
	return false
}
