package fault_test

import (
	"context"
	"testing"

	"ipg/internal/fault"
	"ipg/internal/topo"
)

// implicitCodecs pairs each baseline golden family's CSR with its
// rank/unrank codec; both views of the same graph must degrade
// identically under the same fault spec.
func implicitCodecs(t *testing.T) []struct {
	name  string
	csr   *topo.CSR
	im    *topo.Implicit
	chips []int32
} {
	t.Helper()
	mk := func(name string, c topo.Codec, err error, chipOf func(v int) int32) struct {
		name  string
		csr   *topo.CSR
		im    *topo.Implicit
		chips []int32
	} {
		if err != nil {
			t.Fatal(err)
		}
		im := topo.NewImplicit(c)
		csr, err := topo.Build(im.N(), func(edge func(u, v int)) {
			var buf []int32
			for v := 0; v < im.N(); v++ {
				buf = im.NeighborsInto(v, buf)
				for _, u := range buf {
					edge(v, int(u))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		chips := make([]int32, im.N())
		for v := range chips {
			chips[v] = chipOf(v)
		}
		return struct {
			name  string
			csr   *topo.CSR
			im    *topo.Implicit
			chips []int32
		}{name, csr, im, chips}
	}
	hc, herr := topo.NewHypercubeCodec(6)
	tc, terr := topo.NewTorusCodec(8, 2)
	cc, cerr := topo.NewCCCCodec(3)
	return []struct {
		name  string
		csr   *topo.CSR
		im    *topo.Implicit
		chips []int32
	}{
		mk("Q6", hc, herr, func(v int) int32 { return int32(v >> 2) }),
		mk("8-ary 2-cube", tc, terr, func(v int) int32 { return int32((v%8)/2 + 4*(v/16)) }),
		mk("CCC(3)", cc, cerr, func(v int) int32 { return int32(v / 3) }),
	}
}

// TestSourceAnalyzeMatchesCSR runs the same node- and chip-fault specs
// through the materialized (CSR, arc-mask capable) path and the generic
// source path over the implicit codec, and requires bit-identical
// reports.  The fault sampling is seeded by (n, spec) only, so the two
// paths realize the same failure scenario; any divergence is a kernel
// disagreement, not sampling noise.
func TestSourceAnalyzeMatchesCSR(t *testing.T) {
	for _, tc := range implicitCodecs(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			specs := []fault.Spec{
				{Mode: fault.Nodes, Count: 5, Seed: 42},
				{Mode: fault.Chips, Count: 2, Seed: 7},
			}
			for _, spec := range specs {
				setCSR, err := fault.NewForSource(tc.csr, spec, tc.chips)
				if err != nil {
					t.Fatalf("%s/CSR: %v", spec.Mode, err)
				}
				setImp, err := fault.NewForSource(tc.im, spec, tc.chips)
				if err != nil {
					t.Fatalf("%s/implicit: %v", spec.Mode, err)
				}
				if len(setCSR.DeadVertices) != len(setImp.DeadVertices) {
					t.Fatalf("%s: sampling diverged: %d vs %d dead", spec.Mode,
						len(setCSR.DeadVertices), len(setImp.DeadVertices))
				}
				for i := range setCSR.DeadVertices {
					if setCSR.DeadVertices[i] != setImp.DeadVertices[i] {
						t.Fatalf("%s: dead vertex %d differs: %d vs %d", spec.Mode, i,
							setCSR.DeadVertices[i], setImp.DeadVertices[i])
					}
				}
				dc, err := fault.NewDegradedView(tc.csr, setCSR)
				if err != nil {
					t.Fatal(err)
				}
				di, err := fault.NewDegradedSourceView(tc.im, setImp)
				if err != nil {
					t.Fatal(err)
				}
				rc, err := dc.WithClusters(tc.chips).Analyze(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				ri, err := di.WithClusters(tc.chips).Analyze(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if *rc != *ri {
					t.Errorf("%s: reports diverged:\nCSR:      %+v\nimplicit: %+v", spec.Mode, *rc, *ri)
				}
			}
		})
	}
}

// TestSourceViewDegreesMatchCSR checks the per-vertex filtered Degree and
// Neighbors of the generic degraded view against the CSR-backed one.
func TestSourceViewDegreesMatchCSR(t *testing.T) {
	tc := implicitCodecs(t)[0] // Q6
	spec := fault.Spec{Mode: fault.Nodes, Count: 9, Seed: 3}
	set, err := fault.NewForSource(tc.im, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	setCSR, err := fault.New(tc.csr, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := fault.NewDegradedView(tc.csr, setCSR)
	if err != nil {
		t.Fatal(err)
	}
	di, err := fault.NewDegradedSourceView(tc.im, set)
	if err != nil {
		t.Fatal(err)
	}
	var cb, ib []int32
	for v := 0; v < tc.csr.N(); v++ {
		if dc.Degree(v) != di.Degree(v) {
			t.Fatalf("v=%d: CSR degree %d, implicit degree %d", v, dc.Degree(v), di.Degree(v))
		}
		cb = dc.Neighbors(v, cb)
		ib = di.Neighbors(v, ib)
		if len(cb) != len(ib) {
			t.Fatalf("v=%d: row lengths %d vs %d", v, len(cb), len(ib))
		}
		for i := range cb {
			if cb[i] != ib[i] {
				t.Fatalf("v=%d: rows diverge: %v vs %v", v, cb, ib)
			}
		}
	}
}

// TestLinkFaultsRequireArena checks the documented restriction: arc-mask
// fault modes index CSR arena positions and must be rejected on a purely
// implicit source rather than silently mis-sampling.
func TestLinkFaultsRequireArena(t *testing.T) {
	hc, err := topo.NewHypercubeCodec(6)
	if err != nil {
		t.Fatal(err)
	}
	im := topo.NewImplicit(hc)
	for _, mode := range []fault.Mode{fault.Links, fault.Adversarial} {
		if _, err := fault.NewForSource(im, fault.Spec{Mode: mode, Count: 3, Seed: 1}, nil); err == nil {
			t.Errorf("%s faults accepted on an implicit source", mode)
		}
	}
}
