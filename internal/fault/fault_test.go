package fault_test

import (
	"context"
	"testing"

	"ipg/internal/fault"
	"ipg/internal/graph"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topo"
	"ipg/internal/topology"
)

// goldenFamily mirrors the 8 golden families of csr_equivalence_test.go:
// the degraded-metrics property tests must hold on every one of them.
type goldenFamily struct {
	name  string
	build func() *graph.Graph
}

func goldenFamilies() []goldenFamily {
	q2 := func() *nucleus.Nucleus { return nucleus.Hypercube(2) }
	return []goldenFamily{
		{"HSN(3,Q2)", func() *graph.Graph { return superipg.HSN(3, q2()).MustBuild().Undirected() }},
		{"ring-CN(3,Q2)", func() *graph.Graph { return superipg.RingCN(3, q2()).MustBuild().Undirected() }},
		{"complete-CN(3,Q2)", func() *graph.Graph { return superipg.CompleteCN(3, q2()).MustBuild().Undirected() }},
		{"SFN(3,Q2)", func() *graph.Graph { return superipg.SFN(3, q2()).MustBuild().Undirected() }},
		{"Q6", func() *graph.Graph { return topology.NewHypercube(6).G }},
		{"8-ary 2-cube", func() *graph.Graph { return topology.NewTorus(8, 2).G }},
		{"CCC(3)", func() *graph.Graph { return topology.NewCCC(3).G }},
		{"WBF(3)", func() *graph.Graph { return topology.NewButterfly(3).G }},
	}
}

// rebuildDegraded reconstructs the alive subgraph from scratch as a fresh
// graph with relabeled vertices — the brute-force comparator for every
// masked-kernel result.  It returns the rebuilt graph and the old->new id
// map (-1 for dead vertices).
func rebuildDegraded(c *topo.CSR, set *fault.Set) (*graph.Graph, []int32) {
	n := c.N()
	newID := make([]int32, n)
	alive := 0
	for v := 0; v < n; v++ {
		if set.VertexDead(v) {
			newID[v] = -1
			continue
		}
		newID[v] = int32(alive)
		alive++
	}
	g := graph.FromStream(alive, func(edge func(u, v int)) {
		for u := 0; u < n; u++ {
			if newID[u] < 0 {
				continue
			}
			first := c.RowStart(u)
			for j, w := range c.Row(u) {
				if int(w) <= u || newID[w] < 0 || topo.Bit(set.ADead, first+j) {
					continue
				}
				edge(int(newID[u]), int(newID[w]))
			}
		}
	})
	return g, newID
}

// bruteComponents labels components of the rebuilt graph by BFS flood and
// returns the per-vertex component id and the component sizes.
func bruteComponents(g *graph.Graph) ([]int, []int) {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	var buf []int32
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := len(sizes)
		queue := []int{v}
		comp[v] = id
		size := 0
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			buf = g.Neighbors(u, buf)
			for _, w := range buf {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, int(w))
				}
			}
		}
		sizes = append(sizes, size)
	}
	return comp, sizes
}

// subgraphOf extracts the component with the given id as a fresh graph.
func subgraphOf(g *graph.Graph, comp []int, id int) *graph.Graph {
	newID := make([]int, g.N())
	cnt := 0
	for v := range newID {
		if comp[v] == id {
			newID[v] = cnt
			cnt++
		} else {
			newID[v] = -1
		}
	}
	return graph.FromStream(cnt, func(edge func(u, v int)) {
		g.Edges(func(u, v int) {
			if newID[u] >= 0 && newID[v] >= 0 {
				edge(newID[u], newID[v])
			}
		})
	})
}

// checkAgainstBrute verifies a Report against the rebuilt-from-scratch
// graph: component census, whole-subgraph diameter/avg (with the shared
// -1-when-disconnected convention, bit-identical floats), and the
// largest-component metrics.
func checkAgainstBrute(t *testing.T, c *topo.CSR, set *fault.Set, rep *fault.Report) {
	t.Helper()
	g, _ := rebuildDegraded(c, set)
	if rep.Alive != g.N() {
		t.Fatalf("alive = %d, rebuilt has %d vertices", rep.Alive, g.N())
	}
	if rep.Alive == 0 {
		return
	}
	comp, sizes := bruteComponents(g)
	if rep.Components != len(sizes) {
		t.Fatalf("components = %d, brute force found %d", rep.Components, len(sizes))
	}
	giant, giantSize := 0, 0
	for id, sz := range sizes {
		if sz > giantSize {
			giant, giantSize = id, sz
		}
	}
	if rep.LargestComponent != giantSize {
		t.Fatalf("largest component = %d, brute force found %d", rep.LargestComponent, giantSize)
	}
	if d := g.Diameter(); rep.Diameter != d {
		t.Fatalf("degraded diameter = %d, rebuilt graph gives %d", rep.Diameter, d)
	}
	if a := g.AverageDistance(); rep.AvgDistance != a {
		t.Fatalf("degraded avg distance = %v, rebuilt graph gives %v", rep.AvgDistance, a)
	}
	gg := subgraphOf(g, comp, giant)
	if d := gg.Diameter(); rep.GiantDiameter != d {
		t.Fatalf("giant diameter = %d, rebuilt component gives %d", rep.GiantDiameter, d)
	}
	if a := gg.AverageDistance(); rep.GiantAvgDistance != a {
		t.Fatalf("giant avg distance = %v, rebuilt component gives %v", rep.GiantAvgDistance, a)
	}
}

// TestZeroFaultsBitIdentical: a DegradedView with an empty fault set must
// reproduce the undegraded sweep bit for bit on every golden family.
func TestZeroFaultsBitIdentical(t *testing.T) {
	for _, fam := range goldenFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			g := fam.build()
			c := g.CSR()
			set, err := fault.New(c, fault.Spec{Mode: fault.Links, Count: 0, Seed: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			dv, err := fault.NewDegradedView(c, set)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := dv.Analyze(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Alive != g.N() || rep.Components != 1 {
				t.Fatalf("zero faults: alive = %d components = %d, want %d and 1", rep.Alive, rep.Components, g.N())
			}
			if d := g.Diameter(); rep.Diameter != d || rep.GiantDiameter != d {
				t.Fatalf("zero faults: diameter = %d (giant %d), want %d", rep.Diameter, rep.GiantDiameter, d)
			}
			if a := g.AverageDistance(); rep.AvgDistance != a || rep.GiantAvgDistance != a {
				t.Fatalf("zero faults: avg = %v (giant %v), want %v", rep.AvgDistance, rep.GiantAvgDistance, a)
			}
		})
	}
}

// TestDegradedMatchesBruteForce: for every golden family, failure mode,
// and a handful of seeds, the masked sweep must match a brute-force
// recomputation on a graph rebuilt from scratch without the failed
// elements.
func TestDegradedMatchesBruteForce(t *testing.T) {
	modes := []fault.Mode{fault.Nodes, fault.Links, fault.Adversarial}
	for _, fam := range goldenFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			g := fam.build()
			c := g.CSR()
			n, m := g.N(), g.M()
			for _, mode := range modes {
				counts := []int{1, n / 16, n / 4}
				if mode != fault.Nodes {
					counts = []int{1, m / 10, m / 3}
				}
				for _, count := range counts {
					if count < 1 {
						count = 1
					}
					for seed := int64(1); seed <= 3; seed++ {
						set, err := fault.New(c, fault.Spec{Mode: mode, Count: count, Seed: seed}, nil)
						if err != nil {
							t.Fatal(err)
						}
						dv, err := fault.NewDegradedView(c, set)
						if err != nil {
							t.Fatal(err)
						}
						rep, err := dv.Analyze(context.Background())
						if err != nil {
							t.Fatal(err)
						}
						checkAgainstBrute(t, c, set, rep)
					}
				}
			}
		})
	}
}

// TestChipFaults exercises the MCMP chip-failure mode: killing clusters
// removes all their vertices, and the per-nucleus reachability fields
// agree with a direct recount.
func TestChipFaults(t *testing.T) {
	g := topology.NewHypercube(6).G
	c := g.CSR()
	clusterOf := make([]int32, g.N())
	for v := range clusterOf {
		clusterOf[v] = int32(v >> 2) // 16 chips of 4 nodes
	}
	for seed := int64(1); seed <= 4; seed++ {
		set, err := fault.New(c, fault.Spec{Mode: fault.Chips, Count: 5, Seed: seed}, clusterOf)
		if err != nil {
			t.Fatal(err)
		}
		if len(set.DeadChips) != 5 || len(set.DeadVertices) != 20 {
			t.Fatalf("seed %d: %d chips, %d vertices dead; want 5 and 20", seed, len(set.DeadChips), len(set.DeadVertices))
		}
		for _, v := range set.DeadVertices {
			found := false
			for _, ch := range set.DeadChips {
				if clusterOf[v] == ch {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d: dead vertex %d not on a dead chip", seed, v)
			}
		}
		dv, err := fault.NewDegradedView(c, set)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := dv.WithClusters(clusterOf).Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstBrute(t, c, set, rep)
		if rep.ChipsTotal != 16 || rep.ChipsDead != 5 {
			t.Fatalf("seed %d: chips total %d dead %d, want 16 and 5", seed, rep.ChipsTotal, rep.ChipsDead)
		}
		if rep.ChipsReachable < 1 || rep.ChipsReachable > 11 {
			t.Fatalf("seed %d: chips reachable = %d out of range", seed, rep.ChipsReachable)
		}
	}
}

// TestAdversarialCutDisconnects: an adversarial budget equal to the
// minimum degree must disconnect a vertex (it cuts an entire edge
// neighborhood first), which uniform random faults of the same budget
// essentially never do on these families.
func TestAdversarialCutDisconnects(t *testing.T) {
	g := topology.NewHypercube(6).G
	c := g.CSR()
	set, err := fault.New(c, fault.Spec{Mode: fault.Adversarial, Count: 6, Seed: 42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := fault.NewDegradedView(c, set)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dv.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components != 2 || rep.LargestComponent != 63 {
		t.Fatalf("adversarial cut of 6 edges on Q6: components = %d largest = %d, want 2 and 63", rep.Components, rep.LargestComponent)
	}
	if rep.Diameter != -1 || rep.AvgDistance != -1 {
		t.Fatalf("disconnected degraded metrics = %d/%v, want -1/-1", rep.Diameter, rep.AvgDistance)
	}
	checkAgainstBrute(t, c, set, rep)
}

// TestVTShortcutDisabled: the degraded view of a vertex-transitive family
// must not advertise symmetry (faults break it), and its sweep must agree
// with brute force — which a single-source shortcut would not.
func TestVTShortcutDisabled(t *testing.T) {
	g := topology.NewHypercube(6).G
	if !g.VertexTransitive() {
		t.Fatal("Q6 should be marked vertex-transitive")
	}
	c := g.CSR()
	set, err := fault.New(c, fault.Spec{Mode: fault.Links, Count: 10, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := fault.NewDegradedView(c, set)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := interface{}(dv).(topo.Symmetric); ok {
		t.Fatal("DegradedView must not implement topo.Symmetric: faults break vertex transitivity")
	}
	var _ topo.Topology = dv // the masked view still serves the Topology interface
	rep, err := dv.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBrute(t, c, set, rep)
}

// TestDeterministicSampling: the same spec yields the same fault set.
func TestDeterministicSampling(t *testing.T) {
	g := topology.NewTorus(8, 2).G
	c := g.CSR()
	for _, mode := range []fault.Mode{fault.Nodes, fault.Links, fault.Adversarial} {
		a, err := fault.New(c, fault.Spec{Mode: mode, Count: 9, Seed: 5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fault.New(c, fault.Spec{Mode: mode, Count: 9, Seed: 5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.DeadVertices) != len(b.DeadVertices) || len(a.DeadEdges) != len(b.DeadEdges) {
			t.Fatalf("%s: nondeterministic sampling", mode)
		}
		for i := range a.DeadVertices {
			if a.DeadVertices[i] != b.DeadVertices[i] {
				t.Fatalf("%s: nondeterministic vertex sample", mode)
			}
		}
		for i := range a.DeadEdges {
			if a.DeadEdges[i] != b.DeadEdges[i] {
				t.Fatalf("%s: nondeterministic edge sample", mode)
			}
		}
	}
}

// TestSpecValidation pins the error paths: counts that would kill
// everything, missing cluster maps, unknown modes.
func TestSpecValidation(t *testing.T) {
	g := topology.NewHypercube(3).G
	c := g.CSR()
	cases := []struct {
		spec      fault.Spec
		clusterOf []int32
	}{
		{fault.Spec{Mode: fault.Nodes, Count: 8}, nil},
		{fault.Spec{Mode: fault.Links, Count: 13}, nil},
		{fault.Spec{Mode: fault.Nodes, Count: -1}, nil},
		{fault.Spec{Mode: fault.Chips, Count: 1}, nil},
		{fault.Spec{Mode: "bogus", Count: 1}, nil},
	}
	for _, tc := range cases {
		if _, err := fault.New(c, tc.spec, tc.clusterOf); err == nil {
			t.Fatalf("spec %+v: expected an error", tc.spec)
		}
	}
	if _, err := fault.ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode(bogus) should fail")
	}
	if m, err := fault.ParseMode(""); err != nil || m != fault.Nodes {
		t.Fatalf("ParseMode(\"\") = %v, %v; want node default", m, err)
	}
}
