package fault

//lint:file-ignore ctxflow degraded-view analysis is one O(N+M) pass per request over an artifact bounded by MaxNodes; serve.degradedMetrics polls ctx between the surrounding MSBFS batches

import (
	"context"

	"ipg/internal/topo"
)

// Report is the survivability census of one degraded topology.
//
// Diameter and AvgDistance follow the same convention as the undegraded
// graph metrics: they cover the whole alive subgraph and are -1 when it
// is disconnected (or empty), exactly matching a from-scratch
// recomputation on a rebuilt alive-vertex graph.  The Giant* fields
// always describe the largest connected component, so a mostly-intact
// network remains measurable even when a few vertices split off.
type Report struct {
	N     int // vertices of the underlying topology
	Alive int // surviving vertices

	FailedVertices int
	FailedEdges    int // explicitly failed edges (not those lost to dead vertices)
	FailedChips    int

	Components       int // connected components of the alive subgraph
	LargestComponent int // vertex count of the largest component

	Diameter    int     // alive subgraph; -1 when disconnected or empty
	AvgDistance float64 // alive subgraph; -1 when disconnected or empty

	GiantDiameter    int     // largest component; -1 only when Alive == 0
	GiantAvgDistance float64 // largest component; -1 only when Alive == 0

	// Per-nucleus reachability, present when the view has a chip
	// assignment: how many chips exist, how many lost every vertex, and
	// how many still have at least one vertex in the largest component.
	ChipsTotal     int
	ChipsDead      int
	ChipsReachable int
}

// Analyze sweeps the degraded topology and returns the survivability
// report.  The sweep batches alive sources 64 at a time through the
// masked MSBFS kernel and checks ctx between batches, so cancellation is
// observed after at most one batch of work.  It never consults the
// vertex-transitivity shortcut: every alive source is swept.
func (d *DegradedView) Analyze(ctx context.Context) (*Report, error) {
	n := d.src.N()
	set := d.set
	r := &Report{
		N:              n,
		Alive:          set.Alive(),
		FailedVertices: len(set.DeadVertices),
		FailedEdges:    len(set.DeadEdges),
		FailedChips:    len(set.DeadChips),
	}
	if d.clusterOf != nil {
		for _, ch := range d.clusterOf {
			if int(ch) >= r.ChipsTotal {
				r.ChipsTotal = int(ch) + 1
			}
		}
	}
	if r.Alive == 0 {
		r.Diameter, r.AvgDistance = -1, -1
		r.GiantDiameter, r.GiantAvgDistance = -1, -1
		r.ChipsDead = r.ChipsTotal
		return r, nil
	}

	// Component census: masked scalar BFS flood from each unlabelled
	// alive vertex.  CSR-backed views walk the arena directly (the only
	// path where arc masks can exist); other sources generate alive rows
	// through NeighborsInto.
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	var nbuf []int32
	if d.c == nil {
		nbuf = make([]int32, 0, d.src.DegreeBound())
	}
	giant, giantSize := int32(-1), 0
	for v := 0; v < n; v++ {
		if comp[v] >= 0 || topo.Bit(set.VDead, v) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		//lint:ignore indextrunc Components counts alive vertices, bounded by n <= topo.MaxVertices (math.MaxInt32)
		id := int32(r.Components)
		r.Components++
		size := 0
		queue = queue[:0]
		//lint:ignore indextrunc v < n <= topo.MaxVertices (math.MaxInt32)
		queue = append(queue, int32(v))
		comp[v] = id
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			size++
			if d.c != nil {
				first := d.c.RowStart(int(u))
				for j, w := range d.c.Row(int(u)) {
					if comp[w] >= 0 || topo.Bit(set.ADead, first+j) || topo.Bit(set.VDead, int(w)) {
						continue
					}
					comp[w] = id
					queue = append(queue, w)
				}
			} else {
				nbuf = d.src.NeighborsInto(int(u), nbuf)
				for _, w := range nbuf {
					if comp[w] >= 0 || topo.Bit(set.VDead, int(w)) {
						continue
					}
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		if size > giantSize {
			giant, giantSize = id, size
		}
	}
	r.LargestComponent = giantSize

	// All-alive-sources sweep, 64 sources per masked MSBFS batch.
	alive := queue[:0]
	for v := 0; v < n; v++ {
		if !topo.Bit(set.VDead, v) {
			//lint:ignore indextrunc v < n <= topo.MaxVertices (math.MaxInt32)
			alive = append(alive, int32(v))
		}
	}
	scratch := topo.NewMSBFSScratch(n)
	var (
		ecc     [64]int32
		sum     [64]int64
		reached [64]int32

		diam, giantDiam   int32
		total, giantTotal int64
	)
	for lo := 0; lo < len(alive); lo += 64 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + 64
		if hi > len(alive) {
			hi = len(alive)
		}
		batch := alive[lo:hi]
		if d.c != nil {
			d.c.MSBFSMaskedInto(batch, scratch, set.VDead, set.ADead, ecc[:], sum[:], reached[:])
		} else {
			nbuf = topo.MSBFSMaskedSourceInto(d.src, batch, scratch, set.VDead, ecc[:], sum[:], reached[:], nbuf)
		}
		for i, src := range batch {
			if ecc[i] > diam {
				diam = ecc[i]
			}
			total += sum[i]
			if comp[src] == giant {
				if ecc[i] > giantDiam {
					giantDiam = ecc[i]
				}
				giantTotal += sum[i]
			}
		}
	}
	if r.Components == 1 {
		r.Diameter = int(diam)
		r.AvgDistance = float64(total) / float64(r.Alive) / float64(r.Alive)
	} else {
		r.Diameter, r.AvgDistance = -1, -1
	}
	r.GiantDiameter = int(giantDiam)
	r.GiantAvgDistance = float64(giantTotal) / float64(giantSize) / float64(giantSize)

	if d.clusterOf != nil {
		chipAlive := make([]bool, r.ChipsTotal)
		chipInGiant := make([]bool, r.ChipsTotal)
		for v := 0; v < n; v++ {
			if topo.Bit(set.VDead, v) {
				continue
			}
			ch := d.clusterOf[v]
			chipAlive[ch] = true
			if comp[v] == giant {
				chipInGiant[ch] = true
			}
		}
		for ch := 0; ch < r.ChipsTotal; ch++ {
			if !chipAlive[ch] {
				r.ChipsDead++
			}
			if chipInGiant[ch] {
				r.ChipsReachable++
			}
		}
	}
	return r, nil
}
