package fault_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ipg/internal/fault"
	"ipg/internal/graph"
)

// bigRing builds a cycle large enough that the degraded all-sources sweep
// takes visible time: O(n^2) scalar work on a ring.
func bigRing(n int) *graph.Graph {
	return graph.FromStream(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			edge(v, (v+1)%n)
		}
	})
}

func TestAnalyzeCancelled(t *testing.T) {
	c := bigRing(1 << 15).CSR()
	set, err := fault.New(c, fault.Spec{Mode: fault.Links, Count: 4, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := fault.NewDegradedView(c, set)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dv.Analyze(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeDeadlinePrompt(t *testing.T) {
	c := bigRing(1 << 15).CSR()
	set, err := fault.New(c, fault.Spec{Mode: fault.Nodes, Count: 8, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := fault.NewDegradedView(c, set)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = dv.Analyze(ctx)
	if err == nil {
		t.Skip("machine finished the degraded sweep inside the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Cancellation is checked per 64-source batch; even on a slow machine
	// one batch of a 32k-vertex ring is far under a second.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Analyze took %v after the deadline fired; cancellation is not prompt", elapsed)
	}
}
