package fault

import (
	"fmt"

	"ipg/internal/topo"
)

// DegradedView is a masked read-only view of a CSR under a fault Set:
// failed vertices and edges are hidden from every traversal without
// copying or rebuilding the arena.  It implements topo.Topology over the
// alive subgraph (dead vertices keep their ids but have degree zero).
//
// A DegradedView deliberately does NOT implement topo.Symmetric: even
// when the underlying family is vertex-transitive, faults break the
// symmetry, so the single-source diameter/avg-distance shortcut must
// never fire on a degraded topology.  Analyze always sweeps every alive
// source.
type DegradedView struct {
	c         *topo.CSR
	set       *Set
	clusterOf []int32 // optional chip assignment for per-nucleus reachability
}

// NewDegradedView wraps c with the fault set.
func NewDegradedView(c *topo.CSR, set *Set) (*DegradedView, error) {
	if c.N() != set.N() {
		return nil, fmt.Errorf("fault: set built for %d vertices, topology has %d", set.N(), c.N())
	}
	return &DegradedView{c: c, set: set}, nil
}

// WithClusters attaches a chip assignment (len == N) so Analyze can
// report per-nucleus reachability; it returns the view for chaining.
func (d *DegradedView) WithClusters(clusterOf []int32) *DegradedView {
	d.clusterOf = clusterOf
	return d
}

// Set returns the underlying fault set.
func (d *DegradedView) Set() *Set { return d.set }

// N implements topo.Topology (dead vertices keep their ids).
func (d *DegradedView) N() int { return d.c.N() }

// Alive returns the surviving vertex count.
func (d *DegradedView) Alive() int { return d.set.Alive() }

// Degree implements topo.Topology: the alive degree of v, zero for a
// dead vertex.
func (d *DegradedView) Degree(v int) int {
	if topo.Bit(d.set.VDead, v) {
		return 0
	}
	if d.set.VDead == nil && d.set.ADead == nil {
		return d.c.Degree(v)
	}
	deg := 0
	first := d.c.RowStart(v)
	for j, u := range d.c.Row(v) {
		if topo.Bit(d.set.ADead, first+j) || topo.Bit(d.set.VDead, int(u)) {
			continue
		}
		deg++
	}
	return deg
}

// Neighbors implements topo.Topology: v's alive neighbors, ascending.
func (d *DegradedView) Neighbors(v int, buf []int32) []int32 {
	buf = buf[:0]
	if topo.Bit(d.set.VDead, v) {
		return buf
	}
	first := d.c.RowStart(v)
	for j, u := range d.c.Row(v) {
		if topo.Bit(d.set.ADead, first+j) || topo.Bit(d.set.VDead, int(u)) {
			continue
		}
		buf = append(buf, u)
	}
	return buf
}
