package fault

import (
	"fmt"

	"ipg/internal/topo"
)

// DegradedView is a masked read-only view of an adjacency source under a
// fault Set: failed vertices (and, on CSR-backed views, failed edges)
// are hidden from every traversal without copying or rebuilding
// anything.  It implements topo.Topology and topo.Source over the alive
// subgraph (dead vertices keep their ids but have degree zero).
//
// A DegradedView deliberately does NOT implement topo.Symmetric: even
// when the underlying family is vertex-transitive, faults break the
// symmetry, so the single-source diameter/avg-distance shortcut must
// never fire on a degraded topology.  Analyze always sweeps every alive
// source.
type DegradedView struct {
	src       topo.Source
	c         *topo.CSR // non-nil when src is a materialized arena; enables arc masks
	set       *Set
	clusterOf []int32 // optional chip assignment for per-nucleus reachability
}

// NewDegradedView wraps a materialized CSR with the fault set; every
// fault mode is supported.
func NewDegradedView(c *topo.CSR, set *Set) (*DegradedView, error) {
	if c.N() != set.N() {
		return nil, fmt.Errorf("fault: set built for %d vertices, topology has %d", set.N(), c.N())
	}
	return &DegradedView{src: c, c: c, set: set}, nil
}

// NewDegradedSourceView wraps any adjacency source with the fault set.
// A CSR source behaves exactly as NewDegradedView; any other source
// (e.g. a codec-backed topo.Implicit) supports vertex-level faults only,
// because arc masks index a CSR arena that an implicit source does not
// have.
func NewDegradedSourceView(s topo.Source, set *Set) (*DegradedView, error) {
	if s.N() != set.N() {
		return nil, fmt.Errorf("fault: set built for %d vertices, topology has %d", set.N(), s.N())
	}
	c, _ := s.(*topo.CSR)
	if c == nil && set.ADead != nil {
		return nil, fmt.Errorf("fault: link faults need a materialized topology (arc masks index the CSR arena)")
	}
	return &DegradedView{src: s, c: c, set: set}, nil
}

// WithClusters attaches a chip assignment (len == N) so Analyze can
// report per-nucleus reachability; it returns the view for chaining.
func (d *DegradedView) WithClusters(clusterOf []int32) *DegradedView {
	d.clusterOf = clusterOf
	return d
}

// Set returns the underlying fault set.
func (d *DegradedView) Set() *Set { return d.set }

// N implements topo.Topology (dead vertices keep their ids).
func (d *DegradedView) N() int { return d.src.N() }

// Alive returns the surviving vertex count.
func (d *DegradedView) Alive() int { return d.set.Alive() }

// DegreeBound implements topo.Source: masking only removes neighbors, so
// the underlying bound still holds.
func (d *DegradedView) DegreeBound() int { return d.src.DegreeBound() }

// Degree implements topo.Topology: the alive degree of v, zero for a
// dead vertex.
func (d *DegradedView) Degree(v int) int {
	if topo.Bit(d.set.VDead, v) {
		return 0
	}
	if d.c != nil {
		if d.set.VDead == nil && d.set.ADead == nil {
			return d.c.Degree(v)
		}
		deg := 0
		first := d.c.RowStart(v)
		for j, u := range d.c.Row(v) {
			if topo.Bit(d.set.ADead, first+j) || topo.Bit(d.set.VDead, int(u)) {
				continue
			}
			deg++
		}
		return deg
	}
	buf := make([]int32, 0, d.src.DegreeBound())
	return len(d.Neighbors(v, buf))
}

// Neighbors implements topo.Topology: v's alive neighbors, ascending.
func (d *DegradedView) Neighbors(v int, buf []int32) []int32 {
	buf = buf[:0]
	if topo.Bit(d.set.VDead, v) {
		return buf
	}
	if d.c != nil {
		first := d.c.RowStart(v)
		for j, u := range d.c.Row(v) {
			if topo.Bit(d.set.ADead, first+j) || topo.Bit(d.set.VDead, int(u)) {
				continue
			}
			buf = append(buf, u)
		}
		return buf
	}
	buf = d.src.NeighborsInto(v, buf)
	w := 0
	//lint:ignore ctxflow filters one neighbor row, at most DegreeBound entries — far below cancellation granularity
	for _, u := range buf {
		if topo.Bit(d.set.VDead, int(u)) {
			continue
		}
		buf[w] = u
		w++
	}
	return buf[:w]
}

// NeighborsInto implements topo.Source; identical to Neighbors (the view
// inherits the canonical row order of its underlying source, minus the
// masked entries).
func (d *DegradedView) NeighborsInto(v int, buf []int32) []int32 { return d.Neighbors(v, buf) }
