// Package fault models node, link, and chip failures over the CSR
// topology core and measures what survives.  The MCMP model puts an
// entire nucleus on one chip, so its characteristic failure event removes
// a whole cluster of vertices at once — the chip mode here.  The other
// models follow the fault-tolerance literature on Cayley-graph
// interconnects: uniform random vertex or edge deletion (the random
// induced-subgraph regime of Jin & Reidys) and an adversarial
// minimum-cut-seeking pattern that concentrates edge failures around one
// vertex (the families here are maximally connected, so their minimum
// cuts are the edge neighborhoods the pattern attacks first).
//
// A fault Set is a pair of bitmasks — one bit per vertex, one bit per
// CSR arena arc index — so degrading a topology never copies or rebuilds
// anything.  DegradedView wraps any topo.Source plus its Set and Analyze
// produces the survivability report; the vertex-level modes (node, chip)
// work over codec-backed implicit sources too, while the link modes need
// the materialized arena their arc masks index.
package fault

//lint:file-ignore ctxflow fault-set construction is a one-shot O(N) sample or cut over a graph bounded by MaxNodes, finished under serve's request deadline before the cancellable metric sweeps start

import (
	"fmt"
	"math/rand"
	"sort"

	"ipg/internal/topo"
)

// Mode names a failure model.
type Mode string

const (
	// Nodes fails vertices uniformly at random; every incident link dies
	// with its vertex.
	Nodes Mode = "node"
	// Links fails undirected edges uniformly at random.
	Links Mode = "link"
	// Chips fails whole clusters (MCMP chips): one event kills every
	// vertex of the chosen cluster.
	Chips Mode = "chip"
	// Adversarial fails edges in a minimum-cut-seeking pattern: starting
	// from a random vertex it cuts entire edge neighborhoods in BFS order,
	// isolating a ball once the budget covers its boundary.
	Adversarial Mode = "adversarial"
)

// ParseMode parses a mode name; the empty string defaults to Nodes.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "":
		return Nodes, nil
	case Nodes, Links, Chips, Adversarial:
		return Mode(s), nil
	}
	return "", fmt.Errorf("fault: unknown mode %q (node|link|chip|adversarial)", s)
}

// Spec describes one failure scenario.  The same spec over the same
// topology always yields the same Set: sampling is driven entirely by
// Seed.
type Spec struct {
	Mode  Mode
	Count int
	Seed  int64
}

// Set is a realized failure scenario over one CSR: the vertex and arc
// masks the masked kernels consume, plus the explicit failure lists the
// serving and simulation layers report or replay.
type Set struct {
	n int

	// VDead has one bit per vertex (nil when no vertex failed).
	VDead []uint64
	// ADead has one bit per arena arc index, both directions of a failed
	// edge marked (nil when no edge failed).
	ADead []uint64

	DeadVertices []int32    // sorted ascending
	DeadEdges    [][2]int32 // canonical u < v, in kill order
	DeadChips    []int32    // sorted ascending; chip mode only
}

// N returns the vertex count of the underlying topology.
func (s *Set) N() int { return s.n }

// Alive returns the surviving vertex count.
func (s *Set) Alive() int { return s.n - len(s.DeadVertices) }

// VertexDead reports whether v failed.
func (s *Set) VertexDead(v int) bool { return topo.Bit(s.VDead, v) }

// New samples a failure Set for spec over c.  clusterOf assigns vertices
// to chips and is required for (only) the Chips mode.  Counts must leave
// at least one vertex (one chip) alive; edge counts may not exceed the
// edge count of c.
func New(c *topo.CSR, spec Spec, clusterOf []int32) (*Set, error) {
	return newSet(c.N(), c, spec, clusterOf)
}

// NewForSource samples a failure Set for spec over any adjacency source.
// A materialized CSR supports every mode; for other sources only the
// vertex-level modes (node, chip) apply, because link faults are arc
// bitmasks over a CSR arena and there is no stable arc identifier to mask
// in a codec-backed source.
func NewForSource(s topo.Source, spec Spec, clusterOf []int32) (*Set, error) {
	if c, ok := s.(*topo.CSR); ok {
		return New(c, spec, clusterOf)
	}
	return newSet(s.N(), nil, spec, clusterOf)
}

// newSet is the shared sampler.  c is nil for non-arena sources, which
// rules out the arc-mask (link/adversarial) modes.
func newSet(n int, c *topo.CSR, spec Spec, clusterOf []int32) (*Set, error) {
	if err := topo.CheckVertexCount(n); err != nil {
		return nil, err
	}
	s := &Set{n: n}
	if spec.Count < 0 {
		return nil, fmt.Errorf("fault: negative failure count %d", spec.Count)
	}
	if spec.Count == 0 {
		return s, nil
	}
	mode := spec.Mode
	if mode == "" {
		mode = Nodes
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	switch mode {
	case Nodes:
		if spec.Count >= n {
			return nil, fmt.Errorf("fault: %d node failures would leave no vertex of %d alive", spec.Count, n)
		}
		s.VDead = topo.NewBitset(n)
		for len(s.DeadVertices) < spec.Count {
			v := rng.Intn(n)
			if topo.Bit(s.VDead, v) {
				continue
			}
			topo.SetBit(s.VDead, v)
			s.DeadVertices = append(s.DeadVertices, int32(v))
		}
		sortInt32(s.DeadVertices)
	case Links:
		if c == nil {
			return nil, fmt.Errorf("fault: %s faults need a materialized topology (arc masks index the CSR arena)", mode)
		}
		m := c.Arcs() / 2
		if spec.Count > m {
			return nil, fmt.Errorf("fault: %d link failures exceed the %d links present", spec.Count, m)
		}
		s.ADead = topo.NewBitset(c.Arcs())
		for len(s.DeadEdges) < spec.Count {
			i := rng.Intn(c.Arcs())
			u := c.ArcSource(i)
			v := int(c.ArcTarget(i))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			s.killEdge(c, u, v)
		}
	case Adversarial:
		if c == nil {
			return nil, fmt.Errorf("fault: %s faults need a materialized topology (arc masks index the CSR arena)", mode)
		}
		m := c.Arcs() / 2
		if spec.Count > m {
			return nil, fmt.Errorf("fault: %d link failures exceed the %d links present", spec.Count, m)
		}
		s.ADead = topo.NewBitset(c.Arcs())
		s.adversarialCut(c, rng.Intn(n), spec.Count)
	case Chips:
		if len(clusterOf) != n {
			return nil, fmt.Errorf("fault: chip mode needs a cluster assignment for all %d vertices", n)
		}
		nc := 0
		for _, ch := range clusterOf {
			if int(ch) >= nc {
				nc = int(ch) + 1
			}
		}
		if spec.Count >= nc {
			return nil, fmt.Errorf("fault: %d chip failures would leave none of %d chips alive", spec.Count, nc)
		}
		dead := make(map[int32]bool, spec.Count)
		for len(s.DeadChips) < spec.Count {
			ch := int32(rng.Intn(nc))
			if dead[ch] {
				continue
			}
			dead[ch] = true
			s.DeadChips = append(s.DeadChips, ch)
		}
		sortInt32(s.DeadChips)
		s.VDead = topo.NewBitset(n)
		for v, ch := range clusterOf {
			if dead[ch] {
				topo.SetBit(s.VDead, v)
				s.DeadVertices = append(s.DeadVertices, int32(v))
			}
		}
		if len(s.DeadVertices) == n {
			return nil, fmt.Errorf("fault: the %d failed chips cover every vertex", spec.Count)
		}
	default:
		return nil, fmt.Errorf("fault: unknown mode %q", mode)
	}
	return s, nil
}

// killEdge marks both arc directions of {u, v} dead; it is a no-op when
// the edge is already dead or absent, reporting whether it killed.
func (s *Set) killEdge(c *topo.CSR, u, v int) bool {
	i := c.ArcIndex(u, v)
	j := c.ArcIndex(v, u)
	if i < 0 || j < 0 || topo.Bit(s.ADead, i) {
		return false
	}
	topo.SetBit(s.ADead, i)
	topo.SetBit(s.ADead, j)
	//lint:ignore indextrunc u, v are vertex ids < c.N() <= topo.MaxVertices (math.MaxInt32)
	s.DeadEdges = append(s.DeadEdges, [2]int32{int32(u), int32(v)})
	return true
}

// adversarialCut kills edges in BFS order from start until budget edges
// are gone: first the entire edge neighborhood of start, then of its
// neighbors, and so on.  Once the budget covers a ball's boundary the
// ball is disconnected; for the regular, maximally connected families
// here the first neighborhood is exactly a minimum cut.
func (s *Set) adversarialCut(c *topo.CSR, start, budget int) {
	n := c.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	dist[start] = 0
	//lint:ignore indextrunc start < n, which topo.CheckVertexCount bounded in New
	queue = append(queue, int32(start))
	for qi := 0; qi < len(queue) && budget > 0; qi++ {
		u := int(queue[qi])
		for _, v := range c.Row(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			if budget > 0 && int(v) != u {
				a, b := u, int(v)
				if a > b {
					a, b = b, a
				}
				if s.killEdge(c, a, b) {
					budget--
				}
			}
		}
	}
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
