package ist_test

import (
	"context"
	"strings"
	"testing"

	"ipg/internal/graph"
	"ipg/internal/ist"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topology"
)

// goldenFamily mirrors the 8 golden families of the fault package's
// property tests: the IST contract must hold on every one of them.
type goldenFamily struct {
	name  string
	build func() *graph.Graph
}

func goldenFamilies() []goldenFamily {
	q2 := func() *nucleus.Nucleus { return nucleus.Hypercube(2) }
	return []goldenFamily{
		{"HSN(3,Q2)", func() *graph.Graph { return superipg.HSN(3, q2()).MustBuild().Undirected() }},
		{"ring-CN(3,Q2)", func() *graph.Graph { return superipg.RingCN(3, q2()).MustBuild().Undirected() }},
		{"complete-CN(3,Q2)", func() *graph.Graph { return superipg.CompleteCN(3, q2()).MustBuild().Undirected() }},
		{"SFN(3,Q2)", func() *graph.Graph { return superipg.SFN(3, q2()).MustBuild().Undirected() }},
		{"Q6", func() *graph.Graph { return topology.NewHypercube(6).G }},
		{"8-ary 2-cube", func() *graph.Graph { return topology.NewTorus(8, 2).G }},
		{"CCC(3)", func() *graph.Graph { return topology.NewCCC(3).G }},
		{"WBF(3)", func() *graph.Graph { return topology.NewButterfly(3).G }},
	}
}

// TestGenericISTGoldenFamilies: the generic 2-IST constructor must
// produce verified independent spanning trees for every root of every
// golden family.  Verify checks edge validity, spanning, acyclicity,
// and pairwise internal-vertex and edge disjointness of all root paths.
func TestGenericISTGoldenFamilies(t *testing.T) {
	ctx := context.Background()
	for _, fam := range goldenFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			c := fam.build().CSR()
			for root := 0; root < c.N(); root++ {
				tr, err := ist.Build(ctx, c, root, 2)
				if err != nil {
					t.Fatalf("root %d: %v", root, err)
				}
				if tr.K != 2 || tr.N != c.N() || tr.Root != root {
					t.Fatalf("root %d: got (K=%d N=%d Root=%d)", root, tr.K, tr.N, tr.Root)
				}
				if err := ist.Verify(c, tr); err != nil {
					t.Fatalf("root %d: %v", root, err)
				}
			}
		})
	}
}

// TestHypercubeIST: the closed-form constructor must produce k = d
// verified independent trees for every root of Q3..Q6 (exhaustive over
// roots — the hypercube is vertex-transitive, but the test should not
// assume the code exploits that).
func TestHypercubeIST(t *testing.T) {
	for d := 3; d <= 6; d++ {
		c := topology.NewHypercube(d).G.CSR()
		for root := 0; root < 1<<d; root++ {
			tr, err := ist.BuildHypercube(d, root, d)
			if err != nil {
				t.Fatalf("Q%d root %d: %v", d, root, err)
			}
			if err := ist.Verify(c, tr); err != nil {
				t.Fatalf("Q%d root %d: %v", d, root, err)
			}
		}
	}
}

// TestISTDeterminism: same inputs, identical parent tables — the serve
// layer caches and cluster-fills these, so rebuilds must be bitwise
// reproducible.
func TestISTDeterminism(t *testing.T) {
	ctx := context.Background()
	c := superipg.HSN(3, nucleus.Hypercube(2)).MustBuild().Undirected().CSR()
	a, err := ist.Build(ctx, c, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ist.Build(ctx, c, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for tree := 0; tree < 2; tree++ {
		for v := 0; v < c.N(); v++ {
			if a.Parent(tree, v) != b.Parent(tree, v) {
				t.Fatalf("tree %d vertex %d: %d vs %d across rebuilds", tree, v, a.Parent(tree, v), b.Parent(tree, v))
			}
		}
	}
	h1, err := ist.BuildHypercube(6, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ist.BuildHypercube(6, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	for tree := 0; tree < 6; tree++ {
		for v := 0; v < 64; v++ {
			if h1.Parent(tree, v) != h2.Parent(tree, v) {
				t.Fatalf("hypercube tree %d vertex %d differs across rebuilds", tree, v)
			}
		}
	}
}

// TestISTErrors: invalid requests fail loudly with descriptive errors
// instead of returning broken tables.
func TestISTErrors(t *testing.T) {
	ctx := context.Background()
	path4 := graph.FromStream(4, func(edge func(u, v int)) {
		edge(0, 1)
		edge(1, 2)
		edge(2, 3)
	}).CSR()
	disconnected := graph.FromStream(4, func(edge func(u, v int)) {
		edge(0, 1)
		edge(2, 3)
	}).CSR()
	triangle := graph.FromStream(3, func(edge func(u, v int)) {
		edge(0, 1)
		edge(1, 2)
		edge(2, 0)
	}).CSR()
	tiny := graph.FromStream(2, func(edge func(u, v int)) { edge(0, 1) }).CSR()

	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"root out of range", func() error { _, err := ist.Build(ctx, triangle, 3, 2); return err }, "out of range"},
		{"k too large generic", func() error { _, err := ist.Build(ctx, triangle, 0, 3); return err }, "1..2"},
		{"k zero", func() error { _, err := ist.Build(ctx, triangle, 0, 0); return err }, "1..2"},
		{"not 2-connected", func() error { _, err := ist.Build(ctx, path4, 0, 2); return err }, "cut vertex"},
		{"disconnected", func() error { _, err := ist.Build(ctx, disconnected, 0, 2); return err }, "disconnected"},
		{"too few vertices", func() error { _, err := ist.Build(ctx, tiny, 0, 2); return err }, "at least 3"},
		{"hypercube k > d", func() error { _, err := ist.BuildHypercube(4, 0, 5); return err }, "1..4"},
		{"hypercube bad root", func() error { _, err := ist.BuildHypercube(3, 8, 3); return err }, "out of range"},
		{"hypercube bad dim", func() error { _, err := ist.BuildHypercube(0, 0, 1); return err }, "dimension"},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// k = 1 works even on graphs that are merely connected.
	tr, err := ist.Build(ctx, path4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ist.Verify(path4, tr); err != nil {
		t.Fatal(err)
	}
}

// TestISTCancellation: a pre-cancelled context must abort Build.
func TestISTCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := topology.NewHypercube(6).G.CSR()
	if _, err := ist.Build(ctx, c, 0, 2); err == nil {
		t.Fatal("expected context cancellation error")
	}
}

// TestPathToDefensive: PathTo bounds its walk and reports corrupt
// tables rather than spinning.
func TestPathToDefensive(t *testing.T) {
	tr, err := ist.BuildHypercube(3, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.PathTo(3, 0, nil); err == nil {
		t.Fatal("expected out-of-range tree error")
	}
	if _, err := tr.PathTo(0, 8, nil); err == nil {
		t.Fatal("expected out-of-range vertex error")
	}
	buf, err := tr.PathTo(1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 || buf[len(buf)-1] != 0 {
		t.Fatalf("path endpoints wrong: %v", buf)
	}
}
