package ist_test

import (
	"context"
	"testing"

	"ipg/internal/fault"
	"ipg/internal/ist"
	"ipg/internal/topo"
	"ipg/internal/topology"
)

// arcDead reports whether the directed arc u -> w is masked out by the
// fault set, using the CSR arc-index convention shared with the fault
// package (both directions of a failed edge are set).
func arcDead(c *topo.CSR, set *fault.Set, u, w int) bool {
	first := c.RowStart(u)
	for j, x := range c.Row(u) {
		if int(x) == w {
			return topo.Bit(set.ADead, first+j)
		}
	}
	return true // not a graph arc at all
}

// bruteReachable returns the set of vertices that can reach root in the
// alive subgraph, by direct BFS with no IST machinery involved.
func bruteReachable(c *topo.CSR, set *fault.Set, root int) []bool {
	n := c.N()
	reach := make([]bool, n)
	if set.VertexDead(root) {
		return reach
	}
	reach[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		first := c.RowStart(u)
		for j, w := range c.Row(u) {
			if reach[w] || set.VertexDead(int(w)) || topo.Bit(set.ADead, first+j) {
				continue
			}
			reach[w] = true
			queue = append(queue, int(w))
		}
	}
	return reach
}

// treeDelivers reports whether at least one of the k tree paths from v
// to the root survives the fault set intact — pure tree routing, no
// fallback of any kind.
func treeDelivers(c *topo.CSR, set *fault.Set, tr *ist.Trees, v int, buf []int32) (bool, []int32) {
	if set.VertexDead(v) || set.VertexDead(tr.Root) {
		return false, buf
	}
	for t := 0; t < tr.K; t++ {
		var err error
		buf, err = tr.PathTo(t, v, buf[:0])
		if err != nil {
			return false, buf
		}
		ok := true
		for i, x := range buf {
			if set.VertexDead(int(x)) {
				ok = false
				break
			}
			if i+1 < len(buf) && arcDead(c, set, int(x), int(buf[i+1])) {
				ok = false
				break
			}
		}
		if ok {
			return true, buf
		}
	}
	return false, buf
}

// TestISTFaultBoundDeliveryMatchesReachability is the disjointness bound
// made operational: with fewer than k node or link faults, pure tree
// routing over a k-IST family delivers to the root from EXACTLY the
// brute-force reachable set.  At most one of k pairwise internally
// node-disjoint, edge-disjoint paths can die per fault, so some path
// survives from every alive vertex — and a vertex the BFS cannot reach
// is unreachable for every router.  Runs on all 8 golden families with
// the generic k = 2 trees, and on Q6 with the full k = 6 family.
func TestISTFaultBoundDeliveryMatchesReachability(t *testing.T) {
	ctx := context.Background()
	modes := []fault.Mode{fault.Nodes, fault.Links}
	for _, fam := range goldenFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			c := fam.build().CSR()
			n := c.N()
			roots := []int{0, n / 3, n - 1}
			var buf []int32
			for _, root := range roots {
				tr, err := ist.Build(ctx, c, root, 2)
				if err != nil {
					t.Fatal(err)
				}
				for _, mode := range modes {
					for seed := int64(1); seed <= 3; seed++ {
						// count = 1 < k = 2: the bound applies.
						set, err := fault.New(c, fault.Spec{Mode: mode, Count: 1, Seed: seed}, nil)
						if err != nil {
							t.Fatal(err)
						}
						reach := bruteReachable(c, set, root)
						for v := 0; v < n; v++ {
							var got bool
							got, buf = treeDelivers(c, set, tr, v, buf)
							if got != reach[v] {
								t.Fatalf("root %d mode %v seed %d vertex %d: tree delivery %v, brute reachability %v",
									root, mode, seed, v, got, reach[v])
							}
						}
					}
				}
			}
		})
	}

	// Q6 with the full k = 6 hypercube family: up to 5 simultaneous
	// faults still cannot sever all six disjoint paths.
	t.Run("Q6 k=6", func(t *testing.T) {
		t.Parallel()
		c := topology.NewHypercube(6).G.CSR()
		var buf []int32
		for _, root := range []int{0, 21, 63} {
			tr, err := ist.BuildHypercube(6, root, 6)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range modes {
				for count := 1; count <= 5; count++ {
					for seed := int64(1); seed <= 3; seed++ {
						set, err := fault.New(c, fault.Spec{Mode: mode, Count: count, Seed: seed}, nil)
						if err != nil {
							t.Fatal(err)
						}
						reach := bruteReachable(c, set, root)
						for v := 0; v < c.N(); v++ {
							var got bool
							got, buf = treeDelivers(c, set, tr, v, buf)
							if got != reach[v] {
								t.Fatalf("root %d mode %v count %d seed %d vertex %d: tree delivery %v, brute reachability %v",
									root, mode, count, seed, v, got, reach[v])
							}
						}
					}
				}
			}
		}
	})
}
