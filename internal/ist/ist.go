// Package ist constructs independent spanning trees (ISTs): k spanning
// trees rooted at one destination such that for every vertex v the k
// tree paths v -> root are pairwise internally node-disjoint (and
// edge-disjoint).  By Menger's theorem the paths of a k-IST family
// survive any f < k component failures: each failed node or link can
// kill at most one of the k paths, so at least one tree path from every
// surviving vertex stays intact.  This is the structural object that
// turns the fault layer's degradation *measurements* into routes
// *around* the damage.
//
// Two constructors are provided, both deterministic (fixed adjacency
// order, no randomness) and allocation-bounded:
//
//   - BuildHypercube: the closed-form d-IST family of the d-cube.  Tree
//     i detours through dimension i — a vertex whose i-th address bit
//     already differs from the root corrects the cyclically-next wrong
//     bit after i and fixes bit i last; a vertex whose i-th bit agrees
//     flips it first ("wrong way") and then corrects.  Every internal
//     vertex of path i therefore differs from the root in bit i, and
//     the corrected-bit order makes paths of distinct trees meet only
//     at the endpoints.
//
//   - Build: the generic 2-IST of any 2-connected graph via an
//     st-numbering (Even–Tarjan).  With st(root) = 1 and st(t) = n for
//     a neighbor t of the root, tree 1 descends st-numbers to the root
//     and tree 2 ascends them to t and crosses the (t, root) edge;
//     path-1 internals are numbered strictly below v and path-2
//     internals strictly above, so the paths share only v and the root.
//
// The super-IPG and baseline families served by this repository are all
// at least 2-connected, so Build covers every golden family; the
// hypercube family upgrades to the full k = d trees.
package ist

import (
	"context"
	"fmt"

	"ipg/internal/topo"
)

// GenericMaxTrees is the number of independent spanning trees Build
// constructs for an arbitrary 2-connected graph.  Families with more
// structure (the hypercube) have dedicated constructors with larger k.
const GenericMaxTrees = 2

// Trees is a k-IST family for one destination: k spanning trees of the
// same graph, all rooted at Root, whose root paths are pairwise
// internally node-disjoint and edge-disjoint.  The value is immutable
// after construction and safe for concurrent readers.
type Trees struct {
	Root int
	K    int
	N    int
	// parent is the flat parent table: parent[t*N+v] is v's parent in
	// tree t, -1 at the root.
	parent []int32
}

// Parent returns v's parent in tree t (-1 at the root).
func (tr *Trees) Parent(t, v int) int { return int(tr.parent[t*tr.N+v]) }

// PathTo appends the tree-t path v -> Root (inclusive of both ends) to
// buf and returns it.  The walk is bounded by N steps; a longer walk
// means the parent table is corrupt and is reported as an error.
func (tr *Trees) PathTo(t, v int, buf []int32) ([]int32, error) {
	if t < 0 || t >= tr.K || v < 0 || v >= tr.N {
		return buf, fmt.Errorf("ist: path (tree %d, vertex %d) out of range", t, v)
	}
	row := tr.parent[t*tr.N : (t+1)*tr.N]
	cur := v
	for steps := 0; ; steps++ {
		if steps > tr.N {
			return buf, fmt.Errorf("ist: tree %d has a parent cycle at vertex %d", t, v)
		}
		//lint:ignore indextrunc cur indexes row, so cur < tr.N <= topo.MaxVertices (math.MaxInt32)
		buf = append(buf, int32(cur))
		if cur == tr.Root {
			return buf, nil
		}
		cur = int(row[cur])
		if cur < 0 {
			return buf, fmt.Errorf("ist: tree %d dead-ends before the root at vertex %d", t, v)
		}
	}
}

// SizeBytes reports the parent-table footprint, for cache accounting.
func (tr *Trees) SizeBytes() int64 { return int64(len(tr.parent))*4 + 64 }

// BuildHypercube returns the k-IST family of the d-cube rooted at root,
// k <= d, with vertices identified with their d-bit addresses.  Tree i
// routes v -> root by detouring through dimension i: writing
// D = v XOR root,
//
//   - D == 1<<i: the last hop, straight to the root;
//   - bit i of D set: correct the cyclically-next set bit of D after i
//     (bit i itself is corrected last, by the first rule);
//   - bit i of D clear: flip bit i "the wrong way" first.
//
// Every internal vertex of path i has bit i of its offset set, and the
// cyclic correction order gives pairwise internally node-disjoint and
// edge-disjoint root paths (verified exhaustively by the package
// property tests).  Runs in O(k * 2^d * d) time.
func BuildHypercube(d, root, k int) (*Trees, error) {
	if d < 1 || d > 30 {
		return nil, fmt.Errorf("ist: hypercube dimension %d out of range [1, 30]", d)
	}
	n := 1 << d
	if root < 0 || root >= n {
		return nil, fmt.Errorf("ist: root %d out of range for Q%d", root, d)
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("ist: Q%d supports 1..%d independent trees, requested %d", d, d, k)
	}
	tr := &Trees{Root: root, K: k, N: n, parent: make([]int32, k*n)}
	for i := 0; i < k; i++ {
		row := tr.parent[i*n : (i+1)*n]
		row[root] = -1
		for v := 0; v < n; v++ {
			if v == root {
				continue
			}
			D := v ^ root
			var p int
			switch {
			case D == 1<<i:
				p = root
			case D>>i&1 == 1:
				// Correct the cyclically-next set bit after i, leaving
				// bit i for last.
				s := -1
				for off := 1; off < d; off++ {
					b := (i + off) % d
					if D>>b&1 == 1 {
						s = b
						break
					}
				}
				p = v ^ 1<<s
			default:
				p = v ^ 1<<i // detour: flip bit i the wrong way first
			}
			//lint:ignore indextrunc p < n = 1<<d <= 1<<30, well under math.MaxInt32
			row[v] = int32(p)
		}
	}
	return tr, nil
}

// Build returns a k-IST family (k <= GenericMaxTrees) for an arbitrary
// adjacency source rooted at root.  k = 1 is the BFS shortest-path
// tree; k = 2 requires the graph to be 2-connected and uses the
// Even–Tarjan st-numbering.  The construction is deterministic (the
// source's canonical ascending neighbor order drives both the DFS and
// all tie-breaks), runs in O(N + M), and polls ctx at vertex-batch
// granularity so oversized requests stay cancellable.
func Build(ctx context.Context, src topo.Source, root, k int) (*Trees, error) {
	n := src.N()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("ist: root %d out of range [0, %d)", root, n)
	}
	if k < 1 || k > GenericMaxTrees {
		return nil, fmt.Errorf("ist: generic constructor supports 1..%d independent trees, requested %d", GenericMaxTrees, k)
	}
	tr := &Trees{Root: root, K: k, N: n, parent: make([]int32, k*n)}
	if err := bfsTreeInto(ctx, src, root, tr.parent[:n]); err != nil {
		return nil, err
	}
	if k == 1 {
		return tr, nil
	}
	if n < 3 {
		return nil, fmt.Errorf("ist: 2 independent trees need at least 3 vertices, graph has %d", n)
	}
	num, order, err := stNumber(ctx, src, root)
	if err != nil {
		return nil, err
	}
	if err := stTreesInto(ctx, src, root, num, order, tr.parent[:n], tr.parent[n:2*n]); err != nil {
		return nil, err
	}
	return tr, nil
}

// bfsTreeInto fills parent with the BFS shortest-path tree rooted at
// root (lowest-id predecessor on ties, -1 at the root), using pooled
// scratch for the distance vector and queue.
func bfsTreeInto(ctx context.Context, src topo.Source, root int, parent []int32) error {
	n := src.N()
	s := topo.GetScratch(n)
	defer topo.PutScratch(s)
	dist := s.Dist
	nbuf := s.NeighborBuf(src.DegreeBound())
	_, _, nbuf = topo.BFSSourceInto(src, root, dist, s.Queue, nbuf)
	s.Nbuf = nbuf
	for v := 0; v < n; v++ {
		if v&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if v == root {
			parent[v] = -1
			continue
		}
		if dist[v] < 0 {
			return fmt.Errorf("ist: graph is disconnected at vertex %d", v)
		}
		nbuf = src.NeighborsInto(v, nbuf)
		parent[v] = -1
		//lint:ignore ctxflow scans one neighbor row, at most DegreeBound entries; the enclosing vertex loop polls ctx every 1024 iterations
		for _, w := range nbuf {
			if dist[w] == dist[v]-1 {
				parent[v] = w
				break
			}
		}
		if parent[v] < 0 {
			return fmt.Errorf("ist: BFS distance array inconsistent at vertex %d", v)
		}
	}
	s.Nbuf = nbuf
	return nil
}

// stNumber computes an st-numbering of a 2-connected graph with
// num[s] = 1 and num[t] = n for t = the lowest neighbor of s, via the
// Even–Tarjan algorithm: an iterative DFS from s whose first tree edge
// is (s, t) computes preorder and lowpoint numbers, then each further
// vertex is inserted into a doubly-linked list before or after its DFS
// parent according to the sign of its lowpoint vertex.  It returns the
// numbering and the vertex order (order[num[v]-1] = v), or an error if
// the graph is disconnected or has a cut vertex.
func stNumber(ctx context.Context, src topo.Source, s int) (num, order []int32, err error) {
	n := src.N()
	// Flatten the adjacency once so the DFS can resume a vertex's
	// neighbor scan in O(1); implicit sources regenerate rows per call,
	// which would otherwise cost O(deg) per resumption.
	off := make([]int32, n+1)
	adj := make([]int32, 0, n*2)
	nbuf := make([]int32, 0, src.DegreeBound())
	for v := 0; v < n; v++ {
		if v&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		nbuf = src.NeighborsInto(v, nbuf)
		adj = append(adj, nbuf...)
		//lint:ignore indextrunc adjacency arcs number at most N*DegreeBound <= topo arena arc bounds (int32 by CSR construction)
		off[v+1] = int32(len(adj))
	}
	if off[s+1] == off[s] {
		return nil, nil, fmt.Errorf("ist: root %d is isolated", s)
	}

	pre := make([]int32, n) // preorder number, -1 unvisited
	low := make([]int32, n) // lowpoint (a preorder number)
	par := make([]int32, n) // DFS tree parent
	cur := make([]int32, n) // adjacency cursor
	byPre := make([]int32, n)
	//lint:ignore ctxflow O(n) array initialization, a single pass between the polled loops
	for v := range pre {
		pre[v] = -1
		par[v] = -1
	}
	copy(cur, off[:n])
	pre[s], low[s] = 0, 0
	//lint:ignore indextrunc s < n <= topo.MaxVertices (math.MaxInt32)
	byPre[0] = int32(s)
	counter := int32(1)
	stack := make([]int32, 0, 64)
	//lint:ignore indextrunc s < n <= topo.MaxVertices (math.MaxInt32)
	stack = append(stack, int32(s))
	steps := 0
	for len(stack) > 0 {
		if steps&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		steps++
		v := stack[len(stack)-1]
		if cur[v] == off[v+1] {
			stack = stack[:len(stack)-1]
			if p := par[v]; p >= 0 && low[v] < low[p] {
				low[p] = low[v]
			}
			continue
		}
		w := adj[cur[v]]
		cur[v]++
		if pre[w] < 0 {
			par[w] = v
			pre[w], low[w] = counter, counter
			byPre[counter] = w
			counter++
			stack = append(stack, w)
		} else if w != par[v] && pre[w] < low[v] {
			low[v] = pre[w]
		}
	}
	if int(counter) != n {
		return nil, nil, fmt.Errorf("ist: graph is disconnected (%d of %d vertices reached)", counter, n)
	}
	// 2-connectivity: the DFS root must have exactly one child and no
	// non-root vertex may dominate a child subtree (low[c] >= pre[v]).
	t := adj[off[s]] // first tree edge is (s, t): t is the lowest neighbor of s
	for v := 0; v < n; v++ {
		if v&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		p := par[v]
		if p < 0 {
			continue
		}
		if int(p) == s {
			if v != int(t) {
				return nil, nil, fmt.Errorf("ist: vertex %d is a cut vertex (DFS root has multiple children)", s)
			}
			continue
		}
		if low[v] >= pre[p] {
			return nil, nil, fmt.Errorf("ist: vertex %d is a cut vertex; 2 independent trees need a 2-connected graph", p)
		}
	}

	// Even–Tarjan list construction.  sign[v] records on which side of v
	// the next vertex whose lowpoint is v should land; only s starts
	// signed, and the invariant low[v] < pre[par[v]] guarantees every
	// lowpoint vertex consulted below has been signed already.
	next := make([]int32, n)
	prev := make([]int32, n)
	sign := make([]int8, n)
	for v := range next {
		next[v] = -1
		prev[v] = -1
	}
	sign[s] = -1
	next[s] = t
	//lint:ignore indextrunc s < n <= topo.MaxVertices (math.MaxInt32)
	prev[t] = int32(s)
	for i := 2; i < n; i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		v := byPre[i]
		p := par[v]
		lv := byPre[low[v]]
		if sign[lv] == -1 {
			// Insert v immediately before p.
			q := prev[p]
			next[q] = v
			prev[v] = q
			next[v] = p
			prev[p] = v
			sign[p] = 1
		} else {
			// Insert v immediately after p.  p is never the list tail
			// here (children of t always land in the before-branch, as
			// sign[s] stays -1), so q is a real vertex; the self-check
			// below catches any violation of that invariant.
			q := next[p]
			next[p] = v
			prev[v] = p
			next[v] = q
			if q >= 0 {
				prev[q] = v
			}
			sign[p] = -1
		}
	}
	num = make([]int32, n)
	order = make([]int32, n)
	//lint:ignore indextrunc s < n <= topo.MaxVertices (math.MaxInt32)
	at := int32(s)
	//lint:ignore indextrunc n <= topo.MaxVertices (math.MaxInt32)
	for i := int32(0); i < int32(n); i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		if at < 0 {
			return nil, nil, fmt.Errorf("ist: st-number list broke after %d of %d vertices", i, n)
		}
		num[at] = i + 1
		order[i] = at
		at = next[at]
	}
	// Self-check the defining property: every vertex except the first
	// and last has both a lower- and a higher-numbered neighbor, so both
	// trees below have a parent everywhere.  O(N + M), and cheap
	// insurance that a subtle DFS bug cannot ship a wrong table.
	for v := 0; v < n; v++ {
		if v&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		lower, higher := false, false
		for _, w := range adj[off[v]:off[v+1]] {
			if num[w] < num[v] {
				lower = true
			} else if num[w] > num[v] {
				higher = true
			}
		}
		if (!lower && num[v] != 1) || (!higher && int(num[v]) != n) {
			return nil, nil, fmt.Errorf("ist: st-numbering property violated at vertex %d", v)
		}
	}
	return num, order, nil
}

// stTreesInto derives the two independent spanning trees from an
// st-numbering: in t1 every vertex steps to its lowest-numbered lower
// neighbor (descending to the root, number 1); in t2 every vertex steps
// to its lowest higher neighbor (ascending to t, number n), and t
// itself crosses to the root.  The one subtlety: t's t1 parent must
// avoid the root so the (t, root) edge is used by t2 alone, keeping the
// two paths of t edge-disjoint.
func stTreesInto(ctx context.Context, src topo.Source, root int, num, order []int32, t1, t2 []int32) error {
	n := src.N()
	t := int(order[n-1])
	nbuf := make([]int32, 0, src.DegreeBound())
	for v := 0; v < n; v++ {
		if v&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if v == root {
			t1[v] = -1
			t2[v] = -1
			continue
		}
		nbuf = src.NeighborsInto(v, nbuf)
		p1, p2 := int32(-1), int32(-1)
		//lint:ignore ctxflow scans one neighbor row, at most DegreeBound entries; the enclosing vertex loop polls ctx every 1024 iterations
		for _, w := range nbuf {
			if num[w] < num[v] {
				// Lowest-id lower neighbor; t skips the root (see above).
				if (p1 < 0) && !(v == t && int(w) == root) {
					p1 = w
				}
			} else if num[w] > num[v] && p2 < 0 {
				p2 = w
			}
		}
		if v == t {
			//lint:ignore indextrunc root < n <= topo.MaxVertices (math.MaxInt32)
			p2 = int32(root)
		}
		if p1 < 0 || p2 < 0 {
			return fmt.Errorf("ist: st-numbering left vertex %d without both tree parents", v)
		}
		t1[v] = p1
		t2[v] = p2
	}
	return nil
}

// Verify checks the full IST contract of tr against the adjacency
// source it was built from: every parent edge exists in the graph, each
// tree spans (every vertex reaches the root without cycles), and for
// every vertex the k root paths are pairwise internally node-disjoint
// and edge-disjoint.  It is O(K^2 * N * diameter) and meant for tests
// and offline validation, not serving paths.
func Verify(src topo.Source, tr *Trees) error {
	n := src.N()
	if n != tr.N {
		return fmt.Errorf("ist: tree family built for %d vertices, source has %d", tr.N, n)
	}
	nbuf := make([]int32, 0, src.DegreeBound())
	for t := 0; t < tr.K; t++ {
		for v := 0; v < n; v++ {
			p := tr.Parent(t, v)
			if v == tr.Root {
				if p != -1 {
					return fmt.Errorf("ist: tree %d gives the root a parent", t)
				}
				continue
			}
			if p < 0 || p >= n {
				return fmt.Errorf("ist: tree %d vertex %d has parent %d out of range", t, v, p)
			}
			nbuf = src.NeighborsInto(v, nbuf)
			found := false
			for _, w := range nbuf {
				if int(w) == p {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("ist: tree %d edge (%d, %d) is not a graph edge", t, v, p)
			}
		}
	}
	// Spanning + disjointness, per source vertex.
	//lint:ignore adjbuild k per-tree root-path buffers, not an adjacency table
	paths := make([][]int32, tr.K)
	seen := make(map[int32]int, 64)     // internal vertex -> tree
	edges := make(map[[2]int32]int, 64) // canonical edge -> tree
	for v := 0; v < n; v++ {
		for t := 0; t < tr.K; t++ {
			var err error
			paths[t], err = tr.PathTo(t, v, paths[t][:0])
			if err != nil {
				return err
			}
		}
		if v == tr.Root {
			continue
		}
		clear(seen)
		clear(edges)
		for t := 0; t < tr.K; t++ {
			p := paths[t]
			for i, x := range p {
				if i > 0 && i < len(p)-1 {
					if prevT, dup := seen[x]; dup {
						return fmt.Errorf("ist: paths of trees %d and %d from vertex %d share internal vertex %d", prevT, t, v, x)
					}
					seen[x] = t
				}
				if i < len(p)-1 {
					a, b := x, p[i+1]
					if a > b {
						a, b = b, a
					}
					e := [2]int32{a, b}
					if prevT, dup := edges[e]; dup {
						return fmt.Errorf("ist: paths of trees %d and %d from vertex %d share edge (%d, %d)", prevT, t, v, a, b)
					}
					edges[e] = t
				}
			}
		}
	}
	return nil
}
