// Package emul implements the single-dimension-communication (SDC)
// emulation of homogeneous product networks (HPNs) on super-IPGs
// (Theorem 3.1 of the paper) and the associated embedding measurements
// (dilation and congestion, Corollaries 3.2-3.4).
//
// A super-IPG over nucleus G with n generators emulates HPN(l, G) by
// mapping HPN dimension j (1-based) to the generator word
//
//	S_{j1}  N_{j0}  S_{j1}^{-1}
//
// where j0 = 1 + (j-1 mod n), j1 = 1 + floor((j-1)/n), S_{j1} is the
// super-generator word bringing group j1 to the leftmost position and
// N_{j0} is the j0-th nucleus generator.  For dimensions of the first
// group (j1 = 1) the word is just N_{j0}.
package emul

import (
	"fmt"

	"ipg/internal/ipg"
	"ipg/internal/perm"
	"ipg/internal/superipg"
	"ipg/internal/topo"
)

// DimensionWord returns the generator word (global generator indices into
// w.Gens()) that emulates transmissions along dimension j of HPN(l, G),
// j in 1..l*n.
func DimensionWord(w *superipg.Network, j int) ([]int, error) {
	n := w.NumNucGens()
	if j < 1 || j > w.L*n {
		return nil, fmt.Errorf("emul: dimension %d out of range 1..%d", j, w.L*n)
	}
	j0 := 1 + (j-1)%n
	j1 := 1 + (j-1)/n
	if j1 == 1 {
		return []int{j0 - 1}, nil
	}
	var word []int
	word = append(word, w.BringToFront(j1)...)
	word = append(word, j0-1)
	word = append(word, w.RestoreFromFront(j1)...)
	return word, nil
}

// DimensionWordNames renders the word of DimensionWord with the paper's
// generator names, e.g. ["T3", "N:d3", "T3"].
func DimensionWordNames(w *superipg.Network, j int) ([]string, error) {
	word, err := DimensionWord(w, j)
	if err != nil {
		return nil, err
	}
	gens := w.Gens()
	names := make([]string, len(word))
	for i, gi := range word {
		names[i] = gens[gi].Name
	}
	return names, nil
}

// HPNNeighbor returns the label of the dimension-j neighbor of x in the
// emulated HPN(l, G): group j1's content with nucleus generator j0 applied,
// all other groups unchanged.
func HPNNeighbor(w *superipg.Network, x perm.Label, j int) (perm.Label, error) {
	n := w.NumNucGens()
	if j < 1 || j > w.L*n {
		return nil, fmt.Errorf("emul: dimension %d out of range 1..%d", j, w.L*n)
	}
	j0 := 1 + (j-1)%n
	j1 := 1 + (j-1)/n
	m := w.SymbolLen()
	out := x.Clone()
	group := out.Group(m, j1-1)
	ng := w.Nuc.Gens[j0-1].P.Apply(perm.Label(group))
	copy(group, ng)
	return out, nil
}

// VerifyDimension checks that applying DimensionWord(j) to label x lands
// exactly on the HPN dimension-j neighbor of x.
func VerifyDimension(w *superipg.Network, x perm.Label, j int) error {
	word, err := DimensionWord(w, j)
	if err != nil {
		return err
	}
	want, err := HPNNeighbor(w, x, j)
	if err != nil {
		return err
	}
	got := applyWord(w, x, j, word)
	if !got.Equal(want) {
		return fmt.Errorf("emul: %s dimension %d: word lands on %v, want %v",
			w.Name(), j, got, want)
	}
	return nil
}

func applyWord(w *superipg.Network, x perm.Label, j int, word []int) perm.Label {
	gens := w.Gens()
	cur := x.Clone()
	next := make(perm.Label, len(x))
	for _, gi := range word {
		gens[gi].P.ApplyInto(next, cur)
		cur, next = next, cur
	}
	return cur
}

// SlowdownSDC returns the SDC-model emulation slowdown factor of
// Theorem 3.1: the maximum word length over all HPN dimensions (t + 1).
// For HSN, complete-CN, and SFN this is 3 (Corollary 3.2).
func SlowdownSDC(w *superipg.Network) int {
	max := 0
	for j := 1; j <= w.L*w.NumNucGens(); j++ {
		word, err := DimensionWord(w, j)
		if err != nil {
			panic(err) // unreachable: j is in range
		}
		if len(word) > max {
			max = len(word)
		}
	}
	return max
}

// DilationResult reports the measured embedding dilation of HPN(l, G) into
// the super-IPG: the maximum, over HPN edges, of the distance in the
// super-IPG between the edge's endpoints (the embedding is the identity on
// labels).
type DilationResult struct {
	Dilation    int
	PerDim      []int // max dilation per HPN dimension (index j-1)
	WordBound   int   // the word-length upper bound (slowdown factor)
	SampleNodes int
}

// MeasureDilation computes the dilation by BFS from each of the sample
// nodes (all nodes if sample <= 0 or >= N) in the materialized graph.
func MeasureDilation(w *superipg.Network, g *ipg.Graph, sample int) (DilationResult, error) {
	u := g.Undirected()
	nd := w.L * w.NumNucGens()
	res := DilationResult{
		PerDim:    make([]int, nd),
		WordBound: SlowdownSDC(w),
	}
	n := g.N()
	step := 1
	if sample > 0 && sample < n {
		step = n / sample
	}
	for v := 0; v < n; v += step {
		dist := u.BFS(v)
		res.SampleNodes++
		for j := 1; j <= nd; j++ {
			nb, err := HPNNeighbor(w, g.Label(v), j)
			if err != nil {
				return res, err
			}
			id := g.NodeID(nb)
			if id < 0 {
				return res, fmt.Errorf("emul: HPN neighbor %v not a node of %s", nb, w.Name())
			}
			if id == v {
				continue // HPN self-loop cannot occur; defensive
			}
			d := int(dist[id])
			if d > res.PerDim[j-1] {
				res.PerDim[j-1] = d
			}
			if d > res.Dilation {
				res.Dilation = d
			}
		}
	}
	return res, nil
}

// TotalCongestion returns the maximum, over undirected super-IPG links, of
// the number of embedded HPN edges (across ALL dimensions) whose emulation
// paths traverse the link — the congestion quantity of Section 4.1, which
// for an HSN(l,Q_n) is max(2n, l): Theta(sqrt(log N)) when l = Theta(n),
// "the smallest possible for a degree-Theta(sqrt(log N)) network to embed
// a degree-log2(N) network".
// The graph is consumed through the port-labelled topo.Ported view (port
// gi = generator gi; a port returning the node itself is a self-loop), so
// any Ported implementation of the family can be measured.
func TotalCongestion(w *superipg.Network, g topo.Ported) (int, error) {
	use := make(map[[2]int32]int)
	for j := 1; j <= w.L*w.NumNucGens(); j++ {
		word, err := DimensionWord(w, j)
		if err != nil {
			return 0, err
		}
		for v := 0; v < g.N(); v++ {
			//lint:ignore indextrunc node ids are < g.N(), bounded by the family builders
			cur := int32(v)
			for _, gi := range word {
				next := g.Port(int(cur), gi)
				if next == cur {
					continue
				}
				a, b := cur, next
				if a > b {
					a, b = b, a
				}
				use[[2]int32{a, b}]++
				cur = next
			}
		}
	}
	max := 0
	for _, c := range use {
		if c > max {
			max = c
		}
	}
	// Each undirected HPN edge contributes a traversal from both endpoints.
	return (max + 1) / 2, nil
}

// CongestionPerDimension returns, for HPN dimension j, the maximum number
// of embedded HPN dimension-j edges whose emulation paths traverse any
// single undirected link of the super-IPG (Corollary 3.3's discussion:
// this is 2 for HSN, complete-CN, SFN).
func CongestionPerDimension(w *superipg.Network, g topo.Ported, j int) (int, error) {
	word, err := DimensionWord(w, j)
	if err != nil {
		return 0, err
	}
	use := make(map[[2]int32]int)
	for v := 0; v < g.N(); v++ {
		//lint:ignore indextrunc node ids are < g.N(), bounded by the family builders
		cur := int32(v)
		for _, gi := range word {
			next := g.Port(int(cur), gi)
			if next == cur {
				// The generator fixes this label (repeated symbols): no
				// physical transmission happens on this step.
				continue
			}
			a, b := cur, next
			if a > b {
				a, b = b, a
			}
			use[[2]int32{a, b}]++
			cur = next
		}
	}
	// Each undirected HPN edge was traversed from both endpoints; a link
	// used once in each direction by the same HPN edge carries that edge
	// once per direction.  The paper counts congestion as embedded paths
	// per link; we count directed traversals and halve, conservatively
	// rounding up.
	max := 0
	for _, c := range use {
		if c > max {
			max = c
		}
	}
	return (max + 1) / 2, nil
}
