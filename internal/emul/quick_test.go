package emul

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipg/internal/nucleus"
	"ipg/internal/perm"
	"ipg/internal/superipg"
)

// TestQuickDimensionWordsCorrect property-checks Theorem 3.1 emulation
// across random families, sizes, dimensions, and labels: the dimension
// word always lands on the true HPN neighbor.
func TestQuickDimensionWordsCorrect(t *testing.T) {
	f := func(seed int64, famRaw, lRaw, kRaw, jRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := int(lRaw%4) + 2
		k := int(kRaw%3) + 1
		nuc := nucleus.Hypercube(k)
		var w *superipg.Network
		switch famRaw % 4 {
		case 0:
			w = superipg.HSN(l, nuc)
		case 1:
			w = superipg.RingCN(l, nuc)
		case 2:
			w = superipg.CompleteCN(l, nuc)
		default:
			w = superipg.SFN(l, nuc)
		}
		j := int(jRaw)%(l*k) + 1
		// Random reachable label: random nucleus content per group.
		m := w.SymbolLen()
		lbl := make(perm.Label, 0, m*l)
		for i := 0; i < l; i++ {
			a := rng.Intn(w.Nuc.M)
			gl, err := w.Nuc.LabelOf(a)
			if err != nil {
				return false
			}
			lbl = append(lbl, gl...)
		}
		return VerifyDimension(w, lbl, j) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Error(err)
	}
}

// TestQuickSlowdownBounds property-checks that the SDC slowdown equals
// 2*|bring| + 1 for every family and size.
func TestQuickSlowdownBounds(t *testing.T) {
	f := func(famRaw, lRaw uint8) bool {
		l := int(lRaw%5) + 2
		nuc := nucleus.Hypercube(2)
		var w *superipg.Network
		switch famRaw % 4 {
		case 0:
			w = superipg.HSN(l, nuc)
		case 1:
			w = superipg.RingCN(l, nuc)
		case 2:
			w = superipg.CompleteCN(l, nuc)
		default:
			w = superipg.SFN(l, nuc)
		}
		maxBring := 0
		for i := 2; i <= l; i++ {
			if b := len(w.BringToFront(i)); b > maxBring {
				maxBring = b
			}
		}
		return SlowdownSDC(w) == 2*maxBring+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
