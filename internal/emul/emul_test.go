package emul

import (
	"strings"
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/perm"
	"ipg/internal/superipg"
)

// TestSection31Dim11Table reproduces the Section 3.1 example: emulating the
// dimension-11 links of a 16-cube (generator (21,22)) on five super-IPGs
// with the 32-symbol seed 01 01 ... 01.
func TestSection31Dim11Table(t *testing.T) {
	cases := []struct {
		net       *superipg.Network
		wantNames string // "," joined; rotations may differ from the paper's
		// printed word by direction but must realize the same map
	}{
		{superipg.HCN(8), "T2,N:d3,T2"},
		{superipg.HSN(4, nucleus.Hypercube(4)), "T3,N:d3,T3"},
		{superipg.RCC(2, nucleus.Hypercube(4)), "T2,N:a.d3,T2"},
		{superipg.RingCN(4, nucleus.Hypercube(4)), "L1,L1,N:d3,R1,R1"},
		{superipg.CompleteCN(4, nucleus.Hypercube(4)), "L2,N:d3,L2"},
	}
	// Expected action: transpose global symbols 21 and 22 (1-based).
	want := perm.Transposition(32, 20, 21)
	for _, c := range cases {
		if len(c.net.Seed()) != 32 {
			t.Fatalf("%s: seed length %d, want 32", c.net.Name(), len(c.net.Seed()))
		}
		names, err := DimensionWordNames(c.net, 11)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Join(names, ","); got != c.wantNames {
			t.Errorf("%s dim-11 word = %s, want %s", c.net.Name(), got, c.wantNames)
		}
		// The word must realize exactly the 16-cube dimension-11 generator.
		word, _ := DimensionWord(c.net, 11)
		composed := perm.Identity(32)
		for _, gi := range word {
			composed = composed.Then(c.net.Gens()[gi].P)
		}
		if !composed.Equal(want) {
			t.Errorf("%s dim-11 word realizes %v, want transposition (21,22)", c.net.Name(), composed)
		}
	}
}

func TestVerifyDimensionAllFamilies(t *testing.T) {
	nets := []*superipg.Network{
		superipg.HSN(3, nucleus.Hypercube(2)),
		superipg.RingCN(4, nucleus.Hypercube(2)),
		superipg.CompleteCN(3, nucleus.Hypercube(2)),
		superipg.SFN(3, nucleus.Hypercube(2)),
		superipg.HSN(2, nucleus.GeneralizedHypercube(4, 4)),
		superipg.CompleteCN(3, nucleus.Complete(5)),
	}
	for _, w := range nets {
		g := w.MustBuild()
		nd := w.L * w.NumNucGens()
		for j := 1; j <= nd; j++ {
			// Verify on a spread of node labels.
			for v := 0; v < g.N(); v += 1 + g.N()/17 {
				if err := VerifyDimension(w, g.Label(v), j); err != nil {
					t.Fatalf("%v", err)
				}
			}
		}
	}
}

func TestCorollary32Slowdown(t *testing.T) {
	// Slowdown factor 3 for HSN, complete-CN, SFN (Corollary 3.2).
	nuc := nucleus.Hypercube(2)
	for _, w := range []*superipg.Network{
		superipg.HSN(4, nuc), superipg.CompleteCN(4, nuc), superipg.SFN(4, nuc),
	} {
		if s := SlowdownSDC(w); s != 3 {
			t.Errorf("%s: SDC slowdown = %d, want 3", w.Name(), s)
		}
	}
	// ring-CN must rotate step by step: slowdown 1 + 2*floor(l/2).
	if s := SlowdownSDC(superipg.RingCN(4, nuc)); s != 5 {
		t.Errorf("ring-CN(4): slowdown = %d, want 5", s)
	}
	if s := SlowdownSDC(superipg.RingCN(3, nuc)); s != 3 {
		t.Errorf("ring-CN(3): slowdown = %d, want 3", s)
	}
}

func TestCorollary33Dilation(t *testing.T) {
	// Dilation 3 embedding of HPN(l,G) in HSN/complete-CN/SFN.
	nuc := nucleus.Hypercube(2)
	for _, w := range []*superipg.Network{
		superipg.HSN(3, nuc), superipg.CompleteCN(3, nuc), superipg.SFN(3, nuc),
	} {
		g := w.MustBuild()
		res, err := MeasureDilation(w, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dilation > 3 {
			t.Errorf("%s: dilation %d > 3", w.Name(), res.Dilation)
		}
		if res.Dilation < 2 {
			t.Errorf("%s: dilation %d implausibly small", w.Name(), res.Dilation)
		}
		if res.WordBound != 3 {
			t.Errorf("%s: word bound %d", w.Name(), res.WordBound)
		}
		// First-group dimensions embed with dilation 1.
		for j := 1; j <= w.NumNucGens(); j++ {
			if res.PerDim[j-1] != 1 {
				t.Errorf("%s: dim %d dilation %d, want 1", w.Name(), j, res.PerDim[j-1])
			}
		}
	}
}

func TestCongestionHSN(t *testing.T) {
	// Section 3.1: congestion for embedding the links of one HPN dimension
	// in an HSN is 2 (enabling slowdown ~2 with wormhole routing).
	w := superipg.HSN(2, nucleus.Hypercube(3))
	g := w.MustBuild()
	for j := w.NumNucGens() + 1; j <= 2*w.NumNucGens(); j++ {
		c, err := CongestionPerDimension(w, g, j)
		if err != nil {
			t.Fatal(err)
		}
		if c != 2 {
			t.Errorf("HSN dim %d congestion = %d, want 2", j, c)
		}
	}
	// First-group dimensions are direct links: congestion 1.
	c, err := CongestionPerDimension(w, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("dim 1 congestion = %d, want 1", c)
	}
}

func TestTotalCongestion(t *testing.T) {
	// Section 4.1: total congestion for embedding the whole nl-cube in an
	// HSN(l,Q_n) is max(2n, l): the T_i links carry 2 edges per dimension
	// of group i (2n), the N_k links one edge per group (l).
	cases := []struct {
		l, n int
	}{{2, 2}, {2, 3}, {3, 2}, {4, 2}, {6, 1}}
	for _, c := range cases {
		w := superipg.HSN(c.l, nucleus.Hypercube(c.n))
		g := w.MustBuild()
		got, err := TotalCongestion(w, g)
		if err != nil {
			t.Fatal(err)
		}
		want := 2 * c.n
		if c.l > want {
			want = c.l
		}
		if got != want {
			t.Errorf("HSN(%d,Q%d): total congestion %d, want max(2n,l) = %d", c.l, c.n, got, want)
		}
	}
}

func TestDimensionWordErrors(t *testing.T) {
	w := superipg.HSN(2, nucleus.Hypercube(2))
	if _, err := DimensionWord(w, 0); err == nil {
		t.Error("dimension 0 should error")
	}
	if _, err := DimensionWord(w, 5); err == nil {
		t.Error("dimension past l*n should error")
	}
	if _, err := HPNNeighbor(w, w.Seed(), 99); err == nil {
		t.Error("HPNNeighbor out of range should error")
	}
}

func TestHPNNeighborInvolution(t *testing.T) {
	// For binary nuclei the HPN neighbor relation is an involution.
	w := superipg.HSN(3, nucleus.Hypercube(2))
	g := w.MustBuild()
	for v := 0; v < g.N(); v += 7 {
		for j := 1; j <= w.L*w.NumNucGens(); j++ {
			nb, err := HPNNeighbor(w, g.Label(v), j)
			if err != nil {
				t.Fatal(err)
			}
			back, err := HPNNeighbor(w, nb, j)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(g.Label(v)) {
				t.Fatalf("HPN neighbor not involutive at v=%d j=%d", v, j)
			}
		}
	}
}
