package experiments

import (
	"fmt"

	"ipg/internal/analysis"
	"ipg/internal/ascend"
	"ipg/internal/mcmp"
	"ipg/internal/nucleus"
	"ipg/internal/schedule"
	"ipg/internal/superipg"
)

// runDesignSweep explores the HSN design space the paper discusses in
// Section 4.1: for a fixed machine size N = 2^(l*n), small l (big chips)
// maximizes bisection bandwidth and throughput — "when l = O(1), the
// throughput ... will be higher than that of a hypercube by a factor of
// Theta(log N)" — while l = Theta(n) balances the degree and gives the
// asymptotically optimal all-port emulation of Corollary 3.9.  The sweep
// materializes every HSN(l, Q_n) with l*n = 12 and measures degree,
// intercluster metrics, bisection bandwidth (unit chip capacity, equal
// per-node budget w=1), ascend steps, and the all-port schedule length.
func runDesignSweep(scale Scale) (*Result, error) {
	res := &Result{ID: "E22/design-sweep", Title: "HSN design space at fixed N", Source: "Sections 4.1/4.2, Cor 3.9"}
	type cfg struct{ l, n int }
	cfgs := []cfg{{2, 6}, {3, 4}, {4, 3}, {6, 2}}
	logN := 12
	if scale == Paper {
		// Same sweep: N = 4096 is already the paper's machine size.
		logN = 12
	}
	tb := analysis.NewTable(fmt.Sprintf("HSN(l, Q_n) with l*n = %d (N = %d), w = 1", logN, 1<<logN),
		"l", "n", "M", "degree", "ic degree", "B_B (Cor 4.8)", "ascend steps", "all-port T")
	type row struct {
		l       int
		bb      float64
		ascendC int
		allport int
		icDeg   float64
	}
	var rows []row
	for _, c := range cfgs {
		w := superipg.HSN(c.l, nucleus.Hypercube(c.n))
		bb := mcmp.HSNBisectionBandwidth(1<<logN, w.M(), c.l, 1)
		icDeg := float64(c.l-1) * float64(w.M()-1) / float64(w.M())
		asc := ascend.TheoreticalAscendComm(w)
		s, err := schedule.Build(w)
		if err != nil {
			return nil, err
		}
		if err := s.Verify(); err != nil {
			return nil, err
		}
		tb.AddRow(c.l, c.n, w.M(), c.n+c.l-1, icDeg, bb, asc, s.T)
		rows = append(rows, row{l: c.l, bb: bb, ascendC: asc, allport: s.T, icDeg: icDeg})

		// Spot-verify the closed forms on the materialized graph for the
		// configurations that are cheap to build.
		if c.l >= 3 {
			g, err := w.Build()
			if err != nil {
				return nil, err
			}
			cl, err := mcmp.ClusterSuperIPG(w, g)
			if err != nil {
				return nil, err
			}
			side, err := mcmp.SuperIPGBisection(w, g, cl)
			if err != nil {
				return nil, err
			}
			a, err := mcmp.Analyze(cl, side, float64(cl.M))
			if err != nil {
				return nil, err
			}
			res.check(fmt.Sprintf("HSN(%d,Q%d) measured B_B matches closed form", c.l, c.n),
				fmt.Sprintf("%.4g", bb), fmt.Sprintf("%.4g", a.BisectionBandwidth),
				approxEq(a.BisectionBandwidth, bb, 1e-9))
		}
	}
	res.addTable(tb)
	// Monotonicity: bisection bandwidth strictly increases as l decreases.
	for i := 1; i < len(rows); i++ {
		res.check(fmt.Sprintf("B_B(l=%d) > B_B(l=%d)", rows[i-1].l, rows[i].l),
			"small l maximizes bandwidth (Sec 4.1)",
			fmt.Sprintf("%.4g > %.4g", rows[i-1].bb, rows[i].bb),
			rows[i-1].bb > rows[i].bb)
	}
	// l = O(1) advantage over the hypercube approaches Theta(log N).
	cubeBB := mcmp.HypercubeBisectionBandwidth(1<<logN, 1<<6, 1)
	res.check("HSN(2,Q6) vs hypercube with 64-node chips",
		"Theta(log N) advantage at l = O(1)",
		fmt.Sprintf("%.4g vs %.4g (%.2fx)", rows[0].bb, cubeBB, rows[0].bb/cubeBB),
		rows[0].bb > 2.5*cubeBB)
	// All-port schedule length max(2n, l+1) is minimized near l ~ 2n-1;
	// the sweep's best is the balanced configuration (Cor 3.9's regime).
	best := rows[0]
	for _, r := range rows[1:] {
		if r.allport < best.allport {
			best = r
		}
	}
	res.check("balanced l minimizes all-port slowdown",
		"l = Theta(n) asymptotically optimal (Cor 3.9)",
		fmt.Sprintf("min T at l=%d", best.l), best.l == 4 || best.l == 6)
	return res, nil
}
