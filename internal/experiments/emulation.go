package experiments

import (
	"fmt"
	"strings"

	"ipg/internal/analysis"
	"ipg/internal/emul"
	"ipg/internal/nucleus"
	"ipg/internal/perm"
	"ipg/internal/superipg"
)

// runDim11 reproduces the Section 3.1 example: the generator sequences
// emulating the dimension-11 links of a 16-cube (transposition (21,22)) on
// five super-IPGs sharing the 32-symbol seed 01 01 ... 01.
func runDim11(Scale) (*Result, error) {
	res := &Result{ID: "E3/dim11", Title: "dimension-11 emulation of the 16-cube", Source: "Section 3.1"}
	cases := []struct {
		net   *superipg.Network
		paper string
	}{
		{superipg.HCN(8), "T_{2,16}, (5,6), T_{2,16}"},
		{superipg.HSN(4, nucleus.Hypercube(4)), "T_{3,8}, (5,6), T_{3,8}"},
		{superipg.RCC(2, nucleus.Hypercube(4)), "T_{2,16}, (5,6), T_{2,16}"},
		{superipg.RingCN(4, nucleus.Hypercube(4)), "R1 R1, (5,6), L1 L1"},
		{superipg.CompleteCN(4, nucleus.Hypercube(4)), "R_{2,8}, (5,6), L_{2,8}"},
	}
	want := perm.Transposition(32, 20, 21)
	tb := analysis.NewTable("Generator words emulating dimension 11", "network", "paper word", "this repo", "action ok")
	for _, c := range cases {
		names, err := emul.DimensionWordNames(c.net, 11)
		if err != nil {
			return nil, err
		}
		word, err := emul.DimensionWord(c.net, 11)
		if err != nil {
			return nil, err
		}
		composed := perm.Identity(32)
		for _, gi := range word {
			composed = composed.Then(c.net.Gens()[gi].P)
		}
		ok := composed.Equal(want)
		tb.AddRow(c.net.Name(), c.paper, strings.Join(names, " "), ok)
		res.check(fmt.Sprintf("%s realizes transposition (21,22)", c.net.Name()),
			c.paper, strings.Join(names, " "), ok)
	}
	res.addTable(tb)
	return res, nil
}

// runSDC reproduces Theorem 3.1 and Corollaries 3.2/3.3: SDC-model
// emulation slowdown 3 and embedding dilation <= 3 for HSN, complete-CN,
// and SFN, with per-dimension verification of the emulation words.
func runSDC(scale Scale) (*Result, error) {
	res := &Result{ID: "E4/sdc", Title: "SDC emulation slowdown and dilation", Source: "Thm 3.1, Cor 3.2/3.3"}
	nuc := nucleus.Hypercube(2)
	if scale == Paper {
		nuc = nucleus.Hypercube(3)
	}
	nets := []*superipg.Network{
		superipg.HSN(3, nuc),
		superipg.CompleteCN(3, nuc),
		superipg.SFN(3, nuc),
		superipg.RingCN(4, nuc),
	}
	tb := analysis.NewTable("SDC emulation of HPN(l,G)", "network", "slowdown t+1", "dilation", "dim-congestion")
	for _, w := range nets {
		g, err := w.Build()
		if err != nil {
			return nil, err
		}
		// Verify every dimension word on a sample of labels.
		for j := 1; j <= w.L*w.NumNucGens(); j++ {
			for v := 0; v < g.N(); v += 1 + g.N()/13 {
				if err := emul.VerifyDimension(w, g.Label(v), j); err != nil {
					return nil, err
				}
			}
		}
		slow := emul.SlowdownSDC(w)
		dil, err := emul.MeasureDilation(w, g, 64)
		if err != nil {
			return nil, err
		}
		maxCong := 0
		for j := 1; j <= w.L*w.NumNucGens(); j++ {
			c, err := emul.CongestionPerDimension(w, g, j)
			if err != nil {
				return nil, err
			}
			if c > maxCong {
				maxCong = c
			}
		}
		tb.AddRow(w.Name(), slow, dil.Dilation, maxCong)
		if w.Family == "HSN" {
			// Section 4.1: total congestion (all dimensions at once) is
			// max(2n, l) = Theta(sqrt(log N)) at l = Theta(n).
			total, err := emul.TotalCongestion(w, g)
			if err != nil {
				return nil, err
			}
			want := 2 * w.NumNucGens()
			if w.L > want {
				want = w.L
			}
			res.check(w.Name()+" total congestion", fmt.Sprintf("max(2n,l) = %d (Theta(sqrt(log N)))", want),
				fmt.Sprint(total), total == want)
		}
		if w.Family == "ring-CN" {
			res.check(w.Name()+" slowdown", "t+1 (> 3 for ring-CN)",
				fmt.Sprint(slow), slow == 1+2*((w.L)/2))
			continue
		}
		res.check(w.Name()+" SDC slowdown", "3 (Cor 3.2)", fmt.Sprint(slow), slow == 3)
		res.check(w.Name()+" embedding dilation", "3 (Cor 3.3)", fmt.Sprint(dil.Dilation),
			dil.Dilation >= 2 && dil.Dilation <= 3)
		res.check(w.Name()+" per-dimension congestion", "2 (Sec 3.1 discussion)",
			fmt.Sprint(maxCong), maxCong <= 2)
	}
	res.addTable(tb)
	return res, nil
}
