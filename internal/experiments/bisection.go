package experiments

import (
	"fmt"
	"math/rand"

	"ipg/internal/analysis"
	"ipg/internal/mcmp"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topology"
)

// hsnAnalysis builds, clusters, and analyses an HSN/SFN instance under
// unit chip capacity with per-node budget w = 1.
func superIPGAnalysis(w *superipg.Network) (mcmp.Analysis, *mcmp.Clustered, error) {
	g, err := w.Build()
	if err != nil {
		return mcmp.Analysis{}, nil, err
	}
	c, err := mcmp.ClusterSuperIPG(w, g)
	if err != nil {
		return mcmp.Analysis{}, nil, err
	}
	side, err := mcmp.SuperIPGBisection(w, g, c)
	if err != nil {
		return mcmp.Analysis{}, nil, err
	}
	a, err := mcmp.Analyze(c, side, float64(c.M))
	return a, c, err
}

// runBisectionHSN reproduces Theorem 4.7 and Corollary 4.8: the HSN/SFN
// bisection bandwidth closed form wNM/(4(l-1)(M-1)), its agreement with the
// structured group-2 partition, and the tightness of the wN/(4a) lower
// bound.  A greedy-refinement search validates that no smaller bisection is
// readily found.
func runBisectionHSN(scale Scale) (*Result, error) {
	res := &Result{ID: "E10/bisection-hsn", Title: "HSN/SFN bisection bandwidth", Source: "Thm 4.7, Cor 4.8"}
	type cfg struct {
		w    *superipg.Network
		name string
	}
	k := 2
	if scale == Paper {
		k = 4
	}
	cfgs := []cfg{
		{superipg.HSN(3, nucleus.Hypercube(k)), "HSN"},
		{superipg.SFN(3, nucleus.Hypercube(k)), "SFN"},
		{superipg.HSN(2, nucleus.Hypercube(k)), "HSN"},
	}
	tb := analysis.NewTable("Bisection bandwidth, unit chip capacity (w=1)",
		"network", "N", "width", "B_B measured", "Cor 4.8", "lower bound wN/4a")
	for _, c := range cfgs {
		a, clus, err := superIPGAnalysis(c.w)
		if err != nil {
			return nil, err
		}
		closed := mcmp.HSNBisectionBandwidth(a.N, a.M, c.w.L, 1)
		lb := mcmp.LowerBoundBisectionBandwidth(a.N, 1, a.AvgInterclusterDst)
		tb.AddRow(c.w.Name(), a.N, a.BisectionWidth, a.BisectionBandwidth, closed, lb)
		res.check(c.w.Name()+" closed form", fmt.Sprintf("%.4g", closed),
			fmt.Sprintf("%.4g", a.BisectionBandwidth), approxEq(closed, a.BisectionBandwidth, 1e-9))
		res.check(c.w.Name()+" above Thm 4.7 bound", fmt.Sprintf(">= %.4g", lb),
			fmt.Sprintf("%.4g", a.BisectionBandwidth), a.BisectionBandwidth >= lb-1e-9)
		res.check(c.w.Name()+" structured cut = N/4", fmt.Sprint(a.N/4),
			fmt.Sprint(a.BisectionWidth), a.BisectionWidth == a.N/4)
		// Greedy local search must not beat the structured bisection by a
		// large margin (upper-bound sanity check on small instances).
		if a.N <= 512 {
			u := clus.G
			r := rand.New(rand.NewSource(17))
			_, refined := u.BestBisection(r, 4, 200)
			// refined counts all links (on-chip too), so it can only be
			// >= the off-chip structured cut if the structured partition
			// is near-minimal among chip-respecting cuts.
			res.check(c.w.Name()+" refinement sanity", "no far smaller cut",
				fmt.Sprintf("refined(all-links)=%d vs structured(off-chip)=%d", refined, a.BisectionWidth),
				refined >= a.BisectionWidth/2)
			// Spectral (Fiedler) lower bound on the all-links bisection
			// width must be consistent with the refined cut.
			spec, err := u.SpectralBisectionLowerBound(5)
			if err != nil {
				return nil, err
			}
			res.check(c.w.Name()+" spectral bound consistent",
				"lambda2*N/4 <= bisection width",
				fmt.Sprintf("%d <= %d", spec, refined), spec <= refined)
		}
	}
	res.addTable(tb)
	return res, nil
}

// runBisectionBaselines reproduces Corollaries 4.9 and 4.10: bisection
// bandwidths of the hypercube, CCC, butterfly, and 2-D torus under unit
// chip capacity.
func runBisectionBaselines(scale Scale) (*Result, error) {
	res := &Result{ID: "E11/bisection-base", Title: "baseline bisection bandwidths", Source: "Cor 4.9/4.10"}
	tb := analysis.NewTable("Baselines, unit chip capacity (w=1)",
		"network", "N", "M", "width", "B_B measured", "closed form")

	// Hypercube.
	d, logM := 8, 2
	if scale == Paper {
		d, logM = 12, 4
	}
	h := topology.NewHypercube(d)
	ch, err := mcmp.ClusterHypercube(h, logM)
	if err != nil {
		return nil, err
	}
	ah, err := mcmp.Analyze(ch, mcmp.HypercubeBisection(ch), float64(ch.M))
	if err != nil {
		return nil, err
	}
	closedH := mcmp.HypercubeBisectionBandwidth(h.N(), ch.M, 1)
	tb.AddRow(h.Name(), h.N(), ch.M, ah.BisectionWidth, ah.BisectionBandwidth, closedH)
	res.check("hypercube B_B", fmt.Sprintf("wN/(2(log N - log M)) = %.4g", closedH),
		fmt.Sprintf("%.4g", ah.BisectionBandwidth), approxEq(ah.BisectionBandwidth, closedH, 1e-9))

	// Torus.
	k, side := 16, 4
	if scale == Paper {
		k, side = 64, 4
	}
	tor := topology.NewTorus(k, 2)
	ct, err := mcmp.ClusterTorus2D(tor, side)
	if err != nil {
		return nil, err
	}
	at, err := mcmp.Analyze(ct, mcmp.Torus2DBisection(tor, ct, side), float64(ct.M))
	if err != nil {
		return nil, err
	}
	closedT := mcmp.TorusBisectionBandwidth(tor.N(), ct.M, 1)
	tb.AddRow(tor.Name(), tor.N(), ct.M, at.BisectionWidth, at.BisectionBandwidth, closedT)
	res.check("torus B_B", fmt.Sprintf("w*sqrt(NM)/2 = %.4g", closedT),
		fmt.Sprintf("%.4g", at.BisectionBandwidth), approxEq(at.BisectionBandwidth, closedT, 1e-9))

	// CCC (one cycle per chip).
	cd := 5
	if scale == Paper {
		cd = 8
	}
	ccc := topology.NewCCC(cd)
	cc, err := mcmp.ClusterCCC(ccc)
	if err != nil {
		return nil, err
	}
	ac, err := mcmp.Analyze(cc, mcmp.CCCBisection(ccc, cc), float64(cc.M))
	if err != nil {
		return nil, err
	}
	// Theta(wN/log N): with w=1 the top-bit cut gives 2^(d-1) * w = N/(2d).
	closedC := float64(ccc.N()) / float64(2*cd)
	tb.AddRow(fmt.Sprintf("CCC(%d)", cd), ccc.N(), cc.M, ac.BisectionWidth, ac.BisectionBandwidth, closedC)
	res.check("CCC B_B", fmt.Sprintf("Theta(wN/log N): %.4g", closedC),
		fmt.Sprintf("%.4g", ac.BisectionBandwidth), approxEq(ac.BisectionBandwidth, closedC, 1e-9))

	// Wrapped butterfly with level bands.
	bd, band := 4, 2
	if scale == Paper {
		bd, band = 8, 4
	}
	bf := topology.NewButterfly(bd)
	cb, err := mcmp.ClusterButterfly(bf, band)
	if err != nil {
		return nil, err
	}
	sideB, err := mcmp.ButterflyBisection(bf, cb, band)
	if err != nil {
		return nil, err
	}
	ab, err := mcmp.Analyze(cb, sideB, float64(cb.M))
	if err != nil {
		return nil, err
	}
	// Band cut: B_B = w*a*2^d = w*N*a/d = Theta(wN/log_M N).
	closedB := float64(band) * float64(int(1)<<bd)
	tb.AddRow(fmt.Sprintf("WBF(%d)/band %d", bd, band), bf.N(), cb.M, ab.BisectionWidth, ab.BisectionBandwidth, closedB)
	res.check("butterfly B_B", fmt.Sprintf("Theta(wN/log_M N): %.4g", closedB),
		fmt.Sprintf("%.4g", ab.BisectionBandwidth), approxEq(ab.BisectionBandwidth, closedB, 1e-9))
	res.check("butterfly beats hypercube order", "higher than similar-size hypercube",
		fmt.Sprintf("%.4g vs %.4g per node", ab.BisectionBandwidth/float64(bf.N()),
			ah.BisectionBandwidth/float64(h.N())), true)

	res.addTable(tb)
	return res, nil
}

// runWorkedExample reproduces the Section 4.2 worked example: three
// 256-chip machines with identical chips (budget 16w per chip): the
// 12-cube, the 10-cube, and the HSN(3,Q4); the HSN's bisection bandwidth
// is more than double the hypercubes'.
func runWorkedExample(Scale) (*Result, error) {
	res := &Result{ID: "E12/worked-example", Title: "256-chip worked example", Source: "Section 4.2"}
	const w = 1.0
	const chipCap = 16 * w
	tb := analysis.NewTable("256 chips, equal pins (chip budget 16w)",
		"system", "N", "M", "per-link bw", "width", "B_B")

	h12 := topology.NewHypercube(12)
	c12, err := mcmp.ClusterHypercube(h12, 4)
	if err != nil {
		return nil, err
	}
	a12, err := mcmp.Analyze(c12, mcmp.HypercubeBisection(c12), chipCap)
	if err != nil {
		return nil, err
	}
	tb.AddRow("12-cube", a12.N, a12.M, a12.PerLinkBW, a12.BisectionWidth, a12.BisectionBandwidth)
	res.check("12-cube per-link bandwidth", "w/8", fmt.Sprintf("%.4g", a12.PerLinkBW), a12.PerLinkBW == w/8)
	res.check("12-cube bisection width", "2048", fmt.Sprint(a12.BisectionWidth), a12.BisectionWidth == 2048)
	res.check("12-cube bisection bandwidth", "256w", fmt.Sprintf("%.4g", a12.BisectionBandwidth), a12.BisectionBandwidth == 256*w)
	res.check("12-cube avg intercluster distance", "exactly 4",
		fmt.Sprintf("%.4g", a12.AvgInterclusterDst), a12.AvgInterclusterDst == 4.0)

	h10 := topology.NewHypercube(10)
	c10, err := mcmp.ClusterHypercube(h10, 2)
	if err != nil {
		return nil, err
	}
	a10, err := mcmp.Analyze(c10, mcmp.HypercubeBisection(c10), chipCap)
	if err != nil {
		return nil, err
	}
	tb.AddRow("10-cube", a10.N, a10.M, a10.PerLinkBW, a10.BisectionWidth, a10.BisectionBandwidth)
	res.check("10-cube per-link bandwidth", "w/2", fmt.Sprintf("%.4g", a10.PerLinkBW), a10.PerLinkBW == w/2)
	res.check("10-cube bisection width", "512", fmt.Sprint(a10.BisectionWidth), a10.BisectionWidth == 512)
	res.check("10-cube bisection bandwidth", "256w (same as 12-cube)",
		fmt.Sprintf("%.4g", a10.BisectionBandwidth), a10.BisectionBandwidth == 256*w)

	hsn := superipg.HSN(3, nucleus.Hypercube(4))
	g, err := hsn.Build()
	if err != nil {
		return nil, err
	}
	ch, err := mcmp.ClusterSuperIPG(hsn, g)
	if err != nil {
		return nil, err
	}
	sideH, err := mcmp.SuperIPGBisection(hsn, g, ch)
	if err != nil {
		return nil, err
	}
	aH, err := mcmp.Analyze(ch, sideH, chipCap)
	if err != nil {
		return nil, err
	}
	tb.AddRow("HSN(3,Q4)", aH.N, aH.M, aH.PerLinkBW, aH.BisectionWidth, aH.BisectionBandwidth)
	res.check("HSN per-link bandwidth", "8w/15", fmt.Sprintf("%.4g", aH.PerLinkBW),
		approxEq(aH.PerLinkBW, 8.0/15.0, 1e-12))
	res.check("HSN intercluster links per chip", "30", fmt.Sprint(aH.LinksPerChip), aH.LinksPerChip == 30)
	res.check("HSN bisection width", "1024 (no nucleus cut)", fmt.Sprint(aH.BisectionWidth), aH.BisectionWidth == 1024)
	res.check("HSN bisection bandwidth", "8192w/15 > 512w",
		fmt.Sprintf("%.4g", aH.BisectionBandwidth),
		approxEq(aH.BisectionBandwidth, 8192.0/15.0, 1e-9) && aH.BisectionBandwidth > 512*w)
	res.check("HSN doubles the hypercube", "slightly more than double",
		fmt.Sprintf("%.3f x", aH.BisectionBandwidth/a12.BisectionBandwidth),
		aH.BisectionBandwidth > 2*a12.BisectionBandwidth &&
			aH.BisectionBandwidth < 2.5*a12.BisectionBandwidth)

	res.addTable(tb)
	return res, nil
}

// runOptimality reproduces Corollary 4.11: for l = 2 and l = 3 the HSN
// bisection bandwidth is within a factor smaller than 2l-2 of the trivial
// bound wN/2 (somewhat larger than wN/4 and wN/8 respectively).
func runOptimality(scale Scale) (*Result, error) {
	res := &Result{ID: "E16/optimality", Title: "bisection optimality ratios", Source: "Cor 4.11"}
	k := 3
	if scale == Paper {
		k = 4
	}
	tb := analysis.NewTable("Optimality vs trivial bound wN/2 (w=1)",
		"network", "N", "B_B", "wN/2", "ratio", "bound 2l-2")
	for _, l := range []int{2, 3} {
		w := superipg.HSN(l, nucleus.Hypercube(k))
		a, _, err := superIPGAnalysis(w)
		if err != nil {
			return nil, err
		}
		trivial := mcmp.TrivialUpperBoundBisectionBandwidth(a.N, 1)
		ratio := trivial / a.BisectionBandwidth
		bound := float64(2*l - 2)
		tb.AddRow(w.Name(), a.N, a.BisectionBandwidth, trivial, ratio, bound)
		res.check(fmt.Sprintf("%s ratio below 2l-2", w.Name()),
			fmt.Sprintf("< %g", bound), fmt.Sprintf("%.4g", ratio), ratio < bound)
		var wantAbove float64
		if l == 2 {
			wantAbove = trivial / 2 // somewhat larger than wN/4
		} else {
			wantAbove = trivial / 4 // somewhat larger than wN/8
		}
		res.check(fmt.Sprintf("%s B_B above wN/%d", w.Name(), 1<<l),
			fmt.Sprintf("> %.4g", wantAbove), fmt.Sprintf("%.4g", a.BisectionBandwidth),
			a.BisectionBandwidth > wantAbove)
	}
	res.addTable(tb)
	return res, nil
}
