package experiments

import (
	"fmt"

	"ipg/internal/analysis"
	"ipg/internal/mcmp"
	"ipg/internal/nucleus"
	"ipg/internal/perm"
	"ipg/internal/superipg"
	"ipg/internal/topology"
)

// runMultiLevel implements the extension the paper announces at the end of
// Section 4.2 (results "can be easily extended to hierarchical parallel
// architectures involving more than two levels"): a three-tier packaging
// — nodes on chips, chips on boards — comparing a depth-2 RHSN against a
// hypercube of the same size with the same chip/board shape.  At both
// packaging levels the recursive super-IPG has far fewer off-unit links,
// hence proportionally wider links and higher bisection bandwidth under
// fixed per-unit budgets.
func runMultiLevel(scale Scale) (*Result, error) {
	res := &Result{ID: "E21/multilevel", Title: "three-tier packaging (chips on boards)", Source: "Section 4.2 (extension)"}
	k := 2
	if scale == Paper {
		k = 3
	}
	// RHSN(2, 2, Q_k): chips = innermost Q_k copies, boards = inner
	// HSN(2,Q_k) copies.
	w := superipg.RHSN(2, 2, nucleus.Hypercube(k))
	g, err := w.Build()
	if err != nil {
		return nil, err
	}
	u := g.Undirected()
	mInner := 2 * k // symbols per innermost Q_k group
	chipOf, nChips := g.ClustersBy(func(l perm.Label) string { return string(l[mInner:]) })
	// Boards: nodes sharing the suffix beyond the inner HSN label.
	mMid := w.SymbolLen() // symbols of the inner HSN (= nucleus of the outer level)
	boardOfNode, nBoards := g.ClustersBy(func(l perm.Label) string { return string(l[mMid:]) })
	boardOfChip := make([]int32, nChips)
	for v := 0; v < g.N(); v++ {
		boardOfChip[chipOf[v]] = boardOfNode[v]
	}
	two, err := mcmp.NewTwoLevel(w.Name(), u, chipOf, boardOfChip)
	if err != nil {
		return nil, err
	}
	if two.Boards != nBoards {
		return nil, fmt.Errorf("board count mismatch: %d vs %d", two.Boards, nBoards)
	}

	// Hypercube of the same size with the same chip/board node counts.
	logN := 0
	for 1<<logN < g.N() {
		logN++
	}
	h := topology.NewHypercube(logN)
	logChip := 0
	for 1<<logChip < two.MChip {
		logChip++
	}
	logBoard := 0
	for 1<<logBoard < two.MChip*two.ChipsPerBoard {
		logBoard++
	}
	chipOfQ := make([]int32, h.N())
	boardOfChipQ := make([]int32, h.N()>>logChip)
	for v := range chipOfQ {
		//lint:ignore indextrunc v < h.N() <= topology.MaxNodes (1<<22)
		chipOfQ[v] = int32(v >> logChip)
	}
	for c := range boardOfChipQ {
		//lint:ignore indextrunc c < h.N() <= topology.MaxNodes (1<<22)
		boardOfChipQ[c] = int32(c >> (logBoard - logChip))
	}
	twoQ, err := mcmp.NewTwoLevel(h.Name(), h.G, chipOfQ, boardOfChipQ)
	if err != nil {
		return nil, err
	}

	// Profile both levels of both machines with equal budgets per unit.
	chipBudget := float64(two.MChip)
	boardBudget := float64(two.MChip * two.ChipsPerBoard)
	tb := analysis.NewTable("Three-tier packaging: per-level profiles (equal per-unit budgets)",
		"machine", "level", "units", "links/unit", "avg inter-unit dist", "B_B")
	profile := func(t *mcmp.TwoLevel, name string) (chip, board mcmp.LevelProfile, err error) {
		cc, err := t.ChipClustered()
		if err != nil {
			return
		}
		chipSide := halfSplit(cc.Chips)
		chip, err = mcmp.AnalyzeLevel("chip", cc, chipSide, chipBudget)
		if err != nil {
			return
		}
		bc, err := t.BoardClustered()
		if err != nil {
			return
		}
		boardSide := halfSplit(bc.Chips)
		board, err = mcmp.AnalyzeLevel("board", bc, boardSide, boardBudget)
		if err != nil {
			return
		}
		tb.AddRow(name, "chip", chip.Units, chip.LinksPerUnit, chip.AvgInterUnitDist, chip.BisectionBandwidth)
		tb.AddRow(name, "board", board.Units, board.LinksPerUnit, board.AvgInterUnitDist, board.BisectionBandwidth)
		return
	}
	// Units are split into id-halves; for the hypercube this is the
	// optimal top-bit cut, while for the RHSN (BFS discovery order) it is
	// an arbitrary balanced cut — conservative for the comparison, since
	// it can only hurt the RHSN side.
	chipRH, boardRH, err := profile(two, w.Name())
	if err != nil {
		return nil, err
	}
	chipQ, boardQ, err := profile(twoQ, h.Name())
	if err != nil {
		return nil, err
	}
	res.addTable(tb)

	res.check("RHSN has fewer off-chip links per chip",
		"hierarchical locality at level 1",
		fmt.Sprintf("%d vs %d", chipRH.LinksPerUnit, chipQ.LinksPerUnit),
		chipRH.LinksPerUnit < chipQ.LinksPerUnit)
	res.check("RHSN has fewer off-board links per board",
		"hierarchical locality at level 2",
		fmt.Sprintf("%d vs %d", boardRH.LinksPerUnit, boardQ.LinksPerUnit),
		boardRH.LinksPerUnit < boardQ.LinksPerUnit)
	res.check("RHSN chip-level bisection bandwidth higher",
		"super-IPG advantage persists at level 1",
		fmt.Sprintf("%.4g vs %.4g", chipRH.BisectionBandwidth, chipQ.BisectionBandwidth),
		chipRH.BisectionBandwidth > chipQ.BisectionBandwidth)
	res.check("RHSN board-level bisection bandwidth higher",
		"super-IPG advantage persists at level 2",
		fmt.Sprintf("%.4g vs %.4g", boardRH.BisectionBandwidth, boardQ.BisectionBandwidth),
		boardRH.BisectionBandwidth > boardQ.BisectionBandwidth)
	res.check("RHSN avg inter-board distance lower",
		"shorter board-level routes",
		fmt.Sprintf("%.4g vs %.4g", boardRH.AvgInterUnitDist, boardQ.AvgInterUnitDist),
		boardRH.AvgInterUnitDist < boardQ.AvgInterUnitDist)
	return res, nil
}

// halfSplit assigns the first half of unit ids to side 0.
func halfSplit(units int) []int8 {
	side := make([]int8, units)
	for i := units / 2; i < units; i++ {
		side[i] = 1
	}
	return side
}
