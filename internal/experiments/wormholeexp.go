package experiments

import (
	"fmt"

	"ipg/internal/analysis"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/wormhole"
)

// runWormhole reproduces the Section 3.1 discussion after Corollary 3.3:
// "When wormhole routing or virtual cut-through is used, the slowdown
// factor is actually reduced to about 2, since the congestion for
// embedding all the links of an HPN(l,G) that belong to a certain
// dimension in an HSN(l,G), complete-CN(l,G), or SFN(l,G) is only 2" —
// measured by flit-level simulation of the emulation paths, against the
// store-and-forward slowdown of 3.
func runWormhole(scale Scale) (*Result, error) {
	res := &Result{ID: "E17/wormhole", Title: "wormhole/VCT emulation slowdown", Source: "Sec 3.1 after Cor 3.3"}
	k := 2
	flitSweep := []int{1, 4, 16, 64}
	if scale == Paper {
		k = 3
		flitSweep = []int{1, 4, 16, 64, 256}
	}
	tb := analysis.NewTable("Flit-level slowdown of single-dimension emulation",
		"network", "F=1", fmt.Sprintf("F=%d", flitSweep[len(flitSweep)-1]), "SAF steps")
	for _, w := range []*superipg.Network{
		superipg.HSN(3, nucleus.Hypercube(k)),
		superipg.SFN(3, nucleus.Hypercube(k)),
	} {
		g, err := w.Build()
		if err != nil {
			return nil, err
		}
		j := w.NumNucGens() + 1
		var first, last float64
		for i, f := range flitSweep {
			s, err := wormhole.Slowdown(w, g, j, f)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				first = s
			}
			last = s
		}
		msgs, err := wormhole.EmulationPaths(w, g, j)
		if err != nil {
			return nil, err
		}
		saf := wormhole.StoreAndForwardMakespan(msgs, 1)
		tb.AddRow(w.Name(), first, last, saf)
		res.check(w.Name()+" asymptotic VCT slowdown", "about 2 (= dimension congestion)",
			fmt.Sprintf("%.3f at F=%d", last, flitSweep[len(flitSweep)-1]),
			last >= 2.0 && last <= 2.3)
		res.check(w.Name()+" store-and-forward slowdown", "3 (Cor 3.2)",
			fmt.Sprint(saf), saf == 3)
		res.check(w.Name()+" pipelining helps", "VCT < SAF",
			fmt.Sprintf("%.3f < 3", last), last < 3)
	}
	res.addTable(tb)
	return res, nil
}
