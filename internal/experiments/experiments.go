// Package experiments implements the paper-reproduction harness: one named
// experiment per table, figure, or numbered claim of the paper, as indexed
// in DESIGN.md (E1-E21).  Each experiment runs the relevant substrate,
// renders a table, and reports paper-value vs measured-value checks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Check is one paper-vs-measured comparison.
type Check struct {
	Name     string
	Paper    string // the paper's value or claim
	Measured string
	OK       bool
}

// Result is the outcome of one experiment.
type Result struct {
	ID     string
	Title  string
	Source string // where in the paper the claim lives
	Tables []string
	Checks []Check
}

// Passed reports whether all checks succeeded.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// String renders the full experiment report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s (%s)\n", r.ID, r.Title, r.Source)
	for _, tb := range r.Tables {
		b.WriteString(tb)
		b.WriteByte('\n')
	}
	for _, c := range r.Checks {
		mark := "ok  "
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-46s paper: %-22s measured: %s\n", mark, c.Name, c.Paper, c.Measured)
	}
	return b.String()
}

func (r *Result) check(name, paper, measured string, ok bool) {
	r.Checks = append(r.Checks, Check{Name: name, Paper: paper, Measured: measured, OK: ok})
}

func (r *Result) addTable(t fmt.Stringer) { r.Tables = append(r.Tables, t.String()) }

// Scale selects experiment sizes: Small keeps everything test-friendly;
// Paper uses the sizes the paper's worked examples quote (slower).
type Scale int

const (
	Small Scale = iota
	Paper
)

type runner func(Scale) (*Result, error)

var registry = map[string]struct {
	title string
	fn    runner
}{
	"fig1a":           {"All-port emulation schedule, l=4, n=3 (Figure 1a)", runFig1a},
	"fig1b":           {"All-port emulation schedule, l=5, n=3 (Figure 1b)", runFig1b},
	"dim11":           {"Dimension-11 emulation of a 16-cube (Section 3.1)", runDim11},
	"sdc":             {"SDC slowdown and embedding dilation (Cor 3.2/3.3)", runSDC},
	"ascend":          {"Ascend/descend step counts over k-cubes (Cor 3.6)", runAscendSteps},
	"ascend-ghc":      {"Ascend/descend over generalized hypercubes (Cor 3.7)", runAscendGHC},
	"mnb-te":          {"MNB and TE asymptotic times (Cor 3.10/3.11)", runMNBTE},
	"ic-diameter":     {"Intercluster diameter (Thm 4.1, Cor 4.2)", runICDiameter},
	"symmetric":       {"Symmetric intercluster diameters (Cor 4.4)", runSymmetric},
	"bisection-hsn":   {"HSN/SFN bisection bandwidth (Thm 4.7, Cor 4.8)", runBisectionHSN},
	"bisection-base":  {"Baseline bisection bandwidths (Cor 4.9/4.10)", runBisectionBaselines},
	"worked-example":  {"256-chip worked example (Section 4.2)", runWorkedExample},
	"offchip":         {"Off-chip transmissions per packet (Section 4.1)", runOffChip},
	"te-intercluster": {"Total-exchange intercluster census (Sections 3.3/4.1)", runTEIntercluster},
	"throughput":      {"Random-routing saturation throughput (headline)", runThroughput},
	"optimality":      {"Bisection optimality ratios (Cor 4.11)", runOptimality},
	"wormhole":        {"Wormhole/VCT emulation slowdown ~2 (Sec 3.1)", runWormhole},
	"transpose":       {"Matrix transposition under unit chip capacity (Sec 1/4)", runTranspose},
	"ii-cost":         {"ID-cost and II-cost comparison (Sec 4.2)", runIICost},
	"embeddings":      {"Constant-dilation embeddings (Cor 3.4)", runEmbeddings},
	"multilevel":      {"Three-tier packaging extension (Sec 4.2 end)", runMultiLevel},
	"design-sweep":    {"HSN design space at fixed N (Sec 4.1, Cor 3.9)", runDesignSweep},
}

// IDs returns the registered experiment ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the human title of an experiment id.
func Title(id string) string { return registry[id].title }

// Run executes one experiment at the given scale.
func Run(id string, scale Scale) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	res, err := e.fn(scale)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return res, nil
}

// RunAll executes every experiment and returns the results in IDs() order.
func RunAll(scale Scale) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := Run(id, scale)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
