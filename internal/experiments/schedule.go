package experiments

import (
	"fmt"

	"ipg/internal/nucleus"
	"ipg/internal/schedule"
	"ipg/internal/superipg"
)

// runFig1a reproduces Figure 1a: the schedule emulating a 12-dimensional
// HPN(4, G) on a super-IPG with l = 4 and n = 3 under the all-port model.
func runFig1a(Scale) (*Result, error) {
	return scheduleExperiment("E1/fig1a", "Figure 1a", 4, 3, -1)
}

// runFig1b reproduces Figure 1b (l = 5, n = 3), whose caption states the
// links are fully used during steps 1-5 and 93% used on average.
func runFig1b(Scale) (*Result, error) {
	return scheduleExperiment("E2/fig1b", "Figure 1b", 5, 3, 39.0/42.0)
}

func scheduleExperiment(id, source string, l, n int, wantAvg float64) (*Result, error) {
	res := &Result{ID: id, Title: fmt.Sprintf("all-port schedule l=%d n=%d", l, n), Source: source}
	w := superipg.HSN(l, nucleus.Hypercube(n))
	s, err := schedule.Build(w)
	if err != nil {
		return nil, err
	}
	verifyErr := s.Verify()
	res.check("schedule valid (ordering, one use per generator per step)",
		"valid by construction", errString(verifyErr), verifyErr == nil)

	wantT := schedule.Steps(l, n)
	res.check("schedule length", fmt.Sprintf("max(2n, l+1) = %d", wantT),
		fmt.Sprint(s.T), s.T == wantT)

	perStep, avg := s.Utilization()
	if wantAvg > 0 {
		fullPrefix := true
		for i := 0; i < s.T-1; i++ {
			if perStep[i] != 1.0 {
				fullPrefix = false
			}
		}
		res.check("links fully used during steps 1..T-1", "fully used (Fig 1b caption)",
			fmt.Sprintf("%v", fullPrefix), fullPrefix)
		res.check("average link utilization", fmt.Sprintf("93%% (%d/%d)", 39, 42),
			fmt.Sprintf("%.1f%%", 100*avg), approxEq(avg, wantAvg, 1e-9))
	} else {
		res.check("average link utilization", "n/a (not stated for Fig 1a)",
			fmt.Sprintf("%.1f%%", 100*avg), avg > 0.5)
	}
	res.Tables = append(res.Tables, s.Render())
	return res, nil
}

func errString(err error) string {
	if err == nil {
		return "valid"
	}
	return err.Error()
}

func approxEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
