package experiments

import (
	"fmt"
	"math/cmplx"
	"math/rand"

	"ipg/internal/analysis"
	"ipg/internal/ascend"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

// runAscendSteps reproduces Corollary 3.6: ascend/descend over all log2(N)
// operations takes l(k+1) communication steps on a CN based on a k-cube
// and l(k+2)-2 on an HSN/SFN/RCC, verified by executing a real FFT.
func runAscendSteps(scale Scale) (*Result, error) {
	res := &Result{ID: "E5/ascend", Title: "ascend/descend step counts over k-cubes", Source: "Cor 3.6"}
	type cfg struct {
		l, k int
	}
	cfgs := []cfg{{2, 2}, {3, 2}, {2, 3}}
	if scale == Paper {
		cfgs = append(cfgs, cfg{3, 3}, cfg{4, 2})
	}
	tb := analysis.NewTable("FFT (descend) communication steps", "network", "logN", "formula", "measured", "hypercube")
	for _, c := range cfgs {
		nuc := nucleus.Hypercube(c.k)
		for _, w := range []*superipg.Network{
			superipg.CompleteCN(c.l, nuc),
			superipg.RingCN(c.l, nuc),
			superipg.HSN(c.l, nuc),
			superipg.SFN(c.l, nuc),
		} {
			g, err := w.Build()
			if err != nil {
				return nil, err
			}
			r, err := ascend.NewRunner[complex128](w, g)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(3))
			x := make([]complex128, g.N())
			for i := range x {
				x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			}
			got, st, err := ascend.FFT(r, x, false)
			if err != nil {
				return nil, err
			}
			want := ascend.DFT(x, false)
			fftOK := true
			for i := range want {
				if cmplx.Abs(got[i]-want[i]) > 1e-6*float64(g.N()) {
					fftOK = false
					break
				}
			}
			formula := ascend.TheoreticalAscendComm(w)
			logN := r.LogN()
			tb.AddRow(w.Name(), logN, formula, st.CommSteps, logN)
			res.check(fmt.Sprintf("%s FFT correct", w.Name()), "matches DFT", fmt.Sprint(fftOK), fftOK)
			res.check(fmt.Sprintf("%s comm steps", w.Name()),
				fmt.Sprint(formula), fmt.Sprint(st.CommSteps), st.CommSteps == formula)
		}
	}
	res.addTable(tb)
	return res, nil
}

// runAscendGHC reproduces Corollary 3.7 and its worked numbers: with a
// radix-4 3-dimensional generalized hypercube nucleus, ascend takes
// (2/3)log2(N) communication steps on a CN and (5/6)log2(N)-2 on an HSN,
// plus l*sum(m_i - 1) computation steps — fewer communication steps than a
// hypercube (log2 N) at lower node degree.
func runAscendGHC(scale Scale) (*Result, error) {
	res := &Result{ID: "E6/ascend-ghc", Title: "ascend over generalized hypercube nuclei", Source: "Cor 3.7"}
	nuc := nucleus.GeneralizedHypercube(4, 4, 4)
	l := 2
	if scale == Paper {
		l = 3
	}
	logN := 6 * l
	tb := analysis.NewTable("Ascend on GHC(4,4,4) nuclei", "network", "logN", "comm formula", "comm measured", "comp measured")
	for _, w := range []*superipg.Network{
		superipg.CompleteCN(l, nuc),
		superipg.HSN(l, nuc),
	} {
		g, err := w.Build()
		if err != nil {
			return nil, err
		}
		r, err := ascend.NewRunner[float64](w, g)
		if err != nil {
			return nil, err
		}
		data := make([]float64, g.N())
		for i := range data {
			data[i] = float64(i % 17)
		}
		sum := 0.0
		for _, v := range data {
			sum += v
		}
		// All-reduce exercises a real ascend with value checking.
		red, st, err := ascend.AllReduceSum(r, data)
		if err != nil {
			return nil, err
		}
		redOK := true
		for _, v := range red {
			if !approxEq(v, sum, 1e-6) {
				redOK = false
			}
		}
		var wantComm int
		var wantStr string
		switch w.Family {
		case "complete-CN":
			wantComm = 2 * logN / 3
			wantStr = fmt.Sprintf("(2/3)log2 N = %d", wantComm)
		case "HSN":
			wantComm = 5*logN/6 - 2
			wantStr = fmt.Sprintf("(5/6)log2 N - 2 = %d", wantComm)
		}
		wantComp := ascend.TheoreticalAscendComp(w)
		tb.AddRow(w.Name(), logN, wantComm, st.CommSteps, st.CompSteps)
		res.check(w.Name()+" all-reduce correct", "global sum everywhere", fmt.Sprint(redOK), redOK)
		res.check(w.Name()+" comm steps", wantStr, fmt.Sprint(st.CommSteps), st.CommSteps == wantComm)
		res.check(w.Name()+" comp steps", fmt.Sprintf("l*sum(m_i-1) = %d", wantComp),
			fmt.Sprint(st.CompSteps), st.CompSteps == wantComp)
		res.check(w.Name()+" beats hypercube comm steps", fmt.Sprintf("< log2 N = %d", logN),
			fmt.Sprint(st.CommSteps), st.CommSteps < logN)
	}
	res.addTable(tb)
	return res, nil
}
