package experiments

import (
	"fmt"

	"ipg/internal/analysis"
	"ipg/internal/mcmp"
	"ipg/internal/netsim"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topology"
)

// runTranspose reproduces the matrix-transposition comparison: the paper's
// introduction lists matrix transposition among the communication-intensive
// tasks where MCMP super-IPGs beat hypercubes.  Transposition is a
// bisection-stressing permutation (half the packets cross any
// row/column-half cut), so completion time under unit chip capacity tracks
// the inverse bisection bandwidth: the HSN finishes in roughly half the
// hypercube's time.
func runTranspose(scale Scale) (*Result, error) {
	res := &Result{ID: "E18/transpose", Title: "matrix transposition under unit chip capacity", Source: "Section 1 (task list), Section 4"}
	var (
		d, logM, l, k int
		chipCap       float64
		maxRounds     int
	)
	if scale == Paper {
		d, logM, l, k = 12, 4, 3, 4
		chipCap = 128.0
		maxRounds = 400000
	} else {
		d, logM, l, k = 6, 2, 3, 2
		chipCap = 8.0
		maxRounds = 100000
	}
	perm, err := netsim.Transpose(d)
	if err != nil {
		return nil, err
	}

	cube, err := netsim.BuildHypercube(d, logM, chipCap)
	if err != nil {
		return nil, err
	}
	resC, err := netsim.RunPermutation(cube, 3, perm, maxRounds)
	if err != nil {
		return nil, err
	}

	w := superipg.HSN(l, nucleus.Hypercube(k))
	g, err := w.Build()
	if err != nil {
		return nil, err
	}
	hsnNet, err := netsim.BuildSuperIPG(w, g, chipCap, nil)
	if err != nil {
		return nil, err
	}
	// Map the address-space permutation onto node ids.
	nodePerm := make([]int32, g.N())
	nodeOfAddr := make([]int32, g.N())
	for v := 0; v < g.N(); v++ {
		a, err := w.AddressOf(g.Label(v))
		if err != nil {
			return nil, err
		}
		//lint:ignore indextrunc v < g.N() <= ipg.MaxNodes (1<<22)
		nodeOfAddr[a] = int32(v)
	}
	for v := 0; v < g.N(); v++ {
		a, err := w.AddressOf(g.Label(v))
		if err != nil {
			return nil, err
		}
		nodePerm[v] = nodeOfAddr[perm[a]]
	}
	resH, err := netsim.RunPermutation(hsnNet, 3, nodePerm, maxRounds)
	if err != nil {
		return nil, err
	}

	tb := analysis.NewTable("Matrix transposition (address-halves swap), equal chips",
		"network", "packets", "completion rounds", "off-chip hops")
	tb.AddRow(cube.Name, resC.Stats.Delivered, resC.Rounds, resC.Stats.OffChipHops)
	tb.AddRow(hsnNet.Name, resH.Stats.Delivered, resH.Rounds, resH.Stats.OffChipHops)
	res.addTable(tb)

	if resC.Stats.Delivered != resH.Stats.Delivered {
		return nil, fmt.Errorf("packet counts differ: %d vs %d", resC.Stats.Delivered, resH.Stats.Delivered)
	}
	speedup := float64(resC.Rounds) / float64(resH.Rounds)
	// Bisection-bandwidth prediction: 2.13x at l=3 with large M; the exact
	// gain depends on how evenly the permutation loads the links, so accept
	// a broad band around it.
	res.check("HSN completes transposition faster", "roughly the B_B ratio (~2x)",
		fmt.Sprintf("%.2fx speedup", speedup), speedup > 1.3 && speedup < 3.5)
	res.check("HSN uses fewer off-chip transmissions", "fewer intercluster hops per packet",
		fmt.Sprintf("%d < %d", resH.Stats.OffChipHops, resC.Stats.OffChipHops),
		resH.Stats.OffChipHops < resC.Stats.OffChipHops)
	return res, nil
}

// runIICost reproduces the end of Section 4.2: the ID-cost (intercluster
// degree x diameter) and II-cost (intercluster degree x intercluster
// diameter) comparisons "demonstrate the superiority of super-IPGs".
func runIICost(scale Scale) (*Result, error) {
	res := &Result{ID: "E19/ii-cost", Title: "ID-cost and II-cost comparison", Source: "Section 4.2 (end)"}
	k := 2
	cccD, bfD, band := 5, 4, 2
	torK, torSide := 8, 2
	if scale == Paper {
		k = 4
		// Butterfly bands of 2 levels keep its chips (a*2^a = 8 nodes)
		// comparable to the HSN's 16-node chips; wider bands would give
		// the butterfly disproportionately large chips and skew the
		// packaging-cost comparison.
		cccD, bfD, band = 8, 8, 2
		torK, torSide = 64, 4
	}

	type row struct {
		name             string
		icDeg            float64
		diam, icDiam     int
		idCost, iiCost   float64
		isSuper, isTorus bool
	}
	var rows []row

	// HSN(3,Q_k).
	w := superipg.HSN(3, nucleus.Hypercube(k))
	g, err := w.Build()
	if err != nil {
		return nil, err
	}
	cH, err := mcmp.ClusterSuperIPG(w, g)
	if err != nil {
		return nil, err
	}
	u := g.Undirected()
	icDeg := cH.InterclusterDegree()
	diam := u.DiameterParallel()
	icDiam := cH.InterclusterDiameter()
	rows = append(rows, row{w.Name(), icDeg, diam, icDiam,
		mcmp.IDCost(icDeg, diam), mcmp.IICost(icDeg, icDiam), true, false})

	// Hypercube with matching chips.
	h := topology.NewHypercube(3 * k)
	cQ, err := mcmp.ClusterHypercube(h, k)
	if err != nil {
		return nil, err
	}
	icDeg = cQ.InterclusterDegree()
	rows = append(rows, row{h.Name() + fmt.Sprintf("/M=%d", 1<<k), icDeg, 3 * k, cQ.InterclusterDiameter(),
		mcmp.IDCost(icDeg, 3*k), mcmp.IICost(icDeg, cQ.InterclusterDiameter()), false, false})

	// CCC.
	ccc := topology.NewCCC(cccD)
	cC, err := mcmp.ClusterCCC(ccc)
	if err != nil {
		return nil, err
	}
	icDeg = cC.InterclusterDegree()
	rows = append(rows, row{fmt.Sprintf("CCC(%d)", cccD), icDeg, ccc.G.DiameterParallel(), cC.InterclusterDiameter(),
		mcmp.IDCost(icDeg, ccc.G.DiameterParallel()), mcmp.IICost(icDeg, cC.InterclusterDiameter()), false, false})

	// Butterfly.
	bf := topology.NewButterfly(bfD)
	cB, err := mcmp.ClusterButterfly(bf, band)
	if err != nil {
		return nil, err
	}
	icDeg = cB.InterclusterDegree()
	rows = append(rows, row{fmt.Sprintf("WBF(%d)/band %d", bfD, band), icDeg, bf.G.DiameterParallel(), cB.InterclusterDiameter(),
		mcmp.IDCost(icDeg, bf.G.DiameterParallel()), mcmp.IICost(icDeg, cB.InterclusterDiameter()), false, false})

	// Torus.
	tor := topology.NewTorus(torK, 2)
	cT, err := mcmp.ClusterTorus2D(tor, torSide)
	if err != nil {
		return nil, err
	}
	icDeg = cT.InterclusterDegree()
	rows = append(rows, row{tor.Name(), icDeg, tor.G.DiameterParallel(), cT.InterclusterDiameter(),
		mcmp.IDCost(icDeg, tor.G.DiameterParallel()), mcmp.IICost(icDeg, cT.InterclusterDiameter()), false, true})

	tb := analysis.NewTable("ID-cost and II-cost (lower is better)",
		"network", "ic degree", "diameter", "ic diameter", "ID-cost", "II-cost")
	for _, r := range rows {
		tb.AddRow(r.name, r.icDeg, r.diam, r.icDiam, r.idCost, r.iiCost)
	}
	res.addTable(tb)

	hsnII := rows[0].iiCost
	hsnID := rows[0].idCost
	for _, r := range rows[1:] {
		res.check(fmt.Sprintf("HSN II-cost below %s", r.name),
			"super-IPGs superior (Sec 4.2)",
			fmt.Sprintf("%.3g vs %.3g", hsnII, r.iiCost), hsnII < r.iiCost+1e-9)
	}
	// ID-cost: the hypercube's is the natural comparison the paper draws.
	res.check("HSN ID-cost below hypercube's",
		"super-IPGs superior (Sec 4.2)",
		fmt.Sprintf("%.3g vs %.3g", hsnID, rows[1].idCost), hsnID < rows[1].idCost)
	return res, nil
}
