package experiments

import (
	"fmt"
	"math"

	"ipg/internal/analysis"
	"ipg/internal/ascend"
	"ipg/internal/netsim"
	"ipg/internal/nucleus"
	"ipg/internal/schedule"
	"ipg/internal/superipg"
)

// runMNBTE reproduces Corollaries 3.10 and 3.11: on an HSN with degree
// Theta(sqrt(log N)) (l = n), emulating the optimal hypercube algorithms
// via Theorem 3.8 completes a multinode broadcast in Theta(N/sqrt(log N))
// and a total exchange in Theta(N*sqrt(log N)), both a constant factor from
// the degree-based lower bounds.
//
// The quantities are computed from the proven emulation machinery: the
// schedule length of Theorem 3.8 (verified constructively by the schedule
// package) multiplied by the hypercube's optimal completion times, compared
// against the all-port receive-bound lower bounds.
func runMNBTE(scale Scale) (*Result, error) {
	res := &Result{ID: "E7/mnb-te", Title: "MNB and TE completion times on balanced HSNs", Source: "Cor 3.10/3.11"}
	maxN := 5
	if scale == Paper {
		maxN = 7
	}
	tb := analysis.NewTable("HSN(n, Q_n): degree Theta(sqrt(log N))",
		"n=l", "N", "degree", "MNB time", "MNB bound", "ratio", "TE time", "TE bound", "ratio")
	var mnbRatios, teRatios []float64
	for n := 2; n <= maxN; n++ {
		l := n
		w := superipg.HSN(l, nucleus.Hypercube(n))
		// Verify the all-port schedule really achieves the slowdown.
		s, err := schedule.Build(w)
		if err != nil {
			return nil, err
		}
		if err := s.Verify(); err != nil {
			return nil, err
		}
		slowdown := float64(s.T)
		logN := float64(n * l)
		N := math.Pow(2, logN)
		degree := float64(n + l - 1)

		// Hypercube optima under all-port unit-link capacity: MNB in
		// (N-1)/log2(N) steps (receive bound, achievable by Johnsson-Ho
		// trees); TE in Theta(N): transmission bound N/2 steps.
		mnbCube := (N - 1) / logN
		teCube := N / 2
		mnbHSN := slowdown * mnbCube
		teHSN := slowdown * teCube
		// Degree-based lower bounds on the HSN itself.
		mnbLB := (N - 1) / degree
		// TE moves N^2 packets an average of ~logN/2 hops over N*degree
		// links: time >= N*logN/(2*degree).
		teLB := N * logN / (2 * degree)
		mnbRatio := mnbHSN / mnbLB
		teRatio := teHSN / teLB
		mnbRatios = append(mnbRatios, mnbRatio)
		teRatios = append(teRatios, teRatio)
		tb.AddRow(n, int(N), int(degree), mnbHSN, mnbLB, mnbRatio, teHSN, teLB, teRatio)
	}
	res.addTable(tb)
	// Theta-optimality: the ratios must stay bounded as N grows over four
	// orders of magnitude.
	maxMNB, maxTE := maxOf(mnbRatios), maxOf(teRatios)
	res.check("MNB within constant factor of (N-1)/degree",
		"Theta(N/sqrt(log N)) optimal (Cor 3.10)",
		fmt.Sprintf("max ratio %.2f over n=2..%d", maxMNB, maxN), maxMNB < 8)
	res.check("TE within constant factor of bound",
		"Theta(N*sqrt(log N)) optimal (Cor 3.11)",
		fmt.Sprintf("max ratio %.2f over n=2..%d", maxTE, maxN), maxTE < 8)
	// Shape check: MNB time ~ N/sqrt(log N) means log(time)/log(N) -> 1.
	var xs, ys []float64
	for n := 2; n <= maxN; n++ {
		logN := float64(n * n)
		N := math.Pow(2, logN)
		xs = append(xs, N)
		ys = append(ys, float64(schedule.Steps(n, n))*(N-1)/logN)
	}
	fit, err := analysis.LogLogFit(xs, ys)
	if err != nil {
		return nil, err
	}
	res.check("MNB scaling exponent", "~1 (linear in N up to sqrt-log factor)",
		fmt.Sprintf("%.3f", fit.Slope), fit.Slope > 0.9 && fit.Slope < 1.05)
	return res, nil
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// runOffChip reproduces the Section 4.1 claim that random routing and FFT
// need log2(N) - log2(M) off-chip transmissions per packet on a hypercube
// but only l-1 = Theta(sqrt(log N)) on an HSN — measured in the packet
// simulator and from the ascend engine's super-step counts.
func runOffChip(scale Scale) (*Result, error) {
	res := &Result{ID: "E13/offchip", Title: "off-chip transmissions per packet", Source: "Section 4.1"}
	d, logM := 6, 2
	l, k := 3, 2
	warm, meas := 150, 300
	if scale == Paper {
		d, logM = 12, 4
		l, k = 3, 4
		warm, meas = 200, 400
	}
	// Random routing, simulated.
	cube, err := netsim.BuildHypercube(d, logM, 1e9)
	if err != nil {
		return nil, err
	}
	rc, err := netsim.RunRandomUniform(cube, 1, 0.05, warm, meas)
	if err != nil {
		return nil, err
	}
	w := superipg.HSN(l, nucleus.Hypercube(k))
	g, err := w.Build()
	if err != nil {
		return nil, err
	}
	hsnNet, err := netsim.BuildSuperIPG(w, g, 1e9, nil)
	if err != nil {
		return nil, err
	}
	rh, err := netsim.RunRandomUniform(hsnNet, 1, 0.05, warm, meas)
	if err != nil {
		return nil, err
	}
	nCube := float64(int(1) << d)
	nHSN := float64(g.N())
	wantCube := float64(d-logM) / 2 * nCube / (nCube - 1)
	wantHSN := float64(l-1) * float64(w.M()-1) / float64(w.M()) * nHSN / (nHSN - 1)
	tb := analysis.NewTable("Random routing, off-chip transmissions per packet",
		"network", "N", "worst case", "expected avg", "measured avg")
	tb.AddRow(cube.Name, int(nCube), d-logM, wantCube, rc.Stats.OffChipPerPacket())
	tb.AddRow(hsnNet.Name, int(nHSN), l-1, wantHSN, rh.Stats.OffChipPerPacket())
	res.addTable(tb)
	res.check("hypercube off-chip/packet", fmt.Sprintf("~(log N - log M)/2 = %.3g", wantCube),
		fmt.Sprintf("%.3g", rc.Stats.OffChipPerPacket()),
		approxEq(rc.Stats.OffChipPerPacket(), wantCube, 0.25))
	res.check("HSN off-chip/packet", fmt.Sprintf("~(l-1)(M-1)/M = %.3g", wantHSN),
		fmt.Sprintf("%.3g", rh.Stats.OffChipPerPacket()),
		approxEq(rh.Stats.OffChipPerPacket(), wantHSN, 0.25))
	res.check("HSN needs fewer off-chip hops", "l-1 < log N - log M",
		fmt.Sprintf("%.3g < %.3g", rh.Stats.OffChipPerPacket(), rc.Stats.OffChipPerPacket()),
		rh.Stats.OffChipPerPacket() < rc.Stats.OffChipPerPacket())

	// FFT, from the ascend engine: per-node off-chip transmissions are the
	// super-generator steps.
	r, err := ascend.NewRunner[complex128](w, g)
	if err != nil {
		return nil, err
	}
	x := make([]complex128, g.N())
	for i := range x {
		x[i] = complex(float64(i%5), 0)
	}
	_, st, err := ascend.FFT(r, x, false)
	if err != nil {
		return nil, err
	}
	cubeFFT := r.LogN() - logMOf(w.M())
	res.check("FFT off-chip steps on HSN", fmt.Sprintf("2(l-1) = %d super steps", 2*(l-1)),
		fmt.Sprint(st.SuperSteps), st.SuperSteps == 2*(l-1))
	res.check("FFT off-chip steps, hypercube comparison",
		fmt.Sprintf("hypercube needs log N - log M = %d", cubeFFT),
		fmt.Sprintf("HSN uses %d", st.SuperSteps), st.SuperSteps < cubeFFT || cubeFFT <= 2*(l-1))
	return res, nil
}

func logMOf(m int) int {
	b := 0
	for 1<<b < m {
		b++
	}
	return b
}

// runTEIntercluster reproduces the Section 3.3/4.1 claim: a total exchange
// needs Theta(N^2 log N) intercluster transmissions on a hypercube but only
// Theta(N^2) on a super-IPG — a Theta(log N) advantage.  Measured exactly in
// the simulator at small scale and analytically across a size sweep.
func runTEIntercluster(scale Scale) (*Result, error) {
	res := &Result{ID: "E14/te-intercluster", Title: "total exchange intercluster census", Source: "Sec 3.3/4.1"}
	// Simulated at matching sizes: 64 nodes, 16 chips of 4.
	cube, err := netsim.BuildHypercube(6, 2, 1e9)
	if err != nil {
		return nil, err
	}
	rc, err := netsim.RunTotalExchange(cube, 5, 4000)
	if err != nil {
		return nil, err
	}
	w := superipg.HSN(3, nucleus.Hypercube(2))
	g, err := w.Build()
	if err != nil {
		return nil, err
	}
	hsnNet, err := netsim.BuildSuperIPG(w, g, 1e9, nil)
	if err != nil {
		return nil, err
	}
	rh, err := netsim.RunTotalExchange(hsnNet, 5, 4000)
	if err != nil {
		return nil, err
	}
	wantCube := netsim.TotalExchangeOffChipLowerBound(64, 2.0)
	wantHSN := netsim.TotalExchangeOffChipLowerBound(64, 1.5)
	tb := analysis.NewTable("Total exchange (64 nodes, 16 chips), off-chip transmissions",
		"network", "analytic N^2*avgIC", "simulated")
	tb.AddRow(cube.Name, wantCube, float64(rc.Stats.OffChipHops))
	tb.AddRow(hsnNet.Name, wantHSN, float64(rh.Stats.OffChipHops))
	res.addTable(tb)
	res.check("hypercube TE off-chip count", fmt.Sprintf("%.0f", wantCube),
		fmt.Sprint(rc.Stats.OffChipHops), float64(rc.Stats.OffChipHops) == wantCube)
	res.check("HSN TE off-chip count", fmt.Sprintf("%.0f", wantHSN),
		fmt.Sprint(rh.Stats.OffChipHops), float64(rh.Stats.OffChipHops) == wantHSN)

	// Analytic sweep: ratio cube/HSN grows like Theta(log N).
	maxN := 6
	if scale == Paper {
		maxN = 8
	}
	var logNs, ratios []float64
	sweep := analysis.NewTable("Sweep: TE intercluster transmissions, cube vs HSN(l,Q_l)",
		"log2 N", "cube ~N^2(logN-logM)/2", "HSN ~N^2(l-1)(M-1)/M", "ratio")
	for n := 2; n <= maxN; n++ {
		l := n // HSN(l=n, Q_n): N = 2^(n^2), M = 2^n
		logN := float64(n * l)
		N := math.Pow(2, logN)
		cubeTE := N * N * (logN - float64(n)) / 2
		m := math.Pow(2, float64(n))
		hsnTE := N * N * float64(l-1) * (m - 1) / m
		logNs = append(logNs, logN)
		ratios = append(ratios, cubeTE/hsnTE)
		sweep.AddRow(int(logN), cubeTE, hsnTE, cubeTE/hsnTE)
	}
	res.addTable(sweep)
	fit, err := analysis.LinearFit(logNs, ratios)
	if err != nil {
		return nil, err
	}
	res.check("cube/HSN ratio grows with log N", "Theta(log N) advantage",
		fmt.Sprintf("slope %.3f per log2 N (R2=%.3f)", fit.Slope, fit.R2),
		fit.Slope > 0 && fit.R2 > 0.9)
	return res, nil
}

// runThroughput reproduces the headline comparison: random-routing
// saturation throughput under unit chip capacity for the hypercube, HSN,
// and 2-D torus with the same number of chips and the same chip budget.
func runThroughput(scale Scale) (*Result, error) {
	res := &Result{ID: "E15/throughput", Title: "saturation throughput under unit chip capacity", Source: "Sections 1, 4"}
	var (
		chipCap               = 4.0
		d, logM               int
		l, k                  int
		torusK, torusSide     int
		warm, meas            int
		step, maxRate         float64
		wantRatioLo, wantHi   float64
		torusWorseThanCubeLim float64
	)
	if scale == Paper {
		d, logM = 12, 4
		l, k = 3, 4
		torusK, torusSide = 64, 4
		warm, meas = 150, 300
		// Chip budget 128 packets/round keeps even the hypercube's 128
		// off-chip links at 1 packet/round each, so unloaded latency stays
		// far below the warmup window; the saturation ratio is invariant
		// in the budget.
		chipCap = 128.0
		step, maxRate = 0.25, 6.0
		wantRatioLo, wantHi = 1.6, 2.6
		torusWorseThanCubeLim = 1.0
	} else {
		d, logM = 6, 2
		l, k = 3, 2
		torusK, torusSide = 8, 2
		warm, meas = 150, 300
		step, maxRate = 0.05, 1.2
		wantRatioLo, wantHi = 1.1, 1.7
		torusWorseThanCubeLim = 1.05
	}
	cube, err := netsim.BuildHypercube(d, logM, chipCap)
	if err != nil {
		return nil, err
	}
	cubeTh, _, err := netsim.SaturationThroughput(cube, 11, step, maxRate, warm, meas)
	if err != nil {
		return nil, err
	}
	w := superipg.HSN(l, nucleus.Hypercube(k))
	g, err := w.Build()
	if err != nil {
		return nil, err
	}
	hsnNet, err := netsim.BuildSuperIPG(w, g, chipCap, nil)
	if err != nil {
		return nil, err
	}
	hsnTh, _, err := netsim.SaturationThroughput(hsnNet, 11, step, maxRate, warm, meas)
	if err != nil {
		return nil, err
	}
	torus, err := netsim.BuildTorus2D(torusK, torusSide, chipCap)
	if err != nil {
		return nil, err
	}
	torusTh, _, err := netsim.SaturationThroughput(torus, 11, step, maxRate, warm, meas)
	if err != nil {
		return nil, err
	}
	tb := analysis.NewTable(fmt.Sprintf("Random routing saturation (chip budget %.3g packets/round)", chipCap),
		"network", "N", "chips", "throughput pkts/node/round", "vs hypercube")
	tb.AddRow(cube.Name, cube.N, cube.N>>logM, cubeTh, 1.0)
	tb.AddRow(hsnNet.Name, hsnNet.N, hsnNet.N/w.M(), hsnTh, hsnTh/cubeTh)
	tb.AddRow(torus.Name, torus.N, torus.N/(torusSide*torusSide), torusTh, torusTh/cubeTh)
	res.addTable(tb)
	ratio := hsnTh / cubeTh
	res.check("HSN outperforms hypercube", fmt.Sprintf("~%.3gx (avgIC ratio)", wantHi/1.2),
		fmt.Sprintf("%.2fx", ratio), ratio >= wantRatioLo && ratio <= wantHi)
	res.check("torus does not beat hypercube", "torus behind at equal chips",
		fmt.Sprintf("%.2fx", torusTh/cubeTh), torusTh <= cubeTh*torusWorseThanCubeLim)
	res.check("HSN beats torus", "super-IPG best", fmt.Sprintf("%.2fx", hsnTh/torusTh), hsnTh > torusTh)
	return res, nil
}
