package experiments

import (
	"fmt"

	"ipg/internal/analysis"
	"ipg/internal/embed"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

// runEmbeddings reproduces Corollary 3.4: any graph embeddable in the
// ln-dimensional hypercube with constant dilation embeds with constant
// dilation in HCN, HFN, complete-CN, SFN, RCC, and RHSN.  Concrete
// witnesses: rings (Gray code, dilation 1), wrapped meshes (Gray-code
// products, dilation 1), and complete binary trees (inorder labelling,
// dilation 2), each composed through the identity HPN embedding and
// measured exactly by BFS on the materialized super-IPGs.
func runEmbeddings(scale Scale) (*Result, error) {
	res := &Result{ID: "E20/embeddings", Title: "constant-dilation embeddings", Source: "Cor 3.4"}
	k := 2
	if scale == Paper {
		k = 3
	}
	type host struct {
		w *superipg.Network
		// factor bounds the dilation multiplier of the host over the
		// hypercube: the SDC slowdown 3 for one-level families, 3^r for an
		// r-deep RHSN (each level multiplies; still a constant, which is
		// all Corollary 3.4 claims).
		factor int
	}
	hosts := []host{
		{superipg.HCN(k + 1), 3},
		{superipg.HFN(k + 1), 3},
		{superipg.HSN(3, nucleus.Hypercube(k)), 3},
		{superipg.CompleteCN(3, nucleus.Hypercube(k)), 3},
		{superipg.SFN(3, nucleus.Hypercube(k)), 3},
		{superipg.RHSN(2, 2, nucleus.Hypercube(k)), 9},
	}
	tb := analysis.NewTable("Measured dilations (guest -> ln-cube -> super-IPG)",
		"host", "N", "ring", "torus", "binary tree")
	for _, h := range hosts {
		w := h.w
		g, err := w.Build()
		if err != nil {
			return nil, err
		}
		u := g.Undirected()
		logN := 0
		for 1<<logN < g.N() {
			logN++
		}
		guests := []*embed.Embedding{
			embed.Ring(logN),
			embed.Mesh(logN/2, logN-logN/2, true),
			embed.CompleteBinaryTree(logN),
		}
		dils := make([]int, len(guests))
		for i, e := range guests {
			comp, err := embed.IntoSuperIPG(e, w, g)
			if err != nil {
				return nil, err
			}
			d, err := embed.MeasureDilation(comp, u)
			if err != nil {
				return nil, err
			}
			dils[i] = d
			cubeDil := e.Dilation(embed.HypercubeDistance)
			res.check(fmt.Sprintf("%s into %s", e.GuestName, w.Name()),
				fmt.Sprintf("constant dilation (<= %dx cube's %d)", h.factor, cubeDil),
				fmt.Sprintf("dilation %d", d), d <= h.factor*cubeDil && d >= 1)
		}
		tb.AddRow(w.Name(), g.N(), dils[0], dils[1], dils[2])
	}
	res.addTable(tb)
	return res, nil
}
