package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs the full reproduction suite at Small scale:
// every paper-vs-measured check must hold.
func TestAllExperimentsPass(t *testing.T) {
	results, err := RunAll(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("got %d results for %d experiments", len(results), len(IDs()))
	}
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("experiment %s failed:\n%s", r.ID, r)
		}
		if len(r.Checks) == 0 {
			t.Errorf("experiment %s has no checks", r.ID)
		}
	}
}

// TestPaperScaleCheapExperiments exercises the Paper-scale code paths of
// the experiments whose large configurations are still fast (the slow
// simulator-heavy ones are covered by cmd/paperbench -scale paper).
func TestPaperScaleCheapExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale runs skipped in -short mode")
	}
	for _, id := range []string{"fig1a", "fig1b", "dim11", "symmetric", "ascend-ghc", "mnb-te", "ic-diameter", "optimality", "embeddings", "multilevel", "wormhole"} {
		res, err := Run(id, Paper)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !res.Passed() {
			t.Errorf("%s failed at paper scale:\n%s", id, res)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Small); err == nil {
		t.Error("unknown id should error")
	}
}

func TestResultRendering(t *testing.T) {
	r, err := Run("dim11", Small)
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"E3/dim11", "HSN(4,Q4)", "T3", "[ok  ]"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing %q:\n%s", want, out)
		}
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 22 {
		t.Errorf("expected 22 experiments, got %d: %v", len(ids), ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestFig1bChecks(t *testing.T) {
	r, err := Run("fig1b", Small)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Fatalf("fig1b failed:\n%s", r)
	}
	found93 := false
	for _, c := range r.Checks {
		if strings.Contains(c.Paper, "93%") {
			found93 = true
		}
	}
	if !found93 {
		t.Error("fig1b should check the 93% utilization claim")
	}
}
