package experiments

import (
	"fmt"

	"ipg/internal/analysis"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

// runICDiameter reproduces Theorem 4.1 and Corollary 4.2: the intercluster
// diameter of HSN, RCC, CN (ring/complete/directed), and SFN is
// l - 1 = log_M(N) - 1, verified both by the generator-word BFS (t) and by
// quotient-graph BFS on materialized instances.
func runICDiameter(scale Scale) (*Result, error) {
	res := &Result{ID: "E8/ic-diameter", Title: "intercluster diameter = l-1", Source: "Thm 4.1, Cor 4.2"}
	maxL := 4
	nuc := nucleus.Hypercube(2)
	if scale == Paper {
		maxL = 5
	}
	tb := analysis.NewTable("Intercluster diameter", "network", "l-1 (Cor 4.2)", "t (word BFS)", "measured (quotient BFS)")
	for l := 2; l <= maxL; l++ {
		nets := []*superipg.Network{
			superipg.HSN(l, nuc),
			superipg.RingCN(l, nuc),
			superipg.CompleteCN(l, nuc),
			superipg.SFN(l, nuc),
			superipg.DirectedCN(l, nuc),
		}
		for _, w := range nets {
			t, err := w.InterclusterT()
			if err != nil {
				return nil, err
			}
			g, err := w.Build()
			if err != nil {
				return nil, err
			}
			var d int
			if w.Family == "directed-CN" {
				d = w.DirectedInterclusterDiameter(g)
			} else {
				d = w.InterclusterDiameter(g)
			}
			measured := fmt.Sprint(d)
			okMeasured := d == l-1
			tb.AddRow(w.Name(), l-1, t, measured)
			res.check(w.Name(), fmt.Sprintf("l-1 = %d", l-1),
				fmt.Sprintf("t=%d measured=%s", t, measured), t == l-1 && okMeasured)
		}
	}
	res.addTable(tb)
	return res, nil
}

// runSymmetric reproduces Corollary 4.4: the symmetric intercluster
// diameters t_S — l for complete-CN, 2l-2 for HSN/SFN, and 2, 3,
// floor(1.5 l)-2 for ring-CN with l = 2, 3, >= 4 — computed exactly by BFS
// over the super-generator arrangement space.
func runSymmetric(scale Scale) (*Result, error) {
	res := &Result{ID: "E9/symmetric", Title: "symmetric intercluster diameters", Source: "Cor 4.4"}
	maxL := 5
	if scale == Paper {
		maxL = 7
	}
	nuc := nucleus.Hypercube(1)
	tb := analysis.NewTable("Symmetric intercluster diameter t_S", "network", "Cor 4.4", "measured")
	for l := 2; l <= maxL; l++ {
		for _, w := range []*superipg.Network{
			superipg.CompleteCN(l, nuc),
			superipg.HSN(l, nuc),
			superipg.SFN(l, nuc),
			superipg.RingCN(l, nuc),
		} {
			want := w.TheoreticalSymmetricDiameter()
			got, err := w.SymmetricTS()
			if err != nil {
				return nil, err
			}
			tb.AddRow(w.Name(), want, got)
			if w.Family == "SFN" && l >= 6 {
				// Pancake-style routing beats the generic bound for l >= 6;
				// the corollary's value is an upper bound there.
				res.check(w.Name()+" (upper bound regime)", fmt.Sprintf("<= %d", want),
					fmt.Sprint(got), got <= want)
				continue
			}
			res.check(w.Name(), fmt.Sprint(want), fmt.Sprint(got), got == want)
		}
	}
	res.addTable(tb)
	return res, nil
}
