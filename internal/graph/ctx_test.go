package graph

import (
	"context"
	"errors"
	"testing"
	"time"
)

// ringGraph builds a cycle on n vertices.
func ringGraph(n int) *Graph {
	return FromStream(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			edge(v, (v+1)%n)
		}
	})
}

func TestDiameterParallelCtxMatchesSerial(t *testing.T) {
	g := ringGraph(64)
	d, err := g.DiameterParallelCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := g.Diameter(); d != want {
		t.Fatalf("DiameterParallelCtx = %d, want %d", d, want)
	}
	avg, err := g.AverageDistanceParallelCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := g.AverageDistance(); avg != want {
		t.Fatalf("AverageDistanceParallelCtx = %v, want %v", avg, want)
	}
}

func TestDiameterParallelCtxCancelled(t *testing.T) {
	g := ringGraph(4096) // big enough that the source loop is still running
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.DiameterParallelCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := g.AverageDistanceParallelCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("avg err = %v, want context.Canceled", err)
	}
}

func TestDiameterParallelCtxDeadlinePrompt(t *testing.T) {
	g := ringGraph(1 << 15) // ring: all-pairs BFS is O(n^2), slow enough to trip a tiny deadline
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := g.DiameterParallelCtx(ctx)
	if err == nil {
		t.Skip("machine finished the all-pairs BFS inside the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Cancellation is checked between sources, so the return must be far
	// faster than the full computation (seconds on this size).
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}
}
