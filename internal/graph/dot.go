package graph

import (
	"fmt"
	"io"
)

// WriteDOT emits the graph in Graphviz DOT format.  If clusterOf is
// non-nil, nodes are grouped into subgraph clusters (one per chip),
// visualizing the MCMP packaging; label, if non-nil, supplies node labels.
func (g *Graph) WriteDOT(w io.Writer, name string, clusterOf []int32, label func(v int) string) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle fontsize=10];\n", name); err != nil {
		return err
	}
	emitNode := func(v int) error {
		if label != nil {
			_, err := fmt.Fprintf(w, "    %d [label=%q];\n", v, label(v))
			return err
		}
		_, err := fmt.Fprintf(w, "    %d;\n", v)
		return err
	}
	if clusterOf != nil {
		if len(clusterOf) != g.N() {
			return fmt.Errorf("graph: clusterOf has %d entries for %d nodes", len(clusterOf), g.N())
		}
		byCluster := map[int32][]int{}
		for v, c := range clusterOf {
			byCluster[c] = append(byCluster[c], v)
		}
		for c := int32(0); int(c) < len(byCluster); c++ {
			if _, err := fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=\"chip %d\";\n", c, c); err != nil {
				return err
			}
			for _, v := range byCluster[c] {
				if err := emitNode(v); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprint(w, "  }\n"); err != nil {
				return err
			}
		}
	} else {
		for v := 0; v < g.N(); v++ {
			if err := emitNode(v); err != nil {
				return err
			}
		}
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		style := ""
		if clusterOf != nil && clusterOf[u] != clusterOf[v] {
			style = " [color=red]" // off-chip link
		}
		_, werr = fmt.Fprintf(w, "  %d -- %d%s;\n", u, v, style)
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprint(w, "}\n")
	return err
}
