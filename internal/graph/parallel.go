package graph

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file parallelizes the all-sources distance computations (diameter,
// average distance) that dominate the metric experiments: BFS from
// different sources is embarrassingly parallel, so sources are distributed
// over a worker pool.
//
// Every entry point has a context-aware variant (DiameterParallelCtx,
// AverageDistanceParallelCtx) used by the serving layer to enforce
// per-request deadlines: each worker re-checks the context between BFS
// sources, i.e. after every N vertices of traversal work, so cancellation
// latency is bounded by one BFS rather than the whole all-pairs loop.

// parallelSources runs fn(src, scratch) for every source in [0, n) on
// GOMAXPROCS workers; each worker owns one scratch distance buffer.  The
// CSR is finalized before workers spawn so they only ever read it.
func (g *Graph) parallelSources(fn func(src int, dist []int32, queue []int32)) {
	// Background is never cancelled, so the error can be ignored.
	_ = g.parallelSourcesCtx(context.Background(), fn)
}

// parallelSourcesCtx is parallelSources with cooperative cancellation: the
// source-dispensing loop in every worker checks ctx between sources and
// stops early when it is done.  Sources already dispatched finish their
// BFS; the function then returns ctx's error.
func (g *Graph) parallelSourcesCtx(ctx context.Context, fn func(src int, dist []int32, queue []int32)) error {
	g.ensure()
	n := g.N()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(src, dist, queue)
		}
		return nil
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist := make([]int32, n)
			queue := make([]int32, 0, n)
			for ctx.Err() == nil {
				src := int(atomic.AddInt64(&next, 1))
				if src >= n {
					return
				}
				fn(src, dist, queue)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// bfsInto runs BFS from src into the caller-owned buffers and returns the
// eccentricity and the sum of distances, or ecc = -1 if disconnected.  It
// is the shared CSR kernel in internal/topo.
func (g *Graph) bfsInto(src int, dist []int32, queue []int32) (ecc int32, sum int64) {
	return g.ensure().BFSInto(src, dist, queue)
}

// DiameterParallel computes the exact diameter with source-parallel BFS.
// It returns -1 for disconnected graphs.
func (g *Graph) DiameterParallel() int {
	d, _ := g.DiameterParallelCtx(context.Background())
	return d
}

// DiameterParallelCtx is DiameterParallel under a context deadline: it
// returns ctx's error if cancelled before all sources complete, checking
// between BFS sources (every N vertices of work).
func (g *Graph) DiameterParallelCtx(ctx context.Context) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	var diam int64
	var disconnected int64
	err := g.parallelSourcesCtx(ctx, func(src int, dist []int32, queue []int32) {
		ecc, _ := g.bfsInto(src, dist, queue)
		if ecc < 0 {
			atomic.StoreInt64(&disconnected, 1)
			return
		}
		for {
			cur := atomic.LoadInt64(&diam)
			if int64(ecc) <= cur || atomic.CompareAndSwapInt64(&diam, cur, int64(ecc)) {
				return
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if disconnected != 0 {
		return -1, nil
	}
	return int(diam), nil
}

// AverageDistanceParallel computes the mean distance over all ordered
// pairs (including self pairs) with source-parallel BFS; -1 if
// disconnected.
func (g *Graph) AverageDistanceParallel() float64 {
	avg, _ := g.AverageDistanceParallelCtx(context.Background())
	return avg
}

// AverageDistanceParallelCtx is AverageDistanceParallel under a context
// deadline, with the same cancellation granularity as
// DiameterParallelCtx.
func (g *Graph) AverageDistanceParallelCtx(ctx context.Context) (float64, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	var total int64
	var disconnected int64
	err := g.parallelSourcesCtx(ctx, func(src int, dist []int32, queue []int32) {
		ecc, sum := g.bfsInto(src, dist, queue)
		if ecc < 0 {
			atomic.StoreInt64(&disconnected, 1)
			return
		}
		atomic.AddInt64(&total, sum)
	})
	if err != nil {
		return 0, err
	}
	if disconnected != 0 {
		return -1, nil
	}
	return float64(total) / float64(n) / float64(n), nil
}
