package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file parallelizes the all-sources distance computations (diameter,
// average distance) that dominate the metric experiments: BFS from
// different sources is embarrassingly parallel, so sources are distributed
// over a worker pool.

// parallelSources runs fn(src, scratch) for every source in [0, n) on
// GOMAXPROCS workers; each worker owns one scratch distance buffer.  The
// CSR is finalized before workers spawn so they only ever read it.
func (g *Graph) parallelSources(fn func(src int, dist []int32, queue []int32)) {
	g.ensure()
	n := g.N()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			fn(src, dist, queue)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist := make([]int32, n)
			queue := make([]int32, 0, n)
			for {
				src := int(atomic.AddInt64(&next, 1))
				if src >= n {
					return
				}
				fn(src, dist, queue)
			}
		}()
	}
	wg.Wait()
}

// bfsInto runs BFS from src into the caller-owned buffers and returns the
// eccentricity and the sum of distances, or ecc = -1 if disconnected.  It
// is the shared CSR kernel in internal/topo.
func (g *Graph) bfsInto(src int, dist []int32, queue []int32) (ecc int32, sum int64) {
	return g.ensure().BFSInto(src, dist, queue)
}

// DiameterParallel computes the exact diameter with source-parallel BFS.
// It returns -1 for disconnected graphs.
func (g *Graph) DiameterParallel() int {
	if g.N() == 0 {
		return 0
	}
	var diam int64
	var disconnected int64
	g.parallelSources(func(src int, dist []int32, queue []int32) {
		ecc, _ := g.bfsInto(src, dist, queue)
		if ecc < 0 {
			atomic.StoreInt64(&disconnected, 1)
			return
		}
		for {
			cur := atomic.LoadInt64(&diam)
			if int64(ecc) <= cur || atomic.CompareAndSwapInt64(&diam, cur, int64(ecc)) {
				return
			}
		}
	})
	if disconnected != 0 {
		return -1
	}
	return int(diam)
}

// AverageDistanceParallel computes the mean distance over all ordered
// pairs (including self pairs) with source-parallel BFS; -1 if
// disconnected.
func (g *Graph) AverageDistanceParallel() float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	var total int64
	var disconnected int64
	g.parallelSources(func(src int, dist []int32, queue []int32) {
		ecc, sum := g.bfsInto(src, dist, queue)
		if ecc < 0 {
			atomic.StoreInt64(&disconnected, 1)
			return
		}
		atomic.AddInt64(&total, sum)
	})
	if disconnected != 0 {
		return -1
	}
	return float64(total) / float64(n) / float64(n)
}
