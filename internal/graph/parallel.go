package graph

//lint:file-ignore ctxflow worker closures process one 64-source MSBFS batch per iteration and the enclosing loops poll ctx between batches, so cancellation latency is bounded by a single batch

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ipg/internal/topo"
)

// This file parallelizes the all-sources distance computations (diameter,
// average distance) that dominate the metric experiments.  The drivers
// are generic over topo.Source: the same code sweeps a materialized CSR
// arena (Graph delegates here) and a codec-backed topo.Implicit, with
// the CSR fast path preserved inside the kernels by type switch.
// Sources are processed 64 at a time by the bit-parallel multi-source
// BFS kernel (topo.MSBFSSourceInto), and the batches are distributed
// over a worker pool: compared with one scalar BFS per source this
// shares every adjacency scan across the whole batch, which is where the
// per-family speedups reported in EXPERIMENTS.md come from.
//
// Vertex-transitive sources (a Graph marked by its family builder, or an
// Implicit whose codec proves transitivity) collapse further: every
// vertex has the same eccentricity and distance sum, so one scalar BFS
// from vertex 0 yields the exact diameter and average distance.  The
// serial Diameter and AverageDistance deliberately keep the full
// all-sources sweep, so the existing parallel-equals-serial tests double
// as a symmetry cross-check.
//
// Every entry point takes a context, used by the serving layer to
// enforce per-request deadlines: each worker re-checks the context
// between batches, so cancellation latency is bounded by one 64-source
// batch rather than the whole all-pairs loop.

// batchSize is the MSBFS lane width: one bit per source in a uint64 word.
const batchSize = 64

// parallelBatchesSourceCtx partitions [0, n) into 64-source batches, runs
// the multi-source BFS kernel on each over a GOMAXPROCS worker pool, and
// hands every batch's eccentricities and distance sums to merge (which
// must be safe for concurrent calls).  Workers check ctx between batches
// and stop early when it is cancelled; batches already dispatched finish,
// and the function returns ctx's error.  Traversal scratch comes from the
// shared topo pool, so repeated metric builds allocate O(1) at steady
// state.
func parallelBatchesSourceCtx(ctx context.Context, src topo.Source, merge func(srcs []int32, ecc []int32, sum []int64)) error {
	n := src.N()
	batches := (n + batchSize - 1) / batchSize
	run := func(b int, srcs []int32, s *topo.Scratch, ecc []int32, sum []int64, nbuf []int32) []int32 {
		lo := b * batchSize
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		srcs = srcs[:0]
		for v := lo; v < hi; v++ {
			//lint:ignore indextrunc v < n, which the source construction bounds to MaxVertices (math.MaxInt32)
			srcs = append(srcs, int32(v))
		}
		nbuf = topo.MSBFSSourceInto(src, srcs, s.MS(n), ecc[:len(srcs)], sum[:len(srcs)], nil, nbuf)
		merge(srcs, ecc[:len(srcs)], sum[:len(srcs)])
		return nbuf
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > batches {
		workers = batches
	}
	if workers <= 1 {
		s := topo.GetScratch(n)
		defer topo.PutScratch(s)
		srcs := make([]int32, 0, batchSize)
		ecc := make([]int32, batchSize)
		sum := make([]int64, batchSize)
		nbuf := make([]int32, 0, src.DegreeBound())
		for b := 0; b < batches; b++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			nbuf = run(b, srcs, s, ecc, sum, nbuf)
		}
		return nil
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := topo.GetScratch(n)
			defer topo.PutScratch(s)
			srcs := make([]int32, 0, batchSize)
			ecc := make([]int32, batchSize)
			sum := make([]int64, batchSize)
			nbuf := make([]int32, 0, src.DegreeBound())
			for ctx.Err() == nil {
				b := int(atomic.AddInt64(&next, 1))
				if b >= batches {
					return
				}
				nbuf = run(b, srcs, s, ecc, sum, nbuf)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// singleSourceSweep runs one pooled scalar BFS from vertex 0 — the
// vertex-transitive shortcut shared by both metric entry points.
func singleSourceSweep(ctx context.Context, src topo.Source) (ecc int32, sum int64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	n := src.N()
	s := topo.GetScratch(n)
	defer topo.PutScratch(s)
	ecc, sum, _ = topo.BFSSourceInto(src, 0, s.Dist, s.Queue, make([]int32, 0, src.DegreeBound()))
	return ecc, sum, nil
}

// diameterSourceCtx is the shared diameter driver; vt selects the
// single-source shortcut (the caller's proof of vertex transitivity).
func diameterSourceCtx(ctx context.Context, src topo.Source, vt bool) (int, error) {
	if src.N() == 0 {
		return 0, nil
	}
	if vt {
		ecc, _, err := singleSourceSweep(ctx, src)
		if err != nil {
			return 0, err
		}
		return int(ecc), nil
	}
	var diam atomic.Int64
	var disconnected atomic.Bool
	err := parallelBatchesSourceCtx(ctx, src, func(_ []int32, ecc []int32, _ []int64) {
		var batchMax int64
		for _, e := range ecc {
			if e < 0 {
				disconnected.Store(true)
				return
			}
			if int64(e) > batchMax {
				batchMax = int64(e)
			}
		}
		topo.AtomicMaxInt64(&diam, batchMax)
	})
	if err != nil {
		return 0, err
	}
	if disconnected.Load() {
		return -1, nil
	}
	return int(diam.Load()), nil
}

// avgDistanceSourceCtx is the shared average-distance driver; vt selects
// the single-source shortcut.  The shortcut multiplies the one distance
// sum by n — the same int64 total the full sweep accumulates, so the
// final division is bit-identical to the swept result.
func avgDistanceSourceCtx(ctx context.Context, src topo.Source, vt bool) (float64, error) {
	n := src.N()
	if n == 0 {
		return 0, nil
	}
	if vt {
		ecc, sum, err := singleSourceSweep(ctx, src)
		if err != nil {
			return 0, err
		}
		if ecc < 0 {
			return -1, nil
		}
		total := sum * int64(n)
		return float64(total) / float64(n) / float64(n), nil
	}
	var total atomic.Int64
	var disconnected atomic.Bool
	err := parallelBatchesSourceCtx(ctx, src, func(_ []int32, ecc []int32, sum []int64) {
		var batchTotal int64
		for i, e := range ecc {
			if e < 0 {
				disconnected.Store(true)
				return
			}
			batchTotal += sum[i]
		}
		total.Add(batchTotal)
	})
	if err != nil {
		return 0, err
	}
	if disconnected.Load() {
		return -1, nil
	}
	return float64(total.Load()) / float64(n) / float64(n), nil
}

// DiameterSourceCtx computes the exact diameter of any adjacency source
// with batched source-parallel BFS, collapsing to a single BFS when the
// source proves vertex transitivity (topo.Symmetric).  It returns -1 for
// disconnected sources and ctx's error if cancelled between batches.
func DiameterSourceCtx(ctx context.Context, src topo.Source) (int, error) {
	return diameterSourceCtx(ctx, src, topo.SourceTransitive(src))
}

// AverageDistanceSourceCtx computes the mean distance over all ordered
// vertex pairs (including self pairs) of any adjacency source, with the
// same transitivity shortcut and cancellation granularity as
// DiameterSourceCtx; -1 if disconnected.
func AverageDistanceSourceCtx(ctx context.Context, src topo.Source) (float64, error) {
	return avgDistanceSourceCtx(ctx, src, topo.SourceTransitive(src))
}

// DiameterParallel computes the exact diameter with batched
// source-parallel BFS.  It returns -1 for disconnected graphs.
func (g *Graph) DiameterParallel() int {
	d, _ := g.DiameterParallelCtx(context.Background())
	return d
}

// DiameterParallelCtx is DiameterParallel under a context deadline: it
// returns ctx's error if cancelled before all batches complete, checking
// between 64-source batches.  Vertex-transitive graphs take the
// single-source shortcut (every eccentricity is equal, so ecc(0) is the
// diameter).  The sweep runs over the finalized CSR, hitting the arena
// fast path of the Source kernels.
func (g *Graph) DiameterParallelCtx(ctx context.Context) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	return diameterSourceCtx(ctx, g.ensure(), g.vt)
}

// AverageDistanceParallel computes the mean distance over all ordered
// pairs (including self pairs) with batched source-parallel BFS; -1 if
// disconnected.
func (g *Graph) AverageDistanceParallel() float64 {
	avg, _ := g.AverageDistanceParallelCtx(context.Background())
	return avg
}

// AverageDistanceParallelCtx is AverageDistanceParallel under a context
// deadline, with the same cancellation granularity and vertex-transitive
// shortcut as DiameterParallelCtx.
func (g *Graph) AverageDistanceParallelCtx(ctx context.Context) (float64, error) {
	if g.N() == 0 {
		return 0, nil
	}
	return avgDistanceSourceCtx(ctx, g.ensure(), g.vt)
}
