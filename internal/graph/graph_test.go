package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// ring returns the cycle graph C_n.
func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// complete returns K_n.
func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestBasicEdgeOps(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) || !g.AddEdge(1, 2) {
		t.Fatal("fresh edges should be added")
	}
	if g.AddEdge(1, 0) {
		t.Error("duplicate edge added")
	}
	if g.AddEdge(2, 2) {
		t.Error("self-loop added")
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(2, 1) || g.HasEdge(0, 3) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
}

func TestRingMetrics(t *testing.T) {
	g := ring(8)
	if !g.Connected() {
		t.Fatal("ring should be connected")
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("C8 diameter = %d, want 4", d)
	}
	if reg, d := g.IsRegular(); !reg || d != 2 {
		t.Errorf("C8 regularity = %v,%d", reg, d)
	}
	// Average distance over ordered pairs incl. self: (0+1+1+2+2+3+3+4)/8 = 2.
	if a := g.AverageDistance(); a != 2.0 {
		t.Errorf("C8 avg distance = %v, want 2", a)
	}
}

func TestCompleteMetrics(t *testing.T) {
	g := complete(5)
	if g.M() != 10 {
		t.Errorf("K5 edges = %d", g.M())
	}
	if d := g.Diameter(); d != 1 {
		t.Errorf("K5 diameter = %d", d)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Error("should be disconnected")
	}
	if g.Diameter() != -1 {
		t.Error("diameter of disconnected graph should be -1")
	}
	if g.AverageDistance() != -1 {
		t.Error("avg distance of disconnected graph should be -1")
	}
	if g.Eccentricity(0) != -1 {
		t.Error("eccentricity should be -1 when unreachable vertices exist")
	}
}

func TestBFSDistances(t *testing.T) {
	g := ring(6)
	d := g.BFS(0)
	want := []int32{0, 1, 2, 3, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist(0,%d) = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestCartesianProduct(t *testing.T) {
	// C4 x C4 is the 4-ary 2-cube: 16 vertices, 32 edges, diameter 4.
	g := CartesianProduct(ring(4), ring(4))
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("C4xC4: n=%d m=%d", g.N(), g.M())
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("C4xC4 diameter = %d, want 4", d)
	}
	if reg, deg := g.IsRegular(); !reg || deg != 4 {
		t.Errorf("C4xC4 degree = %v,%d", reg, deg)
	}
}

func TestPowerIsHypercube(t *testing.T) {
	// K2^d is the d-cube.
	for d := 1; d <= 6; d++ {
		g := Power(complete(2), d)
		if g.N() != 1<<d {
			t.Fatalf("K2^%d has %d vertices", d, g.N())
		}
		if g.M() != d*(1<<d)/2 {
			t.Fatalf("K2^%d has %d edges, want %d", d, g.M(), d*(1<<d)/2)
		}
		if diam := g.Diameter(); diam != d {
			t.Fatalf("K2^%d diameter = %d", d, diam)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	min, max, avg := g.DegreeStats()
	if min != 0 || max != 1 || avg != 2.0/3.0 {
		t.Errorf("stats = %d,%d,%v", min, max, avg)
	}
}

func TestCutSizeAndBisection(t *testing.T) {
	// 6-cycle with alternating sides: every edge cut.
	g := ring(6)
	side := []int8{0, 1, 0, 1, 0, 1}
	if c := g.CutSize(side); c != 6 {
		t.Errorf("alternating cut = %d, want 6", c)
	}
	// Contiguous halves: exactly 2 edges cut — the true bisection width.
	side = []int8{0, 0, 0, 1, 1, 1}
	if c := g.CutSize(side); c != 2 {
		t.Errorf("contiguous cut = %d, want 2", c)
	}
	if !IsBisection(side) {
		t.Error("contiguous halves are a bisection")
	}
	if IsBisection([]int8{0, 0, 0, 0, 1, 1}) {
		t.Error("4/2 split is not a bisection")
	}
}

func TestRefineBisectionFindsRingCut(t *testing.T) {
	g := ring(16)
	r := rand.New(rand.NewSource(7))
	_, cut := g.BestBisection(r, 30, 100)
	if cut != 2 {
		t.Errorf("refined ring bisection = %d, want 2", cut)
	}
}

func TestRefinePreservesBalance(t *testing.T) {
	g := Power(complete(2), 5)
	r := rand.New(rand.NewSource(3))
	side, cut := g.BestBisection(r, 10, 200)
	if !IsBisection(side) {
		t.Fatal("refiner broke balance")
	}
	// Hypercube Q5 bisection width is 16; refiner must not report less.
	if cut < 16 {
		t.Errorf("refiner found impossible cut %d < 16 for Q5", cut)
	}
	// Structured seed should lock in the optimum.
	seed := make([]int8, g.N())
	for v := range seed {
		seed[v] = int8(v >> 4 & 1)
	}
	_, cut = g.BestBisection(r, 0, 10, seed)
	if cut != 16 {
		t.Errorf("structured Q5 bisection = %d, want 16", cut)
	}
}

func TestQuickProductSize(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw%5) + 2
		b := int(bRaw%5) + 2
		p := CartesianProduct(ring(a), ring(b))
		wantM := a * b * 2 // each vertex degree 4 (degree 2+2), edges = 4ab/2
		if a == 2 {
			wantM -= b // C2 collapses to a single edge
		}
		if b == 2 {
			wantM -= a
		}
		return p.N() == a*b && p.M() == wantM
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	a, b := ring(5), ring(5)
	if !Equal(a, b) {
		t.Error("identical rings should be Equal")
	}
	b.AddEdge(0, 2)
	if Equal(a, b) {
		t.Error("different graphs Equal")
	}
}

func TestWriteDOT(t *testing.T) {
	g := ring(4)
	var buf bytes.Buffer
	clusterOf := []int32{0, 0, 1, 1}
	err := g.WriteDOT(&buf, "C4", clusterOf, func(v int) string { return fmt.Sprintf("n%d", v) })
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"C4\"", "subgraph cluster_0", "subgraph cluster_1", "color=red", "n3"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Off-chip edges: {1,2} and {3,0} -> two red edges.
	if got := strings.Count(out, "color=red"); got != 2 {
		t.Errorf("red edges = %d, want 2", got)
	}
	if err := g.WriteDOT(&buf, "bad", []int32{0}, nil); err == nil {
		t.Error("short clusterOf should error")
	}
	buf.Reset()
	if err := g.WriteDOT(&buf, "plain", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 -- 1") {
		t.Error("plain DOT missing edges")
	}
}

func TestDiameterFromSample(t *testing.T) {
	g := ring(10)
	if d := g.DiameterFromSample([]int{0}); d != 5 {
		t.Errorf("sampled diameter = %d, want 5", d)
	}
}
