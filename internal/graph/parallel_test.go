package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParallelMatchesSerial(t *testing.T) {
	graphs := []*Graph{
		ring(17),
		complete(9),
		Power(complete(2), 7),
		CartesianProduct(ring(5), complete(4)),
	}
	for _, g := range graphs {
		if dp, ds := g.DiameterParallel(), g.Diameter(); dp != ds {
			t.Errorf("diameter parallel %d != serial %d", dp, ds)
		}
		ap, as := g.AverageDistanceParallel(), g.AverageDistance()
		if ap != as {
			t.Errorf("avg distance parallel %v != serial %v", ap, as)
		}
	}
}

func TestParallelDisconnected(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	if g.DiameterParallel() != -1 {
		t.Error("disconnected diameter should be -1")
	}
	if g.AverageDistanceParallel() != -1 {
		t.Error("disconnected avg distance should be -1")
	}
}

func TestParallelEmpty(t *testing.T) {
	g := New(0)
	if g.DiameterParallel() != 0 {
		t.Error("empty graph diameter should be 0")
	}
}

func TestQuickParallelRandomGraphs(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		r := rand.New(rand.NewSource(seed))
		g := New(n)
		// Random spanning structure plus noise edges for connectivity.
		for v := 1; v < n; v++ {
			g.AddEdge(v, r.Intn(v))
		}
		for e := 0; e < n/2; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		return g.DiameterParallel() == g.Diameter() &&
			g.AverageDistanceParallel() == g.AverageDistance()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
