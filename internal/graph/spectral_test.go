package graph

import (
	"math"
	"testing"
)

func TestAlgebraicConnectivityKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want float64
	}{
		{"K6", complete(6), 6},                                // lambda2(K_n) = n
		{"C8", ring(8), 2 - 2*math.Cos(2*math.Pi/8)},          // 2-2cos(2pi/n)
		{"Q4", Power(complete(2), 4), 2},                      // lambda2(Q_d) = 2
		{"path-ish C12", ring(12), 2 - 2*math.Cos(math.Pi/6)}, // 2-2cos(2pi/12)
	}
	for _, c := range cases {
		got, err := c.g.AlgebraicConnectivity(1, 1e-12, 20000)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-4*(1+c.want) {
			t.Errorf("%s: lambda2 = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSpectralBisectionBound(t *testing.T) {
	// Hypercube: the spectral bound lambda2*N/4 = N/2 is exactly the
	// bisection width.
	q5 := Power(complete(2), 5)
	lb, err := q5.SpectralBisectionLowerBound(1)
	if err != nil {
		t.Fatal(err)
	}
	if lb < 15 || lb > 16 {
		t.Errorf("Q5 spectral bound = %d, want ~16 (exact width)", lb)
	}
	// Ring: bound must not exceed the true width 2.
	lbRing, err := ring(16).SpectralBisectionLowerBound(1)
	if err != nil {
		t.Fatal(err)
	}
	if lbRing < 1 || lbRing > 2 {
		t.Errorf("C16 spectral bound = %d, want 1..2", lbRing)
	}
}

func TestAlgebraicConnectivityEdgeCases(t *testing.T) {
	if _, err := New(1).AlgebraicConnectivity(1, 1e-9, 100); err == nil {
		t.Error("single vertex should error")
	}
	// Disconnected: lambda2 = 0.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	got, err := g.AlgebraicConnectivity(1, 1e-12, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-6 {
		t.Errorf("disconnected lambda2 = %v, want ~0", got)
	}
	// Edgeless graph.
	if l2, err := New(3).AlgebraicConnectivity(1, 1e-9, 10); err != nil || l2 != 0 {
		t.Errorf("edgeless lambda2 = %v, %v", l2, err)
	}
}
