// Package graph provides a compact undirected-graph representation and the
// structural algorithms used throughout the reproduction: breadth-first
// search, distance statistics, degree statistics, connectivity, Cartesian
// products, and bisection search.
package graph

import (
	"fmt"
	"math"
	"sort"
)

//lint:file-ignore indextrunc vertex ids in this file are < len(g.adj), which NewChecked bounds to MaxVertices (math.MaxInt32) at construction

// Graph is a simple undirected graph on vertices 0..N-1 stored as sorted
// adjacency lists.  Self-loops are not stored (IPG generator actions that
// fix a node produce no edge); parallel edges are collapsed.
type Graph struct {
	adj [][]int32
	m   int // number of edges
}

// MaxVertices is the largest vertex count the int32 adjacency storage can
// address.  Super-IPG configurations beyond this must be sharded before
// materialization; silently wrapping ids would corrupt every metric.
const MaxVertices = math.MaxInt32

// CheckVertexCount reports whether n vertices fit the int32 adjacency
// representation, as an error suitable for propagation.
func CheckVertexCount(n int) error {
	if n < 0 || n > MaxVertices {
		return fmt.Errorf("graph: vertex count %d outside [0, %d]", n, MaxVertices)
	}
	return nil
}

// NewChecked returns an empty graph on n vertices, or an error if n
// overflows the int32 vertex representation.
func NewChecked(n int) (*Graph, error) {
	if err := CheckVertexCount(n); err != nil {
		return nil, err
	}
	return &Graph{adj: make([][]int32, n)}, nil
}

// New returns an empty graph on n vertices.  It panics if n overflows the
// int32 vertex representation; scale-sensitive callers should use
// NewChecked.
func New(n int) *Graph {
	g, err := NewChecked(n)
	if err != nil {
		panic("graph.New: " + err.Error())
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u,v}.  Self-loops and duplicate
// edges are ignored.  It reports whether an edge was actually added.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		return false
	}
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		panic(fmt.Sprintf("graph.AddEdge: vertex out of range: %d,%d (n=%d)", u, v, len(g.adj)))
	}
	if g.HasEdge(u, v) {
		return false
	}
	g.insert(u, int32(v))
	g.insert(v, int32(u))
	g.m++
	return true
}

func (g *Graph) insert(u int, v int32) {
	lst := g.adj[u]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = v
	g.adj[u] = lst
}

// HasEdge reports whether {u,v} is an edge.  Vertices outside [0, N) have
// no edges; checking the range here keeps the int32 comparison below exact
// rather than comparing against a wrapped id.
func (g *Graph) HasEdge(u, v int) bool {
	if v < 0 || v >= len(g.adj) {
		return false
	}
	lst := g.adj[u]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= int32(v) })
	return i < len(lst) && lst[i] == int32(v)
}

// Neighbors returns the sorted adjacency list of u.  The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edges calls f for every edge {u,v} with u < v.
func (g *Graph) Edges(f func(u, v int)) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int(v) > u {
				f(u, int(v))
			}
		}
	}
}

// DegreeStats returns the minimum, maximum, and average vertex degree.
func (g *Graph) DegreeStats() (min, max int, avg float64) {
	if g.N() == 0 {
		return 0, 0, 0
	}
	min = int(^uint(0) >> 1)
	total := 0
	for u := range g.adj {
		d := len(g.adj[u])
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		total += d
	}
	return min, max, float64(total) / float64(g.N())
}

// IsRegular reports whether all vertices have the same degree, and that
// degree.
func (g *Graph) IsRegular() (bool, int) {
	min, max, _ := g.DegreeStats()
	return min == max, max
}

// BFS returns the distance from src to every vertex (-1 if unreachable).
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for N <= 1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum finite distance from src, or -1 if some
// vertex is unreachable.
func (g *Graph) Eccentricity(src int) int {
	dist := g.BFS(src)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter computes the exact diameter by running BFS from every vertex.
// It returns -1 for disconnected graphs.  Cost is O(N*(N+M)).
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		e := g.Eccentricity(u)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// AverageDistance returns the mean distance over all ordered vertex pairs
// including (u,u) pairs, matching the paper's convention ("the average of
// the distances between a node X and all the network nodes (including node
// X itself)").  It returns -1 for disconnected graphs.
func (g *Graph) AverageDistance() float64 {
	var total int64
	n := g.N()
	for u := 0; u < n; u++ {
		for _, d := range g.BFS(u) {
			if d < 0 {
				return -1
			}
			total += int64(d)
		}
	}
	return float64(total) / float64(n) / float64(n)
}

// DiameterFromSample estimates the diameter as the max eccentricity over
// the given sample of source vertices.  For vertex-transitive graphs a
// single source suffices for an exact answer.
func (g *Graph) DiameterFromSample(srcs []int) int {
	diam := 0
	for _, u := range srcs {
		e := g.Eccentricity(u)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// CartesianProduct returns the Cartesian product g x h: vertices are pairs
// (u,v) encoded as u*h.N()+v; (u,v)~(u',v') iff (u=u' and v~v') or
// (v=v' and u~u').
func CartesianProduct(g, h *Graph) *Graph {
	nh := h.N()
	p := New(g.N() * nh)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < nh; v++ {
			id := u*nh + v
			for _, w := range h.adj[v] {
				p.AddEdge(id, u*nh+int(w))
			}
			for _, w := range g.adj[u] {
				p.AddEdge(id, int(w)*nh+v)
			}
		}
	}
	return p
}

// Power returns the p-th Cartesian power of g (the homogeneous product
// network HPN(p, g) of Efe & Fernandez).  Power(0) is a single vertex.
func Power(g *Graph, p int) *Graph {
	out := New(1)
	for i := 0; i < p; i++ {
		out = CartesianProduct(out, g)
	}
	return out
}

// Equal reports whether g and h have identical vertex sets and edge sets
// (labels matter; this is not isomorphism).
func Equal(g, h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.adj {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for i, v := range g.adj[u] {
			if h.adj[u][i] != v {
				return false
			}
		}
	}
	return true
}
