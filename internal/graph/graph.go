// Package graph provides a compact undirected-graph representation and the
// structural algorithms used throughout the reproduction: breadth-first
// search, distance statistics, degree statistics, connectivity, Cartesian
// products, and bisection search.
//
// The adjacency lives in a single CSR arena (internal/topo): large family
// graphs stream their edges straight into it via FromStream, while
// incremental AddEdge construction buffers edges and finalizes to CSR on
// the first read.  Either way, every algorithm below iterates the flat
// arena, and Graph satisfies the topo.Topology interface.
package graph

import (
	"fmt"

	"ipg/internal/topo"
)

//lint:file-ignore indextrunc vertex ids in this file are < g.n, which NewChecked bounds to MaxVertices (math.MaxInt32) at construction

// Graph is a simple undirected graph on vertices 0..N-1.  Self-loops are
// not stored (IPG generator actions that fix a node produce no edge);
// parallel edges are collapsed.  Neighbor lists are sorted ascending.
type Graph struct {
	n int
	m int // number of edges

	// csr is the finalized adjacency; nil while AddEdge-buffered edges are
	// pending in eu/ev.
	csr *topo.CSR

	// eu/ev buffer AddEdge endpoints (deduplicated via eset) until a read
	// finalizes them into csr.
	eu, ev []int32
	eset   map[uint64]struct{}

	// vt records that the construction proved vertex-transitivity (see
	// MarkVertexTransitive); any mutation clears it.
	vt bool
}

// MarkVertexTransitive records that the graph is vertex-transitive — its
// automorphism group acts transitively on vertices, so every vertex has
// the same eccentricity and distance multiset.  Only family builders whose
// construction proves transitivity (the Cayley families: hypercubes, tori,
// generalized hypercubes, CCC, wrapped butterflies, and their Cartesian
// products) may call this; the parallel metric entry points then collapse
// the all-sources sweep to a single BFS.  AddEdge clears the mark.
func (g *Graph) MarkVertexTransitive() { g.vt = true }

// VertexTransitive reports whether the graph was marked vertex-transitive
// by its builder (the topo.Symmetric capability).
func (g *Graph) VertexTransitive() bool { return g.vt }

// MaxVertices is the largest vertex count the int32 adjacency storage can
// address.  Super-IPG configurations beyond this must be sharded before
// materialization; silently wrapping ids would corrupt every metric.
const MaxVertices = topo.MaxVertices

// CheckVertexCount reports whether n vertices fit the int32 adjacency
// representation, as an error suitable for propagation.
func CheckVertexCount(n int) error {
	if n < 0 || n > MaxVertices {
		return fmt.Errorf("graph: vertex count %d outside [0, %d]", n, MaxVertices)
	}
	return nil
}

// NewChecked returns an empty graph on n vertices, or an error if n
// overflows the int32 vertex representation.
func NewChecked(n int) (*Graph, error) {
	if err := CheckVertexCount(n); err != nil {
		return nil, err
	}
	return &Graph{n: n}, nil
}

// New returns an empty graph on n vertices.  It panics if n overflows the
// int32 vertex representation; scale-sensitive callers should use
// NewChecked.
func New(n int) *Graph {
	g, err := NewChecked(n)
	if err != nil {
		panic("graph.New: " + err.Error())
	}
	return g
}

// FromStreamChecked builds a graph on n vertices directly in CSR form from
// a replayable edge stream (see topo.Build): stream is invoked twice and
// must emit the same edge multiset both times.  Self-loops are dropped and
// duplicates collapse, so emitting each edge from both endpoints is fine.
func FromStreamChecked(n int, stream func(edge func(u, v int))) (*Graph, error) {
	if err := CheckVertexCount(n); err != nil {
		return nil, err
	}
	csr, err := topo.Build(n, stream)
	if err != nil {
		return nil, err
	}
	return &Graph{n: n, m: csr.Arcs() / 2, csr: csr}, nil
}

// FromStream is FromStreamChecked that panics on error, for builders whose
// parameters are already bounds-checked.
func FromStream(n int, stream func(edge func(u, v int))) *Graph {
	g, err := FromStreamChecked(n, stream)
	if err != nil {
		panic("graph.FromStream: " + err.Error())
	}
	return g
}

// ensure finalizes pending AddEdge edges into the CSR arena.  Every reader
// entry point calls it before touching adjacency; the parallel algorithms
// call it before spawning workers, so the finalized CSR is read-only and
// race-free under concurrent BFS.
func (g *Graph) ensure() *topo.CSR {
	if g.csr == nil {
		csr, err := topo.Build(g.n, func(edge func(u, v int)) {
			//lint:ignore ctxflow the edge replay is bounded by MaxVertices/MaxArcs (checked in AddEdge) and runs once per graph — readers memoize the CSR, and serve wraps builds in its worker-slot timeout
			for i := range g.eu {
				edge(int(g.eu[i]), int(g.ev[i]))
			}
		})
		if err != nil {
			panic("graph: " + err.Error())
		}
		g.csr = csr
	}
	return g.csr
}

// edgeKey packs an ordered pair for the AddEdge dedup set.
func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// thaw re-opens a stream-built graph for AddEdge mutation by spilling the
// CSR edges back into the pending buffers.  Rarely hit: only when a caller
// mutates a family graph after construction.
func (g *Graph) thaw() {
	if g.eset != nil || g.csr == nil {
		return
	}
	g.eset = make(map[uint64]struct{}, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.csr.Row(u) {
			if int(v) > u {
				g.eu = append(g.eu, int32(u))
				g.ev = append(g.ev, v)
				g.eset[edgeKey(u, int(v))] = struct{}{}
			}
		}
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u,v}.  Self-loops and duplicate
// edges are ignored.  It reports whether an edge was actually added.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		return false
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("graph.AddEdge: vertex out of range: %d,%d (n=%d)", u, v, g.n))
	}
	g.thaw()
	if g.eset == nil {
		g.eset = make(map[uint64]struct{})
	}
	key := edgeKey(u, v)
	if _, dup := g.eset[key]; dup {
		return false
	}
	g.eset[key] = struct{}{}
	g.eu = append(g.eu, int32(u))
	g.ev = append(g.ev, int32(v))
	g.m++
	g.csr = nil  // invalidate the finalized view
	g.vt = false // transitivity was proven for the unmutated construction
	return true
}

// HasEdge reports whether {u,v} is an edge.  Vertices outside [0, N) have
// no edges.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	if g.csr != nil {
		return g.csr.HasArc(u, v)
	}
	_, ok := g.eset[edgeKey(u, v)]
	return ok
}

// row returns u's sorted neighbor slice as a zero-copy view into the CSR
// arena.
func (g *Graph) row(u int) []int32 { return g.ensure().Row(u) }

// Neighbors appends the sorted neighbors of u to buf[:0] and returns it
// (the topo.Topology contract).  Passing a buffer with cap >= Degree(u)
// makes the call allocation-free.
func (g *Graph) Neighbors(u int, buf []int32) []int32 {
	return append(buf[:0], g.row(u)...)
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return g.ensure().Degree(u) }

// NeighborsInto implements topo.Source (same contract as Neighbors).
func (g *Graph) NeighborsInto(u int, buf []int32) []int32 {
	return g.Neighbors(u, buf)
}

// DegreeBound implements topo.Source: the maximum degree.
func (g *Graph) DegreeBound() int { return g.ensure().DegreeBound() }

// CSR returns the finalized adjacency arena, finalizing pending edges
// first.  The result is owned by the graph and must not be modified.
func (g *Graph) CSR() *topo.CSR { return g.ensure() }

// MemoryFootprint returns the adjacency storage size in bytes (offsets
// plus arena), the quantity the representation benchmarks report.
func (g *Graph) MemoryFootprint() int64 { return g.ensure().ByteSize() }

// Edges calls f for every edge {u,v} with u < v.
func (g *Graph) Edges(f func(u, v int)) {
	c := g.ensure()
	for u := 0; u < g.n; u++ {
		for _, v := range c.Row(u) {
			if int(v) > u {
				f(u, int(v))
			}
		}
	}
}

// DegreeStats returns the minimum, maximum, and average vertex degree.
func (g *Graph) DegreeStats() (min, max int, avg float64) {
	if g.n == 0 {
		return 0, 0, 0
	}
	c := g.ensure()
	min = int(^uint(0) >> 1)
	total := 0
	for u := 0; u < g.n; u++ {
		d := c.Degree(u)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		total += d
	}
	return min, max, float64(total) / float64(g.n)
}

// IsRegular reports whether all vertices have the same degree, and that
// degree.
func (g *Graph) IsRegular() (bool, int) {
	min, max, _ := g.DegreeStats()
	return min == max, max
}

// BFS returns the distance from src to every vertex (-1 if unreachable).
func (g *Graph) BFS(src int) []int32 {
	return topo.BFS(g.ensure(), src)
}

// Connected reports whether the graph is connected (true for N <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	ecc, _ := g.ensure().BFSInto(0, make([]int32, g.n), make([]int32, 0, g.n))
	return ecc >= 0
}

// Eccentricity returns the maximum finite distance from src, or -1 if some
// vertex is unreachable.
func (g *Graph) Eccentricity(src int) int {
	ecc, _ := g.ensure().BFSInto(src, make([]int32, g.n), make([]int32, 0, g.n))
	return int(ecc)
}

// Diameter computes the exact diameter by running BFS from every vertex.
// It returns -1 for disconnected graphs.  Cost is O(N*(N+M)).
func (g *Graph) Diameter() int {
	c := g.ensure()
	dist := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	diam := 0
	for u := 0; u < g.n; u++ {
		ecc, _ := c.BFSInto(u, dist, queue)
		if ecc < 0 {
			return -1
		}
		if int(ecc) > diam {
			diam = int(ecc)
		}
	}
	return diam
}

// AverageDistance returns the mean distance over all ordered vertex pairs
// including (u,u) pairs, matching the paper's convention ("the average of
// the distances between a node X and all the network nodes (including node
// X itself)").  It returns -1 for disconnected graphs.
func (g *Graph) AverageDistance() float64 {
	c := g.ensure()
	n := g.n
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var total int64
	for u := 0; u < n; u++ {
		ecc, sum := c.BFSInto(u, dist, queue)
		if ecc < 0 {
			return -1
		}
		total += sum
	}
	return float64(total) / float64(n) / float64(n)
}

// DiameterFromSample estimates the diameter as the max eccentricity over
// the given sample of source vertices.  For vertex-transitive graphs a
// single source suffices for an exact answer.
func (g *Graph) DiameterFromSample(srcs []int) int {
	diam := 0
	for _, u := range srcs {
		e := g.Eccentricity(u)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// CartesianProduct returns the Cartesian product g x h: vertices are pairs
// (u,v) encoded as u*h.N()+v; (u,v)~(u',v') iff (u=u' and v~v') or
// (v=v' and u~u').
func CartesianProduct(g, h *Graph) *Graph {
	gc, hc := g.ensure(), h.ensure()
	nh := h.N()
	out := FromStream(g.N()*nh, func(edge func(u, v int)) {
		for u := 0; u < g.N(); u++ {
			for v := 0; v < nh; v++ {
				id := u*nh + v
				for _, w := range hc.Row(v) {
					edge(id, u*nh+int(w))
				}
				for _, w := range gc.Row(u) {
					edge(id, int(w)*nh+v)
				}
			}
		}
	})
	// The product of vertex-transitive graphs is vertex-transitive: the
	// automorphism groups act independently on the coordinates.
	if g.vt && h.vt {
		out.MarkVertexTransitive()
	}
	return out
}

// Power returns the p-th Cartesian power of g (the homogeneous product
// network HPN(p, g) of Efe & Fernandez).  Power(0) is a single vertex.
func Power(g *Graph, p int) *Graph {
	out := New(1)
	out.MarkVertexTransitive() // K1 is trivially vertex-transitive
	for i := 0; i < p; i++ {
		out = CartesianProduct(out, g)
	}
	return out
}

// Equal reports whether g and h have identical vertex sets and edge sets
// (labels matter; this is not isomorphism).
func Equal(g, h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	return topo.Equal(g.ensure(), h.ensure())
}
