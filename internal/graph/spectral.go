package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file computes a spectral lower bound on the bisection width: for
// any graph, W_B >= lambda2 * N / 4, where lambda2 is the algebraic
// connectivity (the second-smallest eigenvalue of the Laplacian).  The
// refiner in bisection.go gives upper bounds; together they certify the
// structured partitions the paper analyses (for the hypercube the spectral
// bound N/2 is exactly tight).

// lapApply computes y = L x for the graph Laplacian L = D - A.
func (g *Graph) lapApply(x, y []float64) {
	for v := 0; v < g.N(); v++ {
		row := g.row(v)
		sum := float64(len(row)) * x[v]
		for _, w := range row {
			sum -= x[w]
		}
		y[v] = sum
	}
}

// AlgebraicConnectivity estimates lambda2 of the Laplacian by power
// iteration on (c I - L) restricted to the space orthogonal to the
// constant vector, where c is the Gershgorin bound 2*maxDegree >=
// lambda_max(L).  The returned value is accurate to roughly tol
// (relative); iterations are capped.
func (g *Graph) AlgebraicConnectivity(seed int64, tol float64, maxIter int) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("graph: algebraic connectivity needs >= 2 vertices")
	}
	_, maxDeg, _ := g.DegreeStats()
	c := 2 * float64(maxDeg)
	if c == 0 {
		return 0, nil // no edges: disconnected, lambda2 = 0
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	deflate := func(v []float64) {
		mean := 0.0
		for _, t := range v {
			mean += t
		}
		mean /= float64(n)
		for i := range v {
			v[i] -= mean
		}
	}
	normalize := func(v []float64) float64 {
		s := 0.0
		for _, t := range v {
			s += t * t
		}
		s = math.Sqrt(s)
		if s > 0 {
			for i := range v {
				v[i] /= s
			}
		}
		return s
	}
	deflate(x)
	if normalize(x) == 0 {
		return 0, fmt.Errorf("graph: degenerate start vector")
	}
	prev := 0.0
	for iter := 0; iter < maxIter; iter++ {
		// y = (cI - L) x
		g.lapApply(x, y)
		for i := range y {
			y[i] = c*x[i] - y[i]
		}
		deflate(y)
		mu := normalize(y)
		x, y = y, x
		if iter > 8 && math.Abs(mu-prev) <= tol*math.Abs(mu) {
			prev = mu
			break
		}
		prev = mu
	}
	lambda2 := c - prev
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2, nil
}

// SpectralBisectionLowerBound returns ceil(lambda2 * N / 4), a certified
// lower bound on the bisection width (up to the power iteration's
// convergence; a small safety factor is applied to stay conservative).
func (g *Graph) SpectralBisectionLowerBound(seed int64) (int, error) {
	lambda2, err := g.AlgebraicConnectivity(seed, 1e-10, 4000)
	if err != nil {
		return 0, err
	}
	// The iteration converges to lambda2 from above in the deflated space;
	// shave 0.5% to stay on the safe side of the bound.
	bound := 0.995 * lambda2 * float64(g.N()) / 4
	return int(math.Ceil(bound - 1e-9)), nil
}
