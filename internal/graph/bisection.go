package graph

import (
	"fmt"
	"math/rand"
)

// This file implements bisection-width machinery.  Exact minimum bisection
// is NP-hard in general; the reproduction uses the structured partitions the
// paper itself analyses (provided by the topology packages) and validates
// them with a randomized greedy-swap refiner that searches for smaller
// bisections (an upper-bound sanity check).

// CutSize returns the number of edges crossing the 2-partition given by
// side (side[v] in {0,1}).
func (g *Graph) CutSize(side []int8) int {
	if len(side) != g.N() {
		panic("graph.CutSize: partition size mismatch")
	}
	cut := 0
	g.Edges(func(u, v int) {
		if side[u] != side[v] {
			cut++
		}
	})
	return cut
}

// IsBisection reports whether side splits the vertices into two parts whose
// sizes differ by at most one.
func IsBisection(side []int8) bool {
	n0 := 0
	for _, s := range side {
		if s == 0 {
			n0++
		}
	}
	n1 := len(side) - n0
	diff := n0 - n1
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1
}

// RandomBisection returns a uniformly random balanced partition.
func RandomBisection(r *rand.Rand, n int) []int8 {
	side := make([]int8, n)
	idx := r.Perm(n)
	for i, v := range idx {
		if i < n/2 {
			side[v] = 0
		} else {
			side[v] = 1
		}
	}
	return side
}

// RefineBisection improves a balanced partition by greedy pairwise swaps:
// repeatedly swap the pair (u in side 0, v in side 1) with the best combined
// gain until no improving swap exists or maxRounds passes complete.  It
// returns the refined partition and its cut size.  The input is not
// modified.
func (g *Graph) RefineBisection(start []int8, maxRounds int) ([]int8, int) {
	n := g.N()
	side := make([]int8, n)
	copy(side, start)

	// gain[v] = (external degree) - (internal degree): cut change if v moves.
	gain := make([]int, n)
	recompute := func() {
		for v := 0; v < n; v++ {
			ext, in := 0, 0
			for _, w := range g.row(v) {
				if side[w] != side[v] {
					ext++
				} else {
					in++
				}
			}
			gain[v] = ext - in
		}
	}
	recompute()
	cut := g.CutSize(side)

	for round := 0; round < maxRounds; round++ {
		improved := false
		// Find the best vertex on each side by gain.
		bestU, bestV := -1, -1
		for v := 0; v < n; v++ {
			if side[v] == 0 {
				if bestU < 0 || gain[v] > gain[bestU] {
					bestU = v
				}
			} else {
				if bestV < 0 || gain[v] > gain[bestV] {
					bestV = v
				}
			}
		}
		if bestU < 0 || bestV < 0 {
			break
		}
		delta := gain[bestU] + gain[bestV]
		if g.HasEdge(bestU, bestV) {
			delta -= 2
		}
		if delta > 0 {
			side[bestU], side[bestV] = 1, 0
			cut -= delta
			recompute()
			improved = true
		}
		if !improved {
			break
		}
	}
	return side, cut
}

// BestBisection runs the refiner from several random starts plus the given
// seeds and returns the smallest cut found.  It is an upper bound on the
// true bisection width.
func (g *Graph) BestBisection(r *rand.Rand, randomStarts, maxRounds int, seeds ...[]int8) ([]int8, int) {
	var bestSide []int8
	bestCut := -1
	try := func(start []int8) {
		side, cut := g.RefineBisection(start, maxRounds)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			bestSide = side
		}
	}
	for _, s := range seeds {
		if len(s) != g.N() {
			panic(fmt.Sprintf("graph.BestBisection: seed partition has %d entries, want %d", len(s), g.N()))
		}
		try(s)
	}
	for i := 0; i < randomStarts; i++ {
		try(RandomBisection(r, g.N()))
	}
	return bestSide, bestCut
}
