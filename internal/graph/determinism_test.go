package graph

import (
	"runtime"
	"testing"
)

// buildDeterministic returns a fixed connected graph: a ring over n
// vertices plus deterministic chords, so its metrics are nontrivial and
// identical across runs.
func buildDeterministic(n int) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	for v := 0; v < n; v += 7 {
		g.AddEdge(v, (v*3+11)%n)
	}
	return g
}

// TestParallelMetricsDeterministic checks that the source-parallel
// diameter and average-distance computations return identical values on a
// single worker and on many, and that both agree with the serial
// implementations.  The average is accumulated as an integer distance sum,
// so the result must be bit-identical, not merely close.
func TestParallelMetricsDeterministic(t *testing.T) {
	g := buildDeterministic(601)

	wantDiam := g.Diameter()
	wantAvg := g.AverageDistance()

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, workers := range []int{1, 2, prev, 2 * prev} {
		runtime.GOMAXPROCS(workers)
		if d := g.DiameterParallel(); d != wantDiam {
			t.Errorf("GOMAXPROCS=%d: DiameterParallel = %d, want %d", workers, d, wantDiam)
		}
		if a := g.AverageDistanceParallel(); a != wantAvg {
			t.Errorf("GOMAXPROCS=%d: AverageDistanceParallel = %v, want bit-identical %v", workers, a, wantAvg)
		}
	}
}

// TestParallelMetricsDisconnected checks the disconnected sentinel is
// stable across worker counts too.
func TestParallelMetricsDisconnected(t *testing.T) {
	g := New(10)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{1, 4} {
		runtime.GOMAXPROCS(workers)
		if d := g.DiameterParallel(); d != -1 {
			t.Errorf("GOMAXPROCS=%d: DiameterParallel on disconnected graph = %d, want -1", workers, d)
		}
		if a := g.AverageDistanceParallel(); a != -1 {
			t.Errorf("GOMAXPROCS=%d: AverageDistanceParallel on disconnected graph = %v, want -1", workers, a)
		}
	}
}
