package nucleus

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse decodes the compact nucleus syntax shared by the CLIs and the
// topology-serving daemon:
//
//	qK        hypercube Q_K
//	fqK       folded hypercube FQ_K
//	kM        complete graph K_M
//	cM        ring (cycle) C_M
//	sN        star graph S_N (N! nodes)
//	ghc:a,b,c generalized hypercube GHC(a,b,c)
//
// Arguments are bounds-checked before any constructor runs, so an absurd
// spec (q500, s40) is rejected with an error instead of overflowing the
// int node count or allocating unboundedly.  The caps are far above
// anything materializable (ipg.MaxNodes is 1<<22) — they only exclude
// inputs whose mere description would misbehave.
func Parse(s string) (*Nucleus, error) {
	if rest, ok := strings.CutPrefix(s, "ghc:"); ok {
		var radices []int
		product := 1
		for _, part := range strings.Split(rest, ",") {
			m, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("nucleus: bad GHC radix %q", part)
			}
			// Labels store one byte per symbol and a dimension of radix m
			// contributes symbols 0..m-1, so the radix must fit the label
			// alphabet; the cap also bounds the radix-1 generators the
			// constructor materializes per dimension.
			if m < 2 || m > 250 {
				return nil, fmt.Errorf("nucleus: GHC radix %d outside [2, 250]", m)
			}
			if product > (1<<30)/m {
				return nil, fmt.Errorf("nucleus: GHC%v has more than %d nodes", radices, 1<<30)
			}
			product *= m
			radices = append(radices, m)
		}
		if len(radices) == 0 {
			return nil, fmt.Errorf("nucleus: empty GHC radix list %q", s)
		}
		return GeneralizedHypercube(radices...), nil
	}
	if len(s) < 2 {
		return nil, fmt.Errorf("nucleus: bad spec %q", s)
	}
	num := func(tail string, min, max int, what string) (int, error) {
		n, err := strconv.Atoi(tail)
		if err != nil {
			return 0, fmt.Errorf("nucleus: bad %s %q", what, tail)
		}
		if n < min || n > max {
			return 0, fmt.Errorf("nucleus: %s %d outside [%d, %d]", what, n, min, max)
		}
		return n, nil
	}
	switch {
	case strings.HasPrefix(s, "fq"):
		n, err := num(s[2:], 2, 30, "folded-hypercube dimension")
		if err != nil {
			return nil, err
		}
		return FoldedHypercube(n), nil
	case s[0] == 'q':
		n, err := num(s[1:], 1, 30, "hypercube dimension")
		if err != nil {
			return nil, err
		}
		return Hypercube(n), nil
	case s[0] == 'k':
		// The bounds mirror nucleus.Complete's: labels store one byte per
		// symbol, and the constructor materializes M-1 rotation generators
		// of length M (an O(M^2) allocation).
		n, err := num(s[1:], 2, 250, "complete-graph size")
		if err != nil {
			return nil, err
		}
		return Complete(n), nil
	case s[0] == 'c':
		// Mirrors nucleus.Ring's byte-per-symbol label bound.
		n, err := num(s[1:], 3, 250, "ring size")
		if err != nil {
			return nil, err
		}
		return Ring(n), nil
	case s[0] == 's':
		// Mirrors nucleus.Star's bound; 8! = 40320 nucleus nodes is already
		// far beyond any materializable super-IPG.
		n, err := num(s[1:], 2, 8, "star-graph order")
		if err != nil {
			return nil, err
		}
		return Star(n), nil
	}
	return nil, fmt.Errorf("nucleus: unknown spec %q", s)
}
