package nucleus

import (
	"testing"

	"ipg/internal/perm"
)

func TestProductStructure(t *testing.T) {
	p := Product(Hypercube(2), Complete(3))
	if p.M != 12 {
		t.Fatalf("Q2 x K3: M = %d, want 12", p.M)
	}
	if p.SymbolLen() != 4+3 {
		t.Errorf("symbol length = %d, want 7", p.SymbolLen())
	}
	if p.NumGens() != 2+2 {
		t.Errorf("generators = %d, want 4", p.NumGens())
	}
	if p.NumDims() != 3 {
		t.Errorf("dims = %d, want 3", p.NumDims())
	}
	if r := p.Radices(); r[0] != 2 || r[1] != 2 || r[2] != 3 {
		t.Errorf("radices = %v", r)
	}
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("materialized %d nodes", g.N())
	}
	u := g.Undirected()
	// Q2 x K3 degree: 2 + 2 = 4.
	if reg, d := u.IsRegular(); !reg || d != 4 {
		t.Errorf("degree = %v,%d want 4", reg, d)
	}
	// Address round trip covers both factors' digit logic.
	for a := 0; a < p.M; a++ {
		l, err := p.LabelOf(a)
		if err != nil {
			t.Fatal(err)
		}
		back, err := p.AddressOf(l)
		if err != nil {
			t.Fatal(err)
		}
		if back != a {
			t.Fatalf("roundtrip %d -> %v -> %d", a, l, back)
		}
	}
}

func TestPowerMatchesHypercube(t *testing.T) {
	// Q2^2 is structurally Q4: same node count, degree, diameter.
	p := Power(Hypercube(2), 2)
	if p.M != 16 || p.NumDims() != 4 {
		t.Fatalf("Q2^2: M=%d dims=%d", p.M, p.NumDims())
	}
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	if d := u.Diameter(); d != 4 {
		t.Errorf("Q2^2 diameter = %d, want 4", d)
	}
	if p.Name != "Q2^2" {
		t.Errorf("name = %s", p.Name)
	}
	if one := Power(Hypercube(3), 1); one.Name != "Q3" {
		t.Errorf("Power(_,1) should be the nucleus itself, got %s", one.Name)
	}
}

func TestDigitsAccessors(t *testing.T) {
	nu := GeneralizedHypercube(4, 2)
	l, err := nu.LabelOf(5) // digits: d0 = 1, d1 = 1
	if err != nil {
		t.Fatal(err)
	}
	if d, err := nu.Digit(l, 0); err != nil || d != 1 {
		t.Errorf("digit 0 = %d, %v", d, err)
	}
	if d, err := nu.Digit(l, 1); err != nil || d != 1 {
		t.Errorf("digit 1 = %d, %v", d, err)
	}
	if err := nu.SetDigit(l, 0, 3); err != nil {
		t.Fatal(err)
	}
	if a, _ := nu.AddressOf(l); a != 7 {
		t.Errorf("after SetDigit address = %d, want 7", a)
	}
	if _, err := nu.Digit(l, 9); err == nil {
		t.Error("out-of-range dim should error")
	}
	if err := nu.SetDigit(l, 0, 9); err == nil {
		t.Error("out-of-range digit should error")
	}
	if err := nu.SetDigit(l, 9, 0); err == nil {
		t.Error("out-of-range dim should error")
	}
}

func TestDimBitsAndTotalBits(t *testing.T) {
	nu := GeneralizedHypercube(4, 2, 8)
	want := []int{2, 1, 3}
	for d, w := range want {
		b, err := nu.DimBits(d)
		if err != nil || b != w {
			t.Errorf("DimBits(%d) = %d, %v; want %d", d, b, err, w)
		}
	}
	if total, err := nu.TotalBits(); err != nil || total != 6 {
		t.Errorf("TotalBits = %d, %v; want 6", total, err)
	}
	bad := GeneralizedHypercube(3, 2)
	if _, err := bad.DimBits(0); err == nil {
		t.Error("radix 3 should not be a power of two")
	}
	if _, err := bad.TotalBits(); err == nil {
		t.Error("TotalBits should fail on radix 3")
	}
}

func TestSetEnumeration(t *testing.T) {
	nu := &Nucleus{Name: "enum", Seed: perm.MustParseLabel("012"), M: 3,
		Gens: perm.GenSet{perm.Gen("r", perm.RotateLeft(3, 1))}}
	labels := []perm.Label{
		perm.MustParseLabel("012"),
		perm.MustParseLabel("120"),
		perm.MustParseLabel("201"),
	}
	if err := nu.SetEnumeration(labels); err != nil {
		t.Fatal(err)
	}
	for a, l := range labels {
		got, err := nu.AddressOf(l)
		if err != nil || got != a {
			t.Errorf("AddressOf(%v) = %d, %v", l, got, err)
		}
		back, err := nu.LabelOf(a)
		if err != nil || !back.Equal(l) {
			t.Errorf("LabelOf(%d) = %v, %v", a, back, err)
		}
	}
	if _, err := nu.AddressOf(perm.MustParseLabel("000")); err == nil {
		t.Error("unknown label should error")
	}
	// Validation failures.
	if err := nu.SetEnumeration(labels[:2]); err == nil {
		t.Error("wrong count should error")
	}
	if err := nu.SetEnumeration([]perm.Label{labels[0], labels[0], labels[1]}); err == nil {
		t.Error("duplicate label should error")
	}
	if err := nu.SetEnumeration([]perm.Label{labels[0], labels[1], perm.MustParseLabel("01")}); err == nil {
		t.Error("wrong-length label should error")
	}
}
