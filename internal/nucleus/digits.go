package nucleus

import "fmt"

// Digit returns the digit of dimension d encoded in the nucleus label l.
func (nu *Nucleus) Digit(l []byte, d int) (int, error) {
	if d < 0 || d >= len(nu.Dims) {
		return 0, fmt.Errorf("nucleus %s: dimension %d out of range", nu.Name, d)
	}
	return nu.digitOf(l, &nu.Dims[d])
}

// SetDigit overwrites dimension d of the label l (in place) with the given
// digit value.
func (nu *Nucleus) SetDigit(l []byte, d, digit int) error {
	if d < 0 || d >= len(nu.Dims) {
		return fmt.Errorf("nucleus %s: dimension %d out of range", nu.Name, d)
	}
	dim := &nu.Dims[d]
	if digit < 0 || digit >= dim.Radix {
		return fmt.Errorf("nucleus %s: digit %d out of range for radix %d", nu.Name, digit, dim.Radix)
	}
	for k := 0; k < dim.symbols; k++ {
		l[dim.offset+k] = nu.Seed[dim.offset+(k+digit)%dim.symbols]
	}
	return nil
}

// DimBits returns log2(radix) of dimension d, or an error if the radix is
// not a power of two (ascend/descend algorithms require power-of-two
// radices, as in Theorem 3.5's assumption that |G| is a power of 2).
func (nu *Nucleus) DimBits(d int) (int, error) {
	radix := nu.Dims[d].Radix
	bits := 0
	for 1<<bits < radix {
		bits++
	}
	if 1<<bits != radix {
		return 0, fmt.Errorf("nucleus %s: dimension %d radix %d not a power of 2", nu.Name, d, radix)
	}
	return bits, nil
}

// TotalBits returns log2(M) if M is a power of two, or an error.
func (nu *Nucleus) TotalBits() (int, error) {
	total := 0
	for d := range nu.Dims {
		b, err := nu.DimBits(d)
		if err != nil {
			return 0, err
		}
		total += b
	}
	if 1<<total != nu.M {
		return 0, fmt.Errorf("nucleus %s: node count %d not a power of 2", nu.Name, nu.M)
	}
	return total, nil
}
