// Package nucleus provides the nucleus graphs used to build super-IPGs:
// hypercubes, folded hypercubes, complete graphs, rings, generalized
// hypercubes, and star graphs, each expressed in the IPG model (a seed
// label plus permutation generators) as required by the paper's
// construction ("the nucleus determines the nucleus generators and the
// seed of the super-IPG").
//
// Hypercube encoding: Q_k is the IPG on 2k symbols seeded (01)^k whose
// generator i transposes symbol pair (2i-1, 2i); pair i reads 01 for bit 0
// and 10 for bit 1.  This matches the paper's Section 3.1 example, where
// the 16-cube has the 32-symbol seed 01 01 ... 01 and the dimension-11
// generator is the transposition (21,22).
//
// Complete graph encoding: K_M is the IPG on M symbols seeded 012...(M-1)
// with the M-1 cyclic rotations as generators; its M nodes are the M
// rotations of the seed.  Rings and generalized hypercubes follow from the
// same idea restricted to +/-1 rotations and to per-block rotations.
package nucleus

import (
	"fmt"

	"ipg/internal/ipg"
	"ipg/internal/perm"
)

// Dim describes one dimension of a dimensionable nucleus: a set of
// generators that realize a complete graph K_radix among the radix possible
// digit values of that dimension.
type Dim struct {
	Radix   int   // number of digit values (2 for binary hypercubes)
	GenIdx  []int // indices into Gens of the generators serving this dimension
	offset  int   // first symbol position of the dimension's block
	symbols int   // number of symbols in the block
}

// Nucleus is a nucleus graph in IPG form.
type Nucleus struct {
	Name string
	Seed perm.Label
	Gens perm.GenSet
	// M is the number of nodes.
	M int
	// Dims is the dimension structure (nil for non-dimensionable nuclei
	// such as star graphs).  Ascend/descend algorithms and HPN emulation
	// require Dims.
	Dims []Dim

	// Optional explicit enumeration for nuclei without a mixed-radix
	// dimension structure (e.g. a super-IPG reused as a nucleus): maps
	// between addresses 0..M-1 and node labels.
	enumLabels []perm.Label
	enumIndex  map[string]int

	// Optional closed-form rank/unrank for nuclei without dimension
	// structure whose node set has an arithmetic description (ring
	// rotations, star-graph Lehmer codes).  Consulted by AddressOf/LabelOf
	// before the enumeration fallback, so these nuclei stay addressable
	// without materializing their label set.
	rankFn   func(perm.Label) (int, error)
	unrankFn func(int) (perm.Label, error)
}

// Addressable reports whether AddressOf/LabelOf form a bijection between
// [0, M) and the nucleus node set — true for dimensionable nuclei, for
// nuclei with a closed-form rank, and for explicitly enumerated ones.
// The implicit super-IPG adjacency requires an addressable nucleus.
func (nu *Nucleus) Addressable() bool {
	return len(nu.Dims) > 0 || nu.rankFn != nil || nu.enumLabels != nil
}

// SetEnumeration installs an explicit address<->label bijection, enabling
// AddressOf/LabelOf on nuclei without dimension structure.  The slice must
// contain M distinct labels.
func (nu *Nucleus) SetEnumeration(labels []perm.Label) error {
	if len(labels) != nu.M {
		return fmt.Errorf("nucleus %s: enumeration has %d labels, want %d", nu.Name, len(labels), nu.M)
	}
	idx := make(map[string]int, len(labels))
	for i, l := range labels {
		if len(l) != len(nu.Seed) {
			return fmt.Errorf("nucleus %s: enumeration label %d has wrong length", nu.Name, i)
		}
		key := string(l)
		if _, dup := idx[key]; dup {
			return fmt.Errorf("nucleus %s: duplicate enumeration label %v", nu.Name, l)
		}
		idx[key] = i
	}
	nu.enumLabels = labels
	nu.enumIndex = idx
	return nil
}

// Spec returns the ipg.Spec materializing the nucleus on its own.
func (nu *Nucleus) Spec() ipg.Spec {
	return ipg.Spec{Name: nu.Name, Seed: nu.Seed, Gens: nu.Gens}
}

// Build materializes the nucleus graph.
func (nu *Nucleus) Build() (*ipg.Graph, error) { return ipg.Build(nu.Spec()) }

// SymbolLen returns the label length m of the nucleus.
func (nu *Nucleus) SymbolLen() int { return len(nu.Seed) }

// NumGens returns the number of nucleus generators.
func (nu *Nucleus) NumGens() int { return len(nu.Gens) }

// NumDims returns the number of dimensions (0 if not dimensionable).
func (nu *Nucleus) NumDims() int { return len(nu.Dims) }

// Radices returns the per-dimension radix vector.
func (nu *Nucleus) Radices() []int {
	r := make([]int, len(nu.Dims))
	for i, d := range nu.Dims {
		r[i] = d.Radix
	}
	return r
}

// AddressOf decodes the mixed-radix address encoded by a nucleus label:
// digit d is the value of dimension d (0 for non-dimensionable nuclei).
// The address is sum over dims of digit_d * prod_{d'<d} radix_{d'}.
func (nu *Nucleus) AddressOf(l perm.Label) (int, error) {
	if len(l) != len(nu.Seed) {
		return 0, fmt.Errorf("nucleus %s: label length %d, want %d", nu.Name, len(l), len(nu.Seed))
	}
	if len(nu.Dims) == 0 && nu.rankFn != nil {
		return nu.rankFn(l)
	}
	if len(nu.Dims) == 0 && nu.enumIndex != nil {
		a, ok := nu.enumIndex[string(l)]
		if !ok {
			return 0, fmt.Errorf("nucleus %s: label %v not in enumeration", nu.Name, l)
		}
		return a, nil
	}
	addr := 0
	weight := 1
	for di := range nu.Dims {
		d := &nu.Dims[di]
		digit, err := nu.digitOf(l, d)
		if err != nil {
			return 0, err
		}
		addr += digit * weight
		weight *= d.Radix
	}
	return addr, nil
}

// digitOf extracts the digit of dimension d: the rotation offset of the
// block (equivalently, the value of its first symbol relative to the seed
// block whose first symbol is the block's minimum).
func (nu *Nucleus) digitOf(l perm.Label, d *Dim) (int, error) {
	base := nu.Seed[d.offset] // smallest symbol of the block in the seed
	v := int(l[d.offset]) - int(base)
	if v < 0 || v >= d.Radix {
		return 0, fmt.Errorf("nucleus %s: symbol %d at offset %d outside block range", nu.Name, l[d.offset], d.offset)
	}
	return v, nil
}

// LabelOf encodes a mixed-radix address as a nucleus label (inverse of
// AddressOf).
func (nu *Nucleus) LabelOf(addr int) (perm.Label, error) {
	if addr < 0 || addr >= nu.M {
		return nil, fmt.Errorf("nucleus %s: address %d out of range [0,%d)", nu.Name, addr, nu.M)
	}
	if len(nu.Dims) == 0 && nu.unrankFn != nil {
		return nu.unrankFn(addr)
	}
	if len(nu.Dims) == 0 && nu.enumLabels != nil {
		return nu.enumLabels[addr].Clone(), nil
	}
	l := nu.Seed.Clone()
	for di := range nu.Dims {
		d := &nu.Dims[di]
		digit := addr % d.Radix
		addr /= d.Radix
		// Rotate the block left by digit positions.
		block := make(perm.Label, d.symbols)
		for k := 0; k < d.symbols; k++ {
			block[k] = nu.Seed[d.offset+(k+digit)%d.symbols]
		}
		copy(l[d.offset:d.offset+d.symbols], block)
	}
	return l, nil
}

// DimGenerator returns the generator index that, applied at a node with the
// given digit in dimension dim, produces the node with digit newDigit in
// that dimension (all other digits unchanged).  For binary dimensions this
// is the single transposition; for radix-m dimensions it is the rotation by
// (newDigit-digit) mod m.
func (nu *Nucleus) DimGenerator(dim, digit, newDigit int) (int, error) {
	if dim < 0 || dim >= len(nu.Dims) {
		return 0, fmt.Errorf("nucleus %s: dimension %d out of range", nu.Name, dim)
	}
	d := &nu.Dims[dim]
	if digit == newDigit {
		return 0, fmt.Errorf("nucleus %s: digit unchanged", nu.Name)
	}
	delta := ((newDigit-digit)%d.Radix + d.Radix) % d.Radix
	if d.Radix == 2 {
		return d.GenIdx[0], nil
	}
	// Rotation generators are stored in delta order 1..radix-1.
	return d.GenIdx[delta-1], nil
}

// Hypercube returns the binary k-cube Q_k as a nucleus: 2k symbols, k
// transposition generators, 2^k nodes.
func Hypercube(k int) *Nucleus {
	if k < 1 {
		panic("nucleus.Hypercube: k must be >= 1")
	}
	seed := make(perm.Label, 2*k)
	gens := make(perm.GenSet, 0, k)
	dims := make([]Dim, k)
	for i := 0; i < k; i++ {
		seed[2*i] = 0
		seed[2*i+1] = 1
		gens = append(gens, perm.Gen(fmt.Sprintf("d%d", i+1), perm.Transposition(2*k, 2*i, 2*i+1)))
		dims[i] = Dim{Radix: 2, GenIdx: []int{i}, offset: 2 * i, symbols: 2}
	}
	return &Nucleus{
		Name: fmt.Sprintf("Q%d", k),
		Seed: seed,
		Gens: gens,
		M:    1 << k,
		Dims: dims,
	}
}

// FoldedHypercube returns FQ_k: the k-cube plus the complement generator
// that flips every bit at once (degree k+1, diameter ceil(k/2)).
func FoldedHypercube(k int) *Nucleus {
	nu := Hypercube(k)
	nu.Name = fmt.Sprintf("FQ%d", k)
	comp := perm.Identity(2 * k)
	for i := 0; i < k; i++ {
		comp[2*i], comp[2*i+1] = comp[2*i+1], comp[2*i]
	}
	nu.Gens = append(nu.Gens, perm.Gen("comp", comp))
	// The complement edge does not extend the dimension structure; it is an
	// extra link, so Dims stays as the k binary dimensions.
	return nu
}

// Complete returns the complete graph K_m as a nucleus: m symbols seeded
// 0..m-1 with the m-1 left-rotations as generators; the m nodes are the
// rotations of the seed and every pair of nodes is adjacent.
func Complete(m int) *Nucleus {
	if m < 2 || m > 250 {
		panic("nucleus.Complete: m out of range [2,250]")
	}
	seed := make(perm.Label, m)
	for i := range seed {
		seed[i] = byte(i)
	}
	gens := make(perm.GenSet, 0, m-1)
	genIdx := make([]int, 0, m-1)
	for r := 1; r < m; r++ {
		gens = append(gens, perm.Gen(fmt.Sprintf("r%d", r), perm.RotateLeft(m, r)))
		genIdx = append(genIdx, r-1)
	}
	return &Nucleus{
		Name: fmt.Sprintf("K%d", m),
		Seed: seed,
		Gens: gens,
		M:    m,
		Dims: []Dim{{Radix: m, GenIdx: genIdx, offset: 0, symbols: m}},
	}
}

// Ring returns the cycle C_m as a nucleus: rotations by +1 and -1 only.
// Rings are not dimensionable in the complete-graph sense, so Dims is nil.
func Ring(m int) *Nucleus {
	if m < 3 || m > 250 {
		panic("nucleus.Ring: m out of range [3,250]")
	}
	seed := make(perm.Label, m)
	for i := range seed {
		seed[i] = byte(i)
	}
	gens := perm.GenSet{
		perm.Gen("r+1", perm.RotateLeft(m, 1)),
		perm.Gen("r-1", perm.RotateRight(m, 1)),
	}
	nu := &Nucleus{Name: fmt.Sprintf("C%d", m), Seed: seed, Gens: gens, M: m}
	// The m nodes are the m left-rotations of 0..m-1, so a label's address
	// is its rotation offset — the symbol at position 0.  The closed-form
	// rank keeps rings addressable without enumeration, which the implicit
	// super-IPG adjacency requires of its nucleus.
	nu.rankFn = func(l perm.Label) (int, error) {
		r := int(l[0])
		if r >= m {
			return 0, fmt.Errorf("nucleus %s: symbol %d outside [0,%d)", nu.Name, r, m)
		}
		for k, s := range l {
			if int(s) != (k+r)%m {
				return 0, fmt.Errorf("nucleus %s: label %v is not a rotation of the seed", nu.Name, l)
			}
		}
		return r, nil
	}
	nu.unrankFn = func(addr int) (perm.Label, error) {
		l := make(perm.Label, m)
		for k := range l {
			l[k] = byte((k + addr) % m)
		}
		return l, nil
	}
	return nu
}

// GeneralizedHypercube returns the mixed-radix generalized hypercube
// GHC(m_1, ..., m_n) of Bhuyan & Agrawal: the Cartesian product of complete
// graphs K_{m_1} x ... x K_{m_n}.  Block i of the label holds m_i symbols
// and carries the m_i - 1 rotation generators of dimension i.
func GeneralizedHypercube(radices ...int) *Nucleus {
	if len(radices) == 0 {
		panic("nucleus.GeneralizedHypercube: need at least one radix")
	}
	total := 0
	M := 1
	for _, m := range radices {
		if m < 2 {
			panic("nucleus.GeneralizedHypercube: radix must be >= 2")
		}
		total += m
		M *= m
	}
	seed := make(perm.Label, total)
	var gens perm.GenSet
	dims := make([]Dim, len(radices))
	offset := 0
	for di, m := range radices {
		for k := 0; k < m; k++ {
			seed[offset+k] = byte(k)
		}
		genIdx := make([]int, 0, m-1)
		for r := 1; r < m; r++ {
			p := perm.Identity(total)
			for k := 0; k < m; k++ {
				p[offset+k] = offset + (k+r)%m
			}
			genIdx = append(genIdx, len(gens))
			gens = append(gens, perm.Gen(fmt.Sprintf("d%dr%d", di+1, r), p))
		}
		dims[di] = Dim{Radix: m, GenIdx: genIdx, offset: offset, symbols: m}
		offset += m
	}
	name := "GHC("
	for i, m := range radices {
		if i > 0 {
			name += ","
		}
		name += fmt.Sprintf("%d", m)
	}
	name += ")"
	return &Nucleus{Name: name, Seed: seed, Gens: gens, M: M, Dims: dims}
}

// Star returns the star graph S_n (Akers & Krishnamurthy): seed 12...n with
// transposition generators (1,i); n! nodes, degree n-1.  Star graphs are
// Cayley graphs and serve as a non-dimensionable nucleus example.
func Star(n int) *Nucleus {
	if n < 2 || n > 8 {
		panic("nucleus.Star: n out of range [2,8]")
	}
	seed := make(perm.Label, n)
	for i := range seed {
		seed[i] = byte(i + 1)
	}
	gens := make(perm.GenSet, 0, n-1)
	M := 1
	for i := 2; i <= n; i++ {
		gens = append(gens, perm.Gen(fmt.Sprintf("t%d", i), perm.Transposition(n, 0, i-1)))
		M *= i
	}
	nu := &Nucleus{Name: fmt.Sprintf("S%d", n), Seed: seed, Gens: gens, M: M}
	// Star-graph nodes are all n! arrangements of the distinct seed
	// symbols, so the Lehmer-code label codec ranks them in lexicographic
	// order: address 0 is the seed 12...n, address n!-1 its reversal.
	codec, err := perm.NewLabelCodec(seed)
	if err != nil {
		panic("nucleus.Star: " + err.Error())
	}
	nu.rankFn = func(l perm.Label) (int, error) {
		r, err := codec.Rank(l)
		if err != nil {
			return 0, fmt.Errorf("nucleus %s: %v", nu.Name, err)
		}
		return int(r), nil
	}
	nu.unrankFn = func(addr int) (perm.Label, error) {
		return codec.Unrank(int64(addr))
	}
	return nu
}
