package nucleus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipg/internal/perm"
)

func TestHypercubeStructure(t *testing.T) {
	for k := 1; k <= 6; k++ {
		nu := Hypercube(k)
		g, err := nu.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 1<<k {
			t.Fatalf("Q%d: %d nodes, want %d", k, g.N(), 1<<k)
		}
		u := g.Undirected()
		if reg, d := u.IsRegular(); !reg || d != k {
			t.Errorf("Q%d: degree %v,%d want %d-regular", k, reg, d, k)
		}
		if diam := u.Diameter(); diam != k {
			t.Errorf("Q%d diameter = %d, want %d", k, diam, k)
		}
		if u.M() != k*(1<<k)/2 {
			t.Errorf("Q%d edges = %d", k, u.M())
		}
	}
}

func TestHypercubeAddressing(t *testing.T) {
	nu := Hypercube(4)
	g, _ := nu.Build()
	seen := make(map[int]bool)
	for v := 0; v < g.N(); v++ {
		addr, err := nu.AddressOf(g.Label(v))
		if err != nil {
			t.Fatal(err)
		}
		if addr < 0 || addr >= 16 || seen[addr] {
			t.Fatalf("bad/duplicate address %d for %v", addr, g.Label(v))
		}
		seen[addr] = true
		back, err := nu.LabelOf(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(g.Label(v)) {
			t.Fatalf("LabelOf(AddressOf) mismatch: %v -> %d -> %v", g.Label(v), addr, back)
		}
	}
	// Neighbors along dimension d differ by bit d.
	for v := 0; v < g.N(); v++ {
		a, _ := nu.AddressOf(g.Label(v))
		for d := 0; d < 4; d++ {
			w := g.Neighbor(v, nu.Dims[d].GenIdx[0])
			b, _ := nu.AddressOf(g.Label(w))
			if a^b != 1<<d {
				t.Fatalf("dimension %d link: %04b -> %04b", d, a, b)
			}
		}
	}
}

func TestFoldedHypercube(t *testing.T) {
	nu := FoldedHypercube(3)
	g, err := nu.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Fatalf("FQ3 nodes = %d", g.N())
	}
	u := g.Undirected()
	if reg, d := u.IsRegular(); !reg || d != 4 {
		t.Errorf("FQ3 degree = %v,%d, want 4-regular", reg, d)
	}
	// Folded hypercube diameter is ceil(k/2) = 2.
	if diam := u.Diameter(); diam != 2 {
		t.Errorf("FQ3 diameter = %d, want 2", diam)
	}
	// Complement generator connects addresses a and ^a.
	comp := len(nu.Gens) - 1
	for v := 0; v < g.N(); v++ {
		a, _ := nu.AddressOf(g.Label(v))
		w := g.Neighbor(v, comp)
		b, _ := nu.AddressOf(g.Label(w))
		if a^b != 7 {
			t.Fatalf("complement link %03b -> %03b", a, b)
		}
	}
}

func TestComplete(t *testing.T) {
	for m := 2; m <= 8; m++ {
		nu := Complete(m)
		g, err := nu.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != m {
			t.Fatalf("K%d nodes = %d", m, g.N())
		}
		u := g.Undirected()
		if u.M() != m*(m-1)/2 {
			t.Fatalf("K%d edges = %d, want %d", m, u.M(), m*(m-1)/2)
		}
		if m > 2 {
			if diam := u.Diameter(); diam != 1 {
				t.Errorf("K%d diameter = %d", m, diam)
			}
		}
	}
}

func TestCompleteAddressing(t *testing.T) {
	nu := Complete(5)
	g, _ := nu.Build()
	for v := 0; v < g.N(); v++ {
		a, err := nu.AddressOf(g.Label(v))
		if err != nil {
			t.Fatal(err)
		}
		l, _ := nu.LabelOf(a)
		if !l.Equal(g.Label(v)) {
			t.Fatalf("roundtrip failed for %v", g.Label(v))
		}
	}
	// DimGenerator moves digit a to digit b.
	for a := 0; a < 5; a++ {
		la, _ := nu.LabelOf(a)
		for b := 0; b < 5; b++ {
			if a == b {
				continue
			}
			gi, err := nu.DimGenerator(0, a, b)
			if err != nil {
				t.Fatal(err)
			}
			got := nu.Gens[gi].P.Apply(la)
			addr, _ := nu.AddressOf(got)
			if addr != b {
				t.Fatalf("DimGenerator(%d->%d) lands on %d", a, b, addr)
			}
		}
	}
}

func TestRing(t *testing.T) {
	nu := Ring(6)
	g, err := nu.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	if g.N() != 6 || u.M() != 6 {
		t.Fatalf("C6: n=%d m=%d", g.N(), u.M())
	}
	if diam := u.Diameter(); diam != 3 {
		t.Errorf("C6 diameter = %d", diam)
	}
}

func TestGeneralizedHypercube(t *testing.T) {
	// GHC(4,4,4): the paper's Corollary 3.7 example (m_i = 4, n = 3).
	nu := GeneralizedHypercube(4, 4, 4)
	g, err := nu.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 {
		t.Fatalf("GHC(4,4,4) nodes = %d, want 64", g.N())
	}
	u := g.Undirected()
	// Degree: 3 dims x (4-1) = 9.
	if reg, d := u.IsRegular(); !reg || d != 9 {
		t.Errorf("GHC(4,4,4) degree = %v,%d, want 9", reg, d)
	}
	if diam := u.Diameter(); diam != 3 {
		t.Errorf("GHC(4,4,4) diameter = %d, want 3", diam)
	}
	if nu.NumGens() != 9 || nu.NumDims() != 3 {
		t.Errorf("gens=%d dims=%d", nu.NumGens(), nu.NumDims())
	}
}

func TestGHCMixedRadix(t *testing.T) {
	nu := GeneralizedHypercube(2, 3, 4)
	g, err := nu.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 24 {
		t.Fatalf("GHC(2,3,4) nodes = %d", g.N())
	}
	// Round-trip all addresses.
	for a := 0; a < nu.M; a++ {
		l, err := nu.LabelOf(a)
		if err != nil {
			t.Fatal(err)
		}
		back, err := nu.AddressOf(l)
		if err != nil {
			t.Fatal(err)
		}
		if back != a {
			t.Fatalf("address roundtrip %d -> %v -> %d", a, l, back)
		}
		if g.NodeID(l) < 0 {
			t.Fatalf("label %v for address %d not in graph", l, a)
		}
	}
}

func TestStar(t *testing.T) {
	nu := Star(4)
	g, err := nu.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 24 {
		t.Fatalf("S4 nodes = %d", g.N())
	}
	if nu.NumDims() != 0 {
		t.Error("star graph should not be dimensionable")
	}
}

func TestQuickGHCDigitMove(t *testing.T) {
	// Property: DimGenerator changes exactly the requested digit.
	nu := GeneralizedHypercube(3, 4, 5)
	f := func(addrRaw uint16, dimRaw, deltaRaw uint8) bool {
		addr := int(addrRaw) % nu.M
		dim := int(dimRaw) % nu.NumDims()
		radix := nu.Dims[dim].Radix
		l, err := nu.LabelOf(addr)
		if err != nil {
			return false
		}
		digits := digitsOf(nu, addr)
		newDigit := (digits[dim] + 1 + int(deltaRaw)%(radix-1)) % radix
		gi, err := nu.DimGenerator(dim, digits[dim], newDigit)
		if err != nil {
			return false
		}
		got := nu.Gens[gi].P.Apply(l)
		gotAddr, err := nu.AddressOf(got)
		if err != nil {
			return false
		}
		want := digitsOf(nu, gotAddr)
		for d := 0; d < nu.NumDims(); d++ {
			switch {
			case d == dim && want[d] != newDigit:
				return false
			case d != dim && want[d] != digits[d]:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func digitsOf(nu *Nucleus, addr int) []int {
	out := make([]int, nu.NumDims())
	for d := 0; d < nu.NumDims(); d++ {
		out[d] = addr % nu.Dims[d].Radix
		addr /= nu.Dims[d].Radix
	}
	return out
}

func TestDimGeneratorErrors(t *testing.T) {
	nu := Hypercube(3)
	if _, err := nu.DimGenerator(5, 0, 1); err == nil {
		t.Error("out-of-range dimension should error")
	}
	if _, err := nu.DimGenerator(0, 1, 1); err == nil {
		t.Error("unchanged digit should error")
	}
}

func TestAddressErrors(t *testing.T) {
	nu := Hypercube(3)
	if _, err := nu.AddressOf(perm.MustParseLabel("01")); err == nil {
		t.Error("short label should error")
	}
	if _, err := nu.LabelOf(-1); err == nil {
		t.Error("negative address should error")
	}
	if _, err := nu.LabelOf(8); err == nil {
		t.Error("address >= M should error")
	}
}
