package nucleus

import (
	"fmt"

	"ipg/internal/perm"
)

// Product returns the nucleus realizing the Cartesian product a x b: labels
// are the concatenation of an a-label and a b-label, generators are the
// generators of a and b lifted to the combined label, and the dimension
// structure is the concatenation of both (a's dimensions first, so a's
// digits are least significant in the product address).
//
// Products of nuclei are what make recursively constructed super-IPGs
// (e.g. RCC networks, whose basic modules at level r are products of the
// level-(r-1) modules) expressible in the same framework.
func Product(a, b *Nucleus) *Nucleus {
	la, lb := len(a.Seed), len(b.Seed)
	n := la + lb
	seed := make(perm.Label, 0, n)
	seed = append(seed, a.Seed...)
	seed = append(seed, b.Seed...)

	gens := make(perm.GenSet, 0, len(a.Gens)+len(b.Gens))
	for _, g := range a.Gens {
		p := perm.Identity(n)
		copy(p[:la], g.P)
		gens = append(gens, perm.Gen("a."+g.Name, p))
	}
	for _, g := range b.Gens {
		p := perm.Identity(n)
		for i, v := range g.P {
			p[la+i] = la + v
		}
		gens = append(gens, perm.Gen("b."+g.Name, p))
	}

	dims := make([]Dim, 0, len(a.Dims)+len(b.Dims))
	for _, d := range a.Dims {
		dims = append(dims, Dim{Radix: d.Radix, GenIdx: append([]int(nil), d.GenIdx...), offset: d.offset, symbols: d.symbols})
	}
	for _, d := range b.Dims {
		shifted := make([]int, len(d.GenIdx))
		for i, gi := range d.GenIdx {
			shifted[i] = gi + len(a.Gens)
		}
		dims = append(dims, Dim{Radix: d.Radix, GenIdx: shifted, offset: la + d.offset, symbols: d.symbols})
	}

	return &Nucleus{
		Name: fmt.Sprintf("%sx%s", a.Name, b.Name),
		Seed: seed,
		Gens: gens,
		M:    a.M * b.M,
		Dims: dims,
	}
}

// Power returns the p-th Cartesian power of nu (p >= 1).
func Power(nu *Nucleus, p int) *Nucleus {
	if p < 1 {
		panic("nucleus.Power: p must be >= 1")
	}
	out := nu
	for i := 1; i < p; i++ {
		out = Product(out, nu)
	}
	if p > 1 {
		out.Name = fmt.Sprintf("%s^%d", nu.Name, p)
	}
	return out
}
