package nucleus

import "testing"

// FuzzParse hammers the compact nucleus syntax with arbitrary strings.
// Parse is the outermost user-facing decoder (CLIs and the daemon both
// funnel through it), so it must never panic, and an accepted spec must
// come back as a coherent nucleus: a name, at least one node, and at
// least one generator.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"q4", "q1", "q30", "q31", "q0", "q-3", "q999999999999999999",
		"fq3", "fq2", "fq", "fqx",
		"k5", "k2", "k1024", "k1025",
		"c8", "c3", "c1048576", "c2",
		"s3", "s12", "s13",
		"ghc:2,3,4", "ghc:2", "ghc:", "ghc:2,,3", "ghc:1024,1024,1024",
		"ghc:0", "ghc:2,999999999",
		"", "q", "zz9", "Q4", " q4", "q4 ", "qq4", "ghc:2,3,4,5,6,7,8,9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		nuc, err := Parse(s)
		if err != nil {
			if nuc != nil {
				t.Fatalf("Parse(%q) returned both a nucleus and error %v", s, err)
			}
			return
		}
		if nuc == nil {
			t.Fatalf("Parse(%q) returned nil without an error", s)
		}
		if nuc.Name == "" {
			t.Errorf("Parse(%q): empty nucleus name", s)
		}
		if nuc.M < 1 {
			t.Errorf("Parse(%q): node count %d < 1", s, nuc.M)
		}
		if len(nuc.Gens) == 0 {
			t.Errorf("Parse(%q): no generators", s)
		}
	})
}
