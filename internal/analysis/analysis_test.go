package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x+1
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", f)
	}
	if f.R2 < 0.999999 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	var x, y []float64
	for n := 16; n <= 4096; n *= 2 {
		x = append(x, float64(n))
		y = append(y, 3.5*math.Pow(float64(n), 1.5))
	}
	f, err := LogLogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-1.5) > 1e-9 {
		t.Errorf("alpha = %v, want 1.5", f.Slope)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x should error")
	}
	if _, err := LogLogFit([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative data should error")
	}
}

func TestQuickFitRecoversLine(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e6 {
			return true
		}
		x := []float64{0, 1, 2, 5, 9}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a*x[i] + b
		}
		fit, err := LinearFit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-a) < 1e-6*(1+math.Abs(a)) &&
			math.Abs(fit.Intercept-b) < 1e-6*(1+math.Abs(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Bisection bandwidth", "network", "B_B")
	tb.AddRow("Q12", 256.0)
	tb.AddRow("HSN(3,Q4)", 546.1333)
	out := tb.String()
	if !strings.Contains(out, "Bisection bandwidth") ||
		!strings.Contains(out, "HSN(3,Q4)") ||
		!strings.Contains(out, "546.1") {
		t.Errorf("table output:\n%s", out)
	}
	if !strings.Contains(out, "256") {
		t.Error("integral float should print without decimals")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Error("zero denominator should give +Inf")
	}
}
