// Package analysis provides the small measurement-processing helpers used
// by the experiment harness: least-squares fits for scaling laws (the
// paper's Theta(.) claims are verified by slope estimates over size
// sweeps) and fixed-width table rendering for the paper's tables.
package analysis

import (
	"fmt"
	"math"
	"strings"
)

// Fit is a least-squares line y = Slope*x + Intercept with goodness R2.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y = a*x + b by least squares.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) || len(x) < 2 {
		return Fit{}, fmt.Errorf("analysis: need >= 2 matched points, got %d/%d", len(x), len(y))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, fmt.Errorf("analysis: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range x {
		r := y[i] - (slope*x[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// LogLogFit fits y = c * x^alpha and returns alpha (the Slope) by
// regressing log y on log x.  Used to check Theta(N), Theta(N log N)-style
// scaling shapes.
func LogLogFit(x, y []float64) (Fit, error) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return Fit{}, fmt.Errorf("analysis: log-log fit needs positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	return LinearFit(lx, ly)
}

// Table renders rows of cells as a fixed-width text table with a header.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells may be any fmt-printable values.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Ratio returns a/b, guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
