package superipg

import (
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/perm"
)

func allFamilies(l int, nuc *nucleus.Nucleus) []*Network {
	return []*Network{
		HSN(l, nuc),
		RingCN(l, nuc),
		CompleteCN(l, nuc),
		SFN(l, nuc),
	}
}

func TestNodeCounts(t *testing.T) {
	nuc := nucleus.Hypercube(2)
	for _, w := range allFamilies(3, nuc) {
		g, err := w.Build()
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if g.N() != 64 {
			t.Errorf("%s: %d nodes, want 64 = M^l", w.Name(), g.N())
		}
	}
}

func TestHSNQ4MatchesPaperNumbers(t *testing.T) {
	// Section 4 of the paper: "a 16-node cluster of an HSN(3,Q4) has 30
	// intercluster links", i.e. 2(M-1) = 30 per cluster, and the average
	// intercluster distance is (l-1)(M-1)/M = 1.875.
	w := HSN(3, nucleus.Hypercube(4))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4096 {
		t.Fatalf("HSN(3,Q4) has %d nodes, want 4096", g.N())
	}
	_, nc := w.Clusters(g)
	if nc != 256 {
		t.Fatalf("HSN(3,Q4) has %d clusters, want 256", nc)
	}
	links := w.InterclusterLinks(g)
	// 30 links per cluster, each link touches 2 clusters: 256*30/2 = 3840.
	if links != 3840 {
		t.Errorf("total intercluster links = %d, want 3840", links)
	}
	if d := w.InterclusterDegree(g); d != 30.0/16.0 {
		t.Errorf("intercluster degree = %v, want 1.875", d)
	}
	if d := w.InterclusterDiameter(g); d != 2 {
		t.Errorf("intercluster diameter = %d, want l-1 = 2", d)
	}
	if a := w.AvgInterclusterDistance(g); a != 1.875 {
		t.Errorf("avg intercluster distance = %v, want 1.875", a)
	}
}

func TestCorollary42InterclusterT(t *testing.T) {
	// Corollary 4.2: intercluster diameter = l-1 for HSN, RCC, CN
	// (ring and complete), directed CN, and SFN.
	nuc := nucleus.Hypercube(2)
	for l := 2; l <= 5; l++ {
		nets := allFamilies(l, nuc)
		nets = append(nets, DirectedCN(l, nuc))
		for _, w := range nets {
			got, err := w.InterclusterT()
			if err != nil {
				t.Fatalf("%s: %v", w.Name(), err)
			}
			if got != l-1 {
				t.Errorf("%s: t = %d, want %d", w.Name(), got, l-1)
			}
		}
	}
	rcc := RCC(2, nucleus.Hypercube(2))
	if got, _ := rcc.InterclusterT(); got != 1 {
		t.Errorf("RCC(2,Q2): t = %d, want 1", got)
	}
}

func TestInterclusterTMatchesMeasuredDiameter(t *testing.T) {
	// Theorem 4.1: the measured intercluster diameter (quotient BFS on the
	// materialized graph) equals t for every family.
	nuc := nucleus.Hypercube(2)
	for l := 2; l <= 4; l++ {
		for _, w := range allFamilies(l, nuc) {
			g, err := w.Build()
			if err != nil {
				t.Fatal(err)
			}
			tVal, err := w.InterclusterT()
			if err != nil {
				t.Fatal(err)
			}
			if got := w.InterclusterDiameter(g); got != tVal {
				t.Errorf("%s: measured intercluster diameter %d != t %d", w.Name(), got, tVal)
			}
		}
	}
}

func TestCorollary44SymmetricTS(t *testing.T) {
	// Corollary 4.4: t_S is l for complete-CN, 2l-2 for HSN/SFN, and
	// 2, 3, floor(1.5l)-2 for ring-CN with l = 2, 3, >= 4.
	nuc := nucleus.Hypercube(1)
	for l := 2; l <= 6; l++ {
		for _, w := range allFamilies(l, nuc) {
			want := w.TheoreticalSymmetricDiameter()
			if want < 0 {
				t.Fatalf("%s: no closed form", w.Name())
			}
			got, err := w.SymmetricTS()
			if err != nil {
				t.Fatalf("%s: %v", w.Name(), err)
			}
			if w.Family == "SFN" && l >= 6 {
				// For SFN the corollary's 2l-2 is exact only up to l=5;
				// beyond that pancake-style interleaved routing beats the
				// generic visit-then-rearrange strategy, so the closed form
				// is an upper bound (measured: t_S = 8 < 10 at l = 6).
				if got > want {
					t.Errorf("%s: t_S = %d exceeds upper bound %d", w.Name(), got, want)
				}
				continue
			}
			if got != want {
				t.Errorf("%s: t_S = %d, want %d", w.Name(), got, want)
			}
		}
	}
}

func TestBringRestoreWords(t *testing.T) {
	nuc := nucleus.Hypercube(2)
	for l := 2; l <= 5; l++ {
		nets := allFamilies(l, nuc)
		nets = append(nets, DirectedCN(l, nuc))
		for _, w := range nets {
			for i := 2; i <= l; i++ {
				arr := perm.Identity(l)
				apply := func(word []int) {
					for _, gi := range word {
						act := w.SuperAction(gi - w.NumNucGens())
						next := make(perm.Perm, l)
						for pos := 0; pos < l; pos++ {
							next[pos] = arr[act[pos]]
						}
						arr = next
					}
				}
				apply(w.BringToFront(i))
				if arr[0] != i-1 {
					t.Fatalf("%s: BringToFront(%d) put group %d at front", w.Name(), i, arr[0]+1)
				}
				apply(w.RestoreFromFront(i))
				if !arr.IsIdentity() {
					t.Fatalf("%s: RestoreFromFront(%d) left arrangement %v", w.Name(), i, arr)
				}
			}
		}
	}
}

func TestAddressRoundTrip(t *testing.T) {
	w := CompleteCN(3, nucleus.Hypercube(2))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, w.N())
	for v := 0; v < g.N(); v++ {
		addr, err := w.AddressOf(g.Label(v))
		if err != nil {
			t.Fatal(err)
		}
		if addr < 0 || addr >= w.N() || seen[addr] {
			t.Fatalf("bad or duplicate address %d", addr)
		}
		seen[addr] = true
		back, err := w.LabelOf(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(g.Label(v)) {
			t.Fatalf("roundtrip mismatch at %d", v)
		}
	}
}

func TestHCNIsHSN2(t *testing.T) {
	w := HCN(3)
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 {
		t.Fatalf("HCN(3,3): %d nodes, want 64", g.N())
	}
	// Each node: 3 cube links + at most 1 swap link.
	u := g.Undirected()
	if _, max, _ := u.DegreeStats(); max != 4 {
		t.Errorf("HCN(3,3) max degree = %d, want 4", max)
	}
	if w.Name() != "HCN(2,Q3)" {
		t.Errorf("name = %s", w.Name())
	}
}

func TestRCCSeedMatchesPaper(t *testing.T) {
	// RCC(2,Q4): 32-symbol seed 01 01 ... 01 and super-generator T_{2,16},
	// the structure the Section 3.1 example relies on.
	w := RCC(2, nucleus.Hypercube(4))
	if got := w.Seed().String(); got != "01010101010101010101010101010101" {
		t.Errorf("RCC(2,Q4) seed = %s", got)
	}
	if w.L != 2 || w.SymbolLen() != 16 {
		t.Errorf("RCC(2,Q4): l=%d m=%d, want 2,16", w.L, w.SymbolLen())
	}
	if w.N() != 65536 {
		t.Errorf("RCC(2,Q4): N=%d, want 65536 (16-cube size)", w.N())
	}
	if w.NumSupers() != 1 {
		t.Errorf("RCC(2,Q4) supers = %d, want 1 (T2)", w.NumSupers())
	}
}

func TestGeneratorPartition(t *testing.T) {
	w := HSN(3, nucleus.Hypercube(2))
	if w.NumNucGens() != 2 || w.NumSupers() != 2 {
		t.Fatalf("gens split = %d,%d", w.NumNucGens(), w.NumSupers())
	}
	for gi := range w.Gens() {
		if w.IsSuper(gi) != (gi >= 2) {
			t.Errorf("IsSuper(%d) wrong", gi)
		}
	}
}

func TestRingCNUsesShortestRotation(t *testing.T) {
	w := RingCN(6, nucleus.Hypercube(1))
	// Group 2: 1 left shift; group 6: 1 right shift.
	if len(w.BringToFront(2)) != 1 || len(w.BringToFront(6)) != 1 {
		t.Error("ring-CN should rotate the short way")
	}
	if len(w.BringToFront(4)) != 3 {
		t.Errorf("ring-CN bring group 4 takes %d steps, want 3", len(w.BringToFront(4)))
	}
}

func TestTransitionWordsAllFamilies(t *testing.T) {
	// TransitionWord(f, t) must move the canonical arrangement with front
	// f to the canonical arrangement with front t, for every (f, t) pair.
	nuc := nucleus.Hypercube(1)
	for l := 2; l <= 5; l++ {
		for _, w := range append(allFamilies(l, nuc), DirectedCN(l, nuc)) {
			canonical := func(f int) perm.Perm {
				arr := perm.Identity(l)
				if f != 1 {
					for _, gi := range w.BringToFront(f) {
						act := w.SuperAction(gi - w.NumNucGens())
						next := make(perm.Perm, l)
						for pos := 0; pos < l; pos++ {
							next[pos] = arr[act[pos]]
						}
						arr = next
					}
				}
				return arr
			}
			for f := 1; f <= l; f++ {
				for to := 1; to <= l; to++ {
					arr := canonical(f)
					for _, gi := range w.TransitionWord(f, to) {
						act := w.SuperAction(gi - w.NumNucGens())
						next := make(perm.Perm, l)
						for pos := 0; pos < l; pos++ {
							next[pos] = arr[act[pos]]
						}
						arr = next
					}
					if !arr.Equal(canonical(to)) {
						t.Fatalf("%s: transition %d->%d gives %v, want %v", w.Name(), f, to, arr, canonical(to))
					}
					// FinalWord is the transition to front 1.
					if to == 1 && len(w.FinalWord(f)) != len(w.TransitionWord(f, 1)) {
						t.Fatalf("%s: FinalWord(%d) differs from TransitionWord(%d,1)", w.Name(), f, f)
					}
				}
			}
		}
	}
}

func TestSmallAccessors(t *testing.T) {
	w := HSN(3, nucleus.Hypercube(2))
	if w.M() != 4 {
		t.Errorf("M = %d", w.M())
	}
	if w.TheoreticalInterclusterDiameter() != 2 {
		t.Error("closed-form ic diameter wrong")
	}
	if w.ClusterKey(w.Seed()) != string(w.Seed()[4:]) {
		t.Error("ClusterKey wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("BringToFront(1) should panic")
		}
	}()
	w.BringToFront(1)
}

func TestQuotientStructureHSN2(t *testing.T) {
	// HSN(2, Q2): quotient is K4 plus possibly missing edges? Each cluster
	// X2 connects to cluster A for every A != X2 via the swap: quotient is
	// the complete graph K_M.
	w := HSN(2, nucleus.Hypercube(2))
	g := w.MustBuild()
	q, _ := w.Quotient(g)
	if q.N() != 4 || q.M() != 6 {
		t.Errorf("HSN(2,Q2) quotient: n=%d m=%d, want K4", q.N(), q.M())
	}
}

func TestDirectedInterclusterDiameter(t *testing.T) {
	// Corollary 4.2 covers directed CNs too: measured directed quotient
	// diameter equals l-1.
	for l := 2; l <= 4; l++ {
		w := DirectedCN(l, nucleus.Hypercube(2))
		g, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		if d := w.DirectedInterclusterDiameter(g); d != l-1 {
			t.Errorf("directed-CN(%d): measured %d, want %d", l, d, l-1)
		}
	}
	// Undirected families agree with the symmetric computation.
	w := HSN(3, nucleus.Hypercube(2))
	g := w.MustBuild()
	if d := w.DirectedInterclusterDiameter(g); d != w.InterclusterDiameter(g) {
		t.Errorf("directed and undirected quotient diameters disagree on HSN: %d", d)
	}
}

func TestStarNucleusSuperIPG(t *testing.T) {
	// A super-IPG over a star-graph nucleus (the construction behind
	// macro-star networks, [28] in the paper): N = (n!)^l, intercluster
	// diameter l-1.
	w := HSN(2, nucleus.Star(3))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 36 {
		t.Fatalf("HSN(2,S3): %d nodes, want 36", g.N())
	}
	if d := w.InterclusterDiameter(g); d != 1 {
		t.Errorf("intercluster diameter %d, want 1", d)
	}
	tv, err := w.InterclusterT()
	if err != nil || tv != 1 {
		t.Errorf("t = %d, %v", tv, err)
	}
}

func TestDirectedCNNotInverseClosed(t *testing.T) {
	w := DirectedCN(3, nucleus.Hypercube(1))
	supers := w.Gens()[w.NumNucGens():]
	if supers.ClosedUnderInverse() {
		t.Error("directed CN super set should not be inverse-closed")
	}
}
