// Package superipg implements the super-IPG families of Yeh & Parhami:
// hierarchical swap networks (HSN), ring and complete cyclic networks
// (ring-CN, complete-CN), super-flip networks (SFN), hierarchical cubic
// networks (HCN), directed CNs, and recursively connected complete (RCC)
// networks, together with the intercluster metrics of Section 4 of the
// paper (intercluster degree, intercluster diameter, average intercluster
// distance).
//
// A super-IPG with l super-symbols over a nucleus G with M nodes and label
// length m has seed S1 S1 ... S1 (l copies of G's seed), the nucleus
// generators of G lifted to the leftmost group, and family-specific
// super-generators that permute whole groups.  Its M^l nodes are all
// l-tuples of nucleus labels; the cluster of a node is the copy of the
// nucleus it lies in, identified by the label suffix beyond the first
// group.
package superipg

//lint:file-ignore ctxflow intercluster scans are one O(N+M) pass per memoized metrics build, bounded by ipg.MaxNodes; the diameter entry points poll ctx between BFS batches

import (
	"context"
	"fmt"

	"ipg/internal/graph"
	"ipg/internal/ipg"
	"ipg/internal/nucleus"
	"ipg/internal/perm"
	"ipg/internal/topo"
)

// Network describes a super-IPG family instance before materialization.
type Network struct {
	Family string
	L      int
	Nuc    *nucleus.Nucleus

	gens perm.GenSet // nucleus generators (lifted) first, then super-generators
	nNuc int
	// superActs[k] is the induced permutation on the l groups of
	// super-generator k (gens[nNuc+k]).
	superActs []perm.Perm
	// bring[i-2] / restore[i-2] are the super-generator words (global
	// generator indices) that bring group i (1-based, 2..l) to the leftmost
	// position and put the arrangement back to identity afterwards.
	bring, restore [][]int
}

// newNetwork assembles the shared structure given the family's
// super-generators and routing words.
func newNetwork(family string, l int, nuc *nucleus.Nucleus, supers perm.GenSet, bring, restore [][]int) *Network {
	if l < 2 {
		panic(fmt.Sprintf("superipg.%s: l must be >= 2", family))
	}
	m := nuc.SymbolLen()
	gens := make(perm.GenSet, 0, len(nuc.Gens)+len(supers))
	for _, g := range nuc.Gens {
		gens = append(gens, perm.Gen("N:"+g.Name, perm.LiftToLeftGroup(g.P, l)))
	}
	gens = append(gens, supers...)
	w := &Network{
		Family:  family,
		L:       l,
		Nuc:     nuc,
		gens:    gens,
		nNuc:    len(nuc.Gens),
		bring:   bring,
		restore: restore,
	}
	for _, s := range supers {
		act, ok := perm.GroupAction(s.P, l, m)
		if !ok {
			panic(fmt.Sprintf("superipg.%s: %s is not a super-generator", family, s.Name))
		}
		w.superActs = append(w.superActs, act)
	}
	return w
}

// HSN returns the l-level hierarchical swap network HSN(l, G): transposition
// super-generators T_i = (1,i)_m for i = 2..l.
func HSN(l int, nuc *nucleus.Nucleus) *Network {
	m := nuc.SymbolLen()
	var supers perm.GenSet
	var bring, restore [][]int
	for i := 2; i <= l; i++ {
		supers = append(supers, perm.Gen(fmt.Sprintf("T%d", i), perm.SwapGroups(l, m, 1, i)))
	}
	for i := 2; i <= l; i++ {
		gi := len(nuc.Gens) + (i - 2)
		bring = append(bring, []int{gi})
		restore = append(restore, []int{gi})
	}
	return newNetwork("HSN", l, nuc, supers, bring, restore)
}

// HCN returns the hierarchical cubic network HCN(n, n) of Ghose & Desai in
// its super-IPG skeleton form: HSN(2, Q_n), i.e. 2^n clusters of n-cubes
// with the swap super-generator T_{2,2n}.
func HCN(n int) *Network {
	w := HSN(2, nucleus.Hypercube(n))
	w.Family = "HCN"
	return w
}

// RCC returns the r-level recursively connected complete network based on
// G in its super-IPG skeleton form: RCC(r, G) = HSN(2, G^(2^(r-1))).  The
// paper's Section 3.1 example RCC(2, Q4) thereby has the 32-symbol seed
// 0101...01 and super-generator T_{2,16}, exactly the generator sequence
// the paper lists for it.
func RCC(r int, nuc *nucleus.Nucleus) *Network {
	if r < 2 {
		panic("superipg.RCC: r must be >= 2")
	}
	w := HSN(2, nucleus.Power(nuc, 1<<(r-1)))
	w.Family = "RCC"
	return w
}

// RingCN returns the ring cyclic network ring-CN(l, G): cyclic-shift
// super-generators L_1 and R_1 = L_1^-1.
func RingCN(l int, nuc *nucleus.Nucleus) *Network {
	m := nuc.SymbolLen()
	supers := perm.GenSet{
		perm.Gen("L1", perm.ShiftGroupsLeft(l, m, 1)),
		perm.Gen("R1", perm.ShiftGroupsRight(l, m, 1)),
	}
	li := len(nuc.Gens)
	ri := li + 1
	var bring, restore [][]int
	for i := 2; i <= l; i++ {
		// Rotate whichever way is shorter.
		left := i - 1
		right := l - i + 1
		if left <= right {
			bring = append(bring, repeat(li, left))
			restore = append(restore, repeat(ri, left))
		} else {
			bring = append(bring, repeat(ri, right))
			restore = append(restore, repeat(li, right))
		}
	}
	return newNetwork("ring-CN", l, nuc, supers, bring, restore)
}

// CompleteCN returns the complete cyclic network complete-CN(l, G):
// cyclic-shift super-generators L_1 .. L_{l-1}.
func CompleteCN(l int, nuc *nucleus.Nucleus) *Network {
	m := nuc.SymbolLen()
	var supers perm.GenSet
	for i := 1; i < l; i++ {
		supers = append(supers, perm.Gen(fmt.Sprintf("L%d", i), perm.ShiftGroupsLeft(l, m, i)))
	}
	var bring, restore [][]int
	for i := 2; i <= l; i++ {
		// L_{i-1} brings group i to the front; L_{l-i+1} is its inverse.
		bring = append(bring, []int{len(nuc.Gens) + (i - 2)})
		restore = append(restore, []int{len(nuc.Gens) + (l - i + 1) - 1})
	}
	return newNetwork("complete-CN", l, nuc, supers, bring, restore)
}

// DirectedCN returns the directed cyclic network: the single super-generator
// L_1, giving each node one outgoing intercluster arc.  The resulting IPG is
// a digraph (the generator set is not closed under inverse).
func DirectedCN(l int, nuc *nucleus.Nucleus) *Network {
	m := nuc.SymbolLen()
	supers := perm.GenSet{perm.Gen("L1", perm.ShiftGroupsLeft(l, m, 1))}
	li := len(nuc.Gens)
	var bring, restore [][]int
	for i := 2; i <= l; i++ {
		bring = append(bring, repeat(li, i-1))
		restore = append(restore, repeat(li, l-i+1))
	}
	return newNetwork("directed-CN", l, nuc, supers, bring, restore)
}

// SFN returns the l-level super-flip network SFN(l, G): flip
// super-generators F_i for i = 2..l, where F_i reverses the first i groups.
func SFN(l int, nuc *nucleus.Nucleus) *Network {
	m := nuc.SymbolLen()
	var supers perm.GenSet
	var bring, restore [][]int
	for i := 2; i <= l; i++ {
		supers = append(supers, perm.Gen(fmt.Sprintf("F%d", i), perm.FlipGroups(l, m, i)))
	}
	for i := 2; i <= l; i++ {
		gi := len(nuc.Gens) + (i - 2)
		bring = append(bring, []int{gi})
		restore = append(restore, []int{gi})
	}
	return newNetwork("SFN", l, nuc, supers, bring, restore)
}

func repeat(v, n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = v
	}
	return w
}

// Name returns a descriptive instance name such as "HSN(3,Q4)".
func (w *Network) Name() string { return fmt.Sprintf("%s(%d,%s)", w.Family, w.L, w.Nuc.Name) }

// Seed returns the seed label: l copies of the nucleus seed.
func (w *Network) Seed() perm.Label { return perm.RepeatGroups(w.Nuc.Seed, w.L) }

// Gens returns the full generator set (nucleus generators first).
func (w *Network) Gens() perm.GenSet { return w.gens }

// NumNucGens returns the number of nucleus generators; generator indices
// below this are nucleus generators, the rest super-generators.
func (w *Network) NumNucGens() int { return w.nNuc }

// NumSupers returns the number of super-generators.
func (w *Network) NumSupers() int { return len(w.gens) - w.nNuc }

// IsSuper reports whether generator index gi is a super-generator.
func (w *Network) IsSuper(gi int) bool { return gi >= w.nNuc }

// SuperAction returns the induced permutation on the l groups of the k-th
// super-generator (k indexes supers only, from 0).
func (w *Network) SuperAction(k int) perm.Perm { return w.superActs[k] }

// M returns the nucleus size (nodes per cluster).
func (w *Network) M() int { return w.Nuc.M }

// SymbolLen returns the per-group symbol count m.
func (w *Network) SymbolLen() int { return w.Nuc.SymbolLen() }

// N returns the total node count M^l.
func (w *Network) N() int {
	n := 1
	for i := 0; i < w.L; i++ {
		n *= w.Nuc.M
	}
	return n
}

// Spec returns the ipg.Spec for materialization.
func (w *Network) Spec() ipg.Spec {
	return ipg.Spec{Name: w.Name(), Seed: w.Seed(), Gens: w.gens}
}

// Build materializes the super-IPG and verifies the node count is M^l.
func (w *Network) Build() (*ipg.Graph, error) {
	g, err := ipg.Build(w.Spec())
	if err != nil {
		return nil, err
	}
	if g.N() != w.N() {
		return nil, fmt.Errorf("superipg: %s materialized %d nodes, want %d", w.Name(), g.N(), w.N())
	}
	return g, nil
}

// MustBuild is Build that panics on error.
func (w *Network) MustBuild() *ipg.Graph {
	g, err := w.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// BringToFront returns the super-generator word (global generator indices)
// that brings group i (2 <= i <= l) to the leftmost position.
func (w *Network) BringToFront(i int) []int {
	if i < 2 || i > w.L {
		panic(fmt.Sprintf("superipg: BringToFront(%d) out of range 2..%d", i, w.L))
	}
	return w.bring[i-2]
}

// RestoreFromFront returns the word undoing BringToFront(i).
func (w *Network) RestoreFromFront(i int) []int {
	if i < 2 || i > w.L {
		panic(fmt.Sprintf("superipg: RestoreFromFront(%d) out of range 2..%d", i, w.L))
	}
	return w.restore[i-2]
}

// AddressOf returns the integer address of a node label: group i (1-based)
// contributes its nucleus address with weight M^(i-1).
func (w *Network) AddressOf(l perm.Label) (int, error) {
	m := w.SymbolLen()
	if len(l) != m*w.L {
		return 0, fmt.Errorf("superipg: label length %d, want %d", len(l), m*w.L)
	}
	addr := 0
	weight := 1
	for i := 0; i < w.L; i++ {
		a, err := w.Nuc.AddressOf(l.Group(m, i))
		if err != nil {
			return 0, err
		}
		addr += a * weight
		weight *= w.Nuc.M
	}
	return addr, nil
}

// LabelOf is the inverse of AddressOf.
func (w *Network) LabelOf(addr int) (perm.Label, error) {
	if addr < 0 || addr >= w.N() {
		return nil, fmt.Errorf("superipg: address %d out of range [0,%d)", addr, w.N())
	}
	m := w.SymbolLen()
	out := make(perm.Label, 0, m*w.L)
	for i := 0; i < w.L; i++ {
		g, err := w.Nuc.LabelOf(addr % w.Nuc.M)
		if err != nil {
			return nil, err
		}
		out = append(out, g...)
		addr /= w.Nuc.M
	}
	return out, nil
}

// ClusterKey returns the cluster identifier of a label: the suffix beyond
// the first group.  Nodes with equal suffixes form one nucleus copy.
func (w *Network) ClusterKey(l perm.Label) string { return string(l[w.SymbolLen():]) }

// Clusters partitions the materialized graph into nucleus copies.
func (w *Network) Clusters(g *ipg.Graph) ([]int32, int) {
	m := w.SymbolLen()
	return g.ClustersBy(func(l perm.Label) string { return string(l[m:]) })
}

// Quotient returns the cluster graph: one vertex per cluster, an edge
// between two clusters when some super-generator link joins them.  Because
// every cluster is a connected nucleus copy and on-chip moves are free, the
// intercluster distance between two nodes equals the quotient distance
// between their clusters.
func (w *Network) Quotient(g *ipg.Graph) (*graph.Graph, []int32) {
	clusterOf, nc := w.Clusters(g)
	q := graph.FromStream(nc, func(edge func(u, v int)) {
		for v := 0; v < g.N(); v++ {
			for gi := w.nNuc; gi < len(w.gens); gi++ {
				u := g.Neighbor(v, gi)
				if u != v && clusterOf[u] != clusterOf[v] {
					edge(int(clusterOf[v]), int(clusterOf[u]))
				}
			}
		}
	})
	return q, clusterOf
}

// InterclusterDiameter returns the maximum intercluster distance over all
// node pairs: the diameter of the quotient graph.
func (w *Network) InterclusterDiameter(g *ipg.Graph) int {
	q, _ := w.Quotient(g)
	return q.DiameterParallel()
}

// AvgInterclusterDistance returns the average intercluster distance over
// all ordered node pairs including self-pairs (the paper's convention).
// Because all clusters have exactly M nodes, this equals the quotient
// graph's average distance.
func (w *Network) AvgInterclusterDistance(g *ipg.Graph) float64 {
	q, _ := w.Quotient(g)
	return q.AverageDistanceParallel()
}

// InterclusterDiameterCtx is InterclusterDiameter under a context
// deadline, for the serving layer's per-request cancellation.
func (w *Network) InterclusterDiameterCtx(ctx context.Context, g *ipg.Graph) (int, error) {
	q, _ := w.Quotient(g)
	return q.DiameterParallelCtx(ctx)
}

// AvgInterclusterDistanceCtx is AvgInterclusterDistance under a context
// deadline.
func (w *Network) AvgInterclusterDistanceCtx(ctx context.Context, g *ipg.Graph) (float64, error) {
	q, _ := w.Quotient(g)
	return q.AverageDistanceParallelCtx(ctx)
}

// DirectedInterclusterDiameter computes the intercluster diameter of a
// digraph family (e.g. directed-CN) by BFS over the directed cluster
// quotient: an arc from cluster A to cluster B exists when some
// super-generator arc leads from a node of A to a node of B.
func (w *Network) DirectedInterclusterDiameter(g *ipg.Graph) int {
	clusterOf, nc := w.Clusters(g)
	arcs, err := topo.BuildArcs(nc, func(arc func(u, v int)) {
		for v := 0; v < g.N(); v++ {
			for gi := w.nNuc; gi < len(w.gens); gi++ {
				u := g.Neighbor(v, gi)
				if u != v && clusterOf[u] != clusterOf[v] {
					arc(int(clusterOf[v]), int(clusterOf[u]))
				}
			}
		}
	})
	if err != nil {
		panic("superipg: " + err.Error())
	}
	// The quotient arcs are directed, so the bit-parallel kernel's
	// bottom-up pass (which assumes a symmetric CSR) does not apply; the
	// scalar sweep stays, on pooled scratch.
	diam := 0
	s := topo.GetScratch(nc)
	defer topo.PutScratch(s)
	for src := 0; src < nc; src++ {
		ecc, _ := arcs.BFSInto(src, s.Dist, s.Queue)
		if ecc < 0 {
			return -1 // not strongly connected at the cluster level
		}
		if int(ecc) > diam {
			diam = int(ecc)
		}
	}
	return diam
}

// InterclusterLinks returns the total number of undirected intercluster
// links in the materialized graph (super-generator edges between distinct
// clusters, self-loops excluded).
func (w *Network) InterclusterLinks(g *ipg.Graph) int {
	clusterOf, _ := w.Clusters(g)
	seen := make(map[[2]int32]bool)
	for v := 0; v < g.N(); v++ {
		for gi := w.nNuc; gi < len(w.gens); gi++ {
			u := g.Neighbor(v, gi)
			if u == v || clusterOf[u] == clusterOf[v] {
				continue
			}
			//lint:ignore indextrunc node ids are < g.N() <= ipg.MaxNodes (1<<22)
			a, b := int32(v), int32(u)
			if a > b {
				a, b = b, a
			}
			seen[[2]int32{a, b}] = true
		}
	}
	return len(seen)
}

// InterclusterDegree returns the paper's intercluster degree: the maximum
// over clusters of the average number of intercluster links per node of
// the cluster.
func (w *Network) InterclusterDegree(g *ipg.Graph) float64 {
	clusterOf, nc := w.Clusters(g)
	linkEnds := make([]int, nc)
	for v := 0; v < g.N(); v++ {
		for gi := w.nNuc; gi < len(w.gens); gi++ {
			u := g.Neighbor(v, gi)
			if u == v || clusterOf[u] == clusterOf[v] {
				continue
			}
			linkEnds[clusterOf[v]]++
		}
	}
	// linkEnds counts directed arcs out of each cluster.  For inverse-closed
	// generator sets every undirected link contributes one out-arc at each
	// endpoint cluster, but a node may reach the same neighbor through two
	// different generators; those are distinct physical links, matching the
	// paper's per-generator link accounting.
	max := 0.0
	for _, e := range linkEnds {
		d := float64(e) / float64(w.Nuc.M)
		if d > max {
			max = d
		}
	}
	return max
}
