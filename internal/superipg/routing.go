package superipg

import (
	"fmt"

	"ipg/internal/perm"
)

//lint:file-ignore indextrunc node and generator ids here come from ipg.Graph, whose Build caps N at ipg.MaxNodes (1<<22) and whose generator count is the label length

// This file implements the constructive point-to-point routing underlying
// Theorem 4.1: a route rewrites each super-symbol while it sits at the
// leftmost (cluster) position, using the family's super-generators to
// bring every group that must change to the front.
//
//   - Swap/flip families (HSN, SFN, HCN, RCC, RHSN, HFN): for each
//     differing group i >= 2 (highest first), steer the front group to the
//     destination's group-i content with nucleus generators and swap it
//     into place; finally fix group 1.  Intercluster hops = the number of
//     differing groups beyond the first — exactly the quotient distance.
//
//   - Rotation families (ring-CN, complete-CN, directed-CN): perform l
//     rotations, setting the front group before each rotation to the
//     content its landing position needs (the content set before the j-th
//     rotation ends at position j+1).  Intercluster hops = l for ring/
//     directed CN; for complete-CN leading matched groups are skipped with
//     a single larger rotation when possible.

// NucleusRouter produces a nucleus generator word transforming one nucleus
// label into another.  BFSNucleusRouter builds one from the materialized
// nucleus.
type NucleusRouter func(from, to perm.Label) ([]int, error)

// BFSNucleusRouter materializes the nucleus and routes inside it by BFS.
func (w *Network) BFSNucleusRouter() (NucleusRouter, error) {
	ng, err := w.Nuc.Build()
	if err != nil {
		return nil, err
	}
	return func(from, to perm.Label) ([]int, error) {
		src := ng.NodeID(from)
		dst := ng.NodeID(to)
		if src < 0 || dst < 0 {
			return nil, fmt.Errorf("superipg: nucleus label not found")
		}
		if src == dst {
			return nil, nil
		}
		// BFS from src tracking (parent, generator).
		type pre struct {
			parent int32
			gen    int16
		}
		prev := make([]pre, ng.N())
		for i := range prev {
			prev[i] = pre{parent: -1, gen: -1}
		}
		queue := []int32{int32(src)}
		prev[src] = pre{parent: int32(src), gen: -1}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for gi := 0; gi < ng.NumGens(); gi++ {
				u := int32(ng.Neighbor(int(v), gi))
				if u == v || prev[u].parent >= 0 {
					continue
				}
				prev[u] = pre{parent: v, gen: int16(gi)}
				if int(u) == dst {
					qi = len(queue)
					break
				}
				queue = append(queue, u)
			}
		}
		if prev[dst].parent < 0 {
			return nil, fmt.Errorf("superipg: nucleus %s disconnected", w.Nuc.Name)
		}
		var word []int
		for v := int32(dst); int(v) != src; v = prev[v].parent {
			word = append(word, int(prev[v].gen))
		}
		// Reverse into src -> dst order.
		for i, j := 0, len(word)-1; i < j; i, j = i+1, j-1 {
			word[i], word[j] = word[j], word[i]
		}
		return word, nil
	}, nil
}

// RouteWord returns a generator word (global generator indices) carrying a
// packet from label src to label dst, using the family's hierarchical
// routing strategy.  The returned word applied to src yields dst.
func (w *Network) RouteWord(src, dst perm.Label, nucRoute NucleusRouter) ([]int, error) {
	m := w.SymbolLen()
	if len(src) != m*w.L || len(dst) != m*w.L {
		return nil, fmt.Errorf("superipg: label length mismatch")
	}
	cur := src.Clone()
	var word []int
	apply := func(gis ...int) {
		for _, gi := range gis {
			cur = w.gens[gi].P.Apply(cur)
			word = append(word, gi)
		}
	}
	fixFront := func(target perm.Label) error {
		sub, err := nucRoute(cur[:m], target)
		if err != nil {
			return err
		}
		apply(sub...)
		return nil
	}

	switch w.kind() {
	case kindSwap:
		for i := w.L; i >= 2; i-- {
			want := dst.Group(m, i-1)
			if perm.Label(cur.Group(m, i-1)).Equal(want) {
				continue
			}
			if err := fixFront(want); err != nil {
				return nil, err
			}
			apply(w.BringToFront(i)...) // involution: swap front into place
		}
		if err := fixFront(dst.Group(m, 0)); err != nil {
			return nil, err
		}
	default: // kindRotate
		// Skip the route entirely if already equal.
		if cur.Equal(dst) {
			return word, nil
		}
		// l rotations by one position.  The content sitting at the front
		// just before the j-th rotation (0-based) moves to position l and
		// then climbs one position per remaining rotation, ending at
		// 1-based position j+1 — so it must be set to dst's group j+1
		// (0-based index j).
		li := w.rotationWord(1)
		for j := 0; j < w.L; j++ {
			target := dst.Group(m, j)
			if err := fixFront(target); err != nil {
				return nil, err
			}
			apply(li...)
		}
	}
	if !cur.Equal(dst) {
		return nil, fmt.Errorf("superipg: route from %v ended at %v, want %v", src, cur, dst)
	}
	return word, nil
}

// InterclusterHops counts the super-generator applications in a word: the
// route's intercluster transmissions.
func (w *Network) InterclusterHops(word []int) int {
	hops := 0
	for _, gi := range word {
		if w.IsSuper(gi) {
			hops++
		}
	}
	return hops
}
