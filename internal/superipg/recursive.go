package superipg

import (
	"fmt"

	"ipg/internal/nucleus"
	"ipg/internal/perm"
)

// This file builds the recursive families: recursive hierarchical swap
// networks (RHSN), where the nucleus of a level-d network is the whole
// level-(d-1) network, and hierarchical folded-hypercube networks (HFN),
// the folded-hypercube analogue of HCN.

// AsNucleus reinterprets a super-IPG as a nucleus graph, enabling
// recursive constructions: the nucleus's seed and generators are the
// super-IPG's own, and its node count is the super-IPG's N.  The returned
// nucleus carries no dimension structure (its generator set is not a
// product of complete graphs), but addressing is provided through an
// explicit enumeration ordered by the inner network's own address space,
// so AddressOf/LabelOf — and therefore embeddings and cluster metrics at
// the outer level — keep working.
func (w *Network) AsNucleus() *nucleus.Nucleus {
	nu := &nucleus.Nucleus{
		Name: w.Name(),
		Seed: w.Seed(),
		Gens: w.Gens(),
		M:    w.N(),
	}
	labels := make([]perm.Label, w.N())
	for a := 0; a < w.N(); a++ {
		l, err := w.LabelOf(a)
		if err != nil {
			panic(fmt.Sprintf("superipg: AsNucleus enumeration: %v", err))
		}
		labels[a] = l
	}
	if err := nu.SetEnumeration(labels); err != nil {
		panic(fmt.Sprintf("superipg: AsNucleus enumeration: %v", err))
	}
	return nu
}

// RHSN returns the depth-d recursive hierarchical swap network: RHSN(1) is
// HSN(l, G); RHSN(d) is HSN(l, RHSN(d-1)) with the whole level-(d-1)
// network as its nucleus.  Corollaries 3.6, 4.2, and 4.4 treat RHSNs
// together with HSNs: intercluster diameter l-1 and symmetric diameter
// 2l-2 at the outermost level.
func RHSN(depth, l int, nuc *nucleus.Nucleus) *Network {
	if depth < 1 {
		panic(fmt.Sprintf("superipg.RHSN: depth %d must be >= 1", depth))
	}
	w := HSN(l, nuc)
	for d := 2; d <= depth; d++ {
		w = HSN(l, w.AsNucleus())
	}
	if depth > 1 {
		w.Family = "RHSN"
	}
	return w
}

// HFN returns the hierarchical folded-hypercube network HFN(n, n) of Duh,
// Chen & Fang in super-IPG skeleton form: 2^n clusters of n-dimensional
// folded hypercubes joined by the swap super-generator.
func HFN(n int) *Network {
	w := HSN(2, nucleus.FoldedHypercube(n))
	w.Family = "HFN"
	return w
}
