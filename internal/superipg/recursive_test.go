package superipg

import (
	"testing"

	"ipg/internal/nucleus"
)

func TestRHSNStructure(t *testing.T) {
	// RHSN(2, 2, Q2): nucleus is HSN(2,Q2) (16 nodes, 8 symbols), so the
	// level-2 network has 16^2 = 256 nodes over 16-symbol labels.
	w := RHSN(2, 2, nucleus.Hypercube(2))
	if w.Family != "RHSN" {
		t.Errorf("family = %s", w.Family)
	}
	if w.N() != 256 || w.SymbolLen() != 8 || len(w.Seed()) != 16 {
		t.Fatalf("RHSN(2,2,Q2): N=%d m=%d seed=%d", w.N(), w.SymbolLen(), len(w.Seed()))
	}
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 256 {
		t.Fatalf("materialized %d nodes", g.N())
	}
	// Corollary 4.2: intercluster diameter l-1 = 1 at the outer level.
	tVal, err := w.InterclusterT()
	if err != nil {
		t.Fatal(err)
	}
	if tVal != 1 {
		t.Errorf("RHSN t = %d, want 1", tVal)
	}
	if d := w.InterclusterDiameter(g); d != 1 {
		t.Errorf("measured intercluster diameter = %d, want 1", d)
	}
	// Corollary 4.4: symmetric diameter 2l-2 = 2.
	ts, err := w.SymmetricTS()
	if err != nil {
		t.Fatal(err)
	}
	if ts != w.TheoreticalSymmetricDiameter() {
		t.Errorf("t_S = %d, want %d", ts, w.TheoreticalSymmetricDiameter())
	}
}

func TestRHSNDepth1IsHSN(t *testing.T) {
	a := RHSN(1, 3, nucleus.Hypercube(2))
	b := HSN(3, nucleus.Hypercube(2))
	if a.Family != "HSN" || a.N() != b.N() || a.SymbolLen() != b.SymbolLen() {
		t.Error("RHSN depth 1 should be plain HSN")
	}
}

func TestRHSNDepth3(t *testing.T) {
	// Three levels over Q1: N = ((2^2)^2)^2 = 256.
	w := RHSN(3, 2, nucleus.Hypercube(1))
	if w.N() != 256 {
		t.Fatalf("RHSN(3,2,Q1): N = %d, want 256", w.N())
	}
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	if !u.Connected() {
		t.Error("RHSN should be connected")
	}
}

func TestHFN(t *testing.T) {
	w := HFN(3)
	if w.Family != "HFN" {
		t.Errorf("family = %s", w.Family)
	}
	if w.N() != 64 {
		t.Fatalf("HFN(3,3): N = %d, want 64", w.N())
	}
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Each node: FQ3 degree 4 on-chip + at most one swap link.
	u := g.Undirected()
	if _, max, _ := u.DegreeStats(); max != 5 {
		t.Errorf("HFN(3,3) max degree = %d, want 5", max)
	}
	if d := w.InterclusterDiameter(g); d != 1 {
		t.Errorf("HFN intercluster diameter = %d, want 1", d)
	}
}

func TestAsNucleusRoundTrip(t *testing.T) {
	inner := HSN(2, nucleus.Hypercube(1))
	nuc := inner.AsNucleus()
	if nuc.M != 4 || nuc.SymbolLen() != 4 {
		t.Fatalf("AsNucleus: M=%d m=%d", nuc.M, nuc.SymbolLen())
	}
	g, err := nuc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != inner.N() {
		t.Errorf("nucleus materializes %d nodes, want %d", g.N(), inner.N())
	}
}
