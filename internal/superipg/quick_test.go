package superipg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipg/internal/nucleus"
)

// TestQuickStructuralInvariants property-checks, across random families,
// levels, and nuclei: node count M^l, intercluster word-BFS t = l-1, and
// the self-loop census (a super-generator action fixes a node exactly when
// the groups it moves coincide).
func TestQuickStructuralInvariants(t *testing.T) {
	f := func(seed int64, famRaw, lRaw, nucRaw uint8) bool {
		l := int(lRaw%3) + 2
		var nuc *nucleus.Nucleus
		switch nucRaw % 3 {
		case 0:
			nuc = nucleus.Hypercube(2)
		case 1:
			nuc = nucleus.Complete(3)
		default:
			nuc = nucleus.GeneralizedHypercube(2, 2)
		}
		var w *Network
		switch famRaw % 4 {
		case 0:
			w = HSN(l, nuc)
		case 1:
			w = RingCN(l, nuc)
		case 2:
			w = CompleteCN(l, nuc)
		default:
			w = SFN(l, nuc)
		}
		g, err := w.Build()
		if err != nil {
			return false
		}
		if g.N() != pow(nuc.M, l) {
			return false
		}
		tv, err := w.InterclusterT()
		if err != nil || tv != l-1 {
			return false
		}
		// Every neighbor relation is consistent: generator gi maps the
		// label of v to the label of its neighbor.
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 10; trial++ {
			v := rng.Intn(g.N())
			gi := rng.Intn(len(w.Gens()))
			want := w.Gens()[gi].P.Apply(g.Label(v))
			if g.NodeID(want) != g.Neighbor(v, gi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
