package superipg

import (
	"math/rand"
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/perm"
)

func routeNetworks() []*Network {
	q2 := nucleus.Hypercube(2)
	return []*Network{
		HSN(3, q2),
		SFN(3, q2),
		HCN(3),
		RingCN(4, q2),
		CompleteCN(3, q2),
		DirectedCN(3, q2),
		HSN(2, nucleus.GeneralizedHypercube(4, 2)),
	}
}

func TestRouteWordAllFamilies(t *testing.T) {
	for _, w := range routeNetworks() {
		g, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		nr, err := w.BFSNucleusRouter()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		m := w.SymbolLen()
		for trial := 0; trial < 60; trial++ {
			src := g.Label(rng.Intn(g.N()))
			dst := g.Label(rng.Intn(g.N()))
			word, err := w.RouteWord(src, dst, nr)
			if err != nil {
				t.Fatalf("%s: %v", w.Name(), err)
			}
			// Apply and confirm.
			cur := src.Clone()
			for _, gi := range word {
				cur = w.Gens()[gi].P.Apply(cur)
			}
			if !cur.Equal(dst) {
				t.Fatalf("%s: route does not reach destination", w.Name())
			}
			hops := w.InterclusterHops(word)
			switch w.kind() {
			case kindSwap:
				// Optimal: hops = number of differing suffix groups.
				want := 0
				for i := 1; i < w.L; i++ {
					if !perm.Label(src.Group(m, i)).Equal(dst.Group(m, i)) {
						want++
					}
				}
				if hops != want {
					t.Fatalf("%s: %d intercluster hops, want %d", w.Name(), hops, want)
				}
			default:
				// The l-rotation plan uses at most l hops (0 when src=dst).
				maxHops := w.L
				if src.Equal(dst) {
					maxHops = 0
				}
				if hops > maxHops {
					t.Fatalf("%s: %d intercluster hops > %d", w.Name(), hops, maxHops)
				}
			}
		}
	}
}

func TestRouteWordMatchesGraphDistanceBound(t *testing.T) {
	// Route lengths are bounded by (diameter-quality) structural bounds:
	// every hop is a real edge, so word length >= graph distance.
	w := HSN(2, nucleus.Hypercube(2))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	nr, err := w.BFSNucleusRouter()
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.N(); src++ {
		dist := u.BFS(src)
		for dst := 0; dst < g.N(); dst++ {
			word, err := w.RouteWord(g.Label(src), g.Label(dst), nr)
			if err != nil {
				t.Fatal(err)
			}
			// Count only real moves (self-loop generator applications are
			// impossible here: fixFront routes between distinct labels and
			// swaps are only applied when contents differ).
			if len(word) < int(dist[dst]) {
				t.Fatalf("route shorter than graph distance?! %d < %d", len(word), dist[dst])
			}
			if len(word) > 3*int(dist[dst])+4 {
				t.Fatalf("route %d far exceeds distance %d", len(word), dist[dst])
			}
		}
	}
}

func TestBFSNucleusRouterIdentity(t *testing.T) {
	w := HSN(2, nucleus.Hypercube(3))
	nr, err := w.BFSNucleusRouter()
	if err != nil {
		t.Fatal(err)
	}
	seed := w.Nuc.Seed
	word, err := nr(seed, seed)
	if err != nil || len(word) != 0 {
		t.Errorf("identity route should be empty: %v, %v", word, err)
	}
	if _, err := nr(seed, perm.MustParseLabel("9999")); err == nil {
		t.Error("unknown label should error")
	}
}

func TestRouteWordRejectsBadLabels(t *testing.T) {
	w := HSN(2, nucleus.Hypercube(2))
	nr, _ := w.BFSNucleusRouter()
	if _, err := w.RouteWord(perm.MustParseLabel("01"), w.Seed(), nr); err == nil {
		t.Error("short label should error")
	}
}
