package superipg

import (
	"fmt"
	"sync"

	"ipg/internal/perm"
	"ipg/internal/topo"
)

// This file implements the implicit (codec-backed) adjacency of a
// super-IPG: vertex v is the mixed-radix address of AddressOf (group i
// weighted M^(i-1)), and the neighbors of v are computed by unranking v
// to its label, applying each generator, and ranking the results — no
// materialized closure, no arena, O(1) memory per family.
//
// Correctness rests on the same invariant Build verifies for
// materializable instances: the generator orbit of the seed is the full
// set of M^l l-tuples of nucleus labels (the paper's Property 1 of the
// CN/HSN/SFN constructions, since the super-generators permute whole
// groups and the nucleus generators reach every nucleus label inside a
// group).  The golden-family equivalence tests check implicit rows
// against address-relabeled CSR rows bit for bit.

// superCodec implements topo.Codec over super-IPG addresses.
type superCodec struct {
	w *Network
	n int
	// pool holds per-call label scratch so NeighborsInto is safe for the
	// concurrent workers of the parallel metric drivers.
	pool sync.Pool
}

type superScratch struct {
	cur perm.Label
	tmp perm.Label
}

// Implicit returns the codec-backed adjacency source of w.  It errors
// when the nucleus is not addressable (no rank/unrank bijection) or the
// address space exceeds the int32 vertex representation.
func (w *Network) Implicit() (*topo.Implicit, error) {
	if !w.Nuc.Addressable() {
		return nil, fmt.Errorf("superipg: nucleus %s is not addressable; no implicit adjacency", w.Nuc.Name)
	}
	n := 1
	for i := 0; i < w.L; i++ {
		if n > topo.MaxVertices/w.Nuc.M {
			return nil, fmt.Errorf("superipg: %s has more than %d nodes; addresses overflow int32", w.Name(), topo.MaxVertices)
		}
		n *= w.Nuc.M
	}
	c := &superCodec{w: w, n: n}
	c.pool.New = func() any {
		m := w.SymbolLen() * w.L
		return &superScratch{cur: make(perm.Label, 0, m), tmp: make(perm.Label, m)}
	}
	return topo.NewImplicit(c), nil
}

func (c *superCodec) Name() string { return fmt.Sprintf("superipg(%s)", c.w.Name()) }

func (c *superCodec) N() int { return c.n }

func (c *superCodec) DegreeBound() int { return len(c.w.gens) }

// VertexTransitive is conservatively false: super-IPG labels repeat
// symbols, so vertex transitivity is not a proven property of the
// construction, matching the materialized path (Undirected never marks
// supers transitive).
func (c *superCodec) VertexTransitive() bool { return false }

func (c *superCodec) AppendNeighbors(v int, buf []int32) []int32 {
	s := c.pool.Get().(*superScratch)
	s.cur = c.labelInto(v, s.cur)
	for _, g := range c.w.gens {
		g.P.ApplyInto(s.tmp, s.cur)
		u, err := c.w.AddressOf(s.tmp)
		if err != nil {
			// The generators permute label positions, so the image of a
			// valid node label is always a valid node label; an error here
			// means the codec invariant is broken, not bad input.
			panic(fmt.Sprintf("superipg: %s: generator image unrankable: %v", c.w.Name(), err))
		}
		//lint:ignore indextrunc u < N() <= topo.MaxVertices (math.MaxInt32), checked in Implicit
		buf = append(buf, int32(u))
	}
	c.pool.Put(s)
	return buf
}

// labelInto is LabelOf into reused scratch: the label of address addr
// appended to dst[:0].
func (c *superCodec) labelInto(addr int, dst perm.Label) perm.Label {
	dst = dst[:0]
	for i := 0; i < c.w.L; i++ {
		g, err := c.w.Nuc.LabelOf(addr % c.w.Nuc.M)
		if err != nil {
			panic(fmt.Sprintf("superipg: %s: address %d unrankable: %v", c.w.Name(), addr, err))
		}
		dst = append(dst, g...)
		addr /= c.w.Nuc.M
	}
	return dst
}
