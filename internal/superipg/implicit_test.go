package superipg

import (
	"math/rand"
	"sort"
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/topo"
)

// TestImplicitBeyondMaterializable samples HSN(7,Q4) — 16^7 ≈ 2.7e8
// vertices, two orders past the materialization caps — and checks the
// codec invariants the traversal kernels rely on: address round-trips
// through LabelOf/AddressOf, canonical rows within the generator-count
// degree bound, and adjacency symmetry (the generator sets are
// inverse-closed, so every edge must be seen from both ends).
func TestImplicitBeyondMaterializable(t *testing.T) {
	w := HSN(7, nucleus.Hypercube(4))
	im, err := w.Implicit()
	if err != nil {
		t.Fatal(err)
	}
	if im.N() != 1<<28 {
		t.Fatalf("N = %d, want 16^7", im.N())
	}
	if topo.SourceTransitive(im) {
		t.Fatal("super-IPG codecs must not claim vertex transitivity")
	}
	rng := rand.New(rand.NewSource(5))
	var row, nrow []int32
	for trial := 0; trial < 64; trial++ {
		v := rng.Intn(im.N())
		lbl, err := w.LabelOf(v)
		if err != nil {
			t.Fatalf("LabelOf(%d): %v", v, err)
		}
		back, err := w.AddressOf(lbl)
		if err != nil {
			t.Fatalf("AddressOf(%v): %v", lbl, err)
		}
		if back != v {
			t.Fatalf("address round trip: %d -> %v -> %d", v, lbl, back)
		}
		row = im.NeighborsInto(v, row)
		if len(row) == 0 || len(row) > im.DegreeBound() {
			t.Fatalf("v=%d: degree %d outside (0,%d]", v, len(row), im.DegreeBound())
		}
		for i, u := range row {
			if int(u) < 0 || int(u) >= im.N() || int(u) == v || (i > 0 && row[i-1] >= u) {
				t.Fatalf("v=%d: row %v not canonical", v, row)
			}
		}
		for _, u := range row {
			nrow = im.NeighborsInto(int(u), nrow)
			j := sort.Search(len(nrow), func(i int) bool { return nrow[i] >= int32(v) })
			if j == len(nrow) || nrow[j] != int32(v) {
				t.Fatalf("asymmetric edge %d -> %d", v, u)
			}
		}
	}
}

// TestImplicitUnaddressableNucleus checks the error path: a nucleus
// without an address bijection cannot back an implicit adjacency.
func TestImplicitUnaddressableNucleus(t *testing.T) {
	nuc := nucleus.Hypercube(2)
	nuc.Dims = nil // strip the dimension structure: no rank/unrank left
	if nuc.Addressable() {
		t.Skip("nucleus still addressable; cannot exercise the error path")
	}
	if _, err := HSN(3, nuc).Implicit(); err == nil {
		t.Fatal("Implicit succeeded on an unaddressable nucleus")
	}
}
